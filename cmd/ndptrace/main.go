// Command ndptrace validates and summarizes the trace artifacts ndpsim
// writes. It is the CI smoke hook for the causal-tracing pipeline:
//
//	ndpsim -app tree -design O -small -flowtrace flow.json -critpath-json crit.json
//	ndptrace -check flow.json      # structural validation of the flow trace
//	ndptrace -critcheck crit.json  # attribution sums to the epoch makespan
//
// -check verifies the file parses as a Chrome/Perfetto JSON array, every
// span's parent exists and was recorded before it, no event has a negative
// duration or timestamp, and every flow arrow references a recorded span.
// -critcheck verifies each epoch's category attribution sums exactly to the
// epoch's length and the totals row to the sum of epochs. Both print a short
// summary on success and exit 1 with a diagnostic on the first violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ndpbridge/internal/trace"
)

func main() {
	var (
		check     = flag.String("check", "", "validate a -flowtrace JSON file")
		critcheck = flag.String("critcheck", "", "validate a -critpath-json report file")
	)
	flag.Parse()
	if *check == "" && *critcheck == "" {
		fmt.Fprintln(os.Stderr, "usage: ndptrace -check flow.json | -critcheck crit.json")
		os.Exit(2)
	}
	if *check != "" {
		if err := checkFlowTrace(*check); err != nil {
			fmt.Fprintf(os.Stderr, "ndptrace: %s: %v\n", *check, err)
			os.Exit(1)
		}
	}
	if *critcheck != "" {
		if err := checkCritReport(*critcheck); err != nil {
			fmt.Fprintf(os.Stderr, "ndptrace: %s: %v\n", *critcheck, err)
			os.Exit(1)
		}
	}
}

// traceEvent is the subset of the Chrome trace event schema the validator
// reads. Fields absent from a given event unmarshal to their zero values.
type traceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	Pid  int64  `json:"pid"`
	Tid  int64  `json:"tid"`
	ID   uint32 `json:"id"`
	Args struct {
		Span   uint32 `json:"span"`
		Parent uint32 `json:"parent"`
		Flow   uint64 `json:"flow"`

		Retained     *int64 `json:"retained"`
		Dropped      *int64 `json:"dropped"`
		Spans        *int64 `json:"spans"`
		SpansDropped *int64 `json:"spans_dropped"`
	} `json:"args"`
}

func checkFlowTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var events []traceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("not a JSON event array: %w", err)
	}
	if len(events) == 0 || events[0].Ph != "M" || events[0].Name != "ndpbridge_trace_info" {
		return fmt.Errorf("missing leading ndpbridge_trace_info metadata record")
	}
	meta := events[0]

	spans := map[uint32]traceEvent{}
	intervals, arrows := 0, 0
	for i, ev := range events[1:] {
		if ev.TS < 0 {
			return fmt.Errorf("event %d (%q): negative timestamp %d", i+1, ev.Name, ev.TS)
		}
		if ev.Dur < 0 {
			return fmt.Errorf("event %d (%q): negative duration %d", i+1, ev.Name, ev.Dur)
		}
		switch {
		case ev.Ph == "X" && ev.Args.Span != 0:
			id := ev.Args.Span
			if _, dup := spans[id]; dup {
				return fmt.Errorf("span %d recorded twice", id)
			}
			if p := ev.Args.Parent; p != 0 && p >= id {
				return fmt.Errorf("span %d: parent %d not recorded before it", id, p)
			}
			spans[id] = ev
		case ev.Ph == "X":
			intervals++
		case ev.Ph == "s" || ev.Ph == "f":
			arrows++
		}
	}
	// Spans are numbered densely from 1, so presence of every parent reduces
	// to presence of every ID up to the max — verify both ways.
	for id, ev := range spans {
		if p := ev.Args.Parent; p != 0 {
			if _, ok := spans[p]; !ok {
				return fmt.Errorf("span %d: parent %d does not exist", id, p)
			}
		}
	}
	for i := 1; i <= len(spans); i++ {
		if _, ok := spans[uint32(i)]; !ok {
			return fmt.Errorf("span numbering has a hole at %d (%d spans)", i, len(spans))
		}
	}
	if arrows%2 != 0 {
		return fmt.Errorf("unpaired flow arrows: %d s/f events", arrows)
	}
	for i, ev := range events[1:] {
		if ev.Ph != "s" && ev.Ph != "f" {
			continue
		}
		if _, ok := spans[ev.ID]; !ok {
			return fmt.Errorf("event %d: flow arrow references unknown span %d", i+1, ev.ID)
		}
	}
	if meta.Args.Spans != nil && int(*meta.Args.Spans) != len(spans) {
		return fmt.Errorf("metadata claims %d spans, file holds %d", *meta.Args.Spans, len(spans))
	}
	fmt.Printf("%s: ok — %d interval events, %d spans, %d flow arrows\n",
		path, intervals, len(spans), arrows/2)
	return nil
}

func checkCritReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep trace.CritReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("not a critical-path report: %w", err)
	}
	if len(rep.Epochs) == 0 {
		return fmt.Errorf("report holds no epochs")
	}
	var total trace.CatCycles
	var covered uint64
	for _, ep := range rep.Epochs {
		if ep.End < ep.Start {
			return fmt.Errorf("epoch %d: end %d before start %d", ep.Epoch, ep.End, ep.Start)
		}
		if got, want := ep.Attr.Total(), ep.End-ep.Start; got != want {
			return fmt.Errorf("epoch %d: attribution sums to %d cycles, epoch is %d", ep.Epoch, got, want)
		}
		total.Accum(ep.Attr)
		covered += ep.End - ep.Start
	}
	if covered != rep.Makespan {
		return fmt.Errorf("epochs cover %d cycles, makespan is %d", covered, rep.Makespan)
	}
	if total != rep.Total {
		return fmt.Errorf("totals row disagrees with the sum of epochs")
	}
	dom, frac := rep.Dominant()
	fmt.Printf("%s: ok — %d epochs, %d cycles, dominant %s (%.1f%%)\n",
		path, len(rep.Epochs), rep.Makespan, dom, 100*frac)
	return nil
}
