// Command ndpsim runs one NDPBridge simulation: a single application on a
// single design, printing the measured result. It is the quickest way to
// poke at the simulator:
//
//	ndpsim -app tree -design O
//	ndpsim -app pr -design C -units 128
//	ndpsim -app bfs -design O -gxfer 64 -small
//
// With -serve it instead runs the open-loop serving workload: a kvstore-style
// GET stream with seeded arrivals, admission control, and an SLO report:
//
//	ndpsim -serve -rate 8 -slo 20000
//	ndpsim -serve -arrival burst -rate 4 -policy codel -faults examples/faults/rankdark.json
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/config"
	"ndpbridge/internal/core"
	"ndpbridge/internal/fault"
	"ndpbridge/internal/metrics"
	"ndpbridge/internal/stats"
	"ndpbridge/internal/trace"
	"ndpbridge/internal/traffic"
	"ndpbridge/internal/workloads"
)

func main() {
	var (
		appName  = flag.String("app", "tree", "application: ll, ht, tree, spmv, bfs, sssp, pr, wcc, stencil")
		design   = flag.String("design", "O", "design: C, B, W, O, H, R (Table II)")
		units    = flag.Int("units", 0, "override NDP unit count (multiple of 64; 0 = Table I default 512)")
		gxfer    = flag.Uint64("gxfer", 0, "override G_xfer bytes (0 = default 256)")
		istate   = flag.Uint64("istate", 0, "override I_state cycles (0 = default 2000)")
		dq       = flag.Int("dq", 0, "DRAM chip DQ width: 4, 8 or 16 (0 = default 8)")
		trigger  = flag.String("trigger", "dynamic", "communication trigger: dynamic, imin, 2imin")
		l2       = flag.String("l2", "host", "level-2 transport: host, dimmlink, abcdimm")
		small    = flag.Bool("small", false, "use the small test-sized workload")
		split    = flag.Bool("splitdb", false, "model split DIMM buffers (chameleon-s)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		verbose  = flag.Bool("v", false, "print per-component detail")
		traceOut = flag.String("trace", "", "write a Chrome/Perfetto trace JSON to this file")
		flowOut  = flag.String("flowtrace", "", "write a Chrome/Perfetto trace with causal flow arrows to this file")
		critOn   = flag.Bool("critpath", false, "print the critical-path attribution report")
		critOut  = flag.String("critpath-json", "", "write the critical-path report JSON to this file")
		traceCap = flag.Int("trace-cap", 0, "max retained trace events and causal spans (0 = default 2M each)")
		heatmap  = flag.Bool("heatmap", false, "print a per-unit utilization heatmap")
		metOut   = flag.String("metrics", "", "write instrument metrics (counters, histograms, sampled series) JSON to this file")
		progress = flag.Bool("progress", false, "print a progress heartbeat to stderr while simulating")
		faultsIn = flag.String("faults", "", "JSON fault-injection plan to apply (see examples/faults/)")
		fSeed    = flag.Uint64("fault-seed", 0, "fault-schedule seed (0 = derive from -seed)")
		ckptOut  = flag.String("ckpt", "", "write crash-consistent checkpoints to this file; SIGINT/SIGTERM snapshots at the next barrier and exits")
		ckptEvr  = flag.Uint64("ckpt-every", 0, "cycles between periodic checkpoints (0 = only on interrupt)")
		resume   = flag.String("resume", "", "resume from a checkpoint file (replay-verified; supersedes workload/config flags)")
		auditOn  = flag.Bool("audit", false, "run the invariant auditor; conservation violations abort the run")

		serveOn  = flag.Bool("serve", false, "run the open-loop serving workload instead of -app")
		arrival  = flag.String("arrival", "poisson", "serving arrival process: poisson, burst, diurnal")
		rate     = flag.Float64("rate", 2, "serving offered load in requests per 1000 cycles")
		requests = flag.Uint64("requests", 2000, "serving arrivals to generate")
		queueCap = flag.Int("queue", 64, "serving admission queue depth")
		policy   = flag.String("policy", "drop-newest", "serving shed policy: drop-newest, drop-oldest, codel")
		sloP99   = flag.Uint64("slo", 20000, "serving p99 latency target in cycles")
		window   = flag.Uint64("window", 0, "serving degradation-curve window in cycles (0 = no windows)")
	)
	flag.Parse()

	cfg := config.Default()
	d, err := config.ParseDesign(*design)
	fatalIf(err)
	cfg = cfg.WithDesign(d)
	if *units > 0 {
		cfg, err = cfg.WithUnits(*units)
		fatalIf(err)
	}
	if *dq > 0 {
		cfg, err = cfg.WithDQWidth(*dq)
		fatalIf(err)
	}
	if *gxfer > 0 {
		cfg.GXfer = *gxfer
	}
	if *istate > 0 {
		cfg.IState = *istate
	}
	switch *trigger {
	case "dynamic":
		cfg.Trigger = config.TriggerDynamic
	case "imin":
		cfg.Trigger = config.TriggerFixedIMin
	case "2imin":
		cfg.Trigger = config.TriggerFixed2IMin
	default:
		fatalIf(fmt.Errorf("unknown trigger %q", *trigger))
	}
	switch *l2 {
	case "host":
		cfg.Level2 = config.L2Host
	case "dimmlink":
		cfg.Level2 = config.L2DIMMLink
	case "abcdimm":
		cfg.Level2 = config.L2ABCDIMM
	default:
		fatalIf(fmt.Errorf("unknown level-2 transport %q", *l2))
	}
	cfg.SplitDIMMBuffer = *split
	cfg.Seed = *seed

	// The serving spec is built from flags; a resumed serving checkpoint
	// supersedes it below (the label carries the exact spec).
	var serveSpec *traffic.Spec
	if *serveOn {
		sp := traffic.DefaultSpec()
		sp.Arrival = *arrival
		sp.Rate = *rate
		sp.Requests = *requests
		sp.Seed = *seed
		sp.QueueCap = *queueCap
		sp.Policy = *policy
		sp.SLOP99 = *sloP99
		sp.Window = *window
		fatalIf(sp.Validate())
		serveSpec = &sp
	}

	// A checkpoint supersedes the workload and config flags: the run must
	// be rebuilt exactly as recorded or the replay-verify marker check
	// rejects it.
	var resumeCk *core.Checkpoint
	if *resume != "" {
		resumeCk, err = core.ReadCheckpoint(*resume)
		fatalIf(err)
		fatalIf(json.Unmarshal(resumeCk.CfgJSON, &cfg))
		if label, isServe := strings.CutPrefix(resumeCk.App, "serve:"); isServe {
			sp, err := traffic.ParseSpec(label)
			fatalIf(err)
			serveSpec = &sp
			fmt.Printf("resuming serving run from %s: epoch %d, cycle %d\n",
				*resume, resumeCk.Epoch, resumeCk.Cycle)
		} else {
			serveSpec = nil
			name, sized, ok := strings.Cut(resumeCk.App, "@")
			if !ok {
				fatalIf(fmt.Errorf("checkpoint %s: malformed app label %q", *resume, resumeCk.App))
			}
			*appName, *small = name, sized == "small"
			fmt.Printf("resuming %s (%s workload) from %s: epoch %d, cycle %d\n",
				name, sized, *resume, resumeCk.Epoch, resumeCk.Cycle)
		}
	}

	var app core.App
	if serveSpec != nil {
		app = core.ServingApp{}
	} else if *small {
		app, err = workloads.NewSmall(*appName)
		fatalIf(err)
	} else {
		app, err = workloads.New(*appName)
		fatalIf(err)
	}

	sys, err := core.New(cfg)
	fatalIf(err)
	if serveSpec != nil {
		src, err := traffic.NewSource(*serveSpec, 64)
		fatalIf(err)
		sys.AttachTraffic(src)
	}
	switch {
	case resumeCk != nil:
		plan, err := resumeCk.Plan()
		fatalIf(err)
		if plan != nil {
			fatalIf(sys.AttachFaults(plan, resumeCk.FaultSeed))
		}
		sys.VerifyResume(resumeCk)
	case *faultsIn != "":
		plan, err := fault.Load(*faultsIn)
		fatalIf(err)
		seed := *fSeed
		if seed == 0 {
			seed = cfg.Seed
		}
		fatalIf(sys.AttachFaults(plan, seed))
	}
	if *auditOn {
		fatalIf(sys.AttachAudit(0))
	}
	if *ckptOut != "" {
		if serveSpec != nil {
			sys.SetCheckpointApp("serve:" + serveSpec.Label())
		} else {
			sized := "full"
			if *small {
				sized = "small"
			}
			sys.SetCheckpointApp(*appName + "@" + sized)
		}
		sys.EnableCheckpoints(*ckptOut, *ckptEvr)
		// First signal: snapshot at the next barrier and stop cleanly.
		// Second signal: force exit (the run may be far from a barrier).
		sigc := make(chan os.Signal, 2)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "\nndpsim: interrupt — writing checkpoint at next barrier (^C again to force exit)")
			sys.RequestCheckpoint()
			<-sigc
			fmt.Fprintln(os.Stderr, "\nndpsim: forced exit")
			os.Exit(130)
		}()
	}
	var rec *trace.Recorder
	flows := *flowOut != "" || *critOn || *critOut != ""
	if *traceOut != "" || *heatmap || flows {
		rec = trace.New(*traceCap)
		if flows {
			rec.EnableFlows(*traceCap)
		}
		sys.AttachTrace(rec)
	}
	var reg *metrics.Registry
	if *metOut != "" || *verbose {
		reg = metrics.NewRegistry()
		sys.AttachMetrics(reg)
	}
	if *progress {
		startHeartbeat(sys)
	}
	r, err := sys.Run(app)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if errors.Is(err, core.ErrInterrupted) {
		fmt.Printf("interrupted; checkpoint written to %s — resume with: ndpsim -resume %s\n", *ckptOut, *ckptOut)
		os.Exit(130)
	}
	fatalIf(err)
	if resumeCk != nil && sys.ResumeVerified() {
		fmt.Printf("resume verified at epoch %d (cycle %d, state digest %#x)\n",
			resumeCk.Epoch, resumeCk.Cycle, resumeCk.Digest)
	}

	fmt.Println(r)
	if rec != nil {
		// Dropped counts surface capped traces: a report built from a
		// truncated recording should say so, not pass as complete.
		fmt.Printf("trace: %d events retained (%d dropped)", rec.Len(), rec.Dropped())
		if rec.FlowsEnabled() {
			fmt.Printf(", %d spans retained (%d dropped)", rec.SpanCount(), rec.DroppedSpans())
		}
		fmt.Println()
	}
	if *verbose {
		printDetail(r)
	}
	if *heatmap {
		fmt.Println("\nper-unit utilization (unit rows, time →):")
		fmt.Print(rec.Heatmap(r.Makespan, 64))
	}
	if *traceOut != "" {
		// Render to memory, then write atomically: a crash or full disk
		// mid-write never leaves a truncated (unparseable) trace behind.
		var buf bytes.Buffer
		fatalIf(rec.ChromeTrace(&buf))
		fatalIf(checkpoint.WriteFileAtomic(*traceOut, buf.Bytes()))
		fmt.Printf("wrote %d trace events to %s\n", rec.Len(), *traceOut)
	}
	if *flowOut != "" {
		var buf bytes.Buffer
		fatalIf(rec.FlowTrace(&buf))
		fatalIf(checkpoint.WriteFileAtomic(*flowOut, buf.Bytes()))
		fmt.Printf("wrote %d trace events and %d causal spans to %s\n", rec.Len(), rec.SpanCount(), *flowOut)
	}
	if *critOn || *critOut != "" {
		rep := rec.CritPath(r.Makespan)
		if *critOn {
			fmt.Println()
			fmt.Print(rep.Render())
		}
		if *critOut != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			fatalIf(err)
			fatalIf(checkpoint.WriteFileAtomic(*critOut, append(data, '\n')))
			fmt.Printf("wrote critical-path report (%d epochs) to %s\n", len(rep.Epochs), *critOut)
		}
	}
	if *metOut != "" {
		var buf bytes.Buffer
		fatalIf(reg.WriteJSON(&buf))
		fatalIf(checkpoint.WriteFileAtomic(*metOut, buf.Bytes()))
		fmt.Printf("wrote metrics (%d counters, %d histograms, %d series) to %s\n",
			len(reg.CounterNames()), len(reg.HistogramNames()), len(reg.SeriesNames()), *metOut)
	}
}

// startHeartbeat installs an engine progress hook that reports simulation
// speed, the current simulated cycle, and — since the only a-priori bound on
// a run is its event budget — how long until that budget would be exhausted
// at the current speed.
func startHeartbeat(sys *core.System) {
	const every = 1 << 20 // events between reports
	start := time.Now()
	eng := sys.Engine()
	budget := sys.MaxEvents()
	eng.SetProgress(every, func(now uint64, processed uint64) {
		elapsed := time.Since(start).Seconds()
		if elapsed <= 0 {
			return
		}
		eps := float64(processed) / elapsed
		line := fmt.Sprintf("\rndpsim: %dM events, cycle %d, %.2fM events/sec",
			processed>>20, now, eps/1e6)
		if budget > processed && eps > 0 {
			line += fmt.Sprintf(", budget ETA %s",
				(time.Duration(float64(budget-processed)/eps) * time.Second).Round(time.Second))
		}
		fmt.Fprint(os.Stderr, line)
	})
}

func printDetail(r *stats.Result) {
	ms := func(c uint64) float64 { return float64(c) * 2.5e-6 } // cycles → ms at 400 MHz
	fmt.Printf("  makespan:        %12d cycles (%.3f ms)\n", r.Makespan, ms(r.Makespan))
	fmt.Printf("  max busy:        %12d cycles (wait %.1f%%)\n", r.MaxBusy, 100*r.WaitFrac())
	fmt.Printf("  avg busy:        %12.0f cycles (avg/max %.1f%%)\n", r.AvgBusy, 100*r.AvgFrac())
	fmt.Printf("  tasks:           %12d executed, %d spawned, %d bounces\n", r.TasksExecuted, r.TasksSpawned, r.Bounces)
	fmt.Printf("  messages:        %12d delivered\n", r.MsgsDelivered)
	fmt.Printf("  traffic:         %12d B intra-rank, %d B cross-rank, %d B host\n",
		r.IntraRankBytes, r.CrossRankBytes, r.HostBytes)
	fmt.Printf("  load balancing:  %12d rounds, %d blocks migrated, %d returned\n",
		r.LBRounds, r.BlocksMigrated, r.BlocksReturned)
	fmt.Printf("  gather rounds:   %12d\n", r.GatherRounds)
	if !r.TaskLatency.IsZero() {
		fmt.Printf("  task latency:    %12s cycles (p50/p90/p99/max)\n", r.TaskLatency)
	}
	if !r.MsgLatency.IsZero() {
		fmt.Printf("  msg latency:     %12s cycles (p50/p90/p99/max)\n", r.MsgLatency)
	}
	if v := r.Serving; v != nil {
		fmt.Printf("  serving:         %12d offered, %d completed, %d shed (newest %d, oldest %d, deadline %d)\n",
			v.Offered, v.Completed, v.ShedTotal(), v.ShedNewest, v.ShedOldest, v.ShedDeadline)
		fmt.Printf("  serving latency: p50/p90/p99/p999/max %d/%d/%d/%d/%d cycles, goodput %.3f/kc of %.3f/kc offered\n",
			v.P50, v.P90, v.P99, v.P999, v.MaxLat, v.GoodputKC, v.OfferedKC)
	}
	e := r.Energy
	fmt.Printf("  energy (mJ):     core+SRAM %.2f, local DRAM %.2f, comm %.2f, static %.2f, total %.2f\n",
		e.CoreSRAM, e.LocalDRAM, e.CommDRAM, e.Static, e.Total())
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndpsim:", err)
		os.Exit(1)
	}
}
