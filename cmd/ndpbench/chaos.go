package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ndpbridge/internal/chaos"
	"ndpbridge/internal/experiments"
)

// chaosMain is the `ndpbench chaos` subcommand: a bounded, seeded chaos
// campaign (coverage-guided fault-plan fuzzing with automatic shrinking)
// plus crash-point torture of the checkpoint stack. Designed as a CI gate:
// exit 0 when every oracle holds, exit 1 with repro artifacts on disk when
// one breaks, exit 2 on usage or campaign-infrastructure errors.
func chaosMain(args []string) int {
	fs := flag.NewFlagSet("ndpbench chaos", flag.ExitOnError)
	var (
		runs     = fs.Int("chaos-runs", 64, "fault plans to evaluate (fuzzing budget)")
		seed     = fs.Uint64("chaos-seed", 1, "campaign seed; the same seed reproduces the campaign bit-for-bit")
		corpus   = fs.String("chaos-corpus", "", "persist interesting plans in this directory across campaigns")
		reproDir = fs.String("repro-dir", "chaos-repros", "write shrunk failing plans + CLI lines here")
		app      = fs.String("app", "tree", "campaign workload (small variant)")
		units    = fs.Int("units", 128, "NDP units (multiple of 64; 128 = two ranks)")
		jobsN    = fs.Int("j", 0, "plans to evaluate concurrently (0 = one per CPU; any value yields identical results)")
		torture  = fs.Bool("torture", true, "also run crash-point torture of the checkpoint stack")
		cuts     = fs.Int("torture-cuts", 0, "cap fail-stop cut points (0 = exhaustive: every filesystem op)")
		quiet    = fs.Bool("q", false, "suppress progress lines (summaries still print)")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ndpbench chaos: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	experiments.SetJobs(*jobsN)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	experiments.HandleSignals(sigc,
		experiments.Cancel,
		func() { os.Exit(130) },
		func(n int) {
			if n == 1 {
				fmt.Fprintln(os.Stderr, "\nndpbench chaos: interrupt — stopping campaign (Ctrl-C again to force quit)")
			} else {
				fmt.Fprintln(os.Stderr, "\nndpbench chaos: forced exit")
			}
		})

	log := os.Stderr
	if *quiet {
		log = nil
	}
	var logW = func() *os.File { return log }()

	rep, err := chaos.Run(chaos.Options{
		Runs:      *runs,
		Seed:      *seed,
		CorpusDir: *corpus,
		ReproDir:  *reproDir,
		App:       *app,
		Units:     *units,
		Log:       orNilWriter(logW),
	})
	if err != nil {
		if errors.Is(err, experiments.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "ndpbench chaos: canceled")
			return 130
		}
		fmt.Fprintf(os.Stderr, "ndpbench chaos: %v\n", err)
		return 2
	}
	fmt.Print(rep.Summary())

	code := 0
	if rep.Failed() {
		fmt.Fprintf(os.Stderr, "ndpbench chaos: %d oracle failure(s) — repros under %s\n",
			len(rep.Failures), *reproDir)
		code = 1
	}

	if *torture {
		trep, err := chaos.Torture(chaos.TortureOptions{
			MaxCuts: *cuts,
			Log:     orNilWriter(logW),
		})
		if trep != nil {
			fmt.Print(trep.Summary())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndpbench chaos: torture: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}

// orNilWriter converts a nil *os.File into a nil interface — a typed nil
// would make the campaign's "is logging on" check misfire.
func orNilWriter(f *os.File) interface{ Write([]byte) (int, error) } {
	if f == nil {
		return nil
	}
	return f
}
