// Command ndpbench regenerates the NDPBridge paper's tables and figures
// (Section VIII) on the simulator:
//
//	ndpbench                  # every experiment at full scale (slow)
//	ndpbench -exp fig10       # one experiment
//	ndpbench -exp fig14a -small
//
// Experiments: fig2, fig10, fig11, fig12, fig13, fig14a, fig14b, fig15,
// fig16a, fig16b, fig16cd, splitdb, l2variants, tab1, tab2.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ndpbridge/internal/experiments"
	"ndpbridge/internal/stats"
)

type expFn func(experiments.Scale) (*stats.Table, error)

var all = []struct {
	name string
	fn   expFn
}{
	{"tab1", func(experiments.Scale) (*stats.Table, error) { return experiments.Table1(), nil }},
	{"tab2", func(experiments.Scale) (*stats.Table, error) { return experiments.Table2(), nil }},
	{"fig2", experiments.Fig2},
	{"fig10", func(sc experiments.Scale) (*stats.Table, error) { t, _, err := experiments.Fig10(sc); return t, err }},
	{"fig11", func(sc experiments.Scale) (*stats.Table, error) { t, _, err := experiments.Fig11(sc); return t, err }},
	{"fig12", experiments.Fig12},
	{"fig13", func(sc experiments.Scale) (*stats.Table, error) { return experiments.Fig13(sc, nil) }},
	{"fig14a", experiments.Fig14a},
	{"fig14b", experiments.Fig14b},
	{"fig15", experiments.Fig15},
	{"fig16a", experiments.Fig16a},
	{"fig16b", experiments.Fig16b},
	{"fig16cd", experiments.Fig16cd},
	{"splitdb", experiments.SplitDB},
	{"l2variants", experiments.L2Variants},
}

// writeCSV stores one experiment table under dir.
func writeCSV(dir, name string, t *stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	if err := t.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	var (
		exp    = flag.String("exp", "", "comma-separated experiments to run (default: all)")
		small  = flag.Bool("small", false, "run test-sized systems and workloads")
		scale  = flag.String("scale", "", "workload scale: full (paper-sized), medium, small")
		csvDir = flag.String("csv", "", "also write each experiment's table as <dir>/<name>.csv")
	)
	flag.Parse()

	sc := experiments.Full
	if *small {
		sc = experiments.Small
	}
	switch *scale {
	case "", "full":
	case "medium":
		sc = experiments.Medium
	case "small":
		sc = experiments.Small
	default:
		fmt.Fprintf(os.Stderr, "ndpbench: unknown scale %q\n", *scale)
		os.Exit(1)
	}
	want := map[string]bool{}
	if *exp != "" {
		for _, e := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}
	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		start := time.Now()
		t, err := e.fn(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndpbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		fmt.Printf("(%s in %.1fs)\n\n", e.name, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.name, t); err != nil {
				fmt.Fprintf(os.Stderr, "ndpbench: csv %s: %v\n", e.name, err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ndpbench: no experiment matched %q\n", *exp)
		os.Exit(1)
	}
}
