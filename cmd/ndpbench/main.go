// Command ndpbench regenerates the NDPBridge paper's tables and figures
// (Section VIII) on the simulator:
//
//	ndpbench                  # every experiment at full scale (slow)
//	ndpbench -exp fig10       # one experiment
//	ndpbench -exp fig14a -small
//	ndpbench -j 8             # eight simulations in flight at once
//	ndpbench -benchjson results/bench.json
//	ndpbench -metrics results/  # per-experiment instrument metrics JSON
//	ndpbench -pprof-cpu cpu.out -exp fig10
//	ndpbench chaos -chaos-runs 64 -chaos-seed 1   # fault-plan fuzzing + crash torture
//
// Experiments: fig2, fig10, fig11, fig12, fig13, fig14a, fig14b, fig15,
// fig16a, fig16b, fig16cd, splitdb, l2variants, latency, tab1, tab2,
// serving (open-loop saturation sweep), servedegrade (rank-dark
// degradation curve).
//
// Independent (app, design, config) simulations are fanned across a worker
// pool; -j controls its width (default: one worker per CPU, -j 1 restores
// the sequential order-of-execution, which produces identical tables).
// Each experiment prints wall-clock time and aggregate simulation speed in
// events/sec; -benchjson additionally records the per-experiment numbers as
// machine-readable JSON for tracking the perf trajectory across commits.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/experiments"
	"ndpbridge/internal/metrics"
	"ndpbridge/internal/stats"
)

type expFn func(experiments.Scale) (*stats.Table, error)

var all = []struct {
	name string
	fn   expFn
	// analytic marks experiments computed from closed-form models rather
	// than simulation: they run no events, so they are excluded from the
	// aggregate events/sec summary instead of diluting it with zeros.
	analytic bool
}{
	{name: "tab1", fn: func(experiments.Scale) (*stats.Table, error) { return experiments.Table1(), nil }, analytic: true},
	{name: "tab2", fn: func(experiments.Scale) (*stats.Table, error) { return experiments.Table2(), nil }, analytic: true},
	{name: "fig2", fn: experiments.Fig2},
	{name: "fig10", fn: func(sc experiments.Scale) (*stats.Table, error) { t, _, err := experiments.Fig10(sc); return t, err }},
	{name: "fig11", fn: func(sc experiments.Scale) (*stats.Table, error) { t, _, err := experiments.Fig11(sc); return t, err }},
	{name: "fig12", fn: experiments.Fig12},
	{name: "fig13", fn: func(sc experiments.Scale) (*stats.Table, error) { return experiments.Fig13(sc, nil) }},
	{name: "fig14a", fn: experiments.Fig14a},
	{name: "fig14b", fn: experiments.Fig14b},
	{name: "fig15", fn: experiments.Fig15},
	{name: "fig16a", fn: experiments.Fig16a},
	{name: "fig16b", fn: experiments.Fig16b},
	{name: "fig16cd", fn: experiments.Fig16cd},
	{name: "splitdb", fn: experiments.SplitDB},
	{name: "l2variants", fn: experiments.L2Variants},
	{name: "latency", fn: experiments.Latency},
	{name: "serving", fn: experiments.ServingSweep},
	{name: "servedegrade", fn: experiments.ServingDegrade},
}

// writeCSV stores one experiment table under dir. The write is atomic: a
// crash (or a forced second-Ctrl-C exit) never leaves a truncated table.
func writeCSV(dir, name string, t *stats.Table) error {
	var buf bytes.Buffer
	if err := t.CSV(&buf); err != nil {
		return err
	}
	return checkpoint.WriteFileAtomic(filepath.Join(dir, name+".csv"), buf.Bytes())
}

// benchRecord is the machine-readable perf capture for one experiment.
type benchRecord struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	Runs        uint64  `json:"runs"`
	Events      uint64  `json:"events"`
	Cycles      uint64  `json:"cycles"`
	// Analytic experiments (tab1/tab2) are closed-form models: they run
	// no simulation events, so their zero counts are expected and they
	// are excluded from the aggregate events/sec summary.
	Analytic     bool    `json:"analytic,omitempty"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// benchFile is the top-level schema of -benchjson output.
type benchFile struct {
	Scale       string        `json:"scale"`
	Jobs        int           `json:"jobs"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	TotalWallS  float64       `json:"total_wall_seconds"`
	TotalEvents uint64        `json:"total_events"`
	Experiments []benchRecord `json:"experiments"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		os.Exit(chaosMain(os.Args[2:]))
	}
	var (
		exp       = flag.String("exp", "", "comma-separated experiments to run (default: all)")
		small     = flag.Bool("small", false, "run test-sized systems and workloads")
		scale     = flag.String("scale", "", "workload scale: full (paper-sized), medium, small")
		csvDir    = flag.String("csv", "", "also write each experiment's table as <dir>/<name>.csv")
		jobsN     = flag.Int("j", 0, "simulations to run concurrently (0 = one per CPU, 1 = sequential)")
		benchJSON = flag.String("benchjson", "", "write per-experiment perf records (wall-clock, events, events/sec) to this JSON file")
		metDir    = flag.String("metrics", "", "write each experiment's aggregated instrument metrics as <dir>/<name>.metrics.json")
		pprofCPU  = flag.String("pprof-cpu", "", "write a CPU profile of the whole run to this file")
		pprofMem  = flag.String("pprof-mem", "", "write a heap profile at the end of the run to this file")
		progress  = flag.Bool("progress", false, "print a periodic progress heartbeat to stderr")
		ckptDir   = flag.String("ckpt-dir", "", "persist every completed simulation to this directory so a rerun resumes instead of recomputing")
		resumeDir = flag.String("resume-dir", "", "alias for -ckpt-dir, for resuming a killed campaign")
		auditOn   = flag.Bool("audit", false, "run the invariant auditor inside every simulation; violations fail the experiment")
		compare   = flag.Bool("compare", false, "benchdiff mode: ndpbench -compare old.json new.json prints per-experiment events/sec deltas and exits 1 on regression beyond -compare-threshold")
		compareTh = flag.Float64("compare-threshold", defaultRegressionThreshold, "relative events/sec drop treated as a regression by -compare (0.10 = 10%)")
		critpath  = flag.Bool("critpath", false, "trace causal flows inside every simulation and print a per-experiment critical-path bottleneck table")
	)
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: ndpbench -compare old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *compareTh))
	}
	// Simulations allocate mostly long-lived system state up front and run
	// near allocation-free after warm-up, so the default GC target (100%)
	// mostly re-marks the same live heap. Relaxing it trades transient
	// footprint for mutator throughput; GOGC set explicitly still wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
	experiments.SetJobs(*jobsN)
	if *resumeDir != "" {
		*ckptDir = *resumeDir
	}
	if *ckptDir != "" {
		experiments.SetCheckpointDir(*ckptDir)
	}
	if *auditOn {
		experiments.SetAuditEvery(1 << 14)
	}

	// Ctrl-C cancels the worker pool: no new simulations dispatch and
	// in-flight engines halt at their next progress checkpoint. A second
	// Ctrl-C force-exits even if a worker is wedged and the pool never
	// drains.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	experiments.HandleSignals(sigc,
		experiments.Cancel,
		func() { os.Exit(130) },
		func(n int) {
			if n == 1 {
				fmt.Fprintln(os.Stderr, "\nndpbench: interrupt — stopping worker pool (Ctrl-C again to force quit)")
			} else {
				fmt.Fprintln(os.Stderr, "\nndpbench: forced exit")
			}
		})

	if *pprofCPU != "" {
		f, err := os.Create(*pprofCPU)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndpbench: pprof-cpu: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ndpbench: pprof-cpu: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *progress {
		stop := startProgress()
		defer stop()
	}

	sc := experiments.Full
	scName := "full"
	if *small {
		sc = experiments.Small
		scName = "small"
	}
	switch *scale {
	case "", "full":
	case "medium":
		sc = experiments.Medium
		scName = "medium"
	case "small":
		sc = experiments.Small
		scName = "small"
	default:
		fmt.Fprintf(os.Stderr, "ndpbench: unknown scale %q\n", *scale)
		os.Exit(1)
	}
	want := map[string]bool{}
	if *exp != "" {
		for _, e := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}
	bench := benchFile{Scale: scName, Jobs: experiments.Jobs(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		experiments.ResetCounters()
		if *metDir != "" {
			experiments.EnableMetrics()
		}
		if *critpath {
			experiments.EnableFlowTrace(0)
		}
		start := time.Now()
		t, err := e.fn(sc)
		if err != nil {
			if errors.Is(err, experiments.ErrCanceled) {
				fmt.Fprintln(os.Stderr, "ndpbench: canceled")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "ndpbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		if *metDir != "" {
			if err := writeMetrics(*metDir, e.name, experiments.TakeMetrics()); err != nil {
				fmt.Fprintf(os.Stderr, "ndpbench: metrics %s: %v\n", e.name, err)
				os.Exit(1)
			}
		}
		c := experiments.Counters()
		rec := benchRecord{
			Name: e.name, WallSeconds: wall,
			Runs: c.Runs, Events: c.Events, Cycles: c.Cycles,
			Analytic: e.analytic,
		}
		if wall > 0 && !e.analytic {
			rec.EventsPerSec = float64(c.Events) / wall
		}
		fmt.Println(t.Render())
		if *critpath {
			if rows := experiments.TakeCrit(); len(rows) > 0 {
				fmt.Println(experiments.CritTable(rows).Render())
			}
		}
		cached := ""
		if h := experiments.CacheHits(); h > 0 {
			cached = fmt.Sprintf(", %d resumed from checkpoint", h)
		}
		if c.Runs > 0 || cached != "" {
			fmt.Printf("(%s in %.1fs — %d runs%s, %d events, %.2fM events/sec)\n\n",
				e.name, wall, c.Runs, cached, c.Events, rec.EventsPerSec/1e6)
		} else {
			fmt.Printf("(%s in %.1fs)\n\n", e.name, wall)
		}
		bench.Experiments = append(bench.Experiments, rec)
		if !e.analytic {
			// Analytic tables run no events; keeping them out of the
			// totals keeps aggregate events/sec a pure simulation rate.
			bench.TotalWallS += wall
			bench.TotalEvents += c.Events
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.name, t); err != nil {
				fmt.Fprintf(os.Stderr, "ndpbench: csv %s: %v\n", e.name, err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ndpbench: no experiment matched %q\n", *exp)
		os.Exit(1)
	}
	fmt.Printf("total: %.1fs wall, %d events, %.2fM events/sec aggregate (jobs=%d)\n",
		bench.TotalWallS, bench.TotalEvents, float64(bench.TotalEvents)/bench.TotalWallS/1e6, bench.Jobs)
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, &bench); err != nil {
			fmt.Fprintf(os.Stderr, "ndpbench: benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *pprofMem != "" {
		if err := writeHeapProfile(*pprofMem); err != nil {
			fmt.Fprintf(os.Stderr, "ndpbench: pprof-mem: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeMetrics stores one experiment's aggregated instrument metrics,
// atomically.
func writeMetrics(dir, name string, reg *metrics.Registry) error {
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		return err
	}
	return checkpoint.WriteFileAtomic(filepath.Join(dir, name+".metrics.json"), buf.Bytes())
}

// writeHeapProfile captures the end-of-run heap after a final GC.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// startProgress launches a heartbeat goroutine reporting the package-wide run
// counters every few seconds. The returned func stops it.
func startProgress() func() {
	stop := make(chan struct{})
	go func() {
		start := time.Now()
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				c := experiments.Counters()
				elapsed := time.Since(start).Seconds()
				fmt.Fprintf(os.Stderr, "\rndpbench: %d runs, %dM events, %.2fM events/sec",
					c.Runs, c.Events>>20, float64(c.Events)/elapsed/1e6)
			}
		}
	}()
	return func() {
		close(stop)
		fmt.Fprintln(os.Stderr)
	}
}

// writeBenchJSON stores the perf capture atomically, creating parent
// directories: a partially-written capture would poison the perf-trajectory
// tooling that diffs these files across commits.
func writeBenchJSON(path string, b *benchFile) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return checkpoint.WriteFileAtomic(path, append(data, '\n'))
}

// defaultRegressionThreshold is the default -compare-threshold: the
// events/sec drop (relative to the old capture) past which runCompare flags
// an experiment as regressed and exits non-zero.
const defaultRegressionThreshold = 0.10

func readBenchJSON(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b benchFile
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// runCompare diffs two -benchjson captures (benchdiff): per-experiment
// events/sec deltas plus the aggregate, returning 1 when any non-analytic
// experiment (or the aggregate) regressed by more than threshold. Analytic
// rows and experiments missing from either capture are reported but never
// counted as regressions.
func runCompare(oldPath, newPath string, threshold float64) int {
	oldB, err := readBenchJSON(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndpbench: compare: %v\n", err)
		return 2
	}
	newB, err := readBenchJSON(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndpbench: compare: %v\n", err)
		return 2
	}
	if oldB.Scale != newB.Scale || oldB.Jobs != newB.Jobs {
		fmt.Fprintf(os.Stderr, "ndpbench: compare: captures differ in shape (scale %q jobs %d vs scale %q jobs %d) — deltas may not be meaningful\n",
			oldB.Scale, oldB.Jobs, newB.Scale, newB.Jobs)
	}
	oldBy := map[string]benchRecord{}
	for _, r := range oldB.Experiments {
		oldBy[r.Name] = r
	}
	fmt.Printf("%-12s %14s %14s %9s\n", "experiment", "old ev/s", "new ev/s", "delta")
	var regressions []string
	for _, nr := range newB.Experiments {
		or, ok := oldBy[nr.Name]
		switch {
		case nr.Analytic || (or.EventsPerSec == 0 && nr.EventsPerSec == 0):
			fmt.Printf("%-12s %14s %14s %9s\n", nr.Name, "-", "-", "n/a")
		case !ok:
			fmt.Printf("%-12s %14s %14.0f %9s\n", nr.Name, "(new)", nr.EventsPerSec, "n/a")
		case or.EventsPerSec == 0:
			fmt.Printf("%-12s %14.0f %14.0f %9s\n", nr.Name, or.EventsPerSec, nr.EventsPerSec, "n/a")
		default:
			delta := nr.EventsPerSec/or.EventsPerSec - 1
			mark := ""
			if delta < -threshold {
				mark = "  REGRESSED"
				regressions = append(regressions, fmt.Sprintf("%s %+.1f%%", nr.Name, delta*100))
			}
			fmt.Printf("%-12s %14.0f %14.0f %+8.1f%%%s\n", nr.Name, or.EventsPerSec, nr.EventsPerSec, delta*100, mark)
		}
	}
	if oldB.TotalWallS > 0 && newB.TotalWallS > 0 {
		oldAgg := float64(oldB.TotalEvents) / oldB.TotalWallS
		newAgg := float64(newB.TotalEvents) / newB.TotalWallS
		if oldAgg > 0 {
			delta := newAgg/oldAgg - 1
			mark := ""
			if delta < -threshold {
				mark = "  REGRESSED"
				regressions = append(regressions, fmt.Sprintf("aggregate %+.1f%%", delta*100))
			}
			fmt.Printf("%-12s %14.0f %14.0f %+8.1f%%%s\n", "aggregate", oldAgg, newAgg, delta*100, mark)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "ndpbench: compare: regression beyond %.0f%%: %s\n",
			threshold*100, strings.Join(regressions, ", "))
		return 1
	}
	return 0
}
