// Command ndplint is the repository's custom static-analysis suite: it
// enforces the invariants the simulator's results stand on — bit-identical
// determinism at any -j, complete snapshot coverage, allocation-free hot
// paths, and the metrics layer's nil-receiver contract — at lint time
// instead of discovering their violation in a corrupt resume or a drifted
// result table.
//
// Usage:
//
//	ndplint [flags] [packages]
//
// With no packages, ./... is analyzed. Findings print in go vet's
// file:line:col format and make the exit status 1; operational failures
// (unbuildable packages) exit 2.
//
// Flags:
//
//	-cache DIR           replay cached findings for packages whose sources
//	                     and dependency export data are unchanged
//	-list-suppressions   print every //ndplint: suppression (plus the
//	                     domain/seam ownership declarations) with its
//	                     justification instead of analyzing
//	-ownership-report    print the shardcheck ownership model (domains,
//	                     members, seams, cross-domain edges) as JSON
//	                     instead of analyzing; results/ownership.json is
//	                     the committed form
//	-json                emit findings as a JSON array
//
// The suite runs on the standard library alone (see internal/lint): the
// repo builds with no module downloads, so golang.org/x/tools is
// deliberately not a dependency.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"ndpbridge/internal/lint/analysis"
	"ndpbridge/internal/lint/determinism"
	"ndpbridge/internal/lint/directive"
	"ndpbridge/internal/lint/hotpath"
	"ndpbridge/internal/lint/load"
	"ndpbridge/internal/lint/nilmetrics"
	"ndpbridge/internal/lint/shardcheck"
	"ndpbridge/internal/lint/snapcover"
)

var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	snapcover.Analyzer,
	hotpath.Analyzer,
	nilmetrics.Analyzer,
	directive.Analyzer,
}

// globalAnalyzers run once over every loaded package together; their
// findings cache on the whole load, not per package.
var globalAnalyzers = []*analysis.GlobalAnalyzer{
	shardcheck.Analyzer,
}

// cwd anchors diagnostic paths: findings and the suppression inventory
// render repo-relative so the committed golden files are machine-portable.
var cwd, _ = os.Getwd()

// finding is one rendered diagnostic, also the cache entry format.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	cacheDir := flag.String("cache", "", "directory for the analysis fact cache (empty: no caching)")
	asJSON := flag.Bool("json", false, "emit findings as JSON")
	listSup := flag.Bool("list-suppressions", false, "list every ndplint suppression with its justification")
	ownership := flag.Bool("ownership-report", false, "print the shardcheck ownership model as JSON")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndplint:", err)
		os.Exit(2)
	}

	if *listSup {
		listSuppressions(pkgs, os.Stdout)
		return
	}

	if *ownership {
		model, _ := shardcheck.Analyze(unitsOf(pkgs))
		b, err := model.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndplint:", err)
			os.Exit(2)
		}
		os.Stdout.Write(b)
		return
	}

	var all []finding
	for _, pkg := range pkgs {
		fs, err := analyzePkg(pkg, *cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndplint:", err)
			os.Exit(2)
		}
		all = append(all, fs...)
	}
	gfs, err := analyzeGlobal(pkgs, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndplint:", err)
		os.Exit(2)
	}
	all = append(all, gfs...)

	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []finding{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "ndplint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range all {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}

// analyzePkg runs every analyzer over pkg, consulting the fact cache first.
func analyzePkg(pkg *load.Package, cacheDir string) (fs []finding, err error) {
	var cachePath string
	if cacheDir != "" {
		cachePath = filepath.Join(cacheDir, cacheKey(pkg)+".json")
		if b, err := os.ReadFile(cachePath); err == nil {
			var fs []finding
			if json.Unmarshal(b, &fs) == nil {
				return fs, nil
			}
			// Corrupt entry: fall through and re-analyze.
		}
	}

	fs = []finding{}
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(cwd, file); err == nil && len(rel) < len(file) {
				file = rel
			}
			fs = append(fs, finding{
				File: file, Line: pos.Line, Col: pos.Column,
				Analyzer: a.Name, Message: d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
		}
	}

	if cachePath != "" {
		if err := os.MkdirAll(cacheDir, 0o755); err == nil {
			if b, err := json.Marshal(fs); err == nil {
				// Best-effort: a failed cache write only costs re-analysis.
				_ = os.WriteFile(cachePath, b, 0o644)
			}
		}
	}
	return fs, nil
}

// unitsOf adapts loaded packages to the global-analyzer input.
func unitsOf(pkgs []*load.Package) []*analysis.Unit {
	units := make([]*analysis.Unit, 0, len(pkgs))
	for _, pkg := range pkgs {
		units = append(units, &analysis.Unit{
			Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, TypesInfo: pkg.Info,
		})
	}
	return units
}

// analyzeGlobal runs the whole-program analyzers over every loaded package,
// consulting the fact cache first. The cache key covers every package's
// fingerprint: a change anywhere invalidates the global findings.
func analyzeGlobal(pkgs []*load.Package, cacheDir string) (fs []finding, err error) {
	var cachePath string
	if cacheDir != "" {
		cachePath = filepath.Join(cacheDir, globalCacheKey(pkgs)+".json")
		if b, err := os.ReadFile(cachePath); err == nil {
			var fs []finding
			if json.Unmarshal(b, &fs) == nil {
				return fs, nil
			}
		}
	}

	fs = []finding{}
	units := unitsOf(pkgs)
	for _, a := range globalAnalyzers {
		pass := &analysis.GlobalPass{Analyzer: a, Units: units}
		pass.Report = func(u *analysis.Unit, d analysis.Diagnostic) {
			pos := u.Fset.Position(d.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(cwd, file); err == nil && len(rel) < len(file) {
				file = rel
			}
			fs = append(fs, finding{
				File: file, Line: pos.Line, Col: pos.Column,
				Analyzer: a.Name, Message: d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}

	if cachePath != "" {
		if err := os.MkdirAll(cacheDir, 0o755); err == nil {
			if b, err := json.Marshal(fs); err == nil {
				_ = os.WriteFile(cachePath, b, 0o644)
			}
		}
	}
	return fs, nil
}

// globalCacheKey crosses every loaded package's fingerprint with the
// toolchain and global-analyzer versions.
func globalCacheKey(pkgs []*load.Package) string {
	h := sha256.New()
	fmt.Fprintf(h, "go %s\n", runtime.Version())
	for _, a := range globalAnalyzers {
		fmt.Fprintf(h, "global %s v%d\n", a.Name, a.Version)
	}
	for _, pkg := range pkgs {
		fmt.Fprintf(h, "pkg %s %s\n", pkg.PkgPath, pkg.Fingerprint)
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// cacheKey derives the fact-cache key for one package: its content
// fingerprint (own sources + dependency export data) crossed with the
// toolchain and the analyzer suite's versions.
func cacheKey(pkg *load.Package) string {
	h := sha256.New()
	fmt.Fprintf(h, "go %s\n", runtime.Version())
	for _, a := range analyzers {
		fmt.Fprintf(h, "analyzer %s v%d\n", a.Name, a.Version)
	}
	fmt.Fprintf(h, "pkg %s %s\n", pkg.PkgPath, pkg.Fingerprint)
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// listSuppressions prints the audited-suppression inventory: every
// suppression plus the ownership declarations (domain, seam), which widen
// checked surfaces and are review-worthy state in the same way.
func listSuppressions(pkgs []*load.Package, w io.Writer) {
	n := 0
	for _, pkg := range pkgs {
		m := directive.Parse(pkg.Fset, pkg.Files)
		for _, d := range m.All() {
			if !d.Listed() {
				continue
			}
			file := d.File
			if rel, err := filepath.Rel(cwd, file); err == nil && len(rel) < len(file) {
				file = rel
			}
			line := fmt.Sprintf("%s:%d: //ndplint:%s", file, d.Line, d.Display())
			if d.Justification != "" {
				line += " " + d.Justification
			}
			fmt.Fprintln(w, line)
			n++
		}
	}
	fmt.Fprintf(w, "%d suppression(s)\n", n)
}
