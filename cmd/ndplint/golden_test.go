package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ndpbridge/internal/lint/load"
	"ndpbridge/internal/lint/shardcheck"
)

// repoRoot resolves the module root (two levels above cmd/ndplint) and
// re-anchors the process and the path-rendering base there, so the golden
// comparisons see the same repo-relative paths the committed files carry.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(root)
	old := cwd
	cwd = root
	t.Cleanup(func() { cwd = old })
	return root
}

// TestOwnershipGoldenReproduces asserts that re-deriving the shardcheck
// ownership model over the tree reproduces the committed
// results/ownership.json byte-for-byte. When the sharding surface changes
// legitimately, regenerate with:
//
//	go run ./cmd/ndplint -ownership-report ./... > results/ownership.json
func TestOwnershipGoldenReproduces(t *testing.T) {
	root := repoRoot(t)

	pkgs, err := load.Packages(root, "./...")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	model, diags := shardcheck.Analyze(unitsOf(pkgs))
	if len(diags) != 0 {
		for _, d := range diags {
			pos := d.Unit.Fset.Position(d.Pos)
			t.Errorf("unexpected shardcheck finding at %s:%d: %s", pos.Filename, pos.Line, d.Message)
		}
		t.Fatal("the tree must be shardcheck-clean before the golden comparison means anything")
	}

	got, err := model.Encode()
	if err != nil {
		t.Fatalf("encoding model: %v", err)
	}
	want, err := os.ReadFile(filepath.Join(root, "results", "ownership.json"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("ownership model drifted from results/ownership.json\n"+
			"regenerate with: go run ./cmd/ndplint -ownership-report ./... > results/ownership.json\n"+
			"got %d bytes, want %d bytes", len(got), len(want))
	}
}

// TestSuppressionInventoryGolden asserts the audited-suppression inventory
// matches the committed golden file, so every new suppression or ownership
// directive shows up as a reviewable diff. Regenerate with:
//
//	go run ./cmd/ndplint -list-suppressions ./... > results/golden/ndplint-suppressions.txt
func TestSuppressionInventoryGolden(t *testing.T) {
	root := repoRoot(t)

	pkgs, err := load.Packages(root, "./...")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	var buf bytes.Buffer
	listSuppressions(pkgs, &buf)

	want, err := os.ReadFile(filepath.Join(root, "results", "golden", "ndplint-suppressions.txt"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("suppression inventory drifted from results/golden/ndplint-suppressions.txt\n" +
			"regenerate with: go run ./cmd/ndplint -list-suppressions ./... > results/golden/ndplint-suppressions.txt")
	}
}
