// Quickstart: simulate one paper workload on the default 512-unit NDPBridge
// system and print the headline measurements.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ndpbridge"
)

func main() {
	cfg := ndpbridge.DefaultConfig() // Table I: 512 units, design O
	sys, err := ndpbridge.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	app, err := ndpbridge.NewApp("tree")
	if err != nil {
		log.Fatal(err)
	}

	r, err := sys.Run(app)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(r)
	fmt.Printf("executed %d tasks across %d NDP units\n", r.TasksExecuted, len(r.Units))
	fmt.Printf("makespan %.3f ms, communication wait %.1f%%, balance (avg/max) %.1f%%\n",
		float64(r.Makespan)*2.5e-6, 100*r.WaitFrac(), 100*r.AvgFrac())
	fmt.Printf("energy: %.2f mJ (%.2f core+SRAM, %.2f local DRAM, %.2f comm, %.2f static)\n",
		r.Energy.Total(), r.Energy.CoreSRAM, r.Energy.LocalDRAM, r.Energy.CommDRAM, r.Energy.Static)
	fmt.Printf("load balancing: %d blocks migrated in %d rounds\n", r.BlocksMigrated, r.LBRounds)
}
