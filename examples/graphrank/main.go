// graphrank runs the built-in push-style PageRank workload and compares all
// six evaluated designs (Table II), reproducing the flavor of the paper's
// Figures 10 and 11 for a single application.
//
//	go run ./examples/graphrank
package main

import (
	"fmt"
	"log"
	"time"

	"ndpbridge"
)

func main() {
	designs := []ndpbridge.Design{
		ndpbridge.DesignC, ndpbridge.DesignB, ndpbridge.DesignW,
		ndpbridge.DesignO, ndpbridge.DesignH, ndpbridge.DesignR,
	}
	fmt.Println("PageRank (RMAT graph, bulk-synchronous push) on every design:")
	fmt.Printf("%-8s %14s %10s %10s %12s %10s\n",
		"design", "makespan(cyc)", "wait%", "energy(mJ)", "traffic(MB)", "sim(s)")

	var baseline uint64
	for _, d := range designs {
		cfg := ndpbridge.DefaultConfig().WithDesign(d)
		sys, err := ndpbridge.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		app, err := ndpbridge.NewApp("pr")
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		r, err := sys.Run(app)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = r.Makespan
		}
		traffic := float64(r.IntraRankBytes+r.CrossRankBytes+r.HostBytes) / (1 << 20)
		fmt.Printf("%-8s %14d %9.1f%% %10.2f %12.1f %10.1f   (%.2fx vs C)\n",
			d, r.Makespan, 100*r.WaitFrac(), r.Energy.Total(), traffic,
			time.Since(start).Seconds(), float64(baseline)/float64(r.Makespan))
	}
}
