// treeindex explores the paper's motivating workload (Figure 2): tree
// traversal, where every pointer chase crosses banks. It sweeps the
// communication-triggering policies and the transfer granularity G_xfer on
// full NDPBridge, the single-application analogue of Figures 14(b) and
// 16(a).
//
//	go run ./examples/treeindex
package main

import (
	"fmt"
	"log"

	"ndpbridge"
)

func runTree(mutate func(*ndpbridge.Config)) *ndpbridge.Result {
	cfg := ndpbridge.DefaultConfig() // design O
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := ndpbridge.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	app, err := ndpbridge.NewApp("tree")
	if err != nil {
		log.Fatal(err)
	}
	r, err := sys.Run(app)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	fmt.Println("tree-traversal index on full NDPBridge (design O)")

	base := runTree(nil)
	fmt.Printf("\ndefault:          makespan %d cycles, wait %.1f%%, %d blocks migrated\n",
		base.Makespan, 100*base.WaitFrac(), base.BlocksMigrated)

	fmt.Println("\ncommunication trigger sweep (Fig. 14(b) analogue):")
	for _, tr := range []ndpbridge.Trigger{
		ndpbridge.TriggerDynamic, ndpbridge.TriggerFixedIMin, ndpbridge.TriggerFixed2IMin,
	} {
		tr := tr
		r := runTree(func(c *ndpbridge.Config) { c.Trigger = tr })
		fmt.Printf("  %-12s makespan %10d cycles (%.2fx), comm energy %.2f mJ\n",
			tr, r.Makespan, float64(base.Makespan)/float64(r.Makespan), r.Energy.CommDRAM)
	}

	fmt.Println("\nG_xfer sweep (Fig. 16(a) analogue):")
	for _, g := range []uint64{64, 256, 1024} {
		g := g
		r := runTree(func(c *ndpbridge.Config) { c.GXfer = g })
		fmt.Printf("  %4d B:      makespan %10d cycles (%.2fx), traffic %.1f MB\n",
			g, r.Makespan, float64(base.Makespan)/float64(r.Makespan),
			float64(r.IntraRankBytes+r.CrossRankBytes)/(1<<20))
	}
}
