// kvstore builds a custom application on the public API: a sharded
// key-value GET service with Zipf-skewed traffic, the workload class the
// paper's hash-table benchmark abstracts. It then demonstrates what the
// NDPBridge co-design buys: the same service is simulated on the
// host-forwarding baseline (C), bridges only (B), and full NDPBridge (O).
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"ndpbridge"
)

const (
	shards       = 2048
	recsPerShard = 64
	recordBytes  = 256 // one value record = one G_xfer block
	requests     = 20000
	lookupCost   = 120 // cycles to parse, compare and respond
)

// kvApp shards records round-robin across the NDP units; every GET is one
// task bound to its record's block.
type kvApp struct {
	recAddr [][]uint64 // shard → record addresses
	reqs    []int32    // shard of each request
	recIdx  []int32    // record within the shard
	fn      ndpbridge.FuncID
	served  int
}

func (a *kvApp) Name() string { return "kvstore" }

func (a *kvApp) Prepare(s *ndpbridge.System) error {
	units := s.Units()
	a.recAddr = make([][]uint64, shards)
	// Lay out records: shard i lives wholly in unit i%units.
	next := make([]uint64, units)
	for sh := 0; sh < shards; sh++ {
		u := sh % units
		addrs := make([]uint64, recsPerShard)
		for r := range addrs {
			addrs[r] = s.UnitBase(u) + next[u]
			next[u] += recordBytes
		}
		a.recAddr[sh] = addrs
	}
	// Zipf-ish request skew without pulling in the generator internals:
	// request k hits shard (k*k) % shards for a heavy head.
	a.reqs = make([]int32, requests)
	a.recIdx = make([]int32, requests)
	for k := 0; k < requests; k++ {
		sh := (k * k * 31) % (k%7*shards/8 + shards/8)
		a.reqs[k] = int32(sh % shards)
		a.recIdx[k] = int32((k * 13) % recsPerShard)
	}
	a.fn = s.Register("kv.get", func(ctx ndpbridge.Ctx, t ndpbridge.Task) {
		ctx.Read(t.Addr, recordBytes)
		ctx.Compute(lookupCost)
		a.served++
	})
	return nil
}

func (a *kvApp) SeedEpoch(s *ndpbridge.System, ts uint32) bool {
	if ts > 0 {
		return false
	}
	for k := range a.reqs {
		addr := a.recAddr[a.reqs[k]][a.recIdx[k]]
		s.Seed(ndpbridge.NewTask(a.fn, 0, addr, lookupCost+40))
	}
	return true
}

func main() {
	fmt.Println("key-value GET service, Zipf-skewed shards, 512 NDP units")
	fmt.Printf("%-8s %14s %10s %10s %12s\n", "design", "makespan(cyc)", "wait%", "avg/max%", "migrated")
	var base uint64
	for _, d := range []ndpbridge.Design{ndpbridge.DesignC, ndpbridge.DesignB, ndpbridge.DesignO} {
		sys, err := ndpbridge.NewSystem(ndpbridge.DefaultConfig().WithDesign(d))
		if err != nil {
			log.Fatal(err)
		}
		app := &kvApp{}
		r, err := sys.Run(app)
		if err != nil {
			log.Fatal(err)
		}
		if app.served != requests {
			log.Fatalf("served %d of %d requests", app.served, requests)
		}
		if base == 0 {
			base = r.Makespan
		}
		fmt.Printf("%-8s %14d %9.1f%% %9.1f%% %12d   (%.2fx)\n",
			d, r.Makespan, 100*r.WaitFrac(), 100*r.AvgFrac(), r.BlocksMigrated,
			float64(base)/float64(r.Makespan))
	}
}
