package sched

import (
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/sim"
)

func lbO() config.LoadBalance {
	return config.LoadBalance{Adv: true, Fine: true, Hot: true, StealFactor: 2, Correction: true}
}

func lbW() config.LoadBalance {
	return config.LoadBalance{Correction: true, StealFactor: 2}
}

func TestWth(t *testing.T) {
	// 2 × 256 × 1 / 6 = 85.
	if got := Wth(256, 1, 6); got != 85 {
		t.Errorf("Wth = %d, want 85", got)
	}
	if Wth(256, 0, 6) == 0 {
		t.Error("zero sexe must not zero the threshold")
	}
	if Wth(256, 1, 0) != 1 {
		t.Error("zero sxfer must degrade to 1")
	}
	if Wth(1, 0.001, 1000) != 1 {
		t.Error("threshold must be at least 1")
	}
}

func TestEstimateSexe(t *testing.T) {
	if got := EstimateSexe(4000, 2000, 2); got != 1 {
		t.Errorf("Sexe = %v, want 1", got)
	}
	if EstimateSexe(0, 2000, 2) != 1 {
		t.Error("zero progress must default to 1")
	}
	if EstimateSexe(100, 0, 2) != 1 {
		t.Error("zero interval must default to 1")
	}
}

func TestReceiversAdvVsPlain(t *testing.T) {
	states := []ChildState{
		{ID: 0, WQueue: 0},
		{ID: 1, WQueue: 50},
		{ID: 2, WQueue: 200},
	}
	// +Adv with wth=100: children below 100 are receivers.
	got := Receivers(states, lbO(), 100)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Adv receivers = %v, want [0 1]", got)
	}
	// Without Adv: only empty queues.
	got = Receivers(states, lbW(), 100)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("plain receivers = %v, want [0]", got)
	}
}

func TestReceiversCorrection(t *testing.T) {
	states := []ChildState{{ID: 0, WQueue: 0, ToArrive: 500}}
	if got := Receivers(states, lbO(), 100); len(got) != 0 {
		t.Errorf("child with pending arrivals must not be a receiver, got %v", got)
	}
	lb := lbO()
	lb.Correction = false
	if got := Receivers(states, lb, 100); len(got) != 1 {
		t.Errorf("without correction the child looks idle, got %v", got)
	}
}

func TestGivers(t *testing.T) {
	states := []ChildState{
		{ID: 0, WQueue: 0},
		{ID: 1, WQueue: 101},
		{ID: 2, WQueue: 99},
	}
	got := Givers(states, lbO(), 100)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("givers = %v, want [1]", got)
	}
	// Plain stealing: anything above the tiny floor gives.
	got = Givers(states, lbW(), 100)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("plain givers (floor=wth) = %v", got)
	}
}

func TestRequired(t *testing.T) {
	// +Fine: StealFactor × wth.
	if got := Required(lbO(), 85, 10000); got != 170 {
		t.Errorf("fine Required = %d, want 170", got)
	}
	// Traditional: half the victim queue.
	if got := Required(lbW(), 85, 10000); got != 5000 {
		t.Errorf("stealing Required = %d, want 5000", got)
	}
	if Required(lbW(), 85, 1) != 1 {
		t.Error("Required must be at least 1")
	}
}

func TestMatchBudgetsSum(t *testing.T) {
	rng := sim.NewRNG(3)
	receivers := []int{10, 11, 12, 13}
	givers := []int{1, 2}
	queueOf := func(g int) uint64 { return 1000 }
	cmds := Match(rng, receivers, givers, lbO(), 85, queueOf)
	var budget uint64
	var rcount int
	seen := map[int]bool{}
	for _, c := range cmds {
		if seen[c.Giver] {
			t.Error("duplicate giver command")
		}
		seen[c.Giver] = true
		budget += c.Budget
		rcount += len(c.Receivers)
		if c.Budget != uint64(len(c.Receivers))*170 {
			t.Errorf("budget %d for %d receivers", c.Budget, len(c.Receivers))
		}
	}
	if rcount != 4 {
		t.Errorf("matched %d receivers, want 4", rcount)
	}
	if budget != 4*170 {
		t.Errorf("total budget = %d, want %d", budget, 4*170)
	}
}

func TestMatchEmpty(t *testing.T) {
	rng := sim.NewRNG(1)
	if Match(rng, nil, []int{1}, lbO(), 85, func(int) uint64 { return 0 }) != nil {
		t.Error("no receivers → no commands")
	}
	if Match(rng, []int{1}, nil, lbO(), 85, func(int) uint64 { return 0 }) != nil {
		t.Error("no givers → no commands")
	}
}

func TestMatchDeterministicWithSeed(t *testing.T) {
	mk := func() []Command {
		return Match(sim.NewRNG(42), []int{1, 2, 3}, []int{7, 8, 9}, lbO(), 85,
			func(int) uint64 { return 100 })
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("nondeterministic match")
	}
	for i := range a {
		if a[i].Giver != b[i].Giver || a[i].Budget != b[i].Budget {
			t.Fatal("nondeterministic match")
		}
	}
}

func TestPickBuddy(t *testing.T) {
	dead := map[int]bool{5: true}
	alive := func(u int) bool { return !dead[u] }
	// Same-rank neighbour first (perRank=4: rank of 5 is units 4..7).
	if got := PickBuddy(5, 4, 16, alive); got != 6 {
		t.Fatalf("buddy = %d, want 6", got)
	}
	// Whole rank dead: fall back to a global scan.
	dead = map[int]bool{4: true, 5: true, 6: true, 7: true}
	if got := PickBuddy(5, 4, 16, alive); got != 8 {
		t.Fatalf("buddy = %d, want 8", got)
	}
	// Everyone dead: -1.
	all := func(int) bool { return false }
	if got := PickBuddy(5, 4, 16, all); got != -1 {
		t.Fatalf("buddy = %d, want -1", got)
	}
}
