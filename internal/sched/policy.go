// Package sched implements the load-balancing decision logic of Section VI
// as pure functions over gathered child state, so bridges at both levels can
// share it and the ablation study (Figure 14(a)) can toggle each optimization
// independently:
//
//   - in-advance scheduling (+Adv): a child becomes a receiver when its
//     remaining queue workload drops below W_th, instead of at empty,
//     hiding the data transfer latency;
//   - fine-grained stealing (+Fine): each receiver asks for only
//     StealFactor × W_th workload instead of half the victim's queue,
//     avoiding transfer congestion;
//   - workload correction: W_queue is corrected by the toArrive counter of
//     already-scheduled but still-transferring work.
//
// Hot-data selection (+Hot) lives on the giver side (ndpunit.CommandSchedule).
package sched

import (
	"ndpbridge/internal/config"
	"ndpbridge/internal/sim"
)

// ChildState is the scheduler's view of one child (an NDP unit under a
// level-1 bridge, or a level-1 bridge under the level-2 bridge).
type ChildState struct {
	ID       int
	WQueue   uint64 // queued workload from the last state message
	ToArrive uint64 // scheduled but still-transferring workload
	Idle     bool   // the child reported no runnable work at all
}

// Command instructs one giver to schedule out Budget workload.
type Command struct {
	Giver  int
	Budget uint64
	// Receivers lists the matched receivers, in the order blocks should
	// be assigned to them.
	Receivers []int
}

// Wth computes the in-advance threshold W_th = 2 × G_xfer × S_exe / S_xfer
// (Section VI-C). sexe is workload executed per cycle, sxfer bytes per cycle
// between units and the bridge. The factor 2 accounts for transfers to and
// from the bridge. The result is at least 1.
func Wth(gxfer uint64, sexe, sxfer float64) uint64 {
	if sxfer <= 0 {
		return 1
	}
	if sexe <= 0 {
		sexe = 1
	}
	w := uint64(2 * float64(gxfer) * sexe / sxfer)
	if w == 0 {
		w = 1
	}
	return w
}

// EstimateSexe derives the average execution speed (workload per cycle) from
// the finished-workload delta across one state period.
func EstimateSexe(deltaFinished uint64, interval sim.Cycles, children int) float64 {
	if interval == 0 || children == 0 {
		return 1
	}
	s := float64(deltaFinished) / float64(interval) / float64(children)
	if s <= 0 {
		return 1
	}
	return s
}

// effective returns the corrected queue workload of a child.
func effective(c ChildState, lb config.LoadBalance) uint64 {
	w := c.WQueue
	if lb.Correction {
		w += c.ToArrive
	}
	return w
}

// Receivers returns the children that should be refilled. Without +Adv a
// child is a receiver only when its (corrected) workload is zero; with +Adv,
// when it falls below wth.
func Receivers(states []ChildState, lb config.LoadBalance, wth uint64) []int {
	var out []int
	for _, c := range states {
		w := effective(c, lb)
		if lb.Adv {
			if w < wth {
				out = append(out, c.ID)
			}
		} else if w == 0 {
			out = append(out, c.ID)
		}
	}
	return out
}

// Givers returns the children with enough spare work to lend: corrected
// workload strictly above the giver floor (wth, or 1 for non-Adv policies so
// a queue of a single task is not raided).
func Givers(states []ChildState, lb config.LoadBalance, wth uint64) []int {
	floor := wth
	if !lb.Adv && floor < 2 {
		floor = 2
	}
	var out []int
	for _, c := range states {
		if effective(c, lb) > floor {
			out = append(out, c.ID)
		}
	}
	return out
}

// Required returns how much workload one receiver asks for. With +Fine it is
// StealFactor × wth; otherwise it is half the matched giver's queue
// (traditional work stealing).
func Required(lb config.LoadBalance, wth, giverQueue uint64) uint64 {
	if lb.Fine {
		r := uint64(lb.StealFactor) * wth
		if r == 0 {
			r = 1
		}
		return r
	}
	r := giverQueue / 2
	if r == 0 {
		r = 1
	}
	return r
}

// PickBuddy selects the unit that adopts a dead unit's address range and
// outstanding work: the next alive unit in the same rank (round-robin from
// the dead unit, so consecutive kills in one rank spread over survivors),
// falling back to a global scan when the whole rank is dead. Returns -1 when
// no unit in the system is alive. perRank is units per rank, total the
// system unit count, alive the liveness predicate.
func PickBuddy(dead, perRank, total int, alive func(int) bool) int {
	rankBase := dead / perRank * perRank
	for i := 1; i < perRank; i++ {
		u := rankBase + (dead-rankBase+i)%perRank
		if alive(u) {
			return u
		}
	}
	for i := 1; i < total; i++ {
		u := (dead + i) % total
		if alive(u) {
			return u
		}
	}
	return -1
}

// Match randomly pairs each receiver with a giver (Section VI-A step 1) and
// accumulates per-giver budgets. queueOf returns the giver's current queue
// workload for the traditional-stealing amount.
func Match(rng *sim.RNG, receivers, givers []int, lb config.LoadBalance, wth uint64, queueOf func(giver int) uint64) []Command {
	if len(receivers) == 0 || len(givers) == 0 {
		return nil
	}
	byGiver := make(map[int]*Command)
	var order []int
	for _, r := range receivers {
		g := givers[rng.Intn(len(givers))]
		cmd := byGiver[g]
		if cmd == nil {
			cmd = &Command{Giver: g}
			byGiver[g] = cmd
			order = append(order, g)
		}
		cmd.Budget += Required(lb, wth, queueOf(g))
		cmd.Receivers = append(cmd.Receivers, r)
	}
	out := make([]Command, 0, len(order))
	for _, g := range order {
		out = append(out, *byGiver[g])
	}
	return out
}
