package metadata

import (
	"testing"
	"testing/quick"
)

func TestIsLentBasics(t *testing.T) {
	l := NewIsLent(64<<20, 256)
	if l.Blocks() != (64<<20)/256 {
		t.Fatalf("Blocks = %d", l.Blocks())
	}
	if l.Lent(0) || l.Lent(1000) {
		t.Error("fresh bitmap should be clear")
	}
	if !l.SetLent(300, true) {
		t.Error("SetLent should report change")
	}
	// Offsets 256..511 are the same block.
	if !l.Lent(256) || !l.Lent(511) || l.Lent(512) {
		t.Error("block granularity wrong")
	}
	if l.SetLent(400, true) {
		t.Error("re-setting should report no change")
	}
	if l.Count() != 1 {
		t.Errorf("Count = %d, want 1", l.Count())
	}
	if !l.SetLent(256, false) || l.Count() != 0 {
		t.Error("clear failed")
	}
}

func TestIsLentOutOfRangePanics(t *testing.T) {
	l := NewIsLent(1024, 256)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	l.Lent(1024)
}

func TestIsLentNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewIsLent(1024, 100)
}

func TestBorrowedInsertLookup(t *testing.T) {
	b := NewBorrowed(64, 8)
	if _, ok := b.Lookup(42); ok {
		t.Error("empty table lookup should miss")
	}
	if _, ev := b.Insert(42, 7); ev {
		t.Error("insert into empty set must not evict")
	}
	if v, ok := b.Lookup(42); !ok || v != 7 {
		t.Errorf("Lookup = %v, %v", v, ok)
	}
	// Update in place.
	if _, ev := b.Insert(42, 9); ev {
		t.Error("update must not evict")
	}
	if v, _ := b.Lookup(42); v != 9 {
		t.Errorf("after update = %v", v)
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestBorrowedRemove(t *testing.T) {
	b := NewBorrowed(64, 8)
	b.Insert(1, 100)
	if !b.Remove(1) {
		t.Error("Remove should find entry")
	}
	if b.Remove(1) {
		t.Error("double Remove should fail")
	}
	if b.Contains(1) || b.Len() != 0 {
		t.Error("entry not removed")
	}
}

func TestBorrowedLRUEviction(t *testing.T) {
	// Single set of 4 ways: force conflicts.
	b := NewBorrowed(4, 4)
	keys := []uint64{10, 20, 30, 40}
	for i, k := range keys {
		b.Insert(k, uint64(i))
	}
	// Touch 10 so 20 becomes LRU.
	b.Lookup(10)
	ev, evicted := b.Insert(50, 99)
	if !evicted {
		t.Fatal("fifth insert must evict")
	}
	if ev.Key != 20 {
		t.Errorf("evicted %d, want 20 (LRU)", ev.Key)
	}
	if !b.Contains(10) || !b.Contains(50) {
		t.Error("survivors wrong")
	}
	if b.Len() != 4 {
		t.Errorf("Len = %d, want 4", b.Len())
	}
}

func TestBorrowedBadShapePanics(t *testing.T) {
	for _, c := range []struct{ entries, ways int }{{10, 3}, {0, 1}, {8, 0}, {24, 8}} {
		func() {
			defer func() { recover() }()
			NewBorrowed(c.entries, c.ways)
			t.Errorf("NewBorrowed(%d,%d) should panic", c.entries, c.ways)
		}()
	}
}

func TestBorrowedForEach(t *testing.T) {
	b := NewBorrowed(64, 8)
	want := map[uint64]uint64{1: 10, 2: 20, 3: 30}
	for k, v := range want {
		b.Insert(k, v)
	}
	got := map[uint64]uint64{}
	b.ForEach(func(k, v uint64) { got[k] = v })
	if len(got) != len(want) {
		t.Fatalf("visited %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("entry %d = %d, want %d", k, got[k], v)
		}
	}
}

// Property: a Borrowed table behaves like a size-limited map — any key
// reported present returns the last inserted value, and Len never exceeds
// capacity.
func TestBorrowedMapEquivalenceProperty(t *testing.T) {
	f := func(keys []uint16, vals []uint16) bool {
		b := NewBorrowed(16, 4)
		model := map[uint64]uint64{}
		for i, kr := range keys {
			k := uint64(kr % 64)
			var v uint64
			if i < len(vals) {
				v = uint64(vals[i])
			}
			ev, evicted := b.Insert(k, v)
			model[k] = v
			if evicted {
				delete(model, ev.Key)
			}
			if b.Len() > b.Capacity() {
				return false
			}
			got, ok := b.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		// Every surviving model entry must match the table.
		okAll := true
		b.ForEach(func(k, v uint64) {
			if mv, ok := model[k]; !ok || mv != v {
				okAll = false
			}
		})
		return okAll && b.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: isLent Count always equals the number of distinct blocks set.
func TestIsLentCountProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		l := NewIsLent(1<<16, 256)
		model := map[uint64]bool{}
		for i, op := range ops {
			off := uint64(op) % (1 << 16)
			block := off / 256
			lent := i%3 != 0
			l.SetLent(off, lent)
			if lent {
				model[block] = true
			} else {
				delete(model, block)
			}
			if l.Lent(off) != lent {
				return false
			}
		}
		return l.Count() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
