package metadata

import (
	"fmt"
)

// Borrowed is a set-associative, LRU-replaced table keyed by a block's
// original (home) address. In an NDP unit the value is the block's remapped
// address in the borrowed data region; in a bridge it is the borrowing
// receiver's unit ID. When an entry is evicted, the owner must return the
// block home — the Evicted callback result surfaces that.
type Borrowed struct {
	sets  int
	ways  int
	table []bentry // sets × ways
	clock uint64
	used  int
	// setUsed counts valid entries per set, letting snapshot encoding skip
	// empty sets entirely: the tables are sized for the paper's full-scale
	// machine (64k entries per bridge) but mostly empty in small runs, and
	// the auditor snapshots them repeatedly.
	setUsed []uint32
}

type bentry struct {
	valid bool
	key   uint64
	value uint64
	lru   uint64
}

// Eviction describes an entry displaced by Insert.
type Eviction struct {
	Key   uint64
	Value uint64
}

// NewBorrowed builds a table with the given total entries and associativity.
// entries must be a multiple of ways and the set count must be a power of
// two.
func NewBorrowed(entries, ways int) *Borrowed {
	if ways <= 0 || entries <= 0 || entries%ways != 0 {
		panic("metadata: entries must be a positive multiple of ways")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("metadata: set count %d must be a power of two", sets))
	}
	return &Borrowed{sets: sets, ways: ways, table: make([]bentry, entries), setUsed: make([]uint32, sets)}
}

func (b *Borrowed) setIndex(key uint64) int {
	// Keys are block addresses; drop the low bits that are constant
	// within a block by hashing, so consecutive blocks spread over sets.
	h := key * 0x9e3779b97f4a7c15
	return int(h>>32) & (b.sets - 1)
}

func (b *Borrowed) set(key uint64) []bentry {
	s := b.setIndex(key)
	return b.table[s*b.ways : (s+1)*b.ways]
}

// Lookup returns the value for key and touches its LRU position.
func (b *Borrowed) Lookup(key uint64) (uint64, bool) {
	set := b.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			b.clock++
			set[i].lru = b.clock
			return set[i].value, true
		}
	}
	return 0, false
}

// Contains reports presence without touching LRU state.
func (b *Borrowed) Contains(key uint64) bool {
	set := b.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			return true
		}
	}
	return false
}

// Insert adds or updates key→value. If the set is full, the LRU entry is
// evicted and returned.
func (b *Borrowed) Insert(key, value uint64) (ev Eviction, evicted bool) {
	si := b.setIndex(key)
	set := b.table[si*b.ways : (si+1)*b.ways]
	b.clock++
	var victim *bentry
	for i := range set {
		e := &set[i]
		if e.valid && e.key == key {
			e.value = value
			e.lru = b.clock
			return Eviction{}, false
		}
		if !e.valid {
			if victim == nil || victim.valid {
				victim = e
			}
		} else if victim == nil || (victim.valid && e.lru < victim.lru) {
			victim = e
		}
	}
	if victim.valid {
		ev = Eviction{Key: victim.key, Value: victim.value}
		evicted = true
	} else {
		b.used++
		b.setUsed[si]++
	}
	*victim = bentry{valid: true, key: key, value: value, lru: b.clock}
	return ev, evicted
}

// Remove deletes key, reporting whether it was present.
func (b *Borrowed) Remove(key uint64) bool {
	si := b.setIndex(key)
	set := b.table[si*b.ways : (si+1)*b.ways]
	for i := range set {
		if set[i].valid && set[i].key == key {
			set[i] = bentry{}
			b.used--
			b.setUsed[si]--
			return true
		}
	}
	return false
}

// Len returns the number of valid entries.
func (b *Borrowed) Len() int { return b.used }

// Capacity returns the total entry count.
func (b *Borrowed) Capacity() int { return b.sets * b.ways }

// ForEach visits every valid entry; the visit order is unspecified.
func (b *Borrowed) ForEach(fn func(key, value uint64)) {
	for s, n := range b.setUsed {
		if n == 0 {
			continue
		}
		set := b.table[s*b.ways : (s+1)*b.ways]
		for i := range set {
			if set[i].valid {
				fn(set[i].key, set[i].value)
			}
		}
	}
}
