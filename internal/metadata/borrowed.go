package metadata

import (
	"fmt"
	"slices"
)

// Borrowed is a set-associative, LRU-replaced table keyed by a block's
// original (home) address. In an NDP unit the value is the block's remapped
// address in the borrowed data region; in a bridge it is the borrowing
// receiver's unit ID. When an entry is evicted, the owner must return the
// block home — the Evicted callback result surfaces that.
//
// All storage is allocated lazily: the tables are sized for the paper's
// full-scale machine (64k entries per bridge) but mostly empty in small runs,
// and per-system eager allocation (even of just per-set headers) dominated
// end-to-end profiles. Only touched sets exist, held in a map from set index
// to entry storage that itself grows one entry at a time up to ways. An
// absent slot is indistinguishable from an invalid one: lookups never match
// it, and Insert prefers the first invalid slot as victim — which for a
// partially materialized set is exactly the append position — so victim
// choice, slot numbering, and eviction order all match an eagerly-allocated
// layout. Iteration (ForEach, snapshots) sorts the touched set indices, so
// map ordering never leaks into simulation behavior.
//ndplint:domain(perowner)
type Borrowed struct {
	sets  int
	ways  int
	table map[uint32][]bentry // touched sets only, keyed by set index
	clock uint64
	used  int
	// keyScratch backs the sorted set-index traversal of ForEach and
	// SnapshotTo so repeated snapshots (the auditor's) do not allocate.
	keyScratch []uint32 //ndplint:nosnap scratch for deterministic iteration
}

type bentry struct {
	valid bool
	key   uint64
	value uint64
	lru   uint64
}

// Eviction describes an entry displaced by Insert.
//ndplint:domain(xfer)
type Eviction struct {
	Key   uint64
	Value uint64
}

// NewBorrowed builds a table with the given total entries and associativity.
// entries must be a multiple of ways and the set count must be a power of
// two.
func NewBorrowed(entries, ways int) *Borrowed {
	if ways <= 0 || entries <= 0 || entries%ways != 0 {
		panic("metadata: entries must be a positive multiple of ways")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("metadata: set count %d must be a power of two", sets))
	}
	return &Borrowed{sets: sets, ways: ways}
}

func (b *Borrowed) setIndex(key uint64) uint32 {
	// Keys are block addresses; drop the low bits that are constant
	// within a block by hashing, so consecutive blocks spread over sets.
	h := key * 0x9e3779b97f4a7c15
	return uint32(h>>32) & uint32(b.sets-1)
}

// Lookup returns the value for key and touches its LRU position.
//
//ndplint:hotpath
func (b *Borrowed) Lookup(key uint64) (uint64, bool) {
	if b.used == 0 {
		return 0, false
	}
	set := b.table[b.setIndex(key)]
	for i := range set {
		if set[i].valid && set[i].key == key {
			b.clock++
			set[i].lru = b.clock
			return set[i].value, true
		}
	}
	return 0, false
}

// Contains reports presence without touching LRU state.
//
//ndplint:hotpath
func (b *Borrowed) Contains(key uint64) bool {
	if b.used == 0 {
		return false
	}
	set := b.table[b.setIndex(key)]
	for i := range set {
		if set[i].valid && set[i].key == key {
			return true
		}
	}
	return false
}

// slotAt returns set si's way-th entry, materializing storage up to it. Only
// snapshot restore addresses slots directly; Insert grows sets itself.
func (b *Borrowed) slotAt(si, way int) *bentry {
	if b.table == nil {
		b.table = make(map[uint32][]bentry, 8)
	}
	set := b.table[uint32(si)]
	for len(set) <= way {
		set = append(set, bentry{})
	}
	b.table[uint32(si)] = set
	return &set[way]
}

// Insert adds or updates key→value. If the set is full, the LRU entry is
// evicted and returned.
//
//ndplint:hotpath
func (b *Borrowed) Insert(key, value uint64) (ev Eviction, evicted bool) {
	si := b.setIndex(key)
	if b.table == nil {
		b.table = make(map[uint32][]bentry, 8) //ndplint:alloc once, on first insert
	}
	set := b.table[si]
	b.clock++
	var victim *bentry
	for i := range set {
		e := &set[i]
		if e.valid && e.key == key {
			e.value = value
			e.lru = b.clock
			return Eviction{}, false
		}
		if !e.valid {
			if victim == nil || victim.valid {
				victim = e
			}
		} else if victim == nil || (victim.valid && e.lru < victim.lru) {
			victim = e
		}
	}
	if (victim == nil || victim.valid) && len(set) < b.ways {
		// No stored invalid slot: the first unmaterialized one is the
		// victim an eager layout would have chosen.
		set = append(set, bentry{}) //ndplint:alloc amortized set growth
		b.table[si] = set
		victim = &set[len(set)-1]
	}
	if victim.valid {
		ev = Eviction{Key: victim.key, Value: victim.value}
		evicted = true
	} else {
		b.used++
	}
	*victim = bentry{valid: true, key: key, value: value, lru: b.clock}
	return ev, evicted
}

// Remove deletes key, reporting whether it was present.
//
//ndplint:hotpath
func (b *Borrowed) Remove(key uint64) bool {
	if b.used == 0 {
		return false
	}
	set := b.table[b.setIndex(key)]
	for i := range set {
		if set[i].valid && set[i].key == key {
			set[i] = bentry{}
			b.used--
			return true
		}
	}
	return false
}

// Len returns the number of valid entries.
func (b *Borrowed) Len() int { return b.used }

// Capacity returns the total entry count.
func (b *Borrowed) Capacity() int { return b.sets * b.ways }

// sortedSets returns the touched set indices in ascending order, reusing the
// scratch buffer. Iteration must never follow raw map order: ForEach feeds
// eviction victim choice and SnapshotTo feeds digests, both of which have to
// be identical across runs.
func (b *Borrowed) sortedSets() []uint32 {
	ks := b.keyScratch[:0]
	for k := range b.table {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	b.keyScratch = ks
	return ks
}

// ForEach visits every valid entry in ascending (set, way) order.
func (b *Borrowed) ForEach(fn func(key, value uint64)) {
	if b.used == 0 {
		return
	}
	for _, k := range b.sortedSets() {
		set := b.table[k]
		for i := range set {
			if set[i].valid {
				fn(set[i].key, set[i].value)
			}
		}
	}
}
