package metadata

import (
	"testing"

	"ndpbridge/internal/checkpoint"
)

func TestIsLentSnapshotRoundTrip(t *testing.T) {
	l := NewIsLent(1<<20, 256)
	l.SetLent(0, true)
	l.SetLent(256*7, true)
	l.SetLent(256*100, true)
	l.SetLent(256*7, false)

	var e checkpoint.Enc
	l.SnapshotTo(&e)

	r := NewIsLent(1<<20, 256)
	if err := r.RestoreFrom(checkpoint.NewDec(e.Data())); err != nil {
		t.Fatal(err)
	}
	if r.Count() != l.Count() {
		t.Errorf("count %d, want %d", r.Count(), l.Count())
	}
	for _, off := range []uint64{0, 256 * 7, 256 * 100, 256 * 3} {
		if r.Lent(off) != l.Lent(off) {
			t.Errorf("offset %#x: lent %v, want %v", off, r.Lent(off), l.Lent(off))
		}
	}

	// Shape mismatch rejected.
	bad := NewIsLent(1<<20, 512)
	if err := bad.RestoreFrom(checkpoint.NewDec(e.Data())); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
}

func TestBorrowedSnapshotRoundTrip(t *testing.T) {
	b := NewBorrowed(4, 2)
	for i := uint64(0); i < 10; i++ {
		b.Insert(i<<8, i)
	}
	b.Lookup(1 << 8) // touch LRU state

	var e checkpoint.Enc
	b.SnapshotTo(&e)

	r := NewBorrowed(4, 2)
	if err := r.RestoreFrom(checkpoint.NewDec(e.Data())); err != nil {
		t.Fatal(err)
	}
	if r.Len() != b.Len() {
		t.Errorf("len %d, want %d", r.Len(), b.Len())
	}
	for i := uint64(0); i < 10; i++ {
		gv, gok := r.Lookup(i << 8)
		wv, wok := b.Lookup(i << 8)
		if gok != wok || gv != wv {
			t.Errorf("key %#x: (%d,%v) want (%d,%v)", i<<8, gv, gok, wv, wok)
		}
	}
	// The LRU clock must survive: the next eviction decision on both tables
	// is identical. Insert a fresh key into a full set and compare victims.
	ev1, ok1 := b.Insert(100<<8, 100)
	ev2, ok2 := r.Insert(100<<8, 100)
	if ok1 != ok2 || ev1 != ev2 {
		t.Errorf("post-restore eviction diverged: %+v,%v vs %+v,%v", ev1, ok1, ev2, ok2)
	}

	bad := NewBorrowed(8, 2)
	if err := bad.RestoreFrom(checkpoint.NewDec(e.Data())); err == nil {
		t.Fatal("geometry mismatch not rejected")
	}
}
