// Package metadata implements the migration-tracking structures of
// Section VI-B: the per-unit isLent bitmap marking data blocks currently lent
// to another unit, and the set-associative dataBorrowed tables mapping
// borrowed blocks to their local remapped address (in units) or to the
// borrowing unit (in bridges). The unit- and bridge-level tables are kept
// inclusive by the runtime.
package metadata

import (
	"fmt"
	"math/bits"
)

// IsLent is a bitmap with one bit per G_xfer-sized block of the local bank,
// marking blocks currently lent to another unit. The word storage appears on
// the first lend: most units in a run never lend, and the per-unit bitmaps
// added up across constructed systems.
//ndplint:domain(perowner)
type IsLent struct {
	bits       []uint64 // nil until the first lend
	blockShift uint
	blocks     uint64
	lentCount  int
}

// words returns the bitmap length in 64-bit words, allocated or not.
func (l *IsLent) words() int { return int((l.blocks + 63) / 64) }

// NewIsLent covers bankBytes of local DRAM at blockBytes granularity.
// blockBytes must be a power of two.
func NewIsLent(bankBytes, blockBytes uint64) *IsLent {
	if blockBytes == 0 || blockBytes&(blockBytes-1) != 0 {
		panic("metadata: block size must be a power of two")
	}
	blocks := (bankBytes + blockBytes - 1) / blockBytes
	return &IsLent{
		blockShift: uint(bits.TrailingZeros64(blockBytes)),
		blocks:     blocks,
	}
}

func (l *IsLent) index(offset uint64) (word int, mask uint64) {
	b := offset >> l.blockShift
	if b >= l.blocks {
		panic(fmt.Sprintf("metadata: offset %#x beyond bank", offset))
	}
	return int(b / 64), 1 << (b % 64)
}

// Lent reports whether the block containing bank offset is lent out.
//
//ndplint:hotpath
func (l *IsLent) Lent(offset uint64) bool {
	w, m := l.index(offset)
	if l.bits == nil {
		return false
	}
	return l.bits[w]&m != 0
}

// SetLent marks the block containing offset as lent (true) or home (false).
// It reports whether the bit changed.
func (l *IsLent) SetLent(offset uint64, lent bool) bool {
	w, m := l.index(offset)
	if l.bits == nil {
		if !lent {
			return false
		}
		l.bits = make([]uint64, l.words())
	}
	was := l.bits[w]&m != 0
	if was == lent {
		return false
	}
	if lent {
		l.bits[w] |= m
		l.lentCount++
	} else {
		l.bits[w] &^= m
		l.lentCount--
	}
	return true
}

// Count returns the number of blocks currently lent out.
func (l *IsLent) Count() int { return l.lentCount }

// Blocks returns the number of tracked blocks.
func (l *IsLent) Blocks() uint64 { return l.blocks }
