package metadata

import (
	"fmt"

	"ndpbridge/internal/checkpoint"
)

// This file is the migration-metadata serialization boundary. Both
// structures encode their complete state — including the Borrowed table's
// LRU clock, which steers future evictions and therefore must survive a
// snapshot for the restored run to stay deterministic.

// SnapshotTo encodes the bitmap sparsely: the shape (blocks, shift, word
// count) for validation on restore, then only the nonzero words with their
// index. A unit rarely lends more than a few dozen blocks out of a bank's
// few hundred thousand, so this keeps the per-unit bitmap contribution to a
// snapshot near zero instead of bank-capacity-proportional.
func (l *IsLent) SnapshotTo(e *checkpoint.Enc) {
	e.U64(l.blocks)
	e.U64(uint64(l.blockShift))
	e.U32(uint32(l.words()))
	if l.lentCount == 0 {
		// SetLent keeps lentCount equal to the bitmap popcount, so an
		// empty count means every word is zero — skip the scans.
		e.U32(0)
		e.I64(0)
		return
	}
	var nz uint32
	for _, w := range l.bits {
		if w != 0 {
			nz++
		}
	}
	e.U32(nz)
	for i, w := range l.bits {
		if w != 0 {
			e.U32(uint32(i))
			e.U64(w)
		}
	}
	e.I64(int64(l.lentCount))
}

// RestoreFrom rebuilds the bitmap from a SnapshotTo stream. The shape must
// match the receiver's. All words not listed in the snapshot are cleared.
func (l *IsLent) RestoreFrom(d *checkpoint.Dec) error {
	blocks := d.U64()
	shift := uint(d.U64())
	n := d.U32()
	if d.Err() == nil && (blocks != l.blocks || shift != l.blockShift || int(n) != l.words()) {
		return fmt.Errorf("metadata: isLent snapshot shape (%d blocks, shift %d, %d words) does not match (%d, %d, %d)",
			blocks, shift, n, l.blocks, l.blockShift, l.words())
	}
	nz := d.U32()
	if d.Err() != nil {
		return d.Err()
	}
	if int(nz) > l.words() {
		return fmt.Errorf("metadata: isLent snapshot has %d nonzero words for a %d-word bitmap", nz, l.words())
	}
	for i := range l.bits {
		l.bits[i] = 0
	}
	if nz > 0 && l.bits == nil {
		l.bits = make([]uint64, l.words())
	}
	for k := uint32(0); k < nz; k++ {
		idx := d.U32()
		if d.Err() != nil {
			return d.Err()
		}
		if int(idx) >= len(l.bits) {
			return fmt.Errorf("metadata: isLent snapshot word %d names bad index %d", k, idx)
		}
		l.bits[idx] = d.U64()
	}
	l.lentCount = int(d.I64())
	return d.Err()
}

// SnapshotTo encodes the set-associative table sparsely: geometry for
// validation, the LRU clock, then only the valid entries with their physical
// slot index. Invalid slots carry no behavioral state (Insert chooses victims
// by validity and LRU alone, Remove zeroes the slot), so restoring them as
// zero is exact — and the tables are sized for the paper's full-scale
// machine, so walking only the occupied slots keeps snapshots cheap when the
// tables are mostly empty. Slot index order is the physical layout, so no
// sorting is needed for determinism.
func (b *Borrowed) SnapshotTo(e *checkpoint.Enc) {
	e.I64(int64(b.sets))
	e.I64(int64(b.ways))
	e.U64(b.clock)
	e.U32(uint32(b.used))
	if b.used == 0 {
		return
	}
	for _, s := range b.sortedSets() {
		set := b.table[s]
		for i := range set {
			if set[i].valid {
				e.U32(uint32(int(s)*b.ways + i))
				e.U64(set[i].key)
				e.U64(set[i].value)
				e.U64(set[i].lru)
			}
		}
	}
}

// RestoreFrom rebuilds the table from a SnapshotTo stream. The geometry
// must match the receiver's. All slots not listed in the snapshot are
// cleared.
func (b *Borrowed) RestoreFrom(d *checkpoint.Dec) error {
	sets := int(d.I64())
	ways := int(d.I64())
	if d.Err() == nil && (sets != b.sets || ways != b.ways) {
		return fmt.Errorf("metadata: borrowed snapshot geometry %d×%d does not match %d×%d", sets, ways, b.sets, b.ways)
	}
	b.clock = d.U64()
	n := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	if n > b.sets*b.ways {
		return fmt.Errorf("metadata: borrowed snapshot has %d entries for a %d-slot table", n, b.sets*b.ways)
	}
	for _, set := range b.table {
		clear(set)
	}
	for k := 0; k < n; k++ {
		slot := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		if slot >= b.sets*b.ways {
			return fmt.Errorf("metadata: borrowed snapshot entry %d names bad slot %d", k, slot)
		}
		ent := b.slotAt(slot/b.ways, slot%b.ways)
		if ent.valid {
			return fmt.Errorf("metadata: borrowed snapshot entry %d names duplicate slot %d", k, slot)
		}
		*ent = bentry{
			valid: true,
			key:   d.U64(),
			value: d.U64(),
			lru:   d.U64(),
		}
	}
	b.used = n
	return d.Err()
}
