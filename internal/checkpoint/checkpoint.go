// Package checkpoint implements the simulator's snapshot container: a
// versioned, checksummed binary format holding named state sections, plus the
// crash-consistent file writer (temp file + fsync + atomic rename) every
// results/checkpoint path in the repo goes through.
//
// The format is deliberately simple — little-endian primitives, length-
// prefixed sections, 64-bit FNV-based checksums per section and over the
// whole file —
// so a corrupted or truncated snapshot is always rejected by checksum or
// bounds check, never silently loaded.
//
// Layout:
//
//	magic "NDPCKPT\n" (8 bytes)
//	version  u32
//	sections u32
//	  per section: nameLen u32 | name | payloadLen u64 | payload | fnv64(payload)
//	fnv64 over everything above (8 bytes)
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Magic identifies a checkpoint file.
const Magic = "NDPCKPT\n"

// Version is the current container format version. Readers reject any other
// version: the format carries full simulation state, and silently decoding an
// old layout would corrupt a resumed run.
const Version = 1

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Digest returns a 64-bit hash of data: FNV-1a over little-endian 8-byte
// words (with a byte-wise tail and a final avalanche), rather than over
// single bytes. State digests run over multi-megabyte snapshots on the
// auditor's hot path, and the word-wide variant is ~8× faster while still
// detecting any bit flip — every input bit is XORed into the state before a
// multiply. It is the checksum used throughout the container and the digest
// used for state-equality verification.
func Digest(data []byte) uint64 {
	h := uint64(fnvOffset64)
	for len(data) >= 8 {
		w := binary.LittleEndian.Uint64(data)
		h = (h ^ w) * fnvPrime64
		data = data[8:]
	}
	for _, b := range data {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	// The multiply chain only propagates differences upward; fold the high
	// bits back down so every output bit depends on every input bit.
	h ^= h >> 33
	h *= fnvPrime64
	h ^= h >> 29
	return h
}

// --- primitive codec ------------------------------------------------------

// Enc appends little-endian primitives to a growing buffer. The zero value
// is ready to use.
type Enc struct {
	buf []byte
}

// NewEnc returns an encoder that reuses scratch's backing array (its length
// is reset to zero). Hot paths that encode repeatedly — the auditor's
// determinism probe, periodic checkpoints — pass back the previous buffer so
// multi-megabyte snapshots stop costing an allocation each.
func NewEnc(scratch []byte) *Enc { return &Enc{buf: scratch[:0]} }

// U64 appends v.
func (e *Enc) U64(v uint64) {
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// U32 appends v.
func (e *Enc) U32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U8 appends v.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends v as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// I64 appends v (two's complement).
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// UVarint appends v in LEB128 form (7 bits per byte, high bit = more).
// Encoders with many small-valued fields on digest hot paths (cache tags,
// LRU stamps) use it to keep snapshot buffers compact.
func (e *Enc) UVarint(v uint64) {
	var tmp [10]byte
	n := 0
	for v >= 0x80 {
		tmp[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	tmp[n] = byte(v)
	e.buf = append(e.buf, tmp[:n+1]...)
}

// Bytes appends b length-prefixed.
func (e *Enc) Bytes(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Str appends s length-prefixed.
func (e *Enc) Str(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Len returns the number of bytes encoded so far.
func (e *Enc) Len() int { return len(e.buf) }

// Data returns the encoded bytes.
func (e *Enc) Data() []byte { return e.buf }

// Dec reads little-endian primitives from a buffer. The first decode error
// sticks; check Err once after the reads (mirrors the Enc call sequence).
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over data.
func NewDec(data []byte) *Dec { return &Dec{buf: data} }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) || d.off+n < d.off {
		d.err = fmt.Errorf("checkpoint: truncated at offset %d (want %d bytes of %d)", d.off, n, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads one uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// U32 reads one uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a bool.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// UVarint reads one LEB128-encoded uint64.
func (d *Dec) UVarint() uint64 {
	var v uint64
	for shift := uint(0); shift < 70; shift += 7 {
		b := d.U8()
		if d.err != nil {
			return 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
	}
	d.err = fmt.Errorf("checkpoint: varint longer than 10 bytes at offset %d", d.off)
	return 0
}

// I64 reads one int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Bytes reads one length-prefixed byte slice (copied out of the buffer).
func (d *Dec) Bytes() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.err = fmt.Errorf("checkpoint: byte slice length %d exceeds remaining %d", n, len(d.buf)-d.off)
		return nil
	}
	b := d.take(int(n))
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Str reads one length-prefixed string.
func (d *Dec) Str() string { return string(d.Bytes()) }

// Err returns the first decode error, or nil.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// --- section container ----------------------------------------------------

// Section is one named payload inside a checkpoint file.
type Section struct {
	Name string
	Data []byte
}

// File is an in-memory checkpoint: an ordered list of named sections.
type File struct {
	Version  uint32
	Sections []Section
}

// New returns an empty file at the current format version.
func New() *File { return &File{Version: Version} }

// Add appends a section. Section order is part of the format (and of the
// whole-file digest), so writers must add sections deterministically.
func (f *File) Add(name string, data []byte) {
	f.Sections = append(f.Sections, Section{Name: name, Data: data})
}

// Section returns the payload of the first section called name.
func (f *File) Section(name string) ([]byte, bool) {
	for _, s := range f.Sections {
		if s.Name == name {
			return s.Data, true
		}
	}
	return nil, false
}

// Encode serializes the file with per-section and whole-file checksums.
func (f *File) Encode() []byte {
	var e Enc
	e.buf = append(e.buf, Magic...)
	e.U32(f.Version)
	e.U32(uint32(len(f.Sections)))
	for _, s := range f.Sections {
		e.Str(s.Name)
		e.Bytes(s.Data)
		e.U64(Digest(s.Data))
	}
	e.U64(Digest(e.buf))
	return e.buf
}

// Decode parses and verifies data. Any mismatch — magic, version, section
// checksum, whole-file checksum, truncation — is an error; a corrupted
// snapshot is never partially decoded.
func Decode(data []byte) (*File, error) {
	if len(data) < len(Magic)+4+4+8 {
		return nil, fmt.Errorf("checkpoint: file too short (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", data[:len(Magic)])
	}
	body, sum := data[:len(data)-8], data[len(data)-8:]
	want := uint64(sum[0]) | uint64(sum[1])<<8 | uint64(sum[2])<<16 | uint64(sum[3])<<24 |
		uint64(sum[4])<<32 | uint64(sum[5])<<40 | uint64(sum[6])<<48 | uint64(sum[7])<<56
	if got := Digest(body); got != want {
		return nil, fmt.Errorf("checkpoint: file checksum mismatch (got %#x, want %#x)", got, want)
	}
	d := NewDec(body[len(Magic):])
	f := &File{Version: d.U32()}
	if d.err == nil && f.Version != Version {
		return nil, fmt.Errorf("checkpoint: unsupported format version %d (want %d)", f.Version, Version)
	}
	n := d.U32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		name := d.Str()
		payload := d.Bytes()
		csum := d.U64()
		if d.err != nil {
			break
		}
		if got := Digest(payload); got != csum {
			return nil, fmt.Errorf("checkpoint: section %q checksum mismatch (got %#x, want %#x)", name, got, csum)
		}
		f.Sections = append(f.Sections, Section{Name: name, Data: payload})
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after %d sections", d.Remaining(), n)
	}
	return f, nil
}

// --- crash-consistent file I/O -------------------------------------------

// FS is the filesystem surface WriteFileAtomic runs on. The default is the
// real OS; tests and the chaos engine's crash-point torture swap in shims
// (via SwapFS) that fail or cut the sequence at chosen steps, so the
// crash-consistency claim below is checkable rather than assumed.
type FS interface {
	MkdirAll(dir string, perm os.FileMode) error
	CreateTemp(dir, pattern string) (FileHandle, error)
	Chmod(name string, mode os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory so a completed rename survives a crash.
	SyncDir(dir string) error
}

// FileHandle is the open-temp-file surface of FS.
type FileHandle interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }
func (osFS) CreateTemp(dir, pattern string) (FileHandle, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}
func (osFS) Chmod(name string, mode os.FileMode) error { return os.Chmod(name, mode) }
func (osFS) Rename(oldpath, newpath string) error      { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                  { return os.Remove(name) }
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	if err := d.Close(); err != nil {
		return err
	}
	return syncErr
}

// activeFS holds the FS every writer in the package goes through. It is an
// atomic.Value because experiment workers write checkpoints concurrently;
// swapping is still a whole-process affair, so tests that swap must not run
// parallel to other writers (the chaos harness serializes its torture runs).
// The box keeps the stored concrete type constant across swaps, which
// atomic.Value requires.
type fsBox struct{ fs FS }

var activeFS atomic.Value

func init() { activeFS.Store(fsBox{osFS{}}) }

// SwapFS installs fs as the filesystem behind WriteFileAtomic and returns
// the previous one. Pass nil to restore the real OS. Callers must restore
// the previous FS when done (defer SwapFS(prev)).
func SwapFS(fs FS) FS {
	if fs == nil {
		fs = osFS{}
	}
	return activeFS.Swap(fsBox{fs}).(fsBox).fs
}

func fs() FS { return activeFS.Load().(fsBox).fs }

// WriteFileAtomic writes data to path crash-consistently: the bytes go to a
// unique temp file in the same directory, are fsynced, and the temp file is
// renamed over path; the directory is fsynced afterwards so the rename
// itself survives a crash. Readers therefore see either the old complete
// file or the new complete file, never a truncated mix.
//
// Every error path removes the temp file, so a failed write leaves no
// *.tmp* litter; and every error — including a failed directory fsync,
// which would let a completed rename vanish in a power cut — reaches the
// caller, because the caller asked for crash consistency.
func WriteFileAtomic(path string, data []byte) error {
	fsys := fs()
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { fsys.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return err
	}
	// CreateTemp uses 0600; match the permissions a plain os.Create would
	// have given the final file (modulo umask).
	if err := fsys.Chmod(tmpName, 0o644); err != nil {
		cleanup()
		return err
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		cleanup()
		return err
	}
	return fsys.SyncDir(dir)
}

// WriteFile encodes f and writes it crash-consistently to path.
func WriteFile(path string, f *File) error {
	return WriteFileAtomic(path, f.Encode())
}

// ReadFile loads and verifies the checkpoint at path.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
