package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// faultFS wraps the real FS and fails chosen operations.
type faultFS struct {
	real       FS
	failRename error
	failSync   error
	failChmod  error
	removes    []string
}

func (f *faultFS) MkdirAll(dir string, perm os.FileMode) error { return f.real.MkdirAll(dir, perm) }
func (f *faultFS) CreateTemp(dir, pattern string) (FileHandle, error) {
	return f.real.CreateTemp(dir, pattern)
}
func (f *faultFS) Chmod(name string, mode os.FileMode) error {
	if f.failChmod != nil {
		return f.failChmod
	}
	return f.real.Chmod(name, mode)
}
func (f *faultFS) Rename(oldpath, newpath string) error {
	if f.failRename != nil {
		return f.failRename
	}
	return f.real.Rename(oldpath, newpath)
}
func (f *faultFS) Remove(name string) error {
	f.removes = append(f.removes, name)
	return f.real.Remove(name)
}
func (f *faultFS) SyncDir(dir string) error {
	if f.failSync != nil {
		return f.failSync
	}
	return f.real.SyncDir(dir)
}

// tmpLitter returns the *.tmp* files left in dir.
func tmpLitter(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var litter []string
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			litter = append(litter, e.Name())
		}
	}
	return litter
}

func TestWriteFileAtomicRenameFailureLeavesNoLitter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.ckpt")
	wantErr := errors.New("injected rename failure")
	ffs := &faultFS{real: osFS{}, failRename: wantErr}
	defer SwapFS(SwapFS(ffs))

	err := WriteFileAtomic(path, []byte("payload"))
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the injected rename failure", err)
	}
	if litter := tmpLitter(t, dir); len(litter) != 0 {
		t.Fatalf("failed rename left temp litter: %v", litter)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("destination exists after failed rename: %v", err)
	}
	if len(ffs.removes) == 0 {
		t.Fatal("cleanup did not go through the injected FS")
	}
}

func TestWriteFileAtomicChmodFailureLeavesNoLitter(t *testing.T) {
	dir := t.TempDir()
	wantErr := errors.New("injected chmod failure")
	defer SwapFS(SwapFS(&faultFS{real: osFS{}, failChmod: wantErr}))

	err := WriteFileAtomic(filepath.Join(dir, "out.ckpt"), []byte("payload"))
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the injected chmod failure", err)
	}
	if litter := tmpLitter(t, dir); len(litter) != 0 {
		t.Fatalf("failed chmod left temp litter: %v", litter)
	}
}

func TestWriteFileAtomicPropagatesDirSyncFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.ckpt")
	wantErr := errors.New("injected dir-fsync failure")
	defer SwapFS(SwapFS(&faultFS{real: osFS{}, failSync: wantErr}))

	err := WriteFileAtomic(path, []byte("payload"))
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the injected dir-fsync failure", err)
	}
	// The rename completed before the fsync failed: the file content is
	// whole even though durability of the rename is unconfirmed.
	data, rerr := os.ReadFile(path)
	if rerr != nil || string(data) != "payload" {
		t.Fatalf("file after failed dir fsync: %q, %v", data, rerr)
	}
}

func TestSwapFSRestores(t *testing.T) {
	ffs := &faultFS{real: osFS{}}
	prev := SwapFS(ffs)
	if _, ok := prev.(osFS); !ok {
		t.Fatalf("default FS = %T, want osFS", prev)
	}
	got := SwapFS(nil) // nil restores the real OS
	if got != FS(ffs) {
		t.Fatalf("SwapFS returned %T, want the shim", got)
	}
	if _, ok := fs().(osFS); !ok {
		t.Fatalf("after SwapFS(nil), active FS = %T, want osFS", fs())
	}
	path := filepath.Join(t.TempDir(), "real.ckpt")
	if err := WriteFileAtomic(path, []byte("x")); err != nil {
		t.Fatalf("write on restored real FS: %v", err)
	}
}
