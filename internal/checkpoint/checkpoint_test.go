package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.U64(0xdeadbeefcafef00d)
	e.U32(42)
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.I64(-12345)
	e.Bytes([]byte{1, 2, 3})
	e.Str("hello")

	d := NewDec(e.Data())
	if got := d.U64(); got != 0xdeadbeefcafef00d {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.U32(); got != 42 {
		t.Errorf("U32 = %d", got)
	}
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := d.I64(); got != -12345 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Bytes(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Bytes = %v", got)
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if d.Err() != nil {
		t.Fatalf("decode error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("%d trailing bytes", d.Remaining())
	}
}

func TestDecTruncation(t *testing.T) {
	var e Enc
	e.U64(1)
	d := NewDec(e.Data()[:4])
	d.U64()
	if d.Err() == nil {
		t.Fatal("truncated U64 not detected")
	}
	// The error sticks: further reads return zero values, not panics.
	if d.U32() != 0 || d.Str() != "" {
		t.Error("reads after error should return zero values")
	}
}

func TestFileRoundTrip(t *testing.T) {
	f := New()
	f.Add("meta", []byte("meta-payload"))
	f.Add("state", []byte{0, 1, 2, 3, 255})
	f.Add("empty", nil)

	enc := f.Encode()
	g, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if g.Version != Version || len(g.Sections) != 3 {
		t.Fatalf("got version %d, %d sections", g.Version, len(g.Sections))
	}
	if s, ok := g.Section("meta"); !ok || string(s) != "meta-payload" {
		t.Errorf("meta section = %q, %v", s, ok)
	}
	if s, ok := g.Section("state"); !ok || len(s) != 5 {
		t.Errorf("state section = %v, %v", s, ok)
	}
	if _, ok := g.Section("missing"); ok {
		t.Error("missing section found")
	}
}

func TestCorruptionRejected(t *testing.T) {
	f := New()
	f.Add("state", []byte("some simulation state bytes"))
	enc := f.Encode()

	// Flip one payload byte: both the section and the file checksum break.
	for _, pos := range []int{len(Magic) + 20, len(enc) - 9, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[pos] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Errorf("corruption at byte %d not rejected", pos)
		}
	}

	// Truncation at every length is rejected, never a panic.
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes not rejected", n)
		}
	}

	// Wrong magic.
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v", err)
	}
}

func TestVersionRejected(t *testing.T) {
	f := &File{Version: Version + 1}
	f.Add("state", []byte("x"))
	if _, err := Decode(f.Encode()); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version: err = %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "ckpt.bin")

	f := New()
	f.Add("a", []byte("first"))
	if err := WriteFile(path, f); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if s, _ := g.Section("a"); string(s) != "first" {
		t.Errorf("section a = %q", s)
	}

	// Overwrite: readers see old-complete or new-complete, and no temp
	// files survive a successful write.
	f2 := New()
	f2.Add("a", []byte("second"))
	if err := WriteFile(path, f2); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	g2, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile after overwrite: %v", err)
	}
	if s, _ := g2.Section("a"); string(s) != "second" {
		t.Errorf("after overwrite, section a = %q", s)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestReadFileCorrupted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	f := New()
	f.Add("state", []byte("payload"))
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("corrupted checkpoint file loaded without error")
	}
}

func TestDigestStable(t *testing.T) {
	// A known vector keeps the digest stable across refactors (on-disk
	// checkpoints depend on it): the FNV offset basis run through the
	// final avalanche. Changing the hash means bumping the format Version.
	if got := Digest(nil); got != 7542948732819846539 {
		t.Errorf("empty digest changed: %d", got)
	}
	if Digest([]byte("a")) == Digest([]byte("b")) {
		t.Error("digest collision on trivial inputs")
	}
	// The word-wide fast path and the byte tail must agree on boundaries:
	// digests of every prefix of a 17-byte pattern must be distinct.
	data := []byte("0123456789abcdefg")
	seen := map[uint64]int{}
	for n := 0; n <= len(data); n++ {
		d := Digest(data[:n])
		if prev, dup := seen[d]; dup {
			t.Errorf("digest collision between prefix lengths %d and %d", prev, n)
		}
		seen[d] = n
	}
	// Any single-bit flip must change the digest, in every word position.
	base := Digest(data)
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			data[i] ^= 1 << bit
			if Digest(data) == base {
				t.Errorf("bit flip at byte %d bit %d not detected", i, bit)
			}
			data[i] ^= 1 << bit
		}
	}
}
