package task

import (
	"testing"
)

func TestNewTask(t *testing.T) {
	tk := New(3, 7, 0x1000, 42, 1, 2, 3)
	if tk.Func != 3 || tk.TS != 7 || tk.Addr != 0x1000 || tk.Workload != 42 {
		t.Fatalf("fields wrong: %+v", tk)
	}
	args := tk.ArgSlice()
	if len(args) != 3 || args[0] != 1 || args[1] != 2 || args[2] != 3 {
		t.Fatalf("args = %v", args)
	}
}

func TestNewTaskTooManyArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 0, 0, 0, 1, 2, 3, 4)
}

func TestEffectiveWorkload(t *testing.T) {
	if New(0, 0, 0, 0).EffectiveWorkload() != 1 {
		t.Error("unspecified workload should default to 1")
	}
	if New(0, 0, 0, 99).EffectiveWorkload() != 99 {
		t.Error("specified workload should pass through")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	called := 0
	id1 := r.Register("a", func(Ctx, Task) { called++ })
	id2 := r.Register("b", func(Ctx, Task) { called += 10 })
	if id1 == id2 {
		t.Fatal("duplicate FuncIDs")
	}
	r.Handler(id1)(nil, Task{})
	r.Handler(id2)(nil, Task{})
	if called != 11 {
		t.Errorf("called = %d, want 11", called)
	}
	if r.Name(id1) != "a" || r.Name(id2) != "b" {
		t.Error("names wrong")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRegistryNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRegistry().Register("bad", nil)
}

func TestRegistryUnknownIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRegistry().Handler(5)
}
