// Package task implements the task-based message-passing programming model of
// NDPBridge (Section IV). A task is the unit of computation and scheduling:
// it names a handler function, carries a bulk-synchronization timestamp, is
// bound to exactly one data element's physical address, and optionally
// estimates its own workload to aid load balancing.
package task

import (
	"fmt"

	"ndpbridge/internal/sim"
)

// FuncID names a registered task handler. Applications register handlers
// once, and tasks refer to them by ID so tasks can be serialized into
// messages.
type FuncID uint16

// MaxArgs is the number of additional 64-bit arguments a task may carry
// (bounded by the 64-byte message format of Figure 5).
const MaxArgs = 3

// Task is one data-centric unit of work. The zero value is not a valid task;
// use New.
//ndplint:domain(xfer)
type Task struct {
	Func  FuncID
	NArgs uint8
	TS    uint32 // bulk-synchronization timestamp (epoch)
	Addr  uint64 // physical address of the data element it operates on
	// Workload is the estimated cycles; 0 means unspecified.
	Workload uint32
	// Span is the 1-based trace-span ID of this task's causal parent while
	// flow tracing is on (zero otherwise, and for flow roots). The flow and
	// queue-entry cycle are derived from the parent record at pickup
	// (trace.Recorder.TaskOrigin), so this one uint32 — packed into what
	// would otherwise be padding — is the task's whole trace footprint and
	// the struct stays a single 64-byte cache line. Simulator measurement
	// metadata; never part of the wire format or snapshots.
	Span uint32
	Args [MaxArgs]uint64

	// SpawnedAt is the cycle the task was created, stamped by the runtime
	// at seed/enqueue time. Simulator measurement metadata (it feeds the
	// spawn→execute latency histograms); not part of the wire format.
	SpawnedAt uint64

	// ID is a run-unique task identity stamped by the runtime at
	// seed/enqueue time. Fault recovery dedups re-spawned tasks on it so a
	// task lost to a dead unit is re-executed exactly once. Zero means
	// unstamped (tasks constructed directly in tests).
	ID uint64
}

// New builds a task. It panics if more than MaxArgs arguments are supplied —
// that is a programming error, not a runtime condition.
func New(fn FuncID, ts uint32, addr uint64, workload uint32, args ...uint64) Task {
	if len(args) > MaxArgs {
		panic(fmt.Sprintf("task: %d args exceeds max %d", len(args), MaxArgs))
	}
	t := Task{Func: fn, TS: ts, Addr: addr, Workload: workload, NArgs: uint8(len(args))}
	copy(t.Args[:], args)
	return t
}

// ArgSlice returns the populated arguments.
func (t Task) ArgSlice() []uint64 { return t.Args[:t.NArgs] }

// EffectiveWorkload returns the task's workload estimate, substituting a
// default of 1 when unspecified so queue workload sums remain meaningful.
func (t Task) EffectiveWorkload() uint64 {
	if t.Workload == 0 {
		return 1
	}
	return uint64(t.Workload)
}

// Ctx is the execution context passed to task handlers. Handlers express
// their computation and memory behaviour through it; the simulator charges
// time and energy accordingly. All addresses are physical addresses in the
// NDP address space.
type Ctx interface {
	// Read charges a local DRAM read of n bytes at addr. The address must
	// be locally available (home-and-not-lent, or borrowed); handlers
	// operate only on local data under data-local execution.
	Read(addr uint64, n uint64)
	// Write charges a local DRAM write of n bytes at addr.
	Write(addr uint64, n uint64)
	// Compute charges pure computation cycles.
	Compute(cycles sim.Cycles)
	// Enqueue creates a child task. The runtime routes it to the unit
	// currently holding the task's data element (the enqueue_task API of
	// Section IV).
	Enqueue(t Task)
	// Unit returns the executing NDP unit's ID.
	Unit() int
	// Now returns the core's current cycle (start of this task).
	Now() sim.Cycles
	// Rand returns a deterministic per-unit random stream for
	// probabilistic handlers.
	Rand() *sim.RNG
}

// EndCtx is optionally implemented by execution contexts that expose the
// running task's private time cursor — the exact cycle the task will
// complete at, as charged so far. The serving layer uses it to measure
// per-request end-to-end latency without waiting for the completion event.
type EndCtx interface {
	Cursor() sim.Cycles
}

// Handler is the body of a task. It must be a pure function of the task and
// the application state: it runs once per task at simulation level.
type Handler func(ctx Ctx, t Task)

// Registry maps FuncIDs to handlers. A Registry is immutable after
// registration and safe for concurrent reads.
//ndplint:domain(shared-ro)
type Registry struct {
	handlers []Handler
	names    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a handler under a diagnostic name and returns its FuncID.
//ndplint:seam setup-phase registration; the registry freezes before the clock starts
func (r *Registry) Register(name string, h Handler) FuncID {
	if h == nil {
		panic("task: nil handler")
	}
	r.handlers = append(r.handlers, h)
	r.names = append(r.names, name)
	return FuncID(len(r.handlers) - 1)
}

// Handler returns the handler for id.
func (r *Registry) Handler(id FuncID) Handler {
	if int(id) >= len(r.handlers) {
		panic(fmt.Sprintf("task: unregistered FuncID %d", id))
	}
	return r.handlers[id]
}

// Name returns the diagnostic name of id.
func (r *Registry) Name(id FuncID) string {
	if int(id) >= len(r.names) {
		return fmt.Sprintf("func%d", id)
	}
	return r.names[id]
}

// Len returns the number of registered handlers.
func (r *Registry) Len() int { return len(r.handlers) }
