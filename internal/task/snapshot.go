package task

import (
	"fmt"
	"slices"

	"ndpbridge/internal/checkpoint"
)

// This file is the task layer's serialization boundary: a full-fidelity
// codec for Task (every field, including the simulator-side SpawnedAt and ID
// metadata the wire format omits) and the Queue snapshot used by checkpoints
// and the state-digest audit. Epoch FIFOs are encoded in ascending epoch
// order so the byte stream is a pure function of queue contents, independent
// of map iteration order.

// EncodeTask appends t to e.
func EncodeTask(e *checkpoint.Enc, t Task) {
	e.U32(uint32(t.Func))
	e.U32(t.TS)
	e.U64(t.Addr)
	e.U32(t.Workload)
	e.U8(t.NArgs)
	for i := 0; i < int(t.NArgs); i++ {
		e.U64(t.Args[i])
	}
	e.U64(t.SpawnedAt)
	e.U64(t.ID)
}

// DecodeTask reads one task from d.
func DecodeTask(d *checkpoint.Dec) Task {
	var t Task
	t.Func = FuncID(d.U32())
	t.TS = d.U32()
	t.Addr = d.U64()
	t.Workload = d.U32()
	t.NArgs = d.U8()
	if int(t.NArgs) > MaxArgs {
		// Poison the decoder instead of indexing out of bounds.
		for i := 0; i < int(t.NArgs); i++ {
			d.U64()
		}
		t.NArgs = 0
		t.SpawnedAt = d.U64()
		t.ID = d.U64()
		return t
	}
	for i := 0; i < int(t.NArgs); i++ {
		t.Args[i] = d.U64()
	}
	t.SpawnedAt = d.U64()
	t.ID = d.U64()
	return t
}

// SnapshotTo encodes the queue: per-epoch FIFOs in ascending epoch order,
// each with its live tasks front to back.
func (q *Queue) SnapshotTo(e *checkpoint.Enc) {
	epochs := make([]uint32, 0, len(q.epochs))
	for ts := range q.epochs {
		epochs = append(epochs, ts)
	}
	slices.Sort(epochs)
	e.U32(uint32(len(epochs)))
	for _, ts := range epochs {
		f := q.epochs[ts]
		e.U32(ts)
		e.U32(uint32(f.len()))
		for i := f.head; i < len(f.items); i++ {
			EncodeTask(e, f.items[i])
		}
	}
}

// RestoreFrom rebuilds the queue from a SnapshotTo stream, replacing the
// current contents. Workload sums are recomputed from the tasks.
func (q *Queue) RestoreFrom(d *checkpoint.Dec) error {
	q.epochs = make(map[uint32]*fifo)
	q.size = 0
	n := d.U32()
	for i := uint32(0); i < n; i++ {
		ts := d.U32()
		cnt := d.U32()
		for j := uint32(0); j < cnt; j++ {
			t := DecodeTask(d)
			if d.Err() != nil {
				return d.Err()
			}
			if t.TS != ts {
				return fmt.Errorf("task: snapshot epoch %d holds task of epoch %d", ts, t.TS)
			}
			q.Push(t)
		}
	}
	return d.Err()
}
