package task

import (
	"bytes"
	"testing"

	"ndpbridge/internal/checkpoint"
)

func TestTaskCodecRoundTrip(t *testing.T) {
	in := Task{
		Func: 7, TS: 3, Addr: 0xdead0000, Workload: 450, NArgs: 2,
		Args: [MaxArgs]uint64{11, 22}, SpawnedAt: 123456, ID: 42,
	}
	var e checkpoint.Enc
	EncodeTask(&e, in)
	d := checkpoint.NewDec(e.Data())
	out := DecodeTask(d)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if out != in {
		t.Errorf("round trip:\n got %+v\nwant %+v", out, in)
	}
}

func TestQueueSnapshotRoundTrip(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 10; i++ {
		q.Push(Task{Func: FuncID(i), TS: uint32(i % 3), Addr: uint64(i) << 6, Workload: uint32(100 + i), ID: uint64(i + 1)})
	}
	// Pop a few so head offsets and workload sums are non-trivial.
	q.Pop(0)
	q.Pop(1)

	var e checkpoint.Enc
	q.SnapshotTo(&e)

	r := NewQueue()
	if err := r.RestoreFrom(checkpoint.NewDec(e.Data())); err != nil {
		t.Fatal(err)
	}
	if r.Len() != q.Len() {
		t.Fatalf("restored len %d, want %d", r.Len(), q.Len())
	}
	for _, ts := range []uint32{0, 1, 2} {
		if r.Workload(ts) != q.Workload(ts) {
			t.Errorf("epoch %d workload %d, want %d", ts, r.Workload(ts), q.Workload(ts))
		}
		for {
			want, ok1 := q.Pop(ts)
			got, ok2 := r.Pop(ts)
			if ok1 != ok2 {
				t.Fatalf("epoch %d pop availability diverged", ts)
			}
			if !ok1 {
				break
			}
			if got != want {
				t.Fatalf("epoch %d: got %+v, want %+v", ts, got, want)
			}
		}
	}
}

func TestQueueSnapshotDeterministic(t *testing.T) {
	// Map-backed epochs must serialize identically across encodes.
	q := NewQueue()
	for i := 0; i < 50; i++ {
		q.Push(Task{TS: uint32(i % 7), Addr: uint64(i)})
	}
	var a, b checkpoint.Enc
	q.SnapshotTo(&a)
	q.SnapshotTo(&b)
	if !bytes.Equal(a.Data(), b.Data()) {
		t.Fatal("queue snapshot is not deterministic")
	}
}
