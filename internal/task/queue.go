package task

import "slices"

// Queue is a FIFO task queue that tracks the summed workload estimate of its
// contents — the W_queue state reported to bridges (Section V-B). Tasks of
// different bulk-sync epochs are kept in per-epoch FIFOs so a unit never
// executes an epoch-(e+1) task while epoch-e tasks remain.
//
// The queue also supports popping from the tail, which traditional work
// stealing uses to select victim tasks (Section VI-C).
//ndplint:domain(perowner)
type Queue struct {
	epochs map[uint32]*fifo
	size   int //ndplint:nosnap derived; recomputed by RestoreFrom via Push
	// spare recycles emptied per-epoch FIFOs so their backing arrays are
	// reused across epochs instead of reallocated and regrown every epoch.
	spare []*fifo //ndplint:nosnap free-list of empty FIFOs, no logical state
}

type fifo struct {
	items    []Task
	head     int
	workload uint64
}

func (f *fifo) len() int { return len(f.items) - f.head }

func (f *fifo) push(t Task) {
	f.items = append(f.items, t)
	f.workload += t.EffectiveWorkload()
}

func (f *fifo) pop() (Task, bool) {
	if f.len() == 0 {
		return Task{}, false
	}
	t := f.items[f.head]
	f.items[f.head] = Task{}
	f.head++
	f.workload -= t.EffectiveWorkload()
	if f.head > 64 && f.head*2 >= len(f.items) {
		n := copy(f.items, f.items[f.head:])
		f.items = f.items[:n]
		f.head = 0
	}
	return t, true
}

func (f *fifo) popTail() (Task, bool) {
	if f.len() == 0 {
		return Task{}, false
	}
	t := f.items[len(f.items)-1]
	f.items[len(f.items)-1] = Task{}
	f.items = f.items[:len(f.items)-1]
	f.workload -= t.EffectiveWorkload()
	return t, true
}

// NewQueue returns an empty queue.
func NewQueue() *Queue {
	return &Queue{epochs: make(map[uint32]*fifo)}
}

// Push appends a task to its epoch's FIFO.
func (q *Queue) Push(t Task) {
	f := q.epochs[t.TS]
	if f == nil {
		if n := len(q.spare); n > 0 {
			f = q.spare[n-1]
			q.spare[n-1] = nil
			q.spare = q.spare[:n-1]
		} else {
			f = &fifo{}
		}
		q.epochs[t.TS] = f
	}
	f.push(t)
	q.size++
}

// retire removes an emptied epoch FIFO from the map and parks it on the
// free list with its backing array retained.
func (q *Queue) retire(ts uint32, f *fifo) {
	delete(q.epochs, ts)
	f.items = f.items[:0]
	f.head = 0
	f.workload = 0
	q.spare = append(q.spare, f)
}

// Pop removes the oldest task of epoch ts. It returns false if none exists.
func (q *Queue) Pop(ts uint32) (Task, bool) {
	f := q.epochs[ts]
	if f == nil {
		return Task{}, false
	}
	t, ok := f.pop()
	if ok {
		q.size--
		if f.len() == 0 {
			q.retire(ts, f)
		}
	}
	return t, ok
}

// PopTail removes the newest task of epoch ts (work-stealing victim side).
func (q *Queue) PopTail(ts uint32) (Task, bool) {
	f := q.epochs[ts]
	if f == nil {
		return Task{}, false
	}
	t, ok := f.popTail()
	if ok {
		q.size--
		if f.len() == 0 {
			q.retire(ts, f)
		}
	}
	return t, ok
}

// Len returns the total queued tasks across epochs.
func (q *Queue) Len() int { return q.size }

// LenEpoch returns the number of queued tasks of epoch ts.
func (q *Queue) LenEpoch(ts uint32) int {
	if f := q.epochs[ts]; f != nil {
		return f.len()
	}
	return 0
}

// Workload returns the summed workload estimate of epoch ts — the W_queue
// value reported in state messages.
func (q *Queue) Workload(ts uint32) uint64 {
	if f := q.epochs[ts]; f != nil {
		return f.workload
	}
	return 0
}

// DrainAll removes and returns every queued task across all epochs, oldest
// first within each epoch and epochs in ascending order. Used by fault
// recovery to evacuate a dead unit's queue for re-spawning elsewhere.
func (q *Queue) DrainAll() []Task {
	if q.size == 0 {
		return nil
	}
	epochs := make([]uint32, 0, len(q.epochs))
	for ts := range q.epochs {
		epochs = append(epochs, ts)
	}
	slices.Sort(epochs)
	out := make([]Task, 0, q.size)
	for _, ts := range epochs {
		for {
			t, ok := q.Pop(ts)
			if !ok {
				break
			}
			out = append(out, t)
		}
	}
	return out
}

// TotalWorkload sums workload across all epochs.
func (q *Queue) TotalWorkload() uint64 {
	var w uint64
	for _, f := range q.epochs {
		w += f.workload
	}
	return w
}
