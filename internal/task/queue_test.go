package task

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFOWithinEpoch(t *testing.T) {
	q := NewQueue()
	for i := uint64(0); i < 5; i++ {
		q.Push(New(0, 1, i, 10))
	}
	for i := uint64(0); i < 5; i++ {
		tk, ok := q.Pop(1)
		if !ok || tk.Addr != i {
			t.Fatalf("pop %d: got %v, %v", i, tk.Addr, ok)
		}
	}
	if _, ok := q.Pop(1); ok {
		t.Error("pop from empty epoch should fail")
	}
}

func TestQueueEpochIsolation(t *testing.T) {
	q := NewQueue()
	q.Push(New(0, 2, 100, 1)) // future epoch
	q.Push(New(0, 1, 200, 1)) // current epoch
	if _, ok := q.Pop(1); !ok {
		t.Fatal("current epoch task missing")
	}
	if _, ok := q.Pop(1); ok {
		t.Fatal("must not return future-epoch task for epoch 1")
	}
	if tk, ok := q.Pop(2); !ok || tk.Addr != 100 {
		t.Fatal("future epoch task lost")
	}
}

func TestQueueWorkloadTracking(t *testing.T) {
	q := NewQueue()
	q.Push(New(0, 1, 0, 10))
	q.Push(New(0, 1, 1, 20))
	q.Push(New(0, 2, 2, 5))
	if q.Workload(1) != 30 {
		t.Errorf("Workload(1) = %d, want 30", q.Workload(1))
	}
	if q.Workload(2) != 5 {
		t.Errorf("Workload(2) = %d, want 5", q.Workload(2))
	}
	if q.TotalWorkload() != 35 {
		t.Errorf("TotalWorkload = %d, want 35", q.TotalWorkload())
	}
	q.Pop(1)
	if q.Workload(1) != 20 {
		t.Errorf("after pop Workload(1) = %d, want 20", q.Workload(1))
	}
	// Unspecified workload counts as 1.
	q.Push(New(0, 1, 3, 0))
	if q.Workload(1) != 21 {
		t.Errorf("Workload(1) = %d, want 21", q.Workload(1))
	}
}

func TestQueuePopTail(t *testing.T) {
	q := NewQueue()
	for i := uint64(0); i < 3; i++ {
		q.Push(New(0, 1, i, 1))
	}
	tk, ok := q.PopTail(1)
	if !ok || tk.Addr != 2 {
		t.Fatalf("PopTail = %v, %v; want addr 2", tk.Addr, ok)
	}
	// Head unaffected.
	tk, _ = q.Pop(1)
	if tk.Addr != 0 {
		t.Fatalf("Pop after PopTail = %v, want 0", tk.Addr)
	}
}

func TestQueueLenEpoch(t *testing.T) {
	q := NewQueue()
	q.Push(New(0, 3, 0, 1))
	q.Push(New(0, 3, 1, 1))
	if q.LenEpoch(3) != 2 || q.LenEpoch(4) != 0 {
		t.Error("LenEpoch wrong")
	}
	if q.Len() != 2 {
		t.Error("Len wrong")
	}
}

func TestQueueCompaction(t *testing.T) {
	// Push and pop enough to trigger internal compaction; FIFO order must
	// survive.
	q := NewQueue()
	const n = 1000
	next := uint64(0)
	pushed := uint64(0)
	for pushed < n {
		q.Push(New(0, 1, pushed, 1))
		pushed++
		if pushed%3 == 0 {
			tk, ok := q.Pop(1)
			if !ok || tk.Addr != next {
				t.Fatalf("order broken at %d: got %d", next, tk.Addr)
			}
			next++
		}
	}
	for {
		tk, ok := q.Pop(1)
		if !ok {
			break
		}
		if tk.Addr != next {
			t.Fatalf("order broken at %d: got %d", next, tk.Addr)
		}
		next++
	}
	if next != n {
		t.Fatalf("drained %d, want %d", next, n)
	}
}

// Property: workload sum always equals the sum of effective workloads of the
// tasks currently in the queue, under any interleaving of pushes and pops.
func TestQueueWorkloadInvariantProperty(t *testing.T) {
	f := func(ops []uint8, loads []uint8) bool {
		q := NewQueue()
		var model []Task
		li := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				var w uint32
				if li < len(loads) {
					w = uint32(loads[li])
					li++
				}
				tk := New(0, 1, uint64(li), w)
				q.Push(tk)
				model = append(model, tk)
			case 1: // pop head
				tk, ok := q.Pop(1)
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if tk != model[0] {
						return false
					}
					model = model[1:]
				}
			case 2: // pop tail
				tk, ok := q.PopTail(1)
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if tk != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
			var want uint64
			for _, m := range model {
				want += m.EffectiveWorkload()
			}
			if q.Workload(1) != want || q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQueueDrainAll(t *testing.T) {
	q := NewQueue()
	if got := q.DrainAll(); got != nil {
		t.Fatalf("empty drain = %v", got)
	}
	q.Push(New(0, 1, 0x10, 1))
	q.Push(New(0, 0, 0x20, 1))
	q.Push(New(0, 0, 0x30, 1))
	q.Push(New(0, 1, 0x40, 1))
	ts := q.DrainAll()
	if len(ts) != 4 {
		t.Fatalf("drained %d, want 4", len(ts))
	}
	want := []uint64{0x20, 0x30, 0x10, 0x40} // epoch 0 FIFO, then epoch 1 FIFO
	for i, tk := range ts {
		if tk.Addr != want[i] {
			t.Fatalf("order: got %#x at %d, want %#x", tk.Addr, i, want[i])
		}
	}
	if q.Len() != 0 || q.TotalWorkload() != 0 {
		t.Fatal("queue not empty after DrainAll")
	}
}
