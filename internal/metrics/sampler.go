package metrics

import (
	"ndpbridge/internal/sim"
)

// Sampler snapshots every registered gauge into a per-gauge time series on a
// fixed simulated-cycle period. It drives itself with a recurring event on
// the run's engine; like the bridges' state sweeps, the chain is cut by the
// engine's Stop at end of run (or explicitly with Stop).
type Sampler struct {
	reg      *Registry
	eng      *sim.Engine
	interval sim.Cycles
	stopped  bool
	// out[i] receives samples of reg.gauges[i]; bound at start so gauges
	// registered later are not silently half-sampled.
	out []*Series
}

// StartSampler begins sampling all currently-registered gauges every
// interval cycles, beginning one interval from now. It returns nil (a no-op
// sampler) on a nil registry, when no gauges are registered, or when the
// interval is zero.
func (r *Registry) StartSampler(eng *sim.Engine, interval sim.Cycles) *Sampler {
	if r == nil || eng == nil || interval == 0 || len(r.gauges) == 0 {
		return nil
	}
	s := &Sampler{reg: r, eng: eng, interval: interval}
	s.out = make([]*Series, len(r.gauges))
	for i, g := range r.gauges {
		ser := r.series[g.name]
		if ser == nil {
			ser = &Series{Interval: uint64(interval)}
			r.series[g.name] = ser
		}
		s.out[i] = ser
	}
	eng.After(interval, s.tick)
	return s
}

// Stop ends the sampling chain after the next pending tick.
func (s *Sampler) Stop() {
	if s != nil {
		s.stopped = true
	}
}

func (s *Sampler) tick() {
	if s.stopped {
		return
	}
	now := uint64(s.eng.Now())
	for i, g := range s.reg.gauges {
		ser := s.out[i]
		ser.Cycles = append(ser.Cycles, now)
		ser.Values = append(ser.Values, g.Value())
	}
	s.eng.After(s.interval, s.tick)
}
