package metrics

import (
	"bytes"
	"encoding/json"
	"testing"

	"ndpbridge/internal/sim"
)

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c")
	h := reg.Histogram("h")
	g := reg.Gauge("g", func() uint64 { return 7 })

	c.Add(3)
	c.Inc()
	h.Observe(42)
	if c.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 || g.Value() != 0 {
		t.Error("nil instruments must observe nothing and read zero")
	}
	if h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("nil histogram accessors must return zero")
	}
	if reg.StartSampler(sim.NewEngine(), 10) != nil {
		t.Error("nil registry must return a nil sampler")
	}
	if reg.FindHistogram("h") != nil || reg.FindCounter("c") != nil || reg.SeriesByName("s") != nil {
		t.Error("nil registry lookups must return nil")
	}
	if reg.CounterNames() != nil || reg.HistogramNames() != nil || reg.SeriesNames() != nil {
		t.Error("nil registry name listings must be nil")
	}
	reg.Merge(NewRegistry(), "")
	var s *Sampler
	s.Stop() // must not panic
	var ser *Series
	if ser.Len() != 0 {
		t.Error("nil series Len")
	}
}

func TestCounter(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("tasks")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("counter = %d, want 10", c.Value())
	}
	if reg.Counter("tasks") != c {
		t.Error("same name must return the same counter")
	}
}

func TestHistogramExactStats(t *testing.T) {
	h := NewRegistry().Histogram("h")
	for _, v := range []uint64{5, 1, 9, 0, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 115 || h.Min() != 0 || h.Max() != 100 {
		t.Errorf("count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if m := h.Mean(); m != 23 {
		t.Errorf("mean = %v, want 23", m)
	}
}

// TestHistogramQuantiles checks the log2-bucket quantile contract: the
// returned value is an upper bound of the covering bucket, within 2× of the
// true quantile, and exact at the extremes.
func TestHistogramQuantiles(t *testing.T) {
	h := NewRegistry().Histogram("h")
	// 100 observations: 1..100.
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	// True p50 = 50, covering bucket holds [32,63] → estimate 63.
	if got := h.Quantile(0.5); got != 63 {
		t.Errorf("p50 = %d, want 63", got)
	}
	// True p90 = 90 → bucket [64,127], clamped to max 100.
	if got := h.Quantile(0.9); got != 100 {
		t.Errorf("p90 = %d, want 100 (bucket clamped to max)", got)
	}
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("p99 = %d, want 100", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %d, want min 1", got)
	}
	// Quantiles never fall below min even for tiny q.
	if got := h.Quantile(0.001); got < 1 {
		t.Errorf("q0.001 = %d below min", got)
	}
}

func TestHistogramQuantileSingleValue(t *testing.T) {
	h := NewRegistry().Histogram("h")
	h.Observe(7)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Errorf("q%v = %d, want 7", q, got)
		}
	}
	// Zero-valued observations land in bucket 0.
	z := NewRegistry().Histogram("z")
	z.Observe(0)
	z.Observe(0)
	if got := z.Quantile(0.99); got != 0 {
		t.Errorf("all-zero q99 = %d", got)
	}
}

func TestHistogramLargeValues(t *testing.T) {
	h := NewRegistry().Histogram("h")
	h.Observe(1 << 63)
	h.Observe(^uint64(0))
	if h.Max() != ^uint64(0) || h.Count() != 2 {
		t.Errorf("max=%d count=%d", h.Max(), h.Count())
	}
	if got := h.Quantile(0.99); got != ^uint64(0) {
		t.Errorf("q99 = %d", got)
	}
}

func TestSampler(t *testing.T) {
	reg := NewRegistry()
	eng := sim.NewEngine()
	var depth uint64
	reg.Gauge("queue_depth", func() uint64 { return depth })
	s := reg.StartSampler(eng, 100)
	if s == nil {
		t.Fatal("sampler not started")
	}
	// Mutate the gauge source over time.
	eng.At(50, func() { depth = 5 })
	eng.At(150, func() { depth = 9 })
	eng.RunUntil(350)
	ser := reg.SeriesByName("queue_depth")
	if ser.Len() != 3 {
		t.Fatalf("samples = %d, want 3 (got %+v)", ser.Len(), ser)
	}
	wantCycles := []uint64{100, 200, 300}
	wantValues := []uint64{5, 9, 9}
	for i := range wantCycles {
		if ser.Cycles[i] != wantCycles[i] || ser.Values[i] != wantValues[i] {
			t.Errorf("sample %d = (%d,%d), want (%d,%d)",
				i, ser.Cycles[i], ser.Values[i], wantCycles[i], wantValues[i])
		}
	}
	// Stop cuts the chain: no more samples after.
	s.Stop()
	eng.RunUntil(1000)
	if ser.Len() != 3 {
		t.Errorf("samples after Stop = %d, want 3", ser.Len())
	}
}

func TestSamplerNoGauges(t *testing.T) {
	if NewRegistry().StartSampler(sim.NewEngine(), 10) != nil {
		t.Error("sampler with no gauges must be nil")
	}
	reg := NewRegistry()
	reg.Gauge("g", func() uint64 { return 1 })
	if reg.StartSampler(sim.NewEngine(), 0) != nil {
		t.Error("zero-interval sampler must be nil")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("runs").Add(2)
	b.Counter("runs").Add(3)
	b.Counter("only_b").Inc()
	a.Histogram("lat").Observe(10)
	b.Histogram("lat").Observe(1000)
	b.series["mb"] = &Series{Interval: 10, Cycles: []uint64{10}, Values: []uint64{4}}

	a.Merge(b, "tree/O/")
	if got := a.Counter("runs").Value(); got != 5 {
		t.Errorf("merged counter = %d, want 5", got)
	}
	if got := a.Counter("only_b").Value(); got != 1 {
		t.Errorf("new counter = %d, want 1", got)
	}
	h := a.Histogram("lat")
	if h.Count() != 2 || h.Min() != 10 || h.Max() != 1000 {
		t.Errorf("merged hist count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if a.SeriesByName("tree/O/mb").Len() != 1 {
		t.Error("series not merged under prefix")
	}
	// A second merge of the same series name gets a collision suffix.
	a.Merge(b, "tree/O/")
	if a.SeriesByName("tree/O/mb#2").Len() != 1 {
		t.Errorf("collision suffix missing; series: %v", a.SeriesNames())
	}
}

func TestMergeEmptyHistogramKeepsMin(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("h").Observe(5)
	b.Histogram("h") // registered but empty
	a.Merge(b, "")
	if h := a.Histogram("h"); h.Count() != 1 || h.Min() != 5 {
		t.Errorf("empty merge corrupted histogram: count=%d min=%d", h.Count(), h.Min())
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bounces").Add(4)
	h := reg.Histogram("task_latency_cycles")
	h.Observe(3)
	h.Observe(300)
	reg.series["mailbox_used_total"] = &Series{Interval: 100, Cycles: []uint64{100, 200}, Values: []uint64{64, 0}}

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f FileJSON
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if f.Counters["bounces"] != 4 {
		t.Errorf("counters = %v", f.Counters)
	}
	hj := f.Histograms["task_latency_cycles"]
	if hj.Count != 2 || hj.Min != 3 || hj.Max != 300 || len(hj.Buckets) != 2 {
		t.Errorf("histogram json = %+v", hj)
	}
	if hj.P99 != 300 {
		t.Errorf("p99 = %d, want 300", hj.P99)
	}
	s := f.Series["mailbox_used_total"]
	if s.Interval != 100 || len(s.Cycles) != 2 || s.Values[0] != 64 {
		t.Errorf("series json = %+v", s)
	}
	// A nil registry still exports a valid empty document.
	var nilReg *Registry
	buf.Reset()
	if err := nilReg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil registry JSON invalid: %v", err)
	}
}

func TestItoa(t *testing.T) {
	for _, tc := range []struct {
		n int
		s string
	}{{0, "0"}, {2, "2"}, {10, "10"}, {987, "987"}} {
		if got := itoa(tc.n); got != tc.s {
			t.Errorf("itoa(%d) = %q", tc.n, got)
		}
	}
}
