package metrics

import (
	"encoding/json"
	"io"
)

// The JSON schema emitted by WriteJSON:
//
//	{
//	  "counters":   {"<name>": <uint64>, ...},
//	  "histograms": {"<name>": {"count":…, "sum":…, "min":…, "max":…,
//	                            "mean":…, "p50":…, "p90":…, "p99":…,
//	                            "buckets": [{"le":…, "count":…}, ...]}, ...},
//	  "series":     {"<name>": {"interval":…, "cycles":[…], "values":[…]}, ...}
//	}
//
// Buckets are log2: entry {le: L, count: N} means N observations were
// ≤ L and greater than the previous entry's le. Zero-count buckets are
// omitted. Map keys make the output stable: encoding/json sorts them.

// HistogramJSON is the exported form of one histogram.
type HistogramJSON struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Min     uint64       `json:"min"`
	Max     uint64       `json:"max"`
	Mean    float64      `json:"mean"`
	P50     uint64       `json:"p50"`
	P90     uint64       `json:"p90"`
	P99     uint64       `json:"p99"`
	Buckets []BucketJSON `json:"buckets,omitempty"`
}

// BucketJSON is one non-empty log2 bucket.
type BucketJSON struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// SeriesJSON is the exported form of one sampled time series.
type SeriesJSON struct {
	Interval uint64   `json:"interval"`
	Cycles   []uint64 `json:"cycles"`
	Values   []uint64 `json:"values"`
}

// FileJSON is the top-level export schema.
type FileJSON struct {
	Counters   map[string]uint64        `json:"counters"`
	Histograms map[string]HistogramJSON `json:"histograms"`
	Series     map[string]SeriesJSON    `json:"series"`
}

// Export builds the JSON-ready snapshot of the registry.
func (r *Registry) Export() FileJSON {
	f := FileJSON{
		Counters:   map[string]uint64{},
		Histograms: map[string]HistogramJSON{},
		Series:     map[string]SeriesJSON{},
	}
	if r == nil {
		return f
	}
	for name, c := range r.counters {
		f.Counters[name] = c.Value()
	}
	for name, h := range r.hists {
		hj := HistogramJSON{
			Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
			Mean: h.Mean(), P50: h.Quantile(0.5), P90: h.Quantile(0.9), P99: h.Quantile(0.99),
		}
		for i, n := range h.buckets {
			if n > 0 {
				hj.Buckets = append(hj.Buckets, BucketJSON{Le: bucketUpper(i), Count: n})
			}
		}
		f.Histograms[name] = hj
	}
	for name, s := range r.series {
		f.Series[name] = SeriesJSON{Interval: s.Interval, Cycles: s.Cycles, Values: s.Values}
	}
	return f
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Export(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
