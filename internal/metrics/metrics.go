// Package metrics is the simulator's run-introspection layer: monotonic
// counters, callback gauges, and log2-bucketed histograms with quantile
// estimation, collected in a per-run Registry and exported as JSON.
//
// The design follows trace.Recorder's nil-safety contract: every instrument
// method is a no-op on a nil receiver, and a nil *Registry hands out nil
// instruments, so hot paths carry exactly one predictable branch per
// observation and zero allocations whether metrics are on or off
// (BenchmarkEngineDispatch enforces the 0 allocs/op bound).
//
// A Registry is single-goroutine by construction — one per simulation run,
// like the run's sim.Engine. Concurrent experiment harnesses (ndpbench -j N)
// give every run its own Registry and merge them after the run barrier with
// Merge, which is the only cross-run operation and is driven by one goroutine
// under the harness's lock.
package metrics

import (
	"math/bits"
	"sort"
)

// Counter is a monotonic event counter.
type Counter struct {
	v uint64
}

// Add increments the counter by n. Nil receivers are no-ops.
//
//ndplint:hotpath
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
//
//ndplint:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
//
//ndplint:hotpath
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge reports an instantaneous value through a callback; the Sampler
// snapshots registered gauges into time series.
type Gauge struct {
	name string
	read func() uint64
}

// Value invokes the gauge's callback (0 on a nil receiver).
func (g *Gauge) Value() uint64 {
	if g == nil || g.read == nil {
		return 0
	}
	return g.read()
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// nBuckets covers bits.Len64 of any uint64: bucket 0 holds the value 0,
// bucket k (k ≥ 1) holds values in [2^(k-1), 2^k − 1].
const nBuckets = 65

// Histogram is a log2-bucketed distribution of uint64 observations. Exact
// count, sum, min and max are kept alongside the buckets; quantiles are
// resolved to the upper bound of the covering bucket (clamped to the exact
// max), which bounds the relative quantile error by 2×.
type Histogram struct {
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [nBuckets]uint64
}

// Observe records one value. Nil receivers are no-ops.
//
//ndplint:hotpath
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// min starts at MaxUint64 (set by Registry.Histogram) so the empty
	// case needs no extra branch here.
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean of the observations.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// bucketUpper returns the largest value bucket i can hold.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Quantile estimates the q-quantile (0 < q ≤ 1): the upper bound of the
// bucket containing the ⌈q·count⌉-th smallest observation, clamped to the
// exact min/max. Empty and nil histograms return 0.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i := 0; i < nBuckets; i++ {
		cum += h.buckets[i]
		if cum >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// merge accumulates o into h.
func (h *Histogram) merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Series is one cycle-sampled time series produced by the Sampler.
type Series struct {
	// Interval is the sampling period in cycles.
	Interval uint64
	// Cycles[i] is the simulated time of sample i; Values[i] its value.
	Cycles []uint64
	Values []uint64
}

// Len returns the number of samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.Cycles)
}

// Registry holds one run's instruments, keyed by name. The zero value of
// *Registry (nil) is the "metrics off" state: it hands out nil instruments
// and ignores registrations.
type Registry struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   []*Gauge
	gaugeIdx map[string]*Gauge
	series   map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		gaugeIdx: make(map[string]*Gauge),
		series:   make(map[string]*Series),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = &Histogram{min: ^uint64(0)}
		r.hists[name] = h
	}
	return h
}

// Gauge registers a callback gauge under name. Re-registering a name
// replaces the callback (the latest component wins). A nil registry returns
// a nil gauge and drops the registration.
func (r *Registry) Gauge(name string, read func() uint64) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gaugeIdx[name]; ok {
		g.read = read
		return g
	}
	g := &Gauge{name: name, read: read}
	r.gauges = append(r.gauges, g)
	r.gaugeIdx[name] = g
	return g
}

// FindHistogram returns the named histogram without creating it.
func (r *Registry) FindHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.hists[name]
}

// FindCounter returns the named counter without creating it.
func (r *Registry) FindCounter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.counters[name]
}

// SeriesByName returns the named sampled series, or nil.
func (r *Registry) SeriesByName(name string) *Series {
	if r == nil {
		return nil
	}
	return r.series[name]
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	return sortedKeys(r.counters)
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	return sortedKeys(r.hists)
}

// SeriesNames returns the sampled series names, sorted.
func (r *Registry) SeriesNames() []string {
	if r == nil {
		return nil
	}
	return sortedKeys(r.series)
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Merge folds src into r: counters sum, histograms merge bucket-wise, and
// series are copied under prefix+name (a "#2", "#3", … suffix disambiguates
// collisions, e.g. repeated (app, design) runs inside one sweep). Gauge
// callbacks are not merged — they are bound to a live system. Merge is the
// harness-side collection step for per-run registries and must be serialized
// by the caller.
func (r *Registry) Merge(src *Registry, prefix string) {
	if r == nil || src == nil {
		return
	}
	for name, c := range src.counters {
		r.Counter(name).Add(c.v)
	}
	for name, h := range src.hists {
		r.Histogram(name).merge(h)
	}
	for name, s := range src.series {
		if s.Len() == 0 {
			continue
		}
		key := prefix + name
		if _, taken := r.series[key]; taken {
			for i := 2; ; i++ {
				k2 := key + "#" + itoa(i)
				if _, taken := r.series[k2]; !taken {
					key = k2
					break
				}
			}
		}
		cp := &Series{Interval: s.Interval,
			Cycles: append([]uint64(nil), s.Cycles...),
			Values: append([]uint64(nil), s.Values...)}
		r.series[key] = cp
	}
}

// itoa avoids strconv in this tiny hot-free path.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
