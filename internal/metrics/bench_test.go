package metrics

import (
	"testing"

	"ndpbridge/internal/sim"
)

// dispatchLoop builds an engine with 16 self-rescheduling event chains whose
// callbacks perform the per-event instrument work of a fully-instrumented
// model: one counter bump and one histogram observation. With a nil registry
// both are single-branch no-ops, so the loop must match the bare engine's
// 0 allocs/op.
func dispatchLoop(reg *Registry) *sim.Engine {
	c := reg.Counter("events")
	h := reg.Histogram("latency_cycles")
	e := sim.NewEngine()
	var spin func()
	spin = func() {
		c.Inc()
		h.Observe(uint64(e.Now()) & 1023)
		e.After(1, spin)
	}
	for i := 0; i < 16; i++ {
		e.At(sim.Cycles(i), spin)
	}
	return e
}

// BenchmarkEngineDispatch is the metrics-off dispatch path: a nil registry's
// instruments inside the event callback. The acceptance bound is 0 allocs/op.
func BenchmarkEngineDispatch(b *testing.B) {
	e := dispatchLoop(nil)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(uint64(b.N)); err != nil && err != sim.ErrLimit {
		b.Fatal(err)
	}
}

// BenchmarkEngineDispatchMetrics is the metrics-on dispatch path: the same
// loop with live instruments. DESIGN.md §8 records the measured overhead of
// this benchmark over BenchmarkEngineDispatch (<5% required).
func BenchmarkEngineDispatchMetrics(b *testing.B) {
	e := dispatchLoop(NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(uint64(b.N)); err != nil && err != sim.ErrLimit {
		b.Fatal(err)
	}
}

// TestDispatchNilRegistryZeroAlloc enforces the acceptance criterion in the
// regular test suite, not just under -bench: steady-state dispatch with nil
// instruments performs zero heap allocations per event.
func TestDispatchNilRegistryZeroAlloc(t *testing.T) {
	e := dispatchLoop(nil)
	// Warm up past one full calendar-queue revolution so every wheel
	// bucket's storage reaches its high-water mark (16 chains per cycle).
	if err := e.Run(16 * (sim.WheelSize + 64)); err != nil && err != sim.ErrLimit {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := e.Run(e.Processed() + 256); err != nil && err != sim.ErrLimit {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("dispatch with nil registry allocates %.1f allocs/run, want 0", allocs)
	}
}

// TestDispatchLiveRegistrySteadyStateZeroAlloc: live instruments also stay
// allocation-free once created — Observe/Inc touch only pre-allocated state.
func TestDispatchLiveRegistrySteadyStateZeroAlloc(t *testing.T) {
	e := dispatchLoop(NewRegistry())
	if err := e.Run(16 * (sim.WheelSize + 64)); err != nil && err != sim.ErrLimit {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := e.Run(e.Processed() + 256); err != nil && err != sim.ErrLimit {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("dispatch with live registry allocates %.1f allocs/run, want 0", allocs)
	}
}
