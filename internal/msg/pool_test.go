package msg

import "testing"

func TestPoolReusesSlots(t *testing.T) {
	p := NewPool()
	a := p.Get()
	a.Type = TypeTask
	a.Src = 7
	idx := a.pidx
	p.Put(a)
	b := p.Get()
	if b.pidx != idx {
		t.Fatalf("free list did not reuse slot: got %d, want %d", b.pidx, idx)
	}
	if b.Type != 0 || b.Src != 0 {
		t.Fatalf("recycled message not zeroed: %+v", b)
	}
	if n := p.InUse(); n != 1 {
		t.Fatalf("InUse = %d, want 1", n)
	}
}

func TestPoolHandleCatchesUseAfterFree(t *testing.T) {
	p := NewPool()
	m := p.Get()
	h, ok := m.Handle()
	if !ok {
		t.Fatal("pooled message did not produce a handle")
	}
	if !p.Live(h) {
		t.Fatal("fresh handle reported dead")
	}
	p.Put(m)
	if p.Live(h) {
		t.Fatal("handle still live after free")
	}
	// Recycle the slot into a new generation: the old handle must stay
	// dead, the new one live.
	m2 := p.Get()
	if m2.pidx != h.idx {
		t.Fatalf("expected slot %d to recycle, got %d", h.idx, m2.pidx)
	}
	if p.Live(h) {
		t.Fatal("stale handle resolves against recycled slot (ABA)")
	}
	h2, _ := m2.Handle()
	if !p.Live(h2) {
		t.Fatal("new-generation handle reported dead")
	}
}

func TestPoolDoubleFreePanics(t *testing.T) {
	p := NewPool()
	m := p.Get()
	p.Put(m)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	p.Put(m)
}

func TestPoolIgnoresForeignMessages(t *testing.T) {
	p := NewPool()
	m := &Message{Type: TypeTask}
	p.Put(m) // must be a no-op, not a panic
	if _, ok := m.Handle(); ok {
		t.Fatal("plain allocation produced a pool handle")
	}
}
