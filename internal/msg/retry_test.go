package msg

import (
	"testing"

	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
)

func taskMsg(seq uint32) *Message {
	m := NewTask(1, 2, task.New(0, 0, 0x1000, 4))
	m.Seq = seq
	m.Sum = Checksum(m)
	return m
}

func TestChecksumDetectsCorruption(t *testing.T) {
	m := taskMsg(7)
	if !m.Verify() {
		t.Fatal("fresh message should verify")
	}
	m.Corrupt()
	if m.Verify() {
		t.Fatal("corrupted message should fail verification")
	}
	// Payload mutation without re-stamping must also fail.
	m2 := taskMsg(7)
	m2.Task.Addr ^= 1
	if m2.Verify() {
		t.Fatal("mutated payload should fail verification")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := taskMsg(3)
	c := m.Clone()
	c.Seq = 99
	if m.Seq != 3 {
		t.Fatalf("clone mutation leaked into original: seq=%d", m.Seq)
	}
}

func TestRetransTimeoutAndBackoff(t *testing.T) {
	eng := sim.NewEngine()
	var sent []uint32
	r := NewRetrans(eng, 10, 40, 1<<20, func(m *Message) { sent = append(sent, m.Seq) })

	r.Track(taskMsg(1))
	// No ack: expect resends at t=10 (rto→20), t=30 (rto→40), t=70 (capped),
	// t=110, ... Run to t=115 and count.
	eng.RunUntil(115)
	want := []uint32{1, 1, 1, 1}
	if len(sent) != len(want) {
		t.Fatalf("got %d resends (%v), want %d", len(sent), sent, len(want))
	}
	st := r.Stats()
	if st.Retries != 4 || st.Tracked != 1 {
		t.Fatalf("stats = %+v, want retries=4 tracked=1", st)
	}
}

func TestRetransAckStopsResend(t *testing.T) {
	eng := sim.NewEngine()
	var resent int
	r := NewRetrans(eng, 10, 40, 1<<20, func(m *Message) { resent++ })
	r.Track(taskMsg(1))
	eng.RunUntil(5)
	r.Ack(1)
	eng.RunUntil(200)
	if resent != 0 {
		t.Fatalf("acked message was resent %d times", resent)
	}
	if r.Len() != 0 || r.Bytes() != 0 {
		t.Fatalf("buffer not drained: len=%d bytes=%d", r.Len(), r.Bytes())
	}
	// Late/duplicate acks are ignored.
	r.Ack(1)
	if r.Stats().Acked != 1 {
		t.Fatalf("duplicate ack counted: %+v", r.Stats())
	}
}

func TestRetransNackResendsNextCycle(t *testing.T) {
	eng := sim.NewEngine()
	var resent int
	r := NewRetrans(eng, 100, 400, 1<<20, func(m *Message) { resent++ })
	r.Track(taskMsg(5))
	// The resend is deferred one cycle through the engine (a synchronous send
	// would let the receiver's ack/nack re-enter the buffer mid-sweep), so it
	// must not have fired yet but must fire long before the 100-cycle rto.
	r.Nack(5)
	if resent != 0 {
		t.Fatalf("nack resend fired synchronously (resent=%d)", resent)
	}
	eng.RunUntil(1)
	if resent != 1 {
		t.Fatalf("nack did not trigger a next-cycle resend (resent=%d)", resent)
	}
	st := r.Stats()
	if st.Nacked != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetransTrackIsIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRetrans(eng, 10, 40, 1<<20, func(m *Message) {})
	m := taskMsg(9)
	r.Track(m)
	r.Track(m.Clone()) // retransmit clone re-traverses the stamping path
	if r.Len() != 1 {
		t.Fatalf("idempotent Track added a duplicate entry: len=%d", r.Len())
	}
	if r.Stats().Tracked != 1 {
		t.Fatalf("tracked = %d, want 1", r.Stats().Tracked)
	}
}

func TestRetransWatermark(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRetrans(eng, 10, 40, 100, func(m *Message) {})
	seq := uint32(1)
	for !r.Full() {
		r.Track(taskMsg(seq))
		seq++
	}
	if r.Bytes() <= 100 {
		t.Fatalf("Full() with bytes=%d <= limit", r.Bytes())
	}
	// Draining under the watermark reopens the hop.
	for s := uint32(1); s < seq; s++ {
		r.Ack(s)
	}
	if r.Full() {
		t.Fatal("empty buffer reports Full")
	}
}

func TestRetransTakeAllAndDrop(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRetrans(eng, 10, 40, 1<<20, func(m *Message) {})
	r.Track(taskMsg(1))
	r.Track(taskMsg(2))
	if !r.Drop(1) || r.Drop(1) {
		t.Fatal("Drop should remove exactly once")
	}
	ms := r.TakeAll()
	if len(ms) != 1 || ms[0].Seq != 2 {
		t.Fatalf("TakeAll = %v", ms)
	}
	if r.Len() != 0 || r.Bytes() != 0 {
		t.Fatal("TakeAll left residue")
	}
}

func TestDedupFiltersAndCompacts(t *testing.T) {
	var d Dedup
	if !d.Accept(1) || !d.Accept(2) {
		t.Fatal("fresh in-order seqs rejected")
	}
	if d.Accept(2) || d.Accept(1) {
		t.Fatal("duplicates accepted")
	}
	// Out of order: 4 before 3; then 3 compacts the floor to 4.
	if !d.Accept(4) || !d.Accept(3) {
		t.Fatal("fresh out-of-order seqs rejected")
	}
	if d.Accept(3) || d.Accept(4) {
		t.Fatal("duplicates accepted after compaction")
	}
	if len(d.seen) != 0 {
		t.Fatalf("seen set not compacted: %v", d.seen)
	}
	if d.Dups() != 4 {
		t.Fatalf("dups = %d, want 4", d.Dups())
	}
}

func TestDedupMark(t *testing.T) {
	var d Dedup
	d.Mark(2)
	if d.Accept(2) {
		t.Fatal("marked seq accepted")
	}
	if !d.Accept(1) {
		t.Fatal("unrelated seq rejected")
	}
	// Accepting 1 compacts over the marked 2: floor should now cover both.
	if d.Accept(2) {
		t.Fatal("marked+compacted seq accepted")
	}
	// Mark below the floor is a no-op.
	d.Mark(1)
	if d.Dups() != 2 {
		t.Fatalf("dups = %d", d.Dups())
	}
}
