package msg

import (
	"testing"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
)

func taskMsg(seq uint32) *Message {
	m := NewTask(1, 2, task.New(0, 0, 0x1000, 4))
	m.Seq = seq
	m.Sum = Checksum(m)
	return m
}

func TestChecksumDetectsCorruption(t *testing.T) {
	m := taskMsg(7)
	if !m.Verify() {
		t.Fatal("fresh message should verify")
	}
	m.Corrupt()
	if m.Verify() {
		t.Fatal("corrupted message should fail verification")
	}
	// Payload mutation without re-stamping must also fail.
	m2 := taskMsg(7)
	m2.Task.Addr ^= 1
	if m2.Verify() {
		t.Fatal("mutated payload should fail verification")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := taskMsg(3)
	c := m.Clone()
	c.Seq = 99
	if m.Seq != 3 {
		t.Fatalf("clone mutation leaked into original: seq=%d", m.Seq)
	}
}

func TestRetransTimeoutAndBackoff(t *testing.T) {
	eng := sim.NewEngine()
	var sent []uint32
	r := NewRetrans(eng, 10, 40, 1<<20, func(m *Message) { sent = append(sent, m.Seq) })

	r.Track(taskMsg(1))
	// No ack: expect resends at t=10 (rto→20), t=30 (rto→40), t=70 (capped),
	// t=110, ... Run to t=115 and count.
	eng.RunUntil(115)
	want := []uint32{1, 1, 1, 1}
	if len(sent) != len(want) {
		t.Fatalf("got %d resends (%v), want %d", len(sent), sent, len(want))
	}
	st := r.Stats()
	if st.Retries != 4 || st.Tracked != 1 {
		t.Fatalf("stats = %+v, want retries=4 tracked=1", st)
	}
}

// resendTimes tracks one unacked message on a jittered buffer and records
// the cycle of every retransmission until horizon.
func resendTimes(seed uint64, horizon sim.Cycles) []sim.Cycles {
	eng := sim.NewEngine()
	var times []sim.Cycles
	r := NewRetrans(eng, 10, 1<<10, 1<<20, nil)
	r.send = func(m *Message) { times = append(times, eng.Now()) }
	r.SetJitter(seed)
	r.Track(taskMsg(1))
	eng.RunUntil(horizon)
	return times
}

func TestRetransJitterDesynchronizesStorms(t *testing.T) {
	// Simulate the aftermath of a shared fault: many hops lose a message at
	// the same instant. Without jitter every buffer retransmits at identical
	// cycles (a lockstep storm); with per-hop seeds the schedules diverge
	// while each individual schedule stays deterministic.
	const hops = 8
	const horizon = 5000
	schedules := make([][]sim.Cycles, hops)
	for h := 0; h < hops; h++ {
		schedules[h] = resendTimes(JitterSeed(1, uint64(h)), horizon)
		if len(schedules[h]) == 0 {
			t.Fatalf("hop %d never retransmitted", h)
		}
	}
	// Count, per retransmission round, how many distinct fire cycles the
	// fleet uses. Lockstep would give exactly 1 for every round.
	distinctRounds := 0
	for round := 1; round < 4; round++ { // round 0 fires at rto0 before any jitter applies
		seen := map[sim.Cycles]bool{}
		for h := 0; h < hops; h++ {
			if round < len(schedules[h]) {
				seen[schedules[h][round]] = true
			}
		}
		if len(seen) > hops/2 {
			distinctRounds++
		}
	}
	if distinctRounds < 2 {
		t.Fatalf("retry storm stayed synchronized: %v", schedules)
	}
	// Same seed → identical schedule (jitter is deterministic).
	again := resendTimes(JitterSeed(1, 3), horizon)
	if len(again) != len(schedules[3]) {
		t.Fatalf("jitter not deterministic: %v vs %v", again, schedules[3])
	}
	for i := range again {
		if again[i] != schedules[3][i] {
			t.Fatalf("jitter not deterministic at round %d: %v vs %v", i, again, schedules[3])
		}
	}
}

func TestRetransJitterSnapshotRoundTrip(t *testing.T) {
	// The jitter stream position must survive a snapshot/restore cycle so a
	// restored run retransmits at the same jittered deadlines.
	eng := sim.NewEngine()
	r := NewRetrans(eng, 10, 1<<10, 1<<20, func(m *Message) {})
	r.SetJitter(JitterSeed(2, 7))
	r.Track(taskMsg(1))
	eng.RunUntil(100) // advance the jitter stream through a few resends
	enc := checkpoint.NewEnc(nil)
	r.SnapshotTo(enc)
	r2 := NewRetrans(sim.NewEngine(), 10, 1<<10, 1<<20, func(m *Message) {})
	if err := r2.RestoreFrom(checkpoint.NewDec(enc.Data())); err != nil {
		t.Fatal(err)
	}
	if r2.jrng == nil || r2.jrng.State() != r.jrng.State() {
		t.Fatalf("jitter state not restored: %+v vs %+v", r2.jrng, r.jrng)
	}
	// A buffer without jitter round-trips to a buffer without jitter.
	r3 := NewRetrans(sim.NewEngine(), 10, 1<<10, 1<<20, func(m *Message) {})
	r3.Track(taskMsg(2))
	enc2 := checkpoint.NewEnc(nil)
	r3.SnapshotTo(enc2)
	r4 := NewRetrans(sim.NewEngine(), 10, 1<<10, 1<<20, func(m *Message) {})
	r4.SetJitter(1) // restore must clear it
	if err := r4.RestoreFrom(checkpoint.NewDec(enc2.Data())); err != nil {
		t.Fatal(err)
	}
	if r4.jrng != nil {
		t.Fatal("restore of jitter-free snapshot left jitter enabled")
	}
}

func TestRetransAckStopsResend(t *testing.T) {
	eng := sim.NewEngine()
	var resent int
	r := NewRetrans(eng, 10, 40, 1<<20, func(m *Message) { resent++ })
	r.Track(taskMsg(1))
	eng.RunUntil(5)
	r.Ack(1)
	eng.RunUntil(200)
	if resent != 0 {
		t.Fatalf("acked message was resent %d times", resent)
	}
	if r.Len() != 0 || r.Bytes() != 0 {
		t.Fatalf("buffer not drained: len=%d bytes=%d", r.Len(), r.Bytes())
	}
	// Late/duplicate acks are ignored.
	r.Ack(1)
	if r.Stats().Acked != 1 {
		t.Fatalf("duplicate ack counted: %+v", r.Stats())
	}
}

func TestRetransNackResendsNextCycle(t *testing.T) {
	eng := sim.NewEngine()
	var resent int
	r := NewRetrans(eng, 100, 400, 1<<20, func(m *Message) { resent++ })
	r.Track(taskMsg(5))
	// The resend is deferred one cycle through the engine (a synchronous send
	// would let the receiver's ack/nack re-enter the buffer mid-sweep), so it
	// must not have fired yet but must fire long before the 100-cycle rto.
	r.Nack(5)
	if resent != 0 {
		t.Fatalf("nack resend fired synchronously (resent=%d)", resent)
	}
	eng.RunUntil(1)
	if resent != 1 {
		t.Fatalf("nack did not trigger a next-cycle resend (resent=%d)", resent)
	}
	st := r.Stats()
	if st.Nacked != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetransTrackIsIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRetrans(eng, 10, 40, 1<<20, func(m *Message) {})
	m := taskMsg(9)
	r.Track(m)
	r.Track(m.Clone()) // retransmit clone re-traverses the stamping path
	if r.Len() != 1 {
		t.Fatalf("idempotent Track added a duplicate entry: len=%d", r.Len())
	}
	if r.Stats().Tracked != 1 {
		t.Fatalf("tracked = %d, want 1", r.Stats().Tracked)
	}
}

func TestRetransWatermark(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRetrans(eng, 10, 40, 100, func(m *Message) {})
	seq := uint32(1)
	for !r.Full() {
		r.Track(taskMsg(seq))
		seq++
	}
	if r.Bytes() <= 100 {
		t.Fatalf("Full() with bytes=%d <= limit", r.Bytes())
	}
	// Draining under the watermark reopens the hop.
	for s := uint32(1); s < seq; s++ {
		r.Ack(s)
	}
	if r.Full() {
		t.Fatal("empty buffer reports Full")
	}
}

func TestRetransTakeAllAndDrop(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRetrans(eng, 10, 40, 1<<20, func(m *Message) {})
	r.Track(taskMsg(1))
	r.Track(taskMsg(2))
	if !r.Drop(1) || r.Drop(1) {
		t.Fatal("Drop should remove exactly once")
	}
	ms := r.TakeAll()
	if len(ms) != 1 || ms[0].Seq != 2 {
		t.Fatalf("TakeAll = %v", ms)
	}
	if r.Len() != 0 || r.Bytes() != 0 {
		t.Fatal("TakeAll left residue")
	}
}

func TestDedupFiltersAndCompacts(t *testing.T) {
	var d Dedup
	if !d.Accept(1) || !d.Accept(2) {
		t.Fatal("fresh in-order seqs rejected")
	}
	if d.Accept(2) || d.Accept(1) {
		t.Fatal("duplicates accepted")
	}
	// Out of order: 4 before 3; then 3 compacts the floor to 4.
	if !d.Accept(4) || !d.Accept(3) {
		t.Fatal("fresh out-of-order seqs rejected")
	}
	if d.Accept(3) || d.Accept(4) {
		t.Fatal("duplicates accepted after compaction")
	}
	if len(d.seen) != 0 {
		t.Fatalf("seen set not compacted: %v", d.seen)
	}
	if d.Dups() != 4 {
		t.Fatalf("dups = %d, want 4", d.Dups())
	}
}

func TestDedupMark(t *testing.T) {
	var d Dedup
	d.Mark(2)
	if d.Accept(2) {
		t.Fatal("marked seq accepted")
	}
	if !d.Accept(1) {
		t.Fatal("unrelated seq rejected")
	}
	// Accepting 1 compacts over the marked 2: floor should now cover both.
	if d.Accept(2) {
		t.Fatal("marked+compacted seq accepted")
	}
	// Mark below the floor is a no-op.
	d.Mark(1)
	if d.Dups() != 2 {
		t.Fatalf("dups = %d", d.Dups())
	}
}
