package msg

import (
	"testing"
	"testing/quick"

	"ndpbridge/internal/task"
)

func TestTaskMessageSize(t *testing.T) {
	m := NewTask(1, 2, task.New(0, 0, 0x100, 10))
	if m.Size() != HeaderSize+19 {
		t.Errorf("no-arg task size = %d, want %d", m.Size(), HeaderSize+19)
	}
	m3 := NewTask(1, 2, task.New(0, 0, 0x100, 10, 1, 2, 3))
	if m3.Size() != HeaderSize+19+24 {
		t.Errorf("3-arg task size = %d, want %d", m3.Size(), HeaderSize+43)
	}
	if m3.Size() > MaxSize {
		t.Errorf("task message exceeds 64 B: %d", m3.Size())
	}
}

func TestSplitData(t *testing.T) {
	ms := SplitData(3, 4, 0x4000, 256)
	wantTotal := (256 + MaxDataPayload - 1) / MaxDataPayload
	if len(ms) != wantTotal {
		t.Fatalf("split into %d, want %d", len(ms), wantTotal)
	}
	var sum uint32
	for i, m := range ms {
		if m.Type != TypeData || m.Src != 3 || m.Dst != 4 || m.BlockAddr != 0x4000 {
			t.Fatalf("sub-message %d fields wrong: %+v", i, m)
		}
		if int(m.Index) != i || int(m.Total) != wantTotal {
			t.Fatalf("sequence fields wrong at %d: %d/%d", i, m.Index, m.Total)
		}
		if m.Size() > MaxSize {
			t.Fatalf("sub-message %d size %d exceeds max", i, m.Size())
		}
		sum += m.ChunkLen
	}
	if sum != 256 {
		t.Fatalf("payload bytes = %d, want 256", sum)
	}
}

func TestSplitDataEmpty(t *testing.T) {
	if ms := SplitData(0, 1, 0, 0); ms != nil {
		t.Errorf("empty split should be nil, got %d", len(ms))
	}
}

func TestRouteAddr(t *testing.T) {
	tm := NewTask(0, 1, task.New(0, 0, 0xabc, 1))
	if a, ok := tm.RouteAddr(); !ok || a != 0xabc {
		t.Error("task RouteAddr wrong")
	}
	dm := SplitData(0, 1, 0xdef00, 10)[0]
	if a, ok := dm.RouteAddr(); !ok || a != 0xdef00 {
		t.Error("data RouteAddr wrong")
	}
	sm := NewState(0, 1, State{})
	if _, ok := sm.RouteAddr(); ok {
		t.Error("state messages must not be address-routed")
	}
}

func TestTypeString(t *testing.T) {
	if TypeTask.String() != "task" || TypeData.String() != "data" || TypeState.String() != "state" {
		t.Error("type names wrong")
	}
}

func TestStateSize(t *testing.T) {
	s := &State{SchedList: []SchedOut{{1, 2}, {3, 4}}}
	if StateSize(s) != HeaderSize+24+32 {
		t.Errorf("StateSize = %d", StateSize(s))
	}
}

// Property: splitting any block size yields exact payload coverage with
// contiguous indices and every sub-message within MaxSize.
func TestSplitDataProperty(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := uint32(nRaw)%8192 + 1
		ms := SplitData(0, 1, 0x1000, n)
		var sum uint32
		for i, m := range ms {
			if int(m.Index) != i || int(m.Total) != len(ms) {
				return false
			}
			if m.Size() > MaxSize || m.ChunkLen == 0 {
				return false
			}
			sum += m.ChunkLen
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
