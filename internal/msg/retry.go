package msg

import (
	"ndpbridge/internal/sim"
	"ndpbridge/internal/trace"
)

// This file implements the per-hop retry machinery of the fault-tolerant
// bridge protocol: a retransmit buffer with timeout-driven resend and capped
// exponential backoff (Retrans), and a receiver-side duplicate filter
// (Dedup). Both are plain data structures driven by the owning component on
// the simulation goroutine; neither schedules events unless messages are
// actually tracked, so a run without fault injection never touches them.

// RetransStats counts retry-protocol activity on one hop.
type RetransStats struct {
	Tracked uint64 // messages entered into the retransmit buffer
	Acked   uint64 // positive acknowledgements received
	Nacked  uint64 // negative acknowledgements (checksum failures)
	Retries uint64 // retransmissions sent (timeout or nack)
}

// rentry is one unacked message awaiting acknowledgement.
type rentry struct {
	m        *Message
	deadline sim.Cycles // resend when now >= deadline
	rto      sim.Cycles // current (backed-off) retransmission timeout
}

// Retrans is a sender-side retransmit buffer for one hop. Messages are held
// until acked; on timeout they are resent through the send callback with
// exponentially backed-off deadlines (capped at rtoCap). Full() reports the
// watermark-based backpressure condition: when the buffered bytes exceed the
// limit the sender must stop draining new messages onto the hop, which
// propagates into the existing mailbox/scatter backpressure paths.
//ndplint:domain(perowner)
type Retrans struct {
	eng *sim.Engine //ndplint:nosnap simulation wiring from construction
	//ndplint:nosnap config constant (initial retransmission timeout)
	rto0 sim.Cycles
	//ndplint:nosnap config constant (backoff cap)
	rtoCap sim.Cycles
	//ndplint:nosnap config constant (watermark in buffered bytes)
	limit uint64
	send  func(m *Message) //ndplint:nosnap callback wiring from construction

	entries []rentry
	bytes   uint64
	armed   bool //ndplint:nosnap deliberately not encoded; RestoreFrom re-arms the sweep
	st      RetransStats

	// jrng, when set via SetJitter, randomizes backed-off deadlines so that
	// hops which lost messages to the same fault (e.g. every child of a dark
	// rank) do not retransmit in lockstep. Seeded per hop from stable
	// identity, so runs stay deterministic; nil means no jitter (the default,
	// preserved for directly-constructed buffers in tests).
	jrng *sim.RNG

	// Causal-trace wiring, set by SetTrace: trc is consulted at each
	// retransmission for the current recorder (late-bound — recorders attach
	// to a system after its components are built) and trcActor labels the
	// retransmission spans.
	trc      func() *trace.Recorder //ndplint:nosnap trace wiring from SetTrace
	trcActor int                    //ndplint:nosnap trace wiring from SetTrace
}

// SetTrace wires a late-bound causal tracer: src returns the recorder in
// effect when a retransmission fires (nil recorders and flow-disabled
// recorders cost one branch), actor labels the spans.
func (r *Retrans) SetTrace(src func() *trace.Recorder, actor int) {
	r.trc = src
	r.trcActor = actor
}

// JitterSeed derives a stable jitter seed from a hop-class tag and an
// identity index (unit, child, or rank), so every retry endpoint in the
// system draws from a distinct — but run-to-run reproducible — stream.
func JitterSeed(hop, id uint64) uint64 {
	x := (hop+1)*0x9e3779b97f4a7c15 ^ (id+1)*0x2545f4914f6cdd1d
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// SetJitter enables deterministic backoff jitter, seeded from the hop's
// stable identity. Each retransmission's backed-off deadline is stretched by
// a pseudo-random 0..rto/4 cycles drawn from the per-hop stream, which
// de-synchronizes the retry storms that follow a shared fault without
// affecting retry counts or byte accounting.
func (r *Retrans) SetJitter(seed uint64) { r.jrng = sim.NewRNG(seed) }

// NewRetrans builds a retransmit buffer. send is invoked for every
// retransmission with a fresh Clone of the stored message (the stored copy
// stays authoritative).
func NewRetrans(eng *sim.Engine, rto0, rtoCap sim.Cycles, limitBytes uint64, send func(m *Message)) *Retrans {
	if rto0 == 0 {
		rto0 = 1
	}
	if rtoCap < rto0 {
		rtoCap = rto0
	}
	return &Retrans{eng: eng, rto0: rto0, rtoCap: rtoCap, limit: limitBytes, send: send}
}

// Track records m (already stamped with a hop sequence number) as awaiting
// acknowledgement. Tracking an already-tracked sequence number is idempotent:
// the deadline is reset but no duplicate entry is added, which makes the
// stamping call sites safe to re-traverse on retransmission.
func (r *Retrans) Track(m *Message) {
	for i := range r.entries {
		if r.entries[i].m.Seq == m.Seq {
			r.entries[i].deadline = r.eng.Now() + r.entries[i].rto
			r.arm()
			return
		}
	}
	r.entries = append(r.entries, rentry{m: m, deadline: r.eng.Now() + r.rto0, rto: r.rto0})
	r.bytes += m.Size()
	r.st.Tracked++
	r.arm()
}

// Ack removes the entry for seq. Unknown sequence numbers are ignored
// (late acks for already-resolved messages).
func (r *Retrans) Ack(seq uint32) {
	for i := range r.entries {
		if r.entries[i].m.Seq == seq {
			r.bytes -= r.entries[i].m.Size()
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			r.st.Acked++
			return
		}
	}
}

// Nack triggers an immediate retransmission of seq (checksum failure at the
// receiver) with its backoff advanced.
func (r *Retrans) Nack(seq uint32) {
	for i := range r.entries {
		if r.entries[i].m.Seq == seq {
			r.st.Nacked++
			r.resend(i)
			return
		}
	}
}

// resend retransmits entry i and advances its backoff. The send itself is
// deferred through the engine: delivery is synchronous all the way into the
// receiver, whose immediate ack/nack would otherwise mutate r.entries while
// sweep is iterating it (and a nack storm would recurse on the stack).
func (r *Retrans) resend(i int) {
	e := &r.entries[i]
	if r.trc != nil {
		if rec := r.trc(); rec.FlowsEnabled() {
			// The span covers the round-trip that just failed: from the
			// send whose ack window expired (deadline − rto) to now. A
			// nack-triggered resend has a future deadline; clamp to now.
			now := uint64(r.eng.Now())
			last := now
			if d := uint64(e.deadline); d <= now && d >= uint64(e.rto) {
				last = d - uint64(e.rto)
			}
			rec.Span(e.m.Flow, e.m.Span, trace.SpanRetx, trace.CatRetry, r.trcActor, last, now)
		}
	}
	e.rto *= 2
	if e.rto > r.rtoCap {
		e.rto = r.rtoCap
	}
	e.deadline = r.eng.Now() + e.rto
	if r.jrng != nil {
		e.deadline += sim.Cycles(r.jrng.Uint64n(uint64(e.rto/4) + 1))
	}
	r.st.Retries++
	m := e.m.Clone()
	// One cycle, not zero: a nack-triggered resend that stayed at the current
	// cycle would let a permanent corruption fault loop without ever advancing
	// simulated time, starving the watchdog's (future-scheduled) check.
	r.eng.After(1, func() { r.send(m) })
}

// Full reports whether the buffered bytes exceed the watermark; the sender
// must stop admitting new traffic to this hop until acks drain it.
func (r *Retrans) Full() bool { return r.bytes > r.limit }

// Len returns the number of unacked messages.
func (r *Retrans) Len() int { return len(r.entries) }

// Bytes returns the buffered byte count.
func (r *Retrans) Bytes() uint64 { return r.bytes }

// Stats returns the accumulated retry counters.
func (r *Retrans) Stats() RetransStats { return r.st }

// TakeAll removes and returns every pending entry's message. Used when the
// peer endpoint dies and the messages need terminal resolution instead of
// retransmission.
func (r *Retrans) TakeAll() []*Message {
	ms := make([]*Message, 0, len(r.entries))
	for i := range r.entries {
		ms = append(ms, r.entries[i].m)
	}
	r.entries = r.entries[:0]
	r.bytes = 0
	return ms
}

// Drop removes the entry for seq without acking (terminal resolution by the
// owner, e.g. the receiver died). Reports whether an entry was removed.
func (r *Retrans) Drop(seq uint32) bool {
	for i := range r.entries {
		if r.entries[i].m.Seq == seq {
			r.bytes -= r.entries[i].m.Size()
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			return true
		}
	}
	return false
}

// arm schedules the timeout sweep if entries are pending and no sweep is
// scheduled. The sweep reschedules itself lazily: one outstanding timer per
// buffer, regardless of entry count.
func (r *Retrans) arm() {
	if r.armed || len(r.entries) == 0 {
		return
	}
	r.armed = true
	r.eng.At(r.nextDeadline(), r.sweep)
}

// nextDeadline returns the earliest entry deadline.
func (r *Retrans) nextDeadline() sim.Cycles {
	d := r.entries[0].deadline
	for i := 1; i < len(r.entries); i++ {
		if r.entries[i].deadline < d {
			d = r.entries[i].deadline
		}
	}
	return d
}

// sweep resends every entry whose deadline has passed, then re-arms.
func (r *Retrans) sweep() {
	r.armed = false
	now := r.eng.Now()
	for i := range r.entries {
		if r.entries[i].deadline <= now {
			r.resend(i)
		}
	}
	r.arm()
}

// Dedup is a receiver-side duplicate filter for one hop direction. Sequence
// numbers at or below the floor, or present in the seen set, are duplicates.
// Accepting seq == floor+1 advances the floor and compacts the set, so for
// in-order delivery the filter is O(1) space.
//ndplint:domain(perowner)
type Dedup struct {
	floor uint32
	seen  map[uint32]struct{}
	dups  uint64
}

// Accept reports whether seq is new, recording it. Duplicate sequence
// numbers return false and bump the Dups counter.
func (d *Dedup) Accept(seq uint32) bool {
	if seq <= d.floor {
		d.dups++
		return false
	}
	if _, ok := d.seen[seq]; ok {
		d.dups++
		return false
	}
	if seq == d.floor+1 {
		d.floor = seq
		// Compact: pull consecutive successors out of the set.
		for {
			if _, ok := d.seen[d.floor+1]; !ok {
				break
			}
			delete(d.seen, d.floor+1)
			d.floor++
		}
		return true
	}
	if d.seen == nil {
		d.seen = make(map[uint32]struct{})
	}
	d.seen[seq] = struct{}{}
	return true
}

// Mark records seq as already handled without counting a duplicate — used
// when the runtime resolves a message out of band (dead-unit recovery) and
// any copy still in flight must be silently discarded.
func (d *Dedup) Mark(seq uint32) {
	if seq <= d.floor {
		return
	}
	if d.seen == nil {
		d.seen = make(map[uint32]struct{})
	}
	if _, ok := d.seen[seq]; ok {
		return
	}
	d.seen[seq] = struct{}{}
	if seq == d.floor+1 {
		d.floor = seq
		delete(d.seen, seq)
		for {
			if _, ok := d.seen[d.floor+1]; !ok {
				break
			}
			delete(d.seen, d.floor+1)
			d.floor++
		}
	}
}

// Dups returns the number of duplicates filtered.
func (d *Dedup) Dups() uint64 { return d.dups }
