// Package msg defines the NDPBridge message formats of Figure 5 — task,
// data, and state messages — together with their wire encoding and the
// sub-message splitting used when a payload exceeds the 64-byte maximum
// message size.
package msg

import (
	"fmt"

	"ndpbridge/internal/task"
)

// Type distinguishes the three message kinds.
type Type uint8

const (
	// TypeTask transfers one task to another NDP unit.
	TypeTask Type = iota + 1
	// TypeData transfers a chunk of data for load balancing (data-first
	// scheduling).
	TypeData
	// TypeState carries a child's state information to its parent bridge
	// in response to STATE-GATHER.
	TypeState
)

func (t Type) String() string {
	switch t {
	case TypeTask:
		return "task"
	case TypeData:
		return "data"
	case TypeState:
		return "state"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// MaxSize is the maximum size of one message on the wire (Section V-B).
const MaxSize = 64

// HeaderSize is the fixed per-message header: type (1), index (1), total (1),
// pad (1), src (4), dst (4).
const HeaderSize = 12

// DataHeaderSize extends the header for data messages with the block address
// (8) and the chunk length (4).
const DataHeaderSize = HeaderSize + 12

// MaxDataPayload is the data payload carried by one data sub-message.
const MaxDataPayload = MaxSize - DataHeaderSize

// SchedOut describes one data block a giver has selected to lend out,
// appended to state messages during a load-balancing round (Section V-B).
//ndplint:domain(xfer)
type SchedOut struct {
	BlockAddr uint64
	Workload  uint64
}

// State is the payload of a state message: the occupancy and progress
// counters used by dynamic triggering (Section V-C) and load balancing
// (Section VI).
//ndplint:domain(xfer)
type State struct {
	LMailbox  uint64 // bytes waiting in the child's mailbox
	WQueue    uint64 // summed workload estimate of the task queue
	WFinished uint64 // cumulative finished workload
	SchedList []SchedOut
}

// Message is one NDPBridge message. Src and Dst are NDP unit IDs; for
// messages between bridges they are the IDs of the border units are not
// meaningful and only routing metadata matter, so bridges re-route on the
// task/data address fields.
//ndplint:domain(xfer)
type Message struct {
	Type Type
	Src  int
	Dst  int

	// Index/Total sequence sub-messages of one logical transfer.
	Index uint8
	Total uint8

	// Sched marks a scheduled-out message whose destination will be
	// assigned by the bridge (load-balancing step 4, Section VI-A). Dst
	// is -1 until assignment.
	Sched bool
	// Round identifies the load-balancing round (SCHEDULE command) that
	// produced a scheduled-out message, so bridges match it to the right
	// receiver set even when the giver serves several rounds back to
	// back. Level-1 rounds are even, level-2 rounds odd. Simulator
	// routing metadata; in hardware this rides in the reserved command
	// encoding.
	Round uint32
	// Escalate marks a task message chasing a block that left its home
	// rank: the level-1 bridge must forward it to the level-2 bridge,
	// whose dataBorrowed table knows the receiver (Section VI-B).
	Escalate bool

	// StagedAt is the cycle the message entered the sender's staging
	// buffer, stamped by the unit controller. Simulator measurement
	// metadata (it feeds the send→deliver latency histograms); not part
	// of the wire format.
	StagedAt uint64

	// Flow/Span/HopAt carry causal-trace identity while flow tracing is on:
	// the flow the message belongs to, the 1-based trace-span ID of the hop
	// that produced it (its causal parent), and the cycle its current hop
	// began (zero until the first hop completes — see HopStart). Simulator
	// measurement metadata like StagedAt — never part of the wire format,
	// the checksum, or snapshots; all-zero when tracing is off.
	Flow  uint64
	Span  uint32
	HopAt uint64

	// Seq and Sum are link-layer retry metadata, live only while the
	// message traverses one bridge hop under the fault-injection retry
	// protocol. The sender stamps a per-hop sequence number and a
	// checksum over the logical fields; the receiver verifies, acks, and
	// clears both before processing so the next hop starts fresh. Zero
	// Seq means "not in flight on a retried hop". In hardware these would
	// ride in the reserved bytes of the 64-byte format.
	Seq uint32
	Sum uint32

	// Task is set for TypeTask.
	Task task.Task

	// BlockAddr/ChunkLen are set for TypeData: the original (home)
	// address of the block and how many payload bytes this sub-message
	// carries.
	BlockAddr uint64
	ChunkLen  uint32

	// State is set for TypeState.
	State *State

	// Pool bookkeeping (see pool.go): the slot index and generation of a
	// pooled message, whether it is pool-owned at all, and whether it is
	// currently on the free list. Simulator memory-management metadata —
	// never part of the wire format, the checksum, or snapshots.
	pidx   uint32
	pgen   uint32
	pooled bool
	freed  bool
}

// Size returns the message's on-wire size in bytes, capped at MaxSize.
func (m *Message) Size() uint64 {
	switch m.Type {
	case TypeTask:
		// Header + func (2) + ts (4) + addr (8) + workload (4) +
		// nargs (1) + args.
		s := uint64(HeaderSize + 2 + 4 + 8 + 4 + 1 + 8*int(m.Task.NArgs))
		if s > MaxSize {
			s = MaxSize
		}
		return s
	case TypeData:
		return uint64(DataHeaderSize) + uint64(m.ChunkLen)
	case TypeState:
		// Header + three counters; the scheduling list rides in
		// follow-up sub-messages, accounted by SizeWithSchedList.
		return HeaderSize + 24
	}
	return HeaderSize
}

// HopStart returns the cycle the message's current hop began: HopAt once a
// hop span has been recorded, else the staging cycle. Keeping the first-hop
// stamp implicit (rather than storing HopAt at emit time) keeps the hot
// staging path free of trace code.
func (m *Message) HopStart() uint64 {
	if m.HopAt == 0 {
		return m.StagedAt
	}
	return m.HopAt
}

// RouteAddr returns the address the bridges route on: the data element
// address for task messages and the block address for data messages. State
// messages are not routed by address.
func (m *Message) RouteAddr() (uint64, bool) {
	switch m.Type {
	case TypeTask:
		return m.Task.Addr, true
	case TypeData:
		return m.BlockAddr, true
	}
	return 0, false
}

// NewTask builds a task message.
func NewTask(src, dst int, t task.Task) *Message {
	return &Message{Type: TypeTask, Src: src, Dst: dst, Task: t}
}

// NewState builds a state message.
func NewState(src, dst int, s State) *Message {
	return &Message{Type: TypeState, Src: src, Dst: dst, State: &s}
}

// SplitData splits a data block of length n at home address blockAddr into
// the minimal sequence of data sub-messages, each carrying at most
// MaxDataPayload bytes (Section V-B: "If a message is too large, we divide it
// into multiple small sub-messages. The index field indicates such a
// sequence.").
func SplitData(src, dst int, blockAddr uint64, n uint32) []*Message {
	if n == 0 {
		return nil
	}
	total := int((n + MaxDataPayload - 1) / MaxDataPayload)
	if total > 255 {
		panic(fmt.Sprintf("msg: data block of %d bytes needs %d sub-messages (max 255)", n, total))
	}
	out := make([]*Message, 0, total)
	remaining := n
	for i := 0; i < total; i++ {
		chunk := uint32(MaxDataPayload)
		if remaining < chunk {
			chunk = remaining
		}
		out = append(out, &Message{
			Type: TypeData, Src: src, Dst: dst,
			Index: uint8(i), Total: uint8(total),
			BlockAddr: blockAddr, ChunkLen: chunk,
		})
		remaining -= chunk
	}
	return out
}

// TotalSize sums the wire sizes of a message slice.
func TotalSize(ms []*Message) uint64 {
	var s uint64
	for _, m := range ms {
		s += m.Size()
	}
	return s
}

// StateSize returns the wire size of a state message including its appended
// scheduling list (each entry: addr 8 + workload 8).
func StateSize(s *State) uint64 {
	base := uint64(HeaderSize + 24)
	return base + uint64(len(s.SchedList))*16
}

// Checksum computes an FNV-1a hash over the message's logical fields — the
// ones a corrupted transfer could damage. Seq participates so a duplicate
// with a reused sequence number but different content is caught; Sum,
// StagedAt, and pointer identity do not.
func Checksum(m *Message) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= uint32(v & 0xff)
			h *= prime32
			v >>= 8
		}
	}
	mix(uint64(m.Type))
	mix(uint64(uint32(m.Src)))
	mix(uint64(uint32(m.Dst)))
	mix(uint64(m.Index)<<8 | uint64(m.Total))
	var flags uint64
	if m.Sched {
		flags |= 1
	}
	if m.Escalate {
		flags |= 2
	}
	mix(flags)
	mix(uint64(m.Round))
	mix(uint64(m.Seq))
	switch m.Type {
	case TypeTask:
		mix(uint64(m.Task.Func))
		mix(uint64(m.Task.TS))
		mix(m.Task.Addr)
		mix(uint64(m.Task.Workload))
		mix(m.Task.ID)
		for i := 0; i < int(m.Task.NArgs); i++ {
			mix(m.Task.Args[i])
		}
	case TypeData:
		mix(m.BlockAddr)
		mix(uint64(m.ChunkLen))
	case TypeState:
		if m.State != nil {
			mix(m.State.LMailbox)
			mix(m.State.WQueue)
			mix(m.State.WFinished)
			for _, so := range m.State.SchedList {
				mix(so.BlockAddr)
				mix(so.Workload)
			}
		}
	}
	return h
}

// Verify reports whether the stored checksum matches the payload.
func (m *Message) Verify() bool { return m.Sum == Checksum(m) }

// Clone returns an independent shallow copy for retransmission. The State
// payload pointer is shared: retry-layer receivers either accept exactly one
// copy (dedup) or discard, and accepted state messages are consumed
// read-only, so aliasing is safe. The copy does not inherit the original's
// pool identity — it is a plain allocation the pool will never recycle.
func (m *Message) Clone() *Message {
	c := *m
	c.pidx, c.pgen, c.pooled, c.freed = 0, 0, false, false
	return &c
}

// Corrupt models an in-flight bit error by flipping the stored checksum, so
// the receiver's Verify fails deterministically.
func (m *Message) Corrupt() { m.Sum = ^m.Sum }
