package msg

import (
	"testing"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/sim"
)

// Watermark edge cases and checkpoint-restore behavior of the retransmit
// buffer. The watermark is a strict threshold: Full() reports bytes > limit,
// so a buffer filled to exactly the watermark still admits traffic — these
// tests pin that boundary down.

func stateMsg(seq uint32) *Message {
	// TypeState with nil payload has a fixed, known wire size.
	return &Message{Type: TypeState, Src: 0, Dst: 1, Seq: seq, State: &State{}}
}

func TestRetransExactWatermarkFill(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRetrans(eng, 10, 80, 0, func(*Message) {})
	m := stateMsg(1)
	sz := m.Size()

	// Fill to exactly one message's bytes with limit == sz: bytes == limit
	// is NOT full (strictly-greater threshold).
	r2 := NewRetrans(eng, 10, 80, sz, func(*Message) {})
	r2.Track(m)
	if r2.Bytes() != sz {
		t.Fatalf("bytes = %d, want %d", r2.Bytes(), sz)
	}
	if r2.Full() {
		t.Error("buffer filled to exactly the watermark reported Full")
	}
	// One byte over: full.
	r2.Track(stateMsg(2))
	if !r2.Full() {
		t.Error("buffer past the watermark did not report Full")
	}
	// Ack back down to the watermark: not full again.
	r2.Ack(2)
	if r2.Full() {
		t.Error("buffer drained back to the watermark still reports Full")
	}

	// Zero-limit buffer: any tracked message makes it full.
	r.Track(stateMsg(3))
	if !r.Full() {
		t.Error("zero-watermark buffer with one entry did not report Full")
	}
}

func TestRetransBackoffCapSaturation(t *testing.T) {
	const rto0, cap0 = 4, 32
	eng := sim.NewEngine()
	var sent []sim.Cycles
	r := NewRetrans(eng, rto0, cap0, 1<<20, func(*Message) { sent = append(sent, eng.Now()) })
	r.Track(stateMsg(1))

	// Never acked: timeouts double 4→8→16→32 and then saturate at the cap.
	// Run long enough for several capped resends.
	eng.RunUntil(400)
	if len(sent) < 6 {
		t.Fatalf("only %d retransmissions in 400 cycles", len(sent))
	}
	var gaps []sim.Cycles
	for i := 1; i < len(sent); i++ {
		gaps = append(gaps, sent[i]-sent[i-1])
	}
	// After enough doublings every gap must equal the cap exactly — the
	// backoff must stop growing (saturation) and never exceed the cap.
	for i, g := range gaps {
		if g > cap0+1 { // +1 for the engine-deferred send cycle
			t.Errorf("gap %d = %d exceeds backoff cap %d", i, g, cap0)
		}
	}
	last := gaps[len(gaps)-1]
	prev := gaps[len(gaps)-2]
	if last != prev {
		t.Errorf("backoff still changing at saturation: %v", gaps)
	}
	if r.Stats().Retries != uint64(len(sent)) {
		t.Errorf("retries stat %d, want %d", r.Stats().Retries, len(sent))
	}
}

func TestRetransRetransmitAfterRestore(t *testing.T) {
	// A retransmit buffer snapshotted with pending entries must, after
	// restore into a fresh engine, still time out and resend them.
	eng1 := sim.NewEngine()
	r1 := NewRetrans(eng1, 10, 80, 1<<20, func(*Message) {})
	r1.Track(stateMsg(7))
	r1.Track(stateMsg(8))
	r1.Ack(7)

	var e checkpoint.Enc
	r1.SnapshotTo(&e)

	eng2 := sim.NewEngine()
	var resent []uint32
	r2 := NewRetrans(eng2, 10, 80, 1<<20, func(m *Message) { resent = append(resent, m.Seq) })
	if err := r2.RestoreFrom(checkpoint.NewDec(e.Data())); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 1 || r2.Bytes() != r1.Bytes() {
		t.Fatalf("restored len=%d bytes=%d, want 1, %d", r2.Len(), r2.Bytes(), r1.Bytes())
	}
	st := r2.Stats()
	if st.Tracked != 2 || st.Acked != 1 {
		t.Errorf("restored stats %+v", st)
	}

	// The restored deadline (absolute cycle 10) fires in the new engine.
	eng2.RunUntil(50)
	if len(resent) == 0 {
		t.Fatal("no retransmission after restore")
	}
	if resent[0] != 8 {
		t.Errorf("resent seq %d, want 8", resent[0])
	}
	// The acked message must never come back.
	for _, s := range resent {
		if s == 7 {
			t.Error("acked message retransmitted after restore")
		}
	}

	// Late ack drains the restored entry and stops the resend stream.
	r2.Ack(8)
	n := len(resent)
	eng2.RunUntil(1000)
	if len(resent) != n {
		t.Errorf("retransmissions continued after ack: %d → %d", n, len(resent))
	}
}
