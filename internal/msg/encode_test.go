package msg

import (
	"reflect"
	"testing"
	"testing/quick"

	"ndpbridge/internal/task"
)

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	buf := Encode(nil, m)
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("Decode consumed %d of %d", n, len(buf))
	}
	return got
}

func TestEncodeDecodeTask(t *testing.T) {
	m := NewTask(17, 399, task.New(5, 9, 0xdeadbeef, 77, 11, 22))
	got := roundTrip(t, m)
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\n  in  %+v\n  out %+v", m, got)
	}
}

func TestEncodeDecodeData(t *testing.T) {
	for _, m := range SplitData(2, 3, 0xc0ffee00, 300) {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("round trip mismatch: %+v vs %+v", m, got)
		}
	}
}

func TestEncodeDecodeState(t *testing.T) {
	m := NewState(4, 5, State{
		LMailbox: 1024, WQueue: 555, WFinished: 1 << 40,
		SchedList: []SchedOut{{BlockAddr: 0x100, Workload: 9}, {BlockAddr: 0x200, Workload: 11}},
	})
	got := roundTrip(t, m)
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\n  in  %+v\n  out %+v", m, got)
	}
}

func TestEncodeDecodeStateEmpty(t *testing.T) {
	m := NewState(0, 1, State{})
	got := roundTrip(t, m)
	if got.State == nil || got.State.LMailbox != 0 || len(got.State.SchedList) != 0 {
		t.Errorf("empty state mismatch: %+v", got.State)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	m := NewTask(1, 2, task.New(0, 0, 1, 1, 42))
	buf := Encode(nil, m)
	for i := 0; i < len(buf); i++ {
		if _, _, err := Decode(buf[:i]); err == nil {
			t.Fatalf("Decode of %d-byte prefix should fail", i)
		}
	}
}

func TestDecodeUnknownType(t *testing.T) {
	buf := make([]byte, HeaderSize)
	buf[0] = 99
	if _, _, err := Decode(buf); err == nil {
		t.Error("unknown type should fail")
	}
}

func TestDecodeStream(t *testing.T) {
	// Multiple messages back-to-back decode in sequence.
	var buf []byte
	msgs := []*Message{
		NewTask(0, 1, task.New(1, 0, 0x10, 5)),
		NewState(1, 0, State{WQueue: 3}),
	}
	msgs = append(msgs, SplitData(2, 3, 0x2000, 100)...)
	for _, m := range msgs {
		buf = Encode(buf, m)
	}
	for i, want := range msgs {
		m, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(m, want) {
			t.Fatalf("message %d mismatch", i)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Errorf("%d trailing bytes", len(buf))
	}
}

// Property: any well-formed task message round-trips exactly and its encoded
// length equals Size() for task messages.
func TestEncodeTaskProperty(t *testing.T) {
	f := func(fn uint16, ts uint32, addr uint64, wl uint32, nArgsRaw uint8, a0, a1, a2 uint64) bool {
		nArgs := int(nArgsRaw) % (task.MaxArgs + 1)
		args := []uint64{a0, a1, a2}[:nArgs]
		m := NewTask(7, 8, task.New(task.FuncID(fn), ts, addr, wl, args...))
		buf := Encode(nil, m)
		if uint64(len(buf)) != m.Size() {
			return false
		}
		got, n, err := Decode(buf)
		return err == nil && n == len(buf) && reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
