package msg

import (
	"sort"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
)

// This file is the message layer's serialization boundary. Unlike the wire
// codec (encode.go), which models the hardware's 64-byte format, the
// snapshot codec is full fidelity: it captures every field of a Message —
// including simulator-side metadata like StagedAt, Round, and the retry
// Seq/Sum — so checkpoints and the state-digest audit see exactly the state
// the simulator holds. The retry structures (Retrans, Dedup) serialize here
// too; their map/set members are emitted in sorted order so the byte stream
// is deterministic.

// EncodeSnapshot appends m's complete state to e.
func EncodeSnapshot(e *checkpoint.Enc, m *Message) {
	e.U8(uint8(m.Type))
	e.I64(int64(m.Src))
	e.I64(int64(m.Dst))
	e.U8(m.Index)
	e.U8(m.Total)
	e.Bool(m.Sched)
	e.U32(m.Round)
	e.Bool(m.Escalate)
	e.U64(m.StagedAt)
	e.U32(m.Seq)
	e.U32(m.Sum)
	task.EncodeTask(e, m.Task)
	e.U64(m.BlockAddr)
	e.U32(m.ChunkLen)
	e.Bool(m.State != nil)
	if m.State != nil {
		e.U64(m.State.LMailbox)
		e.U64(m.State.WQueue)
		e.U64(m.State.WFinished)
		e.U32(uint32(len(m.State.SchedList)))
		for _, so := range m.State.SchedList {
			e.U64(so.BlockAddr)
			e.U64(so.Workload)
		}
	}
}

// DecodeSnapshot reads one message from d. On decode error it returns a
// partially filled message; the caller checks d.Err().
func DecodeSnapshot(d *checkpoint.Dec) *Message {
	m := &Message{}
	m.Type = Type(d.U8())
	m.Src = int(d.I64())
	m.Dst = int(d.I64())
	m.Index = d.U8()
	m.Total = d.U8()
	m.Sched = d.Bool()
	m.Round = d.U32()
	m.Escalate = d.Bool()
	m.StagedAt = d.U64()
	m.Seq = d.U32()
	m.Sum = d.U32()
	m.Task = task.DecodeTask(d)
	m.BlockAddr = d.U64()
	m.ChunkLen = d.U32()
	if d.Bool() {
		st := &State{
			LMailbox:  d.U64(),
			WQueue:    d.U64(),
			WFinished: d.U64(),
		}
		n := d.U32()
		for i := uint32(0); i < n && d.Err() == nil; i++ {
			st.SchedList = append(st.SchedList, SchedOut{BlockAddr: d.U64(), Workload: d.U64()})
		}
		m.State = st
	}
	return m
}

// SnapshotTo encodes the retransmit buffer: every pending entry (message,
// absolute deadline, current backoff), the watermark accounting, and the
// stats. The armed flag is not encoded — RestoreFrom re-arms the sweep
// against the restored deadlines.
func (r *Retrans) SnapshotTo(e *checkpoint.Enc) {
	e.U32(uint32(len(r.entries)))
	for i := range r.entries {
		EncodeSnapshot(e, r.entries[i].m)
		e.U64(r.entries[i].deadline)
		e.U64(r.entries[i].rto)
	}
	e.U64(r.bytes)
	e.U64(r.st.Tracked)
	e.U64(r.st.Acked)
	e.U64(r.st.Nacked)
	e.U64(r.st.Retries)
	// Jitter stream position. A xorshift64* state is never zero, so zero
	// doubles as the "jitter disabled" marker.
	if r.jrng != nil {
		e.U64(r.jrng.State())
	} else {
		e.U64(0)
	}
}

// RestoreFrom rebuilds the buffer from a SnapshotTo stream, replacing the
// current entries, and re-arms the timeout sweep if entries are pending.
// Deadlines are absolute cycles, so the engine must be at or before the
// snapshot's clock.
func (r *Retrans) RestoreFrom(d *checkpoint.Dec) error {
	n := d.U32()
	r.entries = r.entries[:0]
	for i := uint32(0); i < n; i++ {
		m := DecodeSnapshot(d)
		deadline := sim.Cycles(d.U64())
		rto := sim.Cycles(d.U64())
		if d.Err() != nil {
			return d.Err()
		}
		r.entries = append(r.entries, rentry{m: m, deadline: deadline, rto: rto})
	}
	r.bytes = d.U64()
	r.st.Tracked = d.U64()
	r.st.Acked = d.U64()
	r.st.Nacked = d.U64()
	r.st.Retries = d.U64()
	if js := d.U64(); js != 0 {
		if r.jrng == nil {
			r.jrng = sim.NewRNG(js)
		}
		r.jrng.SetState(js)
	} else {
		r.jrng = nil
	}
	if err := d.Err(); err != nil {
		return err
	}
	r.armed = false
	r.arm()
	return nil
}

// SnapshotTo encodes the duplicate filter: floor, the out-of-order seen set
// in ascending order, and the duplicate count.
func (f *Dedup) SnapshotTo(e *checkpoint.Enc) {
	e.U32(f.floor)
	seqs := make([]uint32, 0, len(f.seen))
	for s := range f.seen {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	e.U32(uint32(len(seqs)))
	for _, s := range seqs {
		e.U32(s)
	}
	e.U64(f.dups)
}

// RestoreFrom rebuilds the filter from a SnapshotTo stream.
func (f *Dedup) RestoreFrom(d *checkpoint.Dec) error {
	f.floor = d.U32()
	n := d.U32()
	f.seen = nil
	if n > 0 {
		f.seen = make(map[uint32]struct{}, n)
		for i := uint32(0); i < n; i++ {
			f.seen[d.U32()] = struct{}{}
		}
	}
	f.dups = d.U64()
	return d.Err()
}

// Floor returns the highest in-order sequence number accepted, for the
// auditor's monotonicity check.
func (f *Dedup) Floor() uint32 { return f.floor }
