package msg

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ndpbridge/internal/task"
)

// The wire encoding is little-endian. Layout (Figure 5):
//
//	common header: type(1) index(1) total(1) pad(1) src(4) dst(4)
//	task:  func(2) ts(4) addr(8) workload(4) nargs(1) args(8×nargs)
//	data:  blockAddr(8) chunkLen(4)            — payload bytes follow
//	state: lMailbox(8) wQueue(8) wFinished(8) nSched(2) sched(16×n)
//
// Encoding exists so the formats are concrete and testable; the simulator's
// fast path passes Message values and only charges Size() bytes on links.

var errShort = errors.New("msg: buffer too short")

// Encode appends m's wire form to buf and returns the result. Data payload
// bytes are zero-filled: the simulator does not move real data contents.
func Encode(buf []byte, m *Message) []byte {
	var hdr [HeaderSize]byte
	hdr[0] = byte(m.Type)
	hdr[1] = m.Index
	hdr[2] = m.Total
	var flags byte
	if m.Sched {
		flags |= 1
	}
	if m.Escalate {
		flags |= 2
	}
	hdr[3] = flags
	binary.LittleEndian.PutUint32(hdr[4:], uint32(int32(m.Src)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(int32(m.Dst)))
	buf = append(buf, hdr[:]...)

	switch m.Type {
	case TypeTask:
		var b [19]byte
		binary.LittleEndian.PutUint16(b[0:], uint16(m.Task.Func))
		binary.LittleEndian.PutUint32(b[2:], m.Task.TS)
		binary.LittleEndian.PutUint64(b[6:], m.Task.Addr)
		binary.LittleEndian.PutUint32(b[14:], m.Task.Workload)
		b[18] = m.Task.NArgs
		buf = append(buf, b[:]...)
		for i := 0; i < int(m.Task.NArgs); i++ {
			buf = binary.LittleEndian.AppendUint64(buf, m.Task.Args[i])
		}
	case TypeData:
		buf = binary.LittleEndian.AppendUint64(buf, m.BlockAddr)
		buf = binary.LittleEndian.AppendUint32(buf, m.ChunkLen)
		buf = append(buf, make([]byte, m.ChunkLen)...)
	case TypeState:
		s := m.State
		if s == nil {
			s = &State{}
		}
		buf = binary.LittleEndian.AppendUint64(buf, s.LMailbox)
		buf = binary.LittleEndian.AppendUint64(buf, s.WQueue)
		buf = binary.LittleEndian.AppendUint64(buf, s.WFinished)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.SchedList)))
		for _, so := range s.SchedList {
			buf = binary.LittleEndian.AppendUint64(buf, so.BlockAddr)
			buf = binary.LittleEndian.AppendUint64(buf, so.Workload)
		}
	default:
		panic(fmt.Sprintf("msg: encode of unknown type %d", m.Type))
	}
	return buf
}

// Decode parses one message from buf and returns it with the number of bytes
// consumed.
func Decode(buf []byte) (*Message, int, error) {
	if len(buf) < HeaderSize {
		return nil, 0, errShort
	}
	m := &Message{
		Type:     Type(buf[0]),
		Index:    buf[1],
		Total:    buf[2],
		Sched:    buf[3]&1 != 0,
		Escalate: buf[3]&2 != 0,
		Src:      int(int32(binary.LittleEndian.Uint32(buf[4:]))),
		Dst:      int(int32(binary.LittleEndian.Uint32(buf[8:]))),
	}
	p := HeaderSize
	switch m.Type {
	case TypeTask:
		if len(buf) < p+19 {
			return nil, 0, errShort
		}
		m.Task.Func = task.FuncID(binary.LittleEndian.Uint16(buf[p:]))
		m.Task.TS = binary.LittleEndian.Uint32(buf[p+2:])
		m.Task.Addr = binary.LittleEndian.Uint64(buf[p+6:])
		m.Task.Workload = binary.LittleEndian.Uint32(buf[p+14:])
		m.Task.NArgs = buf[p+18]
		p += 19
		if int(m.Task.NArgs) > len(m.Task.Args) {
			return nil, 0, fmt.Errorf("msg: task with %d args", m.Task.NArgs)
		}
		for i := 0; i < int(m.Task.NArgs); i++ {
			if len(buf) < p+8 {
				return nil, 0, errShort
			}
			m.Task.Args[i] = binary.LittleEndian.Uint64(buf[p:])
			p += 8
		}
	case TypeData:
		if len(buf) < p+12 {
			return nil, 0, errShort
		}
		m.BlockAddr = binary.LittleEndian.Uint64(buf[p:])
		m.ChunkLen = binary.LittleEndian.Uint32(buf[p+8:])
		p += 12
		if len(buf) < p+int(m.ChunkLen) {
			return nil, 0, errShort
		}
		p += int(m.ChunkLen)
	case TypeState:
		if len(buf) < p+26 {
			return nil, 0, errShort
		}
		s := &State{
			LMailbox:  binary.LittleEndian.Uint64(buf[p:]),
			WQueue:    binary.LittleEndian.Uint64(buf[p+8:]),
			WFinished: binary.LittleEndian.Uint64(buf[p+16:]),
		}
		n := int(binary.LittleEndian.Uint16(buf[p+24:]))
		p += 26
		for i := 0; i < n; i++ {
			if len(buf) < p+16 {
				return nil, 0, errShort
			}
			s.SchedList = append(s.SchedList, SchedOut{
				BlockAddr: binary.LittleEndian.Uint64(buf[p:]),
				Workload:  binary.LittleEndian.Uint64(buf[p+8:]),
			})
			p += 16
		}
		m.State = s
	default:
		return nil, 0, fmt.Errorf("msg: unknown type %d", buf[0])
	}
	return m, p, nil
}
