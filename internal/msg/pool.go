package msg

import "ndpbridge/internal/task"

// poolSlab is the number of Messages allocated per arena slab.
const poolSlab = 256

// Handle names one pooled Message at one point in its lifetime. A handle
// taken before the message is freed stops resolving afterwards: Put bumps
// the message's generation, so Live detects use-after-free instead of
// silently reading recycled storage.
//ndplint:domain(xfer)
type Handle struct {
	idx uint32
	gen uint32
}

// Pool is a free-list arena of Messages. Messages on the simulation hot path
// live one logical hop sequence — created at a sender, consumed terminally
// at receive time — so recycling them removes the dominant per-hop
// allocation. A Pool is owned by one System and is not safe for concurrent
// use (simulations are share-nothing).
//
// Fault-injection runs never free (retry layers hold message pointers in
// retransmit buffers past delivery); the pool then degrades to a plain
// arena, which is still cheaper than individual allocations.
//ndplint:domain(engine)
type Pool struct {
	slabs [][]Message
	free  []uint32
	live  int
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// grow adds one slab and pushes its slots on the free list.
func (p *Pool) grow() {
	base := uint32(len(p.slabs) * poolSlab)
	slab := make([]Message, poolSlab)
	p.slabs = append(p.slabs, slab)
	for i := poolSlab - 1; i >= 0; i-- {
		slab[i].pidx = base + uint32(i)
		slab[i].freed = true
		p.free = append(p.free, base+uint32(i))
	}
}

//ndplint:hotpath
func (p *Pool) at(idx uint32) *Message { return &p.slabs[idx/poolSlab][idx%poolSlab] }

// Get returns a zeroed Message owned by the pool. The message keeps its slot
// identity and current generation; everything else is cleared.
//
//ndplint:hotpath
//ndplint:seam shared message arena; PDES replaces it with per-shard pools (DESIGN 16)
func (p *Pool) Get() *Message {
	if len(p.free) == 0 {
		p.grow() //ndplint:alloc amortized slab growth, one make per poolSlab Gets
	}
	idx := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	m := p.at(idx)
	gen := m.pgen
	*m = Message{pidx: idx, pgen: gen, pooled: true}
	p.live++
	return m
}

// Put returns a pooled message to the free list and bumps its generation so
// outstanding Handles stop resolving. Messages not owned by this pool
// (plain allocations, Clones) are ignored; freeing twice panics — it is
// always a lifecycle bug.
//
//ndplint:hotpath
//ndplint:seam shared message arena; PDES replaces it with per-shard pools (DESIGN 16)
func (p *Pool) Put(m *Message) {
	if !m.pooled {
		return
	}
	if m.freed {
		panic("msg: double free of pooled message")
	}
	m.freed = true
	m.pgen++
	m.Task = task.Task{}
	m.State = nil
	p.free = append(p.free, m.pidx)
	p.live--
}

// Live reports whether h still names the allocation it was taken from: the
// slot exists, has not been freed, and has not been recycled into a newer
// generation.
func (p *Pool) Live(h Handle) bool {
	if int(h.idx) >= len(p.slabs)*poolSlab {
		return false
	}
	m := p.at(h.idx)
	return !m.freed && m.pgen == h.gen
}

// InUse returns the number of live (gotten, not yet put) messages.
func (p *Pool) InUse() int { return p.live }

// Handle returns a generation-checked handle for a pooled message. The
// second return is false for messages not owned by a pool.
func (m *Message) Handle() (Handle, bool) {
	if !m.pooled {
		return Handle{}, false
	}
	return Handle{idx: m.pidx, gen: m.pgen}, true
}

// NewTaskIn builds a task message from the pool.
//
//ndplint:hotpath
//ndplint:seam shared message arena; PDES replaces it with per-shard pools (DESIGN 16)
func (p *Pool) NewTaskIn(src, dst int, t task.Task) *Message {
	m := p.Get()
	m.Type = TypeTask
	m.Src = src
	m.Dst = dst
	m.Task = t
	// The hop-chain parent is the task's causal parent; the flow is stamped
	// by the caller when tracing is on (the pool has no recorder access).
	m.Span = t.Span
	return m
}

// SplitDataInto is SplitData backed by the pool, appending the sub-messages
// to buf (usually a reused scratch slice) instead of allocating a fresh
// slice and fresh Messages per call.
//
//ndplint:hotpath
//ndplint:seam shared message arena; PDES replaces it with per-shard pools (DESIGN 16)
func (p *Pool) SplitDataInto(buf []*Message, src, dst int, blockAddr uint64, n uint32) []*Message {
	if n == 0 {
		return buf
	}
	total := int((n + MaxDataPayload - 1) / MaxDataPayload)
	if total > 255 {
		panic("msg: data block too large for 255 sub-messages")
	}
	remaining := n
	for i := 0; i < total; i++ {
		chunk := uint32(MaxDataPayload)
		if remaining < chunk {
			chunk = remaining
		}
		m := p.Get()
		m.Type = TypeData
		m.Src = src
		m.Dst = dst
		m.Index = uint8(i)
		m.Total = uint8(total)
		m.BlockAddr = blockAddr
		m.ChunkLen = chunk
		buf = append(buf, m)
		remaining -= chunk
	}
	return buf
}
