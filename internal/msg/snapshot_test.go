package msg

import (
	"bytes"
	"testing"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/task"
)

func TestMessageSnapshotRoundTrip(t *testing.T) {
	msgs := []*Message{
		{
			Type: TypeTask, Src: 3, Dst: 9, Index: 1, Total: 2, Round: 4,
			StagedAt: 777, Seq: 12, Sum: 0xabcd,
			Task: task.Task{Func: 2, TS: 1, Addr: 0x4000, Workload: 300, NArgs: 1, Args: [task.MaxArgs]uint64{5}, SpawnedAt: 700, ID: 9},
		},
		{Type: TypeData, Src: 0, Dst: -1, Sched: true, Escalate: true, BlockAddr: 0x10000, ChunkLen: 52},
		{
			Type: TypeState, Src: 5, Dst: 6,
			State: &State{LMailbox: 64, WQueue: 1000, WFinished: 5000,
				SchedList: []SchedOut{{BlockAddr: 0x100, Workload: 10}, {BlockAddr: 0x200, Workload: 20}}},
		},
	}
	for i, in := range msgs {
		var e checkpoint.Enc
		EncodeSnapshot(&e, in)
		d := checkpoint.NewDec(e.Data())
		out := DecodeSnapshot(d)
		if d.Err() != nil {
			t.Fatalf("msg %d: %v", i, d.Err())
		}
		if out.Type != in.Type || out.Src != in.Src || out.Dst != in.Dst ||
			out.Index != in.Index || out.Total != in.Total || out.Sched != in.Sched ||
			out.Round != in.Round || out.Escalate != in.Escalate ||
			out.StagedAt != in.StagedAt || out.Seq != in.Seq || out.Sum != in.Sum ||
			out.Task != in.Task || out.BlockAddr != in.BlockAddr || out.ChunkLen != in.ChunkLen {
			t.Errorf("msg %d: scalar fields diverged:\n got %+v\nwant %+v", i, out, in)
		}
		if (out.State == nil) != (in.State == nil) {
			t.Fatalf("msg %d: state presence diverged", i)
		}
		if in.State != nil {
			if out.State.LMailbox != in.State.LMailbox || out.State.WQueue != in.State.WQueue ||
				out.State.WFinished != in.State.WFinished || len(out.State.SchedList) != len(in.State.SchedList) {
				t.Errorf("msg %d: state diverged: %+v vs %+v", i, out.State, in.State)
			}
			for j := range in.State.SchedList {
				if out.State.SchedList[j] != in.State.SchedList[j] {
					t.Errorf("msg %d: schedlist[%d] diverged", i, j)
				}
			}
		}
		// Full fidelity implies the logical checksum is preserved.
		if in.Seq != 0 && Checksum(out) != Checksum(in) {
			t.Errorf("msg %d: checksum diverged after round trip", i)
		}
	}
}

func TestDedupSnapshotRoundTrip(t *testing.T) {
	var f Dedup
	f.Accept(1)
	f.Accept(2)
	f.Accept(5) // out of order: lands in the seen set
	f.Accept(7)
	f.Accept(2) // duplicate

	var e checkpoint.Enc
	f.SnapshotTo(&e)
	var g Dedup
	if err := g.RestoreFrom(checkpoint.NewDec(e.Data())); err != nil {
		t.Fatal(err)
	}
	if g.Floor() != f.Floor() || g.Dups() != f.Dups() {
		t.Errorf("restored floor=%d dups=%d, want %d, %d", g.Floor(), g.Dups(), f.Floor(), f.Dups())
	}
	// Behavior equivalence: duplicates stay duplicates, gaps still fill.
	if g.Accept(5) || g.Accept(7) {
		t.Error("restored filter accepted messages the original had seen")
	}
	if !g.Accept(3) || !g.Accept(4) {
		t.Error("restored filter rejected fresh sequence numbers")
	}
	if g.Floor() != 5 {
		t.Errorf("floor after filling gap = %d, want 5", g.Floor())
	}

	// Determinism of the encoding (seen is a map).
	var a, b checkpoint.Enc
	f.SnapshotTo(&a)
	f.SnapshotTo(&b)
	if !bytes.Equal(a.Data(), b.Data()) {
		t.Fatal("dedup snapshot is not deterministic")
	}
}
