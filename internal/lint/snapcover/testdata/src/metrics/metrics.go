// Fixture for the snapcover analyzer's metrics-instrument exemption: the
// package is named "metrics", so instrument-typed fields of snapshotted
// structs are exempt without per-field suppressions.
package metrics

type Enc struct{ buf []byte }

func (e *Enc) U64(v uint64) { _ = v }

// Counter is an instrument type (named type in a "metrics" package).
type Counter struct{ v uint64 }

// Snapshotted encodes its state but not its instrument — no finding.
type Snapshotted struct {
	state uint64
	c     *Counter
}

func (s *Snapshotted) SnapshotTo(e *Enc) {
	e.U64(s.state)
}
