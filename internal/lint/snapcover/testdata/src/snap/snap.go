// Fixture for the snapcover analyzer.
package snap

// Enc is a stand-in for the checkpoint encoder.
type Enc struct{ buf []byte }

func (e *Enc) U64(v uint64) { _ = v }

// Counter: every field encoded — clean.
type Counter struct {
	hits   uint64
	misses uint64
}

func (c *Counter) SnapshotTo(e *Enc) {
	e.U64(c.hits)
	e.U64(c.misses)
}

// Leaky: field b is silently skipped by the encoder.
type Leaky struct {
	a uint64
	b uint64 // want `field Leaky\.b is not referenced by \(Leaky\)\.SnapshotTo`
}

func (l *Leaky) SnapshotTo(e *Enc) {
	e.U64(l.a)
}

// Marked: the skipped field carries an audited suppression.
type Marked struct {
	data uint64
	cfg  uint64 //ndplint:nosnap rebuilt from config at construction
}

func (m *Marked) SnapshotTo(e *Enc) {
	e.U64(m.data)
}

// Nested: coverage through a package-local helper in the encoder's call
// graph.
type Nested struct {
	x uint64
	y uint64
}

func (n *Nested) SnapshotTo(e *Enc) {
	e.U64(n.x)
	n.rest(e)
}

func (n *Nested) rest(e *Enc) {
	e.U64(n.y)
}

// Plain has no encoder: nothing is required of it.
type Plain struct {
	anything uint64
}
