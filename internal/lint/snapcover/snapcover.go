// Package snapcover implements the ndplint analyzer that makes snapshot
// schema drift a lint failure instead of a corrupt resume.
//
// For every struct type that has a SnapshotTo (or snapshotTo) encoder
// method, the analyzer verifies that every field of the struct is referenced
// somewhere in the encoder's same-package call graph (the encoder itself
// plus any package-local helpers it calls, e.g. (*Unit).snapshotSlots).
//
// No RestoreFrom counterpart is required: resume in this simulator is
// replay-with-verification (see internal/core/checkpoint.go), so most
// components are encode-only — their SnapshotTo feeds the state digest that
// replay is verified against, and is never decoded. Field coverage is what
// keeps that digest honest: a field the encoder skips is state the digest
// cannot see drifting.
//
// Fields of metrics instrument types (any named type from a package called
// "metrics") are exempt: instruments are registry-owned observability,
// excluded from snapshots and digests by design. Any other field that is
// deliberately not part of the snapshot — structural configuration rebuilt
// from the config at construction time — must carry an explicit
// `//ndplint:nosnap <justification>` on its declaration. Adding a new
// mutable field to a snapshotted struct therefore fails the build until the
// author either encodes it or documents why the resume path can reconstruct
// it.
package snapcover

import (
	"go/ast"
	"go/types"
	"strings"

	"ndpbridge/internal/lint/analysis"
	"ndpbridge/internal/lint/directive"
)

// Analyzer is the snapshot-coverage check.
var Analyzer = &analysis.Analyzer{
	Name:    "snapcover",
	Doc:     "every field of a snapshotted struct must be encoded by SnapshotTo or marked //ndplint:nosnap",
	Version: 1,
	Run:     run,
}

func isSnapshotName(s string) bool { return strings.EqualFold(s, "snapshotto") }

func run(pass *analysis.Pass) error {
	dirs := directive.Parse(pass.Fset, pass.Files)

	// Index every package-level function/method declaration by its object,
	// so the encoder's package-local call graph can be walked.
	decls := map[*types.Func]*ast.FuncDecl{}
	// Encoder methods per receiver base type.
	encoders := map[*types.Named]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			decls[obj] = fd
			if fd.Recv == nil {
				continue
			}
			named := receiverNamed(obj)
			if named == nil {
				continue
			}
			if isSnapshotName(fd.Name.Name) {
				encoders[named] = fd
			}
		}
	}

	for named, enc := range encoders {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		covered := coveredFields(pass, enc, decls, named)
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if fld.Name() == "_" || covered[fld] || isMetricsInstrument(fld.Type()) {
				continue
			}
			if d := dirs.At(pass.Fset, fld.Pos(), "nosnap"); d != nil {
				continue
			}
			pass.Reportf(fld.Pos(), "field %s.%s is not referenced by (%s).%s: encode it or mark it //ndplint:nosnap <why>",
				named.Obj().Name(), fld.Name(), named.Obj().Name(), enc.Name.Name)
		}
	}
	return nil
}

// isMetricsInstrument reports whether t is (a pointer to) a named type from
// a package named "metrics". Instruments are registry-owned observability —
// by design excluded from snapshots and state digests (metrics can be off
// entirely) — so they are exempt without per-field suppressions.
func isMetricsInstrument(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "metrics"
}

// receiverNamed unwraps a method's receiver to its named base type.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// coveredFields walks the encoder's same-package call graph and returns the
// set of fields of `named` referenced anywhere in it (including accesses
// promoted through embedded fields, which count for the embedding field).
func coveredFields(pass *analysis.Pass, enc *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl, named *types.Named) map[*types.Var]bool {
	covered := map[*types.Var]bool{}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return covered
	}

	seen := map[*ast.FuncDecl]bool{}
	work := []*ast.FuncDecl{enc}
	for len(work) > 0 {
		fd := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[fd] || fd.Body == nil {
			continue
		}
		seen[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel := pass.TypesInfo.Selections[n]
				if sel == nil || sel.Kind() != types.FieldVal {
					return true
				}
				recv := sel.Recv()
				if p, ok := recv.(*types.Pointer); ok {
					recv = p.Elem()
				}
				if rn, ok := recv.(*types.Named); ok && rn.Obj() == named.Obj() {
					if idx := sel.Index(); len(idx) > 0 && idx[0] < st.NumFields() {
						covered[st.Field(idx[0])] = true
					}
				}
			case *ast.CallExpr:
				if callee := calleeFunc(pass, n); callee != nil {
					if next, ok := decls[callee]; ok {
						work = append(work, next)
					}
				}
			}
			return true
		})
	}
	return covered
}

// calleeFunc resolves a call to its package-level function or method object.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
