package snapcover_test

import (
	"testing"

	"ndpbridge/internal/lint/analysistest"
	"ndpbridge/internal/lint/snapcover"
)

func TestCoverage(t *testing.T) {
	analysistest.Run(t, "testdata/src/snap", snapcover.Analyzer)
}

func TestMetricsInstrumentExemption(t *testing.T) {
	analysistest.Run(t, "testdata/src/metrics", snapcover.Analyzer)
}
