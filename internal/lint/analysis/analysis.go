// Package analysis is a dependency-free miniature of
// golang.org/x/tools/go/analysis, carrying exactly the surface ndplint's
// analyzers need: a named Analyzer with a Run function, a Pass giving it one
// type-checked package, and position-carrying Diagnostics.
//
// The repo builds hermetically (no module downloads in CI or air-gapped
// checkouts), so the real x/tools framework is deliberately not a
// dependency. The API mirrors it closely enough that migrating an analyzer
// to the upstream framework is a mechanical change of import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and caching keys. By
	// convention it is a short lowercase word ("determinism").
	Name string

	// Doc is the help text: first line is a one-sentence summary.
	Doc string

	// Version participates in the fact-cache key: bump it when the
	// analyzer's behavior changes so stale cached findings are discarded.
	Version int

	// Run applies the analyzer to one package, reporting findings through
	// pass.Report. The error return is for operational failures (a broken
	// invariant in the analyzer itself), not for findings.
	Run func(pass *Pass) error
}

// Pass connects an Analyzer to the single package being analyzed.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver sets it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by ident, consulting Defs then Uses.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return p.TypesInfo.Uses[id]
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Unit is one type-checked package as seen by a whole-program analyzer: the
// same data a Pass carries, minus the per-package reporting wiring. Each Unit
// keeps its own FileSet (the loader type-checks packages independently), so
// positions must be resolved against the owning Unit.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// GlobalAnalyzer describes one whole-program static check: unlike an
// Analyzer, its Run sees every loaded package at once. Shardcheck's ownership
// analysis is global by nature — a domain declared in ndpunit must govern
// writes reaching it from core — so it cannot run package-at-a-time.
type GlobalAnalyzer struct {
	// Name identifies the analyzer in diagnostics and caching keys.
	Name string

	// Doc is the help text: first line is a one-sentence summary.
	Doc string

	// Version participates in the fact-cache key: bump it when the
	// analyzer's behavior changes so stale cached findings are discarded.
	Version int

	// Run applies the analyzer to the whole program, reporting findings
	// through pass.Report.
	Run func(pass *GlobalPass) error
}

// GlobalPass connects a GlobalAnalyzer to every package being analyzed.
type GlobalPass struct {
	Analyzer *GlobalAnalyzer
	Units    []*Unit

	// Report delivers one finding; d.Pos is resolved against u.Fset. The
	// driver sets it.
	Report func(u *Unit, d Diagnostic)
}

// Reportf reports a formatted diagnostic at pos within unit u.
func (p *GlobalPass) Reportf(u *Unit, pos token.Pos, format string, args ...any) {
	p.Report(u, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
