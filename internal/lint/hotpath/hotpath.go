// Package hotpath implements the ndplint analyzer that keeps tagged hot
// functions allocation-free at the source level.
//
// A function tagged `//ndplint:hotpath` (event dispatch, metrics
// Counter/Histogram operations, mailbox push/pop) must not contain
// constructs that allocate on every execution:
//
//   - function literals and method values (closure allocation);
//   - heap-escaping composite literals (&T{...}), slice/map literals, and
//     make/new calls;
//   - append whose destination is not the slice being appended to (growth
//     of a fresh slice instead of amortized reuse of a retained one);
//   - implicit conversions of non-pointer-shaped concrete values to
//     interface types (boxing);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - goroutine spawns.
//
// Error/assertion paths are exempt: any `if` block that directly panics is
// considered cold and skipped, so `if bad { panic(fmt.Sprintf(...)) }`
// assertions keep their diagnostics without polluting the report. A finding
// that is accepted by design carries `//ndplint:alloc <justification>` on
// its line.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ndpbridge/internal/lint/analysis"
	"ndpbridge/internal/lint/directive"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &analysis.Analyzer{
	Name:    "hotpath",
	Doc:     "functions tagged //ndplint:hotpath must not allocate",
	Version: 1,
	Run:     run,
}

func run(pass *analysis.Pass) error {
	dirs := directive.Parse(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !tagged(dirs, pass, fd) {
				continue
			}
			c := &checker{pass: pass, dirs: dirs, results: fd.Type.Results}
			c.blessAppends(fd.Body)
			c.markCalleeSelectors(fd.Body)
			c.walk(fd.Body)
		}
	}
	return nil
}

// tagged reports whether fd carries a hotpath directive, either anywhere in
// its doc comment or on the line directly above the declaration.
func tagged(dirs *directive.Map, pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(c.Text, "//ndplint:hotpath") {
				return true
			}
		}
	}
	return dirs.At(pass.Fset, fd.Pos(), "hotpath") != nil
}

type checker struct {
	pass    *analysis.Pass
	dirs    *directive.Map
	results *ast.FieldList

	// blessed holds append calls of the reuse form `s = append(s, ...)`.
	blessed map[*ast.CallExpr]bool
	// calleePos holds selector expressions that are the Fun of a call, so
	// bare method values can be told apart from invocations.
	calleePos map[*ast.SelectorExpr]bool
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if d := c.dirs.At(c.pass.Fset, pos, "alloc"); d != nil {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// blessAppends records append calls whose result is assigned back to the
// slice they extend — the amortized-reuse idiom that is allocation-free at
// the steady-state high-water mark.
func (c *checker) blessAppends(body ast.Node) {
	c.blessed = map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !c.isBuiltin(call, "append") || len(call.Args) == 0 {
				continue
			}
			dst := rootObject(c.pass, as.Lhs[i])
			src := rootObject(c.pass, call.Args[0])
			if dst != nil && dst == src && sameSelectorPath(as.Lhs[i], call.Args[0]) {
				c.blessed[call] = true
			}
		}
		return true
	})
}

// markCalleeSelectors records every selector used as a call's function, so
// the walk can flag method *values* (which allocate) without flagging method
// *calls*.
func (c *checker) markCalleeSelectors(body ast.Node) {
	c.calleePos = map[*ast.SelectorExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				c.calleePos[sel] = true
			}
		}
		return true
	})
}

// coldIf reports whether an if statement's body directly panics — the
// assertion idiom whose cost is irrelevant.
func coldIf(s *ast.IfStmt) bool {
	for _, st := range s.Body.List {
		if es, ok := st.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}

func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if coldIf(n) {
				return false // assertion path: cold by construction
			}
		case *ast.GoStmt:
			c.report(n.Pos(), "goroutine spawn in hot path")
		case *ast.FuncLit:
			c.report(n.Pos(), "function literal in hot path allocates a closure")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.report(n.Pos(), "&composite literal in hot path escapes to the heap")
					return false
				}
			}
		case *ast.CompositeLit:
			if t := c.pass.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					c.report(n.Pos(), "slice literal in hot path allocates")
				case *types.Map:
					c.report(n.Pos(), "map literal in hot path allocates")
				}
			}
		case *ast.BinaryExpr:
			c.checkStringConcat(n)
		case *ast.SelectorExpr:
			c.checkMethodValue(n)
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.AssignStmt:
			c.checkAssignBoxing(n)
		case *ast.ReturnStmt:
			c.checkReturnBoxing(n)
		}
		return true
	})
}

func (c *checker) checkStringConcat(n *ast.BinaryExpr) {
	if n.Op != token.ADD {
		return
	}
	t := c.pass.TypeOf(n)
	if t == nil {
		return
	}
	if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	if tv, ok := c.pass.TypesInfo.Types[n]; ok && tv.Value != nil {
		return // constant-folded
	}
	c.report(n.Pos(), "string concatenation in hot path allocates")
}

func (c *checker) checkMethodValue(n *ast.SelectorExpr) {
	if c.calleePos[n] {
		return
	}
	if sel, ok := c.pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.MethodVal {
		c.report(n.Pos(), "method value %s in hot path allocates a closure", n.Sel.Name)
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// Type conversions: only string<->[]byte/[]rune allocate.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		c.checkStringConversion(call, tv.Type)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := c.pass.ObjectOf(id).(*types.Builtin); isB {
			switch id.Name {
			case "make", "new":
				c.report(call.Pos(), "%s in hot path allocates", id.Name)
			case "append":
				if !c.blessed[call] {
					c.report(call.Pos(), "append to a fresh slice in hot path allocates (use the s = append(s, ...) reuse form on a retained slice)")
				}
			}
			return
		}
	}
	// Boxing at call boundaries: a non-pointer-shaped concrete argument
	// passed as an interface parameter allocates.
	sig, ok := c.pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos && i == params.Len()-1 {
				pt = params.At(params.Len() - 1).Type() // s... passes the slice itself
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && boxes(c.pass, arg, pt) {
			c.report(arg.Pos(), "interface conversion in hot path allocates (boxing %s)", types.TypeString(c.pass.TypeOf(arg), types.RelativeTo(c.pass.Pkg)))
		}
	}
}

func (c *checker) checkStringConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := c.pass.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if isString(to) && isByteOrRuneSlice(from) || isByteOrRuneSlice(to) && isString(from) {
		if tv, ok := c.pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
			return // constant input
		}
		c.report(call.Pos(), "string conversion in hot path allocates")
	}
}

func (c *checker) checkAssignBoxing(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := c.pass.TypeOf(as.Lhs[i])
		if lt != nil && boxes(c.pass, as.Rhs[i], lt) {
			c.report(as.Rhs[i].Pos(), "interface conversion in hot path allocates (boxing %s)", types.TypeString(c.pass.TypeOf(as.Rhs[i]), types.RelativeTo(c.pass.Pkg)))
		}
	}
}

func (c *checker) checkReturnBoxing(ret *ast.ReturnStmt) {
	if c.results == nil || len(ret.Results) != c.results.NumFields() {
		return
	}
	i := 0
	for _, fld := range c.results.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1
		}
		ft := c.pass.TypeOf(fld.Type)
		for j := 0; j < n && i < len(ret.Results); j, i = j+1, i+1 {
			if ft != nil && boxes(c.pass, ret.Results[i], ft) {
				c.report(ret.Results[i].Pos(), "interface conversion in hot path allocates (boxing %s)", types.TypeString(c.pass.TypeOf(ret.Results[i]), types.RelativeTo(c.pass.Pkg)))
			}
		}
	}
}

// boxes reports whether assigning expr to a target of type dst performs an
// allocating interface conversion: dst is an interface, expr's type is
// concrete, and the value is not pointer-shaped (pointer-shaped values ride
// in the interface's data word without a heap copy).
func boxes(pass *analysis.Pass, expr ast.Expr, dst types.Type) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	st := pass.TypeOf(expr)
	if st == nil || types.IsInterface(st) {
		return false
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !pointerShaped(st)
}

// pointerShaped reports whether values of t occupy exactly one pointer word,
// so converting them to an interface stores the value directly.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func (c *checker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = c.pass.ObjectOf(id).(*types.Builtin)
	return ok
}

// rootObject resolves the base identifier of a selector/index/deref chain.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sameSelectorPath reports whether a and b are textually the same
// selector/ident chain (e.g. both `e.pq`), so `e.pq = append(e.pq, v)` is
// recognized as reuse while `e.other = append(e.pq, v)` is not.
func sameSelectorPath(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		return ok && av.Name == bv.Name
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		return ok && av.Sel.Name == bv.Sel.Name && sameSelectorPath(av.X, bv.X)
	}
	return false
}
