// Fixture for the hotpath analyzer.
package hot

type ring struct {
	buf  []int
	n    int
	name string
}

//ndplint:hotpath
func (r *ring) push(v int) {
	r.buf = append(r.buf, v) // blessed reuse form: amortized, not flagged
	r.n++
}

//ndplint:hotpath
func (r *ring) fresh(v int) []int {
	return append([]int{}, v) // want `slice literal in hot path` `append to a fresh slice in hot path`
}

//ndplint:hotpath
func (r *ring) grow() {
	r.buf = make([]int, 0, 16) // want `make in hot path allocates`
}

//ndplint:hotpath
func (r *ring) closure() func() int {
	return func() int { return r.n } // want `function literal in hot path`
}

//ndplint:hotpath
func (r *ring) methodValue() func(int) {
	return r.push // want `method value push in hot path allocates a closure`
}

//ndplint:hotpath
func (r *ring) box() any {
	return r.n // want `interface conversion in hot path allocates \(boxing int\)`
}

//ndplint:hotpath
func (r *ring) boxPointerOK() any {
	return &r.n // pointer-shaped: rides in the interface word, no heap copy
}

//ndplint:hotpath
func (r *ring) label(s string) string {
	return r.name + s // want `string concatenation in hot path`
}

//ndplint:hotpath
func (r *ring) bytes(s string) []byte {
	return []byte(s) // want `string conversion in hot path`
}

//ndplint:hotpath
func (r *ring) spawn(fn func()) {
	go fn() // want `goroutine spawn in hot path`
}

//ndplint:hotpath
func (r *ring) escape() *ring {
	return &ring{} // want `&composite literal in hot path escapes`
}

//ndplint:hotpath
func (r *ring) checkOK(v int) {
	if v < 0 {
		panic("negative: " + r.name) // assertion path: cold by construction
	}
	r.n += v
}

//ndplint:hotpath
func (r *ring) suppressedOK() {
	r.buf = make([]int, 0, 16) //ndplint:alloc one-time warmup, amortized across the run
}

// coldInit is untagged: allocations outside hot paths are fine.
func (r *ring) coldInit() {
	r.buf = make([]int, 0, 64)
	go func() { r.n = 0 }()
}
