package hotpath_test

import (
	"testing"

	"ndpbridge/internal/lint/analysistest"
	"ndpbridge/internal/lint/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata/src/hot", hotpath.Analyzer)
}
