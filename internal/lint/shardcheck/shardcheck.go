// Package shardcheck statically proves the simulator's state is
// PDES-partitionable: every stateful struct in the sim packages belongs to an
// ownership domain, and every write that crosses domains goes through a
// function audited as a //ndplint:seam. The derived ownership model
// (domains, members, seams, cross-domain edges) is the input contract the
// PDES sharder consumes — see DESIGN.md §16.
//
// The analysis is whole-program: domains declared in ndpunit must govern
// writes reaching that state from core or bridge. Each package is
// type-checked in its own universe (imports come from export data), so
// nothing here compares types.Object identities across packages; types and
// functions are keyed by package-path-qualified names, and interface
// dispatch is resolved structurally by method name plus signature string.
//
// Known limitations, by construction: writes through function values
// (scheduled event closures, task handlers) are attributed to the method
// that defines them, not the caller that schedules them — scheduling itself
// goes through the Engine seams; and aliasing a foreign component's interior
// pointer into a local defeats the root-object tracking. Both are covered by
// review plus the domain annotations on the structs themselves.
package shardcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ndpbridge/internal/lint/analysis"
	"ndpbridge/internal/lint/directive"
)

// simPackages names the packages inside the shard boundary, keyed by package
// name so fixture packages (loaded under synthetic import paths) participate.
var simPackages = map[string]bool{
	"core":     true,
	"ndpunit":  true,
	"bridge":   true,
	"mailbox":  true,
	"msg":      true,
	"dram":     true,
	"sim":      true,
	"task":     true,
	"sketch":   true,
	"metadata": true,
}

// Analyzer is the shardcheck ownership analyzer.
var Analyzer = &analysis.GlobalAnalyzer{
	Name:    "shardcheck",
	Doc:     "simulator state must stay inside its ownership domain; cross-domain writes go through //ndplint:seam functions",
	Version: 1,
	Run: func(pass *analysis.GlobalPass) error {
		_, diags := Analyze(pass.Units)
		for _, d := range diags {
			pass.Report(d.Unit, analysis.Diagnostic{Pos: d.Pos, Message: d.Message})
		}
		return nil
	},
}

// Diag is one shardcheck finding, positioned within its owning unit.
type Diag struct {
	Unit    *analysis.Unit
	Pos     token.Pos
	Message string
}

// Analyze runs the ownership analysis over units and returns the derived
// ownership model alongside any findings. The model is valid even when
// findings are present (the report shows what the tree looks like today).
func Analyze(units []*analysis.Unit) (*Model, []Diag) {
	c := &checker{
		types:  make(map[string]*typeInfo),
		funcs:  make(map[string]*funcInfo),
		ifaces: make(map[*types.Interface][]*typeInfo),
		paths:  make(map[string]bool),
	}
	for _, u := range units {
		if u.Pkg == nil || !simPackages[u.Pkg.Name()] {
			continue
		}
		c.units = append(c.units, &unitInfo{u: u, dirs: directive.Parse(u.Fset, u.Files)})
		c.paths[u.Pkg.Path()] = true
	}
	c.collectTypes()
	c.inferContainment()
	c.checkGlobals()
	c.collectFuncs()
	for _, fi := range c.funcOrder {
		c.scanFunc(fi)
	}
	c.propagateEffects()
	c.checkCalls()
	return c.buildModel(), c.diags
}

type unitInfo struct {
	u    *analysis.Unit
	dirs *directive.Map
}

// typeInfo is one named struct type declared in a sim package.
type typeInfo struct {
	key     string // pkgpath.Name
	unit    *unitInfo
	named   *types.Named
	st      *types.Struct
	dom     Domain
	via     string // "directive" or "containment"
	inside  map[Domain]bool
	declPos token.Pos
}

// funcInfo is one function or method with a body in a sim package.
type funcInfo struct {
	key  string // pkgpath.Name or pkgpath.Recv.Name
	unit *unitInfo
	decl *ast.FuncDecl
	// ctx is the home domain the body executes in: the receiver type's
	// domain, or "" for free functions and methods on undomained types.
	ctx  Domain
	seam *directive.Directive
	// writes are the domains the body mutates directly; effects adds the
	// domains mutated transitively through non-seam callees.
	writes  map[Domain]bool
	effects map[Domain]bool
	calls   []callSite
}

// callSite is one resolved call with its candidate callees (several for
// interface dispatch).
type callSite struct {
	pos     token.Pos
	callees []string
}

type checker struct {
	units     []*unitInfo
	paths     map[string]bool // sim package import paths
	types     map[string]*typeInfo
	typeOrder []*typeInfo
	funcs     map[string]*funcInfo
	funcOrder []*funcInfo
	ifaces    map[*types.Interface][]*typeInfo
	diags     []Diag
}

func (c *checker) diag(u *unitInfo, pos token.Pos, format string, args ...any) {
	c.diags = append(c.diags, Diag{Unit: u.u, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// typeKey names a type object stably across type-check universes.
func typeKey(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Path() + "." + tn.Name()
}

// funcKey names a function or method stably across universes.
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return typeKey(named.Obj()) + "." + fn.Name()
		}
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// namedOf unwraps pointers and aliases to the underlying named type.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// simType resolves t (possibly behind a pointer) to the typeInfo of a sim
// struct, or nil.
func (c *checker) simType(t types.Type) *typeInfo {
	n := namedOf(t)
	if n == nil {
		return nil
	}
	return c.types[typeKey(n.Obj())]
}

// typeDomain is the ownership domain of the sim struct behind t, or "".
func (c *checker) typeDomain(t types.Type) Domain {
	if ti := c.simType(t); ti != nil {
		return ti.dom
	}
	return ""
}

// --- Phase 1: type collection ---------------------------------------------

func (c *checker) collectTypes() {
	for _, u := range c.units {
		scope := u.u.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := types.Unalias(tn.Type()).(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			ti := &typeInfo{
				key:     typeKey(tn),
				unit:    u,
				named:   named,
				st:      st,
				inside:  make(map[Domain]bool),
				declPos: tn.Pos(),
			}
			if d := u.dirs.At(u.u.Fset, tn.Pos(), "domain"); d != nil {
				if !validDomains[Domain(d.Arg)] {
					c.diag(u, d.Pos, "unknown ownership domain %q in ndplint:domain (valid: %s)", d.Arg, validDomainList())
				} else {
					ti.dom = Domain(d.Arg)
					ti.via = "directive"
				}
			}
			c.types[ti.key] = ti
			c.typeOrder = append(c.typeOrder, ti)
		}
	}
	sort.Slice(c.typeOrder, func(i, j int) bool { return c.typeOrder[i].key < c.typeOrder[j].key })
}

// --- Phase 2: containment inference ---------------------------------------

// inferContainment assigns a domain to every unannotated struct that is
// embedded (as a field, possibly behind pointers, slices, arrays, or maps)
// in containers of exactly one domain. Ambiguity and orphan structs with
// state are findings: the partition cannot be derived for them.
func (c *checker) inferContainment() {
	// containedIn[inner] = set of container typeInfos.
	containedIn := make(map[string][]*typeInfo)
	for _, ti := range c.typeOrder {
		seen := make(map[string]bool)
		for i := 0; i < ti.st.NumFields(); i++ {
			for _, inner := range c.fieldSimTypes(ti.st.Field(i).Type()) {
				if inner.key == ti.key || seen[inner.key] {
					continue
				}
				seen[inner.key] = true
				containedIn[inner.key] = append(containedIn[inner.key], ti)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, ti := range c.typeOrder {
			if ti.dom != "" {
				continue
			}
			doms := make(map[Domain]bool)
			for _, container := range containedIn[ti.key] {
				if container.dom != "" {
					doms[container.dom] = true
				}
			}
			ti.inside = doms
			if len(doms) == 1 {
				for d := range doms {
					ti.dom = d
				}
				ti.via = "containment"
				changed = true
			}
		}
	}
	for _, ti := range c.typeOrder {
		if ti.dom != "" || ti.st.NumFields() == 0 {
			continue
		}
		if d := ti.unit.dirs.At(ti.unit.u.Fset, ti.declPos, "crossdomain"); d != nil {
			continue
		}
		if len(ti.inside) > 1 {
			c.diag(ti.unit, ti.declPos, "ambiguous ownership for %s: contained in domains %s; annotate it with //ndplint:domain(<d>)", ti.key, domainSet(ti.inside))
			continue
		}
		c.diag(ti.unit, ti.declPos, "struct %s has no ownership domain: annotate it with //ndplint:domain(<d>) or hold it inside a domained container", ti.key)
	}
}

// fieldSimTypes unwraps a field type through pointers, slices, arrays, maps,
// and channels to the sim struct types it holds.
func (c *checker) fieldSimTypes(t types.Type) []*typeInfo {
	switch t := types.Unalias(t).(type) {
	case *types.Pointer:
		return c.fieldSimTypes(t.Elem())
	case *types.Slice:
		return c.fieldSimTypes(t.Elem())
	case *types.Array:
		return c.fieldSimTypes(t.Elem())
	case *types.Chan:
		return c.fieldSimTypes(t.Elem())
	case *types.Map:
		return append(c.fieldSimTypes(t.Key()), c.fieldSimTypes(t.Elem())...)
	case *types.Named:
		if ti := c.types[typeKey(t.Obj())]; ti != nil {
			return []*typeInfo{ti}
		}
	}
	return nil
}

func domainSet(m map[Domain]bool) string {
	names := make([]string, 0, len(m))
	for d := range m {
		names = append(names, string(d))
	}
	sort.Strings(names)
	return strings.Join(names, " and ")
}

// --- Phase 3: package-level state -----------------------------------------

// checkGlobals flags package-level mutable variables: they belong to no
// instance and therefore to no shard. Error sentinels and blank
// interface-satisfaction assertions are the only exemptions.
func (c *checker) checkGlobals() {
	for _, u := range c.units {
		for _, f := range u.u.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, name := range vs.Names {
						if name.Name == "_" {
							continue
						}
						obj, ok := u.u.TypesInfo.Defs[name].(*types.Var)
						if !ok || isErrorType(obj.Type()) {
							continue
						}
						if u.dirs.At(u.u.Fset, name.Pos(), "crossdomain") != nil ||
							u.dirs.At(u.u.Fset, gd.Pos(), "crossdomain") != nil {
							continue
						}
						c.diag(u, name.Pos(), "package-level mutable state %s belongs to no shard: move it into a domained component or suppress with //ndplint:crossdomain <why>", name.Name)
					}
				}
			}
		}
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// --- Phase 4: function collection and body scanning -----------------------

func (c *checker) collectFuncs() {
	for _, u := range c.units {
		for _, f := range u.u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := u.u.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{
					key:     funcKey(fn),
					unit:    u,
					decl:    fd,
					writes:  make(map[Domain]bool),
					effects: make(map[Domain]bool),
					seam:    u.dirs.At(u.u.Fset, fd.Pos(), "seam"),
				}
				if fd.Recv != nil {
					if ti := c.simType(u.u.TypesInfo.Defs[fd.Name].(*types.Func).Type().(*types.Signature).Recv().Type()); ti != nil {
						fi.ctx = ti.dom
					}
				}
				c.funcs[fi.key] = fi
				c.funcOrder = append(c.funcOrder, fi)
			}
		}
	}
	sort.Slice(c.funcOrder, func(i, j int) bool { return c.funcOrder[i].key < c.funcOrder[j].key })
}

// scanFunc records the direct writes and resolved call sites of one body.
func (c *checker) scanFunc(fi *funcInfo) {
	fresh := c.freshLocals(fi)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				c.checkWrite(fi, fresh, lhs)
			}
		case *ast.IncDecStmt:
			c.checkWrite(fi, fresh, n.X)
		case *ast.CallExpr:
			c.scanCall(fi, fresh, n)
		}
		return true
	})
}

// checkWrite classifies one assignment target and reports it when it mutates
// another domain's state outside a seam.
func (c *checker) checkWrite(fi *funcInfo, fresh map[types.Object]bool, lhs ast.Expr) {
	dom, root, pureSel := c.writeTarget(fi.unit, lhs)
	if dom == "" {
		return
	}
	if root != nil {
		if fresh[root] {
			return // freshly allocated here; not yet part of any shard
		}
		if pureSel && isLocalValue(root, fi.unit) {
			return // writing a stack copy, not shared state
		}
	}
	fi.writes[dom] = true
	if allowedWrite(fi.ctx, dom) || fi.seam != nil {
		return
	}
	if fi.unit.dirs.At(fi.unit.u.Fset, lhs.Pos(), "crossdomain") != nil {
		return
	}
	c.diag(fi.unit, lhs.Pos(), "cross-domain write: %s mutates %s-owned state; route it through a //ndplint:seam function or suppress with //ndplint:crossdomain <why>", ctxName(fi.ctx), dom)
}

func ctxName(d Domain) string {
	if d == "" {
		return "domain-free code"
	}
	return string(d) + " code"
}

// writeTarget walks an assignment target down to the nearest domain-owned
// value and the root object the access chain starts from. pureSel reports
// whether the chain is selectors only (no indexing or dereference), i.e.
// whether a value-typed root would make the write a copy-write.
func (c *checker) writeTarget(u *unitInfo, e ast.Expr) (dom Domain, root types.Object, pureSel bool) {
	info := u.u.TypesInfo
	pureSel = true
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			obj := info.Defs[x]
			if obj == nil {
				obj = info.Uses[x]
			}
			if dom == "" {
				dom = c.typeDomain(info.TypeOf(x))
			}
			return dom, obj, pureSel
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					// Qualified reference to another package's variable.
					if dom == "" {
						dom = c.typeDomain(info.TypeOf(x))
					}
					return dom, info.Uses[x.Sel], false
				}
			}
			if dom == "" {
				dom = c.typeDomain(info.TypeOf(x.X))
			}
			e = x.X
		case *ast.IndexExpr:
			if dom == "" {
				dom = c.typeDomain(info.TypeOf(x.X))
			}
			e, pureSel = x.X, false
		case *ast.StarExpr:
			if dom == "" {
				dom = c.typeDomain(info.TypeOf(x.X))
			}
			e, pureSel = x.X, false
		default:
			// Chains rooted in calls or other expressions: keep whatever
			// domain the selectors established; no root to exempt.
			return dom, nil, false
		}
	}
}

// isLocalValue reports whether obj is a function-local variable (parameter,
// receiver, or local) of non-pointer type — writes through a pure selector
// chain on such a root mutate a stack copy.
func isLocalValue(obj types.Object, u *unitInfo) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Parent() == nil || v.Parent() == u.u.Pkg.Scope() {
		return false
	}
	_, isPtr := types.Unalias(v.Type()).(*types.Pointer)
	return !isPtr
}

// freshLocals finds locals that only ever hold values allocated inside this
// body (composite literals, &composite, make, new): writes to them are
// constructor work, not mutation of shared state.
func (c *checker) freshLocals(fi *funcInfo) map[types.Object]bool {
	info := fi.unit.u.TypesInfo
	fresh := make(map[types.Object]bool)
	tainted := make(map[types.Object]bool)
	classify := func(id *ast.Ident, rhs ast.Expr, define bool) {
		if id.Name == "_" {
			return
		}
		var obj types.Object
		if define {
			obj = info.Defs[id]
		} else {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if rhs != nil && isFreshExpr(info, rhs) {
			fresh[obj] = true
		} else if define && rhs == nil {
			fresh[obj] = true // var x T — zero value is fresh
		} else {
			tainted[obj] = true
		}
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				classify(id, rhs, n.Tok == token.DEFINE)
			}
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			for _, spec := range n.Specs {
				vs := spec.(*ast.ValueSpec)
				for i, id := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					classify(id, rhs, true)
				}
			}
		case *ast.RangeStmt, *ast.TypeSwitchStmt:
			// Range and type-switch variables alias existing state; they
			// are never fresh (absent from the map means not fresh).
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// Taking a local's address may leak it; a leaked local can
				// be reached from elsewhere, so stop treating it as fresh.
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						tainted[obj] = true
					}
				}
			}
		}
		return true
	})
	for obj := range tainted {
		delete(fresh, obj)
	}
	return fresh
}

// isFreshExpr reports whether e evaluates to storage allocated at this
// expression: composite literals, their addresses, and make/new calls.
func isFreshExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				return b.Name() == "make" || b.Name() == "new"
			}
		}
	}
	return false
}

// scanCall resolves one call expression to candidate callees, records them
// for the effects fixpoint, and handles the mutating builtins.
func (c *checker) scanCall(fi *funcInfo, fresh map[types.Object]bool, call *ast.CallExpr) {
	info := fi.unit.u.TypesInfo
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok { // generic instantiation
		fun = ast.Unparen(ix.X)
	}
	if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch o := info.Uses[f].(type) {
		case *types.Builtin:
			switch o.Name() {
			case "delete", "clear", "copy":
				if len(call.Args) > 0 {
					c.checkWrite(fi, fresh, call.Args[0])
				}
			}
		case *types.Func:
			c.addCall(fi, call.Pos(), o)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			// Calls on objects freshly allocated in this body configure a
			// value that belongs to no shard yet.
			if _, root, _ := c.writeTarget(fi.unit, f.X); root != nil && fresh[root] {
				return
			}
			recv := sel.Recv()
			if types.IsInterface(recv) {
				c.addInterfaceCall(fi, call.Pos(), recv, sel.Obj().(*types.Func))
				return
			}
			c.addCall(fi, call.Pos(), sel.Obj().(*types.Func))
			return
		}
		if o, ok := info.Uses[f.Sel].(*types.Func); ok { // pkg.FreeFunc
			c.addCall(fi, call.Pos(), o)
		}
	}
}

// addCall records a call to a concrete function when the callee lives in a
// sim package (only those have bodies we analyzed).
func (c *checker) addCall(fi *funcInfo, pos token.Pos, fn *types.Func) {
	if fn.Pkg() == nil || !c.paths[fn.Pkg().Path()] {
		return
	}
	fi.calls = append(fi.calls, callSite{pos: pos, callees: []string{funcKey(fn)}})
}

// addInterfaceCall resolves an interface method call to every sim struct
// whose method set satisfies the interface, matched structurally by method
// name and signature string (object identity does not hold across package
// type-check universes).
func (c *checker) addInterfaceCall(fi *funcInfo, pos token.Pos, recv types.Type, m *types.Func) {
	iface, ok := types.Unalias(recv).Underlying().(*types.Interface)
	if !ok {
		return
	}
	impls, cached := c.ifaces[iface]
	if !cached {
		for _, ti := range c.typeOrder {
			if c.implementsByName(ti, iface) {
				impls = append(impls, ti)
			}
		}
		c.ifaces[iface] = impls
	}
	cs := callSite{pos: pos}
	for _, ti := range impls {
		cs.callees = append(cs.callees, ti.key+"."+m.Name())
	}
	if len(cs.callees) > 0 {
		fi.calls = append(fi.calls, cs)
	}
}

// implementsByName reports whether *T satisfies iface, comparing method
// signatures as path-qualified strings.
func (c *checker) implementsByName(ti *typeInfo, iface *types.Interface) bool {
	if iface.NumMethods() == 0 {
		return false // any/empty interfaces would match everything
	}
	ms := types.NewMethodSet(types.NewPointer(ti.named))
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		sel := ms.Lookup(m.Pkg(), m.Name())
		if sel == nil {
			return false
		}
		if sigString(sel.Obj().(*types.Func)) != sigString(m) {
			return false
		}
	}
	return true
}

// sigString renders a method signature (minus receiver) with package-path
// qualification, stable across type-check universes.
func sigString(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	q := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	b.WriteString(fn.Name())
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		if sig.Variadic() && i == sig.Params().Len()-1 {
			b.WriteString("...")
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), q))
	}
	b.WriteByte(')')
	for i := 0; i < sig.Results().Len(); i++ {
		b.WriteByte(',')
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), q))
	}
	return b.String()
}

// --- Phase 5: effects fixpoint and call checking --------------------------

// propagateEffects closes each function's write-set over its non-seam
// callees. Propagation stops at seams: calling a seam is sanctioned, so its
// internal crossings do not leak into the caller's effect set.
func (c *checker) propagateEffects() {
	for _, fi := range c.funcOrder {
		for d := range fi.writes {
			fi.effects[d] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range c.funcOrder {
			for _, cs := range fi.calls {
				for _, key := range cs.callees {
					g := c.funcs[key]
					if g == nil || g.seam != nil {
						continue
					}
					for d := range g.effects {
						if !fi.effects[d] {
							fi.effects[d] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// checkCalls reports call sites whose (non-seam) callees mutate a domain the
// caller's context may not touch.
func (c *checker) checkCalls() {
	for _, fi := range c.funcOrder {
		if fi.seam != nil {
			continue // seams are sanctioned to cross
		}
		for _, cs := range fi.calls {
			bad := make(map[Domain]bool)
			for _, key := range cs.callees {
				g := c.funcs[key]
				if g == nil || g.seam != nil {
					continue
				}
				for d := range g.effects {
					if !allowedWrite(fi.ctx, d) {
						bad[d] = true
					}
				}
			}
			if len(bad) == 0 {
				continue
			}
			if fi.unit.dirs.At(fi.unit.u.Fset, cs.pos, "crossdomain") != nil {
				continue
			}
			c.diag(fi.unit, cs.pos, "cross-domain call: %s calls into code that mutates %s-owned state; mark the callee //ndplint:seam or suppress with //ndplint:crossdomain <why>", ctxName(fi.ctx), domainSet(bad))
		}
	}
}
