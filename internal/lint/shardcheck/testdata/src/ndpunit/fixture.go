// Package ndpunit is a shardcheck fixture. It borrows a sim package's name
// so the analyzer treats it as inside the shard boundary; the structs are
// stand-ins, not the real simulator types.
package ndpunit

//ndplint:domain(unit)
type Unit struct {
	q     []int
	stats Stats
	sh    Shared
}

// Stats has no directive: containment inside Unit alone assigns it unit.
type Stats struct {
	n int
}

//ndplint:domain(bridge-l1)
type Bridge struct {
	buf []int
	sh  Shared
}

// Shared sits inside two domains, so no single owner can be derived.
type Shared struct { // want `ambiguous ownership for .*Shared: contained in domains bridge-l1 and unit`
	n int
}

// Orphan is stateful but held by nobody and undeclared.
type Orphan struct { // want `struct .*Orphan has no ownership domain`
	n int
}

//ndplint:domain(shared-ro)
type Table struct {
	m map[string]int
}

//ndplint:domain(perowner)
type Mailbox struct {
	msgs []int
}

var counter int // want `package-level mutable state counter belongs to no shard`

//ndplint:crossdomain test scaffold tolerated at package level
var suppressedCounter int

// Step writes only the unit's own state: clean.
func (u *Unit) Step() {
	u.q = append(u.q, 1)
	u.stats.n++
}

// Poke is the planted violation: a unit-context write to bridge state.
func (u *Unit) Poke(b *Bridge) {
	b.buf = append(b.buf, 1) // want `cross-domain write: unit code mutates bridge-l1-owned state`
}

// Hack crosses the same way but carries an audited suppression.
func (u *Unit) Hack(b *Bridge) {
	//ndplint:crossdomain audited test crossing
	b.buf = nil
}

// Deliver is a sanctioned seam: the same write draws no finding.
//ndplint:seam downward delivery entry in the test fixture
func (u *Unit) Deliver(b *Bridge) {
	b.buf = append(b.buf, 2)
}

// Accept is a seam on the bridge side, callable from any domain.
//ndplint:seam upward gather entry in the test fixture
func (b *Bridge) Accept(x int) {
	b.buf = append(b.buf, x)
}

// grow is NOT a seam: unit-side callers must not reach it.
func (b *Bridge) grow() {
	b.buf = append(b.buf, 3)
}

// Send crosses through the seam: clean.
func (u *Unit) Send(b *Bridge) {
	b.Accept(1)
}

// Relay crosses into a non-seam mutator: flagged at the call site.
func (u *Unit) Relay(b *Bridge) {
	b.grow() // want `cross-domain call: unit code calls into code that mutates bridge-l1-owned state`
}

// Freeze: shared-ro is writable by nobody outside a seam, even its own
// methods — mutators of frozen tables must be audited setup-phase seams.
func (t *Table) Add(k string) {
	t.m[k] = 1 // want `cross-domain write: shared-ro code mutates shared-ro-owned state`
}

// Register is the audited setup-phase mutator.
//ndplint:seam setup-phase registration in the test fixture
func (t *Table) Register(k string) {
	t.m[k] = 1
}

// Push writes perowner state from bridge context: ownership follows the
// holder, so this is clean.
func (b *Bridge) Push(mb *Mailbox) {
	mb.msgs = append(mb.msgs, 1)
}

// NewBridge writes a freshly allocated value from domain-free context:
// the constructor exemption keeps it clean.
func NewBridge() *Bridge {
	b := &Bridge{}
	b.buf = append(b.buf, 0)
	b.grow()
	return b
}
