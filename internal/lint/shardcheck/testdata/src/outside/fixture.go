// Package outside is NOT a sim package: shardcheck must ignore it entirely,
// even though it repeats shapes that fire inside the boundary.
package outside

type Undomained struct {
	n int
}

var freeCounter int

func Touch(u *Undomained) {
	u.n++
	freeCounter++
}
