package shardcheck

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
)

// buildModel assembles the ownership report from the analyzed state. All
// slices are sorted so the serialized form is deterministic.
func (c *checker) buildModel() *Model {
	m := &Model{Version: 1}

	for path := range c.paths {
		m.Packages = append(m.Packages, path)
	}
	sort.Strings(m.Packages)

	members := make(map[Domain][]Member)
	for _, ti := range c.typeOrder { // already sorted by key
		if ti.dom == "" {
			continue
		}
		members[ti.dom] = append(members[ti.dom], Member{Type: ti.key, Via: ti.via})
	}
	for d, doc := range domainDoc {
		m.Domains = append(m.Domains, DomainEntry{Name: string(d), Doc: doc, Members: members[d]})
	}
	sort.Slice(m.Domains, func(i, j int) bool { return m.Domains[i].Name < m.Domains[j].Name })

	cwd, _ := os.Getwd()
	for _, fi := range c.funcOrder { // already sorted by key
		if fi.seam == nil {
			continue
		}
		s := Seam{
			Func:          fi.key,
			File:          relPath(cwd, fi.unit.u.Fset.Position(fi.decl.Pos()).Filename),
			Domain:        string(fi.ctx),
			Justification: fi.seam.Justification,
		}
		for d := range fi.effects {
			s.Writes = append(s.Writes, string(d))
		}
		sort.Strings(s.Writes)
		m.Seams = append(m.Seams, s)
	}

	// Cross-domain edges: every call site where a context enters a seam
	// that (transitively) writes domains the caller may not touch itself.
	type edgeKey struct{ from, to, via string }
	edges := make(map[edgeKey]int)
	for _, fi := range c.funcOrder {
		for _, cs := range fi.calls {
			for _, key := range cs.callees {
				g := c.funcs[key]
				if g == nil || g.seam == nil {
					continue
				}
				touched := make(map[Domain]bool)
				for d := range g.effects {
					touched[d] = true
				}
				if g.ctx != "" {
					touched[g.ctx] = true
				}
				for d := range touched {
					if allowedWrite(fi.ctx, d) {
						continue
					}
					edges[edgeKey{from: string(fi.ctx), to: string(d), via: key}]++
				}
			}
		}
	}
	for k, n := range edges {
		m.Edges = append(m.Edges, Edge{From: k.from, To: k.to, Via: k.via, Sites: n})
	}
	sort.Slice(m.Edges, func(i, j int) bool {
		a, b := m.Edges[i], m.Edges[j]
		if a.Via != b.Via {
			return a.Via < b.Via
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})

	return m
}

// relPath renders file relative to base (the working directory) with forward
// slashes, falling back to the absolute path when no relation exists.
func relPath(base, file string) string {
	if base != "" {
		if rel, err := filepath.Rel(base, file); err == nil {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// Encode renders the model as indented JSON with a trailing newline — the
// exact bytes of results/ownership.json.
func (m *Model) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
