package shardcheck

import "sort"

// Domain names one ownership domain of the simulator's state. The PDES
// sharding plan (ROADMAP item 1) partitions a run into {units + banks +
// per-owner helpers} shards coordinated by bridge and engine seams; every
// stateful struct in the sim packages must claim the domain its instances
// live in so the partition is a checked property, not folklore.
type Domain string

const (
	// DomainUnit is per-NDP-unit controller state: the task queue, mailbox
	// region, migration metadata, staging buffers. Shards by unit.
	DomainUnit Domain = "unit"
	// DomainBank is per-DRAM-bank timing and energy state. Each bank is
	// owned by exactly one unit and co-shards with it, so unit→bank writes
	// are intra-partition.
	DomainBank Domain = "bank"
	// DomainBridgeL1 is rank-level (level-1) bridge state: scatter/backup
	// buffers, borrowed tables, load-balancing rounds.
	DomainBridgeL1 Domain = "bridge-l1"
	// DomainBridgeL2 is channel-level (level-2) bridge state.
	DomainBridgeL2 Domain = "bridge-l2"
	// DomainEngine is the event core and run orchestration: the event
	// queue, the bulk-sync epoch accounting, the system wiring. The PDES
	// refactor gives every shard its own engine instance; the engine's
	// scheduling API is therefore a seam, not free-for-all state.
	DomainEngine Domain = "engine"
	// DomainHost is host-side driver and observer state: serving traffic
	// sources, checkpoints, the auditor, fault-plan control. Host state
	// never shards; it talks to the fabric through seams.
	DomainHost Domain = "host"
	// DomainSharedRO is state built before the clock starts and read-only
	// between barriers (configuration-derived tables, the address map, the
	// handler registry). Any post-setup write needs a seam.
	DomainSharedRO Domain = "shared-ro"
	// DomainPerOwner marks helper containers instantiated once per owning
	// component (mailboxes, RNG streams, task queues, metadata tables).
	// Each instance shards with its container; writes are governed by the
	// holder's discipline, so shardcheck does not flag them.
	DomainPerOwner Domain = "perowner"
	// DomainXfer marks transferable payloads — messages, tasks, snapshot
	// DTOs — whose ownership moves with the value and crosses partitions
	// only through seams. Writes are allowed from any domain.
	DomainXfer Domain = "xfer"
)

// domainDoc is the one-line description each domain carries into the
// ownership report.
var domainDoc = map[Domain]string{
	DomainUnit:     "per-NDP-unit controller state; shards by unit",
	DomainBank:     "per-DRAM-bank timing/energy state; co-shards with its owning unit",
	DomainBridgeL1: "rank-level bridge state; partition boundary between units and the channel",
	DomainBridgeL2: "channel-level bridge state; partition boundary between ranks",
	DomainEngine:   "event core and run orchestration; per-shard instances under PDES",
	DomainHost:     "host-side drivers and observers; never sharded, reaches the fabric via seams",
	DomainSharedRO: "built before the clock starts, read-only between barriers",
	DomainPerOwner: "helper containers instantiated per owner; shard with their container",
	DomainXfer:     "transferable payloads; ownership moves with the value, crossing only at seams",
}

// validDomains is the accepted //ndplint:domain(...) argument set.
var validDomains = map[Domain]bool{
	DomainUnit: true, DomainBank: true, DomainBridgeL1: true,
	DomainBridgeL2: true, DomainEngine: true, DomainHost: true,
	DomainSharedRO: true, DomainPerOwner: true, DomainXfer: true,
}

// validDomainList renders the accepted domain arguments for diagnostics.
func validDomainList() string {
	names := make([]string, 0, len(validDomains))
	for d := range validDomains {
		names = append(names, string(d))
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// allowedWrite reports whether code whose home domain is from may mutate
// state owned by to without a seam. The relation is deliberately tiny: same
// domain, the unit→bank co-sharding edge, and the two holder-governed
// pseudo-domains. shared-ro is writable by nobody — even its own methods
// must be seams (setup phase) — so a frozen table can never silently grow a
// mutation path.
func allowedWrite(from, to Domain) bool {
	switch {
	case to == "":
		return true // untracked state (outside the shard boundary)
	case to == DomainPerOwner || to == DomainXfer:
		return true // ownership follows the holder
	case to == DomainSharedRO:
		return false
	case from == to:
		return true
	case from == DomainUnit && to == DomainBank:
		return true // each bank co-shards with its owning unit
	}
	return false
}

// --- Ownership model (the -ownership-report payload) ----------------------

// Model is the machine-readable ownership map shardcheck derives: the input
// contract the PDES sharder consumes. Serialized deterministically (all
// slices sorted) so the committed results/ownership.json reproduces
// byte-for-byte.
type Model struct {
	// Version counts schema revisions of this file.
	Version int `json:"version"`
	// Packages lists the analyzed simulation packages by import path.
	Packages []string `json:"packages"`
	// Domains maps each ownership domain to its member structs.
	Domains []DomainEntry `json:"domains"`
	// Seams is the sanctioned cross-domain function inventory.
	Seams []Seam `json:"seams"`
	// Edges aggregates the observed cross-domain accesses, every one of
	// which is mediated by a seam (or it would be a lint failure).
	Edges []Edge `json:"edges"`
}

// DomainEntry is one domain with its member types.
type DomainEntry struct {
	Name    string   `json:"name"`
	Doc     string   `json:"doc"`
	Members []Member `json:"members"`
}

// Member is one stateful struct assigned to a domain.
type Member struct {
	// Type is the package-path-qualified type name.
	Type string `json:"type"`
	// Via says how the assignment was made: "directive" for an explicit
	// //ndplint:domain(...), "containment" for inference from the owning
	// struct.
	Via string `json:"via"`
}

// Seam is one function sanctioned to cross domains.
type Seam struct {
	// Func is the qualified function or method name.
	Func string `json:"func"`
	// File is the repo-relative file declaring it.
	File string `json:"file"`
	// Domain is the receiver's domain ("" for free functions).
	Domain string `json:"domain,omitempty"`
	// Writes lists the domains the seam (transitively) mutates.
	Writes []string `json:"writes,omitempty"`
	// Justification is the audited reason the crossing is safe.
	Justification string `json:"justification"`
}

// Edge is one aggregated cross-domain access path: code in From crossing
// into To through seam Via, observed at Sites call sites.
type Edge struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Via   string `json:"via"`
	Sites int    `json:"sites"`
}
