package shardcheck_test

import (
	"testing"

	"ndpbridge/internal/lint/analysistest"
	"ndpbridge/internal/lint/shardcheck"
)

// TestFixture drives the ownership analyzer over the fixture package:
// domain directives and containment inference, the seam allowlist, a
// planted cross-domain write and call that must fire, the crossdomain
// suppression round-trip, the shared-ro freeze, and the fresh-allocation
// constructor exemption.
func TestFixture(t *testing.T) {
	analysistest.RunGlobal(t, shardcheck.Analyzer, "testdata/src/ndpunit")
}

// TestOutsideBoundaryIgnored proves packages outside the sim boundary draw
// no findings: the same shapes that fire in the fixture are silent in a
// package whose name is not on the sim list.
func TestOutsideBoundaryIgnored(t *testing.T) {
	analysistest.RunGlobal(t, shardcheck.Analyzer, "testdata/src/outside")
}
