// Fixture for the nilmetrics analyzer (the package must be named "metrics").
package metrics

type Counter struct{ v uint64 }

// Add uses the leading-guard form.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Bump uses the wrap form.
func (c *Counter) Bump() {
	if c != nil {
		c.v++
	}
}

// Inc delegates to an exported method, which carries its own guard.
func (c *Counter) Inc() { c.Add(1) }

// Snapshot guards after receiver-free statements — still safe.
func (c *Counter) Snapshot() uint64 {
	total := uint64(0)
	if c == nil {
		return total
	}
	return total + c.v
}

// Kind never touches its receiver.
func (c *Counter) Kind() string { return "counter" }

type Gauge struct{ v uint64 }

func (g Gauge) Value() uint64 { // want `value receiver`
	return g.v
}

type Histogram struct{ count uint64 }

func (h *Histogram) Observe(v uint64) {
	h.count++ // want `reads field count of its receiver before any nil guard`
	_ = v
}

// merge is unexported, so the analyzer does not hold it to the contract —
// which is exactly why calling it before a guard is unsafe.
func (h *Histogram) merge(o *Histogram) {
	h.count += o.count
}

func (h *Histogram) Merge(o *Histogram) {
	h.merge(o) // want `calls unexported method merge on its receiver before any nil guard`
}

func reset(h *Histogram) { h.count = 0 }

func (h *Histogram) Reset() {
	reset(h) // want `passes or dereferences its receiver before any nil guard`
}

// MergeAll extends the guard with || clauses.
func (h *Histogram) MergeAll(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	h.count += o.count
}
