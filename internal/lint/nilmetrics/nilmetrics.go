// Package nilmetrics implements the ndplint analyzer enforcing the metrics
// layer's nil-receiver contract.
//
// The instrument layer's design (DESIGN.md §8) is that a nil *Registry is
// the "metrics off" state: it hands out nil instruments, and every
// instrument method is a cheap no-op on a nil receiver, so call sites across
// the simulator stay unconditional. That contract only holds if every
// exported method in the metrics package actually guards its receiver.
//
// For each exported method of package metrics the analyzer verifies that the
// receiver is a pointer (a value receiver would dereference nil before the
// body could check anything), and that no statement dereferences the
// receiver before a guard has run. Until a `if recv == nil { return ... }`
// guard (or an `if recv != nil { ... }` wrap) is seen, the only permitted
// uses of the receiver are nil comparisons and calls to its own exported
// methods — which this analyzer holds to the same contract, so delegation
// chains like Inc→Add stay safe by induction.
package nilmetrics

import (
	"go/ast"
	"go/token"
	"go/types"

	"ndpbridge/internal/lint/analysis"
)

// Analyzer is the metrics nil-receiver check.
var Analyzer = &analysis.Analyzer{
	Name:    "nilmetrics",
	Doc:     "exported methods of the metrics package must tolerate nil receivers",
	Version: 1,
	Run:     run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "metrics" {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkMethod(pass, fd)
		}
	}
	return nil
}

func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl) {
	recv := fd.Recv.List[0]
	if _, ok := recv.Type.(*ast.StarExpr); !ok {
		pass.Reportf(fd.Name.Pos(), "exported metrics method %s has a value receiver: the nil-instrument contract needs a pointer receiver with a nil guard", fd.Name.Name)
		return
	}
	if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
		return // receiver never referenced: trivially nil-safe
	}
	recvObj := pass.TypesInfo.Defs[recv.Names[0]]
	if recvObj == nil {
		return
	}

	for _, stmt := range fd.Body.List {
		if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Init == nil {
			if condChecksNil(pass, ifs.Cond, recvObj, token.EQL) && terminates(ifs.Body) {
				return // guarded from here on
			}
			if condChecksNil(pass, ifs.Cond, recvObj, token.NEQ) && ifs.Else == nil {
				continue // wrap form: the body only runs on a non-nil receiver
			}
		}
		if pos, use, ok := unguardedUse(pass, stmt, recvObj); ok {
			pass.Reportf(pos, "exported metrics method %s %s its receiver before any nil guard: callers rely on nil instruments being no-ops", fd.Name.Name, use)
			return
		}
	}
}

// unguardedUse scans one pre-guard statement for a receiver use that could
// dereference nil. Permitted uses: nil comparisons, and calls to exported
// methods on the receiver (held to this same contract).
func unguardedUse(pass *analysis.Pass, stmt ast.Stmt, recv types.Object) (token.Pos, string, bool) {
	safe := map[*ast.Ident]bool{}
	var badPos token.Pos
	var badUse string

	isRecv := func(e ast.Expr) *ast.Ident {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if ok && pass.TypesInfo.Uses[id] == recv {
			return id
		}
		return nil
	}

	ast.Inspect(stmt, func(n ast.Node) bool {
		if badUse != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			// recv == nil / recv != nil comparisons are the guard vocabulary.
			if n.Op == token.EQL || n.Op == token.NEQ {
				if id := isRecv(n.X); id != nil && isNil(pass, n.Y) {
					safe[id] = true
				}
				if id := isRecv(n.Y); id != nil && isNil(pass, n.X) {
					safe[id] = true
				}
			}
		case *ast.SelectorExpr:
			id := isRecv(n.X)
			if id == nil {
				return true
			}
			sel := pass.TypesInfo.Selections[n]
			if sel != nil && sel.Kind() == types.MethodVal && n.Sel.IsExported() {
				safe[id] = true // exported methods carry their own guard
				return true
			}
			what := "dereferences"
			if sel != nil && sel.Kind() == types.FieldVal {
				what = "reads field " + n.Sel.Name + " of"
			} else if sel != nil {
				what = "calls unexported method " + n.Sel.Name + " on"
			}
			badPos, badUse = n.Pos(), what
		}
		return true
	})
	if badUse != "" {
		return badPos, badUse, true
	}

	// Any remaining bare use (argument passing, deref, indexing, escaping
	// assignment) could reach a dereference the analyzer cannot see.
	ast.Inspect(stmt, func(n ast.Node) bool {
		if badUse != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv && !safe[id] && !selectorBase(stmt, id) {
			badPos, badUse = id.Pos(), "passes or dereferences"
		}
		return true
	})
	return badPos, badUse, badUse != ""
}

// selectorBase reports whether id appears as the X of a selector within
// stmt (those uses were classified above).
func selectorBase(stmt ast.Stmt, id *ast.Ident) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && ast.Unparen(sel.X) == id {
			found = true
		}
		return !found
	})
	return found
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && pass.ObjectOf(id) == types.Universe.Lookup("nil")
}

// condChecksNil reports whether cond contains `recv <op> nil` at the top of
// an ||-chain (op EQL) or an &&-chain (op NEQ).
func condChecksNil(pass *analysis.Pass, cond ast.Expr, recv types.Object, op token.Token) bool {
	cond = ast.Unparen(cond)
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if be.Op == op {
		isRecv := func(e ast.Expr) bool {
			id, ok := ast.Unparen(e).(*ast.Ident)
			return ok && pass.TypesInfo.Uses[id] == recv
		}
		return isRecv(be.X) && isNil(pass, be.Y) || isNil(pass, be.X) && isRecv(be.Y)
	}
	if (op == token.EQL && be.Op == token.LOR) || (op == token.NEQ && be.Op == token.LAND) {
		return condChecksNil(pass, be.X, recv, op) || condChecksNil(pass, be.Y, recv, op)
	}
	return false
}

// terminates reports whether a block unconditionally leaves the function.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}
