package nilmetrics_test

import (
	"testing"

	"ndpbridge/internal/lint/analysistest"
	"ndpbridge/internal/lint/nilmetrics"
)

func TestNilReceiverContract(t *testing.T) {
	analysistest.Run(t, "testdata/src/metrics", nilmetrics.Analyzer)
}
