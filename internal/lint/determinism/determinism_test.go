package determinism_test

import (
	"testing"

	"ndpbridge/internal/lint/analysistest"
	"ndpbridge/internal/lint/determinism"
)

func TestSimPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/sim", determinism.Analyzer)
}

func TestNonSimPackageIgnored(t *testing.T) {
	analysistest.Run(t, "testdata/src/notsim", determinism.Analyzer)
}
