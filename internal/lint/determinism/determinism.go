// Package determinism implements the ndplint analyzer that guards the
// simulator's bit-identical-replay property.
//
// Within the simulation packages (sim, core, ndpunit, bridge, mailbox, msg,
// sched, metadata, sketch, task, fault) it reports:
//
//   - wall-clock reads (time.Now / time.Since / time.Until): simulated time
//     is the only clock a model may consult;
//   - global math/rand state (package-level functions of math/rand and
//     math/rand/v2): all randomness must flow through seeded per-component
//     sim.RNG streams;
//   - goroutine spawns: one run is single-goroutine by construction — the
//     engine's event order is the only scheduler;
//   - map iteration feeding ordered state: a `range` over a map whose body
//     calls into stateful components, assigns loop-dependent values to outer
//     variables, or appends to a slice that is not subsequently sorted. Map
//     iteration order is deliberately randomized by the runtime, so any of
//     these lets unordered iteration leak into event order, snapshot bytes,
//     or message emission.
//
// Commutative folds over map elements (`sum += v`, counters, min/max style
// compound assignments, writes into other maps, delete) are recognized as
// order-insensitive and allowed, as is the collect-then-sort idiom (append
// keys, sort, iterate the slice). Anything else needs an explicit
// `//ndplint:ordered <justification>` on the range statement.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"ndpbridge/internal/lint/analysis"
	"ndpbridge/internal/lint/directive"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name:    "determinism",
	Doc:     "forbid wall clocks, global rand, goroutines, and order-leaking map iteration in simulation packages",
	Version: 2,
	Run:     run,
}

// simPackages names the packages (by package name) holding simulation model
// state, where event order must be a pure function of config and seed.
var simPackages = map[string]bool{
	"sim": true, "core": true, "ndpunit": true, "bridge": true,
	"mailbox": true, "msg": true, "sched": true, "metadata": true,
	"sketch": true, "task": true, "fault": true, "traffic": true,
}

func run(pass *analysis.Pass) error {
	if !simPackages[pass.Pkg.Name()] {
		return nil
	}
	dirs := directive.Parse(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawned in simulation package %s: the event engine is the only scheduler", pass.Pkg.Name())
			case *ast.SelectorExpr:
				checkForbiddenCall(pass, n)
			case *ast.FuncDecl:
				// Map ranges are analyzed per enclosing function so each
				// range sees its sibling statements (collect-then-sort);
				// everything else is handled by this Inspect directly.
				if n.Body != nil {
					checkBlock(pass, dirs, n.Body.List)
				}
			case *ast.FuncLit:
				checkBlock(pass, dirs, n.Body.List)
			}
			return true
		})
	}
	return nil
}

// checkForbiddenCall flags selector uses of wall-clock and global-rand
// functions.
func checkForbiddenCall(pass *analysis.Pass, sel *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are instance-scoped and fine
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(sel.Pos(), "wall-clock read time.%s in simulation package: use the engine's simulated time", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(sel.Pos(), "global math/rand state (%s.%s) in simulation package: use a seeded sim.RNG stream", fn.Pkg().Name(), fn.Name())
	}
}

// checkBlock walks a statement list, recursing into nested blocks, and
// analyzes each map-range statement with access to the statements that
// follow it (for the collect-then-sort idiom).
func checkBlock(pass *analysis.Pass, dirs *directive.Map, stmts []ast.Stmt) {
	for i, s := range stmts {
		if rs, ok := s.(*ast.RangeStmt); ok && isMapRange(pass, rs) {
			checkMapRange(pass, dirs, rs, stmts[i+1:])
		}
		for _, b := range subBlocks(s) {
			checkBlock(pass, dirs, b)
		}
	}
}

// subBlocks returns the statement lists nested directly under s.
func subBlocks(s ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := s.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, []ast.Stmt{s.Else})
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			out = append(out, c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			out = append(out, c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			out = append(out, c.(*ast.CommClause).Body)
		}
	case *ast.LabeledStmt:
		out = append(out, []ast.Stmt{s.Stmt})
	}
	return out
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// commutative compound-assignment operators: folding map elements with these
// yields the same result in any iteration order.
var commutativeAssign = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.OR_ASSIGN: true, token.AND_ASSIGN: true, token.XOR_ASSIGN: true,
}

// pure builtins that cannot leak iteration order into program state.
var pureBuiltin = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true, "delete": true,
	"copy": true, "clear": true, "append": true, "make": true, "new": true,
	"panic": true, // a panic aborts the run; which element trips it first is moot
}

// checkMapRange classifies the body of one map-range statement.
func checkMapRange(pass *analysis.Pass, dirs *directive.Map, rs *ast.RangeStmt, rest []ast.Stmt) {
	if d := dirs.At(pass.Fset, rs.Pos(), "ordered"); d != nil {
		return // justification audited by the directives analyzer
	}

	local := func(obj types.Object) bool {
		return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
	}
	rootObj := func(e ast.Expr) types.Object { return rootObject(pass, e) }

	// tainted collects outer slices appended to under iteration; they are
	// fine iff sorted before the enclosing block continues using them.
	tainted := map[types.Object]token.Pos{}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send under map iteration: delivery order follows randomized map order")
		case *ast.AssignStmt:
			checkAssign(pass, n, local, rootObj, tainted)
		case *ast.CallExpr:
			if reason := callViolation(pass, n, local); reason != "" {
				pass.Reportf(n.Pos(), "%s under map iteration: call order follows randomized map order (sort keys first, or annotate //ndplint:ordered <why>)", reason)
			}
		}
		return true
	})

	// The collect-then-sort idiom: every tainted slice must be passed to a
	// sort.* / slices.* call somewhere after the loop in the same block.
	for obj, pos := range tainted {
		if !sortedAfter(pass, rest, obj) {
			pass.Reportf(pos, "append to %q under map iteration without a following sort: element order follows randomized map order", obj.Name())
		}
	}
}

// checkAssign classifies one assignment inside a map-range body.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, local func(types.Object) bool, rootObj func(ast.Expr) types.Object, tainted map[types.Object]token.Pos) {
	if as.Tok == token.DEFINE {
		return // declares loop-locals
	}
	if commutativeAssign[as.Tok] {
		return // order-insensitive fold
	}
	for li, lhs := range as.Lhs {
		obj := rootObj(lhs)
		if local(obj) {
			continue
		}
		// Writes into another map keyed by loop state are order-insensitive
		// (each key is written once per element).
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if t := pass.TypeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					continue
				}
			}
		}
		// The self-append idiom `s = append(s, ...)`: record for the
		// sorted-after check instead of flagging immediately.
		if as.Tok == token.ASSIGN && li < len(as.Rhs) {
			if call, ok := as.Rhs[li].(*ast.CallExpr); ok && isBuiltin(pass, call, "append") {
				if obj != nil {
					if _, seen := tainted[obj]; !seen {
						tainted[obj] = as.Pos()
					}
					continue
				}
			}
		}
		name := "expression"
		if obj != nil {
			name = obj.Name()
		}
		pass.Reportf(as.Pos(), "%s assignment to outer %q under map iteration: last-writer order follows randomized map order", as.Tok, name)
	}
}

// callViolation reports why a call inside a map-range body is order-sensitive
// ("" when it is acceptable).
func callViolation(pass *analysis.Pass, call *ast.CallExpr, local func(types.Object) bool) string {
	// Type conversions are values, not effects.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return ""
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := pass.ObjectOf(fun)
		if _, ok := obj.(*types.Builtin); ok {
			if pureBuiltin[fun.Name] {
				return ""
			}
			return "builtin " + fun.Name
		}
		if local(obj) {
			return "" // calling a loop-local func value: scoped to the element
		}
		return "function call " + fun.Name
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			// Methods on the loop element only touch per-element state.
			if local(rootObject(pass, fun.X)) {
				return ""
			}
			return "method call " + fun.Sel.Name
		}
		// Package-qualified function.
		return "function call " + fun.Sel.Name
	case *ast.FuncLit:
		return "function literal call"
	}
	return "call"
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.ObjectOf(id).(*types.Builtin)
	return ok
}

// sortedAfter reports whether some statement in rest passes obj to a
// sort.* or slices.* call.
func sortedAfter(pass *analysis.Pass, rest []ast.Stmt, obj types.Object) bool {
	found := false
	for _, s := range rest {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			if pn, ok := pass.ObjectOf(pkgID).(*types.PkgName); !ok ||
				(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if rootObject(pass, arg) == obj {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// rootObject resolves the base identifier of a selector/index/deref chain.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}
