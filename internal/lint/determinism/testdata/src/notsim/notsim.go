// Fixture for the determinism analyzer: the package name is outside the
// simulation boundary, so nothing here is flagged.
package notsim

import (
	"math/rand"
	"time"
)

func Wall() int64 { return time.Now().Unix() }

func Roll() int { return rand.Intn(6) }

func Spawn(fn func()) { go fn() }
