// Fixture for the determinism analyzer: the package is named "sim", so it is
// inside the simulation boundary and every rule applies.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

type state struct {
	order []int
	last  int
}

func wallClock() int64 {
	return time.Now().Unix() // want `wall-clock read time\.Now`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time\.Since`
}

func globalRand() int {
	return rand.Intn(4) // want `global math/rand state`
}

func instanceRandOK(r *rand.Rand) int {
	return r.Intn(4) // methods on an instance are seeded per component: fine
}

func spawn(fn func()) {
	go fn() // want `goroutine spawned in simulation package`
}

func unsortedAppend(m map[int]int, s *state) {
	for k := range m {
		s.order = append(s.order, k) // want `append to "s" under map iteration without a following sort`
	}
}

func collectThenSortOK(m map[int]int, s *state) {
	for k := range m {
		s.order = append(s.order, k)
	}
	sort.Ints(s.order)
}

func commutativeFoldOK(m map[int]uint64) uint64 {
	var total uint64
	for _, v := range m {
		total += v
	}
	return total
}

func lastWriter(m map[int]int, s *state) {
	for _, v := range m {
		s.last = v // want `= assignment to outer "s" under map iteration`
	}
}

func sendAll(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want `channel send under map iteration`
	}
}

type sink struct{ n int }

func (s *sink) push(v int) { s.n += v }

func pushAll(m map[int]int, s *sink) {
	for k := range m {
		s.push(k) // want `method call push under map iteration`
	}
}

func suppressedOK(m map[int]int, s *sink) {
	//ndplint:ordered push folds into a commutative sum; order cannot escape
	for k := range m {
		s.push(k)
	}
}

func perElementOK(m map[int]*sink) {
	for _, v := range m {
		v.push(1) // receiver is the loop element: per-element state only
	}
}

func reindexOK(src, dst map[int]int) {
	for k, v := range src {
		dst[k] = v // one write per key: order-insensitive
	}
}
