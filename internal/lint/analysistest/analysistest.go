// Package analysistest runs an ndplint analyzer over a fixture package and
// checks its diagnostics against `// want "regexp"` comments, mirroring
// x/tools/go/analysis/analysistest on the in-repo mini framework.
//
// Fixtures live under the analyzer's testdata/src/<pkg>/ directory (the
// testdata prefix keeps the go tool from building them). Each expected
// diagnostic is declared on the line it fires:
//
//	rand.Intn(4) // want `global math/rand`
//
// A line may carry several quoted patterns for several diagnostics. Lines
// that produce diagnostics without a matching want, and wants that match no
// diagnostic, both fail the test.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ndpbridge/internal/lint/analysis"
	"ndpbridge/internal/lint/load"
)

// wantRe extracts the quoted or backquoted patterns of a want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package rooted at dir, applies a, and reports any
// mismatch between produced diagnostics and want comments via t.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := load.Dir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	wants := collectWants(t, pkg)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !consume(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, w.file, w.line, w.pattern)
		}
	}
}

// RunGlobal loads one fixture package per dir, applies the whole-program
// analyzer a over all of them at once, and reports any mismatch between
// produced diagnostics and want comments via t.
func RunGlobal(t *testing.T, a *analysis.GlobalAnalyzer, dirs ...string) {
	t.Helper()
	var units []*analysis.Unit
	var wants []*want
	for _, dir := range dirs {
		pkg, err := load.Dir(dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", dir, err)
		}
		units = append(units, &analysis.Unit{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, TypesInfo: pkg.Info})
		wants = append(wants, collectWants(t, pkg)...)
	}

	type gdiag struct {
		u *analysis.Unit
		d analysis.Diagnostic
	}
	var diags []gdiag
	pass := &analysis.GlobalPass{
		Analyzer: a,
		Units:    units,
		Report:   func(u *analysis.Unit, d analysis.Diagnostic) { diags = append(diags, gdiag{u, d}) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", a.Name, err)
	}

	for _, g := range diags {
		pos := g.u.Fset.Position(g.d.Pos)
		if !consume(wants, pos.Filename, pos.Line, g.d.Message) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, pos.Filename, pos.Line, g.d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, w.file, w.line, w.pattern)
		}
	}
}

// collectWants parses every want comment in the fixture.
func collectWants(t *testing.T, pkg *load.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantRe.FindAllString(text, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, q := range quoted {
					pat, err := unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}

// consume marks the first unmatched want on (file, line) whose pattern
// matches msg.
func consume(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
