// Package load turns Go packages into type-checked syntax for ndplint's
// analyzers without any dependency beyond the standard library and the go
// tool itself.
//
// Mechanics: `go list -export -deps -json` resolves the package graph and —
// crucially — compiles export data for every dependency into the build
// cache. Target packages are then parsed from source and type-checked with
// go/types, resolving imports through go/importer's gc reader pointed at
// those export files. This is the same shape as x/tools/go/packages
// (LoadSyntax for targets, export data for deps), reimplemented on the
// standard library so the linter works in hermetic builds.
package load

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"strconv"
)

// Package is one type-checked target package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// Fingerprint identifies the package's analysis-relevant content: its
	// own source bytes plus the export data of every transitive dependency.
	// Two loads with equal fingerprints see identical types and syntax, so
	// cached findings can be replayed.
	Fingerprint string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Deps       []string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over args and decodes the
// JSON stream.
func goList(dir string, args []string) ([]*listPkg, error) {
	cmdArgs := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Deps,DepOnly,Incomplete,Error",
	}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the importer callback resolving import paths to export
// data files.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Packages loads and type-checks the non-test source of every package
// matching patterns (e.g. "./..."), resolved relative to dir.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	byPath := make(map[string]*listPkg, len(listed))
	for _, p := range listed {
		byPath[p.ImportPath] = p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
			registerBaseExport(exports, p)
		}
	}

	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || len(lp.GoFiles) == 0 {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []string
		for _, g := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, g))
		}
		pkg, err := check(lp.ImportPath, lp.Dir, files, exports)
		if err != nil {
			return nil, err
		}
		pkg.Fingerprint = fingerprint(files, lp, byPath)
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// Dir loads the single package formed by every .go file directly inside dir
// (fixture layout: no go list metadata, imports restricted to what the
// surrounding module can resolve — in practice the standard library).
func Dir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	sort.Strings(files)

	// Parse first to learn the import set, then ask the go tool for export
	// data of exactly those packages (plus their deps).
	fset := token.NewFileSet()
	var syntax []*ast.File
	imports := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
		for _, imp := range af.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(dir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
				registerBaseExport(exports, p)
			}
		}
	}
	return checkParsed(filepath.Base(dir), dir, fset, syntax, exports)
}

// registerBaseExport also indexes a build-variant package under its plain
// import path. When a main package carries a PGO profile (default.pgo), `go
// list -export -deps` reports its dependencies as variants like
// "runtime/pprof [module/cmd/tool]"; if that is the only build of the
// package in the listing, a source import of "runtime/pprof" would
// otherwise find no export data. Any variant's export data type-checks
// identically (PGO changes optimization, not API), so first-wins is fine.
func registerBaseExport(exports map[string]string, p *listPkg) {
	i := strings.IndexByte(p.ImportPath, ' ')
	if i <= 0 {
		return
	}
	base := p.ImportPath[:i]
	if _, ok := exports[base]; !ok {
		exports[base] = p.Export
	}
}

// check parses files and type-checks them as one package.
func check(pkgPath, dir string, files []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	return checkParsed(pkgPath, dir, fset, syntax, exports)
}

func checkParsed(pkgPath, dir string, fset *token.FileSet, syntax []*ast.File, exports map[string]string) (*Package, error) {
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", exportLookup(exports)),
	}
	info := newInfo()
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   syntax,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// fingerprint hashes the package's own file contents and the export-data
// identities of its transitive dependencies. Export files live in the build
// cache under content-derived names, so the basename stands in for a hash of
// the dependency's ABI.
func fingerprint(files []string, lp *listPkg, byPath map[string]*listPkg) string {
	h := sha256.New()
	fmt.Fprintf(h, "pkg %s\n", lp.ImportPath)
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(h, "unreadable %s %v\n", f, err)
			continue
		}
		fmt.Fprintf(h, "file %s %x\n", filepath.Base(f), sha256.Sum256(b))
	}
	deps := append([]string(nil), lp.Deps...)
	sort.Strings(deps)
	for _, d := range deps {
		if dp := byPath[d]; dp != nil && dp.Export != "" {
			fmt.Fprintf(h, "dep %s %s\n", d, filepath.Base(dp.Export))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
