// Package directive parses `//ndplint:<verb> <justification>` comments —
// the suppression and tagging protocol shared by every ndplint analyzer.
//
// Directives follow the Go toolchain's directive convention: no space after
// `//`, so gofmt leaves them alone. The recognized verbs are:
//
//	//ndplint:hotpath             tag: function below must be allocation-free
//	//ndplint:ordered <why>       suppress: map iteration here is order-safe
//	//ndplint:alloc <why>         suppress: this allocation in a hot path is accepted
//	//ndplint:nosnap <why>        suppress: this field is deliberately not snapshotted
//	//ndplint:domain(<d>) [why]   declare: the struct below belongs to ownership domain <d>
//	//ndplint:seam <why>          declare: the function below is a sanctioned cross-domain seam
//	//ndplint:crossdomain <why>   suppress: this cross-domain access is accepted
//
// Suppression verbs require a non-empty justification; the directives
// analyzer rejects bare suppressions and unknown verbs so the suppression
// inventory stays auditable (`ndplint -list-suppressions`). The shardcheck
// declarations (domain, seam) are part of that audited inventory too — a new
// seam or ownership claim is reviewable state, exactly like a suppression —
// so they are listed alongside suppressions even though domain needs no
// justification beyond its argument.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

const prefix = "//ndplint:"

// Verbs that tag code for an analyzer rather than silence one, and so need
// no justification. domain carries its meaning in the argument; seam demands
// a justification (it widens the sanctioned cross-domain surface) and is
// checked separately by the directives analyzer.
var tagVerbs = map[string]bool{"hotpath": true, "domain": true, "seam": true}

// listedTags names tag verbs that still appear in the -list-suppressions
// inventory: ownership declarations are auditable state, hotpath tags are not
// (they tighten checking rather than relax it).
var listedTags = map[string]bool{"domain": true, "seam": true}

// Known is the set of all recognized verbs.
var Known = map[string]bool{
	"hotpath":     true,
	"ordered":     true,
	"alloc":       true,
	"nosnap":      true,
	"domain":      true,
	"seam":        true,
	"crossdomain": true,
}

// Directive is one parsed ndplint comment.
type Directive struct {
	Verb string
	// Arg is the parenthesized argument of verbs written as verb(arg),
	// e.g. "unit" for //ndplint:domain(unit). Empty for plain verbs.
	Arg           string
	Justification string
	Pos           token.Pos
	// Line is the 1-based source line the comment sits on.
	Line int
	File string
}

// IsTag reports whether the directive tags code (vs. suppressing a finding).
func (d Directive) IsTag() bool { return tagVerbs[d.Verb] }

// Listed reports whether the directive belongs in the audited inventory
// printed by -list-suppressions: every suppression, plus the ownership
// declarations (domain, seam).
func (d Directive) Listed() bool { return !d.IsTag() || listedTags[d.Verb] }

// Display renders the directive's verb with its argument, as written.
func (d Directive) Display() string {
	if d.Arg != "" {
		return d.Verb + "(" + d.Arg + ")"
	}
	return d.Verb
}

// Map indexes a package's directives by file and line.
type Map struct {
	byLine map[string]map[int][]Directive
	all    []Directive
}

// Parse collects every ndplint directive in files.
func Parse(fset *token.FileSet, files []*ast.File) *Map {
	m := &Map{byLine: make(map[string]map[int][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, prefix)
				verb, just, _ := strings.Cut(rest, " ")
				var arg string
				if i := strings.IndexByte(verb, '('); i >= 0 && strings.HasSuffix(verb, ")") {
					arg = verb[i+1 : len(verb)-1]
					verb = verb[:i]
				}
				pos := fset.Position(c.Pos())
				d := Directive{
					Verb:          verb,
					Arg:           arg,
					Justification: strings.TrimSpace(just),
					Pos:           c.Pos(),
					Line:          pos.Line,
					File:          pos.Filename,
				}
				lines := m.byLine[d.File]
				if lines == nil {
					lines = make(map[int][]Directive)
					m.byLine[d.File] = lines
				}
				lines[d.Line] = append(lines[d.Line], d)
				m.all = append(m.all, d)
			}
		}
	}
	return m
}

// At returns the directive with the given verb that governs the code at pos:
// a directive on the same source line (trailing comment) or on the line
// directly above. It returns nil when none applies.
func (m *Map) At(fset *token.FileSet, pos token.Pos, verb string) *Directive {
	p := fset.Position(pos)
	lines := m.byLine[p.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for i := range lines[line] {
			if lines[line][i].Verb == verb {
				return &lines[line][i]
			}
		}
	}
	return nil
}

// All returns every directive in the package, in encounter order.
func (m *Map) All() []Directive {
	return m.all
}
