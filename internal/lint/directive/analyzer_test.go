package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"ndpbridge/internal/lint/analysis"
	"ndpbridge/internal/lint/analysistest"
	"ndpbridge/internal/lint/directive"
)

// runOn applies the directives analyzer to one source string. The analyzer
// only consults syntax, so no type checking is needed.
func runOn(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var msgs []string
	pass := &analysis.Pass{
		Analyzer: directive.Analyzer,
		Fset:     fset,
		Files:    []*ast.File{f},
	}
	pass.Report = func(d analysis.Diagnostic) { msgs = append(msgs, d.Message) }
	if err := directive.Analyzer.Run(pass); err != nil {
		t.Fatalf("run: %v", err)
	}
	return msgs
}

func TestUnknownVerb(t *testing.T) {
	msgs := runOn(t, "package p\n\ntype s struct {\n\ta int //ndplint:nosnpa typo\n}\n")
	if len(msgs) != 1 || !strings.Contains(msgs[0], `unknown ndplint directive verb "nosnpa"`) {
		t.Fatalf("got %q, want one unknown-verb diagnostic", msgs)
	}
}

func TestSuppressionWithoutJustification(t *testing.T) {
	msgs := runOn(t, "package p\n\ntype s struct {\n\ta int //ndplint:nosnap\n}\n")
	if len(msgs) != 1 || !strings.Contains(msgs[0], "without a justification") {
		t.Fatalf("got %q, want one missing-justification diagnostic", msgs)
	}
}

func TestTagNeedsNoJustification(t *testing.T) {
	if msgs := runOn(t, "package p\n\n//ndplint:hotpath\nfunc f() {}\n"); len(msgs) != 0 {
		t.Fatalf("got %q, want no diagnostics", msgs)
	}
}

func TestDomainWithoutArgument(t *testing.T) {
	msgs := runOn(t, "package p\n\n//ndplint:domain\ntype s struct{ a int }\n")
	if len(msgs) != 1 || !strings.Contains(msgs[0], "without a domain argument") {
		t.Fatalf("got %q, want one missing-argument diagnostic", msgs)
	}
}

func TestDomainWithArgumentIsClean(t *testing.T) {
	if msgs := runOn(t, "package p\n\n//ndplint:domain(unit)\ntype s struct{ a int }\n"); len(msgs) != 0 {
		t.Fatalf("got %q, want no diagnostics", msgs)
	}
}

func TestSeamWithoutJustification(t *testing.T) {
	msgs := runOn(t, "package p\n\n//ndplint:seam\nfunc f() {}\n")
	if len(msgs) != 1 || !strings.Contains(msgs[0], "ndplint:seam without a justification") {
		t.Fatalf("got %q, want one missing-justification diagnostic", msgs)
	}
}

func TestArgumentOnNonDomainVerb(t *testing.T) {
	msgs := runOn(t, "package p\n\n//ndplint:seam(unit) why\nfunc f() {}\n")
	if len(msgs) != 1 || !strings.Contains(msgs[0], "does not take a parenthesized argument") {
		t.Fatalf("got %q, want one stray-argument diagnostic", msgs)
	}
}

func TestCleanFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/dirs", directive.Analyzer)
}
