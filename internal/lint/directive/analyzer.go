package directive

import (
	"ndpbridge/internal/lint/analysis"
)

// Analyzer audits the directives themselves: unknown verbs are typos that
// would silently fail to suppress anything, and suppression verbs without a
// justification defeat the audited-suppression protocol.
var Analyzer = &analysis.Analyzer{
	Name:    "directives",
	Doc:     "ndplint directives must use known verbs, and suppressions must carry a justification",
	Version: 1,
	Run: func(pass *analysis.Pass) error {
		m := Parse(pass.Fset, pass.Files)
		for _, d := range m.All() {
			if !Known[d.Verb] {
				pass.Reportf(d.Pos, "unknown ndplint directive verb %q (known: alloc, hotpath, nosnap, ordered)", d.Verb)
				continue
			}
			if !d.IsTag() && d.Justification == "" {
				pass.Reportf(d.Pos, "ndplint:%s suppression without a justification: write //ndplint:%s <why this is safe>", d.Verb, d.Verb)
			}
		}
		return nil
	},
}
