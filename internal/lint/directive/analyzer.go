package directive

import (
	"ndpbridge/internal/lint/analysis"
)

// Analyzer audits the directives themselves: unknown verbs are typos that
// would silently fail to suppress anything, suppression verbs without a
// justification defeat the audited-suppression protocol, domain declarations
// need their domain argument, and seams — the sanctioned cross-domain
// surface — must say why they are safe to cross.
var Analyzer = &analysis.Analyzer{
	Name:    "directives",
	Doc:     "ndplint directives must use known verbs, and suppressions must carry a justification",
	Version: 2,
	Run: func(pass *analysis.Pass) error {
		m := Parse(pass.Fset, pass.Files)
		for _, d := range m.All() {
			if !Known[d.Verb] {
				pass.Reportf(d.Pos, "unknown ndplint directive verb %q (known: alloc, crossdomain, domain, hotpath, nosnap, ordered, seam)", d.Verb)
				continue
			}
			switch {
			case !d.IsTag() && d.Justification == "":
				pass.Reportf(d.Pos, "ndplint:%s suppression without a justification: write //ndplint:%s <why this is safe>", d.Verb, d.Verb)
			case d.Verb == "domain" && d.Arg == "":
				pass.Reportf(d.Pos, "ndplint:domain without a domain argument: write //ndplint:domain(<domain>)")
			case d.Verb == "seam" && d.Justification == "":
				pass.Reportf(d.Pos, "ndplint:seam without a justification: write //ndplint:seam <why this crossing is sanctioned>")
			case d.Verb != "domain" && d.Arg != "":
				pass.Reportf(d.Pos, "ndplint:%s does not take a parenthesized argument", d.Verb)
			}
		}
		return nil
	},
}
