// Fixture for the directives analyzer: every directive here is well-formed,
// so the analyzer reports nothing. (Malformed directives fire on the
// directive comment's own line, where a want comment cannot sit; those cases
// are covered by the unit tests in analyzer_test.go.)
package dirs

type t struct {
	a int //ndplint:nosnap rebuilt from config at construction
	//ndplint:nosnap derived; recomputed on restore
	b int
}

//ndplint:hotpath
func tagOK(x *t) int { return x.a }

func sum(m map[int]int) int {
	total := 0
	//ndplint:ordered commutative fold, order cannot escape
	for _, v := range m {
		total += v
	}
	return total
}

//ndplint:domain(perowner)
type owned struct {
	n int
}

//ndplint:seam boundary crossing sanctioned for the fixture
func cross(o *owned) { o.n++ }
