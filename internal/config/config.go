// Package config defines the NDPBridge system configuration: the DRAM
// geometry, timing and energy constants of Table I, the evaluated designs of
// Table II, and the knobs swept by the paper's sensitivity studies
// (Figures 14–16).
package config

import (
	"errors"
	"fmt"
)

// Design selects which of the evaluated systems (Table II plus the two
// alternative architectures of Figure 11) to simulate.
type Design int

const (
	// DesignC forwards all cross-unit messages through the host CPU and
	// applies no load balancing — the execution model of existing
	// DRAM-bank NDP products.
	DesignC Design = iota
	// DesignB uses the NDPBridge hardware bridges for communication, but
	// no load balancing.
	DesignB
	// DesignW uses bridges plus traditional work stealing (with workload
	// correction) for load balancing.
	DesignW
	// DesignO is full NDPBridge: bridges plus data-transfer-aware load
	// balancing (in-advance scheduling, fine-grained stealing, hot-data
	// selection).
	DesignO
	// DesignH is the non-NDP host-only baseline: 16 out-of-order cores
	// share two DDR channels and steal tasks freely.
	DesignH
	// DesignR uses RowClone for intra-chip cross-bank transfers; messages
	// crossing chips fall back to host forwarding as in DesignC.
	DesignR
)

var designNames = map[Design]string{
	DesignC: "C", DesignB: "B", DesignW: "W",
	DesignO: "O", DesignH: "H", DesignR: "R",
}

func (d Design) String() string {
	if s, ok := designNames[d]; ok {
		return s
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// ParseDesign converts a one-letter design name to a Design.
func ParseDesign(s string) (Design, error) {
	for d, name := range designNames {
		if s == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("config: unknown design %q (want C, B, W, O, H, or R)", s)
}

// UsesBridges reports whether the design routes messages through the
// NDPBridge hardware bridges.
func (d Design) UsesBridges() bool { return d == DesignB || d == DesignW || d == DesignO }

// LoadBalancing reports whether the design performs dynamic load balancing.
func (d Design) LoadBalancing() bool { return d == DesignW || d == DesignO }

// Geometry describes the DRAM organization. One NDP unit is attached to each
// bank, so Units() = Channels × RanksPerChannel × ChipsPerRank × BanksPerChip.
type Geometry struct {
	Channels        int
	RanksPerChannel int
	ChipsPerRank    int
	BanksPerChip    int
	BankBytes       uint64 // per-bank DRAM capacity
}

// Units returns the total number of NDP units (banks) in the system.
func (g Geometry) Units() int {
	return g.Channels * g.RanksPerChannel * g.ChipsPerRank * g.BanksPerChip
}

// UnitsPerRank returns the number of NDP units under one level-1 bridge.
func (g Geometry) UnitsPerRank() int { return g.ChipsPerRank * g.BanksPerChip }

// Ranks returns the total number of ranks (level-1 bridges).
func (g Geometry) Ranks() int { return g.Channels * g.RanksPerChannel }

// Timing holds latency and bandwidth constants, all expressed in NDP-core
// cycles (400 MHz ⇒ 2.5 ns per cycle) and bytes per core cycle.
type Timing struct {
	TRCD Cycles // ACTIVATE to column command, 17 ns
	TCAS Cycles // column command to data, 17 ns
	TRP  Cycles // PRECHARGE, 17 ns

	// ChipDQBytesPerCycle is the per-chip DQ bandwidth between an NDP
	// unit's bank and the level-1 bridge (x8 @ 2400 MT/s = 6 B/cycle).
	ChipDQBytesPerCycle uint64
	// ChannelBytesPerCycle is the 64-bit channel / rank-internal bus
	// bandwidth (2400 MT/s × 64 bits = 48 B/cycle).
	ChannelBytesPerCycle uint64

	// BankRowBytes is the DRAM row size used for row-buffer hit modeling.
	BankRowBytes uint64

	// TREFI is the refresh interval (7.8 µs ⇒ 3120 cycles) and TRFC the
	// refresh cycle time (~350 ns ⇒ 140 cycles) during which the bank is
	// unavailable. Zero disables refresh modeling.
	TREFI Cycles
	TRFC  Cycles

	// HostForwardOverhead is the fixed host software cost to receive,
	// examine and re-inject one message batch when the host CPU forwards
	// cross-unit traffic (designs C and R, and the level-2 software
	// bridge).
	HostForwardOverhead Cycles

	// HostBatchBytes is the largest chunk the host software moves per
	// channel transaction. The level-2 bridge reads full batches from the
	// level-1 mailboxes; host forwarding in design C rarely finds a full
	// batch in a single unit's mailbox, which is exactly its handicap.
	HostBatchBytes uint64

	// RowCloneCopy is the latency of one intra-chip RowClone bulk row copy
	// (two back-to-back ACTIVATEs ≈ 80 ns ⇒ 32 cycles).
	RowCloneCopy Cycles
}

// Cycles aliases sim time to avoid importing the sim package here.
type Cycles = uint64

// Energy holds the energy model constants (picojoules / milliwatts).
type Energy struct {
	DRAMAccessPJPer64b float64 // 150 pJ per 64-bit DRAM read/write
	CorePowerMW        float64 // 10 mW active power per wimpy core
	SRAMAccessPJ       float64 // per SRAM (cache/metadata) access
	ChannelPJPerByte   float64 // off-chip channel transfer energy
	StaticMWPerUnit    float64 // static power per NDP unit incl. periphery
}

// LoadBalance groups the software scheduling knobs of Section VI.
type LoadBalance struct {
	// Adv enables in-advance scheduling (hide transfer latency): load
	// balancing starts when W_queue drops below W_th instead of at empty.
	Adv bool
	// Fine enables fine-grained stealing (avoid congestion): transfer
	// only StealFactor × W_th per round instead of half the victim queue.
	Fine bool
	// Hot enables hot-data selection (reduce traffic): pick sketch-tracked
	// hot blocks and their reserved tasks first.
	Hot bool
	// StealFactor multiplies W_th to set the fine-grained steal amount.
	StealFactor int
	// Correction enables the toArrive workload correction (applied to W
	// too, per Section VII).
	Correction bool
}

// Sketch configures the HeavyGuardian-style hot-data sketch.
type Sketch struct {
	Buckets        int
	EntriesPerBkt  int
	DecayBase      float64 // b in P = b^-count, 1.08 per HeavyGuardian
	ReservedChunks int     // reserved-queue chunks per unit
}

// Metadata configures the migration-tracking structures.
type Metadata struct {
	UnitBorrowedEntries   int // entries in the per-unit dataBorrowed table
	UnitBorrowedWays      int
	BridgeBorrowedEntries int // entries in the per-bridge dataBorrowed table
	BridgeBorrowedWays    int
	BorrowedRegionBytes   uint64 // in-DRAM borrowed data region per unit
}

// Buffers configures bridge and unit SRAM buffering.
type Buffers struct {
	MailboxBytes       uint64 // per-unit in-DRAM mailbox region
	ScatterBufBytes    uint64 // per-child scatter buffer in the bridge
	BridgeMailboxBytes uint64 // bridge's own up-level mailbox
	BackupBufBytes     uint64 // bridge backup buffer
}

// Retry configures the fault-tolerant link-layer retry protocol the bridges
// run when fault injection is active. A run without an attached fault plan
// never consults these knobs.
type Retry struct {
	// BufBytes is the per-hop retransmit buffer watermark: when unacked
	// bytes exceed it, the sender stops admitting new traffic to the hop
	// (backpressure).
	BufBytes uint64
	// Timeout is the initial retransmission timeout in cycles.
	Timeout Cycles
	// BackoffCap bounds the exponential backoff of the retransmission
	// timeout.
	BackoffCap Cycles
}

// Trigger selects the communication triggering policy of Section V-C.
type Trigger int

const (
	// TriggerDynamic is the paper's policy: gather immediately when a
	// mailbox exceeds G_xfer, at I_min when there are idle children, and
	// never when mailboxes are empty.
	TriggerDynamic Trigger = iota
	// TriggerFixedIMin gathers unconditionally every I_min.
	TriggerFixedIMin
	// TriggerFixed2IMin gathers unconditionally every 2×I_min.
	TriggerFixed2IMin
)

func (t Trigger) String() string {
	switch t {
	case TriggerDynamic:
		return "dynamic"
	case TriggerFixedIMin:
		return "fixed-Imin"
	case TriggerFixed2IMin:
		return "fixed-2Imin"
	}
	return fmt.Sprintf("Trigger(%d)", int(t))
}

// Level2Transport selects how the level-2 bridge moves cross-rank messages
// (Section V-A): through the host CPU over the existing DDR channels (the
// paper's evaluated configuration), over DIMM-Link-style peer-to-peer links
// between the DIMMs, or over an ABC-DIMM-style shared broadcast bus. The
// paper notes NDPBridge is orthogonal to these inter-DIMM designs; the
// variants let that claim be measured.
type Level2Transport int

const (
	// L2Host is the paper's default: a host software runtime on the DDR
	// channels, paying a per-batch forwarding overhead.
	L2Host Level2Transport = iota
	// L2DIMMLink gives each DIMM a dedicated external link (DIMM-Link):
	// no host involvement, higher bandwidth, small port latency.
	L2DIMMLink
	// L2ABCDIMM connects the DIMMs with one shared broadcast bus
	// (ABC-DIMM): no host involvement, but all cross-rank traffic
	// serializes on the single bus.
	L2ABCDIMM
)

func (t Level2Transport) String() string {
	switch t {
	case L2Host:
		return "host"
	case L2DIMMLink:
		return "dimm-link"
	case L2ABCDIMM:
		return "abc-dimm"
	}
	return fmt.Sprintf("Level2Transport(%d)", int(t))
}

// Host configures the host CPU used for design H and for host forwarding.
type Host struct {
	Cores     int
	ClockGHz  float64
	IPCFactor float64 // effective speedup per core cycle vs NDP in-order
	LLCBytes  uint64
	LLCHitPct float64 // fraction of task data accesses served by the LLC
	// DispatchCost is the per-task shared-queue pop and dispatch cost in
	// NDP-core cycles.
	DispatchCost Cycles
	// RandomAccessBW is the host's effective per-channel bandwidth for
	// random 64-byte accesses, in bytes per cycle — far below the 48 B/c
	// streaming peak because of row misses and access amplification.
	RandomAccessBW uint64
}

// Config is the complete system configuration. Construct with Default and
// modify, then Validate before use.
type Config struct {
	Design   Design
	Geometry Geometry
	Timing   Timing
	Energy   Energy

	GXfer      uint64 // gather/scatter and load-balance granularity (bytes)
	IState     Cycles // state-gather period
	MaxMsgSize int    // maximum single message size (bytes)

	LoadBalance LoadBalance
	Sketch      Sketch
	Metadata    Metadata
	Buffers     Buffers
	Retry       Retry
	Trigger     Trigger
	Host        Host

	// Level2 selects the cross-rank transport (default: host runtime).
	Level2 Level2Transport
	// DIMMLinkBytesPerCycle is the per-DIMM external link bandwidth when
	// Level2 is L2DIMMLink (≈25 GB/s ⇒ 64 B/cycle).
	DIMMLinkBytesPerCycle uint64

	// SplitDIMMBuffer models the chameleon-s split data-buffer DIMM: a
	// fraction of each chip's DQ pins is multiplexed for C/A dispatch,
	// reducing unit↔bridge data bandwidth (Section V-A / VIII-A).
	SplitDIMMBuffer bool
	// SplitDQCAPins is how many of the chip DQ pins are dedicated to C/A
	// when SplitDIMMBuffer is set (chameleon-s best: 2 of 8).
	SplitDQCAPins int

	Seed uint64
}

// Default returns the Table I configuration: 2 channels × 4 ranks × 8 chips
// × 8 banks = 512 units, 64 MB per bank, DDR4-2400 timing, design O.
func Default() Config {
	return Config{
		Design: DesignO,
		Geometry: Geometry{
			Channels:        2,
			RanksPerChannel: 4,
			ChipsPerRank:    8,
			BanksPerChip:    8,
			BankBytes:       64 << 20,
		},
		Timing: Timing{
			TRCD:                 7, // ceil(17 ns / 2.5 ns)
			TCAS:                 7,
			TRP:                  7,
			ChipDQBytesPerCycle:  6,  // x8 @ 2400 MT/s
			ChannelBytesPerCycle: 48, // 64-bit @ 2400 MT/s
			BankRowBytes:         8192,
			TREFI:                3120,
			TRFC:                 140,
			HostForwardOverhead:  24, // ~60 ns software path per transaction
			HostBatchBytes:       2048,
			RowCloneCopy:         32, // ~80 ns
		},
		Energy: Energy{
			DRAMAccessPJPer64b: 150,
			CorePowerMW:        10,
			SRAMAccessPJ:       5,
			ChannelPJPerByte:   20,
			StaticMWPerUnit:    2,
		},
		GXfer:      256,
		IState:     2000,
		MaxMsgSize: 64,
		LoadBalance: LoadBalance{
			Adv: true, Fine: true, Hot: true,
			StealFactor: 2, Correction: true,
		},
		Sketch: Sketch{
			Buckets: 16, EntriesPerBkt: 16,
			DecayBase: 1.08, ReservedChunks: 1280,
		},
		Metadata: Metadata{
			UnitBorrowedEntries:   1024, // 16 kB, 8-way
			UnitBorrowedWays:      8,
			BridgeBorrowedEntries: 65536, // 1 MB, 16-way
			BridgeBorrowedWays:    16,
			BorrowedRegionBytes:   1 << 20,
		},
		Buffers: Buffers{
			MailboxBytes:       1 << 20,
			ScatterBufBytes:    1 << 10,
			BridgeMailboxBytes: 128 << 10,
			BackupBufBytes:     64 << 10,
		},
		Retry: Retry{
			BufBytes:   4 << 10,
			Timeout:    4096,
			BackoffCap: 1 << 16,
		},
		Trigger: TriggerDynamic,
		Host: Host{
			Cores:          16,
			ClockGHz:       2.6,
			IPCFactor:      6.5, // 2.6 GHz OoO vs 400 MHz in-order, pointer-chasing IPC
			LLCBytes:       20 << 20,
			LLCHitPct:      0.35,
			DispatchCost:   24, // shared task-pool pop + dispatch, ~60 ns
			RandomAccessBW: 12, // ~25% of streaming peak on random 64 B
		},
		SplitDQCAPins:         2,
		DIMMLinkBytesPerCycle: 64,
		Seed:                  1,
	}
}

// WithDesign returns a copy of c with the design replaced and the
// load-balancing switches set to match Table II.
func (c Config) WithDesign(d Design) Config {
	c.Design = d
	switch d {
	case DesignW:
		c.LoadBalance.Adv = false
		c.LoadBalance.Fine = false
		c.LoadBalance.Hot = false
		c.LoadBalance.Correction = true
	case DesignO:
		c.LoadBalance.Adv = true
		c.LoadBalance.Fine = true
		c.LoadBalance.Hot = true
		c.LoadBalance.Correction = true
	}
	return c
}

// WithUnits returns a copy of c scaled to n units by varying the number of
// ranks (64 units per rank, as in Figure 12). n must be a multiple of 64.
func (c Config) WithUnits(n int) (Config, error) {
	perRank := c.Geometry.UnitsPerRank()
	if perRank == 0 || n%perRank != 0 {
		return c, fmt.Errorf("config: %d units is not a multiple of %d units/rank", n, perRank)
	}
	ranks := n / perRank
	switch {
	case ranks <= 0:
		return c, fmt.Errorf("config: need at least one rank")
	case ranks == 1:
		c.Geometry.Channels = 1
		c.Geometry.RanksPerChannel = 1
	case ranks%2 == 0:
		c.Geometry.Channels = 2
		c.Geometry.RanksPerChannel = ranks / 2
	default:
		c.Geometry.Channels = 1
		c.Geometry.RanksPerChannel = ranks
	}
	return c, nil
}

// WithDQWidth returns a copy of c reconfigured for x4/x8/x16 DRAM chips while
// keeping the 64-bit channel and the rank count (Figure 15): x4 ⇒ 16
// chips/rank at 3 B/cycle each, x16 ⇒ 4 chips/rank at 12 B/cycle.
func (c Config) WithDQWidth(bits int) (Config, error) {
	switch bits {
	case 4:
		c.Geometry.ChipsPerRank = 16
		c.Timing.ChipDQBytesPerCycle = 3
	case 8:
		c.Geometry.ChipsPerRank = 8
		c.Timing.ChipDQBytesPerCycle = 6
	case 16:
		c.Geometry.ChipsPerRank = 4
		c.Timing.ChipDQBytesPerCycle = 12
	default:
		return c, fmt.Errorf("config: unsupported DQ width x%d (want 4, 8 or 16)", bits)
	}
	return c, nil
}

// pow2 reports whether n is a positive power of two.
func pow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Validate checks internal consistency. It is the construction-time gate:
// every violation it catches would otherwise surface as a panic or silent
// misbehaviour deep inside core.New or the bridges.
func (c Config) Validate() error {
	g := c.Geometry
	if g.Channels <= 0 || g.RanksPerChannel <= 0 || g.ChipsPerRank <= 0 || g.BanksPerChip <= 0 {
		return errors.New("config: geometry dimensions must be positive")
	}
	if !pow2(g.Channels) || !pow2(g.RanksPerChannel) || !pow2(g.ChipsPerRank) || !pow2(g.BanksPerChip) {
		return fmt.Errorf("config: geometry dimensions must be powers of two (channels=%d ranks=%d chips=%d banks=%d)",
			g.Channels, g.RanksPerChannel, g.ChipsPerRank, g.BanksPerChip)
	}
	if g.BankBytes == 0 || g.BankBytes&(g.BankBytes-1) != 0 {
		return errors.New("config: BankBytes must be a power of two")
	}
	if c.GXfer == 0 || c.GXfer%uint64(c.MaxMsgSize) != 0 {
		return fmt.Errorf("config: GXfer (%d) must be a positive multiple of MaxMsgSize (%d)", c.GXfer, c.MaxMsgSize)
	}
	if c.MaxMsgSize <= 0 {
		return errors.New("config: MaxMsgSize must be positive")
	}
	if c.IState == 0 {
		return errors.New("config: IState must be positive")
	}
	if c.Timing.ChipDQBytesPerCycle == 0 || c.Timing.ChannelBytesPerCycle == 0 {
		return errors.New("config: link bandwidths must be positive")
	}
	if c.Sketch.Buckets <= 0 || c.Sketch.EntriesPerBkt <= 0 {
		return errors.New("config: sketch dimensions must be positive")
	}
	if c.Sketch.DecayBase <= 1.0 {
		return errors.New("config: sketch decay base must exceed 1")
	}
	if c.Metadata.UnitBorrowedWays <= 0 || c.Metadata.UnitBorrowedEntries%c.Metadata.UnitBorrowedWays != 0 {
		return errors.New("config: unit dataBorrowed entries must divide evenly into ways")
	}
	if c.Metadata.BridgeBorrowedWays <= 0 || c.Metadata.BridgeBorrowedEntries%c.Metadata.BridgeBorrowedWays != 0 {
		return errors.New("config: bridge dataBorrowed entries must divide evenly into ways")
	}
	if c.LoadBalance.StealFactor <= 0 {
		return errors.New("config: StealFactor must be positive")
	}
	// W_th = f(GXfer, EffectiveChipDQ); both inputs must be positive or the
	// load-balance threshold degenerates to zero and bridges never trigger.
	if c.EffectiveChipDQ() == 0 {
		return errors.New("config: effective chip DQ bandwidth must be positive (W_th would be zero)")
	}
	b := c.Buffers
	if b.MailboxBytes == 0 || b.ScatterBufBytes == 0 || b.BridgeMailboxBytes == 0 || b.BackupBufBytes == 0 {
		return errors.New("config: buffer sizes must be positive")
	}
	if b.MailboxBytes < c.GXfer {
		return fmt.Errorf("config: MailboxBytes (%d) must hold at least one gather of GXfer (%d) bytes", b.MailboxBytes, c.GXfer)
	}
	if b.ScatterBufBytes < uint64(c.MaxMsgSize) || b.BridgeMailboxBytes < uint64(c.MaxMsgSize) || b.BackupBufBytes < uint64(c.MaxMsgSize) {
		return fmt.Errorf("config: bridge buffers must hold at least one MaxMsgSize (%d) message", c.MaxMsgSize)
	}
	if c.Metadata.BorrowedRegionBytes < c.GXfer {
		return fmt.Errorf("config: BorrowedRegionBytes (%d) must hold at least one GXfer (%d) chunk", c.Metadata.BorrowedRegionBytes, c.GXfer)
	}
	if b.MailboxBytes+c.Metadata.BorrowedRegionBytes > g.BankBytes {
		return fmt.Errorf("config: mailbox (%d) + borrowed region (%d) exceed BankBytes (%d)",
			b.MailboxBytes, c.Metadata.BorrowedRegionBytes, g.BankBytes)
	}
	if c.Retry.BufBytes < uint64(c.MaxMsgSize) {
		return fmt.Errorf("config: Retry.BufBytes (%d) must hold at least one MaxMsgSize (%d) message", c.Retry.BufBytes, c.MaxMsgSize)
	}
	if c.Retry.Timeout == 0 {
		return errors.New("config: Retry.Timeout must be positive")
	}
	if c.Retry.BackoffCap < c.Retry.Timeout {
		return fmt.Errorf("config: Retry.BackoffCap (%d) must be at least Retry.Timeout (%d)", c.Retry.BackoffCap, c.Retry.Timeout)
	}
	if c.Host.Cores <= 0 && c.Design == DesignH {
		return errors.New("config: host cores must be positive for design H")
	}
	if c.SplitDIMMBuffer {
		pins := int(c.Timing.ChipDQBytesPerCycle) // not pins, but proportional
		_ = pins
		if c.SplitDQCAPins <= 0 || c.SplitDQCAPins >= 8 {
			return errors.New("config: SplitDQCAPins must be in (0, 8)")
		}
	}
	return nil
}

// EffectiveChipDQ returns the unit↔bridge bandwidth after accounting for the
// split-DIMM-buffer C/A multiplexing, in bytes per cycle (minimum 1).
func (c Config) EffectiveChipDQ() uint64 {
	bw := c.Timing.ChipDQBytesPerCycle
	if c.SplitDIMMBuffer {
		// chameleon-s: SplitDQCAPins of the 8 DQ pins carry C/A.
		bw = bw * uint64(8-c.SplitDQCAPins) / 8
		if bw == 0 {
			bw = 1
		}
	}
	return bw
}

// IMin returns the minimum gather interval: the time for one round-robin
// gather of G_xfer bytes across all banks of a rank over the rank bus.
func (c Config) IMin() Cycles {
	perBankCycles := (c.GXfer + c.Timing.ChannelBytesPerCycle - 1) / c.Timing.ChannelBytesPerCycle
	rounds := uint64(c.Geometry.BanksPerChip) // banks gathered chip-parallel
	d := perBankCycles * rounds
	if d == 0 {
		d = 1
	}
	return d
}
