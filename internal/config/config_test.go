package config

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("Default config invalid: %v", err)
	}
	if got := c.Geometry.Units(); got != 512 {
		t.Errorf("Units = %d, want 512 (Table I)", got)
	}
	if got := c.Geometry.UnitsPerRank(); got != 64 {
		t.Errorf("UnitsPerRank = %d, want 64", got)
	}
	if got := c.Geometry.Ranks(); got != 8 {
		t.Errorf("Ranks = %d, want 8", got)
	}
	total := c.Geometry.BankBytes * uint64(c.Geometry.Units())
	if total != 32<<30 {
		t.Errorf("total capacity = %d, want 32 GB", total)
	}
}

func TestDesignString(t *testing.T) {
	cases := map[Design]string{
		DesignC: "C", DesignB: "B", DesignW: "W",
		DesignO: "O", DesignH: "H", DesignR: "R",
	}
	for d, want := range cases {
		if d.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(d), d.String(), want)
		}
		back, err := ParseDesign(want)
		if err != nil || back != d {
			t.Errorf("ParseDesign(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := ParseDesign("Z"); err == nil {
		t.Error("ParseDesign(Z) should fail")
	}
}

func TestDesignPredicates(t *testing.T) {
	if DesignC.UsesBridges() || DesignH.UsesBridges() || DesignR.UsesBridges() {
		t.Error("C/H/R must not use bridges")
	}
	if !DesignB.UsesBridges() || !DesignW.UsesBridges() || !DesignO.UsesBridges() {
		t.Error("B/W/O must use bridges")
	}
	if DesignB.LoadBalancing() || DesignC.LoadBalancing() {
		t.Error("B/C must not load balance")
	}
	if !DesignW.LoadBalancing() || !DesignO.LoadBalancing() {
		t.Error("W/O must load balance")
	}
}

func TestWithDesignTableII(t *testing.T) {
	w := Default().WithDesign(DesignW)
	if w.LoadBalance.Adv || w.LoadBalance.Fine || w.LoadBalance.Hot {
		t.Error("W must disable all data-transfer-aware optimizations")
	}
	if !w.LoadBalance.Correction {
		t.Error("W keeps workload correction (Section VII)")
	}
	o := w.WithDesign(DesignO)
	if !o.LoadBalance.Adv || !o.LoadBalance.Fine || !o.LoadBalance.Hot {
		t.Error("O must enable all optimizations")
	}
}

func TestWithUnits(t *testing.T) {
	for _, n := range []int{64, 128, 256, 512, 1024} {
		c, err := Default().WithUnits(n)
		if err != nil {
			t.Fatalf("WithUnits(%d): %v", n, err)
		}
		if got := c.Geometry.Units(); got != n {
			t.Errorf("WithUnits(%d) → %d units", n, got)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("WithUnits(%d) invalid: %v", n, err)
		}
	}
	if _, err := Default().WithUnits(100); err == nil {
		t.Error("WithUnits(100) should fail (not a rank multiple)")
	}
}

func TestWithDQWidth(t *testing.T) {
	cases := []struct {
		bits      int
		chips     int
		bw        uint64
		wantUnits int
	}{
		{4, 16, 3, 1024},
		{8, 8, 6, 512},
		{16, 4, 12, 256},
	}
	for _, c := range cases {
		cfg, err := Default().WithDQWidth(c.bits)
		if err != nil {
			t.Fatalf("WithDQWidth(%d): %v", c.bits, err)
		}
		if cfg.Geometry.ChipsPerRank != c.chips {
			t.Errorf("x%d chips = %d, want %d", c.bits, cfg.Geometry.ChipsPerRank, c.chips)
		}
		if cfg.Timing.ChipDQBytesPerCycle != c.bw {
			t.Errorf("x%d bw = %d, want %d", c.bits, cfg.Timing.ChipDQBytesPerCycle, c.bw)
		}
		if cfg.Geometry.Units() != c.wantUnits {
			t.Errorf("x%d units = %d, want %d (Section VIII-B)", c.bits, cfg.Geometry.Units(), c.wantUnits)
		}
	}
	if _, err := Default().WithDQWidth(32); err == nil {
		t.Error("x32 should be rejected")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutate := []struct {
		name string
		f    func(*Config)
		want string
	}{
		{"zero channels", func(c *Config) { c.Geometry.Channels = 0 }, "geometry"},
		{"non-pow2 bank", func(c *Config) { c.Geometry.BankBytes = 3 << 20 }, "power of two"},
		{"gxfer not multiple", func(c *Config) { c.GXfer = 100 }, "GXfer"},
		{"zero istate", func(c *Config) { c.IState = 0 }, "IState"},
		{"zero dq", func(c *Config) { c.Timing.ChipDQBytesPerCycle = 0 }, "bandwidth"},
		{"bad sketch", func(c *Config) { c.Sketch.Buckets = 0 }, "sketch"},
		{"bad decay", func(c *Config) { c.Sketch.DecayBase = 1.0 }, "decay"},
		{"bad ways", func(c *Config) { c.Metadata.UnitBorrowedWays = 3 }, "ways"},
		{"bad steal", func(c *Config) { c.LoadBalance.StealFactor = 0 }, "StealFactor"},
		{"bad split", func(c *Config) { c.SplitDIMMBuffer = true; c.SplitDQCAPins = 8 }, "SplitDQCAPins"},
		{"non-pow2 channels", func(c *Config) { c.Geometry.Channels = 3 }, "powers of two"},
		{"non-pow2 ranks", func(c *Config) { c.Geometry.RanksPerChannel = 5 }, "powers of two"},
		{"non-pow2 chips", func(c *Config) { c.Geometry.ChipsPerRank = 6 }, "powers of two"},
		{"non-pow2 banks", func(c *Config) { c.Geometry.BanksPerChip = 7 }, "powers of two"},
		{"zero mailbox", func(c *Config) { c.Buffers.MailboxBytes = 0 }, "buffer sizes"},
		{"zero scatter buf", func(c *Config) { c.Buffers.ScatterBufBytes = 0 }, "buffer sizes"},
		{"zero bridge mailbox", func(c *Config) { c.Buffers.BridgeMailboxBytes = 0 }, "buffer sizes"},
		{"zero backup buf", func(c *Config) { c.Buffers.BackupBufBytes = 0 }, "buffer sizes"},
		{"mailbox below gxfer", func(c *Config) { c.Buffers.MailboxBytes = 128; c.GXfer = 256 }, "MailboxBytes"},
		{"scatter below msg", func(c *Config) { c.Buffers.ScatterBufBytes = 32 }, "MaxMsgSize"},
		{"tiny borrowed region", func(c *Config) { c.Metadata.BorrowedRegionBytes = 64 }, "BorrowedRegionBytes"},
		{"layout overflow", func(c *Config) {
			c.Buffers.MailboxBytes = 48 << 20
			c.Metadata.BorrowedRegionBytes = 32 << 20
		}, "BankBytes"},
		{"zero retry buf", func(c *Config) { c.Retry.BufBytes = 0 }, "Retry.BufBytes"},
		{"zero retry timeout", func(c *Config) { c.Retry.Timeout = 0 }, "Retry.Timeout"},
		{"backoff below timeout", func(c *Config) { c.Retry.BackoffCap = 10; c.Retry.Timeout = 100 }, "BackoffCap"},
	}
	for _, m := range mutate {
		c := Default()
		m.f(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: Validate passed, want error", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error %q does not mention %q", m.name, err, m.want)
		}
	}
}

func TestEffectiveChipDQ(t *testing.T) {
	c := Default()
	if got := c.EffectiveChipDQ(); got != 6 {
		t.Errorf("unified DQ = %d, want 6", got)
	}
	c.SplitDIMMBuffer = true
	c.SplitDQCAPins = 2
	if got := c.EffectiveChipDQ(); got != 4 { // 6 × 6/8 = 4.5 → 4
		t.Errorf("chameleon-s DQ = %d, want 4", got)
	}
}

func TestIMin(t *testing.T) {
	c := Default()
	// 256 B at 48 B/cycle = 6 cycles per bank round; 8 bank rounds = 48.
	if got := c.IMin(); got != 48 {
		t.Errorf("IMin = %d, want 48", got)
	}
	c.GXfer = 64
	if got := c.IMin(); got != 16 {
		t.Errorf("IMin(G=64) = %d, want 16", got)
	}
}

func TestTriggerString(t *testing.T) {
	if TriggerDynamic.String() != "dynamic" ||
		TriggerFixedIMin.String() != "fixed-Imin" ||
		TriggerFixed2IMin.String() != "fixed-2Imin" {
		t.Error("trigger names wrong")
	}
}
