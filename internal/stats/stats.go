// Package stats defines the measurement records produced by a simulation
// run: per-unit execution counters and the aggregated Result that the
// experiment harness turns into the paper's figures.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Unit holds per-NDP-unit counters.
type Unit struct {
	Busy     uint64 // cycles spent executing tasks (incl. local DRAM waits)
	Tasks    uint64 // tasks executed
	Spawned  uint64 // tasks created here
	MsgsOut  uint64 // messages placed in the mailbox
	MsgsIn   uint64 // messages delivered to this unit
	Stalls   uint64 // mailbox-full stalls
	Bounces  uint64 // tasks re-emitted because the block moved
	Borrowed uint64 // data blocks received for load balancing
	Lent     uint64 // data blocks lent out
	Returns  uint64 // borrowed blocks returned home (LRU evictions)
}

// Energy is the Figure 13 breakdown, in millijoules.
type Energy struct {
	CoreSRAM  float64 // NDP cores and SRAM caches/metadata
	LocalDRAM float64 // local bank accesses for computation
	CommDRAM  float64 // bank + channel accesses for cross-unit communication
	Static    float64
}

// Total sums the components.
func (e Energy) Total() float64 { return e.CoreSRAM + e.LocalDRAM + e.CommDRAM + e.Static }

// Add accumulates o into e.
func (e *Energy) Add(o Energy) {
	e.CoreSRAM += o.CoreSRAM
	e.LocalDRAM += o.LocalDRAM
	e.CommDRAM += o.CommDRAM
	e.Static += o.Static
}

// Latency summarizes one latency histogram in cycles. Filled from the
// metrics registry when metrics are attached to the run; all-zero otherwise.
type Latency struct {
	P50 uint64
	P90 uint64
	P99 uint64
	Max uint64
}

// IsZero reports whether the summary carries no data.
func (l Latency) IsZero() bool { return l.Max == 0 && l.P99 == 0 }

// String renders the summary as "p50/p90/p99/max".
func (l Latency) String() string {
	return fmt.Sprintf("%d/%d/%d/%d", l.P50, l.P90, l.P99, l.Max)
}

// Result is the outcome of one simulation run.
type Result struct {
	App    string
	Design string

	// Makespan is the end-to-end execution time in NDP-core cycles — the
	// "maximum time" bars of Figures 2 and 10.
	Makespan uint64
	// MaxBusy is the busy time of the busiest unit. Makespan − MaxBusy is
	// the communication wait time highlighted in the figures.
	MaxBusy uint64
	// AvgBusy is the mean busy time across units — the "average time"
	// square marks.
	AvgBusy float64

	TasksExecuted uint64
	TasksSpawned  uint64
	MsgsDelivered uint64

	// Events is the number of discrete events the engine processed — the
	// simulator-side work metric behind the events/sec figures.
	Events uint64

	// Traffic in bytes by locality class.
	IntraRankBytes uint64
	CrossRankBytes uint64
	HostBytes      uint64 // through the host (designs C/R and level-2)

	BlocksMigrated uint64
	BlocksReturned uint64
	Bounces        uint64
	LBRounds       uint64
	GatherRounds   uint64 // communication rounds issued by bridges/host

	Energy Energy

	// TaskLatency is the spawn→execution-start distribution; MsgLatency the
	// staging→delivery distribution. Populated only when the run carries a
	// metrics registry.
	TaskLatency Latency
	MsgLatency  Latency

	Units []Unit

	// Faults summarizes fault injection and recovery. Nil when the run
	// carried no fault plan, so faultless output stays byte-identical.
	Faults *FaultStats

	// Crit summarizes the critical-path attribution (internal/trace.CritPath).
	// Nil when the run carried no flow tracing; omitted from JSON then so
	// untraced output stays byte-identical.
	Crit *Crit `json:",omitempty"`

	// Serving summarizes the open-loop serving layer (admission, shedding,
	// SLO percentiles). Nil for closed-loop runs, so batch output stays
	// byte-identical.
	Serving *Serving `json:",omitempty"`
}

// Serving is the SLO report of one open-loop serving run. Counters cover
// the whole run; the latency percentiles exclude warm-up arrivals.
type Serving struct {
	// Offered is every generated arrival; Admitted the ones that entered
	// the fabric; Completed the ones whose handler finished. Shed* break
	// down rejections by policy cause.
	Offered      uint64
	Admitted     uint64
	Completed    uint64
	ShedNewest   uint64
	ShedOldest   uint64
	ShedDeadline uint64

	// End-to-end latency (arrival to handler completion) percentiles in
	// cycles, post-warm-up.
	P50, P90, P99, P999, MaxLat uint64
	// SLOTarget is the configured p99 target; SLOMet whether P99 is within
	// it.
	SLOTarget uint64
	SLOMet    bool

	// GoodputKC is completed requests per kilocycle over the whole run, and
	// OfferedKC the corresponding offered rate — the saturation-sweep axes.
	GoodputKC float64
	OfferedKC float64

	// Windows, when windowed accounting was on, holds the degradation
	// curve: per-window offered/completed/shed counts and p99.
	Windows []ServingWindow `json:",omitempty"`
}

// ServingWindow is one fixed-size cycle window of the degradation curve.
type ServingWindow struct {
	Start     uint64
	Offered   uint64
	Completed uint64
	Shed      uint64
	P99       uint64
}

// ShedTotal returns all shed requests.
func (v *Serving) ShedTotal() uint64 { return v.ShedNewest + v.ShedOldest + v.ShedDeadline }

// String renders the serving summary compactly.
func (v *Serving) String() string {
	slo := "met"
	if !v.SLOMet {
		slo = "MISSED"
	}
	return fmt.Sprintf("offered=%d admitted=%d completed=%d shed=%d (newest=%d oldest=%d deadline=%d) "+
		"lat p50/p90/p99/p999/max=%d/%d/%d/%d/%d slo[p99<=%d]=%s goodput=%.3f/kc offered=%.3f/kc",
		v.Offered, v.Admitted, v.Completed, v.ShedTotal(), v.ShedNewest, v.ShedOldest, v.ShedDeadline,
		v.P50, v.P90, v.P99, v.P999, v.MaxLat, v.SLOTarget, slo, v.GoodputKC, v.OfferedKC)
}

// Crit is the critical-path makespan attribution of one traced run: every
// cycle of the makespan billed to exactly one exclusive category. The fields
// mirror trace.CatCycles but stay plain integers so stats keeps no trace
// dependency.
type Crit struct {
	Epochs       int
	PathSpans    int
	BankBusy     uint64
	TaskQueue    uint64
	GatherBatch  uint64
	BridgeQueue  uint64
	LBMigration  uint64
	Retry        uint64
	HostRT       uint64
	Slack        uint64
	Dominant     string
	DominantPct  float64
	DroppedSpans uint64
}

// String renders the attribution as percentage shares of the makespan.
func (c *Crit) String() string {
	total := c.BankBusy + c.TaskQueue + c.GatherBatch + c.BridgeQueue +
		c.LBMigration + c.Retry + c.HostRT + c.Slack
	if total == 0 {
		return "critpath: no spans"
	}
	pct := func(v uint64) float64 { return 100 * float64(v) / float64(total) }
	return fmt.Sprintf("critpath: bank-busy=%.1f%% task-queue=%.1f%% gather-batch=%.1f%% bridge-queue=%.1f%% "+
		"lb-migration=%.1f%% retry-backoff=%.1f%% host-roundtrip=%.1f%% slack=%.1f%% dominant=%s",
		pct(c.BankBusy), pct(c.TaskQueue), pct(c.GatherBatch), pct(c.BridgeQueue),
		pct(c.LBMigration), pct(c.Retry), pct(c.HostRT), pct(c.Slack), c.Dominant)
}

// FaultStats aggregates one run's injected faults and the recovery work they
// triggered.
type FaultStats struct {
	// Injection-side counts (what the fault engine actually fired).
	Drops      uint64
	Corrupts   uint64
	Duplicates uint64
	Delays     uint64
	Stalls     uint64
	Kills      uint64
	Overflows  uint64

	// Recovery-side counts.
	Retries         uint64 // link-layer retransmissions (all hops)
	Nacks           uint64 // checksum failures answered with a nack
	DupsFiltered    uint64 // duplicate deliveries discarded by receivers
	MsgsLost        uint64 // messages resolved terminally (dead receiver)
	TasksRespawned  uint64 // tasks re-homed from killed units
	BlocksRecovered uint64 // lent blocks healed after their borrower died
	WatchdogTripped bool
}

// Any reports whether any fault fired or any recovery action ran.
func (f *FaultStats) Any() bool {
	return f != nil && (f.Drops+f.Corrupts+f.Duplicates+f.Delays+f.Stalls+f.Kills+f.Overflows+
		f.Retries+f.Nacks+f.DupsFiltered+f.MsgsLost+f.TasksRespawned+f.BlocksRecovered > 0 ||
		f.WatchdogTripped)
}

// String renders the fault summary compactly.
func (f *FaultStats) String() string {
	wd := "clean"
	if f.WatchdogTripped {
		wd = "TRIPPED"
	}
	return fmt.Sprintf("drops=%d corrupts=%d dups=%d delays=%d stalls=%d kills=%d overflows=%d "+
		"retries=%d nacks=%d dupsFiltered=%d msgsLost=%d tasksRespawned=%d blocksRecovered=%d watchdog=%s",
		f.Drops, f.Corrupts, f.Duplicates, f.Delays, f.Stalls, f.Kills, f.Overflows,
		f.Retries, f.Nacks, f.DupsFiltered, f.MsgsLost, f.TasksRespawned, f.BlocksRecovered, wd)
}

// WaitFrac returns the fraction of the makespan the critical unit spent
// waiting on communication: 1 − MaxBusy/Makespan.
func (r *Result) WaitFrac() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return 1 - float64(r.MaxBusy)/float64(r.Makespan)
}

// AvgFrac returns AvgBusy/Makespan — the load-balance indicator (close to 1
// means perfectly balanced).
func (r *Result) AvgFrac() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return r.AvgBusy / float64(r.Makespan)
}

// Speedup returns base.Makespan / r.Makespan.
func (r *Result) Speedup(base *Result) float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(base.Makespan) / float64(r.Makespan)
}

// Finalize derives MaxBusy/AvgBusy/TasksExecuted from the per-unit records.
// It is idempotent: every derived field is recomputed from scratch, so
// calling it again after appending more Units yields the same result as a
// single call on the final slice.
func (r *Result) Finalize() {
	var sum, count, tasks, spawned uint64
	r.MaxBusy = 0
	r.AvgBusy = 0
	r.Bounces = 0
	for _, u := range r.Units {
		if u.Busy > r.MaxBusy {
			r.MaxBusy = u.Busy
		}
		sum += u.Busy
		tasks += u.Tasks
		spawned += u.Spawned
		r.Bounces += u.Bounces
		count++
	}
	if count > 0 {
		r.AvgBusy = float64(sum) / float64(count)
	}
	r.TasksExecuted = tasks
	r.TasksSpawned = spawned
}

// String renders a one-line summary (plus a fault line when faults ran).
func (r *Result) String() string {
	s := fmt.Sprintf("%s/%s: makespan=%d cycles, wait=%.1f%%, avg/max=%.1f%%, tasks=%d, energy=%.2f mJ",
		r.App, r.Design, r.Makespan, 100*r.WaitFrac(), 100*r.AvgFrac(), r.TasksExecuted, r.Energy.Total())
	if r.Faults != nil {
		s += "\nfaults: " + r.Faults.String()
	}
	if r.Serving != nil {
		s += "\nserving: " + r.Serving.String()
	}
	return s
}

// Table renders rows of (label, values...) with aligned columns, used by the
// experiment harness to print paper-style tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render formats the table.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV writes the table as RFC-4180 CSV (header row first). Cells containing
// commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
