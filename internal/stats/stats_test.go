package stats

import (
	"strings"
	"testing"
)

func TestResultFinalize(t *testing.T) {
	r := Result{
		App: "tree", Design: "O", Makespan: 1000,
		Units: []Unit{
			{Busy: 900, Tasks: 10, Spawned: 12, Bounces: 1},
			{Busy: 500, Tasks: 5, Spawned: 3},
			{Busy: 100, Tasks: 2, Spawned: 2, Bounces: 2},
		},
	}
	r.Finalize()
	if r.MaxBusy != 900 {
		t.Errorf("MaxBusy = %d", r.MaxBusy)
	}
	if r.AvgBusy != 500 {
		t.Errorf("AvgBusy = %v", r.AvgBusy)
	}
	if r.TasksExecuted != 17 || r.TasksSpawned != 17 {
		t.Errorf("tasks = %d/%d", r.TasksExecuted, r.TasksSpawned)
	}
	if r.Bounces != 3 {
		t.Errorf("Bounces = %d", r.Bounces)
	}
	if got := r.WaitFrac(); got < 0.0999 || got > 0.1001 {
		t.Errorf("WaitFrac = %v, want 0.1", got)
	}
	if got := r.AvgFrac(); got != 0.5 {
		t.Errorf("AvgFrac = %v, want 0.5", got)
	}
}

func TestResultZeroMakespan(t *testing.T) {
	var r Result
	if r.WaitFrac() != 0 || r.AvgFrac() != 0 || r.Speedup(&Result{Makespan: 5}) != 0 {
		t.Error("zero makespan must not divide by zero")
	}
}

func TestSpeedup(t *testing.T) {
	base := &Result{Makespan: 3000}
	fast := &Result{Makespan: 1000}
	if got := fast.Speedup(base); got != 3.0 {
		t.Errorf("Speedup = %v, want 3", got)
	}
}

func TestEnergyAddTotal(t *testing.T) {
	e := Energy{CoreSRAM: 1, LocalDRAM: 2, CommDRAM: 3, Static: 4}
	if e.Total() != 10 {
		t.Errorf("Total = %v", e.Total())
	}
	e.Add(Energy{CoreSRAM: 1, Static: 1})
	if e.CoreSRAM != 2 || e.Static != 5 {
		t.Errorf("Add wrong: %+v", e)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:  "Fig X",
		Header: []string{"app", "C", "O"},
		Rows: [][]string{
			{"tree", "2.98", "1.00"},
			{"ll", "1.50", "1.00"},
		},
	}
	out := tb.Render()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "tree") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestResultString(t *testing.T) {
	r := Result{App: "pr", Design: "B", Makespan: 100, MaxBusy: 80}
	s := r.String()
	if !strings.Contains(s, "pr/B") || !strings.Contains(s, "20.0%") {
		t.Errorf("String = %q", s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{
		Header: []string{"app", "value"},
		Rows:   [][]string{{"tree", "1.00"}, {"with,comma", `q"uote`}},
	}
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "app,value\ntree,1.00\n\"with,comma\",\"q\"\"uote\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestResultFinalizeIdempotent(t *testing.T) {
	r := Result{
		Units: []Unit{
			{Busy: 900, Tasks: 10, Spawned: 12, Bounces: 1},
			{Busy: 500, Tasks: 5, Spawned: 3, Bounces: 2},
		},
	}
	r.Finalize()
	first := []uint64{r.MaxBusy, uint64(r.AvgBusy), r.Bounces, r.TasksExecuted, r.TasksSpawned}
	// A second Finalize on unchanged Units must not change any derived
	// field — Bounces in particular used to accumulate across calls.
	r.Finalize()
	second := []uint64{r.MaxBusy, uint64(r.AvgBusy), r.Bounces, r.TasksExecuted, r.TasksSpawned}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("second Finalize changed field %d: %d -> %d", i, first[i], second[i])
		}
	}
	if r.Bounces != 3 {
		t.Errorf("Bounces = %d, want 3", r.Bounces)
	}
}

func TestLatencyString(t *testing.T) {
	l := Latency{P50: 1, P90: 2, P99: 3, Max: 4}
	if got := l.String(); got != "1/2/3/4" {
		t.Errorf("String() = %q", got)
	}
	if l.IsZero() {
		t.Error("non-empty summary reported zero")
	}
	if !(Latency{}).IsZero() {
		t.Error("zero summary not reported zero")
	}
}
