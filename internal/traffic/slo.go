package traffic

import "math/bits"

// latMinors is the number of linear sub-buckets per power-of-two major
// bucket: 5 mantissa bits bound the relative quantile error at ~3%, tight
// enough to judge a p99/p999 SLO without storing raw samples.
const latMinors = 32

// latBuckets spans values up to 2^63 with exact small values: indices
// 0..latMinors-1 hold v == index exactly; above that, each major octave
// [2^k, 2^(k+1)) splits into latMinors linear minors.
const latBuckets = latMinors * 60

// LatHist is a fixed-size log-linear latency histogram, the serving
// layer's percentile accumulator. The metrics package's Histogram uses
// pure power-of-two buckets — too coarse for "is p99 within 20 kcycles" —
// so the SLO path keeps its own 5-mantissa-bit variant.
type LatHist struct {
	n   uint64
	max uint64
	b   [latBuckets]uint64
}

func latIndex(v uint64) int {
	if v < latMinors {
		return int(v)
	}
	hi := bits.Len64(v) - 1 // >= 5
	minor := (v >> uint(hi-5)) & (latMinors - 1)
	return (hi-4)*latMinors + int(minor)
}

// latUpper returns the largest value mapping to bucket idx — quantiles
// report this conservative (upper) edge.
func latUpper(idx int) uint64 {
	if idx < latMinors {
		return uint64(idx)
	}
	hi := idx/latMinors + 4
	minor := uint64(idx % latMinors)
	return ((latMinors+minor+1)<<uint(hi-5) - 1)
}

// Observe records one latency sample.
func (h *LatHist) Observe(v uint64) {
	h.n++
	if v > h.max {
		h.max = v
	}
	h.b[latIndex(v)]++
}

// Count returns the number of samples.
func (h *LatHist) Count() uint64 { return h.n }

// Max returns the largest sample.
func (h *LatHist) Max() uint64 { return h.max }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1), within
// one bucket (~3% relative error). Zero samples yield zero.
func (h *LatHist) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if rank == 0 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i := 0; i < latBuckets; i++ {
		cum += h.b[i]
		if cum >= rank {
			u := latUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}
