package traffic

import (
	"math"

	"ndpbridge/internal/sim"
)

// Request is one keyed serving request. Arrive is its offered (generation)
// cycle; Shard/Rec name the record it reads, drawn Zipfian-hot so the
// admission point sees the paper-style skewed keyspace.
type Request struct {
	Arrive sim.Cycles
	Shard  uint32
	Rec    uint32
}

// zipf is an inverted-CDF Zipfian sampler (same technique as the workloads
// package, which cannot be imported here without a cycle through core).
type zipf struct {
	cdf []float64
	rng *sim.RNG
}

func newZipf(rng *sim.RNG, n int, theta float64) *zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), theta)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &zipf{cdf: cdf, rng: rng}
}

func (z *zipf) next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// arrivals generates the request stream by thinning: candidate arrivals are
// drawn from a homogeneous Poisson process at the modulation envelope's peak
// rate, then accepted with probability rate(t)/peak. This yields an exact
// non-homogeneous Poisson process for the burst and diurnal shapes while
// keeping every draw a pure function of the seed.
type arrivals struct {
	spec Spec     //ndplint:nosnap config constant from construction
	rng  *sim.RNG // inter-arrival stream
	krng *sim.RNG // key stream (independent so rate changes don't move keys)
	z    *zipf    //ndplint:nosnap static CDF; its rng is krng, encoded above

	clock     float64 // candidate-process time, in cycles
	generated uint64  // arrivals emitted so far
	recsPer   uint32  //ndplint:nosnap config constant (records per shard)
}

func newArrivals(sp Spec, recsPerShard uint32) *arrivals {
	rng := sim.NewRNG(sp.Seed)
	krng := rng.Split()
	return &arrivals{
		spec:    sp,
		rng:     rng,
		krng:    krng,
		z:       newZipf(krng, int(sp.Shards), sp.Theta),
		recsPer: recsPerShard,
	}
}

// peakFactor returns the modulation envelope's peak relative to the mean
// rate. Burst packs the whole period's load into its first quarter; diurnal
// swings ±80% around the mean.
func (a *arrivals) peakFactor() float64 {
	switch a.spec.Arrival {
	case ArrivalBurst:
		return 4
	case ArrivalDiurnal:
		return 1.8
	default:
		return 1
	}
}

// relRate returns rate(t)/peak in [0,1] for the thinning accept test.
func (a *arrivals) relRate(t float64) float64 {
	switch a.spec.Arrival {
	case ArrivalBurst:
		p := float64(a.spec.BurstPeriod)
		if math.Mod(t, p) < p/4 {
			return 1
		}
		return 0
	case ArrivalDiurnal:
		p := float64(a.spec.BurstPeriod)
		return (1 + 0.8*math.Sin(2*math.Pi*t/p)) / 1.8
	default:
		return 1
	}
}

// next returns the next request, or ok=false when the configured request
// count is exhausted.
func (a *arrivals) next() (Request, bool) {
	if a.generated >= a.spec.Requests {
		return Request{}, false
	}
	meanGap := 1000 / (a.spec.Rate * a.peakFactor())
	for {
		u := a.rng.Float64()
		a.clock += -math.Log(1-u) * meanGap
		if a.rng.Float64() >= a.relRate(a.clock) {
			continue // thinned candidate
		}
		a.generated++
		shard := uint32(a.z.next())
		rec := uint32(0)
		if a.recsPer > 1 {
			rec = uint32(a.krng.Uint64n(uint64(a.recsPer)))
		}
		return Request{Arrive: sim.Cycles(a.clock), Shard: shard, Rec: rec}, true
	}
}
