package traffic

import (
	"ndpbridge/internal/sim"
	"ndpbridge/internal/stats"
)

// winState is one degradation-curve window's accumulator. The latency
// histogram is lazily allocated: most windows of an underloaded run see few
// completions, and a nil hist reports p99 = 0.
type winState struct {
	start     sim.Cycles
	offered   uint64
	completed uint64
	shed      uint64
	lat       *LatHist
}

// Source is the open-loop traffic generator plus its admission state. It is
// pure model state driven by the core runtime: GenerateUpTo moves due
// arrivals into the bounded admission queue (shedding per policy), Pop
// drains admitted requests for injection, Complete records end-to-end
// latencies. Every observable — the request stream, the shed counters, the
// percentile report — is a pure function of (Spec, recsPerShard).
type Source struct {
	spec Spec //ndplint:nosnap config constant from construction
	arr  *arrivals
	q    *admitQueue

	// pending is the generated-but-not-yet-offered head of the arrival
	// stream (the pump schedules its wake-up from pending.Arrive).
	pending    Request
	hasPending bool
	exhausted  bool // arrival stream fully generated

	offered   uint64
	admitted  uint64
	completed uint64
	inflight  uint64 // admitted (injected) − completed

	lat     LatHist
	windows []*winState

	// work is the monotone admission-progress counter: every offer, shed,
	// pop, and completion bumps it. The core watchdog folds it into its
	// progress signal so a saturated interval that (correctly) sheds every
	// arrival is not mistaken for a stall.
	work uint64
}

// NewSource builds a source for sp. recsPerShard is the serving layout's
// records per shard (the key stream draws a record index per request).
func NewSource(sp Spec, recsPerShard uint32) (*Source, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	s := &Source{spec: sp, arr: newArrivals(sp, recsPerShard), q: newAdmitQueue(sp)}
	s.pending, s.hasPending = s.arr.next()
	s.exhausted = !s.hasPending
	return s, nil
}

// Spec returns the source's configuration.
func (s *Source) Spec() Spec { return s.spec }

// NextArrival returns the cycle of the next ungenerated-or-unoffered
// arrival. ok=false means the arrival stream is exhausted.
func (s *Source) NextArrival() (sim.Cycles, bool) {
	if !s.hasPending {
		return 0, false
	}
	return s.pending.Arrive, true
}

// GenerateUpTo offers every arrival due at or before now to the admission
// queue, shedding per policy when it is full.
func (s *Source) GenerateUpTo(now sim.Cycles) {
	for s.hasPending && s.pending.Arrive <= now {
		s.offered++
		s.work++
		w := s.window(s.pending.Arrive)
		if w != nil {
			w.offered++
		}
		if shed := s.q.offer(s.pending); shed != 0 {
			s.work += shed
			if w != nil {
				w.shed += shed
			}
		}
		s.pending, s.hasPending = s.arr.next()
	}
	if !s.hasPending {
		s.exhausted = true
	}
}

// Pop removes the next admissible request (deadline policy may shed stale
// heads first). ok=false means the queue is empty (possibly emptied by
// shedding).
func (s *Source) Pop(now sim.Cycles) (Request, bool) {
	r, shed, ok := s.q.pop(now)
	if shed != 0 {
		s.work += shed
		if w := s.window(now); w != nil {
			w.shed += shed
		}
	}
	if ok {
		s.admitted++
		s.inflight++
		s.work++
	}
	return r, ok
}

// Complete records one request's end-to-end latency: arrive is its offered
// cycle, end its handler-completion cycle. Warm-up arrivals count toward
// completion totals but not the percentile report.
func (s *Source) Complete(arrive, end sim.Cycles) {
	s.completed++
	if s.inflight > 0 {
		s.inflight--
	}
	s.work++
	lat := uint64(0)
	if end > arrive {
		lat = end - arrive
	}
	if w := s.window(end); w != nil {
		w.completed++
		if arrive >= sim.Cycles(s.spec.Warmup) {
			if w.lat == nil {
				w.lat = &LatHist{}
			}
			w.lat.Observe(lat)
		}
	}
	if arrive >= sim.Cycles(s.spec.Warmup) {
		s.lat.Observe(lat)
	}
}

// QueueLen returns the admission-queue depth.
func (s *Source) QueueLen() int { return s.q.len() }

// InFlight returns admitted-but-uncompleted requests (the MaxInFlight
// credit pool's usage).
func (s *Source) InFlight() uint64 { return s.inflight }

// Exhausted reports whether the arrival stream is fully generated.
func (s *Source) Exhausted() bool { return s.exhausted }

// Done reports whether no serving work remains: arrivals exhausted and the
// admission queue empty. In-fabric requests are the runtime's accounting.
func (s *Source) Done() bool { return s.exhausted && s.q.len() == 0 }

// Work returns the monotone admission-progress counter.
func (s *Source) Work() uint64 { return s.work }

// Shed returns the shed counters.
func (s *Source) Shed() ShedStats { return s.q.shed }

// window returns the accumulator covering cycle c, growing the slice as
// simulated time advances. Nil when windowed accounting is off.
func (s *Source) window(c sim.Cycles) *winState {
	if s.spec.Window == 0 {
		return nil
	}
	idx := int(uint64(c) / s.spec.Window)
	for len(s.windows) <= idx {
		s.windows = append(s.windows, &winState{start: sim.Cycles(uint64(len(s.windows)) * s.spec.Window)})
	}
	return s.windows[idx]
}

// Report folds the source into the run's SLO report. makespan is the run's
// final cycle (for the goodput/offered rate denominators).
func (s *Source) Report(makespan uint64) *stats.Serving {
	sh := s.q.shed
	v := &stats.Serving{
		Offered:      s.offered,
		Admitted:     s.admitted,
		Completed:    s.completed,
		ShedNewest:   sh.Newest,
		ShedOldest:   sh.Oldest,
		ShedDeadline: sh.Deadline,
		P50:          s.lat.Quantile(0.50),
		P90:          s.lat.Quantile(0.90),
		P99:          s.lat.Quantile(0.99),
		P999:         s.lat.Quantile(0.999),
		MaxLat:       s.lat.Max(),
		SLOTarget:    s.spec.SLOP99,
	}
	v.SLOMet = v.P99 <= v.SLOTarget && s.lat.Count() > 0
	if makespan > 0 {
		v.GoodputKC = 1000 * float64(s.completed) / float64(makespan)
		v.OfferedKC = 1000 * float64(s.offered) / float64(makespan)
	}
	for _, w := range s.windows {
		sw := stats.ServingWindow{
			Start:     uint64(w.start),
			Offered:   w.offered,
			Completed: w.completed,
			Shed:      w.shed,
		}
		if w.lat != nil {
			sw.P99 = w.lat.Quantile(0.99)
		}
		v.Windows = append(v.Windows, sw)
	}
	return v
}
