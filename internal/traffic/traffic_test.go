package traffic

import (
	"math"
	"testing"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/sim"
)

func testSpec() Spec {
	sp := DefaultSpec()
	sp.Shards = 512
	sp.Requests = 5000
	return sp
}

// drainStream pulls the full arrival stream from a fresh source.
func drainStream(t *testing.T, sp Spec) []Request {
	t.Helper()
	src, err := NewSource(sp, 64)
	if err != nil {
		t.Fatal(err)
	}
	var out []Request
	for {
		at, ok := src.NextArrival()
		if !ok {
			break
		}
		src.GenerateUpTo(at)
		for {
			r, ok := src.Pop(at)
			if !ok {
				break
			}
			out = append(out, r)
		}
	}
	return out
}

// TestArrivalStreamDeterministic: identical request streams (cycles, keys,
// records) for a fixed seed, and different streams for different seeds.
func TestArrivalStreamDeterministic(t *testing.T) {
	for _, arrival := range []string{ArrivalPoisson, ArrivalBurst, ArrivalDiurnal} {
		sp := testSpec()
		sp.Arrival = arrival
		sp.QueueCap = int(sp.Requests) // no shedding: compare raw streams
		a := drainStream(t, sp)
		b := drainStream(t, sp)
		if len(a) != int(sp.Requests) {
			t.Fatalf("%s: got %d requests, want %d", arrival, len(a), sp.Requests)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: stream diverged at %d: %+v vs %+v", arrival, i, a[i], b[i])
			}
		}
		sp.Seed++
		c := drainStream(t, sp)
		same := 0
		for i := range a {
			if a[i] == c[i] {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%s: different seeds produced identical streams", arrival)
		}
	}
}

// TestArrivalsMonotone: offered cycles never decrease (the saturation
// sweep's offered-load axis depends on it).
func TestArrivalsMonotone(t *testing.T) {
	for _, arrival := range []string{ArrivalPoisson, ArrivalBurst, ArrivalDiurnal} {
		sp := testSpec()
		sp.Arrival = arrival
		sp.QueueCap = int(sp.Requests)
		rs := drainStream(t, sp)
		for i := 1; i < len(rs); i++ {
			if rs[i].Arrive < rs[i-1].Arrive {
				t.Fatalf("%s: arrivals went backwards at %d: %d < %d", arrival, i, rs[i].Arrive, rs[i-1].Arrive)
			}
		}
	}
}

// TestPoissonRate: the empirical rate must be within a few percent of the
// configured rate, and the inter-arrival CV² near 1 (exponential gaps).
func TestPoissonRate(t *testing.T) {
	sp := testSpec()
	sp.Requests = 20000
	sp.QueueCap = int(sp.Requests)
	rs := drainStream(t, sp)
	span := float64(rs[len(rs)-1].Arrive - rs[0].Arrive)
	rate := 1000 * float64(len(rs)-1) / span
	if math.Abs(rate-sp.Rate)/sp.Rate > 0.05 {
		t.Fatalf("empirical rate %.3f/kc, want %.3f/kc ±5%%", rate, sp.Rate)
	}
	mean := span / float64(len(rs)-1)
	var varsum float64
	for i := 1; i < len(rs); i++ {
		d := float64(rs[i].Arrive-rs[i-1].Arrive) - mean
		varsum += d * d
	}
	cv2 := varsum / float64(len(rs)-1) / (mean * mean)
	if cv2 < 0.8 || cv2 > 1.2 {
		t.Fatalf("inter-arrival CV² = %.3f, want ≈1 for Poisson", cv2)
	}
}

// TestZipfSkew: with theta≈1 the hottest shard must take far more than its
// uniform share, and all draws must stay in range.
func TestZipfSkew(t *testing.T) {
	sp := testSpec()
	sp.Requests = 20000
	sp.QueueCap = int(sp.Requests)
	counts := make([]uint64, sp.Shards)
	for _, r := range drainStream(t, sp) {
		if uint64(r.Shard) >= sp.Shards {
			t.Fatalf("shard %d out of range", r.Shard)
		}
		counts[r.Shard]++
	}
	uniform := float64(sp.Requests) / float64(sp.Shards)
	if hot := float64(counts[0]); hot < 20*uniform {
		t.Fatalf("shard 0 drew %.0f, want ≥ 20× uniform share %.1f under theta=%.2f", hot, uniform, sp.Theta)
	}
	// Uniform (theta=0) must not be skewed.
	sp.Theta = 0
	counts = make([]uint64, sp.Shards)
	for _, r := range drainStream(t, sp) {
		counts[r.Shard]++
	}
	if hot := float64(counts[0]); hot > 5*uniform {
		t.Fatalf("theta=0 shard 0 drew %.0f, want ≈ uniform share %.1f", hot, uniform)
	}
}

// TestBurstConcentration: burst arrivals must land only in the first
// quarter of each period.
func TestBurstConcentration(t *testing.T) {
	sp := testSpec()
	sp.Arrival = ArrivalBurst
	sp.QueueCap = int(sp.Requests)
	for _, r := range drainStream(t, sp) {
		if phase := uint64(r.Arrive) % sp.BurstPeriod; phase >= sp.BurstPeriod/4+1 {
			t.Fatalf("burst arrival at phase %d of period %d (on-window is the first quarter)", phase, sp.BurstPeriod)
		}
	}
}

// TestShedPolicies: a full queue sheds the configured end.
func TestShedPolicies(t *testing.T) {
	mk := func(policy string) *admitQueue {
		sp := testSpec()
		sp.Policy = policy
		sp.QueueCap = 2
		return newAdmitQueue(sp)
	}
	q := mk(PolicyDropNewest)
	for i := 0; i < 4; i++ {
		q.offer(Request{Arrive: sim.Cycles(i)})
	}
	if q.shed.Newest != 2 || q.len() != 2 {
		t.Fatalf("drop-newest: shed=%+v len=%d", q.shed, q.len())
	}
	if r, _, _ := q.pop(10); r.Arrive != 0 {
		t.Fatalf("drop-newest kept wrong head: %+v", r)
	}

	q = mk(PolicyDropOldest)
	for i := 0; i < 4; i++ {
		q.offer(Request{Arrive: sim.Cycles(i)})
	}
	if q.shed.Oldest != 2 || q.len() != 2 {
		t.Fatalf("drop-oldest: shed=%+v len=%d", q.shed, q.len())
	}
	if r, _, _ := q.pop(10); r.Arrive != 2 {
		t.Fatalf("drop-oldest kept wrong head: %+v", r)
	}
}

// TestCoDelDeadlineShedding: heads that persistently exceed the sojourn
// target are dropped; fresh heads are served untouched.
func TestCoDelDeadlineShedding(t *testing.T) {
	sp := testSpec()
	sp.Policy = PolicyCoDel
	sp.QueueCap = 64
	sp.CoDelTarget = 100
	sp.CoDelInterval = 50
	q := newAdmitQueue(sp)
	for i := 0; i < 10; i++ {
		q.offer(Request{Arrive: sim.Cycles(i)})
	}
	// Fresh pop: below target, served.
	if _, shed, ok := q.pop(50); !ok || shed != 0 {
		t.Fatalf("fresh head shed (shed=%d ok=%v)", shed, ok)
	}
	// First above-target pop starts the persistence window and serves.
	if _, shed, ok := q.pop(200); !ok || shed != 0 {
		t.Fatalf("persistence window must serve first (shed=%d ok=%v)", shed, ok)
	}
	// Past the window, stale heads are dropped before serving.
	_, shed, ok := q.pop(300)
	if !ok || shed == 0 {
		t.Fatalf("persistent overrun did not shed (shed=%d ok=%v)", shed, ok)
	}
	if q.shed.Deadline != shed {
		t.Fatalf("deadline counter %d != shed %d", q.shed.Deadline, shed)
	}
}

// TestLatHistQuantiles: quantiles of a known uniform population land within
// the histogram's ~3% bucket error.
func TestLatHistQuantiles(t *testing.T) {
	var h LatHist
	for v := uint64(1); v <= 100000; v++ {
		h.Observe(v)
	}
	for _, c := range []struct {
		q    float64
		want uint64
	}{{0.5, 50000}, {0.9, 90000}, {0.99, 99000}, {0.999, 99900}} {
		got := h.Quantile(c.q)
		if lo, hi := float64(c.want)*0.97, float64(c.want)*1.04; float64(got) < lo || float64(got) > hi {
			t.Fatalf("q%.3f = %d, want ≈%d", c.q, got, c.want)
		}
	}
	if h.Quantile(1) != h.Max() || h.Max() != 100000 {
		t.Fatalf("max quantile %d, max %d", h.Quantile(1), h.Max())
	}
	// Exact small values.
	var h2 LatHist
	h2.Observe(7)
	if h2.Quantile(0.5) != 7 {
		t.Fatalf("small value bucket inexact: %d", h2.Quantile(0.5))
	}
}

// TestSourceSnapshotDeterministic: two sources driven identically encode
// byte-identical snapshots, and the snapshot reflects queue/counter state.
func TestSourceSnapshotDeterministic(t *testing.T) {
	drive := func() *Source {
		sp := testSpec()
		sp.QueueCap = 8
		sp.Window = 1 << 14
		src, err := NewSource(sp, 64)
		if err != nil {
			t.Fatal(err)
		}
		src.GenerateUpTo(50000)
		for i := 0; i < 3; i++ {
			if r, ok := src.Pop(50000); ok {
				src.Complete(r.Arrive, 50000+sim.Cycles(i)*100)
			}
		}
		return src
	}
	a, b := drive(), drive()
	ea, eb := checkpoint.NewEnc(nil), checkpoint.NewEnc(nil)
	a.SnapshotTo(ea)
	b.SnapshotTo(eb)
	if string(ea.Data()) != string(eb.Data()) {
		t.Fatal("identical drives produced different snapshots")
	}
	if a.Shed().Total() == 0 {
		t.Fatal("overloaded 8-deep queue shed nothing")
	}
	if a.Work() == 0 || a.QueueLen() == 0 {
		t.Fatalf("work=%d queuelen=%d", a.Work(), a.QueueLen())
	}
}

// TestSpecLabelRoundTrip: the JSON label reparses to the identical spec
// (the checkpoint-resume path depends on it).
func TestSpecLabelRoundTrip(t *testing.T) {
	sp := testSpec()
	sp.Arrival = ArrivalDiurnal
	sp.MaxInFlight = 32
	sp.CreditBytes = 1 << 20
	got, err := ParseSpec(sp.Label())
	if err != nil {
		t.Fatal(err)
	}
	if got != sp {
		t.Fatalf("round trip changed spec:\n  in  %+v\n  out %+v", sp, got)
	}
	if _, err := ParseSpec(`{"arrival":"bogus"}`); err == nil {
		t.Fatal("bogus arrival accepted")
	}
}
