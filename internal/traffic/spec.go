// Package traffic implements the open-loop serving workload: seeded arrival
// processes (Poisson, bursty, diurnal) generating Zipfian keyed requests, a
// bounded admission queue with deterministic load-shedding policies
// (drop-newest, drop-oldest, deadline-based CoDel), and SLO percentile
// accounting with warm-up exclusion. Unlike the closed-loop workloads, which
// seed a fixed batch per epoch and can never overload the fabric, an
// open-loop source keeps offering work at its configured rate regardless of
// completion — the regime where admission control and shedding decide
// whether the system degrades gracefully or queues without bound.
//
// The package is pure model state: it schedules no events and holds no
// engine reference. The core runtime drives it (generate arrivals up to
// "now", pop admitted requests, record completions), which keeps every draw
// on the single simulation goroutine and the whole request stream a pure
// function of (Spec, seed).
package traffic

import (
	"encoding/json"
	"fmt"
)

// Arrival process names.
const (
	ArrivalPoisson = "poisson"
	ArrivalBurst   = "burst"
	ArrivalDiurnal = "diurnal"
)

// Shedding policy names.
const (
	PolicyDropNewest = "drop-newest"
	PolicyDropOldest = "drop-oldest"
	PolicyCoDel      = "codel"
)

// Spec configures one open-loop serving run. The zero value is not usable;
// start from DefaultSpec. The JSON encoding doubles as the checkpoint app
// label, so a resumed run rebuilds the identical request stream.
type Spec struct {
	// Arrival selects the arrival process: poisson, burst, or diurnal.
	Arrival string `json:"arrival"`
	// Rate is the mean offered load in requests per 1000 cycles.
	Rate float64 `json:"rate"`
	// Requests is the total number of arrivals to generate.
	Requests uint64 `json:"requests"`
	// Seed drives the arrival and key streams (independent of the system
	// seed so load and platform can be varied separately).
	Seed uint64 `json:"seed"`

	// Shards is the keyed address space (kvstore-style shard count) and
	// Theta its Zipfian skew (0 = uniform).
	Shards uint64  `json:"shards"`
	Theta  float64 `json:"theta"`

	// QueueCap bounds the admission queue in requests; Policy picks what is
	// shed when it is exceeded (or, for codel, when sojourn exceeds the
	// target persistently).
	QueueCap int    `json:"queue_cap"`
	Policy   string `json:"policy"`

	// CoDelTarget is the acceptable head sojourn and CoDelInterval the
	// persistence window before head-dropping begins (codel policy only).
	CoDelTarget   uint64 `json:"codel_target,omitempty"`
	CoDelInterval uint64 `json:"codel_interval,omitempty"`

	// SLOP99 is the p99 latency target in cycles that reports compare
	// against. Warmup excludes requests arriving before that cycle from the
	// SLO accounting (shed/offered counters still include them).
	SLOP99 uint64 `json:"slo_p99"`
	Warmup uint64 `json:"warmup"`

	// Window, when non-zero, buckets offered/shed/completed/p99 into
	// fixed-size cycle windows — the degradation-curve raw data.
	Window uint64 `json:"window,omitempty"`

	// BurstPeriod is the modulation period for burst and diurnal arrivals.
	// Burst concentrates the whole period's load into the first quarter;
	// diurnal modulates the rate sinusoidally over the period.
	BurstPeriod uint64 `json:"burst_period,omitempty"`

	// MaxInFlight caps admitted-but-uncompleted requests (admission
	// credits); 0 means uncapped — which makes the fabric's task queues an
	// unbounded buffer, so the default keeps it on. CreditBytes pauses
	// injection while the bridge fabric's buffered bytes (backup + up +
	// scatter backlog) exceed it; 0 disables occupancy backpressure. Both
	// are always present in the JSON label: an explicit zero must survive
	// the round trip, not be resurrected as the default.
	MaxInFlight int    `json:"max_inflight"`
	CreditBytes uint64 `json:"credit_bytes"`

	// Barrier is the minimum quiet-epoch length: the runtime takes a
	// bulk-sync barrier (checkpoint/audit point) at the first full drain
	// after this many cycles.
	Barrier uint64 `json:"barrier,omitempty"`
}

// DefaultSpec returns a small, serviceable baseline: Poisson arrivals at 2
// requests per kcycle over a 2048-shard Zipfian keyspace, a 64-deep
// drop-newest admission queue, and a 20 kcycle p99 target.
func DefaultSpec() Spec {
	return Spec{
		Arrival:       ArrivalPoisson,
		Rate:          2,
		Requests:      2000,
		Seed:          1,
		Shards:        2048,
		Theta:         0.99,
		QueueCap:      64,
		Policy:        PolicyDropNewest,
		CoDelTarget:   5000,
		CoDelInterval: 2000,
		SLOP99:        20000,
		Warmup:        10000,
		BurstPeriod:   1 << 15,
		MaxInFlight:   64,
		Barrier:       1 << 14,
	}
}

// Validate reports the first configuration error.
func (sp *Spec) Validate() error {
	switch sp.Arrival {
	case ArrivalPoisson, ArrivalBurst, ArrivalDiurnal:
	default:
		return fmt.Errorf("traffic: unknown arrival process %q", sp.Arrival)
	}
	switch sp.Policy {
	case PolicyDropNewest, PolicyDropOldest, PolicyCoDel:
	default:
		return fmt.Errorf("traffic: unknown shed policy %q", sp.Policy)
	}
	if sp.Rate <= 0 {
		return fmt.Errorf("traffic: rate must be positive, got %g", sp.Rate)
	}
	if sp.Requests == 0 {
		return fmt.Errorf("traffic: zero requests")
	}
	if sp.Shards == 0 {
		return fmt.Errorf("traffic: zero shards")
	}
	if sp.QueueCap <= 0 {
		return fmt.Errorf("traffic: queue cap must be positive, got %d", sp.QueueCap)
	}
	if sp.Policy == PolicyCoDel && (sp.CoDelTarget == 0 || sp.CoDelInterval == 0) {
		return fmt.Errorf("traffic: codel policy needs codel_target and codel_interval")
	}
	if (sp.Arrival == ArrivalBurst || sp.Arrival == ArrivalDiurnal) && sp.BurstPeriod == 0 {
		return fmt.Errorf("traffic: %s arrivals need burst_period", sp.Arrival)
	}
	return nil
}

// Label renders the spec as its canonical JSON form — used as the
// checkpoint app label so resume rebuilds the identical stream.
func (sp Spec) Label() string {
	b, err := json.Marshal(sp)
	if err != nil {
		panic("traffic: spec marshal: " + err.Error())
	}
	return string(b)
}

// ParseSpec decodes a Label-produced JSON spec and validates it.
func ParseSpec(s string) (Spec, error) {
	sp := DefaultSpec()
	if err := json.Unmarshal([]byte(s), &sp); err != nil {
		return Spec{}, fmt.Errorf("traffic: parse spec: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}
