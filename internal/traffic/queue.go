package traffic

import "ndpbridge/internal/sim"

// ShedStats counts admission-control decisions by cause.
type ShedStats struct {
	Newest   uint64 // arrivals rejected at a full queue (drop-newest)
	Oldest   uint64 // queue heads evicted to admit an arrival (drop-oldest)
	Deadline uint64 // queue heads dropped for persistent sojourn overrun (codel)
}

// Total returns all shed requests.
func (s ShedStats) Total() uint64 { return s.Newest + s.Oldest + s.Deadline }

// admitQueue is the bounded admission queue: a fixed-capacity ring of
// requests plus the deterministic shedding policy applied at its two edges
// (Offer on arrival, Pop on drain). It never allocates after construction —
// boundedness is the whole point.
type admitQueue struct {
	spec Spec //ndplint:nosnap config constant from construction
	buf  []Request
	head int
	n    int
	shed ShedStats

	// CoDel state (codel policy only): the start of the current
	// above-target excursion (0 = none) and the next scheduled head drop
	// with its in-excursion drop count, per the sqrt control law.
	firstAbove sim.Cycles
	dropNext   sim.Cycles
	dropCount  uint64
}

func newAdmitQueue(sp Spec) *admitQueue {
	return &admitQueue{spec: sp, buf: make([]Request, sp.QueueCap)}
}

func (q *admitQueue) len() int { return q.n }

func (q *admitQueue) push(r Request) {
	q.buf[(q.head+q.n)%len(q.buf)] = r
	q.n++
}

func (q *admitQueue) popHead() Request {
	r := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return r
}

// offer admits r or sheds per policy. It returns the number of requests shed
// by this offer (0 or 1).
func (q *admitQueue) offer(r Request) uint64 {
	if q.n < len(q.buf) {
		q.push(r)
		return 0
	}
	if q.spec.Policy == PolicyDropOldest {
		q.popHead()
		q.shed.Oldest++
		q.push(r)
		return 1
	}
	// drop-newest is also codel's full-queue behaviour: codel sheds by
	// sojourn at the head, and a full queue rejects at the tail.
	q.shed.Newest++
	return 1
}

// pop removes and returns the next admissible request. Under codel it first
// sheds heads whose sojourn has stayed above target for a full interval,
// following the classic control law: once above-target persists for
// CoDelInterval, drop the head and halve the next drop spacing (interval /
// sqrt(count)) until sojourn recovers. Returns shed, the number of requests
// dropped by this call, and ok=false when the queue emptied without an
// admissible request.
func (q *admitQueue) pop(now sim.Cycles) (r Request, shed uint64, ok bool) {
	if q.spec.Policy != PolicyCoDel {
		if q.n == 0 {
			return Request{}, 0, false
		}
		return q.popHead(), 0, true
	}
	target := sim.Cycles(q.spec.CoDelTarget)
	interval := sim.Cycles(q.spec.CoDelInterval)
	for q.n > 0 {
		sojourn := now - q.buf[q.head].Arrive
		if sojourn < target {
			q.firstAbove, q.dropNext, q.dropCount = 0, 0, 0
			return q.popHead(), shed, true
		}
		if q.firstAbove == 0 {
			q.firstAbove = now + interval
		}
		drop := false
		if q.dropNext != 0 {
			drop = now >= q.dropNext // dropping state: sqrt-spaced drops
		} else {
			drop = now >= q.firstAbove // waiting out the persistence window
		}
		if !drop {
			return q.popHead(), shed, true
		}
		q.popHead()
		q.shed.Deadline++
		shed++
		q.dropCount++
		q.dropNext = now + interval/sim.Cycles(isqrt(q.dropCount))
	}
	return Request{}, shed, false
}

// isqrt returns the integer square root, min 1.
func isqrt(v uint64) uint64 {
	if v < 2 {
		return 1
	}
	x := v
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + v/x) / 2
	}
	return x
}
