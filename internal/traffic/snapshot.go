package traffic

import (
	"math"

	"ndpbridge/internal/checkpoint"
)

// SnapshotTo encodes the source's full serving state for the core state
// digest. Resume is replay-with-verification, so this is encode-only: the
// replayed run regenerates the identical source state and the digests must
// match byte for byte.
func (s *Source) SnapshotTo(e *checkpoint.Enc) {
	s.arr.snapshotTo(e)
	s.q.snapshotTo(e)
	e.Bool(s.hasPending)
	if s.hasPending {
		encodeRequest(e, s.pending)
	}
	e.Bool(s.exhausted)
	e.U64(s.offered)
	e.U64(s.admitted)
	e.U64(s.completed)
	e.U64(s.inflight)
	e.U64(s.work)
	s.lat.snapshotTo(e)
	e.U32(uint32(len(s.windows)))
	for _, w := range s.windows {
		e.U64(w.start)
		e.U64(w.offered)
		e.U64(w.completed)
		e.U64(w.shed)
		e.Bool(w.lat != nil)
		if w.lat != nil {
			w.lat.snapshotTo(e)
		}
	}
}

func encodeRequest(e *checkpoint.Enc, r Request) {
	e.U64(r.Arrive)
	e.U32(r.Shard)
	e.U32(r.Rec)
}

// snapshotTo encodes the arrival process's mutable cursor. The spec and the
// Zipf CDF are construction-time constants.
func (a *arrivals) snapshotTo(e *checkpoint.Enc) {
	e.U64(a.rng.State())
	e.U64(a.krng.State())
	e.U64(math.Float64bits(a.clock))
	e.U64(a.generated)
}

// snapshotTo encodes the admission queue: live entries in FIFO order, the
// shed counters, and the CoDel control state.
func (q *admitQueue) snapshotTo(e *checkpoint.Enc) {
	e.U32(uint32(q.n))
	for i := 0; i < q.n; i++ {
		encodeRequest(e, q.buf[(q.head+i)%len(q.buf)])
	}
	e.U64(q.shed.Newest)
	e.U64(q.shed.Oldest)
	e.U64(q.shed.Deadline)
	e.U64(q.firstAbove)
	e.U64(q.dropNext)
	e.U64(q.dropCount)
}

// snapshotTo encodes the histogram sparsely: count, max, and each non-zero
// bucket as an (index, count) pair.
func (h *LatHist) snapshotTo(e *checkpoint.Enc) {
	e.U64(h.n)
	e.U64(h.max)
	nz := uint32(0)
	for i := range h.b {
		if h.b[i] != 0 {
			nz++
		}
	}
	e.U32(nz)
	for i := range h.b {
		if h.b[i] != 0 {
			e.U32(uint32(i))
			e.U64(h.b[i])
		}
	}
}
