package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestServingSweepKneeAndJobsDeterminism runs the saturation sweep twice —
// sequentially and with a wide worker pool — and requires byte-identical
// tables (the -j flag must never change results), a monotone offered axis
// (enforced inside ServingSweep), and a detected knee.
func TestServingSweepKneeAndJobsDeterminism(t *testing.T) {
	SetJobs(1)
	seq, err := ServingSweep(Small)
	if err != nil {
		t.Fatal(err)
	}
	SetJobs(4)
	par, err := ServingSweep(Small)
	SetJobs(0)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Render() != par.Render() {
		t.Fatalf("sweep differs between -j 1 and -j 4:\n%s\n%s", seq.Render(), par.Render())
	}
	if !strings.Contains(seq.Render(), "knee") || len(seq.Rows) != len(perUnitRates) {
		t.Fatalf("sweep table malformed:\n%s", seq.Render())
	}
	knee := -1
	for i, row := range seq.Rows {
		if row[len(row)-1] != "" {
			knee = i
		}
	}
	if knee <= 0 {
		t.Fatalf("no saturation knee detected:\n%s", seq.Render())
	}
}

// goldenServingPath is the committed degradation curve of the fixed-seed
// Small rank-dark run. Regenerate with -update and justify drift in review.
const goldenServingPath = "../../results/golden/serving-degrade.txt"

func TestGoldenServingDegrade(t *testing.T) {
	SetJobs(1)
	defer SetJobs(0)
	tab, err := ServingDegrade(Small)
	if err != nil {
		t.Fatal(err)
	}
	got := tab.Render()

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenServingPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenServingPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", goldenServingPath)
		return
	}
	want, err := os.ReadFile(goldenServingPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("serving degradation curve drifted (run with -update if intentional):\n got:\n%s\nwant:\n%s", got, want)
	}

	// Structural checks on the curve itself: the dark window sheds, and
	// the healed tail's goodput recovers to ≥95% of the pre-fault level.
	var preSum, preN, healSum, healN, darkShed int
	for _, row := range tab.Rows {
		if row[0] == "total" {
			continue
		}
		completed, shed := atoi(t, row[3]), atoi(t, row[4])
		switch row[1] {
		case "pre":
			if row[0] != "0" { // warm-up window excluded
				preSum += completed
				preN++
			}
		case "dark":
			darkShed += shed
		case "heal":
			if offered := atoi(t, row[2]); offered > 0 {
				healSum += completed
				healN++
			}
		}
	}
	if preN == 0 || healN == 0 {
		t.Fatalf("curve missed a phase:\n%s", got)
	}
	if darkShed == 0 {
		t.Fatalf("rank-dark window shed nothing:\n%s", got)
	}
	pre, heal := float64(preSum)/float64(preN), float64(healSum)/float64(healN)
	if heal < 0.95*pre {
		t.Fatalf("goodput did not recover: pre %.1f/window, heal %.1f/window", pre, heal)
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("non-numeric cell %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}
