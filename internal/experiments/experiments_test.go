package experiments

import (
	"math"
	"strings"
	"testing"

	"ndpbridge/internal/config"
)

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v", g)
	}
	if g := geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
	if g := geomean([]float64{3}); math.Abs(g-3) > 1e-12 {
		t.Errorf("geomean(3) = %v", g)
	}
}

func TestTables(t *testing.T) {
	t1 := Table1()
	if !strings.Contains(t1.Render(), "512 units") {
		t.Errorf("Table1 missing unit count:\n%s", t1.Render())
	}
	t2 := Table2()
	if len(t2.Rows) != 6 {
		t.Errorf("Table2 rows = %d", len(t2.Rows))
	}
}

func TestFig2Small(t *testing.T) {
	tbl, err := Fig2(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("Fig2 rows = %d", len(tbl.Rows))
	}
}

func TestFig10Small(t *testing.T) {
	tbl, cells, err := Fig10(Small)
	if err != nil {
		t.Fatal(err)
	}
	// 8 apps + geomean row.
	if len(tbl.Rows) != 9 {
		t.Errorf("Fig10 rows = %d", len(tbl.Rows))
	}
	if len(cells) != 8*4 {
		t.Errorf("Fig10 cells = %d", len(cells))
	}
	// Every C column entry is 1.00 by construction.
	for _, row := range tbl.Rows[:8] {
		if row[1] != "1.00" {
			t.Errorf("app %s: C speedup = %s", row[0], row[1])
		}
	}
}

func TestFig11Small(t *testing.T) {
	tbl, cells, err := Fig11(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 || len(cells) != 8*4 {
		t.Errorf("Fig11 shape wrong: %d rows, %d cells", len(tbl.Rows), len(cells))
	}
}

func TestFig12Small(t *testing.T) {
	tbl, err := Fig12(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("Fig12 rows = %d", len(tbl.Rows))
	}
}

func TestFig13Small(t *testing.T) {
	tbl, err := Fig13(Small, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8*4 {
		t.Errorf("Fig13 rows = %d", len(tbl.Rows))
	}
	// O rows must sum components to the total column within rounding.
	for _, row := range tbl.Rows {
		if row[1] == "O" && row[6] != "1.00" {
			t.Errorf("%s/O total = %s, want 1.00", row[0], row[6])
		}
	}
}

func TestFig14aSmall(t *testing.T) {
	tbl, err := Fig14a(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 { // +Adv, +Fine, +Hot, O(all)
		t.Errorf("Fig14a rows = %d", len(tbl.Rows))
	}
}

func TestFig14bSmall(t *testing.T) {
	tbl, err := Fig14b(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("Fig14b rows = %d", len(tbl.Rows))
	}
	// The dynamic row is the reference: both ratios exactly 1.
	if tbl.Rows[0][1] != "1.00" || tbl.Rows[0][2] != "1.00" {
		t.Errorf("dynamic reference row = %v", tbl.Rows[0])
	}
}

func TestFig16bSmall(t *testing.T) {
	tbl, err := Fig16b(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Errorf("Fig16b rows = %d", len(tbl.Rows))
	}
}

func TestSplitDBSmall(t *testing.T) {
	tbl, err := SplitDB(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("SplitDB rows = %d", len(tbl.Rows))
	}
}

func TestRunDesignRejectsUnknownApp(t *testing.T) {
	if _, err := runDesign(Small, "nope", config.DesignO, nil); err == nil {
		t.Error("unknown app must fail")
	}
}

func TestL2VariantsSmall(t *testing.T) {
	tbl, err := L2Variants(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("L2Variants rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][1] != "1.00" {
		t.Errorf("host transport must be the 1.00 reference, got %v", tbl.Rows[0])
	}
}
