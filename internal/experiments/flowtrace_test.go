package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/core"
	"ndpbridge/internal/trace"
)

// TestFlowTraceResultsByteIdentical is the observer-effect guard: running the
// same cell with causal tracing on must change nothing about the simulation's
// outcome — the Result (minus the Crit summary only a traced run can carry)
// serializes to the same bytes.
func TestFlowTraceResultsByteIdentical(t *testing.T) {
	plain, err := runDesign(Small, "tree", config.DesignO, nil)
	if err != nil {
		t.Fatal(err)
	}
	EnableFlowTrace(0)
	traced, err := runDesign(Small, "tree", config.DesignO, nil)
	rows := TakeCrit()
	if err != nil {
		t.Fatal(err)
	}
	if traced.Crit == nil {
		t.Fatal("traced run carries no Crit summary")
	}
	if len(rows) != 1 {
		t.Fatalf("TakeCrit returned %d rows, want 1", len(rows))
	}
	stripped := *traced
	stripped.Crit = nil
	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(&stripped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("tracing perturbed the simulation:\nuntraced: %s\ntraced:   %s", a, b)
	}
	// The harvested row mirrors the run.
	if rows[0].App != "tree" || rows[0].Design != "O" || rows[0].Makespan != plain.Makespan {
		t.Errorf("CritRow = %+v, want tree/O makespan %d", rows[0], plain.Makespan)
	}
	sum := rows[0].Crit.BankBusy + rows[0].Crit.TaskQueue + rows[0].Crit.GatherBatch +
		rows[0].Crit.BridgeQueue + rows[0].Crit.LBMigration + rows[0].Crit.Retry +
		rows[0].Crit.HostRT + rows[0].Crit.Slack
	if sum != plain.Makespan {
		t.Errorf("attribution sums to %d cycles, makespan is %d", sum, plain.Makespan)
	}
}

// TestFlowTraceRowsDeterministic runs a grid at full pool width twice and
// demands identical sorted rows: completion order may differ, the harvest
// must not.
func TestFlowTraceRowsDeterministic(t *testing.T) {
	collect := func() []CritRow {
		EnableFlowTrace(0)
		_, err := Grid(Small, []string{"ll", "tree"}, []config.Design{config.DesignC, config.DesignO}, nil)
		rows := TakeCrit()
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	r1, r2 := collect(), collect()
	a, _ := json.Marshal(r1)
	b, _ := json.Marshal(r2)
	if !bytes.Equal(a, b) {
		t.Errorf("crit rows differ across identical runs:\n%s\n%s", a, b)
	}
	if !sort.SliceIsSorted(r1, func(i, j int) bool {
		if r1[i].App != r1[j].App {
			return r1[i].App < r1[j].App
		}
		return r1[i].Design < r1[j].Design
	}) {
		t.Errorf("rows not sorted: %+v", r1)
	}
}

// goldenCritPath is the committed rendered critical-path report of a
// fixed-seed small run; regenerate deliberately with -update.
const goldenCritPath = "../../results/golden/critpath-small.txt"

func TestGoldenCritPathReport(t *testing.T) {
	app, err := newApp("tree", Small)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(baseConfig(Small).WithDesign(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(0)
	rec.EnableFlows(0)
	sys.AttachTrace(rec)
	r, err := sys.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	rep := rec.CritPath(r.Makespan)
	got := []byte(rep.Render())

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenCritPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenCritPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", goldenCritPath)
		return
	}
	want, err := os.ReadFile(goldenCritPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("critical-path report drifted from %s:\ngot:\n%swant:\n%s", goldenCritPath, got, want)
	}
}
