package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestParMapOrdering(t *testing.T) {
	defer SetJobs(0)
	for _, j := range []int{1, 3, 8} {
		SetJobs(j)
		out, err := parMap(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("jobs=%d: %v", j, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d, want %d", j, i, v, i*i)
			}
		}
	}
}

func TestParMapFirstError(t *testing.T) {
	defer SetJobs(0)
	SetJobs(4)
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := parMap(50, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, errA
		case 30:
			return 0, errB
		}
		return i, nil
	})
	// Deterministic: the lowest failing index wins, as in a sequential loop.
	if err != errA {
		t.Fatalf("err = %v, want %v", err, errA)
	}
}

func TestParMapCancelsDispatch(t *testing.T) {
	defer SetJobs(0)
	SetJobs(2)
	var started atomic.Int64
	boom := errors.New("boom")
	const n = 10_000
	_, err := parMap(n, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, boom
		}
		// Yield so the erroring worker always gets scheduled promptly,
		// even on a single-CPU box.
		time.Sleep(200 * time.Microsecond)
		return i, nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := started.Load(); got == n {
		t.Fatalf("all %d items dispatched despite early error", got)
	}
}

func TestParMapEmptyAndSingle(t *testing.T) {
	out, err := parMap(0, func(i int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty: out=%v err=%v", out, err)
	}
	out, err = parMap(1, func(i int) (int, error) { return 42, nil })
	if err != nil || len(out) != 1 || out[0] != 42 {
		t.Fatalf("single: out=%v err=%v", out, err)
	}
}

// The headline determinism guarantee: running the full Fig. 10 grid
// sequentially and on a 4-wide worker pool renders byte-identical tables —
// every System owns a private engine and RNG, and results are
// index-addressed, so scheduling order cannot leak into the output.
func TestFig10ParallelDeterminism(t *testing.T) {
	defer SetJobs(0)

	SetJobs(1)
	seqTable, seqCells, err := Fig10(Small)
	if err != nil {
		t.Fatalf("sequential Fig10: %v", err)
	}

	SetJobs(4)
	parTable, parCells, err := Fig10(Small)
	if err != nil {
		t.Fatalf("parallel Fig10: %v", err)
	}

	if got, want := parTable.Render(), seqTable.Render(); got != want {
		t.Errorf("rendered tables differ between -j 1 and -j 4:\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if len(seqCells) != len(parCells) {
		t.Fatalf("cell counts differ: %d vs %d", len(seqCells), len(parCells))
	}
	for i := range seqCells {
		s, p := seqCells[i], parCells[i]
		if s.App != p.App || s.Design != p.Design {
			t.Fatalf("cell %d order differs: %s/%s vs %s/%s", i, s.App, s.Design, p.App, p.Design)
		}
		if s.R.Makespan != p.R.Makespan || s.R.TasksExecuted != p.R.TasksExecuted || s.R.Events != p.R.Events {
			t.Errorf("cell %d (%s/%s): sequential makespan=%d tasks=%d events=%d, parallel makespan=%d tasks=%d events=%d",
				i, s.App, s.Design, s.R.Makespan, s.R.TasksExecuted, s.R.Events,
				p.R.Makespan, p.R.TasksExecuted, p.R.Events)
		}
	}
}

// Design H exercises the host executor, whose RNG used to be shared across
// Systems; it must now be private so parallel H runs stay deterministic.
func TestFig11ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig11 covers six designs; skipped in -short")
	}
	defer SetJobs(0)

	SetJobs(1)
	seqTable, _, err := Fig11(Small)
	if err != nil {
		t.Fatalf("sequential Fig11: %v", err)
	}
	SetJobs(4)
	parTable, _, err := Fig11(Small)
	if err != nil {
		t.Fatalf("parallel Fig11: %v", err)
	}
	if got, want := parTable.Render(), seqTable.Render(); got != want {
		t.Errorf("rendered Fig11 tables differ between -j 1 and -j 4:\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
	}
}

func TestRunCounters(t *testing.T) {
	ResetCounters()
	if _, _, err := Fig10(Small); err != nil {
		t.Fatal(err)
	}
	c := Counters()
	// Fig10 runs 8 apps × 4 designs = 32 simulations.
	if c.Runs != 32 {
		t.Errorf("Runs = %d, want 32", c.Runs)
	}
	if c.Events == 0 || c.Cycles == 0 {
		t.Errorf("Events=%d Cycles=%d, want both > 0", c.Events, c.Cycles)
	}
}
