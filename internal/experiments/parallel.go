package experiments

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"ndpbridge/internal/config"
)

// The experiment layer fans independent simulations across a worker pool.
// Every core.System owns a private sim.Engine and split RNG, so (app,
// design, config) runs are share-nothing; the only coordination is the
// index-addressed result slice, which keeps rendered tables byte-identical
// to a sequential run regardless of completion order.

// jobs is the worker-pool width. Zero means runtime.GOMAXPROCS(0).
var jobs atomic.Int64

// SetJobs sets the number of simulations run concurrently. n <= 0 restores
// the default (one worker per available CPU); n == 1 is fully sequential.
func SetJobs(n int) {
	if n < 0 {
		n = 0
	}
	jobs.Store(int64(n))
}

// Jobs returns the effective worker-pool width.
func Jobs() int {
	if n := int(jobs.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ErrCanceled is returned by the pool once Cancel has been observed. Callers
// (ndpbench) match it to distinguish an interrupt from a worker failure.
var ErrCanceled = errors.New("experiments: canceled")

// canceled is the package-wide cancellation latch, set from a signal handler
// goroutine and polled by the dispatch loop and by in-flight engines.
var canceled atomic.Bool

// Cancel stops the pool: no further simulations are dispatched, and every
// in-flight engine halts at its next progress checkpoint. Safe to call from
// any goroutine (e.g. a Ctrl-C handler); idempotent.
func Cancel() { canceled.Store(true) }

// Canceled reports whether Cancel has been called.
func Canceled() bool { return canceled.Load() }

// ResetCancel re-arms the pool after a cancellation (tests only).
func ResetCancel() { canceled.Store(false) }

// parMap runs fn for every index in [0, n) on a pool of Jobs() workers and
// returns the results in index order. On error it returns the error with
// the lowest index (deterministic first-error semantics, matching what a
// sequential loop would report) and cancels the dispatch of any work not
// yet started; in-flight simulations run to completion.
func parMap[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers := Jobs()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if canceled.Load() {
				return nil, ErrCanceled
			}
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next     atomic.Int64       // next index to dispatch
		firstErr atomic.Int64       // lowest index that failed, or n
		errs     = make([]error, n) // error per index (only failures set)
		wg       sync.WaitGroup
	)
	firstErr.Store(int64(n))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || int64(i) > firstErr.Load() || canceled.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					// Lower the first-error watermark to i.
					for {
						cur := firstErr.Load()
						if int64(i) >= cur || firstErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if canceled.Load() {
		// A cancellation masks the (nondeterministic) errors of engines it
		// halted mid-run; report the interrupt itself.
		return nil, ErrCanceled
	}
	if i := firstErr.Load(); i < int64(n) {
		return nil, errs[i]
	}
	return out, nil
}

// ParMap runs fn for every index in [0, n) on the experiment worker pool
// (width Jobs()) and returns the results in index order, with deterministic
// first-error semantics and cancellation via Cancel. It is the parallelism
// primitive shared with other campaign drivers (the chaos engine): results
// are index-addressed, so output built by folding them in order is
// byte-identical at any pool width.
func ParMap[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return parMap(n, fn)
}

// parByApp runs fn once per app on the worker pool and returns a name-keyed
// map of the results. The map is assembled after the barrier on one
// goroutine, so reads never race.
func parByApp[T any](apps []string, fn func(app string) (T, error)) (map[string]T, error) {
	rs, err := parMap(len(apps), func(i int) (T, error) { return fn(apps[i]) })
	if err != nil {
		return nil, err
	}
	m := make(map[string]T, len(apps))
	for i, a := range apps {
		m[a] = rs[i]
	}
	return m, nil
}

// baseMakespans runs design O unmodified once per app — the normalization
// denominator shared by the Fig. 16 sweeps and the transport study.
func baseMakespans(sc Scale, apps []string) (map[string]uint64, error) {
	return parByApp(apps, func(a string) (uint64, error) {
		r, err := runDesign(sc, a, config.DesignO, nil)
		if err != nil {
			return 0, err
		}
		return r.Makespan, nil
	})
}
