package experiments

import (
	"fmt"
	"sync"

	"ndpbridge/internal/config"
	"ndpbridge/internal/core"
	"ndpbridge/internal/metrics"
	"ndpbridge/internal/stats"
)

// Metrics collection across the worker pool. Registries are single-goroutine
// by design, so the harness gives every run its own registry and folds it
// into the package aggregate after the run finishes, under metMu — the only
// cross-goroutine metrics operation. Series names are prefixed with
// "app/design/" so sweeps that run the same pair twice stay distinguishable
// (Merge adds "#2" suffixes on collisions).

var (
	metMu  sync.Mutex
	metAgg *metrics.Registry
)

// EnableMetrics starts collecting per-run metrics into a fresh aggregate.
// Call before launching an experiment; pair with TakeMetrics.
func EnableMetrics() {
	metMu.Lock()
	defer metMu.Unlock()
	metAgg = metrics.NewRegistry()
}

// TakeMetrics returns the aggregate accumulated since EnableMetrics and
// turns collection off. Returns nil when collection was never enabled.
func TakeMetrics() *metrics.Registry {
	metMu.Lock()
	defer metMu.Unlock()
	agg := metAgg
	metAgg = nil
	return agg
}

func metricsEnabled() bool {
	metMu.Lock()
	defer metMu.Unlock()
	return metAgg != nil
}

func mergeMetrics(src *metrics.Registry, prefix string) {
	metMu.Lock()
	defer metMu.Unlock()
	metAgg.Merge(src, prefix)
}

// Latency regenerates the end-to-end latency table: task spawn→execute and
// message send→deliver percentiles per app on the full NDPBridge design,
// plus the epoch count and mean gather batch. This is the observability
// experiment introduced with the metrics layer, not a paper figure.
func Latency(sc Scale) (*stats.Table, error) {
	apps := Apps()
	rows, err := parMap(len(apps), func(i int) ([]string, error) {
		app, err := newApp(apps[i], sc)
		if err != nil {
			return nil, err
		}
		sys, err := core.New(baseConfig(sc).WithDesign(config.DesignO))
		if err != nil {
			return nil, err
		}
		reg := metrics.NewRegistry()
		sys.AttachMetrics(reg)
		r, err := runSystem(sys, app)
		if err != nil {
			return nil, fmt.Errorf("%s/O: %w", apps[i], err)
		}
		epochs := reg.FindHistogram("epoch_cycles").Count()
		gatherMean := reg.FindHistogram("gather_batch_bytes").Mean()
		return []string{
			apps[i],
			r.TaskLatency.String(),
			r.MsgLatency.String(),
			fmt.Sprintf("%d", epochs),
			f2(gatherMean),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &stats.Table{
		Title:  "End-to-end latency percentiles (design O, cycles, p50/p90/p99/max)",
		Header: []string{"app", "task latency", "msg latency", "epochs", "gather B/round"},
		Rows:   rows,
	}, nil
}
