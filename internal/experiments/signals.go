package experiments

import "os"

// HandleSignals implements two-stage interrupt handling for campaign CLIs:
// the first signal requests a graceful stop (cancel), the second forces
// exit. cancel runs on its own goroutine, so a worker pool wedged inside
// cancel — or a pool that never drains after cancellation — cannot block the
// second signal from being seen. notify (optional) observes each signal with
// its ordinal, for user-facing "stopping…" / "forcing exit" messages.
//
// The handler goroutine exits after calling force, or when sigc is closed.
func HandleSignals(sigc <-chan os.Signal, cancel, force func(), notify func(n int)) {
	go func() {
		n := 0
		for range sigc {
			n++
			if notify != nil {
				notify(n)
			}
			if n == 1 {
				go cancel()
				continue
			}
			force()
			return
		}
	}()
}
