// Package experiments regenerates every table and figure of the NDPBridge
// paper's evaluation (Section VIII) on the simulator: the baseline
// inefficiency study (Fig. 2), the overall comparison (Fig. 10), the
// alternative-architecture comparison (Fig. 11), scalability (Fig. 12),
// energy (Fig. 13), the load-balancing and triggering ablations (Fig. 14),
// the DQ-width study (Fig. 15), the design-parameter sweeps (Fig. 16), the
// split-DIMM-buffer variant (Section VIII-A), and the configuration tables
// (Tables I and II).
//
// Every experiment has a Small variant used by the test suite; the full
// variants run the paper-sized workloads.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"ndpbridge/internal/config"
	"ndpbridge/internal/core"
	"ndpbridge/internal/metrics"
	"ndpbridge/internal/stats"
	"ndpbridge/internal/workloads"
)

// Scale selects workload and system sizing.
type Scale int

const (
	// Full runs the paper-sized configuration (512 units).
	Full Scale = iota
	// Medium keeps the full 512-unit system but runs reduced workloads,
	// regenerating the whole figure suite in minutes (the default for
	// `go test -bench`).
	Medium
	// Small runs an 8-unit system with test-sized workloads.
	Small
)

// baseConfig returns the starting configuration for a scale.
func baseConfig(sc Scale) config.Config {
	cfg := config.Default()
	if sc == Small {
		cfg.Geometry = config.Geometry{
			Channels: 2, RanksPerChannel: 1, ChipsPerRank: 2, BanksPerChip: 2,
			BankBytes: 8 << 20,
		}
	}
	return cfg
}

// newApp builds a workload at the right size.
func newApp(name string, sc Scale) (core.App, error) {
	switch sc {
	case Small:
		return workloads.NewSmall(name)
	case Medium:
		return workloads.NewMedium(name)
	}
	return workloads.New(name)
}

// run executes one (app, config) pair, consulting the campaign checkpoint
// cache first when one is configured. The cache stores final results only,
// so it is bypassed while metrics collection is on.
func run(cfg config.Config, appName string, sc Scale) (*stats.Result, error) {
	dir := CheckpointDir()
	var key []byte
	if dir != "" && !metricsEnabled() && !flowTraceEnabled() {
		var err error
		key, err = cacheKeyMaterial(cfg, appName, sc)
		if err != nil {
			return nil, err
		}
		if r := loadCachedRun(dir, key); r != nil {
			ctrCacheHits.Add(1)
			return r, nil
		}
	}
	app, err := newApp(appName, sc)
	if err != nil {
		return nil, err
	}
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if auditEvery := AuditEvery(); auditEvery != 0 {
		if err := sys.AttachAudit(auditEvery); err != nil {
			return nil, err
		}
	}
	r, err := runSystem(sys, app)
	if err != nil {
		return nil, err
	}
	if key != nil {
		if err := saveCachedRun(dir, key, r); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// runSystem executes one prepared system and feeds the global run counters
// that back ndpbench's events/sec summary. Every simulation in this package
// goes through it; when metrics collection is enabled (EnableMetrics) and the
// caller did not attach its own registry, the run gets a private one that is
// merged into the package aggregate after the run.
func runSystem(sys *core.System, app core.App) (*stats.Result, error) {
	collect := false
	if sys.Metrics() == nil && metricsEnabled() {
		sys.AttachMetrics(metrics.NewRegistry())
		collect = true
	}
	attachFlowTrace(sys.AttachTrace, sys.Trace())
	// Cancellation checkpoint: once the pool is canceled, the engine halts
	// within 64K events instead of finishing a long simulation. The hook runs
	// on the engine's own goroutine, so Stop needs no synchronization.
	eng := sys.Engine()
	eng.SetProgress(1<<16, func(_, _ uint64) {
		if canceled.Load() {
			eng.Stop()
		}
	})
	r, err := sys.Run(app)
	if canceled.Load() {
		return nil, ErrCanceled
	}
	if err != nil {
		return nil, err
	}
	if collect {
		mergeMetrics(sys.Metrics(), r.App+"/"+r.Design+"/")
	}
	if r.Crit != nil {
		addCritRow(CritRow{App: r.App, Design: r.Design, Makespan: r.Makespan, Crit: *r.Crit})
	}
	ctrRuns.Add(1)
	ctrEvents.Add(r.Events)
	ctrCycles.Add(r.Makespan)
	return r, nil
}

// Run counters: simulations executed, engine events processed, and
// simulated cycles covered since the last ResetCounters. Atomic because the
// worker pool updates them concurrently.
var ctrRuns, ctrEvents, ctrCycles atomic.Uint64

// RunCounters is a snapshot of the package-wide simulation totals.
type RunCounters struct {
	Runs   uint64 // simulations completed
	Events uint64 // discrete events processed across all engines
	Cycles uint64 // simulated cycles summed over runs
}

// ResetCounters zeroes the run counters (call before an experiment).
func ResetCounters() {
	ctrRuns.Store(0)
	ctrEvents.Store(0)
	ctrCycles.Store(0)
	ctrCacheHits.Store(0)
}

// Counters returns the totals accumulated since the last ResetCounters.
func Counters() RunCounters {
	return RunCounters{Runs: ctrRuns.Load(), Events: ctrEvents.Load(), Cycles: ctrCycles.Load()}
}

// runDesign is run with a design selector applied.
func runDesign(sc Scale, appName string, d config.Design, mutate func(*config.Config)) (*stats.Result, error) {
	cfg := baseConfig(sc).WithDesign(d)
	if mutate != nil {
		mutate(&cfg)
	}
	return run(cfg, appName, sc)
}

// geomean returns the geometric mean of xs (which must be positive).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Apps lists the evaluated workloads, in paper order.
func Apps() []string { return workloads.Names }

// CellResult is one (app, design) measurement.
type CellResult struct {
	App    string
	Design string
	R      *stats.Result
}

// Grid runs apps × designs on the worker pool and returns every result,
// app-major. Each cell is an independent simulation; results come back in
// the same deterministic order a sequential double loop would produce.
func Grid(sc Scale, apps []string, designs []config.Design, mutate func(*config.Config)) ([]CellResult, error) {
	nd := len(designs)
	return parMap(len(apps)*nd, func(i int) (CellResult, error) {
		a, d := apps[i/nd], designs[i%nd]
		r, err := runDesign(sc, a, d, mutate)
		if err != nil {
			return CellResult{}, fmt.Errorf("%s/%v: %w", a, d, err)
		}
		return CellResult{App: a, Design: d.String(), R: r}, nil
	})
}

// byApp reshapes grid results into app → design → result.
func byApp(cells []CellResult) (map[string]map[string]*stats.Result, []string) {
	m := make(map[string]map[string]*stats.Result)
	var order []string
	for _, c := range cells {
		if m[c.App] == nil {
			m[c.App] = make(map[string]*stats.Result)
			order = append(order, c.App)
		}
		m[c.App][c.Design] = c.R
	}
	return m, order
}

// speedupGeomean computes the geomean across apps of base/design makespan.
func speedupGeomean(m map[string]map[string]*stats.Result, apps []string, base, design string) float64 {
	var xs []float64
	for _, a := range apps {
		b, ok1 := m[a][base]
		d, ok2 := m[a][design]
		if !ok1 || !ok2 || d.Makespan == 0 {
			continue
		}
		xs = append(xs, float64(b.Makespan)/float64(d.Makespan))
	}
	return geomean(xs)
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// sortedKeys returns map keys in sorted order (determinism in rendering).
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
