package experiments

import (
	"fmt"

	"ndpbridge/internal/config"
	"ndpbridge/internal/core"
	"ndpbridge/internal/stats"
	"ndpbridge/internal/workloads"
)

// mainDesigns is the C/B/W/O comparison set of Table II.
var mainDesigns = []config.Design{config.DesignC, config.DesignB, config.DesignW, config.DesignO}

// Fig2 reproduces Figure 2: tree traversal on the baseline DRAM-bank NDP
// architecture (design C), reporting the communication wait time and the
// max-vs-average imbalance.
func Fig2(sc Scale) (*stats.Table, error) {
	r, err := runDesign(sc, "tree", config.DesignC, nil)
	if err != nil {
		return nil, err
	}
	return &stats.Table{
		Title:  "Fig. 2 — tree traversal on baseline DRAM-bank NDP (design C)",
		Header: []string{"metric", "value", "paper"},
		Rows: [][]string{
			{"wait time / total", pct(r.WaitFrac()), "32.9%"},
			{"avg time / max time", pct(r.AvgFrac()), "low (severe imbalance)"},
			{"makespan (cycles)", fmt.Sprintf("%d", r.Makespan), "-"},
		},
	}, nil
}

// Fig10 reproduces Figure 10: overall performance of C, B, W, O on the eight
// applications. Values are speedups normalized to C (higher is better), plus
// wait-time and balance indicators.
func Fig10(sc Scale) (*stats.Table, []CellResult, error) {
	cells, err := Grid(sc, Apps(), mainDesigns, nil)
	if err != nil {
		return nil, nil, err
	}
	m, order := byApp(cells)
	t := &stats.Table{
		Title:  "Fig. 10 — speedup over C (makespan ratio); wait% ; avg/max%",
		Header: []string{"app", "C", "B", "W", "O", "waitC", "waitB", "waitW", "waitO", "avg/maxB", "avg/maxO"},
	}
	for _, a := range order {
		c := m[a]["C"]
		row := []string{a}
		for _, d := range []string{"C", "B", "W", "O"} {
			row = append(row, f2(float64(c.Makespan)/float64(m[a][d].Makespan)))
		}
		for _, d := range []string{"C", "B", "W", "O"} {
			row = append(row, pct(m[a][d].WaitFrac()))
		}
		row = append(row, pct(m[a]["B"].AvgFrac()), pct(m[a]["O"].AvgFrac()))
		// Keep the table shape: header has 11 columns.
		row = append(row[:5], row[5:]...)
		t.Rows = append(t.Rows, row[:11])
	}
	t.Rows = append(t.Rows, []string{
		"geomean",
		"1.00",
		f2(speedupGeomean(m, order, "C", "B")),
		f2(speedupGeomean(m, order, "C", "W")),
		f2(speedupGeomean(m, order, "C", "O")),
		"-", "-", "-", "-", "-", "-",
	})
	return t, cells, nil
}

// Fig11 reproduces Figure 11: NDPBridge vs host-only execution (H) and
// RowClone (R), normalized to O.
func Fig11(sc Scale) (*stats.Table, []CellResult, error) {
	designs := []config.Design{config.DesignH, config.DesignR, config.DesignC, config.DesignO}
	cells, err := Grid(sc, Apps(), designs, nil)
	if err != nil {
		return nil, nil, err
	}
	m, order := byApp(cells)
	t := &stats.Table{
		Title:  "Fig. 11 — comparison with other architectures (speedup of O over each)",
		Header: []string{"app", "O/H", "O/R", "O/C", "R/C", "C/H"},
	}
	for _, a := range order {
		o := m[a]["O"]
		t.Rows = append(t.Rows, []string{
			a,
			f2(o.Speedup(m[a]["H"])),
			f2(o.Speedup(m[a]["R"])),
			f2(o.Speedup(m[a]["C"])),
			f2(float64(m[a]["C"].Makespan) / float64(m[a]["R"].Makespan)),
			f2(float64(m[a]["H"].Makespan) / float64(m[a]["C"].Makespan)),
		})
	}
	t.Rows = append(t.Rows, []string{
		"geomean",
		f2(speedupGeomean(m, order, "H", "O")),
		f2(speedupGeomean(m, order, "R", "O")),
		f2(speedupGeomean(m, order, "C", "O")),
		f2(speedupGeomean(m, order, "C", "R")),
		f2(speedupGeomean(m, order, "H", "C")),
	})
	return t, cells, nil
}

// Fig12 reproduces Figure 12: scalability of pr from 64 to 1024 units.
// Values are normalized to C at 64 units (higher is better). A reduced
// PageRank keeps the 20-run sweep tractable.
func Fig12(sc Scale) (*stats.Table, error) {
	unitCounts := []int{64, 128, 256, 512, 1024}
	switch sc {
	case Small:
		unitCounts = []int{8, 16}
	case Medium:
		unitCounts = []int{64, 256, 1024}
	}
	prParams := workloads.GraphParams{Scale: 15, EdgeFactor: 8, Seed: 23, Roots: 4, Iters: 2, MaxEpochs: 64}
	switch sc {
	case Small:
		prParams = workloads.SmallGraphParams()
	case Medium:
		prParams = workloads.MediumGraphParams()
	}
	t := &stats.Table{
		Title:  "Fig. 12 — pr scalability (speedup over C @ smallest scale)",
		Header: []string{"units", "C", "B", "W", "O"},
	}
	nd := len(mainDesigns)
	results, err := parMap(len(unitCounts)*nd, func(i int) (*stats.Result, error) {
		n, d := unitCounts[i/nd], mainDesigns[i%nd]
		cfg := baseConfig(sc).WithDesign(d)
		var err error
		if sc == Small {
			// Vary chips per rank to scale the small system.
			cfg.Geometry.ChipsPerRank = n / (cfg.Geometry.Channels * cfg.Geometry.RanksPerChannel * cfg.Geometry.BanksPerChip)
		} else {
			cfg, err = cfg.WithUnits(n)
			if err != nil {
				return nil, err
			}
		}
		sys, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		r, err := runSystem(sys, workloads.NewPR(prParams))
		if err != nil {
			return nil, fmt.Errorf("pr/%v@%d: %w", d, n, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	// Normalize to the first cell: design C at the smallest scale.
	base := float64(results[0].Makespan)
	for ui, n := range unitCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for di := range mainDesigns {
			row = append(row, f2(base/float64(results[ui*nd+di].Makespan)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig13 reproduces Figure 13: energy breakdown of C, B, W, O per app,
// normalized to O's total.
func Fig13(sc Scale, cells []CellResult) (*stats.Table, error) {
	var err error
	if cells == nil {
		cells, err = Grid(sc, Apps(), mainDesigns, nil)
		if err != nil {
			return nil, err
		}
	}
	m, order := byApp(cells)
	t := &stats.Table{
		Title:  "Fig. 13 — energy relative to O (core+SRAM / localDRAM / comm / static)",
		Header: []string{"app", "design", "core+SRAM", "localDRAM", "comm", "static", "total"},
	}
	for _, a := range order {
		oTotal := m[a]["O"].Energy.Total()
		for _, d := range []string{"C", "B", "W", "O"} {
			r, ok := m[a][d]
			if !ok {
				continue
			}
			e := r.Energy
			t.Rows = append(t.Rows, []string{
				a, d,
				f2(e.CoreSRAM / oTotal), f2(e.LocalDRAM / oTotal),
				f2(e.CommDRAM / oTotal), f2(e.Static / oTotal),
				f2(e.Total() / oTotal),
			})
		}
	}
	return t, nil
}

// Fig14a reproduces Figure 14(a): the impact of the three data-transfer-
// aware techniques applied individually on top of W, as geomean speedups
// over W.
func Fig14a(sc Scale) (*stats.Table, error) {
	type variant struct {
		name string
		mut  func(*config.Config)
	}
	variants := []variant{
		{"W", nil},
		{"+Adv", func(c *config.Config) { c.LoadBalance.Adv = true }},
		{"+Fine", func(c *config.Config) { c.LoadBalance.Fine = true }},
		{"+Hot", func(c *config.Config) { c.LoadBalance.Hot = true }},
	}
	apps := Apps()
	na := len(apps)
	// One flat index space: the four W variants plus the full-O combined
	// bar, each crossed with every app.
	flat, err := parMap((len(variants)+1)*na, func(i int) (uint64, error) {
		vi, a := i/na, apps[i%na]
		var r *stats.Result
		var err error
		if vi == len(variants) {
			r, err = runDesign(sc, a, config.DesignO, nil)
		} else {
			r, err = runDesign(sc, a, config.DesignW, variants[vi].mut)
		}
		if err != nil {
			name := "O(all)"
			if vi < len(variants) {
				name = variants[vi].name
			}
			return 0, fmt.Errorf("%s %s: %w", name, a, err)
		}
		return r.Makespan, nil
	})
	if err != nil {
		return nil, err
	}
	makespans := make(map[string]map[string]uint64) // variant → app → makespan
	oMakespans := make(map[string]uint64)
	for vi, v := range variants {
		makespans[v.name] = make(map[string]uint64)
		for ai, a := range apps {
			makespans[v.name][a] = flat[vi*na+ai]
		}
	}
	for ai, a := range apps {
		oMakespans[a] = flat[len(variants)*na+ai]
	}
	t := &stats.Table{
		Title:  "Fig. 14(a) — data-transfer-aware techniques, geomean speedup over W",
		Header: []string{"variant", "speedup", "paper"},
	}
	paper := map[string]string{"W": "1.00", "+Adv": "1.05", "+Fine": "1.19", "+Hot": "1.29", "O(all)": "1.35"}
	for _, v := range variants[1:] {
		var xs []float64
		for _, a := range apps {
			xs = append(xs, float64(makespans["W"][a])/float64(makespans[v.name][a]))
		}
		t.Rows = append(t.Rows, []string{v.name, f2(geomean(xs)), paper[v.name]})
	}
	var xs []float64
	for _, a := range apps {
		xs = append(xs, float64(makespans["W"][a])/float64(oMakespans[a]))
	}
	t.Rows = append(t.Rows, []string{"O(all)", f2(geomean(xs)), paper["O(all)"]})
	return t, nil
}

// Fig14b reproduces Figure 14(b): dynamic communication triggering vs fixed
// intervals — performance and communication energy, geomean across apps,
// relative to dynamic.
func Fig14b(sc Scale) (*stats.Table, error) {
	triggers := []config.Trigger{config.TriggerDynamic, config.TriggerFixedIMin, config.TriggerFixed2IMin}
	apps := Apps()
	na := len(apps)
	flat, err := parMap(len(triggers)*na, func(i int) (*stats.Result, error) {
		tr, a := triggers[i/na], apps[i%na]
		r, err := runDesign(sc, a, config.DesignO, func(c *config.Config) { c.Trigger = tr })
		if err != nil {
			return nil, fmt.Errorf("%v %s: %w", tr, a, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	makespans := make(map[config.Trigger]map[string]*stats.Result)
	for ti, tr := range triggers {
		makespans[tr] = make(map[string]*stats.Result)
		for ai, a := range apps {
			makespans[tr][a] = flat[ti*na+ai]
		}
	}
	t := &stats.Table{
		Title:  "Fig. 14(b) — communication triggering (relative to dynamic)",
		Header: []string{"trigger", "rel. performance", "rel. comm energy"},
	}
	for _, tr := range triggers {
		var perf, energy []float64
		for _, a := range apps {
			dyn := makespans[config.TriggerDynamic][a]
			r := makespans[tr][a]
			perf = append(perf, float64(dyn.Makespan)/float64(r.Makespan))
			de := dyn.Energy.CommDRAM
			if de == 0 {
				de = 1e-12
			}
			re := r.Energy.CommDRAM
			if re == 0 {
				re = 1e-12
			}
			energy = append(energy, re/de)
		}
		t.Rows = append(t.Rows, []string{tr.String(), f2(geomean(perf)), f2(geomean(energy))})
	}
	return t, nil
}

// Fig15 reproduces Figure 15: performance with x4/x8/x16 DRAM chips,
// normalized to O within each configuration.
func Fig15(sc Scale) (*stats.Table, error) {
	widths := []int{4, 8, 16}
	t := &stats.Table{
		Title:  "Fig. 15 — DQ pin widths (speedup over C within each width)",
		Header: []string{"width", "units", "B/C", "W/C", "O/C"},
	}
	allApps := Apps()
	na, nd := len(allApps), len(mainDesigns)
	// Flatten the full width × design × app cube into one worker-pool pass.
	flat, err := parMap(len(widths)*nd*na, func(i int) (*stats.Result, error) {
		wbits := widths[i/(nd*na)]
		d := mainDesigns[i/na%nd]
		a := allApps[i%na]
		cfg := baseConfig(sc).WithDesign(d)
		var err error
		if sc != Small {
			cfg, err = cfg.WithDQWidth(wbits)
			if err != nil {
				return nil, err
			}
		} else {
			// Small systems scale the DQ rate only.
			switch wbits {
			case 4:
				cfg.Timing.ChipDQBytesPerCycle = 3
			case 16:
				cfg.Timing.ChipDQBytesPerCycle = 12
			}
		}
		r, err := run(cfg, a, sc)
		if err != nil {
			return nil, fmt.Errorf("x%d %s/%v: %w", wbits, a, d, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for wi, wbits := range widths {
		results := make(map[string]map[string]*stats.Result)
		for di, d := range mainDesigns {
			for ai, a := range allApps {
				if results[a] == nil {
					results[a] = make(map[string]*stats.Result)
				}
				results[a][d.String()] = flat[(wi*nd+di)*na+ai]
			}
		}
		apps := sortedKeys(results)
		units := baseConfig(sc).Geometry.Units()
		if sc != Small {
			cfg, _ := baseConfig(sc).WithDQWidth(wbits)
			units = cfg.Geometry.Units()
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("x%d", wbits),
			fmt.Sprintf("%d", units),
			f2(speedupGeomean(results, apps, "C", "B")),
			f2(speedupGeomean(results, apps, "C", "W")),
			f2(speedupGeomean(results, apps, "C", "O")),
		})
	}
	return t, nil
}

// Fig16a reproduces Figure 16(a): G_xfer × metadata-size sweep, geomean
// speedup over the default (256 B, 1×).
func Fig16a(sc Scale) (*stats.Table, error) {
	gxfers := []uint64{64, 256, 1024}
	metaScales := []int{-4, 1, 4} // ¼×, 1×, 4×
	apps := Apps()
	t := &stats.Table{
		Title:  "Fig. 16(a) — G_xfer and metadata size (geomean speedup vs default)",
		Header: []string{"gxfer", "meta¼", "meta1", "meta4"},
	}
	base, err := baseMakespans(sc, apps)
	if err != nil {
		return nil, err
	}
	na, nm := len(apps), len(metaScales)
	flat, err := parMap(len(gxfers)*nm*na, func(i int) (uint64, error) {
		g := gxfers[i/(nm*na)]
		ms := metaScales[i/na%nm]
		a := apps[i%na]
		r, err := runDesign(sc, a, config.DesignO, func(c *config.Config) {
			c.GXfer = g
			scaleMeta(c, ms)
		})
		if err != nil {
			return 0, fmt.Errorf("g=%d m=%d %s: %w", g, ms, a, err)
		}
		return r.Makespan, nil
	})
	if err != nil {
		return nil, err
	}
	for gi, g := range gxfers {
		row := []string{fmt.Sprintf("%dB", g)}
		for mi := range metaScales {
			var xs []float64
			for ai, a := range apps {
				xs = append(xs, float64(base[a])/float64(flat[(gi*nm+mi)*na+ai]))
			}
			row = append(row, f2(geomean(xs)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func scaleMeta(c *config.Config, ms int) {
	switch {
	case ms < 0:
		c.Metadata.UnitBorrowedEntries /= -ms
		c.Metadata.BridgeBorrowedEntries /= -ms
	case ms > 1:
		c.Metadata.UnitBorrowedEntries *= ms
		c.Metadata.BridgeBorrowedEntries *= ms
	}
}

// Fig16b reproduces Figure 16(b): the I_state sweep, geomean speedup vs the
// 2000-cycle default.
func Fig16b(sc Scale) (*stats.Table, error) {
	values := []uint64{500, 1000, 2000, 4000, 8000}
	apps := Apps()
	base, err := baseMakespans(sc, apps)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  "Fig. 16(b) — I_state sweep (geomean speedup vs 2000 cycles)",
		Header: []string{"istate", "speedup"},
	}
	na := len(apps)
	flat, err := parMap(len(values)*na, func(i int) (uint64, error) {
		v, a := values[i/na], apps[i%na]
		r, err := runDesign(sc, a, config.DesignO, func(c *config.Config) { c.IState = v })
		if err != nil {
			return 0, fmt.Errorf("istate=%d %s: %w", v, a, err)
		}
		return r.Makespan, nil
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range values {
		var xs []float64
		for ai, a := range apps {
			xs = append(xs, float64(base[a])/float64(flat[vi*na+ai]))
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", v), f2(geomean(xs))})
	}
	return t, nil
}

// Fig16cd reproduces Figure 16(c,d): the sketch shape sweeps, geomean
// speedup vs the 16×16 default.
func Fig16cd(sc Scale) (*stats.Table, error) {
	apps := Apps()
	base, err := baseMakespans(sc, apps)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  "Fig. 16(c,d) — sketch shape (geomean speedup vs 16 buckets × 16 entries)",
		Header: []string{"shape", "speedup"},
	}
	type shape struct {
		label string
		mut   func(*config.Config)
	}
	var shapes []shape
	for _, b := range []int{4, 8, 16, 32} {
		b := b
		shapes = append(shapes, shape{fmt.Sprintf("%d buckets", b), func(c *config.Config) { c.Sketch.Buckets = b }})
	}
	for _, e := range []int{4, 8, 16, 32} {
		e := e
		shapes = append(shapes, shape{fmt.Sprintf("%d entries", e), func(c *config.Config) { c.Sketch.EntriesPerBkt = e }})
	}
	na := len(apps)
	flat, err := parMap(len(shapes)*na, func(i int) (uint64, error) {
		s, a := shapes[i/na], apps[i%na]
		r, err := runDesign(sc, a, config.DesignO, s.mut)
		if err != nil {
			return 0, fmt.Errorf("%s %s: %w", s.label, a, err)
		}
		return r.Makespan, nil
	})
	if err != nil {
		return nil, err
	}
	for si, s := range shapes {
		var xs []float64
		for ai, a := range apps {
			xs = append(xs, float64(base[a])/float64(flat[si*na+ai]))
		}
		t.Rows = append(t.Rows, []string{s.label, f2(geomean(xs))})
	}
	return t, nil
}

// SplitDB reproduces the Section VIII-A split-DIMM-buffer study: the
// chameleon-s implementation vs the default unified buffer, geomean across
// apps.
func SplitDB(sc Scale) (*stats.Table, error) {
	apps := Apps()
	type pair struct{ perf, wait float64 }
	pairs, err := parMap(len(apps), func(i int) (pair, error) {
		a := apps[i]
		def, err := runDesign(sc, a, config.DesignO, nil)
		if err != nil {
			return pair{}, err
		}
		split, err := runDesign(sc, a, config.DesignO, func(c *config.Config) {
			c.SplitDIMMBuffer = true
		})
		if err != nil {
			return pair{}, err
		}
		dw := def.WaitFrac()
		if dw <= 0 {
			dw = 1e-3
		}
		sw := split.WaitFrac()
		if sw <= 0 {
			sw = 1e-3
		}
		return pair{
			perf: float64(split.Makespan) / float64(def.Makespan),
			wait: sw / dw,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var perf, wait []float64
	for _, p := range pairs {
		perf = append(perf, p.perf)
		wait = append(wait, p.wait)
	}
	return &stats.Table{
		Title:  "Section VIII-A — split DIMM buffers (chameleon-s) vs unified",
		Header: []string{"metric", "value", "paper"},
		Rows: [][]string{
			{"slowdown (geomean)", f2(geomean(perf)), "1.091 (9.1% degradation)"},
			{"wait-time ratio (geomean)", f2(geomean(wait)), "1.353 (35.3% increase)"},
		},
	}, nil
}

// Table1 renders the Table I configuration.
func Table1() *stats.Table {
	cfg := config.Default()
	return &stats.Table{
		Title:  "Table I — system configuration",
		Header: []string{"parameter", "value"},
		Rows: [][]string{
			{"NDP system", fmt.Sprintf("%d ch × %d ranks × %d chips × %d banks = %d units",
				cfg.Geometry.Channels, cfg.Geometry.RanksPerChannel, cfg.Geometry.ChipsPerRank,
				cfg.Geometry.BanksPerChip, cfg.Geometry.Units())},
			{"capacity", fmt.Sprintf("%d GB total, %d MB per bank",
				cfg.Geometry.BankBytes*uint64(cfg.Geometry.Units())>>30, cfg.Geometry.BankBytes>>20)},
			{"NDP core", "in-order, 400 MHz, 10 mW"},
			{"DRAM timing", fmt.Sprintf("tRCD=tCAS=tRP=%d cycles (17 ns)", cfg.Timing.TRCD)},
			{"unit SRAM", fmt.Sprintf("isLent %d blocks, dataBorrowed %d×%d-way",
				cfg.Geometry.BankBytes/cfg.GXfer, cfg.Metadata.UnitBorrowedEntries, cfg.Metadata.UnitBorrowedWays)},
			{"bridge SRAM", fmt.Sprintf("scatter %d B/child, mailbox %d kB, backup %d kB, dataBorrowed %d×%d-way",
				cfg.Buffers.ScatterBufBytes, cfg.Buffers.BridgeMailboxBytes>>10, cfg.Buffers.BackupBufBytes>>10,
				cfg.Metadata.BridgeBorrowedEntries, cfg.Metadata.BridgeBorrowedWays)},
			{"sketch", fmt.Sprintf("%d buckets × %d entries, decay %.2f",
				cfg.Sketch.Buckets, cfg.Sketch.EntriesPerBkt, cfg.Sketch.DecayBase)},
			{"communication", fmt.Sprintf("G_xfer=%d B, I_state=%d cycles, chip DQ %d B/cyc, channel %d B/cyc",
				cfg.GXfer, cfg.IState, cfg.Timing.ChipDQBytesPerCycle, cfg.Timing.ChannelBytesPerCycle)},
		},
	}
}

// Table2 renders the Table II design summary.
func Table2() *stats.Table {
	return &stats.Table{
		Title:  "Table II — evaluated DRAM-bank NDP systems",
		Header: []string{"design", "communication", "load balancing"},
		Rows: [][]string{
			{"C", "forwarded by host CPU", "none"},
			{"B", "using bridges (ours)", "none"},
			{"W", "using bridges (ours)", "work stealing"},
			{"O", "using bridges (ours)", "data-transfer-aware (ours)"},
			{"H", "shared memory (host-only)", "free stealing"},
			{"R", "RowClone intra-chip + host", "none"},
		},
	}
}

// L2Variants measures the Section V-A alternative level-2 transports — the
// host runtime the paper evaluates, DIMM-Link peer-to-peer links, and an
// ABC-DIMM broadcast bus — on full NDPBridge, geomean speedup over the host
// transport. The paper claims NDPBridge is orthogonal to these inter-DIMM
// designs; this experiment quantifies what each buys.
func L2Variants(sc Scale) (*stats.Table, error) {
	apps := Apps()
	base, err := baseMakespans(sc, apps)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  "Extension — level-2 transports (geomean speedup over host runtime)",
		Header: []string{"transport", "speedup"},
	}
	transports := []config.Level2Transport{config.L2Host, config.L2DIMMLink, config.L2ABCDIMM}
	na := len(apps)
	flat, err := parMap(len(transports)*na, func(i int) (uint64, error) {
		tr, a := transports[i/na], apps[i%na]
		r, err := runDesign(sc, a, config.DesignO, func(c *config.Config) { c.Level2 = tr })
		if err != nil {
			return 0, fmt.Errorf("%v %s: %w", tr, a, err)
		}
		return r.Makespan, nil
	})
	if err != nil {
		return nil, err
	}
	for ti, tr := range transports {
		var xs []float64
		for ai, a := range apps {
			xs = append(xs, float64(base[a])/float64(flat[ti*na+ai]))
		}
		t.Rows = append(t.Rows, []string{tr.String(), f2(geomean(xs))})
	}
	return t, nil
}
