package experiments

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync/atomic"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/config"
	"ndpbridge/internal/stats"
)

// Campaign checkpointing. A campaign is a bag of independent (app, config)
// simulations, so its natural resume granularity is the run: every completed
// simulation's result is written to a content-addressed cache file, and a
// resumed campaign replays instantly through the finished cells before
// simulating the rest. The cache key hashes the full configuration, so any
// change to the config, the app, the scale, or the cache format itself
// misses cleanly instead of resurrecting a stale result.
//
// Files use the checkpoint container, so a crash mid-write (the write is
// atomic anyway) or later on-disk corruption is rejected by the checksums
// and the cell is simply re-simulated.
//
// The cache stores final results, not metric streams, so it is bypassed when
// metrics collection is on — a cache hit cannot reproduce histograms.

// cacheFormat versions the key material; bump on any layout change.
const cacheFormat = 1

const (
	cacheSectionKey    = "key"
	cacheSectionResult = "result"
)

// ckptDir holds the campaign checkpoint directory ("" = disabled). Stored
// atomically because the worker pool reads it concurrently.
var ckptDir atomic.Value // string

// SetCheckpointDir enables run-granular campaign checkpointing in dir
// (every completed simulation is persisted, and future identical runs are
// served from disk). An empty dir disables it.
func SetCheckpointDir(dir string) { ckptDir.Store(dir) }

// CheckpointDir returns the active campaign checkpoint directory, or "".
func CheckpointDir() string {
	if v := ckptDir.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// auditEvery, when nonzero, attaches the invariant auditor to every
// simulation the campaign runs, checking every N cycles.
var auditEvery atomic.Uint64

// SetAuditEvery enables the invariant auditor on every campaign simulation
// (0 disables). Violations fail the owning cell's run.
func SetAuditEvery(every uint64) { auditEvery.Store(every) }

// AuditEvery returns the configured audit period, or 0 when off.
func AuditEvery() uint64 { return auditEvery.Load() }

// ctrCacheHits counts cells served from the campaign checkpoint cache.
var ctrCacheHits atomic.Uint64

// CacheHits returns how many simulations were served from the campaign
// checkpoint cache since the last ResetCounters.
func CacheHits() uint64 { return ctrCacheHits.Load() }

// cacheKeyMaterial renders the full identity of one simulation cell.
func cacheKeyMaterial(cfg config.Config, appName string, sc Scale) ([]byte, error) {
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: encode config: %w", err)
	}
	var e checkpoint.Enc
	e.U32(cacheFormat)
	e.Str(appName)
	e.U32(uint32(sc))
	e.Bytes(cfgJSON)
	return e.Data(), nil
}

// cachePath returns the content-addressed file for one cell.
func cachePath(dir string, key []byte) string {
	return filepath.Join(dir, fmt.Sprintf("run-%016x.ckpt", checkpoint.Digest(key)))
}

// loadCachedRun returns the stored result for the cell, or nil on any kind
// of miss (absent, corrupt, key collision, undecodable).
func loadCachedRun(dir string, key []byte) *stats.Result {
	f, err := checkpoint.ReadFile(cachePath(dir, key))
	if err != nil {
		return nil
	}
	stored, ok := f.Section(cacheSectionKey)
	if !ok || string(stored) != string(key) {
		return nil
	}
	data, ok := f.Section(cacheSectionResult)
	if !ok {
		return nil
	}
	var r stats.Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil
	}
	return &r
}

// saveCachedRun persists one completed cell. Errors are returned so the
// caller can surface a broken checkpoint directory instead of silently
// running without resume protection.
func saveCachedRun(dir string, key []byte, r *stats.Result) error {
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("experiments: encode result: %w", err)
	}
	f := checkpoint.New()
	f.Add(cacheSectionKey, key)
	f.Add(cacheSectionResult, data)
	return checkpoint.WriteFile(cachePath(dir, key), f)
}
