package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ndpbridge/internal/config"
)

// withCheckpointDir routes the campaign cache to a temp dir for one test.
func withCheckpointDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	SetCheckpointDir(dir)
	t.Cleanup(func() {
		SetCheckpointDir("")
		ResetCounters()
	})
	ResetCounters()
	return dir
}

func TestCampaignCacheResumeByteIdentical(t *testing.T) {
	dir := withCheckpointDir(t)
	apps := []string{"ll", "tree"}
	designs := []config.Design{config.DesignC, config.DesignO}

	// First pass, sequential: everything simulated, everything persisted.
	SetJobs(1)
	defer SetJobs(0)
	r1, err := Grid(Small, apps, designs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if CacheHits() != 0 {
		t.Fatalf("cold cache served %d hits", CacheHits())
	}
	files, err := filepath.Glob(filepath.Join(dir, "run-*.ckpt"))
	if err != nil || len(files) != len(r1) {
		t.Fatalf("%d cache files for %d cells (%v)", len(files), len(r1), err)
	}

	// Resume pass, parallel: the whole grid must come from disk and match
	// the original byte for byte regardless of worker count.
	ResetCounters()
	SetJobs(8)
	r2, err := Grid(Small, apps, designs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if int(CacheHits()) != len(r1) {
		t.Fatalf("warm cache served %d hits, want %d", CacheHits(), len(r1))
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("resumed grid differs from original")
	}
}

func TestCampaignCachePartialResume(t *testing.T) {
	withCheckpointDir(t)
	SetJobs(1)
	defer SetJobs(0)
	designs := []config.Design{config.DesignO}

	// A "killed" campaign that only finished one app…
	if _, err := Grid(Small, []string{"ll"}, designs, nil); err != nil {
		t.Fatal(err)
	}
	// …resumes: the finished cell is served from disk, the rest simulate.
	ResetCounters()
	r, err := Grid(Small, []string{"ll", "ht"}, designs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if CacheHits() != 1 {
		t.Fatalf("cache hits %d, want 1", CacheHits())
	}
	if len(r) != 2 || r[0].App != "ll" || r[1].App != "ht" {
		t.Fatalf("unexpected grid shape: %+v", r)
	}
}

func TestCampaignCacheCorruptionRerun(t *testing.T) {
	dir := withCheckpointDir(t)
	SetJobs(1)
	defer SetJobs(0)
	designs := []config.Design{config.DesignB}

	r1, err := Grid(Small, []string{"tree"}, designs, nil)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "run-*.ckpt"))
	if len(files) != 1 {
		t.Fatalf("%d cache files, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	// The checksum rejects the corrupt file; the cell re-simulates to the
	// same result and the file is healed.
	ResetCounters()
	r2, err := Grid(Small, []string{"tree"}, designs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if CacheHits() != 0 {
		t.Fatal("corrupt cache file served a hit")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("re-simulated result differs")
	}
	ResetCounters()
	if _, err := Grid(Small, []string{"tree"}, designs, nil); err != nil {
		t.Fatal(err)
	}
	if CacheHits() != 1 {
		t.Fatal("healed cache file not served")
	}
}

func TestCampaignCacheBypassedWithMetrics(t *testing.T) {
	withCheckpointDir(t)
	SetJobs(1)
	defer SetJobs(0)
	designs := []config.Design{config.DesignO}

	if _, err := Grid(Small, []string{"ll"}, designs, nil); err != nil {
		t.Fatal(err)
	}
	ResetCounters()
	EnableMetrics()
	defer TakeMetrics()
	if _, err := Grid(Small, []string{"ll"}, designs, nil); err != nil {
		t.Fatal(err)
	}
	if CacheHits() != 0 {
		t.Fatal("cache served a hit while metrics collection was on")
	}
}

func TestCampaignAuditAttach(t *testing.T) {
	SetAuditEvery(512)
	defer SetAuditEvery(0)
	SetJobs(1)
	defer SetJobs(0)
	if _, err := Grid(Small, []string{"ll"}, []config.Design{config.DesignO}, nil); err != nil {
		t.Fatalf("audited campaign cell failed: %v", err)
	}
}
