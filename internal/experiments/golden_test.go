package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ndpbridge/internal/config"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden results files")

// goldenPath is the committed reference output of a fixed-seed Small grid.
// CI fails on any drift, so simulator changes that alter results must
// regenerate it deliberately (go test ./internal/experiments -run Golden
// -update) and justify the diff in review.
const goldenPath = "../../results/golden/small-grid.json"

func TestGoldenSmallGrid(t *testing.T) {
	SetJobs(1)
	defer SetJobs(0)
	cells, err := Grid(Small,
		[]string{"ll", "tree", "bfs"},
		[]config.Design{config.DesignC, config.DesignB, config.DesignO},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(cells, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", goldenPath)
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		// Decode both sides to name the first drifting cell, which beats
		// a raw byte diff for diagnosing what changed.
		var gc, wc []CellResult
		if json.Unmarshal(got, &gc) == nil && json.Unmarshal(want, &wc) == nil && len(gc) == len(wc) {
			for i := range gc {
				if gc[i].App != wc[i].App || gc[i].Design != wc[i].Design {
					t.Fatalf("grid shape drifted at cell %d: %s/%s vs %s/%s",
						i, gc[i].App, gc[i].Design, wc[i].App, wc[i].Design)
				}
				if !reflect.DeepEqual(gc[i].R, wc[i].R) {
					t.Fatalf("results drifted at %s/%s:\n got %+v\nwant %+v\n(run with -update if intentional)",
						gc[i].App, gc[i].Design, *gc[i].R, *wc[i].R)
				}
			}
		}
		t.Fatal("golden results drifted (run with -update if intentional)")
	}
}
