package experiments

import (
	"os"
	"sync/atomic"
	"testing"
	"time"
)

func TestHandleSignalsTwoStage(t *testing.T) {
	sigc := make(chan os.Signal, 2)
	var canceled, forced atomic.Bool
	forcedCh := make(chan struct{})
	HandleSignals(sigc,
		func() { canceled.Store(true) },
		func() { forced.Store(true); close(forcedCh) },
		nil)

	sigc <- os.Interrupt
	deadline := time.After(2 * time.Second)
	for !canceled.Load() {
		select {
		case <-deadline:
			t.Fatal("first signal did not cancel")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if forced.Load() {
		t.Fatal("force fired on first signal")
	}

	sigc <- os.Interrupt
	select {
	case <-forcedCh:
	case <-deadline:
		t.Fatal("second signal did not force exit")
	}
}

// TestHandleSignalsStalledWorker pins the regression the two-stage handler
// exists for: when cancellation blocks forever (a wedged worker is holding
// the pool), the second Ctrl-C must still force exit instead of hanging
// behind the first one.
func TestHandleSignalsStalledWorker(t *testing.T) {
	sigc := make(chan os.Signal, 2)
	forcedCh := make(chan struct{})
	var notes []int
	noteCh := make(chan int, 4)
	HandleSignals(sigc,
		func() { select {} }, // cancel never returns — stalled worker
		func() { close(forcedCh) },
		func(n int) { noteCh <- n })

	sigc <- os.Interrupt
	sigc <- os.Interrupt
	select {
	case <-forcedCh:
	case <-time.After(2 * time.Second):
		t.Fatal("second signal hung behind the stalled cancel")
	}
	for len(notes) < 2 {
		select {
		case n := <-noteCh:
			notes = append(notes, n)
		case <-time.After(time.Second):
			t.Fatalf("notify saw %v, want [1 2]", notes)
		}
	}
	if notes[0] != 1 || notes[1] != 2 {
		t.Errorf("notify order %v, want [1 2]", notes)
	}
}
