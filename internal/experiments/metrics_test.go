package experiments

import (
	"strings"
	"testing"

	"ndpbridge/internal/config"
)

func TestLatencyTable(t *testing.T) {
	tb, err := Latency(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(Apps()) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), len(Apps()))
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Fatalf("row %v has %d cells, header has %d", row, len(row), len(tb.Header))
		}
		// Task latency must be populated (p50/p90/p99/max, all > 0 max).
		if row[1] == "0/0/0/0" {
			t.Errorf("app %s: empty task latency", row[0])
		}
		if !strings.Contains(row[1], "/") {
			t.Errorf("app %s: malformed latency cell %q", row[0], row[1])
		}
	}
}

// TestParallelMetricsMerge exercises the per-run-registry merge path under the
// worker pool; run with -race to check the only shared state is metMu-guarded.
func TestParallelMetricsMerge(t *testing.T) {
	defer SetJobs(0)
	SetJobs(4)
	EnableMetrics()
	defer TakeMetrics() // leave collection off even on failure
	apps := []string{"tree", "ll", "pr", "bfs"}
	if _, err := Grid(Small, apps, []config.Design{config.DesignO, config.DesignC}, nil); err != nil {
		t.Fatal(err)
	}
	agg := TakeMetrics()
	if agg == nil {
		t.Fatal("TakeMetrics returned nil after EnableMetrics")
	}
	// Histograms fold by name across runs; series keep an "app/design/"
	// prefix per run so sampled traces stay distinguishable.
	if h := agg.FindHistogram("task_latency_cycles"); h.Count() == 0 {
		t.Errorf("merged task latency empty; histograms: %v", agg.HistogramNames())
	}
	for _, a := range apps {
		found := false
		for _, n := range agg.SeriesNames() {
			if strings.HasPrefix(n, a+"/O/") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no merged series for %s/O; series: %v", a, agg.SeriesNames())
		}
	}
	// Collection is now off: runs must not touch the (nil) aggregate.
	if metricsEnabled() {
		t.Error("metrics still enabled after TakeMetrics")
	}
	if _, err := run(baseConfig(Small).WithDesign(config.DesignO), "tree", Small); err != nil {
		t.Fatalf("run with collection off: %v", err)
	}
}
