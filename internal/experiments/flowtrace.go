package experiments

import (
	"fmt"
	"sort"
	"sync"

	"ndpbridge/internal/stats"
	"ndpbridge/internal/trace"
)

// Flow-trace collection across the worker pool, mirroring the metrics
// aggregate: each run gets a private recorder with causal spans enabled, and
// its critical-path summary is folded into the package row set after the run
// finishes, under flowMu. TakeCrit returns the rows sorted by every field, so
// the output is deterministic at any worker count — the multiset of runs is
// fixed even though their completion order is not.

var (
	flowMu   sync.Mutex
	flowOn   bool
	flowCap  int
	flowRows []CritRow
)

// CritRow is one run's critical-path attribution summary.
type CritRow struct {
	App      string
	Design   string
	Makespan uint64
	Crit     stats.Crit
}

// EnableFlowTrace starts collecting per-run critical-path summaries.
// spanCap bounds each run's retained spans (0 = trace default). Pair with
// TakeCrit. While enabled, the campaign checkpoint cache is bypassed: a
// cached result cannot reproduce spans.
func EnableFlowTrace(spanCap int) {
	flowMu.Lock()
	defer flowMu.Unlock()
	flowOn = true
	flowCap = spanCap
	flowRows = nil
}

// TakeCrit returns the rows accumulated since EnableFlowTrace, sorted by all
// fields, and turns collection off. Returns nil when never enabled.
func TakeCrit() []CritRow {
	flowMu.Lock()
	defer flowMu.Unlock()
	rows := flowRows
	flowOn, flowCap, flowRows = false, 0, nil
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Design != b.Design {
			return a.Design < b.Design
		}
		return a.Makespan < b.Makespan
	})
	return rows
}

func flowTraceConfig() (int, bool) {
	flowMu.Lock()
	defer flowMu.Unlock()
	return flowCap, flowOn
}

func flowTraceEnabled() bool {
	_, on := flowTraceConfig()
	return on
}

// attachFlowTrace arms a run with a span-enabled recorder when collection is
// on and the caller did not attach its own.
func attachFlowTrace(attach func(*trace.Recorder), existing *trace.Recorder) {
	capacity, on := flowTraceConfig()
	if !on {
		return
	}
	if existing != nil {
		existing.EnableFlows(capacity)
		return
	}
	rec := trace.New(0)
	rec.EnableFlows(capacity)
	attach(rec)
}

func addCritRow(row CritRow) {
	flowMu.Lock()
	defer flowMu.Unlock()
	if flowOn {
		flowRows = append(flowRows, row)
	}
}

// CritTable renders the collected rows as a bottleneck table: one row per
// (app, design) with the dominant category and the full percentage split.
func CritTable(rows []CritRow) *stats.Table {
	t := &stats.Table{
		Title: "Critical-path bottleneck attribution (% of makespan)",
		Header: []string{"app", "design", "dominant", "bank", "queue", "gather",
			"bridge", "lb", "retry", "host", "slack"},
	}
	for _, row := range rows {
		c := row.Crit
		total := c.BankBusy + c.TaskQueue + c.GatherBatch + c.BridgeQueue +
			c.LBMigration + c.Retry + c.HostRT + c.Slack
		p := func(v uint64) string {
			if total == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*float64(v)/float64(total))
		}
		t.Rows = append(t.Rows, []string{
			row.App, row.Design,
			fmt.Sprintf("%s (%.1f%%)", c.Dominant, c.DominantPct),
			p(c.BankBusy), p(c.TaskQueue), p(c.GatherBatch), p(c.BridgeQueue),
			p(c.LBMigration), p(c.Retry), p(c.HostRT), p(c.Slack),
		})
	}
	return t
}
