package experiments

import (
	"fmt"

	"ndpbridge/internal/core"
	"ndpbridge/internal/fault"
	"ndpbridge/internal/stats"
	"ndpbridge/internal/traffic"
)

// Open-loop serving experiments: the saturation sweep (offered load vs
// goodput and tail latency, with knee detection) and the graceful-degradation
// curve (windowed goodput/shedding under a rank-dark fault). Serving runs
// bypass the campaign checkpoint cache on purpose — its key is (config, app,
// scale) and does not include the traffic spec — and instead build their
// systems directly, still routing through runSystem for metrics, flow
// tracing, cancellation, and the events/sec counters.

// servingFaultSeed seeds the injector for degradation runs. Stall-only plans
// draw nothing from it, but a fixed value keeps the label honest if the plan
// ever grows probabilistic faults.
const servingFaultSeed = 7

// perUnitRates is the saturation sweep's offered-load axis in requests per
// kilocycle per unit. One unit serves at most 1000/serveLookupCost ≈ 8.3
// requests per kilocycle, and the Zipfian skew concentrates load on the
// hot-shard unit well before the aggregate bound, so the axis crosses the
// knee inside this range at every scale.
var perUnitRates = []float64{0.25, 0.5, 1, 2, 3, 4, 6, 8}

// servingSpec is the baseline spec for sc's system: the package default
// sized so the shard table fits every scale's banks.
func servingSpec(sc Scale) traffic.Spec {
	sp := traffic.DefaultSpec()
	if sc == Small {
		sp.Shards = 512 // 8 units × 64 shards × 16 KB = 1 MB/unit
	}
	return sp
}

// servingRun executes one open-loop serving simulation.
func servingRun(sc Scale, sp traffic.Spec, plan *fault.Plan) (*stats.Result, error) {
	cfg := baseConfig(sc)
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	src, err := traffic.NewSource(sp, 64)
	if err != nil {
		return nil, err
	}
	sys.AttachTraffic(src)
	if plan != nil {
		if err := sys.AttachFaults(plan, servingFaultSeed); err != nil {
			return nil, err
		}
	}
	return runSystem(sys, core.ServingApp{})
}

// servingKnee locates the saturation knee on a monotone offered-load axis:
// the first point whose marginal goodput per unit of additional offered load
// falls below half, or that sheds more than 1% of its offered requests —
// whichever comes first. Returns -1 when the swept range never saturates.
func servingKnee(rs []*stats.Result) int {
	for i, r := range rs {
		v := r.Serving
		if v.Offered > 0 && float64(v.ShedTotal()) > 0.01*float64(v.Offered) {
			return i
		}
		if i == 0 {
			continue
		}
		p := rs[i-1].Serving
		dOff := v.OfferedKC - p.OfferedKC
		if dOff > 0 && (v.GoodputKC-p.GoodputKC)/dOff < 0.5 {
			return i
		}
	}
	return -1
}

// ServingSweep runs the saturation sweep: one serving simulation per offered
// rate, reporting goodput, tail latency, shed fraction, and SLO attainment
// per point, with the detected knee marked in the last column.
func ServingSweep(sc Scale) (*stats.Table, error) {
	units := baseConfig(sc).Geometry.Units()
	rs, err := parMap(len(perUnitRates), func(i int) (*stats.Result, error) {
		sp := servingSpec(sc)
		sp.Rate = perUnitRates[i] * float64(units)
		// Fixed ~150 kcycle offered horizon so every point sweeps the same
		// wall of simulated time regardless of rate.
		sp.Requests = uint64(sp.Rate * 150)
		r, err := servingRun(sc, sp, nil)
		if err != nil {
			return nil, fmt.Errorf("serving rate %.3g/kc: %w", sp.Rate, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Serving.OfferedKC < rs[i-1].Serving.OfferedKC {
			return nil, fmt.Errorf("serving sweep: offered axis not monotone at point %d (%.3f < %.3f)",
				i, rs[i].Serving.OfferedKC, rs[i-1].Serving.OfferedKC)
		}
	}
	knee := servingKnee(rs)
	t := &stats.Table{
		Title:  "Serving saturation sweep — offered load vs goodput and tail latency",
		Header: []string{"rate/kc", "offered/kc", "goodput/kc", "p50", "p99", "shed", "slo", "knee"},
	}
	for i, r := range rs {
		v := r.Serving
		slo := "meet"
		if !v.SLOMet {
			slo = "miss"
		}
		mark := ""
		if i == knee {
			mark = "<-- knee"
		}
		t.Rows = append(t.Rows, []string{
			f2(perUnitRates[i] * float64(units)),
			f2(v.OfferedKC),
			f2(v.GoodputKC),
			fmt.Sprintf("%d", v.P50),
			fmt.Sprintf("%d", v.P99),
			pct(float64(v.ShedTotal()) / float64(v.Offered)),
			slo,
			mark,
		})
	}
	return t, nil
}

// Degradation-run phase geometry, in cycles. Windows are 16 kcycles; the
// first rank goes dark at window 6 for 5 windows, leaving a pre-fault
// plateau, a dark valley, and a recovery tail on every curve.
const (
	servingWindow  = 1 << 14
	servingDarkAt  = 6 * servingWindow
	servingDarkLen = 5 * servingWindow
	servingHorizon = 22 * servingWindow
)

// ServingDegrade runs the graceful-degradation experiment: a moderate
// fixed-rate serving run in which every unit of rank 0 stalls dark for a
// multi-window stretch, reported as the per-window offered/goodput/shed/p99
// curve. The admission queue sheds through the dark window and goodput
// recovers once the rank heals.
func ServingDegrade(sc Scale) (*stats.Table, error) {
	cfg := baseConfig(sc)
	units, perRank := cfg.Geometry.Units(), cfg.Geometry.UnitsPerRank()
	sp := servingSpec(sc)
	sp.Rate = 0.75 * float64(units) // below the knee: shedding means the fault, not overload
	sp.Requests = uint64(sp.Rate * servingHorizon / 1000)
	sp.Window = servingWindow
	sp.Warmup = servingWindow
	sp.QueueCap = 32
	plan := &fault.Plan{}
	for u := 0; u < perRank; u++ {
		plan.Faults = append(plan.Faults, fault.Spec{
			Kind: fault.KindStall, Unit: u, At: servingDarkAt, Cycles: servingDarkLen, Rank: -1,
		})
	}
	r, err := servingRun(sc, sp, plan)
	if err != nil {
		return nil, err
	}
	v := r.Serving
	t := &stats.Table{
		Title: fmt.Sprintf("Serving degradation — rank 0 dark cycles %d..%d, rate %s/kc",
			servingDarkAt, servingDarkAt+servingDarkLen, f2(sp.Rate)),
		Header: []string{"window", "phase", "offered", "completed", "shed", "p99"},
	}
	for _, w := range v.Windows {
		phase := "pre"
		switch {
		case w.Start >= servingDarkAt+servingDarkLen:
			phase = "heal"
		case w.Start+servingWindow > servingDarkAt && w.Start < servingDarkAt+servingDarkLen:
			phase = "dark"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w.Start/servingWindow),
			phase,
			fmt.Sprintf("%d", w.Offered),
			fmt.Sprintf("%d", w.Completed),
			fmt.Sprintf("%d", w.Shed),
			fmt.Sprintf("%d", w.P99),
		})
	}
	t.Rows = append(t.Rows, []string{"total", "", fmt.Sprintf("%d", v.Offered),
		fmt.Sprintf("%d", v.Completed), fmt.Sprintf("%d", v.ShedTotal()), fmt.Sprintf("%d", v.P99)})
	return t, nil
}
