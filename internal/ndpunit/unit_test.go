package ndpunit

import (
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/dram"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
	"ndpbridge/internal/trace"
)

// stubEnv is a minimal Env for unit-level tests.
type stubEnv struct {
	eng      *sim.Engine
	cfg      config.Config
	amap     *dram.AddrMap
	reg      *task.Registry
	epoch    uint32
	spawned  map[uint32]int
	done     map[uint32]int
	inflight int
	taskID   uint64
}

func newStubEnv(cfg config.Config) *stubEnv {
	return &stubEnv{
		eng:     sim.NewEngine(),
		cfg:     cfg,
		amap:    dram.NewAddrMap(cfg.Geometry),
		reg:     task.NewRegistry(),
		spawned: map[uint32]int{},
		done:    map[uint32]int{},
	}
}

func (e *stubEnv) Engine() *sim.Engine      { return e.eng }
func (e *stubEnv) Cfg() *config.Config      { return &e.cfg }
func (e *stubEnv) Map() *dram.AddrMap       { return e.amap }
func (e *stubEnv) Registry() *task.Registry { return e.reg }
func (e *stubEnv) CurrentEpoch() uint32     { return e.epoch }
func (e *stubEnv) TaskSpawned(ts uint32)    { e.spawned[ts]++ }
func (e *stubEnv) NextTaskID() uint64       { e.taskID++; return e.taskID }
func (e *stubEnv) TaskDone(ts uint32)       { e.done[ts]++ }
func (e *stubEnv) MsgStaged()               { e.inflight++ }
func (e *stubEnv) MsgDelivered()            { e.inflight-- }
func (e *stubEnv) Trace() *trace.Recorder   { return nil }
func (e *stubEnv) MsgPool() *msg.Pool        { return nil }

func smallCfg(d config.Design) config.Config {
	cfg := config.Default().WithDesign(d)
	cfg.Geometry = config.Geometry{
		Channels: 1, RanksPerChannel: 2, ChipsPerRank: 2, BanksPerChip: 2,
		BankBytes: 1 << 22, // 4 MB
	}
	cfg.Buffers.MailboxBytes = 1 << 16
	cfg.Metadata.BorrowedRegionBytes = 1 << 14
	cfg.Metadata.UnitBorrowedEntries = 32
	cfg.Metadata.UnitBorrowedWays = 4
	return cfg
}

func TestUnitExecutesSeededTask(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignB))
	var ran []uint64
	fn := env.reg.Register("probe", func(ctx task.Ctx, tk task.Task) {
		ran = append(ran, tk.Addr)
		ctx.Compute(10)
		ctx.Read(tk.Addr, 64)
	})
	u := New(0, env, sim.NewRNG(1))
	u.SeedTask(task.New(fn, 0, 100, 10))
	u.SeedTask(task.New(fn, 0, 200, 10))
	u.Kick()
	if err := env.eng.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ran) != 2 || ran[0] != 100 || ran[1] != 200 {
		t.Fatalf("ran = %v", ran)
	}
	st := u.Stats()
	if st.Tasks != 2 {
		t.Errorf("Tasks = %d", st.Tasks)
	}
	if st.Busy == 0 {
		t.Error("busy time must be charged")
	}
	if env.done[0] != 2 || env.spawned[0] != 2 {
		t.Errorf("epoch accounting: spawned %d done %d", env.spawned[0], env.done[0])
	}
}

func TestUnitChildTaskLocalVsRemote(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignB))
	remoteAddr := env.amap.Base(3) + 64
	var fn task.FuncID
	fn = env.reg.Register("spawn", func(ctx task.Ctx, tk task.Task) {
		if tk.Addr == 100 { // root: spawn one local, one remote child
			ctx.Enqueue(task.New(fn, 0, 300, 1))
			ctx.Enqueue(task.New(fn, 0, remoteAddr, 1))
		}
		ctx.Compute(1)
	})
	u := New(0, env, sim.NewRNG(1))
	u.SeedTask(task.New(fn, 0, 100, 1))
	u.Kick()
	if err := env.eng.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Local child executed here; remote child left as a mailbox message.
	if u.Stats().Tasks != 2 {
		t.Errorf("Tasks = %d, want 2 (root + local child)", u.Stats().Tasks)
	}
	if u.MailboxUsed() == 0 {
		t.Error("remote child should be waiting in the mailbox")
	}
	ms, _ := u.DrainMailbox(1 << 20)
	if len(ms) != 1 || ms[0].Type != msg.TypeTask || ms[0].Dst != 3 {
		t.Fatalf("mailbox content wrong: %+v", ms)
	}
	if ms[0].Task.Addr != remoteAddr {
		t.Error("task address wrong")
	}
}

func TestUnitDeliverTaskExecutes(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignB))
	ran := 0
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ran++; ctx.Compute(5) })
	u := New(2, env, sim.NewRNG(1))
	addr := env.amap.Base(2) + 128
	env.TaskSpawned(0)
	env.MsgStaged()
	u.Deliver(msg.NewTask(0, 2, task.New(fn, 0, addr, 1)))
	if err := env.eng.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 1 {
		t.Errorf("delivered task did not run")
	}
	if env.inflight != 0 {
		t.Errorf("inflight = %d, want 0", env.inflight)
	}
}

func TestUnitBouncesTaskForNonLocalBlock(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignB))
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ctx.Compute(1) })
	u := New(2, env, sim.NewRNG(1))
	// Deliver a task whose data lives at unit 1 and is not borrowed here.
	wrong := env.amap.Base(1) + 64
	env.TaskSpawned(0)
	env.MsgStaged()
	u.Deliver(msg.NewTask(0, 2, task.New(fn, 0, wrong, 1)))
	if err := env.eng.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if u.Stats().Tasks != 0 {
		t.Error("non-local task must not execute")
	}
	if u.Stats().Bounces != 1 {
		t.Errorf("Bounces = %d, want 1", u.Stats().Bounces)
	}
	ms, _ := u.DrainMailbox(1 << 20)
	if len(ms) != 1 || ms[0].Dst != 1 {
		t.Fatalf("bounced message wrong: %+v", ms)
	}
}

func TestUnitBorrowedDataFlow(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignO))
	ran := 0
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) {
		ctx.Read(tk.Addr, 64) // reads from borrowed region
		ran++
	})
	u := New(2, env, sim.NewRNG(1))
	// Lend block of unit 1 to unit 2: deliver data messages then the task.
	blk := env.amap.Base(1) + 512
	for _, dm := range msg.SplitData(1, 2, blk, uint32(env.cfg.GXfer)) {
		env.MsgStaged()
		u.Deliver(dm)
	}
	env.eng.Run(0)
	if !u.IsLocal(blk + 10) {
		t.Fatal("borrowed block must be locally available")
	}
	env.TaskSpawned(0)
	env.MsgStaged()
	u.Deliver(msg.NewTask(1, 2, task.New(fn, 0, blk+16, 1)))
	env.eng.Run(0)
	if ran != 1 {
		t.Error("task on borrowed block must execute here")
	}
	if u.Stats().Borrowed != 1 {
		t.Errorf("Borrowed = %d, want 1", u.Stats().Borrowed)
	}
	// ForceReturn sends the block home.
	u.ForceReturn(blk)
	if u.IsLocal(blk) {
		t.Error("block must be gone after ForceReturn")
	}
	ms, _ := u.DrainMailbox(1 << 20)
	if len(ms) == 0 || ms[0].Type != msg.TypeData || ms[0].Dst != 1 {
		t.Fatalf("return messages wrong: %+v", ms)
	}
}

func TestUnitIsLentBlocksLocalExecution(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignO))
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ctx.Compute(1) })
	u := New(0, env, sim.NewRNG(1))
	addr := env.amap.Base(0) + 1024

	// Queue tasks, then lend the block away via SCHEDULE.
	u.SeedTask(task.New(fn, 0, addr, 50))
	u.SeedTask(task.New(fn, 0, addr, 50))
	u.CommandSchedule(100, 2)
	// The scheduled-out messages wait in the mailbox, unassigned.
	ms, _ := u.DrainMailbox(1 << 20)
	var dataMsgs, taskMsgs int
	for _, m := range ms {
		if !m.Sched || m.Dst != -1 {
			t.Fatalf("scheduled-out message must have Sched and Dst=-1: %+v", m)
		}
		switch m.Type {
		case msg.TypeData:
			dataMsgs++
		case msg.TypeTask:
			taskMsgs++
		}
	}
	if taskMsgs != 2 || dataMsgs == 0 {
		t.Fatalf("scheduled out %d tasks, %d data msgs", taskMsgs, dataMsgs)
	}
	// The block is now lent: local execution of a fresh task must bounce.
	if u.IsLocal(addr) {
		t.Error("lent block must not be local")
	}
	st := u.StateSnapshot()
	if len(st.SchedList) != 1 || st.SchedList[0].Workload != 100 {
		t.Fatalf("sched list wrong: %+v", st.SchedList)
	}
	// Second snapshot: list consumed.
	if len(u.StateSnapshot().SchedList) != 0 {
		t.Error("sched list must be consumed by the snapshot")
	}
}

func TestUnitReturnDataClearsIsLent(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignO))
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ctx.Compute(1) })
	u := New(0, env, sim.NewRNG(1))
	addr := env.amap.Base(0) + 2048
	u.SeedTask(task.New(fn, 0, addr, 10))
	u.CommandSchedule(1, 2)
	u.DrainMailbox(1 << 20)
	if u.IsLocal(addr) {
		t.Fatal("precondition: block lent")
	}
	// Return data messages arrive home.
	blk := dram.BlockAlign(addr, env.cfg.GXfer)
	for _, dm := range msg.SplitData(3, 0, blk, uint32(env.cfg.GXfer)) {
		env.MsgStaged()
		u.Deliver(dm)
	}
	env.eng.Run(0)
	if !u.IsLocal(addr) {
		t.Error("returned block must be local again")
	}
}

func TestUnitStateSnapshot(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignB))
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ctx.Compute(1) })
	u := New(0, env, sim.NewRNG(1))
	u.SeedTask(task.New(fn, 0, 64, 7))
	u.SeedTask(task.New(fn, 0, 128, 3))
	s := u.StateSnapshot()
	if s.WQueue != 10 {
		t.Errorf("WQueue = %d, want 10", s.WQueue)
	}
	if s.WFinished != 0 {
		t.Errorf("WFinished = %d, want 0", s.WFinished)
	}
	u.Kick()
	env.eng.Run(0)
	s = u.StateSnapshot()
	if s.WQueue != 0 || s.WFinished != 10 {
		t.Errorf("after run: WQueue=%d WFinished=%d", s.WQueue, s.WFinished)
	}
}

func TestUnitWorkStealingSelectsQueueTail(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignW))
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ctx.Compute(1) })
	u := New(0, env, sim.NewRNG(1))
	for i := uint64(0); i < 10; i++ {
		// One task per G_xfer block so stealing one task lends exactly
		// one block.
		u.SeedTask(task.New(fn, 0, env.cfg.GXfer*i, 10))
	}
	u.CommandSchedule(30, 2)
	ms, _ := u.DrainMailbox(1 << 20)
	taskMsgs := 0
	for _, m := range ms {
		if m.Type == msg.TypeTask {
			taskMsgs++
		}
	}
	if taskMsgs != 3 {
		t.Errorf("stole %d tasks, want 3 (30 workload / 10 each)", taskMsgs)
	}
	// Remaining tasks still run locally.
	u.Kick()
	env.eng.Run(0)
	if u.Stats().Tasks != 7 {
		t.Errorf("remaining tasks = %d, want 7", u.Stats().Tasks)
	}
}

func TestUnitMailboxBackpressure(t *testing.T) {
	cfg := smallCfg(config.DesignB)
	cfg.Buffers.MailboxBytes = 128 // tiny: ~4 task messages
	env := newStubEnv(cfg)
	remote := env.amap.Base(3)
	var fn task.FuncID
	fn = env.reg.Register("burst", func(ctx task.Ctx, tk task.Task) {
		for i := uint64(0); i < 20; i++ {
			ctx.Enqueue(task.New(fn, 0, remote+64*i, 1))
		}
	})
	u := New(0, env, sim.NewRNG(1))
	u.SeedTask(task.New(fn, 0, 0, 1))
	u.Kick()
	env.eng.Run(0)
	if u.Stats().Stalls == 0 {
		t.Error("tiny mailbox must stall")
	}
	// Draining repeatedly releases everything.
	got := 0
	for i := 0; i < 100 && got < 20; i++ {
		ms, _ := u.DrainMailbox(1 << 10)
		got += len(ms)
		env.eng.Run(0)
	}
	if got != 20 {
		t.Errorf("released %d messages, want 20", got)
	}
}

func TestUnitHotSchedulingPrefersHotBlock(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignO))
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ctx.Compute(1) })
	u := New(0, env, sim.NewRNG(1))
	hot := env.amap.Base(0) + 4096
	cold := env.amap.Base(0) + 8192
	// 8 tasks on the hot block, 1 on each of 8 cold blocks.
	for i := 0; i < 8; i++ {
		u.SeedTask(task.New(fn, 0, hot, 10))
		u.SeedTask(task.New(fn, 0, cold+uint64(i)*env.cfg.GXfer, 10))
	}
	u.CommandSchedule(80, 2)
	ms, _ := u.DrainMailbox(1 << 20)
	blocks := map[uint64]bool{}
	tasks := 0
	for _, m := range ms {
		switch m.Type {
		case msg.TypeData:
			blocks[m.BlockAddr] = true
		case msg.TypeTask:
			tasks++
		}
	}
	if !blocks[hot] {
		t.Error("hot block must be selected")
	}
	// Hot selection moves many tasks per block: far fewer blocks than
	// tasks.
	if len(blocks) > tasks/2+1 {
		t.Errorf("hot selection inefficient: %d blocks for %d tasks", len(blocks), tasks)
	}
}

func TestUnitIdleAndBacklog(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignB))
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ctx.Compute(1) })
	u := New(0, env, sim.NewRNG(1))
	if !u.Idle() || u.HasBacklog() {
		t.Error("fresh unit must be idle with no backlog")
	}
	u.SeedTask(task.New(fn, 0, 0, 1))
	if u.Idle() || !u.HasBacklog() {
		t.Error("seeded unit must not be idle")
	}
	u.Kick()
	env.eng.Run(0)
	if !u.Idle() || u.HasBacklog() {
		t.Error("drained unit must be idle again")
	}
}
