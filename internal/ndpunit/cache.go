package ndpunit

// Cache is a simple set-associative, LRU, write-allocate cache model for the
// NDP core's L1 data cache (Table I: 64 kB, 4-way, 64 B lines). It tracks
// which lines are resident so the execution context can charge DRAM latency
// only for misses. Contents are not stored — only presence matters for
// timing.
type Cache struct {
	sets     int
	ways     int
	lineBits uint
	lines    []cline
	clock    uint64

	hits, misses uint64
}

type cline struct {
	valid bool
	tag   uint64
	lru   uint64
}

// NewCache builds a cache of capacityBytes with the given associativity and
// line size. Line size and the derived set count must be powers of two.
func NewCache(capacityBytes, ways, lineBytes int) *Cache {
	if capacityBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic("ndpunit: cache shape must be positive")
	}
	if lineBytes&(lineBytes-1) != 0 {
		panic("ndpunit: line size must be a power of two")
	}
	totalLines := capacityBytes / lineBytes
	if totalLines%ways != 0 {
		panic("ndpunit: capacity/line not divisible by ways")
	}
	sets := totalLines / ways
	if sets&(sets-1) != 0 {
		panic("ndpunit: set count must be a power of two")
	}
	var lb uint
	for 1<<lb != lineBytes {
		lb++
	}
	return &Cache{sets: sets, ways: ways, lineBits: lb, lines: make([]cline, totalLines)}
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() uint64 { return 1 << c.lineBits }

// Touch accesses the line containing addr, returning true on a hit. On a
// miss the line is filled (LRU victim replaced).
func (c *Cache) Touch(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line) & (c.sets - 1)
	ways := c.lines[set*c.ways : (set+1)*c.ways]
	c.clock++
	var victim *cline
	for i := range ways {
		w := &ways[i]
		if w.valid && w.tag == line {
			w.lru = c.clock
			c.hits++
			return true
		}
		if victim == nil || (!w.valid && victim.valid) || (w.valid == victim.valid && w.lru < victim.lru) {
			victim = w
		}
	}
	*victim = cline{valid: true, tag: line, lru: c.clock}
	c.misses++
	return false
}

// AccessRange touches every line overlapping [addr, addr+n) and returns the
// number of hits and misses.
func (c *Cache) AccessRange(addr, n uint64) (hits, misses int) {
	if n == 0 {
		return 0, 0
	}
	lb := c.LineBytes()
	first := addr &^ (lb - 1)
	last := (addr + n - 1) &^ (lb - 1)
	for a := first; ; a += lb {
		if c.Touch(a) {
			hits++
		} else {
			misses++
		}
		if a == last {
			break
		}
	}
	return hits, misses
}

// Invalidate drops the line containing addr if present (used when a borrowed
// block is returned home).
func (c *Cache) Invalidate(addr uint64) {
	line := addr >> c.lineBits
	set := int(line) & (c.sets - 1)
	ways := c.lines[set*c.ways : (set+1)*c.ways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == line {
			ways[i] = cline{}
			return
		}
	}
}

// Stats returns cumulative hits and misses.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }
