package ndpunit

// Cache is a simple set-associative, LRU, write-allocate cache model for the
// NDP core's L1 data cache (Table I: 64 kB, 4-way, 64 B lines). It tracks
// which lines are resident so the execution context can charge DRAM latency
// only for misses. Contents are not stored — only presence matters for
// timing.
type Cache struct {
	sets     int
	ways     int
	lineBits uint
	// groups holds the line arrays, allocated lazily in runs of setGroup
	// sets: a system constructs one cache per unit, and most units touch
	// only a small slice of the set index space (or nothing at all), so
	// eager full-size line arrays dominated allocation profiles.
	groups [][]cline
	clock  uint64

	hits, misses uint64
}

// setGroup is the lazy-allocation granularity in sets. 64 sets × 4 ways ×
// 16 B = 4 kB per group for the L1 shape — small enough that sparse units
// stay cheap, large enough that a fully-touched cache costs only 16 group
// allocations.
const setGroup = 64

// cline packs a line's presence and tag into one word: tagP1 is the line tag
// plus one, so the zero value means invalid and a freshly zeroed line array
// is an empty cache. 16 bytes instead of 24 matters: the line arrays are the
// largest per-unit allocation in a system.
type cline struct {
	tagP1 uint64
	lru   uint64
}

func (w *cline) valid() bool { return w.tagP1 != 0 }

// NewCache builds a cache of capacityBytes with the given associativity and
// line size. Line size and the derived set count must be powers of two.
func NewCache(capacityBytes, ways, lineBytes int) *Cache {
	if capacityBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic("ndpunit: cache shape must be positive")
	}
	if lineBytes&(lineBytes-1) != 0 {
		panic("ndpunit: line size must be a power of two")
	}
	totalLines := capacityBytes / lineBytes
	if totalLines%ways != 0 {
		panic("ndpunit: capacity/line not divisible by ways")
	}
	sets := totalLines / ways
	if sets&(sets-1) != 0 {
		panic("ndpunit: set count must be a power of two")
	}
	var lb uint
	for 1<<lb != lineBytes {
		lb++
	}
	return &Cache{sets: sets, ways: ways, lineBits: lb}
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() uint64 { return 1 << c.lineBits }

// Touch accesses the line containing addr, returning true on a hit. On a
// miss the line is filled (LRU victim replaced).
//
//ndplint:hotpath
func (c *Cache) Touch(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line) & (c.sets - 1)
	if c.groups == nil {
		c.groups = make([][]cline, (c.sets+setGroup-1)/setGroup) //ndplint:alloc once, on first access
	}
	g := set / setGroup
	grp := c.groups[g]
	if grp == nil {
		n := setGroup
		if c.sets < n {
			n = c.sets
		}
		grp = make([]cline, n*c.ways) //ndplint:alloc once per touched set group
		c.groups[g] = grp
	}
	ways := grp[(set%setGroup)*c.ways:][:c.ways]
	c.clock++
	var victim *cline
	for i := range ways {
		w := &ways[i]
		if w.tagP1 == line+1 {
			w.lru = c.clock
			c.hits++
			return true
		}
		if victim == nil || (!w.valid() && victim.valid()) || (w.valid() == victim.valid() && w.lru < victim.lru) {
			victim = w
		}
	}
	*victim = cline{tagP1: line + 1, lru: c.clock}
	c.misses++
	return false
}

// AccessRange touches every line overlapping [addr, addr+n) and returns the
// number of hits and misses.
func (c *Cache) AccessRange(addr, n uint64) (hits, misses int) {
	if n == 0 {
		return 0, 0
	}
	lb := c.LineBytes()
	first := addr &^ (lb - 1)
	last := (addr + n - 1) &^ (lb - 1)
	for a := first; ; a += lb {
		if c.Touch(a) {
			hits++
		} else {
			misses++
		}
		if a == last {
			break
		}
	}
	return hits, misses
}

// Invalidate drops the line containing addr if present (used when a borrowed
// block is returned home).
func (c *Cache) Invalidate(addr uint64) {
	if c.groups == nil {
		return
	}
	line := addr >> c.lineBits
	set := int(line) & (c.sets - 1)
	grp := c.groups[set/setGroup]
	if grp == nil {
		return
	}
	ways := grp[(set%setGroup)*c.ways:][:c.ways]
	for i := range ways {
		if ways[i].tagP1 == line+1 {
			ways[i] = cline{}
			return
		}
	}
}

// Stats returns cumulative hits and misses.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }
