package ndpunit

import (
	"ndpbridge/internal/msg"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
)

// This file holds the unit's fault-injection state: death and transient
// stalls, plus the unit's two endpoints of the link-layer retry protocol
// (sender of the gather hop, receiver of the scatter hop). All of it is
// gated on the ft pointer — a run without an attached fault plan never
// allocates it, so the hot paths pay one nil test and stay byte-identical
// to a build that predates fault injection.

// Parent is the level-1 bridge surface the unit's retry protocol talks to.
// Acks travel as direct calls: the acknowledgement sideband is modeled as
// reliable and instantaneous, like the DQS strobe handshake it abstracts.
type Parent interface {
	// GatherIn is the gather-hop wire: retransmitted mailbox messages
	// re-enter the bridge through it (hop faults apply per crossing).
	GatherIn(child int, m *msg.Message)
	// ScatterAck / ScatterNack acknowledge one scatter-hop delivery.
	ScatterAck(child int, seq uint32)
	ScatterNack(child int, seq uint32)
}

// faultState is the per-unit fault machinery, allocated by EnableFaults.
type faultState struct {
	dead         bool
	stalledUntil sim.Cycles
	wakeArmed    bool

	parent       Parent
	gatherSeq    uint32
	gatherRet    *msg.Retrans // unit → bridge (gather hop) retransmit buffer
	scatterDedup msg.Dedup    // bridge → unit (scatter hop) duplicate filter

	lost func(*msg.Message) // terminal-loss hook (core recovery)

	// Running-task shadow for kill rollback: runTask charges its counters
	// up front, so Extinguish can undo them and re-home the task.
	cur     *task.Task
	curBusy sim.Cycles
}

// Remains is everything a killed unit leaves behind for the recovery
// runtime: queued tasks to re-spawn, staged/mailboxed messages needing
// terminal resolution, and unacked gather-hop messages whose loss must be
// gated against late-arriving copies at the bridge.
//ndplint:domain(xfer)
type Remains struct {
	Tasks   []task.Task
	Msgs    []*msg.Message
	Unacked []*msg.Message
}

// EnableFaults allocates the unit's fault state. Idempotent.
//ndplint:seam fault-campaign control plane wired before the clock starts
func (u *Unit) EnableFaults() {
	if u.ft == nil {
		u.ft = &faultState{}
	}
}

// EnableRetry arms the unit's two retry-protocol endpoints against its
// parent bridge. Only bridge designs call it; the retransmission knobs come
// from cfg.Retry.
//ndplint:seam retry-protocol control plane wired before the clock starts
func (u *Unit) EnableRetry(parent Parent) {
	u.EnableFaults()
	u.ft.parent = parent
	cfg := u.cfg
	u.ft.gatherRet = msg.NewRetrans(u.eng, cfg.Retry.Timeout, cfg.Retry.BackoffCap,
		cfg.Retry.BufBytes, func(m *msg.Message) { parent.GatherIn(u.id, m) })
	u.ft.gatherRet.SetTrace(u.env.Trace, u.id)
	u.ft.gatherRet.SetJitter(msg.JitterSeed(1, uint64(u.id)))
}

// SetLostHook installs the terminal-loss callback invoked for every message
// the recovery runtime declares undeliverable.
//ndplint:seam fault-campaign control plane wired before the clock starts
func (u *Unit) SetLostHook(fn func(*msg.Message)) {
	u.EnableFaults()
	u.ft.lost = fn
}

// Dead reports whether the unit has been killed.
func (u *Unit) Dead() bool { return u.ft != nil && u.ft.dead }

// Stall freezes the compute pipeline until the given cycle: the running
// task completes, the mailbox stays reachable, but no new task starts. The
// caller should Kick afterwards so an idle unit arms its wake-up.
//ndplint:seam fault hook: coordinator stalls the unit at a plan point
func (u *Unit) Stall(until sim.Cycles) {
	u.EnableFaults()
	if until > u.ft.stalledUntil {
		u.ft.stalledUntil = until
	}
}

// Extinguish kills the unit and evacuates everything recoverable. The unit
// stops executing, refuses gathers and new work, and resolves deliveries
// through the lost hook. The task running at kill time force-completes (its
// side effects were applied at start; see below), while queued tasks ride
// along in Remains.Tasks for exactly-once re-spawn elsewhere.
//ndplint:seam fault hook: coordinator kills the unit and collects its remains at a plan point
func (u *Unit) Extinguish() Remains {
	u.EnableFaults()
	var r Remains
	if u.ft.dead {
		return r
	}
	u.ft.dead = true

	r.Tasks = u.queue.DrainAll()
	if u.rq != nil {
		for _, t := range u.rq.Drain() {
			r.Tasks = append(r.Tasks, t)
		}
		u.rqWorkload = 0
	}
	if u.running && u.ft.cur != nil {
		// The running task applied its side effects — memory accesses,
		// child spawns — synchronously when it started, so replaying it
		// elsewhere would double-apply them (and double-spawn its
		// children, whose first copies are being recovered from the
		// staged/mailbox messages below). Force its completion instead:
		// the work survives the kill, only the unit is lost. The
		// completion event still pending in the engine no-ops for dead
		// units, so TaskDone fires exactly once.
		t := *u.ft.cur
		u.ft.cur = nil
		u.env.TaskDone(t.TS)
	}
	u.running = false

	r.Msgs = append(r.Msgs, u.staged...)
	u.staged = nil
	for {
		m, ok := u.mb.Dequeue()
		if !ok {
			break
		}
		r.Msgs = append(r.Msgs, m)
	}
	if u.chipMail != nil {
		for {
			m, ok := u.chipMail.Dequeue()
			if !ok {
				break
			}
			r.Msgs = append(r.Msgs, m)
		}
	}
	if u.ft.gatherRet != nil {
		r.Unacked = u.ft.gatherRet.TakeAll()
	}
	return r
}

// AdoptTask re-homes a recovered task without re-spawning accounting: the
// original spawn still holds the epoch's outstanding count, so the adopted
// copy must complete exactly once. Tasks whose block is lent out re-enter
// the fabric as fresh messages.
//ndplint:seam recovery hook: buddy unit adopts a dead unit task at a barrier
func (u *Unit) AdoptTask(t task.Task) {
	t.SpawnedAt = u.eng.Now()
	if _, local := u.localOffset(t.Addr); !local {
		u.emit(u.taskMessage(t, u.env.Map().Home(t.Addr) == u.id))
		u.flushStaged()
		return
	}
	u.acceptTask(t)
	u.tryStart()
}

// RecoverLent heals the isLent bit for a block whose borrowed copy was lost
// with a dead unit: the home copy becomes authoritative again.
//ndplint:seam recovery hook: coordinator restores lent-out metadata at a barrier
func (u *Unit) RecoverLent(blk uint64) bool {
	if u.env.Map().HomeRaw(blk) != u.id {
		return false
	}
	if u.isLent.SetLent(u.env.Map().Offset(blk), false) {
		u.tryStart()
		return true
	}
	return false
}

// MarkSeqHandled claims terminal resolution of one scatter-hop sequence
// number. It returns true exactly once per seq — the caller that wins the
// claim runs the lost hook; any copy still in flight is silently discarded
// by the dedup filter. Used when the sender resolves a message to a dead
// unit out of band.
func (u *Unit) MarkSeqHandled(seq uint32) bool {
	if u.ft == nil {
		return true
	}
	return u.ft.scatterDedup.Accept(seq)
}

// AckGather and NackGather are the bridge's acknowledgement sideband for
// the gather hop.
func (u *Unit) AckGather(seq uint32) {
	if u.ft != nil && u.ft.gatherRet != nil {
		u.ft.gatherRet.Ack(seq)
	}
}

// NackGather triggers an immediate retransmission of a corrupted gather.
//ndplint:seam retry protocol: rank bridge bounces a gathered message back
func (u *Unit) NackGather(seq uint32) {
	if u.ft != nil && u.ft.gatherRet != nil {
		u.ft.gatherRet.Nack(seq)
	}
}

// RetryStats returns the unit's gather-hop retransmission counters and the
// scatter-hop duplicates filtered.
func (u *Unit) RetryStats() (msg.RetransStats, uint64) {
	if u.ft == nil {
		return msg.RetransStats{}, 0
	}
	var rs msg.RetransStats
	if u.ft.gatherRet != nil {
		rs = u.ft.gatherRet.Stats()
	}
	return rs, u.ft.scatterDedup.Dups()
}
