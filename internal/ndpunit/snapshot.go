package ndpunit

import (
	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/task"
)

// SnapshotTo encodes the unit's complete mutable state: execution position
// (RNG, running flag, counters), the task queue, both mailboxes, staged
// messages, migration metadata, sketch and reserved queue, DRAM bank timing,
// cache contents, and — on fault runs — the retry-protocol endpoint state.
// Structural configuration (bank geometry, mailbox capacity, DRAM layout
// offsets) is derived from the config and not encoded.
//ndplint:seam snapshot encoder: runs at a barrier with the fabric quiesced
func (u *Unit) SnapshotTo(e *checkpoint.Enc) {
	e.I64(int64(u.id))
	e.Bool(u.running)
	e.U64(u.rng.State())
	e.U64(u.finishedWorkload)
	e.U64(u.rqWorkload)
	e.U64(u.hits64)
	e.U64(u.lastBounce)

	e.U64(u.st.Busy)
	e.U64(u.st.Tasks)
	e.U64(u.st.Spawned)
	e.U64(u.st.MsgsOut)
	e.U64(u.st.MsgsIn)
	e.U64(u.st.Stalls)
	e.U64(u.st.Bounces)
	e.U64(u.st.Borrowed)
	e.U64(u.st.Lent)
	e.U64(u.st.Returns)

	u.queue.SnapshotTo(e)
	u.mb.SnapshotTo(e)
	e.Bool(u.chipMail != nil)
	if u.chipMail != nil {
		u.chipMail.SnapshotTo(e)
	}
	e.U32(uint32(len(u.staged)))
	for _, m := range u.staged {
		msg.EncodeSnapshot(e, m)
	}

	u.isLent.SnapshotTo(e)
	u.borrowed.SnapshotTo(e)
	u.snapshotSlots(e)

	e.Bool(u.sk != nil)
	if u.sk != nil {
		u.sk.SnapshotTo(e)
	}
	e.Bool(u.rq != nil)
	if u.rq != nil {
		u.rq.SnapshotTo(e)
	}
	e.U32(uint32(len(u.schedOut)))
	for _, so := range u.schedOut {
		e.U64(so.BlockAddr)
		e.U64(so.Workload)
	}

	u.bank.SnapshotTo(e)
	u.cache.snapshotTo(e)

	e.Bool(u.ft != nil)
	if u.ft == nil {
		return
	}
	e.Bool(u.ft.dead)
	e.U64(u.ft.stalledUntil)
	e.Bool(u.ft.wakeArmed)
	e.U32(u.ft.gatherSeq)
	e.Bool(u.ft.gatherRet != nil)
	if u.ft.gatherRet != nil {
		u.ft.gatherRet.SnapshotTo(e)
	}
	u.ft.scatterDedup.SnapshotTo(e)
	e.Bool(u.ft.cur != nil)
	if u.ft.cur != nil {
		task.EncodeTask(e, *u.ft.cur)
		e.U64(u.ft.curBusy)
	}
}

// snapshotSlots encodes the free-slot stack. A unit that has never borrowed
// (or returned every borrow in LIFO order) holds the stack in its
// construction-time layout — slot j carrying offset borrowedOff +
// (nSlots-1-j)·G_xfer — so the encoding records the stack length, the length
// of the prefix still matching that layout, and then only the churned tail
// explicitly. The common case costs two integers instead of thousands of
// offsets; any pop/push history is still captured exactly because order
// (which steers future allocations) is preserved.
// The stack is stored in two parts (virtual pristine prefix + explicit freed
// tail; see the Unit field comment), so the logical stack is reconstituted on
// the fly. The pristine prefix matches the construction layout by definition;
// the scan continues into the freed tail because a freed slot can land on a
// position whose layout value it happens to equal, and the encoding must stay
// byte-identical to the former eager-stack encoder.
func (u *Unit) snapshotSlots(e *checkpoint.Enc) {
	stride := u.gxfer()
	total := u.slotTotal
	pristine := int(total - u.slotNext)
	logical := pristine + len(u.slots)
	e.U32(uint32(logical))
	p := pristine
	for p < logical && u.slots[p-pristine] == u.borrowedOff+(total-1-uint64(p))*stride {
		p++
	}
	e.U32(uint32(p))
	for _, s := range u.slots[p-pristine:] {
		e.U64(s)
	}
}

// snapshotTo encodes the cache's line array, LRU clock, and hit counters.
// Tags and LRU stamps go as varints: the line array is the single largest
// blob in a unit snapshot (every cache is warm in steady state), and both
// fields are small-valued — tags are bank offsets shifted down by lineBits,
// stamps are bounded by the access clock. The line array is lazily
// materialized, so its length (zero for a never-accessed cache) is encoded
// explicitly; materialization is a deterministic function of execution, so
// replayed runs still digest identically.
func (c *Cache) snapshotTo(e *checkpoint.Enc) {
	e.U32(uint32(c.sets))
	e.U32(uint32(c.ways))
	e.U32(uint32(c.lineBits))
	e.U64(c.clock)
	e.U64(c.hits)
	e.U64(c.misses)
	touched := false
	for _, g := range c.groups {
		if g != nil {
			touched = true
			break
		}
	}
	if !touched {
		e.U32(0)
		return
	}
	// Encode the logical set×way array. Unmaterialized groups are all
	// invalid lines, so emitting zero lines for them keeps the stream
	// byte-identical to the former whole-array encoder.
	e.U32(uint32(c.sets * c.ways))
	var zero cline
	for set := 0; set < c.sets; set++ {
		grp := c.groups[set/setGroup]
		for w := 0; w < c.ways; w++ {
			l := &zero
			if grp != nil {
				l = &grp[(set%setGroup)*c.ways+w]
			}
			e.Bool(l.valid())
			tag := l.tagP1
			if tag != 0 {
				tag--
			}
			e.UVarint(tag)
			e.UVarint(l.lru)
		}
	}
}

// PendingMsgs returns the number of messages physically held by the unit —
// staged for mailbox space plus enqueued in the mailbox(es) — for the
// auditor's structural in-flight accounting.
func (u *Unit) PendingMsgs() int {
	n := len(u.staged) + u.mb.Len()
	if u.chipMail != nil {
		n += u.chipMail.Len()
	}
	return n
}

// QueuedTasks returns the number of tasks waiting in the unit's task queue.
func (u *Unit) QueuedTasks() int { return u.queue.Len() }

// LentCount returns the number of blocks this unit has lent out, per its
// isLent metadata.
func (u *Unit) LentCount() int { return u.isLent.Count() }

// BorrowedCount returns the number of blocks this unit currently borrows.
func (u *Unit) BorrowedCount() int { return u.borrowed.Len() }

// GatherSeq returns the unit's gather-hop sender sequence counter (zero when
// faults are off), for the auditor's monotonicity check.
func (u *Unit) GatherSeq() uint32 {
	if u.ft == nil {
		return 0
	}
	return u.ft.gatherSeq
}

// RetransPending returns the number of unacked gather-hop messages (zero
// when faults are off).
func (u *Unit) RetransPending() int {
	if u.ft == nil || u.ft.gatherRet == nil {
		return 0
	}
	return u.ft.gatherRet.Len()
}
