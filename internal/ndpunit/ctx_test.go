package ndpunit

import (
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
)

func TestCtxChargesCacheHitsAndMisses(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignB))
	var first, second uint64
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) {
		start := ctx.(*execCtx).cursor
		ctx.Read(tk.Addr, 256) // 4 cold lines → DRAM
		first = uint64(ctx.(*execCtx).cursor - start)
		mid := ctx.(*execCtx).cursor
		ctx.Read(tk.Addr, 256) // warm → 4 cycles
		second = uint64(ctx.(*execCtx).cursor - mid)
	})
	u := New(0, env, sim.NewRNG(1))
	u.SeedTask(task.New(fn, 0, 4096, 1))
	u.Kick()
	env.eng.Run(0)
	if second != 4 {
		t.Errorf("warm read cost = %d, want 4 (cache hits)", second)
	}
	if first <= second*5 {
		t.Errorf("cold read (%d) should dwarf warm read (%d)", first, second)
	}
}

func TestCtxComputeAdvancesCursor(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignB))
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) {
		ctx.Compute(1234)
	})
	u := New(0, env, sim.NewRNG(1))
	u.SeedTask(task.New(fn, 0, 64, 1))
	u.Kick()
	env.eng.Run(0)
	if u.Stats().Busy < 1234 {
		t.Errorf("busy = %d, want ≥ 1234", u.Stats().Busy)
	}
}

func TestCtxIdentity(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignB))
	var unit int
	var now sim.Cycles
	var rngOK bool
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) {
		unit = ctx.Unit()
		now = ctx.Now()
		rngOK = ctx.Rand() != nil
	})
	u := New(2, env, sim.NewRNG(1))
	addr := env.amap.Base(2) + 64
	u.SeedTask(task.New(fn, 0, addr, 1))
	u.Kick()
	env.eng.Run(0)
	if unit != 2 {
		t.Errorf("Unit = %d", unit)
	}
	if !rngOK {
		t.Error("Rand must not be nil")
	}
	_ = now
}

func TestCtxNonLocalAccessPanics(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignB))
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) {
		ctx.Read(env.amap.Base(3), 64) // unit 3's data from unit 0
	})
	u := New(0, env, sim.NewRNG(1))
	u.SeedTask(task.New(fn, 0, 64, 1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-local access")
		}
	}()
	u.Kick()
	env.eng.Run(0)
}

func TestCtxZeroLengthAccessFree(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignB))
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) {
		ctx.Read(tk.Addr, 0)
		ctx.Write(tk.Addr, 0)
	})
	u := New(0, env, sim.NewRNG(1))
	u.SeedTask(task.New(fn, 0, 64, 1))
	u.Kick()
	env.eng.Run(0)
	// Busy = queue-pop charge + minimum 1 cycle, nothing from the reads.
	if u.Stats().Busy > 64 {
		t.Errorf("zero-length accesses should be free, busy=%d", u.Stats().Busy)
	}
}

func TestWastedGatherChargesBank(t *testing.T) {
	env := newStubEnv(smallCfg(config.DesignB))
	u := New(0, env, sim.NewRNG(1))
	before := u.Bank().Stats().CommBytes
	u.WastedGather()
	after := u.Bank().Stats().CommBytes
	if after != before+env.cfg.GXfer {
		t.Errorf("wasted gather charged %d bytes, want %d", after-before, env.cfg.GXfer)
	}
}
