package ndpunit

import (
	"fmt"

	"ndpbridge/internal/dram"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
)

// execCtx implements task.Ctx for one task execution. It advances a private
// cursor through the unit's timeline: cache hits cost one cycle, misses go
// through the bank arbiter, computation adds cycles directly. Child tasks
// are routed at creation: locally-available ones enter the local queue,
// remote ones are staged as messages that leave after the task completes.
type execCtx struct {
	u      *Unit
	start  sim.Cycles
	cursor sim.Cycles
	// span is the running task's (open) execution span, which children
	// reference as their causal parent. Zero when flow tracing is off.
	span uint32
}

var (
	_ task.Ctx    = (*execCtx)(nil)
	_ task.EndCtx = (*execCtx)(nil)
)

func (c *execCtx) Unit() int          { return c.u.id }
func (c *execCtx) Now() sim.Cycles    { return c.start }
func (c *execCtx) Cursor() sim.Cycles { return c.cursor }
func (c *execCtx) Rand() *sim.RNG     { return c.u.rng }

func (c *execCtx) Compute(cycles sim.Cycles) { c.cursor += cycles }

func (c *execCtx) access(addr, n uint64, write bool) {
	if n == 0 {
		return
	}
	off, ok := c.u.localOffset(addr)
	if !ok {
		panic(fmt.Sprintf("ndpunit: unit %d accessing non-local address %#x", c.u.id, addr))
	}
	hits, misses := c.u.cache.AccessRange(addr, n)
	c.cursor += sim.Cycles(hits) // 1 cycle per hit line
	if misses > 0 {
		lineBytes := c.u.cache.LineBytes()
		epj := c.u.cfg.Energy.DRAMAccessPJPer64b
		c.cursor = c.u.bank.Access(c.cursor, off, uint64(misses)*lineBytes, write, dram.AccessLocal, epj)
	}
}

func (c *execCtx) Read(addr, n uint64)  { c.access(addr, n, false) }
func (c *execCtx) Write(addr, n uint64) { c.access(addr, n, true) }

func (c *execCtx) Enqueue(t task.Task) {
	u := c.u
	u.env.TaskSpawned(t.TS)
	u.st.Spawned++
	if t.ID == 0 {
		t.ID = u.env.NextTaskID()
	}
	t.SpawnedAt = c.cursor
	t.Span = c.span
	if _, local := u.localOffset(t.Addr); local {
		u.acceptTask(t)
		return
	}
	u.emit(u.taskMessage(t, false))
}
