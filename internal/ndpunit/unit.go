// Package ndpunit models one NDP unit of a DRAM-bank NDP system
// (Section V-A, Figure 4(b)): a wimpy in-order core with an L1 cache, a DRAM
// bank behind an access arbiter, and the extended unit controller holding the
// task queue, the mailbox region, the borrowed data region, the isLent /
// dataBorrowed migration metadata, and the sketch + reserved queue used for
// hot-data load balancing.
//
// Units are passive with respect to communication: the parent bridge (or the
// host forwarder in baseline designs) drains their mailboxes with GATHER,
// delivers messages with SCATTER, reads their state with STATE-GATHER, and
// commands load-balancing with SCHEDULE. All of those entry points charge
// bank time through the access arbiter.
package ndpunit

import (
	"fmt"

	"ndpbridge/internal/config"
	"ndpbridge/internal/dram"
	"ndpbridge/internal/mailbox"
	"ndpbridge/internal/metadata"
	"ndpbridge/internal/metrics"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/sketch"
	"ndpbridge/internal/stats"
	"ndpbridge/internal/task"
	"ndpbridge/internal/trace"
)

// Env is the runtime environment a unit operates in, implemented by the
// system orchestrator. It provides global services: the event engine, the
// configuration, the address map, the task registry, and the bulk-sync epoch
// accounting.
type Env interface {
	Engine() *sim.Engine
	Cfg() *config.Config
	Map() *dram.AddrMap
	Registry() *task.Registry
	CurrentEpoch() uint32
	// TaskSpawned/TaskDone maintain the per-epoch outstanding-task counts
	// used for bulk-sync termination detection.
	TaskSpawned(ts uint32)
	TaskDone(ts uint32)
	// MsgStaged/MsgDelivered maintain the in-flight message count, which
	// must reach zero before an epoch can end.
	MsgStaged()
	MsgDelivered()
	// NextTaskID returns a run-unique task identifier. Fault recovery
	// dedups re-spawned tasks by it so each executes exactly once.
	NextTaskID() uint64
	// Trace returns the activity recorder, or nil when tracing is off.
	Trace() *trace.Recorder
	// MsgPool returns the run's message pool (nil for a private pool).
	MsgPool() *msg.Pool
}

// taskRecordBytes is the DRAM footprint of one task queue record.
const taskRecordBytes = 32

// inboxEntry is one delivered-but-uncommitted message in a unit's inbox: the
// bank commit cycle, the engine sequence number reserved at Deliver time, and
// the message itself.
type inboxEntry struct {
	at  sim.Cycles
	seq uint64
	m   *msg.Message
}

// schedSel is one block selected by CommandSchedule together with its tasks
// and their summed workload.
type schedSel struct {
	blk   uint64
	tasks []task.Task
	w     uint64
}

// Unit is one NDP unit.
//ndplint:domain(unit)
type Unit struct {
	id  int
	env Env //ndplint:nosnap simulation wiring, rebound at construction
	// eng/cfg cache env.Engine()/env.Cfg() — both stable for the system's
	// lifetime — so hot paths skip the interface dispatch.
	eng *sim.Engine    //ndplint:nosnap cached wiring, set at construction
	cfg *config.Config //ndplint:nosnap cached wiring, set at construction

	bank  *dram.Bank
	cache *Cache
	queue *task.Queue
	mb    *mailbox.Mailbox
	// chipMail holds same-chip messages in design R, where RowClone
	// serves intra-chip transfers and only cross-chip traffic goes
	// through host forwarding.
	chipMail *mailbox.Mailbox

	isLent   *metadata.IsLent
	borrowed *metadata.Borrowed
	// The free borrowed-region slot stack is kept in two parts so a unit
	// that never borrows allocates nothing: a virtual pristine prefix of
	// never-used slots (slotNext counts how many have been handed out;
	// offsets ascend from borrowedOff) and an explicit stack of freed
	// slots sitting logically on top of it. Pop order is identical to the
	// former eager stack: freed slots LIFO first, then pristine ascending.
	slots     []uint64 // freed slot offsets (stack top)
	slotNext  uint64   // pristine slots handed out so far
	slotTotal uint64   // total slots in the borrowed region

	sk         *sketch.Sketch
	rq         *sketch.ReservedQueue
	rqWorkload uint64

	rng *sim.RNG

	running bool
	staged  []*msg.Message // outgoing messages waiting for mailbox space

	// pool recycles task/data messages (see msg.Pool). Allocation always
	// draws from it; freeing is suppressed on fault runs, where retry
	// layers hold message pointers past delivery.
	pool *msg.Pool //ndplint:nosnap memory recycling, carries no model state

	// inbox is the batched-delivery queue: messages whose bank write has
	// been charged, waiting for their commit cycle. Each entry carries the
	// engine seq reserved at Deliver time; one dispatch event is in flight
	// whenever the inbox is non-empty, scheduled under the head entry's
	// (cycle, seq) so execution order is identical to per-message
	// scheduling. Undelivered messages hold the epoch open, so the inbox
	// is provably empty at every bulk-sync barrier.
	inbox     []inboxEntry //ndplint:nosnap empty at barrier checkpoints, like the engine queue
	inboxHead int          //ndplint:nosnap empty at barrier checkpoints
	inboxFn   func()       //ndplint:nosnap wiring, rebound at construction
	// legacyDeliver restores one engine event per delivered message (the
	// pre-inbox path); the event-core equivalence tests run both.
	legacyDeliver bool //ndplint:nosnap test toggle, not model state

	// Reused hot-path scratch: the single in-flight execution context and
	// its completion event, and the SCHEDULE selection buffers.
	ctx        execCtx      //ndplint:nosnap live only inside one runTask call
	curTS      uint32       //ndplint:nosnap shadow of the running task's epoch, dead when idle
	taskDoneFn func()       //ndplint:nosnap wiring, rebound at construction
	splitBuf   []*msg.Message //ndplint:nosnap scratch, empty between calls
	selBuf     []schedSel     //ndplint:nosnap scratch, empty between calls
	byBlock    map[uint64]int //ndplint:nosnap scratch, cleared between calls
	taskBuf    []task.Task    //ndplint:nosnap scratch for reserved-queue takes
	skipBuf    []task.Task    //ndplint:nosnap scratch, empty between calls

	// DRAM layout offsets within the bank.
	mailboxOff  uint64 //ndplint:nosnap layout constant from config
	borrowedOff uint64
	queueOff    uint64 //ndplint:nosnap layout constant from config

	finishedWorkload uint64
	schedOut         []msg.SchedOut

	st stats.Unit

	// Instruments, bound by BindMetrics; nil (single-branch no-ops) when
	// metrics are off.
	mTaskLat  *metrics.Histogram // spawn → execution-start latency
	mTaskExec *metrics.Histogram // execution duration
	mMsgLat   *metrics.Histogram // staging → delivery latency
	cBounces  *metrics.Counter
	cBorrowed *metrics.Counter
	cReturns  *metrics.Counter
	cStalls   *metrics.Counter

	hits64     uint64 // SRAM access approximation counter
	lastBounce uint64 // most recent bounced task address, for diagnostics

	// ft is the fault-injection state; nil (the common case) keeps every
	// fault hook a single-branch no-op.
	ft *faultState
}

// BindMetrics attaches the unit's instruments to reg. All units of one run
// bind the same named instruments, so each histogram describes the
// system-wide distribution. A nil registry leaves the instruments nil, which
// keeps every observation a single-branch no-op.
//ndplint:seam metrics wiring before the clock starts
func (u *Unit) BindMetrics(reg *metrics.Registry) {
	u.mTaskLat = reg.Histogram("task_latency_cycles")
	u.mTaskExec = reg.Histogram("task_exec_cycles")
	u.mMsgLat = reg.Histogram("msg_latency_cycles")
	u.cBounces = reg.Counter("bounces")
	u.cBorrowed = reg.Counter("blocks_borrowed")
	u.cReturns = reg.Counter("blocks_returned")
	u.cStalls = reg.Counter("mailbox_stalls")
}

// QueueLen returns the number of tasks waiting in the unit's queues (main
// plus reserved), for the ready-queue depth gauge.
func (u *Unit) QueueLen() int {
	n := u.queue.Len()
	if u.rq != nil {
		n += u.rq.Total()
	}
	return n
}

// New builds a unit. rng must be a dedicated stream for this unit.
func New(id int, env Env, rng *sim.RNG) *Unit {
	cfg := env.Cfg()
	u := &Unit{
		id:    id,
		env:   env,
		eng:   env.Engine(),
		cfg:   cfg,
		bank:  dram.NewBank(cfg.Timing),
		cache: NewCache(64<<10, 4, 64),
		queue: task.NewQueue(),
		mb:    mailbox.New(cfg.Buffers.MailboxBytes),
		rng:   rng,
	}
	u.isLent = metadata.NewIsLent(cfg.Geometry.BankBytes, cfg.GXfer)
	u.borrowed = metadata.NewBorrowed(cfg.Metadata.UnitBorrowedEntries, cfg.Metadata.UnitBorrowedWays)
	u.mailboxOff = cfg.Geometry.BankBytes - cfg.Buffers.MailboxBytes
	u.borrowedOff = u.mailboxOff - cfg.Metadata.BorrowedRegionBytes
	u.queueOff = u.borrowedOff - (64 << 10)

	u.slotTotal = cfg.Metadata.BorrowedRegionBytes / cfg.GXfer

	if cfg.Design == config.DesignR {
		u.chipMail = mailbox.New(cfg.Buffers.MailboxBytes)
	}
	if u.hotEnabled() {
		u.sk = sketch.New(cfg.Sketch.Buckets, cfg.Sketch.EntriesPerBkt, cfg.Sketch.DecayBase, rng.Split())
		chunkTasks := int(cfg.GXfer) / taskRecordBytes
		if chunkTasks < 1 {
			chunkTasks = 1
		}
		u.rq = sketch.NewReservedQueue(cfg.Sketch.ReservedChunks, chunkTasks)
	}
	u.pool = env.MsgPool()
	if u.pool == nil {
		u.pool = msg.NewPool()
	}
	u.inboxFn = u.inboxFire
	u.taskDoneFn = u.taskDone
	return u
}

// SetLegacyDeliver switches the unit back to one engine event per delivered
// message instead of the batched inbox. The event-core equivalence tests run
// both paths and require identical results.
//ndplint:seam configuration toggle wired before the clock starts
func (u *Unit) SetLegacyDeliver(on bool) { u.legacyDeliver = on }

func (u *Unit) hotEnabled() bool {
	cfg := u.cfg
	return cfg.Design.LoadBalancing() && cfg.LoadBalance.Hot
}

// ID returns the unit's system-wide ID.
func (u *Unit) ID() int { return u.id }

// Bank exposes the unit's DRAM bank for stats collection.
func (u *Unit) Bank() *dram.Bank { return u.bank }

// Cache exposes the L1 model for stats collection.
func (u *Unit) Cache() *Cache { return u.cache }

// Stats returns the unit's counters.
func (u *Unit) Stats() stats.Unit { return u.st }

// SRAMAccesses approximates the number of SRAM accesses performed.
func (u *Unit) SRAMAccesses() uint64 {
	h, m := u.cache.Stats()
	return h + m + u.hits64
}

func (u *Unit) gxfer() uint64 { return u.cfg.GXfer }

func (u *Unit) block(addr uint64) uint64 { return dram.BlockAlign(addr, u.gxfer()) }

// localOffset resolves addr to a bank offset if the data is locally
// available: in the home region and not lent, or present in the borrowed
// region. The second return is false when the data is not local.
func (u *Unit) localOffset(addr uint64) (uint64, bool) {
	m := u.env.Map()
	if m.Home(addr) == u.id {
		off := m.Offset(addr)
		if !u.isLent.Lent(off) {
			return off, true
		}
		if u.ft != nil && m.HomeRaw(addr) != u.id {
			// Adopted range of a dead unit: the buddy serves it
			// unconditionally — the isLent bit at this offset
			// describes the buddy's own block, not the adopted one.
			return off, true
		}
		return 0, false
	}
	blk := u.block(addr)
	if slot, ok := u.borrowed.Lookup(blk); ok {
		u.hits64++
		return slot + (addr - blk), true
	}
	return 0, false
}

// IsLocal reports whether addr's data is currently available at this unit.
func (u *Unit) IsLocal(addr uint64) bool {
	_, ok := u.localOffset(addr)
	return ok
}

// SeedTask injects an initial task directly into the unit's queue, modeling
// the static initial assignment done at data-loading time (no communication
// charge).
//ndplint:seam work injection: host and bridge seed tasks onto the unit queue at quiet points
func (u *Unit) SeedTask(t task.Task) {
	u.env.TaskSpawned(t.TS)
	u.st.Spawned++
	if t.ID == 0 {
		t.ID = u.env.NextTaskID()
	}
	t.SpawnedAt = u.eng.Now()
	if _, local := u.localOffset(t.Addr); !local {
		// The block was lent out in an earlier epoch: forward the
		// seed to its current holder through the fabric.
		u.emit(u.taskMessage(t, u.env.Map().Home(t.Addr) == u.id))
		u.flushStaged()
		return
	}
	u.acceptTask(t)
}

// acceptTask routes a locally-available task into the reserved queue (when
// hot tracking covers its block) or the main task queue.
func (u *Unit) acceptTask(t task.Task) {
	if u.sk != nil && t.TS == u.env.CurrentEpoch() {
		blk := u.block(t.Addr)
		u.sk.Observe(blk, t.EffectiveWorkload())
		u.hits64++
		if _, tracked := u.sk.Lookup(blk); tracked && u.rq.Add(blk, t) {
			u.rqWorkload += t.EffectiveWorkload()
			return
		}
	}
	u.queue.Push(t)
}

// Kick prompts the core to start executing if it is idle. The system calls
// it at start-of-run and after deliveries and epoch advances.
//ndplint:seam DDR command surface: bridge wake command delivered over the command bus
func (u *Unit) Kick() { u.tryStart() }

// nextTask obtains the next runnable task of the current epoch, pulling
// reserved tasks back into the main queue when it runs dry.
func (u *Unit) nextTask(ts uint32) (task.Task, bool) {
	for {
		if t, ok := u.queue.Pop(ts); ok {
			return t, true
		}
		if u.rq == nil || u.rq.Total() == 0 {
			return task.Task{}, false
		}
		// Refill from the hottest reserved block; those tasks were
		// candidates to give away, but nobody asked — run them.
		e, ok := u.sk.Hottest()
		tasks := u.taskBuf[:0]
		if ok {
			tasks = u.rq.TakeAppend(tasks, e.Addr)
			u.sk.Remove(e.Addr)
		}
		if len(tasks) == 0 {
			tasks = u.rq.DrainAppend(tasks)
		}
		u.taskBuf = tasks[:0]
		if len(tasks) == 0 {
			return task.Task{}, false
		}
		for _, t := range tasks {
			u.rqWorkload -= t.EffectiveWorkload()
			u.queue.Push(t)
		}
	}
}

func (u *Unit) tryStart() {
	if u.running {
		return
	}
	if u.ft != nil {
		if u.ft.dead {
			return
		}
		if now := u.eng.Now(); now < u.ft.stalledUntil {
			// Transient stall: defer the start to the wake cycle.
			// One armed wake-up per stall window is enough — every
			// path back to readiness funnels through tryStart.
			if !u.ft.wakeArmed {
				u.ft.wakeArmed = true
				u.eng.At(u.ft.stalledUntil, func() {
					u.ft.wakeArmed = false
					u.tryStart()
				})
			}
			return
		}
	}
	if len(u.staged) > 0 && !u.flushStaged() {
		return // stalled: mailbox full, resume on next drain
	}
	eng := u.eng
	ts := u.env.CurrentEpoch()
	epj := u.cfg.Energy.DRAMAccessPJPer64b

	for {
		t, ok := u.nextTask(ts)
		if !ok {
			return
		}
		if _, local := u.localOffset(t.Addr); !local {
			// The block was lent away after this task was queued:
			// bounce the task back into the fabric (Section VI-B).
			u.st.Bounces++
			u.cBounces.Inc()
			u.lastBounce = t.Addr
			u.emit(u.taskMessage(t, true))
			if len(u.staged) > 0 && !u.flushStaged() {
				return
			}
			continue
		}
		u.runTask(t, eng, epj)
		return
	}
}

func (u *Unit) runTask(t task.Task, eng *sim.Engine, epj float64) {
	u.running = true
	now := eng.Now()
	if t.SpawnedAt <= now {
		u.mTaskLat.Observe(now - t.SpawnedAt)
	}
	// Causal spans: the closed queue-wait span, then an open execution span
	// children can reference as their parent; closed once the cursor lands.
	rec := u.env.Trace()
	var execSpan uint32
	if rec.FlowsEnabled() {
		flow, enq := rec.TaskOrigin(t.Span, t.ID, t.SpawnedAt)
		q := rec.Span(flow, t.Span, trace.SpanQueued, trace.CatTaskQueue, u.id, enq, now)
		execSpan = rec.OpenSpan(flow, q, trace.SpanExec, trace.CatBankBusy, u.id, now)
	}
	// Task queue pop: one DRAM record read. The execution context is reused
	// across tasks — handlers run synchronously and never retain it.
	cursor := u.bank.Access(now, u.queueOff, taskRecordBytes, false, dram.AccessLocal, epj)
	u.ctx = execCtx{u: u, start: now, cursor: cursor, span: execSpan}
	u.env.Registry().Handler(t.Func)(&u.ctx, t)
	end := u.ctx.cursor
	if end <= now {
		end = now + 1
	}
	rec.CloseSpan(execSpan, end)
	u.mTaskExec.Observe(end - now)
	u.st.Busy += end - now
	u.st.Tasks++
	u.finishedWorkload += t.EffectiveWorkload()
	if u.ft != nil {
		// Shadow the running task so a kill mid-execution can force its
		// completion (the side effects above already happened).
		tc := t
		u.ft.cur = &tc
		u.ft.curBusy = end - now
	}
	u.env.Trace().Record(trace.KindTask, u.id, now, end, u.env.Registry().Name(t.Func))
	// One task is in flight at a time (u.running), so the completion event
	// is the pre-bound taskDone reading the epoch shadowed in curTS.
	u.curTS = t.TS
	eng.At(end, u.taskDoneFn)
}

// taskDone is the task-completion event body.
//
//ndplint:hotpath
func (u *Unit) taskDone() {
	if u.ft != nil {
		if u.ft.dead {
			// Killed mid-task: Extinguish already force-completed
			// the task (TaskDone fired there), so this pending
			// completion must not double-report it.
			return
		}
		u.ft.cur = nil
	}
	u.running = false
	u.env.TaskDone(u.curTS)
	u.tryStart()
}

// taskMessage builds an outgoing task message addressed to the home unit.
// escalate marks the cross-rank chase described in Section VI-B.
//ndplint:hotpath
func (u *Unit) taskMessage(t task.Task, escalate bool) *msg.Message {
	m := u.pool.NewTaskIn(u.id, u.env.Map().Home(t.Addr), t)
	m.Escalate = escalate
	if rec := u.env.Trace(); rec.FlowsEnabled() {
		m.Flow, _ = rec.TaskOrigin(t.Span, t.ID, t.SpawnedAt)
	}
	return m
}

// emit stages an outgoing message. Staged messages move to the mailbox as
// space allows; the caller decides when a failed flush should stall the core.
func (u *Unit) emit(m *msg.Message) {
	u.env.MsgStaged()
	m.StagedAt = u.eng.Now()
	u.staged = append(u.staged, m)
}

// hopCat picks the attribution category for a message hop at this unit:
// load-balancing traffic bills migration; designs whose fabric is the host
// (C, R's cross-chip path, H) bill the host round-trip; bridge designs bill
// gather/scatter batching delay.
func (u *Unit) hopCat(m *msg.Message) trace.Category {
	if m.Sched || m.Round != 0 {
		return trace.CatLBMigration
	}
	if u.cfg.Design.UsesBridges() {
		return trace.CatGatherBatch
	}
	return trace.CatHostRT
}

// flushStaged moves staged messages into the mailbox (or the chip mailbox
// for same-chip destinations in design R), charging a DRAM write per
// message. It returns false while messages remain (mailbox full).
func (u *Unit) flushStaged() bool {
	epj := u.cfg.Energy.DRAMAccessPJPer64b
	now := u.eng.Now()
	for len(u.staged) > 0 {
		m := u.staged[0]
		mb := u.mb
		if u.chipMail != nil && m.Dst >= 0 && !m.Sched && u.env.Map().SameChip(u.id, m.Dst) {
			mb = u.chipMail
		}
		if !mb.Enqueue(m) {
			u.st.Stalls++
			u.cStalls.Inc()
			return false
		}
		u.st.MsgsOut++
		u.bank.Access(now, u.mailboxOff, m.Size(), true, dram.AccessComm, epj)
		u.staged = u.staged[1:]
	}
	u.staged = nil
	return true
}

// ChipMailUsed returns the bytes waiting for intra-chip RowClone transfer
// (design R only).
func (u *Unit) ChipMailUsed() uint64 {
	if u.chipMail == nil {
		return 0
	}
	return u.chipMail.Used()
}

// DrainChipMail removes up to budget bytes of same-chip messages; the
// RowClone engine transfers them within the chip.
func (u *Unit) DrainChipMail(budget uint64) []*msg.Message {
	if u.chipMail == nil {
		return nil
	}
	ms := u.chipMail.DrainUpTo(budget)
	if len(ms) > 0 {
		if rec := u.env.Trace(); rec.FlowsEnabled() {
			now := u.eng.Now()
			for _, m := range ms {
				// Intra-chip RowClone pickup: batching delay, like a
				// bridge gather.
				m.Span = rec.Span(m.Flow, m.Span, trace.SpanMailbox, trace.CatGatherBatch, u.id, m.HopStart(), now)
				m.HopAt = now
			}
		}
		epj := u.cfg.Energy.DRAMAccessPJPer64b
		u.bank.Access(u.eng.Now(), u.mailboxOff, msg.TotalSize(ms), false, dram.AccessComm, epj)
		if len(u.staged) > 0 && u.flushStaged() {
			u.tryStart()
		}
	}
	return ms
}

// --- Fabric-facing entry points (GATHER / SCATTER / STATE-GATHER / SCHEDULE) ---

// MailboxUsed returns the bytes waiting in the mailbox (L_mailbox).
func (u *Unit) MailboxUsed() uint64 { return u.mb.Used() }

// DrainMailbox serves a GATHER command: it removes up to budget bytes of
// messages from the mailbox head, charging the bank read, and returns the
// messages with the bank-side completion time. After a drain, staged
// messages get another chance to enter the mailbox and the core resumes if
// it was stalled.
//ndplint:seam DDR command surface: gather drain, the bridge pulls staged messages here
func (u *Unit) DrainMailbox(budget uint64) ([]*msg.Message, sim.Cycles) {
	now := u.eng.Now()
	if u.ft != nil {
		if u.ft.dead {
			return nil, now
		}
		if u.ft.gatherRet != nil && u.ft.gatherRet.Full() {
			// Retransmit-buffer watermark: refuse the drain so the
			// bridge's backpressure reaches the mailbox.
			u.env.Trace().Span(0, 0, trace.SpanBlocked, trace.CatRetry, u.id, now, now)
			return nil, now
		}
	}
	ms := u.mb.DrainUpTo(budget)
	if len(ms) == 0 {
		return nil, now
	}
	if rec := u.env.Trace(); rec.FlowsEnabled() {
		// One mailbox-wait span per message: staged → picked up by this
		// gather. The message's span/hop stamps advance to this hop so the
		// next leg chains causally.
		for _, m := range ms {
			m.Span = rec.Span(m.Flow, m.Span, trace.SpanMailbox, u.hopCat(m), u.id, m.HopStart(), now)
			m.HopAt = now
		}
	}
	if u.ft != nil && u.ft.gatherRet != nil {
		// Stamp each message with a gather-hop sequence number and
		// checksum, and hold a copy for retransmission until acked.
		for _, m := range ms {
			if m.Seq == 0 {
				u.ft.gatherSeq++
				m.Seq = u.ft.gatherSeq
				m.Sum = msg.Checksum(m)
			}
			u.ft.gatherRet.Track(m)
		}
	}
	epj := u.cfg.Energy.DRAMAccessPJPer64b
	done := u.bank.Access(now, u.mailboxOff, msg.TotalSize(ms), false, dram.AccessComm, epj)
	if len(u.staged) > 0 {
		if u.flushStaged() {
			u.tryStart()
		}
	}
	return ms, done
}

// LastBounce returns the most recently bounced task address and the total
// bounce count, for livelock diagnostics.
func (u *Unit) LastBounce() (addr uint64, n uint64) { return u.lastBounce, u.st.Bounces }

// LentAt reports whether the home-owned block containing addr is marked
// lent (diagnostic/invariant-test hook).
func (u *Unit) LentAt(addr uint64) bool {
	if u.env.Map().Home(addr) != u.id {
		return false
	}
	return u.isLent.Lent(u.env.Map().Offset(addr))
}

// BorrowedBlocks returns the original addresses of all blocks this unit
// currently borrows (diagnostic/invariant-test hook).
func (u *Unit) BorrowedBlocks() []uint64 {
	var out []uint64
	u.borrowed.ForEach(func(k, _ uint64) { out = append(out, k) })
	return out
}

// WastedGather charges the bank cost of a GATHER that found no messages —
// fixed-interval triggering reads the transfer granularity from the mailbox
// region regardless of content (Section V-C).
//ndplint:seam DDR command surface: gather-poll accounting when the mailbox is empty
func (u *Unit) WastedGather() {
	epj := u.cfg.Energy.DRAMAccessPJPer64b
	u.bank.Access(u.eng.Now(), u.mailboxOff, u.gxfer(), false, dram.AccessComm, epj)
}

// Deliver serves a SCATTER of one message to this unit. It charges the bank
// write and schedules the message's effect at the completion time. The
// returned cycle is when the bank transaction finishes.
//
//ndplint:hotpath
//ndplint:seam DDR command surface: scatter delivery into the unit inbox
func (u *Unit) Deliver(m *msg.Message) sim.Cycles {
	eng := u.eng
	epj := u.cfg.Energy.DRAMAccessPJPer64b
	var off uint64
	switch m.Type {
	case msg.TypeTask:
		off = u.queueOff
	case msg.TypeData:
		off = u.borrowedOff
	default:
		off = u.queueOff
	}
	done := u.bank.Access(eng.Now(), off, m.Size(), true, dram.AccessComm, epj)
	if u.legacyDeliver {
		eng.At(done, func() { u.receive(m) }) //ndplint:alloc legacy compat path, off by default
		return done
	}
	// Batched delivery: reserve the sequence number now (so global event
	// order is identical to scheduling immediately) but park the message in
	// the inbox. One dispatch event is in flight whenever the inbox is
	// non-empty, keyed to the head entry's (cycle, seq).
	seq := eng.ReserveSeq()
	u.inbox = append(u.inbox, inboxEntry{at: done, seq: seq, m: m})
	if len(u.inbox)-u.inboxHead == 1 {
		eng.AtSeq(done, seq, u.inboxFn)
	}
	return done
}

// inboxFire dispatches the inbox head and coalesces directly-following
// entries: a successor at the same cycle with the very next sequence number
// would be the engine's next event anyway — nothing can order between two
// consecutive sequence numbers at one cycle — so it is processed in the same
// event and credited to the engine's processed count. Otherwise the successor
// gets its own event under its reserved (cycle, seq).
//
//ndplint:hotpath
func (u *Unit) inboxFire() {
	e := u.inbox[u.inboxHead]
	u.inbox[u.inboxHead] = inboxEntry{}
	u.inboxHead++
	u.receive(e.m)
	eng := u.eng
	for u.inboxHead < len(u.inbox) {
		n := u.inbox[u.inboxHead]
		if n.at == e.at && n.seq == e.seq+1 {
			u.inbox[u.inboxHead] = inboxEntry{}
			u.inboxHead++
			eng.CreditEvent()
			u.receive(n.m)
			e = n
			continue
		}
		eng.AtSeq(n.at, n.seq, u.inboxFn)
		if u.inboxHead > 64 && u.inboxHead*2 >= len(u.inbox) {
			k := copy(u.inbox, u.inbox[u.inboxHead:])
			for i := k; i < len(u.inbox); i++ {
				u.inbox[i] = inboxEntry{}
			}
			u.inbox = u.inbox[:k]
			u.inboxHead = 0
		}
		return
	}
	u.inbox = u.inbox[:0]
	u.inboxHead = 0
}

// freeMsg recycles a terminally-consumed message. Freeing is suppressed on
// fault-injection runs (retry layers hold message pointers in retransmit
// buffers past delivery), where the pool degrades to a plain arena.
//
//ndplint:hotpath
func (u *Unit) freeMsg(m *msg.Message) {
	if u.ft == nil && m.Seq == 0 {
		u.pool.Put(m)
	}
}

// receive applies a delivered message at bank-commit time.
func (u *Unit) receive(m *msg.Message) {
	if u.ft != nil {
		if m.Seq != 0 && u.ft.parent != nil {
			// Scatter-hop retry protocol: verify, ack, dedup.
			if !m.Verify() {
				u.ft.parent.ScatterNack(u.id, m.Seq)
				return
			}
			u.ft.parent.ScatterAck(u.id, m.Seq)
			if !u.ft.scatterDedup.Accept(m.Seq) {
				return // duplicate of an already-processed copy
			}
			m.Seq, m.Sum = 0, 0
		}
		if u.ft.dead {
			// Delivery committed at a dead bank: the recovery runtime
			// resolves the message terminally.
			if u.ft.lost != nil {
				u.ft.lost(m)
			}
			return
		}
	}
	u.st.MsgsIn++
	u.env.MsgDelivered()
	now := uint64(u.eng.Now())
	rec := u.env.Trace()
	rec.Record(trace.KindDeliver, u.id, now, now, "")
	if rec.FlowsEnabled() {
		// Final in-flight leg: last hop handoff → bank commit here.
		m.Span = rec.Span(m.Flow, m.Span, trace.SpanDeliver, u.hopCat(m), u.id, m.HopStart(), now)
		m.HopAt = now
	}
	if m.StagedAt <= now {
		u.mMsgLat.Observe(now - m.StagedAt)
	}
	switch m.Type {
	case msg.TypeTask:
		t := m.Task
		// The task resumes its flow at this unit: its queue wait chains off
		// the delivery span (whose End is the delivery commit).
		t.Span = m.Span
		if _, local := u.localOffset(t.Addr); !local {
			// Chasing a moving block: re-emit toward its home;
			// escalate if we are the home (it lives in another
			// rank).
			u.st.Bounces++
			u.cBounces.Inc()
			u.lastBounce = t.Addr
			u.env.MsgStaged() // re-enters flight
			home := u.env.Map().Home(t.Addr) == u.id
			u.freeMsg(m)
			u.staged = append(u.staged, u.taskMessage(t, home))
			u.flushStaged()
			return
		}
		u.freeMsg(m)
		u.acceptTask(t)
		u.tryStart()
	case msg.TypeData:
		u.receiveData(m)
		u.freeMsg(m)
	default:
		panic(fmt.Sprintf("ndpunit: unit %d received %v message", u.id, m.Type))
	}
}

// receiveData handles an incoming data block chunk: either a block being
// lent to us (store in the borrowed region, update dataBorrowed) or one of
// our own blocks returning home (clear isLent).
func (u *Unit) receiveData(m *msg.Message) {
	home := u.env.Map().Home(m.BlockAddr)
	if home == u.id {
		// Returning home.
		off := u.env.Map().Offset(m.BlockAddr)
		if int(m.Index) == int(m.Total)-1 {
			// A block returning to an adopted (re-homed) range lands
			// at the buddy: the isLent bit at that offset belongs to
			// the buddy's own block, so only the raw home clears it.
			if u.ft == nil || u.env.Map().HomeRaw(m.BlockAddr) == u.id {
				if u.isLent.SetLent(off, false) {
					u.st.Returns++
				}
			}
			u.tryStart() // queued tasks for this block may now run
		}
		return
	}
	// Borrowed block chunk: allocate a region slot on the first chunk.
	blk := u.block(m.BlockAddr)
	if _, ok := u.borrowed.Lookup(blk); !ok {
		slot, ok := u.allocSlot()
		if !ok {
			// Region exhausted: evict the LRU borrowed block to
			// make room (return it home first).
			if !u.evictOneBorrowed() {
				return // nothing to evict; drop tracking (block bounces will heal)
			}
			slot, _ = u.allocSlot()
		}
		ev, evicted := u.borrowed.Insert(blk, slot)
		u.hits64++
		if evicted {
			u.returnBlock(ev.Key, ev.Value)
		}
		u.st.Borrowed++
		u.cBorrowed.Inc()
	}
	if int(m.Index) == int(m.Total)-1 {
		u.tryStart()
	}
}

func (u *Unit) allocSlot() (uint64, bool) {
	if n := len(u.slots); n > 0 {
		s := u.slots[n-1]
		u.slots = u.slots[:n-1]
		return s, true
	}
	if u.slotNext < u.slotTotal {
		s := u.borrowedOff + u.slotNext*u.gxfer()
		u.slotNext++
		return s, true
	}
	return 0, false
}

// evictOneBorrowed returns an arbitrary borrowed block home to free a slot.
func (u *Unit) evictOneBorrowed() bool {
	var key, val uint64
	found := false
	u.borrowed.ForEach(func(k, v uint64) {
		if !found {
			key, val = k, v
			found = true
		}
	})
	if !found {
		return false
	}
	u.borrowed.Remove(key)
	u.returnBlock(key, val)
	return true
}

// returnBlock sends a borrowed block home and frees its slot.
func (u *Unit) returnBlock(blk, slot uint64) {

	u.slots = append(u.slots, slot)
	u.cache.Invalidate(blk)
	home := u.env.Map().Home(blk)
	u.splitBuf = u.pool.SplitDataInto(u.splitBuf[:0], u.id, home, blk, uint32(u.gxfer()))
	// A returning block is its own causal root (the LB round that lent it
	// out is long resolved): one fresh flow shared by its sub-messages.
	flow := u.env.Trace().NewFlow()
	for _, dm := range u.splitBuf {
		dm.Flow = flow
		u.emit(dm)
	}
	u.flushStaged()
	u.st.Returns++
	u.cReturns.Inc()
}

// ForceReturn is the back-invalidation used when a bridge-level dataBorrowed
// entry is evicted: the receiver must return the block to keep the tables
// inclusive.
//ndplint:seam retry protocol: bridge forces return of a borrowed block
func (u *Unit) ForceReturn(blk uint64) {
	if slot, ok := u.borrowed.Lookup(blk); ok {
		u.borrowed.Remove(blk)
		u.returnBlock(blk, slot)
	}
}

// StateSnapshot serves STATE-GATHER: it returns the unit's state message
// payload and transfers ownership of the pending scheduled-out list.
//ndplint:seam DDR command surface: state-gather poll of unit occupancy
func (u *Unit) StateSnapshot() msg.State {
	ts := u.env.CurrentEpoch()
	s := msg.State{
		LMailbox:  u.mb.Used(),
		WQueue:    u.queue.Workload(ts) + u.rqWorkload,
		WFinished: u.finishedWorkload,
		SchedList: u.schedOut,
	}
	u.schedOut = nil
	return s
}

// QueueWorkload exposes the current-epoch queue workload (for tests and the
// host executor).
func (u *Unit) QueueWorkload() uint64 {
	return u.queue.Workload(u.env.CurrentEpoch()) + u.rqWorkload
}

// Idle reports whether the core is idle with nothing runnable.
func (u *Unit) Idle() bool {
	return !u.running && u.queue.LenEpoch(u.env.CurrentEpoch()) == 0 && (u.rq == nil || u.rq.Total() == 0)
}

// HasBacklog reports whether the unit holds any queued work or undelivered
// outgoing messages (used for termination debugging).
func (u *Unit) HasBacklog() bool {
	return u.running || u.queue.Len() > 0 || (u.rq != nil && u.rq.Total() > 0) ||
		!u.mb.Empty() || len(u.staged) > 0 || (u.chipMail != nil && !u.chipMail.Empty())
}

// CommandSchedule serves the SCHEDULE command (Section VI-A step 2): the
// giver selects tasks worth at least budget workload, together with their
// data blocks, marks the blocks lent, and stages the messages tagged with
// the commanding round. The selected list is reported back through the next
// state message.
//ndplint:seam DDR command surface: command budget grant from the rank bridge
func (u *Unit) CommandSchedule(budget uint64, round uint32) {
	ts := u.env.CurrentEpoch()
	cfg := u.cfg
	// selected reuses the per-unit scratch buffer (and, within capacity,
	// each recycled entry's tasks backing array) across rounds.
	selected := u.selBuf[:0]
	var acc uint64
	appendSel := func(blk uint64, w uint64) *schedSel {
		if n := len(selected); n < cap(selected) {
			selected = selected[:n+1]
			s := &selected[n]
			s.blk, s.w = blk, w
			s.tasks = s.tasks[:0]
			return s
		}
		selected = append(selected, schedSel{blk: blk, w: w})
		return &selected[len(selected)-1]
	}

	useHot := u.sk != nil && cfg.LoadBalance.Hot
	if useHot {
		for acc < budget {
			e, ok := u.sk.Hottest()
			if !ok {
				break
			}
			tasks := u.rq.TakeAppend(u.taskBuf[:0], e.Addr)
			u.taskBuf = tasks[:0]
			u.sk.Remove(e.Addr)
			if len(tasks) == 0 {
				continue
			}
			var w uint64
			for _, t := range tasks {
				w += t.EffectiveWorkload()
				u.rqWorkload -= t.EffectiveWorkload()
			}
			// Only blocks currently resident at home can be lent:
			// borrowed blocks and blocks already lent out are
			// requeued (their tasks will bounce to the holder).
			if u.env.Map().Home(e.Addr) != u.id || u.isLent.Lent(u.env.Map().Offset(e.Addr)) {
				for _, t := range tasks {
					u.queue.Push(t)
				}
				continue
			}
			s := appendSel(e.Addr, w)
			s.tasks = append(s.tasks, tasks...)
			acc += w
		}
	}
	// Fallback (and the whole path for work stealing): pop from the queue
	// tail, grouping tasks by block.
	if acc < budget {
		if u.byBlock == nil {
			u.byBlock = make(map[uint64]int, 16)
		} else {
			clear(u.byBlock)
		}
		skipped := u.skipBuf[:0]
		for acc < budget {
			t, ok := u.queue.PopTail(ts)
			if !ok {
				break
			}
			blk := u.block(t.Addr)
			if u.env.Map().Home(blk) != u.id || u.isLent.Lent(u.env.Map().Offset(blk)) {
				skipped = append(skipped, t)
				continue
			}
			if i, ok := u.byBlock[blk]; ok {
				selected[i].tasks = append(selected[i].tasks, t)
				selected[i].w += t.EffectiveWorkload()
			} else {
				u.byBlock[blk] = len(selected)
				s := appendSel(blk, t.EffectiveWorkload())
				s.tasks = append(s.tasks, t)
			}
			acc += t.EffectiveWorkload()
		}
		for _, t := range skipped {
			u.queue.Push(t)
		}
		u.skipBuf = skipped[:0]
	}

	for i := range selected {
		s := &selected[i]
		off := u.env.Map().Offset(s.blk)
		u.isLent.SetLent(off, true)
		u.cache.Invalidate(s.blk)
		u.st.Lent++
		u.splitBuf = u.pool.SplitDataInto(u.splitBuf[:0], u.id, -1, s.blk, uint32(u.gxfer()))
		// Each migrated block starts a fresh flow; its scheduled-out tasks
		// keep their own task flows (the spans bill CatLBMigration either
		// way via the Sched/Round marks).
		flow := u.env.Trace().NewFlow()
		for _, dm := range u.splitBuf {
			dm.Sched = true
			dm.Round = round
			dm.Flow = flow
			u.emit(dm)
		}
		for _, t := range s.tasks {
			tm := u.pool.NewTaskIn(u.id, -1, t)
			tm.Sched = true
			tm.Round = round
			if rec := u.env.Trace(); rec.FlowsEnabled() {
				tm.Flow, _ = rec.TaskOrigin(t.Span, t.ID, t.SpawnedAt)
			}
			u.emit(tm)
		}
		u.schedOut = append(u.schedOut, msg.SchedOut{BlockAddr: s.blk, Workload: s.w})
	}
	u.selBuf = selected
	u.flushStaged()
}
