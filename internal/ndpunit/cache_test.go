package ndpunit

import (
	"testing"
	"testing/quick"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1024, 2, 64) // 16 lines, 8 sets × 2 ways
	if c.Touch(0) {
		t.Error("cold access must miss")
	}
	if !c.Touch(0) || !c.Touch(63) {
		t.Error("same line must hit")
	}
	if c.Touch(64) {
		t.Error("next line must miss")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = %d/%d, want 2/2", hits, misses)
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	c := NewCache(1024, 2, 64) // 8 sets: lines mapping to same set differ by 512 B
	c.Touch(0)                 // set 0, way A
	c.Touch(512)               // set 0, way B
	c.Touch(0)                 // touch A
	c.Touch(1024)              // set 0: evicts B (LRU)
	if !c.Touch(0) {
		t.Error("recently used line evicted")
	}
	if c.Touch(512) {
		t.Error("LRU line should have been evicted")
	}
}

func TestCacheAccessRange(t *testing.T) {
	c := NewCache(64<<10, 4, 64)
	hits, misses := c.AccessRange(100, 200) // spans lines 1..4
	if hits != 0 || misses != 4 {
		t.Errorf("range = %d/%d, want 0/4", hits, misses)
	}
	hits, misses = c.AccessRange(100, 200)
	if hits != 4 || misses != 0 {
		t.Errorf("repeat range = %d/%d, want 4/0", hits, misses)
	}
	hits, misses = c.AccessRange(0, 0)
	if hits != 0 || misses != 0 {
		t.Error("empty range must be free")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(1024, 2, 64)
	c.Touch(128)
	c.Invalidate(128)
	if c.Touch(128) {
		t.Error("invalidated line must miss")
	}
	c.Invalidate(9999) // no-op on absent line
}

func TestCacheBadShapePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache(0, 1, 64) },
		func() { NewCache(1024, 0, 64) },
		func() { NewCache(1024, 2, 60) },
		func() { NewCache(1024, 3, 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: hits+misses equals the number of distinct lines in each range
// request.
func TestCacheRangeCountProperty(t *testing.T) {
	f := func(addr uint32, nRaw uint16) bool {
		c := NewCache(64<<10, 4, 64)
		n := uint64(nRaw) + 1
		a := uint64(addr)
		hits, misses := c.AccessRange(a, n)
		first := a / 64
		last := (a + n - 1) / 64
		return uint64(hits+misses) == last-first+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
