package mailbox

import (
	"fmt"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/msg"
)

// SnapshotTo encodes the mailbox: capacity (for shape validation on
// restore), the queued messages front to back, and the accounting counters.
func (mb *Mailbox) SnapshotTo(e *checkpoint.Enc) {
	e.U64(mb.capacity)
	e.U32(uint32(len(mb.queue) - mb.head))
	for i := mb.head; i < len(mb.queue); i++ {
		msg.EncodeSnapshot(e, mb.queue[i])
	}
	e.U64(mb.used)
	e.U64(mb.enqueued)
	e.U64(mb.dequeued)
	e.U64(mb.stalls)
	e.U64(mb.peakUsed)
}

// RestoreFrom rebuilds the mailbox from a SnapshotTo stream, replacing the
// current contents. The capacity must match the snapshot's.
func (mb *Mailbox) RestoreFrom(d *checkpoint.Dec) error {
	capacity := d.U64()
	if d.Err() == nil && capacity != mb.capacity {
		return fmt.Errorf("mailbox: snapshot capacity %d, have %d", capacity, mb.capacity)
	}
	n := d.U32()
	mb.queue = mb.queue[:0]
	mb.head = 0
	for i := uint32(0); i < n; i++ {
		mm := msg.DecodeSnapshot(d)
		if d.Err() != nil {
			return d.Err()
		}
		mb.queue = append(mb.queue, mm)
	}
	mb.used = d.U64()
	mb.enqueued = d.U64()
	mb.dequeued = d.U64()
	mb.stalls = d.U64()
	mb.peakUsed = d.U64()
	return d.Err()
}
