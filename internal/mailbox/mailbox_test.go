package mailbox

import (
	"testing"
	"testing/quick"

	"ndpbridge/internal/msg"
	"ndpbridge/internal/task"
)

func taskMsg(addr uint64) *msg.Message {
	return msg.NewTask(0, 1, task.New(0, 0, addr, 1))
}

func TestMailboxFIFO(t *testing.T) {
	mb := New(1 << 20)
	for i := uint64(0); i < 10; i++ {
		if !mb.Enqueue(taskMsg(i)) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if mb.Len() != 10 {
		t.Fatalf("Len = %d", mb.Len())
	}
	for i := uint64(0); i < 10; i++ {
		m, ok := mb.Dequeue()
		if !ok || m.Task.Addr != i {
			t.Fatalf("dequeue %d: got %v, %v", i, m, ok)
		}
	}
	if !mb.Empty() {
		t.Error("should be empty")
	}
}

func TestMailboxByteAccounting(t *testing.T) {
	mb := New(1 << 20)
	m := taskMsg(1)
	mb.Enqueue(m)
	if mb.Used() != m.Size() {
		t.Errorf("Used = %d, want %d", mb.Used(), m.Size())
	}
	mb.Dequeue()
	if mb.Used() != 0 {
		t.Errorf("Used after drain = %d", mb.Used())
	}
}

func TestMailboxStallWhenFull(t *testing.T) {
	m := taskMsg(0)
	mb := New(m.Size() * 2)
	if !mb.Enqueue(taskMsg(1)) || !mb.Enqueue(taskMsg(2)) {
		t.Fatal("first two must fit")
	}
	if mb.Enqueue(taskMsg(3)) {
		t.Fatal("third enqueue must stall")
	}
	_, _, stalls, _ := mb.Stats()
	if stalls != 1 {
		t.Errorf("stalls = %d, want 1", stalls)
	}
	// After draining one, there is room again.
	mb.Dequeue()
	if !mb.Enqueue(taskMsg(3)) {
		t.Error("enqueue after drain must succeed")
	}
}

func TestMailboxDrainUpTo(t *testing.T) {
	mb := New(1 << 20)
	size := taskMsg(0).Size()
	for i := uint64(0); i < 10; i++ {
		mb.Enqueue(taskMsg(i))
	}
	got := mb.DrainUpTo(size*3 + 1)
	if len(got) != 3 {
		t.Fatalf("drained %d, want 3", len(got))
	}
	for i, m := range got {
		if m.Task.Addr != uint64(i) {
			t.Fatalf("drain order broken at %d", i)
		}
	}
	if mb.Len() != 7 {
		t.Errorf("remaining = %d, want 7", mb.Len())
	}
	// Draining with a huge budget empties it.
	rest := mb.DrainUpTo(1 << 30)
	if len(rest) != 7 || !mb.Empty() {
		t.Errorf("full drain got %d", len(rest))
	}
	// Draining empty returns nil.
	if mb.DrainUpTo(100) != nil {
		t.Error("drain of empty mailbox should be nil")
	}
}

func TestMailboxZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0)
}

func TestMailboxCompaction(t *testing.T) {
	mb := New(1 << 20)
	next := uint64(0)
	for i := uint64(0); i < 500; i++ {
		mb.Enqueue(taskMsg(i))
		if i%2 == 1 {
			m, ok := mb.Dequeue()
			if !ok || m.Task.Addr != next {
				t.Fatalf("order broken at %d", next)
			}
			next++
		}
	}
	for {
		m, ok := mb.Dequeue()
		if !ok {
			break
		}
		if m.Task.Addr != next {
			t.Fatalf("order broken at %d (got %d)", next, m.Task.Addr)
		}
		next++
	}
	if next != 500 {
		t.Fatalf("drained %d, want 500", next)
	}
}

// Property: used bytes always equal the sum of wire sizes of resident
// messages, and never exceed capacity.
func TestMailboxAccountingProperty(t *testing.T) {
	f := func(ops []bool) bool {
		mb := New(500)
		var model []uint64
		n := uint64(0)
		for _, push := range ops {
			if push {
				m := taskMsg(n)
				n++
				ok := mb.Enqueue(m)
				wantOK := mb.Used()-0 <= 500 // recompute below
				_ = wantOK
				if ok {
					model = append(model, m.Size())
				}
			} else if len(model) > 0 {
				if _, ok := mb.Dequeue(); !ok {
					return false
				}
				model = model[1:]
			} else if _, ok := mb.Dequeue(); ok {
				return false
			}
			var want uint64
			for _, s := range model {
				want += s
			}
			if mb.Used() != want || mb.Used() > mb.Capacity() || mb.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPushFront(t *testing.T) {
	mb := New(256)
	m1 := msg.NewTask(0, 1, task.New(0, 0, 0x10, 1))
	m2 := msg.NewTask(0, 1, task.New(0, 0, 0x20, 1))
	mb.Enqueue(m1)
	mb.Enqueue(m2)
	got, _ := mb.Dequeue()
	if got != m1 {
		t.Fatal("head wrong")
	}
	// Put it back: arrival order must be restored.
	if !mb.PushFront(m1) {
		t.Fatal("PushFront refused with space available")
	}
	if head, _ := mb.Peek(); head != m1 {
		t.Fatal("PushFront did not restore head")
	}
	if mb.Len() != 2 {
		t.Fatalf("len = %d, want 2", mb.Len())
	}
	// Byte accounting must balance: drain everything.
	mb.Dequeue()
	mb.Dequeue()
	if mb.Used() != 0 {
		t.Fatalf("used = %d after full drain", mb.Used())
	}
	// A full mailbox refuses PushFront and counts a stall.
	small := New(m1.Size())
	small.Enqueue(m1)
	if small.PushFront(m2) {
		t.Fatal("PushFront into full mailbox succeeded")
	}
	_, _, stalls, _ := small.Stats()
	if stalls != 1 {
		t.Fatalf("stalls = %d, want 1", stalls)
	}
}
