// Package mailbox implements the in-DRAM mailbox region of NDPBridge
// (Section V-A): a ring buffer of outgoing messages whose head and tail
// pointers live in the unit controller. New messages are appended at the
// tail; the parent bridge's GATHER command drains from the head. When the
// region is full, the next enqueue stalls.
//
// The simulator stores message values rather than encoded bytes, but byte
// occupancy is accounted exactly using each message's wire size, so capacity
// pressure and the L_mailbox state reported to bridges behave as in hardware.
package mailbox

import (
	"ndpbridge/internal/msg"
)

// Mailbox is a byte-accounted FIFO ring of outgoing messages.
//ndplint:domain(perowner)
type Mailbox struct {
	capacity uint64
	used     uint64
	queue    []*msg.Message
	head     int

	// Accounting.
	enqueued uint64
	dequeued uint64
	stalls   uint64
	peakUsed uint64

	// drainBuf backs DrainUpTo's return slice so a mailbox drained every
	// bus round does not allocate. Valid only until the next DrainUpTo on
	// the same mailbox; every caller hands the batch off (or finishes
	// iterating it) before draining this mailbox again.
	drainBuf []*msg.Message //ndplint:nosnap scratch; contents owned by caller
}

// New returns an empty mailbox of the given byte capacity.
func New(capacity uint64) *Mailbox {
	if capacity == 0 {
		panic("mailbox: zero capacity")
	}
	return &Mailbox{capacity: capacity}
}

// Capacity returns the region size in bytes.
func (mb *Mailbox) Capacity() uint64 { return mb.capacity }

// Used returns the occupied bytes — the L_mailbox value of state messages.
func (mb *Mailbox) Used() uint64 { return mb.used }

// Len returns the number of queued messages.
func (mb *Mailbox) Len() int { return len(mb.queue) - mb.head }

// Empty reports whether no messages are waiting.
func (mb *Mailbox) Empty() bool { return mb.Len() == 0 }

// CanFit reports whether a message of n wire bytes fits.
func (mb *Mailbox) CanFit(n uint64) bool { return mb.used+n <= mb.capacity }

// Enqueue appends m. It returns false (a stall) when the region is full, in
// which case the unit controller must retry later (Section V-A).
//
//ndplint:hotpath
func (mb *Mailbox) Enqueue(m *msg.Message) bool {
	n := m.Size()
	if !mb.CanFit(n) {
		mb.stalls++
		return false
	}
	mb.queue = append(mb.queue, m)
	mb.used += n
	mb.enqueued++
	if mb.used > mb.peakUsed {
		mb.peakUsed = mb.used
	}
	return true
}

// PushFront re-inserts m at the head of the ring — the retry protocol's
// "refused drain" path, where a message pulled for transmission must go back
// in arrival order because the hop is backpressured. Returns false when the
// message no longer fits.
//
//ndplint:hotpath
func (mb *Mailbox) PushFront(m *msg.Message) bool {
	n := m.Size()
	if !mb.CanFit(n) {
		mb.stalls++
		return false
	}
	if mb.head > 0 {
		mb.head--
		mb.queue[mb.head] = m
	} else {
		mb.queue = append(mb.queue, nil)
		copy(mb.queue[1:], mb.queue)
		mb.queue[0] = m
	}
	mb.used += n
	if mb.used > mb.peakUsed {
		mb.peakUsed = mb.used
	}
	return true
}

// Peek returns the head message without removing it.
//
//ndplint:hotpath
func (mb *Mailbox) Peek() (*msg.Message, bool) {
	if mb.Len() == 0 {
		return nil, false
	}
	return mb.queue[mb.head], true
}

// Dequeue removes and returns the head message.
//
//ndplint:hotpath
func (mb *Mailbox) Dequeue() (*msg.Message, bool) {
	if mb.Len() == 0 {
		return nil, false
	}
	m := mb.queue[mb.head]
	mb.queue[mb.head] = nil
	mb.head++
	mb.used -= m.Size()
	mb.dequeued++
	if mb.head > 64 && mb.head*2 >= len(mb.queue) {
		n := copy(mb.queue, mb.queue[mb.head:])
		for i := n; i < len(mb.queue); i++ {
			mb.queue[i] = nil
		}
		mb.queue = mb.queue[:n]
		mb.head = 0
	}
	return m, true
}

// DrainUpTo removes messages from the head whose combined wire size does not
// exceed budget bytes. It always removes at least one message when the
// mailbox is non-empty: the transfer granularity is a floor on bus
// occupancy, not a cap on message size (and messages are ≤64 B ≤ G_xfer
// anyway). This models one GATHER of G_xfer bytes.
//
// The returned slice is only valid until the next DrainUpTo call on this
// mailbox.
//
//ndplint:hotpath
func (mb *Mailbox) DrainUpTo(budget uint64) []*msg.Message {
	out := mb.drainBuf[:0]
	var used uint64
	for {
		m, ok := mb.Peek()
		if !ok {
			break
		}
		if len(out) > 0 && used+m.Size() > budget {
			break
		}
		mb.Dequeue()
		out = append(out, m)
		used += m.Size()
		if used >= budget {
			break
		}
	}
	mb.drainBuf = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// Stats returns cumulative enqueue/dequeue/stall counts and peak occupancy.
func (mb *Mailbox) Stats() (enq, deq, stalls, peak uint64) {
	return mb.enqueued, mb.dequeued, mb.stalls, mb.peakUsed
}
