package mailbox

import (
	"testing"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/msg"
)

func TestMailboxSnapshotRoundTrip(t *testing.T) {
	mb := New(1 << 10)
	for i := uint32(1); i <= 5; i++ {
		if !mb.Enqueue(&msg.Message{Type: msg.TypeState, Src: int(i), Dst: 0, Seq: i, State: &msg.State{WQueue: uint64(i)}}) {
			t.Fatal("enqueue failed")
		}
	}
	mb.Dequeue() // non-zero head
	mb.Dequeue()

	var e checkpoint.Enc
	mb.SnapshotTo(&e)

	r := New(1 << 10)
	if err := r.RestoreFrom(checkpoint.NewDec(e.Data())); err != nil {
		t.Fatal(err)
	}
	if r.Len() != mb.Len() || r.Used() != mb.Used() {
		t.Fatalf("restored len=%d used=%d, want %d, %d", r.Len(), r.Used(), mb.Len(), mb.Used())
	}
	re, rd, rs, rp := r.Stats()
	oe, od, osn, op := mb.Stats()
	if re != oe || rd != od || rs != osn || rp != op {
		t.Errorf("restored stats (%d %d %d %d), want (%d %d %d %d)", re, rd, rs, rp, oe, od, osn, op)
	}
	for {
		want, ok1 := mb.Dequeue()
		got, ok2 := r.Dequeue()
		if ok1 != ok2 {
			t.Fatal("dequeue availability diverged")
		}
		if !ok1 {
			break
		}
		if got.Seq != want.Seq || got.Src != want.Src {
			t.Fatalf("got seq %d from %d, want seq %d from %d", got.Seq, got.Src, want.Seq, want.Src)
		}
	}
}

func TestMailboxSnapshotCapacityMismatch(t *testing.T) {
	mb := New(512)
	var e checkpoint.Enc
	mb.SnapshotTo(&e)
	r := New(1024)
	if err := r.RestoreFrom(checkpoint.NewDec(e.Data())); err == nil {
		t.Fatal("capacity mismatch not rejected")
	}
}
