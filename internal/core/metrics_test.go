package core

import (
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/metrics"
)

// TestMetricsEndToEnd runs a message-heavy workload with a registry attached
// and checks that every layer of the stack produced observations: task and
// message latency histograms, gather batches, the epoch histogram, the
// cycle-sampled gauge series, and the percentile summaries in the Result.
func TestMetricsEndToEnd(t *testing.T) {
	sys, err := New(testCfg(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	sys.AttachMetrics(reg)
	if sys.Metrics() != reg {
		t.Fatal("Metrics() does not return the attached registry")
	}
	r, err := sys.Run(&pingPong{hops: 40})
	if err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"task_latency_cycles", "task_exec_cycles", "msg_latency_cycles", "gather_batch_bytes", "epoch_cycles"} {
		h := reg.FindHistogram(name)
		if h.Count() == 0 {
			t.Errorf("histogram %s has no observations", name)
		}
		if h.Max() < h.Min() {
			t.Errorf("histogram %s: max %d < min %d", name, h.Max(), h.Min())
		}
	}
	if got := reg.FindHistogram("task_latency_cycles").Count(); got != 40 {
		t.Errorf("task_latency_cycles count = %d, want 40 (one per hop)", got)
	}
	if r.TaskLatency.Max == 0 {
		t.Error("Result.TaskLatency not populated")
	}
	if r.MsgLatency.Max == 0 {
		t.Error("Result.MsgLatency not populated")
	}
	if r.TaskLatency.P50 > r.TaskLatency.P99 || r.TaskLatency.P99 > r.TaskLatency.Max {
		t.Errorf("task latency percentiles not monotonic: %+v", r.TaskLatency)
	}

	// The run spans many I_state periods, so the sampler must have fired.
	series := reg.SeriesNames()
	if len(series) == 0 {
		t.Fatal("no sampled series")
	}
	for _, name := range series {
		s := reg.SeriesByName(name)
		if s.Len() == 0 {
			t.Errorf("series %s is empty", name)
		}
		for i := 1; i < s.Len(); i++ {
			if s.Cycles[i] <= s.Cycles[i-1] {
				t.Errorf("series %s cycles not increasing at %d", name, i)
			}
		}
	}
	if reg.SeriesByName("mailbox_used_total") == nil {
		t.Error("mailbox_used_total series missing")
	}
}

// TestMetricsOffIsNoop: without AttachMetrics the same run works and the
// Result's latency summaries stay zero.
func TestMetricsOffIsNoop(t *testing.T) {
	sys, err := New(testCfg(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run(&pingPong{hops: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !r.TaskLatency.IsZero() || !r.MsgLatency.IsZero() {
		t.Errorf("latency summaries populated without metrics: %+v %+v", r.TaskLatency, r.MsgLatency)
	}
}

// TestMetricsDesignH exercises the host-executor instrumentation path.
func TestMetricsDesignH(t *testing.T) {
	sys, err := New(testCfg(config.DesignH))
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	sys.AttachMetrics(reg)
	if _, err := sys.Run(&pingPong{hops: 20}); err != nil {
		t.Fatal(err)
	}
	if got := reg.FindHistogram("task_latency_cycles").Count(); got != 20 {
		t.Errorf("task_latency_cycles count = %d, want 20", got)
	}
	if reg.FindHistogram("task_exec_cycles").Count() != 20 {
		t.Error("task_exec_cycles not populated on design H")
	}
}
