package core

import (
	"strings"
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/fault"
	"ndpbridge/internal/metrics"
	"ndpbridge/internal/task"
)

// fanOut seeds one task on unit 0 that spawns n workers round-robin across
// all units, each counting its own executions so the test can assert
// exactly-once semantics per task even across a kill.
type fanOut struct {
	n        int
	workload uint64
	execs    []int
	fn       task.FuncID
	root     task.FuncID
}

func (a *fanOut) Name() string { return "fanout" }

func (a *fanOut) Prepare(s *System) error {
	a.execs = make([]int, a.n)
	a.fn = s.Register("fo.work", func(ctx task.Ctx, t task.Task) {
		a.execs[int(t.Args[0])]++
		ctx.Read(t.Addr, 64)
		ctx.Compute(a.workload)
	})
	a.root = s.Register("fo.root", func(ctx task.Ctx, t task.Task) {
		for i := 0; i < a.n; i++ {
			u := i % s.Units()
			ctx.Enqueue(task.New(a.fn, t.TS, s.UnitBase(u)+128, 20, uint64(i)))
		}
	})
	return nil
}

func (a *fanOut) SeedEpoch(s *System, ts uint32) bool {
	if ts > 0 {
		return false
	}
	s.Seed(task.New(a.root, 0, s.UnitBase(0)+128, 20))
	return true
}

func dropAllHops(prob float64) *fault.Plan {
	return &fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindDrop, Scope: fault.ScopeL1Gather, Prob: prob, Rank: -1, Unit: -1},
		{Kind: fault.KindDrop, Scope: fault.ScopeL1Scatter, Prob: prob, Rank: -1, Unit: -1},
		{Kind: fault.KindDrop, Scope: fault.ScopeL1Up, Prob: prob, Rank: -1, Unit: -1},
		{Kind: fault.KindDrop, Scope: fault.ScopeL2Down, Prob: prob, Rank: -1, Unit: -1},
	}}
}

// TestEmptyPlanByteIdentical checks the no-fault guarantee: attaching an
// empty plan allocates nothing and the run's result renders byte-identical
// to a system that never heard of fault injection.
func TestEmptyPlanByteIdentical(t *testing.T) {
	run := func(attach bool) string {
		sys, err := New(testCfg(config.DesignO))
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			if err := sys.AttachFaults(&fault.Plan{}, 1); err != nil {
				t.Fatal(err)
			}
		}
		r, err := sys.Run(&pingPong{hops: 40})
		if err != nil {
			t.Fatal(err)
		}
		if r.Faults != nil {
			t.Fatal("empty plan produced a FaultStats record")
		}
		return r.String()
	}
	plain, faulted := run(false), run(true)
	if plain != faulted {
		t.Errorf("empty plan changed the result:\n plain: %s\n empty: %s", plain, faulted)
	}
}

// TestFaultScheduleDeterminism runs the same (plan, seed) twice and demands
// an identical fault schedule, recovery counters, and simulation outcome.
func TestFaultScheduleDeterminism(t *testing.T) {
	run := func() (string, uint64, uint64) {
		sys, err := New(testCfg(config.DesignB))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AttachFaults(dropAllHops(0.2), 42); err != nil {
			t.Fatal(err)
		}
		r, err := sys.Run(&fanOut{n: 64, workload: 200})
		if err != nil {
			t.Fatal(err)
		}
		if r.Faults == nil || r.Faults.Drops == 0 {
			t.Fatal("drop plan fired nothing; determinism check is vacuous")
		}
		return r.Faults.String(), uint64(r.Makespan), r.TasksExecuted
	}
	fs1, mk1, tk1 := run()
	fs2, mk2, tk2 := run()
	if fs1 != fs2 {
		t.Errorf("fault stats diverged:\n run1: %s\n run2: %s", fs1, fs2)
	}
	if mk1 != mk2 || tk1 != tk2 {
		t.Errorf("outcome diverged: makespan %d vs %d, tasks %d vs %d", mk1, mk2, tk1, tk2)
	}
}

// TestKillUnitExactlyOnce kills a unit mid-run and asserts graceful
// degradation: the run completes, the watchdog stays clean, and every task —
// including those evacuated from the dead unit — executes exactly once.
func TestKillUnitExactlyOnce(t *testing.T) {
	sys, err := New(testCfg(config.DesignB))
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindKill, Rank: -1, Unit: 3, At: 10_000},
	}}
	if err := sys.AttachFaults(plan, 1); err != nil {
		t.Fatal(err)
	}
	app := &fanOut{n: 64, workload: 5_000}
	r, err := sys.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range app.execs {
		if n != 1 {
			t.Errorf("task %d executed %d times, want exactly 1", i, n)
		}
	}
	if r.Faults == nil || r.Faults.Kills != 1 {
		t.Fatalf("Faults = %+v, want Kills=1", r.Faults)
	}
	if r.Faults.TasksRespawned == 0 {
		t.Error("kill mid-run evacuated no tasks; exactly-once check is vacuous")
	}
	if r.Faults.WatchdogTripped {
		t.Error("watchdog tripped on a recoverable kill plan")
	}
	if r.TasksExecuted != r.TasksSpawned {
		t.Errorf("executed %d of %d spawned tasks", r.TasksExecuted, r.TasksSpawned)
	}
}

// TestFaultMetricsCounters cross-checks the metrics registry against the
// FaultStats record: every recovery counter exported to the registry must
// equal the value in the result.
func TestFaultMetricsCounters(t *testing.T) {
	sys, err := New(testCfg(config.DesignB))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachFaults(dropAllHops(0.2), 42); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	sys.AttachMetrics(reg)
	r, err := sys.Run(&fanOut{n: 64, workload: 200})
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults == nil {
		t.Fatal("no FaultStats on a faulted run")
	}
	if r.Faults.Retries == 0 {
		t.Fatal("drop plan produced zero retries; counter check is vacuous")
	}
	for _, c := range []struct {
		name string
		want uint64
	}{
		{"fault_retries", r.Faults.Retries},
		{"fault_nacks", r.Faults.Nacks},
		{"fault_dups_filtered", r.Faults.DupsFiltered},
		{"fault_msgs_lost", r.Faults.MsgsLost},
		{"fault_tasks_respawned", r.Faults.TasksRespawned},
		{"fault_blocks_recovered", r.Faults.BlocksRecovered},
	} {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %d, want %d (FaultStats)", c.name, got, c.want)
		}
	}
}

// TestWatchdogTripsOnUnrecoverablePlan drops every gather message forever:
// no retry can ever succeed, so the watchdog must convert the hang into a
// diagnostic error instead of letting Run spin.
func TestWatchdogTripsOnUnrecoverablePlan(t *testing.T) {
	sys, err := New(testCfg(config.DesignB))
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindDrop, Scope: fault.ScopeL1Gather, Prob: 1, Rank: -1, Unit: -1},
	}}
	if err := sys.AttachFaults(plan, 1); err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(&fanOut{n: 16, workload: 200})
	if err == nil {
		t.Fatal("Run succeeded under a 100% gather drop; watchdog never fired")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Errorf("error %q does not mention the watchdog", err)
	}
}

// TestStallPlanRecoverable freezes a unit's pipeline mid-run: the fabric
// must absorb the pause without losing work or waking the watchdog.
func TestStallPlanRecoverable(t *testing.T) {
	sys, err := New(testCfg(config.DesignB))
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindStall, Rank: -1, Unit: 2, At: 5_000, Cycles: 20_000},
	}}
	if err := sys.AttachFaults(plan, 1); err != nil {
		t.Fatal(err)
	}
	app := &fanOut{n: 64, workload: 1_000}
	r, err := sys.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range app.execs {
		if n != 1 {
			t.Errorf("task %d executed %d times, want exactly 1", i, n)
		}
	}
	if r.Faults == nil || r.Faults.Stalls != 1 {
		t.Fatalf("Faults = %+v, want Stalls=1", r.Faults)
	}
	if r.Faults.WatchdogTripped {
		t.Error("watchdog tripped on a recoverable stall plan")
	}
}
