package core

import (
	"errors"
	"strings"
	"testing"

	"ndpbridge/internal/audit"
	"ndpbridge/internal/config"
	"ndpbridge/internal/task"
)

// barrierOnlyApp seeds exactly one trivial task in epoch 0 and then runs
// `empty` pure-barrier epochs containing no tasks at all. From the end of
// epoch 0 onward the system has spawned == done and outstanding == 0 while
// the barrier machinery keeps turning over — the zero-task edge where a
// naive conservation check (one that treats "no live work" as an imbalance,
// or underflows the unsigned spawned−done difference) would false-positive.
type barrierOnlyApp struct {
	empty int
	fn    task.FuncID
}

func (a *barrierOnlyApp) Name() string { return "barrier-only" }

func (a *barrierOnlyApp) Prepare(s *System) error {
	a.fn = s.Register("barrieronly.noop", func(ctx task.Ctx, t task.Task) {
		ctx.Compute(1)
	})
	return nil
}

func (a *barrierOnlyApp) SeedEpoch(s *System, ts uint32) bool {
	if ts == 0 {
		s.Seed(task.New(a.fn, 0, s.UnitBase(0)+256, 1))
		return true
	}
	return int(ts) <= a.empty // later epochs exist but hold no tasks
}

func TestAuditZeroTaskEpochsClean(t *testing.T) {
	sys, err := New(testCfg(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachAudit(16); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(&barrierOnlyApp{empty: 3}); err != nil {
		t.Fatalf("audited run with empty epochs reported a violation: %v", err)
	}
	if sys.AuditChecks() == 0 {
		t.Fatal("auditor never ran a weak check; the zero-task edge was not exercised")
	}
}

// zeroSeedApp declines even the first epoch: a run with no work at all.
type zeroSeedApp struct{}

func (zeroSeedApp) Name() string                       { return "zero-seed" }
func (zeroSeedApp) Prepare(s *System) error            { return nil }
func (zeroSeedApp) SeedEpoch(s *System, _ uint32) bool { return false }

// TestAuditNoWorkRunRefusedNotViolated pins down the degenerate case: a run
// that seeds nothing is refused up front with a clear diagnostic — it must
// not surface as a conservation violation from the auditor.
func TestAuditNoWorkRunRefusedNotViolated(t *testing.T) {
	sys, err := New(testCfg(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachAudit(16); err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(zeroSeedApp{})
	if err == nil {
		t.Fatal("run with no seeded work was accepted")
	}
	var ae *audit.Error
	if errors.As(err, &ae) {
		t.Fatalf("no-work run surfaced as an audit violation: %v", err)
	}
	if !strings.Contains(err.Error(), "seeded no work") {
		t.Fatalf("err = %v, want the 'seeded no work' refusal", err)
	}
}
