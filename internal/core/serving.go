package core

import (
	"fmt"

	"ndpbridge/internal/metrics"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
	"ndpbridge/internal/trace"
	"ndpbridge/internal/traffic"
)

// This file wires the open-loop serving layer (internal/traffic) into the
// bulk-synchronous runtime. A closed-loop app seeds a fixed batch per epoch
// and can never overload the fabric; the serving path instead injects
// requests on the traffic source's cycle schedule, applies admission
// control and shedding at the injection point, and takes bulk-sync barriers
// only at paced quiet points so checkpointing and the audit keep working
// without per-request barrier churn.

// Serving request layout, kvstore-style: records per shard and their size,
// plus the handler's lookup cost in cycles.
const (
	serveRecsPerShard = 64
	serveRecordBytes  = 256
	serveLookupCost   = 120
)

// servingState holds the serving-mode wiring hanging off a System.
type servingState struct {
	src *traffic.Source
	fn  task.FuncID

	shardStride uint64 // record bytes per shard
	shardsPer   uint64 // shards mapped to each unit
	pollEvery   sim.Cycles

	pumpArmed bool
	mLat      *metrics.Histogram
}

// AttachTraffic switches the system to open-loop serving mode: requests
// arrive from src instead of a per-epoch seeder. Attach before Run and run
// the system with ServingApp. Closed-loop behaviour is untouched when this
// is never called.
func (s *System) AttachTraffic(src *traffic.Source) {
	s.serve = &servingState{src: src, pollEvery: 16}
}

// ServingSource returns the attached traffic source (nil in closed-loop
// runs).
func (s *System) ServingSource() *traffic.Source {
	if s.serve == nil {
		return nil
	}
	return s.serve.src
}

// ServingApp is the open-loop serving application: a kvstore-style GET over
// the traffic source's Zipfian keyspace. Run it on a system that has a
// source attached via AttachTraffic.
//ndplint:domain(host)
type ServingApp struct{}

// Name identifies serving runs; results and checkpoints carry the traffic
// spec separately (Spec.Label).
func (ServingApp) Name() string { return "serve" }

// Prepare lays the shard table out across units, registers the GET handler,
// and arms the arrival pump.
//ndplint:seam host-side wiring: registers the serve handler that executes in unit context
func (ServingApp) Prepare(s *System) error {
	sv := s.serve
	if sv == nil {
		return fmt.Errorf("core: ServingApp needs AttachTraffic before Run")
	}
	sp := sv.src.Spec()
	units := uint64(s.Units())
	sv.shardsPer = (sp.Shards + units - 1) / units
	sv.shardStride = serveRecsPerShard * serveRecordBytes
	if need := sv.shardsPer * sv.shardStride; need > s.DataBytesPerUnit() {
		return fmt.Errorf("core: serving layout needs %d bytes/unit, have %d (reduce shards)",
			need, s.DataBytesPerUnit())
	}
	sv.fn = s.Register("serve.get", func(ctx task.Ctx, t task.Task) {
		ctx.Read(t.Addr, serveRecordBytes)
		ctx.Compute(serveLookupCost)
		end := ctx.Now() + serveLookupCost
		if c, ok := ctx.(task.EndCtx); ok {
			end = c.Cursor()
		}
		arrive := sim.Cycles(t.Args[0])
		sv.src.Complete(arrive, end)
		if end > arrive {
			sv.mLat.Observe(end - arrive)
		}
	})
	if s.met != nil {
		sv.mLat = s.met.Histogram("serve_latency_cycles")
		s.met.Gauge("admit_queue_len", func() uint64 { return uint64(sv.src.QueueLen()) })
		s.met.Gauge("serve_inflight", func() uint64 { return sv.src.InFlight() })
		s.met.Gauge("serve_shed_total", func() uint64 { return sv.src.Shed().Total() })
	}
	// Arm the pump at the first arrival (events scheduled before Run simply
	// wait in the engine).
	if at, ok := sv.src.NextArrival(); ok {
		sv.pumpArmed = true
		s.eng.At(at, s.servePump)
	}
	return nil
}

// SeedEpoch seeds nothing: work arrives from the pump. Returning true keeps
// the runtime alive while the source still has arrivals or queued requests;
// termination is decided at the barrier by servingAdvance.
//ndplint:seam host work injection at a paced quiet point
func (ServingApp) SeedEpoch(s *System, ts uint32) bool {
	return !s.serve.src.Done()
}

// servePump is the arrival-pump event: it offers every due arrival to the
// admission queue (shedding per policy), drains admitted requests into the
// fabric while credits allow, and re-arms itself for the next arrival — or
// a near-term poll while requests remain queued behind backpressure.
func (s *System) servePump() {
	sv := s.serve
	sv.pumpArmed = false
	now := s.eng.Now()
	before := sv.src.Work()
	sv.src.GenerateUpTo(now)
	s.drainAdmissions()
	// Admission activity is forward progress: a saturated interval that
	// sheds every arrival must not look like a stall to the watchdog.
	s.progress += sv.src.Work() - before
	s.armPump()
	if sv.src.Done() {
		// Every arrival has been offered and the queue is drained; if the
		// fabric is empty too this ends the run (no TaskDone will fire
		// when everything was shed).
		s.checkAdvance()
	}
}

// armPump schedules the next pump firing: at the next arrival, or a
// poll-interval retry while the admission queue is backed up behind
// credits. Idempotent; no-op once the source is fully drained.
func (s *System) armPump() {
	sv := s.serve
	if sv.pumpArmed {
		return
	}
	now := s.eng.Now()
	at, ok := sv.src.NextArrival()
	if sv.src.QueueLen() > 0 {
		retry := now + sv.pollEvery
		if !ok || retry < at {
			at = retry
		}
		ok = true
	}
	if !ok {
		return
	}
	if at <= now {
		at = now + 1
	}
	sv.pumpArmed = true
	s.eng.At(at, s.servePump)
}

// drainAdmissions injects queued requests until the queue empties or
// admission credits run out.
func (s *System) drainAdmissions() {
	sv := s.serve
	now := s.eng.Now()
	for sv.src.QueueLen() > 0 && s.creditsOK() {
		r, ok := sv.src.Pop(now)
		if !ok {
			break
		}
		s.injectRequest(r)
	}
}

// creditsOK reports whether the admission point may inject: the in-flight
// request credit pool has room and the bridge fabric's buffered bytes are
// under the occupancy threshold.
func (s *System) creditsOK() bool {
	sp := s.serve.src.Spec()
	if sp.MaxInFlight > 0 && s.serve.src.InFlight() >= uint64(sp.MaxInFlight) {
		return false
	}
	if sp.CreditBytes > 0 && s.fabricBacklog() > sp.CreditBytes {
		return false
	}
	return true
}

// fabricBacklog sums the bridge layer's buffered bytes (backup, up-pending,
// scatter backlog) — the occupancy signal fed back to admission. Zero for
// designs without bridges.
func (s *System) fabricBacklog() uint64 {
	var n uint64
	for _, b := range s.bridges {
		n += b.BackupBytes() + b.UpPending() + b.ScatterBacklog()
	}
	return n
}

// injectRequest seeds one admitted request at its shard's home unit (or the
// host executor in design H) and kicks the target so mid-run injection
// starts immediately.
func (s *System) injectRequest(r traffic.Request) {
	sv := s.serve
	addr := s.serveAddr(r)
	t := task.New(sv.fn, s.epoch, addr, serveLookupCost, uint64(r.Arrive))
	s.Seed(t)
	if s.exec != nil {
		s.exec.Kick()
		return
	}
	s.units[s.amap.Home(addr)].Kick()
}

// serveAddr maps a request's (shard, record) key to its physical address:
// shards round-robin across units, records laid out contiguously per shard.
func (s *System) serveAddr(r traffic.Request) uint64 {
	sv := s.serve
	shard := uint64(r.Shard)
	unit := shard % uint64(s.Units())
	slot := shard / uint64(s.Units())
	return s.UnitBase(int(unit)) + slot*sv.shardStride + uint64(r.Rec%serveRecsPerShard)*serveRecordBytes
}

// servingAdvance is the serving-mode barrier policy, entered by
// checkAdvance whenever the fabric fully drains. It ends the run once the
// source is exhausted, and otherwise takes a paced bulk-sync barrier — only
// after the spec's quiet-epoch length — so epochHook consumers
// (checkpoints, audit) run without a barrier per request.
func (s *System) servingAdvance() {
	sv := s.serve
	now := s.eng.Now()
	// Credits are definitionally free with the fabric empty; drain anything
	// still queued before deciding the run is over.
	if sv.src.QueueLen() > 0 {
		before := sv.src.Work()
		s.drainAdmissions()
		s.progress += sv.src.Work() - before
		if s.outstanding[s.epoch] != 0 || s.inflight != 0 {
			return
		}
	}
	if sv.src.Done() {
		delete(s.outstanding, s.epoch)
		if s.epochHook != nil {
			s.epochHook(s.epoch)
		}
		s.mEpoch.Observe(now - s.epochStart)
		s.done = true
		s.eng.Stop()
		return
	}
	barrier := sim.Cycles(sv.src.Spec().Barrier)
	if barrier == 0 || now-s.epochStart < barrier {
		return // idle gap between requests; the pump keeps the run alive
	}
	delete(s.outstanding, s.epoch)
	if s.epochHook != nil {
		s.epochHook(s.epoch)
	}
	s.mEpoch.Observe(now - s.epochStart)
	s.epochStart = now
	next := s.epoch + 1
	s.rec.Record(trace.KindEpoch, -1, uint64(now), uint64(now), fmt.Sprintf("epoch %d", next))
	s.rec.EpochMark(next, uint64(now))
	s.epoch = next
}
