package core

import (
	"testing"

	"ndpbridge/internal/config"
)

// TestHopLatencyBudget guards the fabric's per-hop latency at full scale: a
// lone task chain must advance through the bridges within a few hundred
// cycles per hop (design B) and through host forwarding within ~1k cycles
// (design C). Regressions here historically meant a stalled fabric loop
// waiting for the next state sweep.
func TestHopLatencyBudget(t *testing.T) {
	budgets := map[config.Design]uint64{
		config.DesignB: 500,
		config.DesignC: 1500,
	}
	for d, budget := range budgets {
		sys, err := New(config.Default().WithDesign(d))
		if err != nil {
			t.Fatal(err)
		}
		const hops = 500
		app := &pingPong{hops: hops}
		r, err := sys.Run(app)
		if err != nil {
			t.Fatal(err)
		}
		perHop := r.Makespan / hops
		if perHop > budget {
			t.Errorf("design %v: %d cycles/hop exceeds budget %d", d, perHop, budget)
		}
	}
}
