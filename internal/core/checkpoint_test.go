package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/task"
)

// epochWave runs several bulk-sync epochs, each seeding a wave of tasks that
// hop between units — enough barriers for checkpoints to trigger mid-run.
type epochWave struct {
	epochs int
	fn     task.FuncID
	done   int
}

func (w *epochWave) Name() string { return "epochwave" }

func (w *epochWave) Prepare(s *System) error {
	w.fn = s.Register("wave.hop", func(ctx task.Ctx, t task.Task) {
		w.done++
		ctx.Read(t.Addr, 128)
		ctx.Compute(20)
		if hop := t.Args[0]; hop > 0 {
			next := (ctx.Unit() + 3) % s.Units()
			ctx.Enqueue(task.New(w.fn, t.TS, s.UnitBase(next)+256, 30, hop-1))
		}
	})
	return nil
}

func (w *epochWave) SeedEpoch(s *System, ts uint32) bool {
	if int(ts) >= w.epochs {
		return false
	}
	for u := 0; u < s.Units(); u += 2 {
		s.Seed(task.New(w.fn, ts, s.UnitBase(u)+256, 30, uint64(3+u%4)))
	}
	return true
}

func TestCheckpointWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	sys, err := New(testCfg(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableCheckpoints(path, 1) // every barrier
	r1, err := sys.Run(&epochWave{epochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sys.CheckpointsWritten() == 0 {
		t.Fatal("no checkpoints written")
	}

	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.App != "epochwave" {
		t.Errorf("app %q, want epochwave", ck.App)
	}
	var cfg config.Config
	if err := json.Unmarshal(ck.CfgJSON, &cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, testCfg(config.DesignO)) {
		t.Error("config did not round-trip through the checkpoint")
	}
	if ck.Digest == 0 || ck.Cycle == 0 {
		t.Errorf("implausible marker: cycle %d digest %#x", ck.Cycle, ck.Digest)
	}

	// Replay-verify: a system rebuilt from the checkpoint's config must
	// reproduce the marker state exactly and then finish with the same
	// result.
	sys2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys2.VerifyResume(ck)
	r2, err := sys2.Run(&epochWave{epochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sys2.ResumeVerified() {
		t.Fatal("replay never matched the checkpoint marker")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("resumed run result differs from original")
	}
}

func TestCheckpointInterruptAndResume(t *testing.T) {
	cfg := testCfg(config.DesignO)

	// Reference: uninterrupted run.
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := ref.Run(&epochWave{epochs: 5})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the request lands before the first barrier, so the
	// run snapshots there and stops like a SIGINT would.
	path := filepath.Join(t.TempDir(), "int.ckpt")
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableCheckpoints(path, 0)
	sys.RequestCheckpoint()
	if _, err := sys.Run(&epochWave{epochs: 5}); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}

	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if int(ck.Epoch) >= 4 {
		t.Fatalf("checkpoint at epoch %d — run was not interrupted early", ck.Epoch)
	}

	// Resume past the marker to completion; the end state must be
	// indistinguishable from the uninterrupted run.
	sys2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys2.VerifyResume(ck)
	r2, err := sys2.Run(&epochWave{epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !sys2.ResumeVerified() {
		t.Fatal("replay never matched the checkpoint marker")
	}
	if !reflect.DeepEqual(r0, r2) {
		t.Error("resumed run result differs from uninterrupted run")
	}
}

func TestCheckpointCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	sys, err := New(testCfg(config.DesignB))
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableCheckpoints(path, 1)
	if _, err := sys.Run(&epochWave{epochs: 2}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{8, len(data) / 2, len(data) - 2} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(path); err == nil {
			t.Errorf("corruption at offset %d accepted", off)
		}
	}
}

func TestCheckpointResumeDivergenceDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.ckpt")
	cfg := testCfg(config.DesignO)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableCheckpoints(path, 1)
	if _, err := sys.Run(&epochWave{epochs: 3}); err != nil {
		t.Fatal(err)
	}
	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	// A different seed diverges the replay; the marker check must fail
	// rather than silently continuing from the wrong state.
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	sys2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	sys2.VerifyResume(ck)
	if _, err := sys2.Run(&epochWave{epochs: 3}); err == nil {
		t.Fatal("diverged replay not detected")
	}
}
