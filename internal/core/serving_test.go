package core

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/fault"
	"ndpbridge/internal/stats"
	"ndpbridge/internal/traffic"
)

func servingSpec() traffic.Spec {
	sp := traffic.DefaultSpec()
	sp.Shards = 128 // fits testCfg's 4 MB banks across 8 units
	sp.Requests = 600
	sp.Rate = 2
	sp.Warmup = 2000
	sp.Barrier = 1 << 13
	return sp
}

func runServing(t *testing.T, d config.Design, sp traffic.Spec, plan *fault.Plan) (*System, *stats.Result) {
	t.Helper()
	sys, err := New(testCfg(d))
	if err != nil {
		t.Fatal(err)
	}
	src, err := traffic.NewSource(sp, 64)
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachTraffic(src)
	if plan != nil {
		if err := sys.AttachFaults(plan, 7); err != nil {
			t.Fatal(err)
		}
	}
	r, err := sys.Run(ServingApp{})
	if err != nil {
		t.Fatal(err)
	}
	return sys, r
}

// TestServingCompletesAndBalances runs the open-loop serving app on every
// design and checks the admission ledger: every offered request is either
// completed or shed, nothing is lost, and the SLO report is populated.
func TestServingCompletesAndBalances(t *testing.T) {
	for _, d := range []config.Design{config.DesignO, config.DesignC, config.DesignH} {
		sp := servingSpec()
		_, r := runServing(t, d, sp, nil)
		v := r.Serving
		if v == nil {
			t.Fatalf("%s: no serving report", d)
		}
		if v.Offered != sp.Requests {
			t.Fatalf("%s: offered %d, want %d", d, v.Offered, sp.Requests)
		}
		if v.Completed+v.ShedTotal() != v.Offered {
			t.Fatalf("%s: ledger leak: completed %d + shed %d != offered %d", d, v.Completed, v.ShedTotal(), v.Offered)
		}
		if v.Admitted != v.Completed {
			t.Fatalf("%s: %d admitted requests never completed", d, v.Admitted-v.Completed)
		}
		if v.Completed == 0 || v.P99 == 0 || v.MaxLat == 0 {
			t.Fatalf("%s: empty latency report: %+v", d, v)
		}
		if v.P50 > v.P90 || v.P90 > v.P99 || v.P99 > v.P999 || v.P999 > v.MaxLat {
			t.Fatalf("%s: non-monotone percentiles: %+v", d, v)
		}
	}
}

// TestServingDeterministicRepeat: two identical serving runs must render
// byte-identical JSON, including the windowed degradation curve.
func TestServingDeterministicRepeat(t *testing.T) {
	sp := servingSpec()
	sp.Window = 1 << 14
	one := func() string {
		_, r := runServing(t, config.DesignO, sp, nil)
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := one(), one()
	if a != b {
		t.Fatalf("serving runs diverged:\n%s\n%s", a, b)
	}
}

// TestServingOverloadSheds: offered load far beyond one-unit capacity with a
// tiny admission queue must shed (not queue unboundedly) and still finish.
func TestServingOverloadSheds(t *testing.T) {
	for _, policy := range []string{traffic.PolicyDropNewest, traffic.PolicyDropOldest, traffic.PolicyCoDel} {
		sp := servingSpec()
		sp.Rate = 50 // ~6 kcycle of work per kcycle offered: far past saturation
		sp.Policy = policy
		sp.QueueCap = 16
		sp.Requests = 1500
		sys, r := runServing(t, config.DesignO, sp, nil)
		v := r.Serving
		if v.ShedTotal() == 0 {
			t.Fatalf("%s: overload shed nothing: %+v", policy, v)
		}
		if v.Completed+v.ShedTotal() != v.Offered {
			t.Fatalf("%s: ledger leak: %+v", policy, v)
		}
		if sys.ServingSource().QueueLen() != 0 {
			t.Fatalf("%s: run ended with queued requests", policy)
		}
	}
}

// TestServingBackpressureCredits: a MaxInFlight credit pool must bound the
// number of concurrently admitted requests without losing any.
func TestServingBackpressureCredits(t *testing.T) {
	sp := servingSpec()
	sp.Rate = 20
	sp.Requests = 400
	sp.MaxInFlight = 4
	sp.QueueCap = 500 // roomy: credits, not capacity, do the limiting
	_, r := runServing(t, config.DesignO, sp, nil)
	v := r.Serving
	if v.Completed+v.ShedTotal() != v.Offered || v.Completed == 0 {
		t.Fatalf("credit run leaked: %+v", v)
	}
}

// TestServingWatchdogToleratesShedding is the watchdog regression test: a
// fault plan arms the watchdog, the fabric is stalled dark for a long
// window, and the admission queue is tiny — so for the whole dark window
// the only "progress" is shedding. The watchdog must not trip (shedding IS
// progress), and the run must still drain and finish.
func TestServingWatchdogToleratesShedding(t *testing.T) {
	sp := servingSpec()
	sp.Rate = 20
	sp.Requests = 1200
	sp.QueueCap = 8
	plan := &fault.Plan{Faults: []fault.Spec{}}
	for u := 0; u < 8; u++ {
		plan.Faults = append(plan.Faults, fault.Spec{
			Kind: fault.KindStall, Unit: u, At: 4000, Cycles: 30000, Rank: -1,
		})
	}
	sys, r := runServing(t, config.DesignO, sp, plan)
	if sys.wd == nil {
		t.Fatal("fault plan did not arm the watchdog")
	}
	if sys.wd.Tripped() {
		t.Fatal("watchdog tripped on a correctly-shedding interval")
	}
	v := r.Serving
	if v.ShedTotal() == 0 {
		t.Fatal("dark window shed nothing — test lost its premise")
	}
	if v.Completed+v.ShedTotal() != v.Offered {
		t.Fatalf("ledger leak under faults: %+v", v)
	}
}

// TestServingGracefulDegradationAndRecovery: under a rank-dark fault the
// per-window curve must show shedding during the dark window and goodput
// recovery to ≥95% of the pre-fault level after healing.
func TestServingGracefulDegradationAndRecovery(t *testing.T) {
	sp := servingSpec()
	sp.Rate = 6
	sp.Requests = 3000
	sp.QueueCap = 32
	sp.Window = 1 << 14
	const darkAt, darkLen = 100000, 80000
	plan := &fault.Plan{}
	for u := 0; u < 4; u++ { // rank 0 of testCfg's two ranks goes dark
		plan.Faults = append(plan.Faults, fault.Spec{
			Kind: fault.KindStall, Unit: u, At: darkAt, Cycles: darkLen, Rank: -1,
		})
	}
	_, r := runServing(t, config.DesignO, sp, plan)
	v := r.Serving
	if len(v.Windows) == 0 {
		t.Fatal("no degradation windows")
	}
	var preGood, darkShed, postGood float64
	var preN, postN int
	for _, w := range v.Windows {
		end := w.Start + uint64(sp.Window)
		switch {
		case end <= darkAt && w.Start >= sp.Warmup:
			preGood += float64(w.Completed)
			preN++
		case w.Start >= darkAt && end <= darkAt+darkLen:
			darkShed += float64(w.Shed)
		case w.Start >= darkAt+darkLen && w.Offered > 0:
			postGood += float64(w.Completed)
			postN++
		}
	}
	if preN == 0 || postN == 0 {
		t.Fatalf("windows missed the fault phases: %+v", v.Windows)
	}
	if darkShed == 0 {
		t.Fatal("rank-dark window shed nothing")
	}
	pre, post := preGood/float64(preN), postGood/float64(postN)
	if post < 0.95*pre {
		t.Fatalf("goodput did not recover: pre %.1f/window, post %.1f/window", pre, post)
	}
}

// TestServingCheckpointResume: a serving run checkpoints at its paced
// barriers and a replay-resume reproduces the marker state and the exact
// final result (arrival-stream determinism across resume).
func TestServingCheckpointResume(t *testing.T) {
	sp := servingSpec()
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	sys, err := New(testCfg(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	src, err := traffic.NewSource(sp, 64)
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachTraffic(src)
	sys.SetCheckpointApp("serve:" + sp.Label())
	sys.EnableCheckpoints(path, 1) // every paced barrier
	r1, err := sys.Run(ServingApp{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.CheckpointsWritten() == 0 {
		t.Fatal("serving run wrote no checkpoints (paced barriers never fired?)")
	}
	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var cfg config.Config
	if err := json.Unmarshal(ck.CfgJSON, &cfg); err != nil {
		t.Fatal(err)
	}
	sys2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src2, err := traffic.NewSource(sp, 64)
	if err != nil {
		t.Fatal(err)
	}
	sys2.AttachTraffic(src2)
	sys2.VerifyResume(ck)
	r2, err := sys2.Run(ServingApp{})
	if err != nil {
		t.Fatal(err)
	}
	if !sys2.ResumeVerified() {
		t.Fatal("serving replay never matched the checkpoint marker")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("resumed serving run differs from original")
	}
}

// TestClosedLoopUntouched: a closed-loop run on a serving-capable build must
// produce a nil Serving report and no serving gauges.
func TestClosedLoopUntouched(t *testing.T) {
	sys, err := New(testCfg(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run(&pingPong{hops: 40})
	if err != nil {
		t.Fatal(err)
	}
	if r.Serving != nil {
		t.Fatal("closed-loop run grew a serving report")
	}
}
