package core

import (
	"reflect"
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/task"
)

// ecFanout spreads tasks pseudo-randomly across units with mixed workloads, so
// the equivalence run exercises cross-unit routing, bridge batching, and
// load balancing rather than a single neat ring.
type ecFanout struct {
	fn    task.FuncID
	count int
	units int
}

func (f *ecFanout) Name() string { return "ecFanout" }

func (f *ecFanout) Prepare(s *System) error {
	f.units = s.Units()
	f.fn = s.Register("fan.hop", func(ctx task.Ctx, t task.Task) {
		f.count++
		ctx.Read(t.Addr, 128)
		ctx.Compute(uint64(20 + t.Args[0]%64))
		depth := t.Args[1]
		if depth == 0 {
			return
		}
		// Two children per task, steered by a hash so the traffic
		// pattern is deterministic but irregular.
		for k := uint64(0); k < 2; k++ {
			h := (t.Args[0]*2 + k + 1) * 0x9e3779b97f4a7c15
			next := int(h % uint64(f.units))
			addr := s.UnitBase(next) + 256 + (h%32)*64
			ctx.Enqueue(task.New(f.fn, t.TS, addr, 30, h, depth-1))
		}
	})
	return nil
}

func (f *ecFanout) SeedEpoch(s *System, ts uint32) bool {
	if ts > 1 {
		return false
	}
	for i := 0; i < 4; i++ {
		h := uint64(ts)*1000 + uint64(i)*7919
		s.Seed(task.New(f.fn, ts, s.UnitBase(i%f.units)+512, 25, h, 3))
	}
	return true
}

// TestEventCoreEquivalence runs the same workload through the batched
// calendar-queue event core and the pre-batching compat core (pure min-heap,
// one event per delivered message) and requires identical results and state
// digests. This is the determinism proof for the fast path: batching and the
// wheel may only change how events are stored, never what order they fire in.
func TestEventCoreEquivalence(t *testing.T) {
	for _, d := range []config.Design{config.DesignC, config.DesignO} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			run := func(compat bool) (*ecFanout, interface{}, uint64) {
				sys, err := New(testCfg(d))
				if err != nil {
					t.Fatal(err)
				}
				sys.SetCompatEventCore(compat)
				app := &ecFanout{}
				r, err := sys.Run(app)
				if err != nil {
					t.Fatal(err)
				}
				return app, r, sys.StateDigest()
			}
			appFast, rFast, digFast := run(false)
			appCompat, rCompat, digCompat := run(true)

			if appFast.count == 0 {
				t.Fatal("workload executed no tasks")
			}
			if appFast.count != appCompat.count {
				t.Fatalf("task counts differ: fast %d, compat %d", appFast.count, appCompat.count)
			}
			if !reflect.DeepEqual(rFast, rCompat) {
				t.Errorf("results differ between event cores:\nfast:   %+v\ncompat: %+v", rFast, rCompat)
			}
			if digFast != digCompat {
				t.Errorf("state digests differ: fast %#x, compat %#x", digFast, digCompat)
			}
		})
	}
}
