// Package core orchestrates a full NDPBridge system simulation: it builds
// the NDP units, the communication fabric selected by the design (hardware
// bridges, host forwarding, RowClone, or host-only execution), runs the
// bulk-synchronous task runtime to completion, and aggregates the results.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"ndpbridge/internal/bridge"
	"ndpbridge/internal/config"
	"ndpbridge/internal/dram"
	"ndpbridge/internal/energy"
	"ndpbridge/internal/fault"
	"ndpbridge/internal/host"
	"ndpbridge/internal/metrics"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/ndpunit"
	"ndpbridge/internal/rowclone"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/stats"
	"ndpbridge/internal/task"
	"ndpbridge/internal/trace"
)

// App is a task-based application runnable on the system. Implementations
// register their task handlers, lay out their data, seed the first epoch,
// and optionally continue for more epochs.
type App interface {
	// Name identifies the application in results.
	Name() string
	// Prepare registers handlers and generates the dataset. It runs once
	// before the clock starts.
	Prepare(s *System) error
	// SeedEpoch injects the tasks of epoch ts. It returns false when no
	// more epochs remain (the run ends after the current work drains).
	SeedEpoch(s *System, ts uint32) bool
}

// System is one configured simulation instance. Build with New, run with
// Run; a System is single-use.
//ndplint:domain(engine)
type System struct {
	cfg  config.Config
	eng  *sim.Engine
	amap *dram.AddrMap
	reg  *task.Registry
	rng  *sim.RNG
	pool *msg.Pool

	units   []*ndpunit.Unit
	bridges []*bridge.Level1
	l2      *bridge.Level2
	fwd     *host.Forwarder
	rc      *rowclone.Engine
	exec    *host.Executor

	epoch       uint32
	outstanding map[uint32]uint64
	inflight    uint64
	app         App
	done        bool
	ran         bool

	seededAny bool
	maxEvents uint64
	taskTrace func(now uint64)
	rec       *trace.Recorder

	met        *metrics.Registry
	mEpoch     *metrics.Histogram
	epochStart sim.Cycles

	taskID uint64 // run-unique task ID counter

	// Lifetime conservation totals (never decremented), the auditor's
	// ground truth: spawned − done must equal the outstanding sum, and
	// staged − delivered must equal the in-flight count, at all times.
	tasksSpawnedTotal  uint64
	tasksDoneTotal     uint64
	msgsStagedTotal    uint64
	msgsDeliveredTotal uint64

	// epochHook, when set, runs at every bulk-sync barrier — the instant
	// the finished epoch's accounting is provably empty — with the number
	// of the epoch that just completed. Checkpointing and the strong
	// audit checks hang off this hook.
	epochHook func(completed uint32)

	// Checkpointing (see checkpoint.go).
	ckptPath    string
	ckptApp     string // app label override for checkpoint metadata
	ckptEvery   sim.Cycles
	ckptNext    sim.Cycles
	ckptReq     atomic.Bool // set by signal handlers, read at barriers
	ckptErr     error
	ckptWritten int
	interrupted bool
	injSeed     uint64 // seed passed to AttachFaults, recorded in checkpoints
	digestBuf   []byte // reused StateDigest encode buffer

	// Resume verification (see checkpoint.go).
	resumeCk       *Checkpoint
	resumeErr      error
	resumeVerified bool

	// Invariant auditor (see audit.go).
	aud *auditor

	// Open-loop serving wiring (see serving.go). Nil for closed-loop runs,
	// which keeps every closed-loop code path and output byte-identical.
	serve *servingState

	// Fault injection and recovery (all nil/zero without AttachFaults).
	inj              *fault.Injector
	injPlan          *fault.Plan
	respawned        map[uint64]bool // task IDs already re-homed once
	wd               *sim.Watchdog
	progress         uint64 // monotone work counter the watchdog polls
	fMsgsLost        uint64
	fTasksRespawned  uint64
	fBlocksRecovered uint64
}

// New builds a system for cfg. The configuration is validated.
func New(cfg config.Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:         cfg,
		eng:         sim.NewEngine(),
		pool:        msg.NewPool(),
		amap:        dram.NewAddrMap(cfg.Geometry),
		reg:         task.NewRegistry(),
		rng:         sim.NewRNG(cfg.Seed),
		outstanding: make(map[uint32]uint64),
		maxEvents:   2_000_000_000,
	}

	if cfg.Design == config.DesignH {
		s.exec = host.NewExecutor(s)
		return s, nil
	}

	n := cfg.Geometry.Units()
	s.units = make([]*ndpunit.Unit, n)
	for i := 0; i < n; i++ {
		s.units[i] = ndpunit.New(i, s, s.rng.Split())
	}

	switch {
	case cfg.Design.UsesBridges():
		perRank := cfg.Geometry.UnitsPerRank()
		ranks := cfg.Geometry.Ranks()
		s.bridges = make([]*bridge.Level1, ranks)
		for r := 0; r < ranks; r++ {
			s.bridges[r] = bridge.NewLevel1(r, s, s.units[r*perRank:(r+1)*perRank], s.rng.Split())
		}
		s.l2 = bridge.NewLevel2(s, s.bridges, s.rng.Split())
	case cfg.Design == config.DesignR:
		s.fwd = host.NewForwarder(s, s.units)
		s.rc = rowclone.New(s, s.units)
	default: // DesignC
		s.fwd = host.NewForwarder(s, s.units)
	}
	return s, nil
}

// --- Env implementations (ndpunit.Env, bridge.Env, host.Env/ExecEnv) -----

// Engine returns the event engine.
func (s *System) Engine() *sim.Engine { return s.eng }

// Cfg returns the configuration.
func (s *System) Cfg() *config.Config { return &s.cfg }

// Map returns the address map.
func (s *System) Map() *dram.AddrMap { return s.amap }

// Registry returns the task handler registry.
func (s *System) Registry() *task.Registry { return s.reg }

// CurrentEpoch returns the bulk-sync epoch now executing.
func (s *System) CurrentEpoch() uint32 { return s.epoch }

// TaskSpawned records a newly created task of epoch ts.
//ndplint:seam bulk-sync epoch accounting: unit-reported conservation counters gate the barrier
func (s *System) TaskSpawned(ts uint32) {
	s.outstanding[ts]++
	s.tasksSpawnedTotal++
}

// NextTaskID returns a run-unique task identifier (never 0).
//ndplint:seam bulk-sync epoch accounting: unit-reported conservation counters gate the barrier
func (s *System) NextTaskID() uint64 {
	s.taskID++
	return s.taskID
}

// TaskDone records a completed task and advances the epoch when the current
// one drains.
//ndplint:seam bulk-sync epoch accounting: unit-reported conservation counters gate the barrier
func (s *System) TaskDone(ts uint32) {
	if s.outstanding[ts] == 0 {
		panic(fmt.Sprintf("core: TaskDone(%d) without outstanding task", ts))
	}
	s.outstanding[ts]--
	s.tasksDoneTotal++
	s.progress++
	if s.taskTrace != nil {
		s.taskTrace(s.eng.Now())
	}
	s.checkAdvance()
}

// MsgStaged records a message entering flight.
//ndplint:seam bulk-sync epoch accounting: unit-reported conservation counters gate the barrier
func (s *System) MsgStaged() {
	s.inflight++
	s.msgsStagedTotal++
}

// MsgDelivered records a message leaving flight.
//ndplint:seam bulk-sync epoch accounting: unit-reported conservation counters gate the barrier
func (s *System) MsgDelivered() {
	if s.inflight == 0 {
		panic("core: MsgDelivered without inflight message")
	}
	s.inflight--
	s.msgsDeliveredTotal++
	s.progress++
	s.checkAdvance()
}

// checkAdvance ends the current epoch when no tasks of it remain and no
// messages are in flight (the bulk-synchronization barrier).
func (s *System) checkAdvance() {
	if s.done || !s.ran {
		return
	}
	if s.outstanding[s.epoch] != 0 || s.inflight != 0 {
		return
	}
	if s.serve != nil {
		// Open-loop serving: barriers are paced, termination is decided by
		// the traffic source, and epochs never re-seed (see serving.go).
		s.servingAdvance()
		return
	}
	delete(s.outstanding, s.epoch)
	if s.epochHook != nil {
		s.epochHook(s.epoch)
	}
	now := s.eng.Now()
	s.mEpoch.Observe(now - s.epochStart)
	s.epochStart = now
	next := s.epoch + 1
	// Ask the application for more work unless tasks for the next epoch
	// were already spawned dynamically.
	more := s.app.SeedEpoch(s, next)
	if !more && s.outstanding[next] == 0 {
		s.done = true
		s.eng.Stop()
		return
	}
	s.rec.Record(trace.KindEpoch, -1, uint64(s.eng.Now()), uint64(s.eng.Now()), fmt.Sprintf("epoch %d", next))
	s.rec.EpochMark(next, uint64(s.eng.Now()))
	s.epoch = next
	// Barrier broadcast: a small fixed cost before units resume.
	s.eng.After(16, s.kickAll)
	// The new epoch may already be empty (e.g. pure-barrier epochs).
	s.eng.After(17, s.checkAdvance)
}

func (s *System) kickAll() {
	if s.exec != nil {
		s.exec.Kick()
		return
	}
	for _, u := range s.units {
		u.Kick()
	}
}

// --- Application-facing API ----------------------------------------------

// Register registers a task handler and returns its FuncID.
func (s *System) Register(name string, h task.Handler) task.FuncID {
	return s.reg.Register(name, h)
}

// Seed injects an initial task at its data's home unit (or the host executor
// in design H) with no communication charge.
func (s *System) Seed(t task.Task) {
	s.seededAny = true
	if s.exec != nil {
		s.exec.Seed(t)
		return
	}
	s.units[s.amap.Home(t.Addr)].SeedTask(t)
}

// Units returns the number of NDP units.
func (s *System) Units() int { return s.cfg.Geometry.Units() }

// UnitBase returns the first address of unit u's bank.
func (s *System) UnitBase(u int) uint64 { return s.amap.Base(u) }

// DataBytesPerUnit returns the bank bytes available for application data
// (excluding the mailbox, borrowed-data and task-queue regions).
func (s *System) DataBytesPerUnit() uint64 {
	reserved := s.cfg.Buffers.MailboxBytes + s.cfg.Metadata.BorrowedRegionBytes + (64 << 10) + (64 << 10)
	return s.cfg.Geometry.BankBytes - reserved
}

// Rand returns the system's deterministic random stream (for dataset
// generation in Prepare).
func (s *System) Rand() *sim.RNG { return s.rng }

// SetMaxEvents overrides the default event budget (livelock guard).
func (s *System) SetMaxEvents(n uint64) { s.maxEvents = n }

// MaxEvents returns the event budget (for progress/ETA reporting).
func (s *System) MaxEvents() uint64 { return s.maxEvents }

// SetTaskTrace installs a callback invoked at every task completion with the
// completion cycle — a profiling hook for tests and tools.
func (s *System) SetTaskTrace(fn func(now uint64)) { s.taskTrace = fn }

// AttachTrace installs an activity recorder. Attach before Run. If a metrics
// registry is already attached, the recorder's per-category wait histograms
// bind to it (and vice versa in AttachMetrics — attachment order is free).
func (s *System) AttachTrace(r *trace.Recorder) {
	s.rec = r
	if s.met != nil {
		r.BindMetrics(s.met)
	}
}

// MsgPool returns the run's shared message pool (ndpunit.Env).
func (s *System) MsgPool() *msg.Pool { return s.pool }

// SetCompatEventCore switches the run to the pre-batching event core: a pure
// min-heap engine (no calendar queue) and one engine event per delivered
// message (no unit inbox). The event-core equivalence tests run one system
// each way and require identical results and state digests.
func (s *System) SetCompatEventCore(on bool) {
	s.eng.SetHeapOnly(on)
	for _, u := range s.units {
		u.SetLegacyDeliver(on)
	}
}

// Trace returns the attached recorder (nil when tracing is off).
func (s *System) Trace() *trace.Recorder { return s.rec }

// AttachMetrics installs a metrics registry: it binds every component's
// instruments and registers the system-level gauges the cycle sampler
// snapshots (mailbox occupancy, ready-queue depth, in-flight messages,
// bridge-buffer backlog). Attach before Run; a nil registry is a no-op.
func (s *System) AttachMetrics(reg *metrics.Registry) {
	s.met = reg
	if reg == nil {
		return
	}
	s.rec.BindMetrics(reg)
	s.mEpoch = reg.Histogram("epoch_cycles")
	for _, u := range s.units {
		u.BindMetrics(reg)
	}
	for _, b := range s.bridges {
		b.BindMetrics(reg)
	}
	if s.l2 != nil {
		s.l2.BindMetrics(reg)
	}
	if s.fwd != nil {
		s.fwd.BindMetrics(reg)
	}
	if s.exec != nil {
		s.exec.BindMetrics(reg)
	}

	reg.Gauge("inflight_msgs", func() uint64 { return s.inflight })
	reg.Gauge("mailbox_used_total", func() uint64 {
		var n uint64
		for _, u := range s.units {
			n += u.MailboxUsed() + u.ChipMailUsed()
		}
		return n
	})
	reg.Gauge("mailbox_used_max", func() uint64 {
		var m uint64
		for _, u := range s.units {
			if used := u.MailboxUsed(); used > m {
				m = used
			}
		}
		return m
	})
	reg.Gauge("ready_tasks_total", func() uint64 {
		var n uint64
		for _, u := range s.units {
			n += uint64(u.QueueLen())
		}
		if s.exec != nil {
			n += uint64(s.exec.QueueLen())
		}
		return n
	})
	if len(s.bridges) > 0 {
		reg.Gauge("bridge_backup_bytes", func() uint64 {
			var n uint64
			for _, b := range s.bridges {
				n += b.BackupBytes()
			}
			return n
		})
		reg.Gauge("bridge_up_bytes", func() uint64 {
			var n uint64
			for _, b := range s.bridges {
				n += b.UpPending()
			}
			return n
		})
		reg.Gauge("bridge_scatter_bytes", func() uint64 {
			var n uint64
			for _, b := range s.bridges {
				n += b.ScatterBacklog()
			}
			return n
		})
	}
}

// Metrics returns the attached registry (nil when metrics are off).
func (s *System) Metrics() *metrics.Registry { return s.met }

// --- Run ------------------------------------------------------------------

// Sentinel errors wrapped into Run's failure diagnostics so callers (the
// chaos campaign's oracles, scripts) can classify an outcome with errors.Is
// instead of matching prose. The full message still carries the epoch /
// backlog / fault evidence around the sentinel.
var (
	// ErrWatchdog: the progress watchdog observed no work for its full
	// period — the run hung with the engine still scheduling events.
	ErrWatchdog = errors.New("watchdog tripped")
	// ErrDeadlock: the event queue drained with work still outstanding.
	ErrDeadlock = errors.New("deadlocked")
	// ErrNotConverged: the engine hit its event budget before completion.
	ErrNotConverged = errors.New("did not converge")
)

// Run executes app to completion and returns the measured result.
func (s *System) Run(app App) (*stats.Result, error) {
	if s.ran {
		return nil, fmt.Errorf("core: System is single-use")
	}
	s.app = app
	if err := app.Prepare(s); err != nil {
		return nil, fmt.Errorf("core: prepare %s: %w", app.Name(), err)
	}
	if !app.SeedEpoch(s, 0) && !s.seededAny {
		return nil, fmt.Errorf("core: %s seeded no work", app.Name())
	}
	s.ran = true
	// The first epoch starts at the clock edge; later boundaries come from
	// checkAdvance.
	s.rec.Record(trace.KindEpoch, -1, s.eng.Now(), s.eng.Now(), "epoch 0")
	s.rec.EpochMark(0, s.eng.Now())
	s.epochStart = s.eng.Now()
	s.met.StartSampler(s.eng, s.cfg.IState)

	for _, b := range s.bridges {
		b.Start()
	}
	if s.l2 != nil {
		s.l2.Start()
	}
	if s.fwd != nil {
		s.fwd.Start()
	}
	if s.rc != nil {
		s.rc.Start()
	}
	s.scheduleFaults()
	s.kickAll()

	engErr := s.eng.Run(s.maxEvents)
	// Deliberate early stops and detected divergences outrank the generic
	// convergence diagnostics: the engine was stopped on purpose.
	if s.aud != nil {
		if err := s.aud.log.Err(); err != nil {
			return nil, fmt.Errorf("core: %s/%s: %w", app.Name(), s.cfg.Design, err)
		}
	}
	if s.resumeErr != nil {
		return nil, s.resumeErr
	}
	if s.ckptErr != nil {
		return nil, fmt.Errorf("core: %s/%s: write checkpoint: %w", app.Name(), s.cfg.Design, s.ckptErr)
	}
	if s.interrupted {
		return nil, ErrInterrupted
	}
	if s.resumeCk != nil && s.done && !s.resumeVerified {
		return nil, fmt.Errorf("core: resume replay finished at epoch %d without reaching checkpoint marker epoch %d (version skew?)",
			s.epoch, s.resumeCk.Epoch)
	}
	if engErr != nil {
		return nil, fmt.Errorf("core: %s/%s %w: %w (epoch %d, outstanding %d, inflight %d)%s%s",
			app.Name(), s.cfg.Design, ErrNotConverged, engErr, s.epoch, s.outstanding[s.epoch], s.inflight, s.diagnose(), s.faultDiagnose())
	}
	if s.wd != nil && s.wd.Tripped() {
		return nil, fmt.Errorf("core: %s/%s %w at %d cycles: no progress (epoch %d, outstanding %d, inflight %d, backlog %d units)%s%s",
			app.Name(), s.cfg.Design, ErrWatchdog, s.eng.Now(), s.epoch, s.outstanding[s.epoch], s.inflight, s.backlogUnits(), s.diagnose(), s.faultDiagnose())
	}
	if !s.done {
		return nil, fmt.Errorf("core: %s/%s %w at %d cycles (epoch %d, outstanding %d, inflight %d, backlog %d units)%s",
			app.Name(), s.cfg.Design, ErrDeadlock, s.eng.Now(), s.epoch, s.outstanding[s.epoch], s.inflight, s.backlogUnits(), s.faultDiagnose())
	}
	return s.collect(app.Name()), nil
}

// diagnose renders livelock evidence: the hottest bouncing blocks and what
// every metadata level believes about them.
func (s *System) diagnose() string {
	type hot struct {
		unit int
		addr uint64
		n    uint64
	}
	var hs []hot
	for i, u := range s.units {
		if a, n := u.LastBounce(); n > 1000 {
			hs = append(hs, hot{i, a, n})
		}
	}
	out := ""
	for i, h := range hs {
		if i >= 4 {
			break
		}
		blk := dram.BlockAlign(h.addr, s.cfg.GXfer)
		home := s.amap.Home(h.addr)
		line := fmt.Sprintf("\n  unit %d bounced %d× on %#x (home %d, lent=%v)",
			h.unit, h.n, h.addr, home, s.units[home].LentAt(h.addr))
		if len(s.bridges) > 0 {
			hb := s.bridges[s.amap.GlobalRank(home)]
			if v, ok := hb.BorrowedEntry(blk); ok {
				line += fmt.Sprintf(" homeL1→%d", v)
			} else {
				line += " homeL1→miss"
			}
		}
		if s.l2 != nil {
			if v, ok := s.l2.BorrowedEntry(blk); ok {
				line += fmt.Sprintf(" L2→rank%d", v)
			} else {
				line += " L2→miss"
			}
		}
		for _, u := range s.units {
			for _, b := range u.BorrowedBlocks() {
				if b == blk {
					line += fmt.Sprintf(" heldBy=%d", u.ID())
				}
			}
		}
		out += line
	}
	return out
}

func (s *System) backlogUnits() int {
	n := 0
	for _, u := range s.units {
		if u.HasBacklog() {
			n++
		}
	}
	return n
}

// collect aggregates all counters into a Result.
func (s *System) collect(appName string) *stats.Result {
	r := &stats.Result{
		App:      appName,
		Design:   s.cfg.Design.String(),
		Makespan: s.eng.Now(),
		Events:   s.eng.Processed(),
	}
	if s.met != nil {
		r.TaskLatency = latencySummary(s.met.FindHistogram("task_latency_cycles"))
		r.MsgLatency = latencySummary(s.met.FindHistogram("msg_latency_cycles"))
	}
	if s.serve != nil {
		r.Serving = s.serve.src.Report(uint64(s.eng.Now()))
	}
	ec := energy.Counters{Makespan: s.eng.Now(), Units: s.cfg.Geometry.Units()}

	if s.exec != nil {
		// Design H: per-core records stand in for units.
		for i, b := range s.exec.BusyCycles() {
			r.Units = append(r.Units, stats.Unit{Busy: b, Tasks: s.exec.TasksRun()[i]})
			ec.BusyCycles += b
		}
		for _, l := range s.exec.Links() {
			bytes, _, _ := l.Stats()
			r.HostBytes += bytes
			ec.ChannelBytes += bytes
		}
		r.Finalize()
		r.TasksSpawned = s.exec.Spawned()
		// Host cores draw far more power than NDP cores; scale by the
		// clock and IPC advantage as a first-order model.
		ec.BusyCycles = uint64(float64(ec.BusyCycles) * s.cfg.Host.IPCFactor)
		ec.Units = s.cfg.Host.Cores
		r.Energy = energy.Breakdown(ec, s.cfg.Energy)
		return r
	}

	for _, u := range s.units {
		us := u.Stats()
		r.Units = append(r.Units, us)
		bs := u.Bank().Stats()
		ec.BusyCycles += us.Busy
		ec.LocalDRAMPJ += bs.EnergyPJ - bs.CommEnergyPJ
		ec.CommDRAMPJ += bs.CommEnergyPJ
		ec.SRAMAccesses += u.SRAMAccesses()
		r.MsgsDelivered += us.MsgsIn
		r.BlocksMigrated += us.Borrowed
		r.BlocksReturned += us.Returns
	}
	for _, b := range s.bridges {
		bs := b.Stats()
		r.IntraRankBytes += bs.BusBytes
		r.GatherRounds += bs.GatherRounds
		r.LBRounds += bs.LBRounds
		ec.ChannelBytes += bs.BusBytes
	}
	if s.l2 != nil {
		ls := s.l2.Stats()
		r.CrossRankBytes += ls.CrossRankBytes
		r.LBRounds += ls.LBRounds
		for _, l := range s.l2.Links() {
			bytes, _, _ := l.Stats()
			ec.ChannelBytes += bytes
		}
	}
	if s.fwd != nil {
		fs := s.fwd.Stats()
		r.HostBytes += fs.Bytes
		r.GatherRounds += fs.GatherBatches
		ec.ChannelBytes += fs.Bytes
	}
	if s.rc != nil {
		rs := s.rc.Stats()
		r.IntraRankBytes += rs.Bytes
		ec.ChannelBytes += rs.Bytes
	}
	r.Faults = s.faultResult()
	if rep := s.rec.CritPath(uint64(s.eng.Now())); rep != nil {
		dom, frac := rep.Dominant()
		paths := 0
		for _, ep := range rep.Epochs {
			paths += ep.PathSpans
		}
		r.Crit = &stats.Crit{
			Epochs:       len(rep.Epochs),
			PathSpans:    paths,
			BankBusy:     rep.Total.BankBusy,
			TaskQueue:    rep.Total.TaskQueue,
			GatherBatch:  rep.Total.GatherBatch,
			BridgeQueue:  rep.Total.BridgeQueue,
			LBMigration:  rep.Total.LBMigration,
			Retry:        rep.Total.Retry,
			HostRT:       rep.Total.HostRT,
			Slack:        rep.Total.Slack,
			Dominant:     dom,
			DominantPct:  100 * frac,
			DroppedSpans: rep.DroppedSpans,
		}
	}
	r.Finalize()
	r.Energy = energy.Breakdown(ec, s.cfg.Energy)
	return r
}

// latencySummary folds a latency histogram into the Result's percentile
// summary. All Histogram methods are nil-safe, so a missing histogram (or a
// run without metrics) yields the zero summary.
func latencySummary(h *metrics.Histogram) stats.Latency {
	return stats.Latency{
		P50: h.Quantile(0.50),
		P90: h.Quantile(0.90),
		P99: h.Quantile(0.99),
		Max: h.Max(),
	}
}
