package core

import (
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/task"
)

// testCfg returns a small 8-unit system (2 channels × 1 rank × 2 chips × 2
// banks) for fast integration tests.
func testCfg(d config.Design) config.Config {
	cfg := config.Default().WithDesign(d)
	cfg.Geometry = config.Geometry{
		Channels: 2, RanksPerChannel: 1, ChipsPerRank: 2, BanksPerChip: 2,
		BankBytes: 4 << 20,
	}
	cfg.Buffers.MailboxBytes = 64 << 10
	cfg.Metadata.BorrowedRegionBytes = 64 << 10
	cfg.Metadata.UnitBorrowedEntries = 128
	cfg.Metadata.UnitBorrowedWays = 8
	cfg.Metadata.BridgeBorrowedEntries = 1024
	cfg.Metadata.BridgeBorrowedWays = 16
	return cfg
}

// pingPong bounces a counter across all units: unit i forwards to unit i+1.
type pingPong struct {
	hops int
	seen []int
	fn   task.FuncID
}

func (p *pingPong) Name() string { return "pingpong" }

func (p *pingPong) Prepare(s *System) error {
	p.fn = s.Register("pp.hop", func(ctx task.Ctx, t task.Task) {
		hop := int(t.Args[0])
		p.seen = append(p.seen, hop)
		ctx.Read(t.Addr, 64)
		ctx.Compute(10)
		if hop+1 < p.hops {
			next := (ctx.Unit() + 1) % s.Units()
			ctx.Enqueue(task.New(p.fn, t.TS, s.UnitBase(next)+128, 20, uint64(hop+1)))
		}
	})
	return nil
}

func (p *pingPong) SeedEpoch(s *System, ts uint32) bool {
	if ts > 0 {
		return false
	}
	s.Seed(task.New(p.fn, 0, s.UnitBase(0)+128, 20, 0))
	return true
}

func TestPingPongAcrossDesigns(t *testing.T) {
	for _, d := range []config.Design{config.DesignC, config.DesignB, config.DesignW, config.DesignO, config.DesignR} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			sys, err := New(testCfg(d))
			if err != nil {
				t.Fatal(err)
			}
			app := &pingPong{hops: 40}
			r, err := sys.Run(app)
			if err != nil {
				t.Fatal(err)
			}
			if len(app.seen) != 40 {
				t.Fatalf("executed %d hops, want 40", len(app.seen))
			}
			for i, h := range app.seen {
				if h != i {
					t.Fatalf("hop order broken at %d: %d", i, h)
				}
			}
			if r.Makespan == 0 {
				t.Error("zero makespan")
			}
			if r.TasksExecuted != 40 {
				t.Errorf("TasksExecuted = %d", r.TasksExecuted)
			}
		})
	}
}

func TestPingPongOnHost(t *testing.T) {
	sys, err := New(testCfg(config.DesignH))
	if err != nil {
		t.Fatal(err)
	}
	app := &pingPong{hops: 10}
	r, err := sys.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.seen) != 10 {
		t.Fatalf("executed %d hops, want 10", len(app.seen))
	}
	if r.TasksExecuted != 10 {
		t.Errorf("TasksExecuted = %d", r.TasksExecuted)
	}
}

// epochApp verifies bulk-synchronous ordering: tasks of epoch e+1 must not
// run before all epoch-e tasks complete.
type epochApp struct {
	epochs   int
	perEpoch int
	order    []uint32
	fn       task.FuncID
}

func (a *epochApp) Name() string { return "epochs" }

func (a *epochApp) Prepare(s *System) error {
	a.fn = s.Register("ep.task", func(ctx task.Ctx, t task.Task) {
		a.order = append(a.order, t.TS)
		ctx.Compute(5)
		// Pre-spawn one task of the NEXT epoch from within this one.
		if int(t.TS)+1 < a.epochs && t.Args[0] == 0 {
			ctx.Enqueue(task.New(a.fn, t.TS+1, t.Addr, 5, 1))
		}
	})
	return nil
}

func (a *epochApp) SeedEpoch(s *System, ts uint32) bool {
	if int(ts) >= a.epochs {
		return false
	}
	for i := 0; i < a.perEpoch; i++ {
		u := i % s.Units()
		s.Seed(task.New(a.fn, ts, s.UnitBase(u)+uint64(i)*64, 5, uint64(i)))
	}
	return true
}

func TestBulkSynchronousEpochs(t *testing.T) {
	sys, err := New(testCfg(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	app := &epochApp{epochs: 3, perEpoch: 16}
	_, err = sys.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	want := 3*16 + 2 // seeded + pre-spawned
	if len(app.order) != want {
		t.Fatalf("executed %d tasks, want %d", len(app.order), want)
	}
	for i := 1; i < len(app.order); i++ {
		if app.order[i] < app.order[i-1] {
			t.Fatalf("epoch regression at %d: %d after %d", i, app.order[i], app.order[i-1])
		}
	}
}

func TestSystemSingleUse(t *testing.T) {
	sys, err := New(testCfg(config.DesignB))
	if err != nil {
		t.Fatal(err)
	}
	app := &pingPong{hops: 2}
	if _, err := sys.Run(app); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(app); err == nil {
		t.Error("second Run must fail")
	}
}

func TestSystemRejectsInvalidConfig(t *testing.T) {
	cfg := testCfg(config.DesignB)
	cfg.GXfer = 0
	if _, err := New(cfg); err == nil {
		t.Error("invalid config must be rejected")
	}
}

func TestSystemRejectsEmptyApp(t *testing.T) {
	sys, err := New(testCfg(config.DesignB))
	if err != nil {
		t.Fatal(err)
	}
	app := &epochApp{epochs: 0}
	if _, err := sys.Run(app); err == nil {
		t.Error("empty app must be rejected")
	}
}

// fanout stresses load balancing: one unit owns all the work initially.
type fanout struct {
	tasks int
	fn    task.FuncID
	ran   int
}

func (a *fanout) Name() string { return "fanout" }

func (a *fanout) Prepare(s *System) error {
	a.fn = s.Register("fan.work", func(ctx task.Ctx, t task.Task) {
		a.ran++
		ctx.Read(t.Addr, 64)
		ctx.Compute(500)
	})
	return nil
}

func (a *fanout) SeedEpoch(s *System, ts uint32) bool {
	if ts > 0 {
		return false
	}
	gx := s.Cfg().GXfer
	for i := 0; i < a.tasks; i++ {
		// All tasks on unit 0, one block each.
		s.Seed(task.New(a.fn, 0, s.UnitBase(0)+uint64(i)*gx, 520))
	}
	return true
}

func TestLoadBalancingMovesWork(t *testing.T) {
	run := func(d config.Design) (makespan uint64, migrated uint64) {
		sys, err := New(testCfg(d))
		if err != nil {
			t.Fatal(err)
		}
		app := &fanout{tasks: 256}
		r, err := sys.Run(app)
		if err != nil {
			t.Fatal(err)
		}
		if app.ran != 256 {
			t.Fatalf("%v: ran %d tasks, want 256", d, app.ran)
		}
		return r.Makespan, r.BlocksMigrated
	}
	mB, migB := run(config.DesignB)
	mO, migO := run(config.DesignO)
	if migB != 0 {
		t.Errorf("design B must not migrate blocks, got %d", migB)
	}
	if migO == 0 {
		t.Error("design O must migrate blocks for a fully imbalanced workload")
	}
	if mO >= mB {
		t.Errorf("load balancing should beat no balancing: O=%d >= B=%d", mO, mB)
	}
}
