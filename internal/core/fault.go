package core

import (
	"fmt"

	"ndpbridge/internal/config"
	"ndpbridge/internal/dram"
	"ndpbridge/internal/fault"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/sched"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/stats"
	"ndpbridge/internal/task"
	"ndpbridge/internal/trace"
)

// This file is the system-level fault-recovery runtime: it schedules the
// injector's unit/overflow events, quarantines killed units (re-homing their
// address range to a buddy and re-spawning their in-flight tasks exactly
// once), heals the migration metadata after a death, and arms the watchdog
// that turns unrecoverable deadlock/livelock into a diagnostic instead of a
// hung run.

// AttachFaults binds a fault plan to the system. Call after New and before
// Run. A nil or empty plan is a no-op: no fault state is allocated anywhere
// and the run stays byte-identical to one without fault support. Message and
// overflow faults need the bridge fabric; design H has no units to fault.
func (s *System) AttachFaults(plan *fault.Plan, seed uint64) error {
	inj := fault.New(plan, seed)
	if inj == nil {
		return nil
	}
	if s.ran {
		return fmt.Errorf("core: AttachFaults after Run")
	}
	if s.cfg.Design == config.DesignH {
		return fmt.Errorf("core: fault injection needs NDP units; design %s has none", s.cfg.Design)
	}
	if err := plan.Validate(s.cfg.Geometry.Units(), s.cfg.Geometry.Ranks()); err != nil {
		return err
	}
	if plan.NeedsBridges() && !s.cfg.Design.UsesBridges() {
		return fmt.Errorf("core: message/overflow faults need the bridge fabric; design %s has none", s.cfg.Design)
	}
	s.inj = inj
	s.injPlan = plan
	s.injSeed = seed
	s.respawned = make(map[uint64]bool)
	for _, u := range s.units {
		u.EnableFaults()
		u.SetLostHook(s.lostMessage)
	}
	if s.cfg.Design.UsesBridges() {
		perRank := s.cfg.Geometry.UnitsPerRank()
		for r, b := range s.bridges {
			b.EnableFaults(inj, true, s.lostMessage)
			for _, u := range s.units[r*perRank : (r+1)*perRank] {
				u.EnableRetry(b)
			}
		}
		s.l2.EnableFaults(inj, true)
	}
	return nil
}

// scheduleFaults arms the injector's event schedule and the watchdog. Called
// once from Run, after the application is seeded.
func (s *System) scheduleFaults() {
	if s.inj == nil {
		return
	}
	for _, ev := range s.inj.UnitEvents() {
		ev := ev
		if ev.Kill {
			s.eng.At(ev.At, func() { s.killUnit(ev.Unit) })
		} else {
			s.eng.At(ev.At, func() { s.stallUnit(ev.Unit, ev.Cycles) })
		}
	}
	for _, ev := range s.inj.OverflowEvents() {
		ev := ev
		s.eng.At(ev.At, func() {
			s.inj.CountOverflow()
			now := uint64(s.eng.Now())
			s.rec.Record(trace.KindFault, -1, now, now+uint64(ev.Cycles), fmt.Sprintf("overflow rank %d", ev.Rank))
			b := s.bridges[ev.Rank]
			b.InjectOverflow(ev.Bytes)
			s.eng.After(ev.Cycles, func() { b.ClearOverflow(ev.Bytes) })
		})
	}
	// The watchdog period must exceed every recoverable latency the plan can
	// cause — the longest stall/delay/overflow window and a full retry
	// backoff — so it only fires on genuine lack of progress.
	wdPeriod := s.cfg.Retry.BackoffCap + sim.Cycles(s.injPlan.MaxCycles()) + 8*s.cfg.IState
	s.wd = sim.NewWatchdog(s.eng, wdPeriod, 4,
		// Admission activity (offers, sheds, injections) counts as progress
		// through s.progress, so an open-loop overload interval that
		// correctly sheds every arrival is not mistaken for a stall; a
		// backed-up admission queue counts as pending work, so a fabric
		// that stops draining it is.
		func() uint64 { return s.progress },
		func() bool {
			if s.outstanding[s.epoch] != 0 || s.inflight != 0 {
				return true
			}
			return s.serve != nil && s.serve.src.QueueLen() > 0
		},
		func() { s.eng.Stop() })
	s.wd.Start()
}

// stallUnit freezes one unit's compute pipeline for d cycles.
func (s *System) stallUnit(id int, d sim.Cycles) {
	u := s.units[id]
	if u.Dead() {
		return
	}
	s.inj.CountStall()
	now := uint64(s.eng.Now())
	s.rec.Record(trace.KindFault, id, now, now+uint64(d), "stall")
	u.Stall(s.eng.Now() + d)
	u.Kick() // arm the wake-up even if the unit is idle right now
}

// killUnit permanently removes one unit and runs the full recovery protocol:
// quarantine, address-range re-homing, exactly-once task re-spawn, terminal
// message resolution, and metadata healing.
func (s *System) killUnit(id int) {
	u := s.units[id]
	if u.Dead() {
		return
	}
	s.inj.CountKill()
	now := uint64(s.eng.Now())
	s.rec.Record(trace.KindFault, id, now, now, "kill")

	rem := u.Extinguish()

	// Re-home the dead unit's address range to a surviving buddy so future
	// routing (and re-spawned tasks) resolve somewhere that can execute.
	alive := func(x int) bool { return !s.units[x].Dead() }
	if buddy := sched.PickBuddy(id, s.cfg.Geometry.UnitsPerRank(), len(s.units), alive); buddy >= 0 {
		s.amap.Rehome(id, buddy)
	}

	// Blocks whose only copy died with the unit: everything it had borrowed.
	held := u.BorrowedBlocks()

	if len(s.bridges) > 0 {
		b := s.bridges[s.amap.GlobalRank(id)]
		for _, m := range b.KillChild(id) {
			s.lostMessage(m)
		}
		// Unacked gather messages: mark their sequence numbers consumed at
		// the bridge so a delayed copy still in flight is discarded, then
		// resolve them terminally.
		for _, m := range rem.Unacked {
			b.MarkGathered(id, m.Seq)
			s.lostMessage(m)
		}
		held = append(held, b.PurgeBorrowedTo(id)...)
	} else {
		for _, m := range rem.Unacked {
			s.lostMessage(m)
		}
	}
	for _, m := range rem.Msgs {
		s.lostMessage(m)
	}
	for _, t := range rem.Tasks {
		s.respawnTask(t)
	}
	for _, blk := range held {
		s.recoverBlock(blk)
	}
	if len(s.bridges) > 0 {
		s.bridges[s.amap.GlobalRank(id)].Kick()
	}
	s.kickAll()
}

// lostMessage terminally resolves a message that can never be delivered:
// tasks re-spawn at their (possibly re-homed) home, data blocks heal their
// lender's isLent bit. The in-flight count is released exactly once per
// logical message — the callers guarantee single resolution via the
// sequence-number claims.
func (s *System) lostMessage(m *msg.Message) {
	s.fMsgsLost++
	switch m.Type {
	case msg.TypeTask:
		s.respawnTask(m.Task)
	case msg.TypeData:
		s.recoverBlock(m.BlockAddr)
	}
	s.MsgDelivered()
}

// respawnTask re-homes a task recovered from a dead unit. The map dedups by
// task ID so each logical task is adopted at most once — the original spawn
// still holds the epoch's outstanding count, and the adopted copy releases
// it on completion.
func (s *System) respawnTask(t task.Task) {
	if t.ID != 0 {
		if s.respawned[t.ID] {
			return
		}
		s.respawned[t.ID] = true
	}
	home := s.amap.Home(t.Addr)
	u := s.units[home]
	if u.Dead() {
		// No surviving buddy serves this range: the task cannot re-home,
		// the epoch cannot drain, and the watchdog will report it.
		return
	}
	s.fTasksRespawned++
	u.AdoptTask(t)
}

// recoverBlock heals the migration metadata for a block whose borrowed copy
// (or in-flight lend) died: the home copy becomes authoritative again and
// every routing-table entry for the block is dropped.
func (s *System) recoverBlock(addr uint64) {
	raw := s.amap.HomeRaw(addr)
	if s.units[raw].RecoverLent(addr) {
		s.fBlocksRecovered++
	}
	blk := dram.BlockAlign(addr, s.cfg.GXfer)
	if len(s.bridges) > 0 {
		s.bridges[s.amap.GlobalRank(raw)].DropBorrowed(blk)
	}
	if s.l2 != nil {
		s.l2.DropBorrowed(blk)
	}
}

// faultResult builds the run's fault/recovery summary and exports it to the
// metrics registry. Returns nil when no fault plan was attached.
func (s *System) faultResult() *stats.FaultStats {
	if s.inj == nil {
		return nil
	}
	c := s.inj.Counters()
	fs := &stats.FaultStats{
		Drops:      c.Drops,
		Corrupts:   c.Corrupts,
		Duplicates: c.Duplicates,
		Delays:     c.Delays,
		Stalls:     c.Stalls,
		Kills:      c.Kills,
		Overflows:  c.Overflows,

		MsgsLost:        s.fMsgsLost,
		TasksRespawned:  s.fTasksRespawned,
		BlocksRecovered: s.fBlocksRecovered,
		WatchdogTripped: s.wd != nil && s.wd.Tripped(),
	}
	var rs msg.RetransStats
	var dups uint64
	add := func(r msg.RetransStats, d uint64) {
		rs.Tracked += r.Tracked
		rs.Acked += r.Acked
		rs.Nacked += r.Nacked
		rs.Retries += r.Retries
		dups += d
	}
	for _, u := range s.units {
		add(u.RetryStats())
	}
	for _, b := range s.bridges {
		add(b.RetryStats())
	}
	if s.l2 != nil {
		add(s.l2.RetryStats())
	}
	fs.Retries = rs.Retries
	fs.Nacks = rs.Nacked
	fs.DupsFiltered = dups
	if s.met != nil {
		s.met.Counter("fault_retries").Add(fs.Retries)
		s.met.Counter("fault_nacks").Add(fs.Nacks)
		s.met.Counter("fault_dups_filtered").Add(fs.DupsFiltered)
		s.met.Counter("fault_msgs_lost").Add(fs.MsgsLost)
		s.met.Counter("fault_tasks_respawned").Add(fs.TasksRespawned)
		s.met.Counter("fault_blocks_recovered").Add(fs.BlocksRecovered)
	}
	return fs
}

// faultDiagnose renders the fault-side evidence appended to watchdog and
// convergence errors: what fired, what recovered, and which units are dead.
func (s *System) faultDiagnose() string {
	if s.inj == nil {
		return ""
	}
	out := fmt.Sprintf("\n  faults fired: %s", s.inj.Counters())
	out += fmt.Sprintf("\n  recovery: msgsLost=%d tasksRespawned=%d blocksRecovered=%d",
		s.fMsgsLost, s.fTasksRespawned, s.fBlocksRecovered)
	var dead []int
	for i, u := range s.units {
		if u.Dead() {
			dead = append(dead, i)
		}
	}
	if len(dead) > 0 {
		out += fmt.Sprintf("\n  dead units: %v", dead)
	}
	return out
}
