package core

import (
	"fmt"

	"ndpbridge/internal/audit"
	"ndpbridge/internal/sim"
)

// The invariant auditor cross-checks the simulation's conservation laws
// while it runs. Two tiers:
//
//   - Weak checks fire from the engine's audit hook every N cycles, at an
//     arbitrary point between events: lifetime totals must balance the live
//     accounting (tasks spawned = executed + outstanding; messages staged =
//     delivered + in flight), and the retry-protocol sequence counters must
//     never move backwards.
//
//   - Strong checks fire at every bulk-sync barrier, where the fabric is
//     provably drained: no component may hold a residual message (mailboxes,
//     staging buffers, scatter/backup queues, retransmit windows), the
//     isLent / dataBorrowed metadata must agree, and the state encoders
//     must be deterministic (two encodings, one digest) — the property the
//     checkpoint digests stand on.
//
// The first violation stops the engine; Run returns an *audit.Error listing
// everything observed. Metadata agreement is only checked on fault-free
// runs: kill/recovery deliberately desynchronizes the tables until the
// recovery protocol repairs them.
type auditor struct {
	s   *System
	log *audit.Log

	// Sequence watermarks from the previous weak check.
	unitSeq    []uint32
	bridgeUp   []uint32
	bridgeScat [][]uint32

	// digestPace spaces the expensive snapshot-determinism check with
	// exponential backoff (see audit.Backoff): encoding the full system
	// state at every barrier (or even every audit period) would dominate
	// long runs, and the property it guards — encoder determinism — is
	// structural, so a handful of probes per run spread across its
	// lifetime suffices.
	every      sim.Cycles
	digestPace *audit.Backoff
	// stateDigest is the snapshot encoder probed by the determinism check.
	// It is a field (defaulting to System.StateDigest) so tests can swap in
	// a misbehaving encoder and prove the check fires.
	stateDigest func() uint64

	checks uint64 // weak checks run, for overhead accounting
}

// AttachAudit enables the invariant auditor, running the weak checks every
// `every` cycles and the strong checks at every bulk-sync barrier. Attach
// before Run.
func (s *System) AttachAudit(every sim.Cycles) error {
	if s.ran {
		return fmt.Errorf("core: AttachAudit after Run")
	}
	if s.aud != nil {
		return fmt.Errorf("core: AttachAudit called twice")
	}
	if every == 0 {
		every = 1 << 14
	}
	a := &auditor{
		s:          s,
		log:        &audit.Log{},
		unitSeq:    make([]uint32, len(s.units)),
		bridgeUp:   make([]uint32, len(s.bridges)),
		bridgeScat: make([][]uint32, len(s.bridges)),
		every:      every,
		digestPace: audit.NewBackoff(uint64(every), 256),
	}
	a.stateDigest = s.StateDigest
	s.aud = a
	s.eng.SetAudit(every, a.weak)
	s.addEpochHook(a.strong)
	return nil
}

// violate records v and stops the engine so Run fails fast.
func (a *auditor) violate(v audit.Violation) {
	v.Cycle = a.s.eng.Now()
	a.log.Add(v)
	a.s.eng.Stop()
}

// weak runs the any-time conservation checks.
func (a *auditor) weak(now sim.Cycles) {
	s := a.s
	a.checks++

	var outstanding uint64
	for _, n := range s.outstanding {
		outstanding += n
	}
	if got := s.tasksSpawnedTotal - s.tasksDoneTotal; got != outstanding {
		a.violate(audit.Violation{
			Rule: "task-conservation", Where: "system",
			Expected: outstanding, Actual: got,
			Detail: fmt.Sprintf("spawned %d, done %d, outstanding-by-epoch %d", s.tasksSpawnedTotal, s.tasksDoneTotal, outstanding),
		})
	}
	if got := s.msgsStagedTotal - s.msgsDeliveredTotal; got != s.inflight {
		a.violate(audit.Violation{
			Rule: "msg-conservation", Where: "system",
			Expected: s.inflight, Actual: got,
			Detail: fmt.Sprintf("staged %d, delivered %d", s.msgsStagedTotal, s.msgsDeliveredTotal),
		})
	}

	// Retry sequence counters are append-only; a regression means a
	// retransmit window or sender was mis-restored or double-allocated.
	for i, u := range s.units {
		if seq := u.GatherSeq(); seq < a.unitSeq[i] {
			a.violate(audit.Violation{
				Rule: "seq-monotonic", Where: fmt.Sprintf("unit %d", i),
				Expected: uint64(a.unitSeq[i]), Actual: uint64(seq), Detail: "gather hop",
			})
		} else {
			a.unitSeq[i] = seq
		}
	}
	for i, b := range s.bridges {
		up, scat := b.SeqWatermarks()
		if up < a.bridgeUp[i] {
			a.violate(audit.Violation{
				Rule: "seq-monotonic", Where: fmt.Sprintf("bridge %d", i),
				Expected: uint64(a.bridgeUp[i]), Actual: uint64(up), Detail: "up hop",
			})
		} else {
			a.bridgeUp[i] = up
		}
		if a.bridgeScat[i] == nil {
			a.bridgeScat[i] = make([]uint32, len(scat))
		}
		for c, sq := range scat {
			if sq < a.bridgeScat[i][c] {
				a.violate(audit.Violation{
					Rule: "seq-monotonic", Where: fmt.Sprintf("bridge %d child %d", i, c),
					Expected: uint64(a.bridgeScat[i][c]), Actual: uint64(sq), Detail: "scatter hop",
				})
			} else {
				a.bridgeScat[i][c] = sq
			}
		}
	}
}

// strong runs the barrier checks, where the drained fabric makes exact
// assertions possible.
func (a *auditor) strong(completed uint32) {
	s := a.s

	if s.inflight != 0 {
		a.violate(audit.Violation{
			Rule: "barrier-residue", Where: "system",
			Expected: 0, Actual: s.inflight,
			Detail: fmt.Sprintf("in-flight messages at barrier of epoch %d", completed),
		})
	}
	for i, u := range s.units {
		if n := u.PendingMsgs(); n != 0 {
			a.violate(audit.Violation{
				Rule: "barrier-residue", Where: fmt.Sprintf("unit %d", i),
				Expected: 0, Actual: uint64(n), Detail: "staged/mailboxed messages",
			})
		}
		if n := u.RetransPending(); n != 0 {
			a.violate(audit.Violation{
				Rule: "barrier-residue", Where: fmt.Sprintf("unit %d", i),
				Expected: 0, Actual: uint64(n), Detail: "unacked gather-hop messages",
			})
		}
	}
	for i, b := range s.bridges {
		if n := b.PendingMsgs(); n != 0 {
			a.violate(audit.Violation{
				Rule: "barrier-residue", Where: fmt.Sprintf("bridge %d", i),
				Expected: 0, Actual: uint64(n), Detail: "scatter/backup/up-mail messages",
			})
		}
		if n := b.RetransPending(); n != 0 {
			a.violate(audit.Violation{
				Rule: "barrier-residue", Where: fmt.Sprintf("bridge %d", i),
				Expected: 0, Actual: uint64(n), Detail: "unacked messages",
			})
		}
	}
	if s.l2 != nil {
		if n := s.l2.PendingMsgs(); n != 0 {
			a.violate(audit.Violation{
				Rule: "barrier-residue", Where: "l2",
				Expected: 0, Actual: uint64(n), Detail: "queued channel messages",
			})
		}
		if n := s.l2.RetransPending(); n != 0 {
			a.violate(audit.Violation{
				Rule: "barrier-residue", Where: "l2",
				Expected: 0, Actual: uint64(n), Detail: "unacked messages",
			})
		}
	}

	// Metadata agreement: every borrowed block's home must have it marked
	// lent, and (fault-free only — recovery transients desynchronize the
	// tables) the global lent and borrowed counts must match.
	if s.inj == nil {
		var lent, borrowed uint64
		for _, u := range s.units {
			lent += uint64(u.LentCount())
			borrowed += uint64(u.BorrowedCount())
			for _, blk := range u.BorrowedBlocks() {
				home := s.amap.Home(blk)
				if !s.units[home].LentAt(blk) {
					a.violate(audit.Violation{
						Rule: "lent-borrowed", Where: fmt.Sprintf("unit %d", u.ID()),
						Expected: 1, Actual: 0,
						Detail: fmt.Sprintf("block %#x borrowed here but home unit %d has no isLent bit", blk, home),
					})
				}
			}
		}
		if lent != borrowed {
			a.violate(audit.Violation{
				Rule: "lent-borrowed", Where: "system",
				Expected: lent, Actual: borrowed,
				Detail: "global isLent count vs dataBorrowed entries",
			})
		}
	}

	// Snapshot determinism: two encodings of the same barrier state must
	// hash identically, or checkpoint digests are meaningless. Encoding
	// the whole system is the auditor's one expensive check, so it backs
	// off exponentially: early barriers are probed densely (small state,
	// cheap), later ones ever more sparsely.
	if a.digestPace.Due(uint64(s.eng.Now())) {
		d1 := a.stateDigest()
		d2 := a.stateDigest()
		if d1 != d2 {
			a.violate(audit.Violation{
				Rule: "snapshot-determinism", Where: "system",
				Expected: d1, Actual: d2,
				Detail: "state encoders iterate an unsorted map",
			})
		}
	}
}

// AuditChecks reports how many weak audit passes ran (0 when the auditor is
// off), for overhead accounting in tests.
func (s *System) AuditChecks() uint64 {
	if s.aud == nil {
		return 0
	}
	return s.aud.checks
}
