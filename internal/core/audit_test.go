package core

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"ndpbridge/internal/audit"
	"ndpbridge/internal/config"
	"ndpbridge/internal/fault"
	"ndpbridge/internal/task"
)

func TestAuditCleanRunAcrossDesigns(t *testing.T) {
	for _, d := range []config.Design{config.DesignC, config.DesignB, config.DesignW, config.DesignO, config.DesignR} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			sys, err := New(testCfg(d))
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.AttachAudit(512); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(&epochWave{epochs: 4}); err != nil {
				t.Fatalf("audited run failed: %v", err)
			}
			if sys.AuditChecks() == 0 {
				t.Error("auditor never ran a weak check")
			}
		})
	}
}

func TestAuditResultUnchanged(t *testing.T) {
	cfg := testCfg(config.DesignO)
	plain, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := plain.Run(&epochWave{epochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	audited, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := audited.AttachAudit(256); err != nil {
		t.Fatal(err)
	}
	r2, err := audited.Run(&epochWave{epochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("auditor perturbed the simulation result")
	}
}

func TestAuditCleanUnderFaults(t *testing.T) {
	sys, err := New(testCfg(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindDrop, Scope: fault.ScopeL1Gather, Prob: 0.05, Rank: -1, Unit: -1},
		{Kind: fault.KindDrop, Scope: fault.ScopeL1Scatter, Prob: 0.05, Rank: -1, Unit: -1},
	}}
	if err := sys.AttachFaults(plan, 7); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachAudit(512); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(&epochWave{epochs: 4}); err != nil {
		t.Fatalf("audited fault run failed: %v", err)
	}
}

// brokenApp corrupts the message accounting mid-run, which the weak
// conservation check must catch.
type brokenApp struct {
	sys *System
	fn  task.FuncID
}

func (b *brokenApp) Name() string { return "broken" }

func (b *brokenApp) Prepare(s *System) error {
	b.fn = s.Register("broken.hop", func(ctx task.Ctx, t task.Task) {
		ctx.Compute(100)
		if t.Args[0] == 3 {
			b.sys.msgsStagedTotal += 5 // the deliberate accounting bug
		}
		if t.Args[0] > 0 {
			next := (ctx.Unit() + 1) % s.Units()
			ctx.Enqueue(task.New(b.fn, t.TS, s.UnitBase(next)+128, 20, t.Args[0]-1))
		}
	})
	return nil
}

func (b *brokenApp) SeedEpoch(s *System, ts uint32) bool {
	if ts > 0 {
		return false
	}
	s.Seed(task.New(b.fn, 0, s.UnitBase(0)+128, 20, 200))
	return true
}

func TestAuditDetectsConservationBreach(t *testing.T) {
	sys, err := New(testCfg(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachAudit(64); err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(&brokenApp{sys: sys})
	if err == nil {
		t.Fatal("accounting breach not detected")
	}
	var ae *audit.Error
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *audit.Error", err)
	}
	found := false
	for _, v := range ae.Violations {
		if v.Rule == "msg-conservation" {
			found = true
		}
	}
	if !found {
		t.Errorf("no msg-conservation violation in %v", ae)
	}
}

// TestAuditChecksFireOnCorruption corrupts one piece of system state per row
// — through the same surfaces a real bug would use — and asserts the named
// audit rule catches it. Together the rows cover every strong check
// (barrier-residue, lent-borrowed, snapshot-determinism) and every weak
// check (task-conservation, msg-conservation, seq-monotonic).
func TestAuditChecksFireOnCorruption(t *testing.T) {
	cases := []struct {
		name string
		rule string
		// corrupt runs inside an epoch hook installed before the auditor's,
		// so the damage is visible to the strong checks at the same barrier
		// and to the weak checks afterwards. It returns false to retry at a
		// later barrier (e.g. when no block is borrowed yet).
		corrupt func(s *System) bool
	}{
		{
			name: "phantom inflight message",
			rule: "barrier-residue",
			corrupt: func(s *System) bool {
				s.inflight++
				return true
			},
		},
		{
			name: "lost isLent bit",
			rule: "lent-borrowed",
			corrupt: func(s *System) bool {
				// Clear the home-side lent bit for a block some unit still
				// holds borrowed — the desync a botched recovery would leave.
				for _, u := range s.units {
					for _, blk := range u.BorrowedBlocks() {
						home := s.amap.Home(blk)
						if s.units[home].RecoverLent(blk) {
							return true
						}
					}
				}
				return false
			},
		},
		{
			name: "nondeterministic state encoder",
			rule: "snapshot-determinism",
			corrupt: func(s *System) bool {
				var n uint64
				s.aud.stateDigest = func() uint64 { n++; return n }
				return true
			},
		},
		{
			name: "task counter corruption",
			rule: "task-conservation",
			corrupt: func(s *System) bool {
				s.tasksSpawnedTotal += 3
				return true
			},
		},
		{
			name: "msg counter corruption",
			rule: "msg-conservation",
			corrupt: func(s *System) bool {
				s.msgsStagedTotal += 5
				return true
			},
		},
		{
			name: "sequence regression",
			rule: "seq-monotonic",
			corrupt: func(s *System) bool {
				// Push the auditor's watermark above the live counter —
				// equivalent to the unit's gather seq moving backwards.
				s.aud.unitSeq[0] = 1 << 30
				return true
			},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sys, err := New(testCfg(config.DesignO))
			if err != nil {
				t.Fatal(err)
			}
			corrupted := false
			sys.addEpochHook(func(completed uint32) {
				if !corrupted {
					corrupted = c.corrupt(sys)
				}
			})
			if err := sys.AttachAudit(64); err != nil {
				t.Fatal(err)
			}
			// stress borrows blocks across units (needed by the
			// lent-borrowed row) and runs two epochs, so corruption at the
			// first barrier is observed well before the run would end.
			_, err = sys.Run(&stress{tasks: 300, chain: 4})
			if !corrupted {
				t.Fatal("corruption hook never found a target")
			}
			if err == nil {
				t.Fatalf("corrupted run passed the audit")
			}
			var ae *audit.Error
			if !errors.As(err, &ae) {
				t.Fatalf("err = %v, want *audit.Error", err)
			}
			found := false
			for _, v := range ae.Violations {
				if v.Rule == c.rule {
					found = true
				}
			}
			if !found {
				t.Errorf("no %s violation in: %v", c.rule, ae)
			}
		})
	}
}

func TestAuditWithCheckpointing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.ckpt")
	sys, err := New(testCfg(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachAudit(512); err != nil {
		t.Fatal(err)
	}
	sys.EnableCheckpoints(path, 1)
	if _, err := sys.Run(&epochWave{epochs: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
}
