package core

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"ndpbridge/internal/audit"
	"ndpbridge/internal/config"
	"ndpbridge/internal/fault"
	"ndpbridge/internal/task"
)

func TestAuditCleanRunAcrossDesigns(t *testing.T) {
	for _, d := range []config.Design{config.DesignC, config.DesignB, config.DesignW, config.DesignO, config.DesignR} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			sys, err := New(testCfg(d))
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.AttachAudit(512); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(&epochWave{epochs: 4}); err != nil {
				t.Fatalf("audited run failed: %v", err)
			}
			if sys.AuditChecks() == 0 {
				t.Error("auditor never ran a weak check")
			}
		})
	}
}

func TestAuditResultUnchanged(t *testing.T) {
	cfg := testCfg(config.DesignO)
	plain, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := plain.Run(&epochWave{epochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	audited, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := audited.AttachAudit(256); err != nil {
		t.Fatal(err)
	}
	r2, err := audited.Run(&epochWave{epochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("auditor perturbed the simulation result")
	}
}

func TestAuditCleanUnderFaults(t *testing.T) {
	sys, err := New(testCfg(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindDrop, Scope: fault.ScopeL1Gather, Prob: 0.05, Rank: -1, Unit: -1},
		{Kind: fault.KindDrop, Scope: fault.ScopeL1Scatter, Prob: 0.05, Rank: -1, Unit: -1},
	}}
	if err := sys.AttachFaults(plan, 7); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachAudit(512); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(&epochWave{epochs: 4}); err != nil {
		t.Fatalf("audited fault run failed: %v", err)
	}
}

// brokenApp corrupts the message accounting mid-run, which the weak
// conservation check must catch.
type brokenApp struct {
	sys *System
	fn  task.FuncID
}

func (b *brokenApp) Name() string { return "broken" }

func (b *brokenApp) Prepare(s *System) error {
	b.fn = s.Register("broken.hop", func(ctx task.Ctx, t task.Task) {
		ctx.Compute(100)
		if t.Args[0] == 3 {
			b.sys.msgsStagedTotal += 5 // the deliberate accounting bug
		}
		if t.Args[0] > 0 {
			next := (ctx.Unit() + 1) % s.Units()
			ctx.Enqueue(task.New(b.fn, t.TS, s.UnitBase(next)+128, 20, t.Args[0]-1))
		}
	})
	return nil
}

func (b *brokenApp) SeedEpoch(s *System, ts uint32) bool {
	if ts > 0 {
		return false
	}
	s.Seed(task.New(b.fn, 0, s.UnitBase(0)+128, 20, 200))
	return true
}

func TestAuditDetectsConservationBreach(t *testing.T) {
	sys, err := New(testCfg(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachAudit(64); err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(&brokenApp{sys: sys})
	if err == nil {
		t.Fatal("accounting breach not detected")
	}
	var ae *audit.Error
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *audit.Error", err)
	}
	found := false
	for _, v := range ae.Violations {
		if v.Rule == "msg-conservation" {
			found = true
		}
	}
	if !found {
		t.Errorf("no msg-conservation violation in %v", ae)
	}
}

func TestAuditWithCheckpointing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.ckpt")
	sys, err := New(testCfg(config.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachAudit(512); err != nil {
		t.Fatal(err)
	}
	sys.EnableCheckpoints(path, 1)
	if _, err := sys.Run(&epochWave{epochs: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
}
