package core

import (
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/task"
)

// stress drives heavy, skewed, cross-unit traffic with load balancing to
// exercise the migration machinery.
type stress struct {
	tasks  int
	chain  int
	fn     task.FuncID
	nUnits int
}

func (a *stress) Name() string { return "stress" }

func (a *stress) Prepare(s *System) error {
	a.nUnits = s.Units()
	a.fn = s.Register("stress.step", func(ctx task.Ctx, t task.Task) {
		ctx.Read(t.Addr, 64)
		ctx.Compute(120)
		hop, q := t.Args[0], t.Args[1]
		if hop > 0 {
			// Hash-hop across units, biased toward unit 0 to force
			// both communication and imbalance.
			next := int((q*2654435761 + hop*40503) % uint64(a.nUnits*2))
			if next >= a.nUnits {
				next = 0
			}
			addr := s.UnitBase(next) + (q%64)*s.Cfg().GXfer
			ctx.Enqueue(task.New(a.fn, t.TS, addr, 140, hop-1, q))
		}
	})
	return nil
}

func (a *stress) SeedEpoch(s *System, ts uint32) bool {
	if ts > 1 {
		return false
	}
	for q := 0; q < a.tasks; q++ {
		addr := s.UnitBase(q%s.Units()) + uint64(q%64)*s.Cfg().GXfer
		s.Seed(task.New(a.fn, ts, addr, 140, uint64(a.chain), uint64(q)))
	}
	return true
}

// TestCoherenceInvariantAfterStress checks the Section VI-B metadata
// invariants at quiescence, for every design with migration: every block is
// available at exactly one unit — home-and-not-lent, or exactly one
// borrower — and the bridge tables agree with the units.
func TestCoherenceInvariantAfterStress(t *testing.T) {
	for _, d := range []config.Design{config.DesignW, config.DesignO} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			cfg := testCfg(d)
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(&stress{tasks: 300, chain: 4}); err != nil {
				t.Fatal(err)
			}
			gx := cfg.GXfer
			// Collect every borrowed block and its holder.
			holders := make(map[uint64][]int)
			for _, u := range sys.units {
				for _, blk := range u.BorrowedBlocks() {
					holders[blk] = append(holders[blk], u.ID())
				}
			}
			for blk, hs := range holders {
				if len(hs) != 1 {
					t.Fatalf("block %#x held by %v", blk, hs)
				}
				home := sys.amap.Home(blk)
				if !sys.units[home].LentAt(blk) {
					t.Fatalf("block %#x held by %d but not marked lent at home %d", blk, hs[0], home)
				}
			}
			// Every lent home block must have a holder.
			for _, u := range sys.units {
				base := sys.amap.Base(u.ID())
				for off := uint64(0); off < 64*gx; off += gx {
					blk := base + off
					if u.LentAt(blk) && len(holders[blk]) == 0 {
						t.Fatalf("block %#x marked lent but held nowhere", blk)
					}
				}
			}
		})
	}
}

// TestDeterminism: identical configurations and seeds produce identical
// makespans and task counts, run to run.
func TestDeterminism(t *testing.T) {
	for _, d := range []config.Design{config.DesignC, config.DesignO, config.DesignH} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			var makespans []uint64
			var tasks []uint64
			for i := 0; i < 2; i++ {
				sys, err := New(testCfg(d))
				if err != nil {
					t.Fatal(err)
				}
				r, err := sys.Run(&stress{tasks: 200, chain: 3})
				if err != nil {
					t.Fatal(err)
				}
				makespans = append(makespans, r.Makespan)
				tasks = append(tasks, r.TasksExecuted)
			}
			if makespans[0] != makespans[1] || tasks[0] != tasks[1] {
				t.Errorf("nondeterministic: makespans %v, tasks %v", makespans, tasks)
			}
		})
	}
}

// TestSeedDependence: a different seed changes load-balancing decisions but
// never the work accomplished.
func TestSeedDependence(t *testing.T) {
	var tasks []uint64
	for _, seed := range []uint64{1, 99} {
		cfg := testCfg(config.DesignO)
		cfg.Seed = seed
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.Run(&stress{tasks: 200, chain: 3})
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, r.TasksExecuted)
	}
	if tasks[0] != tasks[1] {
		t.Errorf("task counts differ across seeds: %v", tasks)
	}
}

// nonLocalReader tries to read remote data directly — forbidden under
// data-local execution.
type nonLocalReader struct{ fn task.FuncID }

func (a *nonLocalReader) Name() string { return "nonlocal" }
func (a *nonLocalReader) Prepare(s *System) error {
	a.fn = s.Register("bad.read", func(ctx task.Ctx, t task.Task) {
		ctx.Read(s.UnitBase((ctx.Unit()+1)%s.Units()), 64) // remote!
	})
	return nil
}
func (a *nonLocalReader) SeedEpoch(s *System, ts uint32) bool {
	if ts > 0 {
		return false
	}
	s.Seed(task.New(a.fn, 0, s.UnitBase(0), 1))
	return true
}

func TestNonLocalAccessPanics(t *testing.T) {
	sys, err := New(testCfg(config.DesignB))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("remote direct access must panic (data-local execution)")
		}
	}()
	sys.Run(&nonLocalReader{})
}

// TestEnergyMonotonicity: more communication means more communication
// energy; design C must burn at least as much comm energy as B for a
// communication-heavy pattern.
func TestEnergyAccounting(t *testing.T) {
	run := func(d config.Design) *stress {
		return &stress{tasks: 200, chain: 4}
	}
	sysB, _ := New(testCfg(config.DesignB))
	rB, err := sysB.Run(run(config.DesignB))
	if err != nil {
		t.Fatal(err)
	}
	if rB.Energy.Total() <= 0 {
		t.Fatal("zero energy")
	}
	for _, c := range []float64{rB.Energy.CoreSRAM, rB.Energy.LocalDRAM, rB.Energy.CommDRAM, rB.Energy.Static} {
		if c < 0 {
			t.Fatal("negative energy component")
		}
	}
	if rB.Energy.CommDRAM == 0 {
		t.Error("cross-unit chains must consume communication energy")
	}
}
