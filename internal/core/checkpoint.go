package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/fault"
	"ndpbridge/internal/sim"
)

// Checkpointing model. The event queue holds closures and cannot be
// serialized, so snapshots are taken only at the bulk-sync barrier — the one
// point where the fabric is provably drained (no outstanding tasks of the
// epoch, no in-flight messages, empty retransmit windows) and the live state
// reduces to plain data: counters, queues, metadata tables, RNG positions.
//
// A checkpoint therefore records (a) everything needed to rebuild the run
// (config JSON, app name, fault plan + seed) and (b) the marker: the
// completed epoch, the engine position (cycle, event seq, processed count),
// and a digest over the full component state. Resume is deterministic
// replay-with-verification: the run is rebuilt and re-executed, and at the
// marker barrier the live state is compared against the checkpoint — a
// mismatch (version skew, non-determinism, corruption that survived the
// checksums) fails loudly instead of continuing from a wrong state.

// ErrInterrupted is returned by Run when a requested checkpoint was written
// at the next barrier and the run stopped early on purpose.
var ErrInterrupted = errors.New("core: run interrupted, checkpoint written")

// Section and metadata field layout of a checkpoint file.
const (
	sectionMeta  = "meta"
	sectionState = "state"
)

// Checkpoint is the decoded content of a checkpoint file.
//ndplint:domain(xfer)
type Checkpoint struct {
	App       string
	CfgJSON   []byte
	PlanJSON  []byte // empty = no fault plan
	FaultSeed uint64
	Epoch     uint32 // last completed epoch at snapshot time
	Cycle     uint64
	Seq       uint64
	Processed uint64
	Digest    uint64 // checkpoint.Digest over the state section
	State     []byte
}

// SnapshotState encodes the full component state: engine position, bulk-sync
// accounting, and every unit, bridge, and fault-injector boundary. Call at a
// barrier; elsewhere transient buffers make the encoding position-dependent.
func (s *System) SnapshotState() []byte {
	var e checkpoint.Enc
	s.snapshotInto(&e)
	return e.Data()
}

// snapshotInto encodes the full component state into e (see SnapshotState).
func (s *System) snapshotInto(e *checkpoint.Enc) {
	st := s.eng.SnapState()
	e.U64(st.Now)
	e.U64(st.Seq)
	e.U64(st.Processed)

	e.U32(s.epoch)
	e.U64(s.inflight)
	epochs := make([]uint32, 0, len(s.outstanding))
	for ts := range s.outstanding {
		epochs = append(epochs, ts)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	e.U32(uint32(len(epochs)))
	for _, ts := range epochs {
		e.U32(ts)
		e.U64(s.outstanding[ts])
	}
	e.U64(s.taskID)
	e.U64(s.tasksSpawnedTotal)
	e.U64(s.tasksDoneTotal)
	e.U64(s.msgsStagedTotal)
	e.U64(s.msgsDeliveredTotal)
	e.U64(s.progress)
	e.U64(s.fMsgsLost)
	e.U64(s.fTasksRespawned)
	e.U64(s.fBlocksRecovered)
	ids := make([]uint64, 0, len(s.respawned))
	for id := range s.respawned {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.U64(id)
	}
	e.U64(s.rng.State())

	e.U32(uint32(len(s.units)))
	for _, u := range s.units {
		u.SnapshotTo(e)
	}
	e.U32(uint32(len(s.bridges)))
	for _, b := range s.bridges {
		b.SnapshotTo(e)
	}
	e.Bool(s.l2 != nil)
	if s.l2 != nil {
		s.l2.SnapshotTo(e)
	}
	s.inj.SnapshotTo(e)
	// Serving state rides along only in serving mode, so closed-loop
	// snapshots and digests stay byte-identical.
	if s.serve != nil {
		s.serve.src.SnapshotTo(e)
	}
}

// StateDigest returns the FNV-64 digest of the full component state. The
// encode buffer is kept on the System and reused: the auditor digests the
// state repeatedly and the snapshots run to megabytes at full scale.
func (s *System) StateDigest() uint64 {
	e := checkpoint.NewEnc(s.digestBuf)
	s.snapshotInto(e)
	s.digestBuf = e.Data()
	return checkpoint.Digest(s.digestBuf)
}

// buildCheckpoint assembles the on-disk file for the current barrier.
func (s *System) buildCheckpoint() (*checkpoint.File, error) {
	cfgJSON, err := json.Marshal(s.cfg)
	if err != nil {
		return nil, fmt.Errorf("core: encode config: %w", err)
	}
	var planJSON []byte
	if s.injPlan != nil {
		planJSON, err = json.Marshal(s.injPlan)
		if err != nil {
			return nil, fmt.Errorf("core: encode fault plan: %w", err)
		}
	}
	state := s.SnapshotState()
	st := s.eng.SnapState()

	name := s.app.Name()
	if s.ckptApp != "" {
		name = s.ckptApp
	}
	var m checkpoint.Enc
	m.Str(name)
	m.Bytes(cfgJSON)
	m.Bytes(planJSON)
	m.U64(s.injSeed)
	m.U32(s.epoch)
	m.U64(st.Now)
	m.U64(st.Seq)
	m.U64(st.Processed)
	m.U64(checkpoint.Digest(state))

	f := checkpoint.New()
	f.Add(sectionMeta, m.Data())
	f.Add(sectionState, state)
	return f, nil
}

// WriteCheckpoint writes a crash-consistent snapshot of the current barrier
// state to path. Callers must be at a bulk-sync barrier (the epoch hook).
func (s *System) WriteCheckpoint(path string) error {
	f, err := s.buildCheckpoint()
	if err != nil {
		return err
	}
	return checkpoint.WriteFile(path, f)
}

// ReadCheckpoint loads and validates a checkpoint file. Corruption anywhere
// (header, either section, trailing bytes) is rejected by the checksums.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	f, err := checkpoint.ReadFile(path)
	if err != nil {
		return nil, err
	}
	meta, ok := f.Section(sectionMeta)
	if !ok {
		return nil, fmt.Errorf("core: checkpoint %s: missing %s section", path, sectionMeta)
	}
	state, ok := f.Section(sectionState)
	if !ok {
		return nil, fmt.Errorf("core: checkpoint %s: missing %s section", path, sectionState)
	}
	d := checkpoint.NewDec(meta)
	ck := &Checkpoint{
		App:       d.Str(),
		CfgJSON:   d.Bytes(),
		PlanJSON:  d.Bytes(),
		FaultSeed: d.U64(),
		Epoch:     d.U32(),
		Cycle:     d.U64(),
		Seq:       d.U64(),
		Processed: d.U64(),
		Digest:    d.U64(),
		State:     state,
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("core: checkpoint %s: %w", path, err)
	}
	if got := checkpoint.Digest(state); got != ck.Digest {
		return nil, fmt.Errorf("core: checkpoint %s: state digest %#x does not match recorded %#x", path, got, ck.Digest)
	}
	return ck, nil
}

// Plan decodes the checkpoint's fault plan, or nil when the run had none.
func (ck *Checkpoint) Plan() (*fault.Plan, error) {
	if len(ck.PlanJSON) == 0 {
		return nil, nil
	}
	return fault.Parse(ck.PlanJSON)
}

// addEpochHook appends fn to the barrier hook chain.
func (s *System) addEpochHook(fn func(completed uint32)) {
	prev := s.epochHook
	if prev == nil {
		s.epochHook = fn
		return
	}
	s.epochHook = func(c uint32) {
		prev(c)
		fn(c)
	}
}

// EnableCheckpoints arranges for a snapshot of the run to be written to path
// at the first bulk-sync barrier after every `every` cycles (0 = only on
// request). The file is replaced atomically, so a crash mid-write leaves the
// previous snapshot intact.
func (s *System) EnableCheckpoints(path string, every sim.Cycles) {
	s.ckptPath = path
	s.ckptEvery = every
	s.ckptNext = every
	s.addEpochHook(func(uint32) {
		now := s.eng.Now()
		requested := s.ckptReq.Load()
		if !requested && (s.ckptEvery == 0 || now < s.ckptNext) {
			return
		}
		if err := s.WriteCheckpoint(s.ckptPath); err != nil {
			s.ckptErr = err
			s.eng.Stop()
			return
		}
		s.ckptWritten++
		if s.ckptEvery != 0 {
			s.ckptNext = now + s.ckptEvery
		}
		if requested {
			s.interrupted = true
			s.eng.Stop()
		}
	})
}

// SetCheckpointApp overrides the application label recorded in checkpoint
// metadata (default: the app's Name). CLIs encode workload sizing in it so
// resume rebuilds the identical application.
func (s *System) SetCheckpointApp(label string) { s.ckptApp = label }

// RequestCheckpoint asks the run to write a checkpoint at the next barrier
// and stop. Safe to call from another goroutine (e.g. a signal handler);
// Run then returns ErrInterrupted.
func (s *System) RequestCheckpoint() { s.ckptReq.Store(true) }

// CheckpointsWritten reports how many snapshots the run has written.
func (s *System) CheckpointsWritten() int { return s.ckptWritten }

// VerifyResume arms replay verification against ck: when the run reaches the
// checkpoint's marker barrier, the engine position and the state digest must
// match the snapshot exactly; any divergence stops the run with a descriptive
// error from Run. The caller must have rebuilt the system from the
// checkpoint's config, app, and fault plan.
func (s *System) VerifyResume(ck *Checkpoint) {
	s.resumeCk = ck
	s.addEpochHook(func(completed uint32) {
		if s.resumeVerified || completed != ck.Epoch {
			return
		}
		st := s.eng.SnapState()
		if st.Now != ck.Cycle || st.Seq != ck.Seq || st.Processed != ck.Processed {
			s.resumeErr = fmt.Errorf("core: resume replay diverged at epoch %d: cycle %d/seq %d/processed %d, checkpoint has %d/%d/%d",
				completed, st.Now, st.Seq, st.Processed, ck.Cycle, ck.Seq, ck.Processed)
			s.eng.Stop()
			return
		}
		if got := s.StateDigest(); got != ck.Digest {
			s.resumeErr = fmt.Errorf("core: resume replay diverged at epoch %d: state digest %#x, checkpoint has %#x",
				completed, got, ck.Digest)
			s.eng.Stop()
			return
		}
		s.resumeVerified = true
	})
}

// ResumeVerified reports whether the replay reached and matched the
// checkpoint marker.
func (s *System) ResumeVerified() bool { return s.resumeVerified }
