package host

import (
	"ndpbridge/internal/config"
	"ndpbridge/internal/metrics"
	"ndpbridge/internal/ndpunit"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
	"ndpbridge/internal/trace"
)

// ExecEnv extends Env with the task runtime hooks the executor needs.
type ExecEnv interface {
	Env
	Registry() *task.Registry
	CurrentEpoch() uint32
	TaskSpawned(ts uint32)
	TaskDone(ts uint32)
	// NextTaskID returns a run-unique task identifier.
	NextTaskID() uint64
}

// Executor is the design-H baseline: the host CPU alone runs the task-based
// application. Its out-of-order cores are modeled as a per-cycle speedup
// factor over the wimpy NDP cores; all cores share one task pool (free work
// stealing in shared memory), a last-level cache, and the two DDR channels
// for memory traffic.
type Executor struct {
	env ExecEnv
	// eng/cfg cache env.Engine()/env.Cfg() — both stable for the system's
	// lifetime — so hot paths skip the interface dispatch.
	eng   *sim.Engine    //ndplint:nosnap cached wiring, set at construction
	cfg   *config.Config //ndplint:nosnap cached wiring, set at construction
	cores int
	busy  []bool
	queue *task.Queue
	llc   *ndpunit.Cache
	links []*sim.Link

	busyCycles []uint64
	tasks      []uint64
	spawned    uint64

	// Reused hot-path scratch: per-core execution contexts and pre-bound
	// completion callbacks (one task in flight per core), plus the shared
	// kick callback child-task enqueues schedule.
	ctxs    []hostCtx
	curTS   []uint32
	doneFns []func()
	kickFn  func()

	// rng is per-executor so concurrent simulations never share a stream:
	// each run draws the same deterministic sequence regardless of what
	// other Systems in the process are doing.
	rng *sim.RNG

	// Instruments, bound by BindMetrics; nil no-ops when metrics are off.
	// The names match the NDP units' so design-H runs populate the same
	// latency histograms the rest of the stack does.
	mTaskLat  *metrics.Histogram
	mTaskExec *metrics.Histogram
}

// BindMetrics attaches the executor's instruments to reg.
func (e *Executor) BindMetrics(reg *metrics.Registry) {
	e.mTaskLat = reg.Histogram("task_latency_cycles")
	e.mTaskExec = reg.Histogram("task_exec_cycles")
}

// QueueLen returns the number of tasks waiting in the shared pool, for the
// ready-queue depth gauge.
func (e *Executor) QueueLen() int { return e.queue.Len() }

// NewExecutor builds the host execution runtime.
func NewExecutor(env ExecEnv) *Executor {
	cfg := env.Cfg()
	bw := cfg.Host.RandomAccessBW
	if bw == 0 {
		bw = cfg.Timing.ChannelBytesPerCycle
	}
	links := make([]*sim.Link, cfg.Geometry.Channels)
	for i := range links {
		links[i] = sim.NewLink("host-channel", bw, 4)
	}
	// Round the LLC down so its set count is a power of two.
	llcBytes := uint64(64 * 16)
	for llcBytes*2 <= cfg.Host.LLCBytes {
		llcBytes *= 2
	}
	e := &Executor{
		env:        env,
		eng:        env.Engine(),
		cfg:        cfg,
		cores:      cfg.Host.Cores,
		busy:       make([]bool, cfg.Host.Cores),
		queue:      task.NewQueue(),
		llc:        ndpunit.NewCache(int(llcBytes), 16, 64),
		links:      links,
		busyCycles: make([]uint64, cfg.Host.Cores),
		tasks:      make([]uint64, cfg.Host.Cores),
		rng:        sim.NewRNG(0x415e),
	}
	e.ctxs = make([]hostCtx, cfg.Host.Cores)
	e.curTS = make([]uint32, cfg.Host.Cores)
	e.doneFns = make([]func(), cfg.Host.Cores)
	for c := 0; c < cfg.Host.Cores; c++ {
		c := c
		e.doneFns[c] = func() { e.taskDone(c) }
	}
	e.kickFn = e.Kick
	return e
}

// Links exposes the channel links for traffic accounting.
func (e *Executor) Links() []*sim.Link { return e.links }

// BusyCycles returns per-core busy cycles.
func (e *Executor) BusyCycles() []uint64 { return e.busyCycles }

// TasksRun returns per-core executed task counts.
func (e *Executor) TasksRun() []uint64 { return e.tasks }

// Seed inserts an initial task.
func (e *Executor) Seed(t task.Task) {
	e.env.TaskSpawned(t.TS)
	e.spawned++
	if t.ID == 0 {
		t.ID = e.env.NextTaskID()
	}
	t.SpawnedAt = e.eng.Now()
	e.queue.Push(t)
}

// Kick wakes all idle cores.
func (e *Executor) Kick() {
	for c := 0; c < e.cores; c++ {
		e.tryStart(c)
	}
}

// Pending reports whether runnable or future tasks remain queued.
func (e *Executor) Pending() bool { return e.queue.Len() > 0 }

func (e *Executor) tryStart(c int) {
	if e.busy[c] {
		return
	}
	t, ok := e.queue.Pop(e.env.CurrentEpoch())
	if !ok {
		return
	}
	e.busy[c] = true
	eng := e.eng
	now := eng.Now()
	// A freed core can pop a task slightly before its logical spawn cursor
	// (the queue is shared); clamp those to zero queueing latency.
	lat := uint64(0)
	if now > t.SpawnedAt {
		lat = now - t.SpawnedAt
	}
	e.mTaskLat.Observe(lat)
	rec := e.env.Trace()
	var execSpan uint32
	if rec.FlowsEnabled() {
		flow, enq := rec.TaskOrigin(t.Span, t.ID, t.SpawnedAt)
		q := rec.Span(flow, t.Span, trace.SpanQueued, trace.CatTaskQueue, c, enq, uint64(now))
		execSpan = rec.OpenSpan(flow, q, trace.SpanExec, trace.CatBankBusy, c, uint64(now))
	}
	e.ctxs[c] = hostCtx{e: e, start: now, cursor: now + e.cfg.Host.DispatchCost, span: execSpan}
	e.env.Registry().Handler(t.Func)(&e.ctxs[c], t)
	end := e.ctxs[c].cursor
	if end <= now {
		end = now + 1
	}
	rec.CloseSpan(execSpan, uint64(end))
	e.mTaskExec.Observe(end - now)
	e.busyCycles[c] += end - now
	e.tasks[c]++
	rec.Record(trace.KindTask, c, uint64(now), uint64(end), e.env.Registry().Name(t.Func))
	e.curTS[c] = t.TS
	eng.At(end, e.doneFns[c])
}

// taskDone is core c's task-completion event body.
func (e *Executor) taskDone(c int) {
	e.busy[c] = false
	e.env.TaskDone(e.curTS[c])
	e.tryStart(c)
}

// hostCtx implements task.Ctx for host execution. Computation is scaled by
// the host's clock and IPC advantage; memory accesses hit the shared LLC or
// cross the DDR channel of the address's home bank.
type hostCtx struct {
	e      *Executor
	start  sim.Cycles
	cursor sim.Cycles
	// span is the running task's (open) execution span, which children
	// reference as their causal parent (see execCtx in ndpunit). Zero when
	// flow tracing is off.
	span uint32
}

var (
	_ task.Ctx    = (*hostCtx)(nil)
	_ task.EndCtx = (*hostCtx)(nil)
)

func (c *hostCtx) Unit() int          { return -1 }
func (c *hostCtx) Now() sim.Cycles    { return c.start }
func (c *hostCtx) Cursor() sim.Cycles { return c.cursor }
func (c *hostCtx) Rand() *sim.RNG     { return c.e.rng }

func (c *hostCtx) Compute(cycles sim.Cycles) {
	f := c.e.cfg.Host.IPCFactor
	if f <= 0 {
		f = 1
	}
	d := sim.Cycles(float64(cycles) / f)
	if d == 0 {
		d = 1
	}
	c.cursor += d
}

func (c *hostCtx) access(addr, n uint64) {
	if n == 0 {
		return
	}
	cfg := c.e.cfg
	hits, misses := c.e.llc.AccessRange(addr, n)
	c.cursor += sim.Cycles(hits) // LLC hit ≈ one NDP-core cycle
	if misses > 0 {
		amap := c.e.env.Map()
		ch := amap.ChannelOfRank(amap.RankOfAddr(addr))
		bytes := uint64(misses) * c.e.llc.LineBytes()
		end := c.e.links[ch].Reserve(c.cursor, bytes)
		// DRAM array latency on top of the channel occupancy.
		c.cursor = end + cfg.Timing.TRCD + cfg.Timing.TCAS
	}
}

func (c *hostCtx) Read(addr, n uint64)  { c.access(addr, n) }
func (c *hostCtx) Write(addr, n uint64) { c.access(addr, n) }

func (c *hostCtx) Enqueue(t task.Task) {
	// Shared memory: every child task is locally runnable.
	c.e.env.TaskSpawned(t.TS)
	c.e.spawned++
	if t.ID == 0 {
		t.ID = c.e.env.NextTaskID()
	}
	t.SpawnedAt = c.cursor
	t.Span = c.span
	c.e.queue.Push(t)
	// Wake an idle core at the task's earliest start.
	c.e.eng.At(c.cursor, c.e.kickFn)
}

// Spawned returns the number of child tasks created on the host.
func (e *Executor) Spawned() uint64 { return e.spawned }
