package host

import (
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/dram"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/ndpunit"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
	"ndpbridge/internal/trace"
)

type testEnv struct {
	eng      *sim.Engine
	cfg      config.Config
	amap     *dram.AddrMap
	reg      *task.Registry
	epoch    uint32
	spawned  int
	done     int
	inflight int
	taskID   uint64
}

func newTestEnv(d config.Design) *testEnv {
	cfg := config.Default().WithDesign(d)
	cfg.Geometry = config.Geometry{
		Channels: 2, RanksPerChannel: 1, ChipsPerRank: 2, BanksPerChip: 2,
		BankBytes: 8 << 20,
	}
	return &testEnv{
		eng:  sim.NewEngine(),
		cfg:  cfg,
		amap: dram.NewAddrMap(cfg.Geometry),
		reg:  task.NewRegistry(),
	}
}

func (e *testEnv) Engine() *sim.Engine      { return e.eng }
func (e *testEnv) Cfg() *config.Config      { return &e.cfg }
func (e *testEnv) Map() *dram.AddrMap       { return e.amap }
func (e *testEnv) Registry() *task.Registry { return e.reg }
func (e *testEnv) CurrentEpoch() uint32     { return e.epoch }
func (e *testEnv) TaskSpawned(uint32)       { e.spawned++ }
func (e *testEnv) NextTaskID() uint64       { e.taskID++; return e.taskID }
func (e *testEnv) TaskDone(uint32)          { e.done++ }
func (e *testEnv) MsgStaged()               { e.inflight++ }
func (e *testEnv) MsgDelivered()            { e.inflight-- }
func (e *testEnv) Trace() *trace.Recorder   { return nil }
func (e *testEnv) MsgPool() *msg.Pool        { return nil }

func TestForwarderDeliversAcrossChannels(t *testing.T) {
	env := newTestEnv(config.DesignC)
	ran := 0
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ran++; ctx.Compute(5) })
	units := make([]*ndpunit.Unit, env.cfg.Geometry.Units())
	rng := sim.NewRNG(1)
	for i := range units {
		units[i] = ndpunit.New(i, env, rng.Split())
	}
	f := NewForwarder(env, units)
	f.Start()

	// Unit 0 (channel 0) sends to unit 7 (channel 1).
	dst := env.amap.Base(7) + 64
	var spawner task.FuncID
	spawner = env.reg.Register("s", func(ctx task.Ctx, tk task.Task) {
		ctx.Enqueue(task.New(fn, 0, dst, 10))
	})
	units[0].SeedTask(task.New(spawner, 0, env.amap.Base(0)+64, 10))
	units[0].Kick()
	env.eng.RunUntil(50_000)

	if ran != 1 {
		t.Fatalf("cross-channel task not delivered")
	}
	st := f.Stats()
	if st.Messages != 1 || st.GatherBatches == 0 {
		t.Errorf("stats wrong: %+v", st)
	}
	// Both channels carried traffic (gather on 0, forward on 1).
	var total uint64
	for _, l := range f.Links() {
		b, _, _ := l.Stats()
		total += b
	}
	if total == 0 {
		t.Error("no channel traffic recorded")
	}
}

func TestForwarderPollTax(t *testing.T) {
	// Even with no messages, an active system makes the host poll, and
	// polls consume channel bandwidth.
	env := newTestEnv(config.DesignC)
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ctx.Compute(30_000) })
	units := make([]*ndpunit.Unit, env.cfg.Geometry.Units())
	rng := sim.NewRNG(1)
	for i := range units {
		units[i] = ndpunit.New(i, env, rng.Split())
	}
	f := NewForwarder(env, units)
	f.Start()
	units[0].SeedTask(task.New(fn, 0, env.amap.Base(0)+64, 1))
	units[0].Kick()
	env.eng.RunUntil(20_000)

	bytes, _, _ := f.Links()[0].Stats()
	if bytes == 0 {
		t.Error("idle polling should consume channel bandwidth")
	}
}

func TestExecutorRunsTasksInParallel(t *testing.T) {
	env := newTestEnv(config.DesignH)
	e := NewExecutor(env)
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) {
		ctx.Read(tk.Addr, 64)
		ctx.Compute(1000)
	})
	const n = 64
	for i := 0; i < n; i++ {
		e.Seed(task.New(fn, 0, uint64(i)*4096, 1000))
	}
	e.Kick()
	env.eng.RunUntil(1_000_000)

	if env.done != n {
		t.Fatalf("done = %d, want %d", env.done, n)
	}
	// Work must be spread across multiple cores.
	cores := 0
	var total uint64
	for _, c := range e.TasksRun() {
		if c > 0 {
			cores++
		}
		total += c
	}
	if cores < 2 {
		t.Errorf("only %d cores used", cores)
	}
	if total != n {
		t.Errorf("core task counts sum to %d", total)
	}
	if e.Spawned() != n {
		t.Errorf("Spawned = %d", e.Spawned())
	}
}

func TestExecutorComputeScaling(t *testing.T) {
	env := newTestEnv(config.DesignH)
	e := NewExecutor(env)
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ctx.Compute(8000) })
	e.Seed(task.New(fn, 0, 0, 1))
	e.Kick()
	env.eng.RunUntil(1_000_000)
	busy := e.BusyCycles()[0]
	// 8000 NDP cycles at IPCFactor 6.5 ≈ 1230 host-scaled cycles plus
	// dispatch; the in-order-equivalent 8000 would indicate no scaling.
	if busy >= 8000 {
		t.Errorf("host compute not scaled: busy=%d", busy)
	}
	if busy < 1000 {
		t.Errorf("host compute scaled too aggressively: busy=%d", busy)
	}
}

func TestExecutorChildTasksRunLocally(t *testing.T) {
	env := newTestEnv(config.DesignH)
	e := NewExecutor(env)
	ran := 0
	var fn task.FuncID
	fn = env.reg.Register("f", func(ctx task.Ctx, tk task.Task) {
		ran++
		if tk.Args[0] > 0 {
			ctx.Enqueue(task.New(fn, 0, tk.Addr+64, 10, tk.Args[0]-1))
		}
	})
	e.Seed(task.New(fn, 0, 0, 10, 5))
	e.Kick()
	env.eng.RunUntil(1_000_000)
	if ran != 6 {
		t.Errorf("ran %d tasks, want 6", ran)
	}
}

// Ensure message routing safety net: a forwarded message with a negative
// destination is routed home instead of dropped.
func TestForwarderRoutesByHomeFallback(t *testing.T) {
	env := newTestEnv(config.DesignC)
	ran := 0
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ran++ })
	units := make([]*ndpunit.Unit, env.cfg.Geometry.Units())
	rng := sim.NewRNG(1)
	for i := range units {
		units[i] = ndpunit.New(i, env, rng.Split())
	}
	f := NewForwarder(env, units)
	env.TaskSpawned(0)
	env.MsgStaged()
	m := msg.NewTask(0, -1, task.New(fn, 0, env.amap.Base(2)+64, 1))
	f.forward(m)
	env.eng.RunUntil(10_000)
	if ran != 1 {
		t.Error("fallback routing failed")
	}
}
