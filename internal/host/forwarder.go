// Package host models the host CPU's two roles in the baseline designs:
// forwarding cross-unit messages over the DDR channels (design C, and the
// cross-chip path of design R), and executing the task-based applications
// itself in the non-NDP baseline (design H).
package host

import (
	"ndpbridge/internal/config"
	"ndpbridge/internal/dram"
	"ndpbridge/internal/metrics"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/ndpunit"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/trace"
)

// Env provides global services (a subset of the system orchestrator).
type Env interface {
	Engine() *sim.Engine
	Cfg() *config.Config
	Map() *dram.AddrMap
	// Trace returns the activity recorder, or nil when tracing is off.
	Trace() *trace.Recorder
}

// ForwarderStats counts host-forwarding activity.
type ForwarderStats struct {
	GatherBatches uint64
	Messages      uint64
	Bytes         uint64
}

// Forwarder is the design-C communication path: the host CPU periodically
// reads each unit's mailbox over the unit's memory channel, examines the
// messages in software, and writes them to their destination units. Every
// hop crosses the bandwidth-limited channels and pays a fixed software
// overhead per batch (Section II-C).
type Forwarder struct {
	env Env
	// eng/cfg cache env.Engine()/env.Cfg() — both stable for the system's
	// lifetime — so hot paths skip the interface dispatch.
	eng   *sim.Engine    //ndplint:nosnap cached wiring, set at construction
	cfg   *config.Config //ndplint:nosnap cached wiring, set at construction
	units []*ndpunit.Unit
	links []*sim.Link // per channel

	running  []bool
	cursor   []int // round-robin position per channel
	inflight int   // messages the host has read but not yet written back
	chanOf   []int // channel of each unit, precomputed from the address map

	// Per-channel pre-bound callbacks and reused buffers. batch holds the
	// one in-flight gather batch per channel; pend is the FIFO of reserved
	// per-message deliveries, drained one engine event at a time under each
	// entry's reserved (cycle, seq) so execution order is identical to
	// scheduling every delivery eagerly.
	sweepFn  func()
	stepFns  []func()
	batchFns []func()
	pendFns  []func()
	batch    [][]*msg.Message
	pend     [][]fwdPend
	pendHead []int

	st ForwarderStats

	// Instruments, bound by BindMetrics; nil no-ops when metrics are off.
	mBatchBytes *metrics.Histogram // bytes per forwarding batch
	mBatchMsgs  *metrics.Histogram // messages per forwarding batch
}

// BindMetrics attaches the forwarder's instruments to reg.
func (f *Forwarder) BindMetrics(reg *metrics.Registry) {
	f.mBatchBytes = reg.Histogram("host_batch_bytes")
	f.mBatchMsgs = reg.Histogram("host_batch_msgs")
}

// NewForwarder builds the host forwarding runtime over all units.
func NewForwarder(env Env, units []*ndpunit.Unit) *Forwarder {
	cfg := env.Cfg()
	links := make([]*sim.Link, cfg.Geometry.Channels)
	for i := range links {
		links[i] = sim.NewLink("host-channel", cfg.Timing.ChannelBytesPerCycle, 4)
	}
	f := &Forwarder{
		env:     env,
		eng:     env.Engine(),
		cfg:     cfg,
		units:   units,
		links:   links,
		running: make([]bool, cfg.Geometry.Channels),
		cursor:  make([]int, cfg.Geometry.Channels),
	}
	f.chanOf = make([]int, len(units))
	for i := range units {
		f.chanOf[i] = env.Map().ChannelOfRank(env.Map().GlobalRank(i))
	}
	n := cfg.Geometry.Channels
	f.sweepFn = f.sweep
	f.stepFns = make([]func(), n)
	f.batchFns = make([]func(), n)
	f.pendFns = make([]func(), n)
	f.batch = make([][]*msg.Message, n)
	f.pend = make([][]fwdPend, n)
	f.pendHead = make([]int, n)
	for ch := 0; ch < n; ch++ {
		ch := ch
		f.stepFns[ch] = func() { f.step(ch) }
		f.batchFns[ch] = func() { f.finishBatch(ch) }
		f.pendFns[ch] = func() { f.deliverNext(ch) }
	}
	return f
}

// fwdPend is one reserved channel delivery awaiting its link completion.
type fwdPend struct {
	at  sim.Cycles
	seq uint64
	u   *ndpunit.Unit
	m   *msg.Message
}

// Stats returns forwarding counters.
func (f *Forwarder) Stats() ForwarderStats { return f.st }

// Links exposes the channel links for traffic accounting.
func (f *Forwarder) Links() []*sim.Link { return f.links }

// Start begins the periodic mailbox polling.
func (f *Forwarder) Start() {
	f.eng.After(f.cfg.IState, f.sweepFn)
}

func (f *Forwarder) sweep() {
	for ch := range f.running {
		f.ensureLoop(ch)
	}
	f.eng.After(f.cfg.IState, f.sweepFn)
}

func (f *Forwarder) ensureLoop(ch int) {
	if f.running[ch] {
		return
	}
	if f.nextUnit(ch) < 0 && !f.anyBacklog(ch) {
		return
	}
	f.running[ch] = true
	f.eng.After(0, f.stepFns[ch])
}

// channelOf returns the channel unit u sits on.
func (f *Forwarder) channelOf(u int) int { return f.chanOf[u] }

// nextUnit finds the next unit on ch with pending mailbox bytes.
func (f *Forwarder) nextUnit(ch int) int {
	n := len(f.units)
	for i := 0; i < n; i++ {
		idx := (f.cursor[ch] + i) % n
		if f.channelOf(idx) != ch {
			continue
		}
		if f.units[idx].MailboxUsed() > 0 {
			f.cursor[ch] = (idx + 1) % n
			return idx
		}
	}
	return -1
}

// stateProbeBytes is the per-unit status read the host issues to learn
// whether a unit's mailbox holds messages (8 B: one chip-parallel burst
// covers a rank's same-index banks). Polling every unit over the channel is
// the tax that makes host forwarding scale poorly with the unit count
// (Section II-C).
const stateProbeBytes = 8

// step performs one channel sweep: the host polls every unit's status over
// the channel, drains the non-empty mailboxes, and forwards the messages as
// one software batch.
func (f *Forwarder) step(ch int) {
	cfg := f.cfg
	eng := f.eng
	now := eng.Now()

	ms := f.batch[ch][:0]
	var bytes uint64
	polled := 0
	for i, u := range f.units {
		if f.channelOf(i) != ch {
			continue
		}
		polled++
		if u.MailboxUsed() == 0 {
			continue
		}
		got, _ := u.DrainMailbox(cfg.Timing.HostBatchBytes)
		for _, m := range got {
			bytes += m.Size()
		}
		ms = append(ms, got...)
	}
	if len(ms) == 0 {
		if f.inflight > 0 || f.anyBacklog(ch) {
			// Idle polls still burn channel bandwidth.
			f.links[ch].Reserve(now, uint64(polled)*stateProbeBytes)
			f.st.Bytes += uint64(polled) * stateProbeBytes
			eng.After(cfg.IMin(), f.stepFns[ch])
			return
		}
		f.running[ch] = false
		return
	}
	// The sweep reads one status word per unit plus the drained bytes.
	total := bytes + uint64(polled)*stateProbeBytes
	end := f.links[ch].Reserve(now, total) + cfg.Timing.HostForwardOverhead
	f.st.GatherBatches++
	f.st.Messages += uint64(len(ms))
	f.st.Bytes += total
	f.mBatchBytes.Observe(bytes)
	f.mBatchMsgs.Observe(uint64(len(ms)))
	// Actor -1: host batches are system-level, not tied to one unit.
	f.env.Trace().Record(trace.KindGather, -1, now, end, "host-forward")
	f.inflight += len(ms)
	f.batch[ch] = ms
	eng.At(end, f.batchFns[ch])
}

// finishBatch forwards one completed gather batch and continues the sweep.
//
//ndplint:hotpath
func (f *Forwarder) finishBatch(ch int) {
	ms := f.batch[ch]
	for _, m := range ms {
		f.forward(m)
	}
	for i := range ms {
		ms[i] = nil
	}
	f.batch[ch] = ms[:0]
	f.step(ch)
}

// anyBacklog reports whether any unit on ch still has work.
func (f *Forwarder) anyBacklog(ch int) bool {
	for i, u := range f.units {
		if f.channelOf(i) == ch && u.HasBacklog() {
			return true
		}
	}
	return false
}

// forward writes one message to its destination unit over that unit's
// channel.
func (f *Forwarder) forward(m *msg.Message) {
	eng := f.eng
	dst := m.Dst
	if dst < 0 || dst >= len(f.units) || f.units[dst].Dead() {
		// No load balancing in designs C/R: scheduled-out messages
		// cannot exist. Route by home as a safety net — which also
		// re-homes messages bound for a killed unit.
		if a, ok := m.RouteAddr(); ok {
			dst = f.env.Map().Home(a)
			m.Dst = dst
		} else {
			return
		}
	}
	ch := f.chanOf[dst]
	end := f.links[ch].Reserve(eng.Now(), m.Size())
	f.st.Bytes += m.Size()
	u := f.units[dst]
	// Reserve the engine sequence now but keep one event in flight per
	// channel: link reservations complete in FIFO order, and scheduling
	// the successor under its reserved (cycle, seq) reproduces the exact
	// execution order of eagerly scheduling every delivery.
	seq := eng.ReserveSeq()
	f.pend[ch] = append(f.pend[ch], fwdPend{at: end, seq: seq, u: u, m: m})
	if len(f.pend[ch])-f.pendHead[ch] == 1 {
		eng.AtSeq(end, seq, f.pendFns[ch])
	}
}

// deliverNext commits the head pending delivery of one channel and arms the
// next one.
//
//ndplint:hotpath
func (f *Forwarder) deliverNext(ch int) {
	p := f.pend[ch][f.pendHead[ch]]
	f.pend[ch][f.pendHead[ch]] = fwdPend{}
	f.pendHead[ch]++
	f.inflight--
	p.u.Deliver(p.m)
	if f.pendHead[ch] < len(f.pend[ch]) {
		n := f.pend[ch][f.pendHead[ch]]
		f.eng.AtSeq(n.at, n.seq, f.pendFns[ch])
		if f.pendHead[ch] > 64 && f.pendHead[ch]*2 >= len(f.pend[ch]) {
			k := copy(f.pend[ch], f.pend[ch][f.pendHead[ch]:])
			for i := k; i < len(f.pend[ch]); i++ {
				f.pend[ch][i] = fwdPend{}
			}
			f.pend[ch] = f.pend[ch][:k]
			f.pendHead[ch] = 0
		}
		return
	}
	f.pend[ch] = f.pend[ch][:0]
	f.pendHead[ch] = 0
}
