// Package host models the host CPU's two roles in the baseline designs:
// forwarding cross-unit messages over the DDR channels (design C, and the
// cross-chip path of design R), and executing the task-based applications
// itself in the non-NDP baseline (design H).
package host

import (
	"ndpbridge/internal/config"
	"ndpbridge/internal/dram"
	"ndpbridge/internal/metrics"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/ndpunit"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/trace"
)

// Env provides global services (a subset of the system orchestrator).
type Env interface {
	Engine() *sim.Engine
	Cfg() *config.Config
	Map() *dram.AddrMap
	// Trace returns the activity recorder, or nil when tracing is off.
	Trace() *trace.Recorder
}

// ForwarderStats counts host-forwarding activity.
type ForwarderStats struct {
	GatherBatches uint64
	Messages      uint64
	Bytes         uint64
}

// Forwarder is the design-C communication path: the host CPU periodically
// reads each unit's mailbox over the unit's memory channel, examines the
// messages in software, and writes them to their destination units. Every
// hop crosses the bandwidth-limited channels and pays a fixed software
// overhead per batch (Section II-C).
type Forwarder struct {
	env   Env
	units []*ndpunit.Unit
	links []*sim.Link // per channel

	running  []bool
	cursor   []int // round-robin position per channel
	inflight int   // messages the host has read but not yet written back

	st ForwarderStats

	// Instruments, bound by BindMetrics; nil no-ops when metrics are off.
	mBatchBytes *metrics.Histogram // bytes per forwarding batch
	mBatchMsgs  *metrics.Histogram // messages per forwarding batch
}

// BindMetrics attaches the forwarder's instruments to reg.
func (f *Forwarder) BindMetrics(reg *metrics.Registry) {
	f.mBatchBytes = reg.Histogram("host_batch_bytes")
	f.mBatchMsgs = reg.Histogram("host_batch_msgs")
}

// NewForwarder builds the host forwarding runtime over all units.
func NewForwarder(env Env, units []*ndpunit.Unit) *Forwarder {
	cfg := env.Cfg()
	links := make([]*sim.Link, cfg.Geometry.Channels)
	for i := range links {
		links[i] = sim.NewLink("host-channel", cfg.Timing.ChannelBytesPerCycle, 4)
	}
	return &Forwarder{
		env:     env,
		units:   units,
		links:   links,
		running: make([]bool, cfg.Geometry.Channels),
		cursor:  make([]int, cfg.Geometry.Channels),
	}
}

// Stats returns forwarding counters.
func (f *Forwarder) Stats() ForwarderStats { return f.st }

// Links exposes the channel links for traffic accounting.
func (f *Forwarder) Links() []*sim.Link { return f.links }

// Start begins the periodic mailbox polling.
func (f *Forwarder) Start() {
	f.env.Engine().After(f.env.Cfg().IState, f.sweep)
}

func (f *Forwarder) sweep() {
	for ch := range f.running {
		f.ensureLoop(ch)
	}
	f.env.Engine().After(f.env.Cfg().IState, f.sweep)
}

func (f *Forwarder) ensureLoop(ch int) {
	if f.running[ch] {
		return
	}
	if f.nextUnit(ch) < 0 && !f.anyBacklog(ch) {
		return
	}
	f.running[ch] = true
	f.env.Engine().After(0, func() { f.step(ch) })
}

// unitsOn reports whether unit u sits on channel ch.
func (f *Forwarder) channelOf(u int) int {
	return f.env.Map().ChannelOfRank(f.env.Map().GlobalRank(u))
}

// nextUnit finds the next unit on ch with pending mailbox bytes.
func (f *Forwarder) nextUnit(ch int) int {
	n := len(f.units)
	for i := 0; i < n; i++ {
		idx := (f.cursor[ch] + i) % n
		if f.channelOf(idx) != ch {
			continue
		}
		if f.units[idx].MailboxUsed() > 0 {
			f.cursor[ch] = (idx + 1) % n
			return idx
		}
	}
	return -1
}

// stateProbeBytes is the per-unit status read the host issues to learn
// whether a unit's mailbox holds messages (8 B: one chip-parallel burst
// covers a rank's same-index banks). Polling every unit over the channel is
// the tax that makes host forwarding scale poorly with the unit count
// (Section II-C).
const stateProbeBytes = 8

// step performs one channel sweep: the host polls every unit's status over
// the channel, drains the non-empty mailboxes, and forwards the messages as
// one software batch.
func (f *Forwarder) step(ch int) {
	cfg := f.env.Cfg()
	eng := f.env.Engine()
	now := eng.Now()

	var ms []*msg.Message
	var bytes uint64
	polled := 0
	for i, u := range f.units {
		if f.channelOf(i) != ch {
			continue
		}
		polled++
		if u.MailboxUsed() == 0 {
			continue
		}
		got, _ := u.DrainMailbox(cfg.Timing.HostBatchBytes)
		for _, m := range got {
			bytes += m.Size()
		}
		ms = append(ms, got...)
	}
	if len(ms) == 0 {
		if f.inflight > 0 || f.anyBacklog(ch) {
			// Idle polls still burn channel bandwidth.
			f.links[ch].Reserve(now, uint64(polled)*stateProbeBytes)
			f.st.Bytes += uint64(polled) * stateProbeBytes
			eng.After(cfg.IMin(), func() { f.step(ch) })
			return
		}
		f.running[ch] = false
		return
	}
	// The sweep reads one status word per unit plus the drained bytes.
	total := bytes + uint64(polled)*stateProbeBytes
	end := f.links[ch].Reserve(now, total) + cfg.Timing.HostForwardOverhead
	f.st.GatherBatches++
	f.st.Messages += uint64(len(ms))
	f.st.Bytes += total
	f.mBatchBytes.Observe(bytes)
	f.mBatchMsgs.Observe(uint64(len(ms)))
	// Actor -1: host batches are system-level, not tied to one unit.
	f.env.Trace().Record(trace.KindGather, -1, now, end, "host-forward")
	f.inflight += len(ms)
	eng.At(end, func() {
		for _, m := range ms {
			f.forward(m)
		}
		f.step(ch)
	})
}

// anyBacklog reports whether any unit on ch still has work.
func (f *Forwarder) anyBacklog(ch int) bool {
	for i, u := range f.units {
		if f.channelOf(i) == ch && u.HasBacklog() {
			return true
		}
	}
	return false
}

// forward writes one message to its destination unit over that unit's
// channel.
func (f *Forwarder) forward(m *msg.Message) {
	eng := f.env.Engine()
	dst := m.Dst
	if dst < 0 || dst >= len(f.units) || f.units[dst].Dead() {
		// No load balancing in designs C/R: scheduled-out messages
		// cannot exist. Route by home as a safety net — which also
		// re-homes messages bound for a killed unit.
		if a, ok := m.RouteAddr(); ok {
			dst = f.env.Map().Home(a)
			m.Dst = dst
		} else {
			return
		}
	}
	ch := f.channelOf(dst)
	end := f.links[ch].Reserve(eng.Now(), m.Size())
	f.st.Bytes += m.Size()
	u := f.units[dst]
	eng.At(end, func() {
		f.inflight--
		u.Deliver(m)
	})
}
