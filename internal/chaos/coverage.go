package chaos

import (
	"encoding/hex"
	"math/bits"

	"ndpbridge/internal/stats"
)

// The coverage signal is deliberately cheap: a fixed-order vector of
// log2-bucketed counters from the run's fault/recovery statistics, plus the
// verdict class and a makespan-dilation bucket. Two runs with the same
// signature exercised the machinery "the same amount at the same order of
// magnitude"; a new signature means the plan reached behavior no corpus
// entry reached — retries where there were none, a first quarantine, a
// watchdog trip, an order-of-magnitude more duplicate filtering — and
// becomes a mutation parent (AFL's insight, ported to simulation counters).

// covDims is the coverage vector length: verdict, makespan bucket, watchdog
// flag, 7 injection counters, 6 recovery counters.
const covDims = 16

// bucket compresses a counter to its order of magnitude.
func bucket(x uint64) byte { return byte(bits.Len64(x)) }

// signature renders the coverage vector of one evaluation. r may be nil
// (the run returned no result); the verdict still contributes, so distinct
// failure classes occupy distinct corpus niches.
func signature(v Verdict, r *stats.Result, baseMakespan uint64) string {
	var vec [covDims]byte
	vec[0] = byte(v)
	if r != nil {
		// Makespan dilation relative to the fault-free baseline, in
		// quarter-doublings: how much the plan actually slowed the run.
		if baseMakespan > 0 {
			vec[1] = bucket(r.Makespan * 4 / baseMakespan)
		}
		if f := r.Faults; f != nil {
			if f.WatchdogTripped {
				vec[2] = 1
			}
			vec[3] = bucket(f.Drops)
			vec[4] = bucket(f.Corrupts)
			vec[5] = bucket(f.Duplicates)
			vec[6] = bucket(f.Delays)
			vec[7] = bucket(f.Stalls)
			vec[8] = bucket(f.Kills)
			vec[9] = bucket(f.Overflows)
			vec[10] = bucket(f.Retries)
			vec[11] = bucket(f.Nacks)
			vec[12] = bucket(f.DupsFiltered)
			vec[13] = bucket(f.MsgsLost)
			vec[14] = bucket(f.TasksRespawned)
			vec[15] = bucket(f.BlocksRecovered)
		}
	}
	return hex.EncodeToString(vec[:])
}
