package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndpbridge/internal/checkpoint"
)

// TestTortureExhaustive is the headline guarantee: cut a checkpointed run
// at EVERY filesystem operation and a recovering user always sees either a
// resumable snapshot (byte-identical completion) or a clean absence — and
// every torn write is rejected by the checksums. No sampling: MaxCuts 0.
func TestTortureExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("torture replays the run once per FS op")
	}
	rep, err := Torture(TortureOptions{})
	if err != nil {
		t.Fatalf("torture: %v\n%s", err, rep.Summary())
	}
	if rep.Cuts != rep.Ops {
		t.Errorf("exercised %d cuts for %d ops — not exhaustive", rep.Cuts, rep.Ops)
	}
	if rep.NoCheckpoint+rep.Resumed != rep.Cuts {
		t.Errorf("outcome accounting broken: %d no-checkpoint + %d resumed != %d cuts",
			rep.NoCheckpoint, rep.Resumed, rep.Cuts)
	}
	// Both outcomes must actually occur: cuts before the first rename leave
	// nothing, cuts after it leave a resumable snapshot.
	if rep.NoCheckpoint == 0 {
		t.Error("no cut left a clean absence — early cut points unexercised")
	}
	if rep.Resumed == 0 {
		t.Error("no cut resumed — late cut points unexercised")
	}
	if rep.TornCuts != rep.Checkpoints {
		t.Errorf("torn %d writes, run performs %d checkpoint writes", rep.TornCuts, rep.Checkpoints)
	}
	if rep.Rejected != rep.TornCuts {
		t.Errorf("only %d of %d torn snapshots rejected", rep.Rejected, rep.TornCuts)
	}
	if !strings.Contains(rep.Summary(), "resumed byte-identical") {
		t.Errorf("summary lost its tally: %s", rep.Summary())
	}
}

// TestTortureSampling verifies the MaxCuts cap thins the fail-stop cuts but
// still covers the full range.
func TestTortureSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("torture replays the run once per FS op")
	}
	rep, err := Torture(TortureOptions{MaxCuts: 5})
	if err != nil {
		t.Fatalf("torture: %v", err)
	}
	if rep.Cuts != 5 {
		t.Errorf("Cuts = %d, want 5", rep.Cuts)
	}
	if rep.NoCheckpoint == 0 || rep.Resumed == 0 {
		t.Errorf("sampling lost an outcome class: %s", rep.Summary())
	}
}

// TestCrashFSFailStop pins the cut semantics at the FS level: ops before
// the cut succeed, the cut op and everything after fail.
func TestCrashFSFailStop(t *testing.T) {
	dir := t.TempDir()
	cfs := newCrashFS(modeFailStop, 2) // mkdir(0) create(1) ok, write(2) dies
	defer checkpoint.SwapFS(checkpoint.SwapFS(cfs))

	path := filepath.Join(dir, "sub", "x.bin")
	err := checkpoint.WriteFileAtomic(path, []byte("payload"))
	if !errors.Is(err, errCrash) {
		t.Fatalf("err = %v, want errCrash", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("visible file exists although the write was cut")
	}
	// The dead machine also cannot clean up: crash litter is allowed (and
	// ignored by recovery), but only under the temp pattern.
	if err := checkpoint.WriteFileAtomic(path, []byte("payload")); !errors.Is(err, errCrash) {
		t.Fatalf("dead FS accepted another write: %v", err)
	}
}

// TestCrashFSTorn pins the torn-write semantics: the cut write persists
// half its bytes while reporting success, the rename lands, then the
// machine dies.
func TestCrashFSTorn(t *testing.T) {
	dir := t.TempDir()
	cfs := newCrashFS(modeTorn, 2) // mkdir(0) create(1), write(2) torn
	defer checkpoint.SwapFS(checkpoint.SwapFS(cfs))

	path := filepath.Join(dir, "x.bin")
	payload := []byte("0123456789abcdef")
	if err := checkpoint.WriteFileAtomic(path, payload); err != nil {
		t.Fatalf("torn write should report success end-to-end, got %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("renamed file unreadable: %v", err)
	}
	if len(data) != len(payload)/2 {
		t.Errorf("visible file has %d bytes, want the torn %d", len(data), len(payload)/2)
	}
	// The machine died after the rename: the next write must fail.
	if err := checkpoint.WriteFileAtomic(filepath.Join(dir, "y.bin"), payload); !errors.Is(err, errCrash) {
		t.Fatalf("FS survived past the post-rename kill: %v", err)
	}
}
