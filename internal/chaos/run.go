package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"ndpbridge/internal/audit"
	"ndpbridge/internal/core"
	"ndpbridge/internal/experiments"
	"ndpbridge/internal/fault"
	"ndpbridge/internal/stats"
	"ndpbridge/internal/workloads"
)

// Verdict classifies one plan evaluation against the campaign's oracles.
type Verdict int

const (
	// VerdictOK: the run converged, executed exactly the baseline's task
	// count, and replayed byte-identically.
	VerdictOK Verdict = iota
	// VerdictDegraded: the run did not complete, but the plan is allowed
	// to prevent progress (it kills units or permanently blacks out a
	// hop), so the watchdog/deadlock diagnostic is the correct outcome.
	VerdictDegraded
	// FailAudit: the invariant auditor observed a broken conservation law.
	FailAudit
	// FailHang: the run hung although every fault in the plan is
	// recoverable — the recovery protocol lost work.
	FailHang
	// FailTaskLoss: the run converged but executed a different number of
	// tasks than the fault-free baseline (lost or double-executed work).
	FailTaskLoss
	// FailNondet: re-running the identical (config, seed, plan) produced a
	// different result — determinism is broken.
	FailNondet
	// FailPanic: the runtime panicked.
	FailPanic
	// FailOther: any other run error.
	FailOther

	verdictCount Verdict = iota
)

func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictDegraded:
		return "degraded"
	case FailAudit:
		return "FAIL-audit"
	case FailHang:
		return "FAIL-hang"
	case FailTaskLoss:
		return "FAIL-taskloss"
	case FailNondet:
		return "FAIL-nondet"
	case FailPanic:
		return "FAIL-panic"
	case FailOther:
		return "FAIL-other"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// slug returns the verdict's repro-filename fragment.
func (v Verdict) slug() string {
	switch v {
	case FailAudit:
		return "audit"
	case FailHang:
		return "hang"
	case FailTaskLoss:
		return "taskloss"
	case FailNondet:
		return "nondet"
	case FailPanic:
		return "panic"
	}
	return "other"
}

// Failed reports whether the verdict is an oracle breach.
func (v Verdict) Failed() bool { return v >= FailAudit }

// outcome is one plan's evaluation.
type outcome struct {
	verdict Verdict
	sig     string
	rules   []string
	err     string
}

// panicError marks a recovered panic so classification can tell it apart
// from an ordinary run error.
type panicError struct{ val any }

func (p *panicError) Error() string { return fmt.Sprintf("panic: %v", p.val) }

// runPlan builds a fresh system, attaches plan (nil = fault-free baseline)
// and the auditor, and runs the campaign workload to completion. Each call
// is an independent simulation: determinism demands that nothing leak
// between runs except the plan itself.
func (c *campaign) runPlan(plan *fault.Plan) (r *stats.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			r, err = nil, &panicError{p}
		}
	}()
	app, err := workloads.NewSmall(c.opts.App)
	if err != nil {
		return nil, err
	}
	sys, err := core.New(c.cfg)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		if err := sys.AttachFaults(plan, c.opts.Seed); err != nil {
			return nil, err
		}
	}
	if err := sys.AttachAudit(0); err != nil {
		return nil, err
	}
	if c.opts.Hook != nil {
		c.opts.Hook(sys, plan)
	}
	// Cancellation checkpoint: a Ctrl-C stops in-flight engines within 64K
	// events instead of waiting out a long simulation.
	eng := sys.Engine()
	eng.SetProgress(1<<16, func(_, _ uint64) {
		if experiments.Canceled() {
			eng.Stop()
		}
	})
	return sys.Run(app)
}

// eval runs every oracle against one plan.
func (c *campaign) eval(plan *fault.Plan) outcome {
	r1, err := c.runPlan(plan)
	if err != nil {
		return c.classifyError(plan, err)
	}

	// Golden-result oracle: faults may slow the run down, never change the
	// amount of work performed. Lost tasks mean the recovery protocol
	// dropped work; extra tasks mean it re-executed something twice.
	if r1.TasksExecuted != c.baseTasks {
		return outcome{
			verdict: FailTaskLoss,
			sig:     signature(FailTaskLoss, r1, c.baseMakespan),
			err: fmt.Sprintf("executed %d tasks, baseline executed %d",
				r1.TasksExecuted, c.baseTasks),
		}
	}

	// Replay oracle: the identical (config, seed, plan) must reproduce the
	// identical result, byte for byte.
	r2, err := c.runPlan(plan)
	if err != nil {
		return outcome{
			verdict: FailNondet,
			sig:     signature(FailNondet, r1, c.baseMakespan),
			err:     fmt.Sprintf("first run converged, replay failed: %v", err),
		}
	}
	j1, err1 := resultJSON(r1)
	j2, err2 := resultJSON(r2)
	if err1 != nil || err2 != nil {
		return outcome{verdict: FailOther, sig: signature(FailOther, r1, c.baseMakespan),
			err: fmt.Sprintf("marshal results: %v, %v", err1, err2)}
	}
	if !bytes.Equal(j1, j2) {
		return outcome{
			verdict: FailNondet,
			sig:     signature(FailNondet, r1, c.baseMakespan),
			err:     "replay produced a different result: " + firstDiff(j1, j2),
		}
	}
	return outcome{verdict: VerdictOK, sig: signature(VerdictOK, r1, c.baseMakespan)}
}

// classifyError maps a run error to a verdict.
func (c *campaign) classifyError(plan *fault.Plan, err error) outcome {
	var ae *audit.Error
	if errors.As(err, &ae) {
		var rules []string
		for _, v := range ae.Violations {
			rules = append(rules, v.Rule)
		}
		return outcome{
			verdict: FailAudit,
			sig:     signature(FailAudit, nil, c.baseMakespan),
			rules:   sortedRules(rules),
			err:     err.Error(),
		}
	}
	if errors.Is(err, core.ErrWatchdog) || errors.Is(err, core.ErrDeadlock) || errors.Is(err, core.ErrNotConverged) {
		v := FailHang
		if planCanHang(plan) {
			// The plan is entitled to stop the run: killed units can
			// partition the system, and a permanent total blackout on a
			// hop makes progress impossible by construction. The
			// watchdog diagnosing that IS the designed behavior.
			v = VerdictDegraded
		}
		return outcome{verdict: v, sig: signature(v, nil, c.baseMakespan), err: err.Error()}
	}
	var pe *panicError
	if errors.As(err, &pe) {
		return outcome{verdict: FailPanic, sig: signature(FailPanic, nil, c.baseMakespan), err: err.Error()}
	}
	return outcome{verdict: FailOther, sig: signature(FailOther, nil, c.baseMakespan), err: err.Error()}
}

// planCanHang reports whether the plan is allowed to prevent convergence:
// it kills units, or it contains a permanent total blackout — a drop or
// corrupt spec with probability 1 and neither a window nor a firing cap, so
// no retransmission on that hop can ever succeed.
func planCanHang(p *fault.Plan) bool {
	if p == nil {
		return false
	}
	for _, s := range p.Faults {
		if s.Kind == fault.KindKill {
			return true
		}
		if (s.Kind == fault.KindDrop || s.Kind == fault.KindCorrupt) &&
			s.Prob >= 1 && s.Until == 0 && s.Count == 0 {
			return true
		}
	}
	return false
}

// resultJSON renders a result canonically for byte-identity comparison.
func resultJSON(r *stats.Result) ([]byte, error) {
	return json.Marshal(r)
}

// firstDiff locates the first differing byte of two renderings, with a
// little context — enough to name the diverging field in a diagnostic.
func firstDiff(a, b []byte) string {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := max(i-24, 0)
	return fmt.Sprintf("byte %d: %q vs %q", i, clip(a, lo, i+24), clip(b, lo, i+24))
}

func clip(b []byte, lo, hi int) string {
	if hi > len(b) {
		hi = len(b)
	}
	if lo > len(b) {
		lo = len(b)
	}
	return string(b[lo:hi])
}
