package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/config"
	"ndpbridge/internal/core"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/stats"
	"ndpbridge/internal/workloads"
)

// Crash-point torture for the checkpoint stack. A checkpointed run is
// replayed once per filesystem operation, cutting it at exactly that
// operation — as a power cut would — and the harness then plays the
// recovery a user would: look for the checkpoint file and resume. The
// contract under test is binary: after a crash at ANY step of the atomic
// write protocol, the visible checkpoint path holds either a complete
// snapshot that resumes to a byte-identical final result, or nothing; and a
// snapshot torn by a silently-truncated write is rejected by the checksums.
// There is no third outcome — no half-state is ever acted on.
//
// The instrument is crashFS, plugged under checkpoint.WriteFileAtomic via
// checkpoint.SwapFS. It has three modes: count (record the op trace of a
// healthy run — its length is the cut-point space), fail-stop (ops before
// the cut succeed, the cut and everything after fail: the process is dead),
// and torn (the cut write silently persists only half its bytes, the
// protocol completes, and the machine dies right after the rename lands —
// the worst case fsync discipline must catch).

// errCrash marks an injected cut; everything the dead process attempts
// afterwards fails with it too.
var errCrash = errors.New("chaos: injected crash")

// crashFS modes.
const (
	modeCount = iota
	modeFailStop
	modeTorn
)

// crashFS wraps the real filesystem with an op counter and a cut point.
type crashFS struct {
	real checkpoint.FS

	mu      sync.Mutex
	mode    int
	cutAt   int
	ops     []string // op kinds in execution order
	armKill bool     // torn write landed; die after the next rename
	dead    bool
}

func newCrashFS(mode, cutAt int) *crashFS {
	return &crashFS{real: osRealFS(), mode: mode, cutAt: cutAt}
}

// osRealFS fetches the true filesystem even if another FS is installed.
func osRealFS() checkpoint.FS {
	prev := checkpoint.SwapFS(nil) // nil restores the OS filesystem...
	fs := checkpoint.SwapFS(prev)  // ...which we grab and put prev back.
	return fs
}

// gate records one op and decides whether the dead machine rejects it.
func (c *crashFS) gate(kind string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := len(c.ops)
	c.ops = append(c.ops, kind)
	if c.dead {
		return errCrash
	}
	if c.mode == modeFailStop && idx >= c.cutAt {
		c.dead = true
		return errCrash
	}
	return nil
}

func (c *crashFS) opCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ops)
}

func (c *crashFS) opTrace() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.ops...)
}

func (c *crashFS) MkdirAll(dir string, perm os.FileMode) error {
	if err := c.gate("mkdir"); err != nil {
		return err
	}
	return c.real.MkdirAll(dir, perm)
}

func (c *crashFS) CreateTemp(dir, pattern string) (checkpoint.FileHandle, error) {
	if err := c.gate("create"); err != nil {
		return nil, err
	}
	h, err := c.real.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, h: h}, nil
}

func (c *crashFS) Chmod(name string, mode os.FileMode) error {
	if err := c.gate("chmod"); err != nil {
		return err
	}
	return c.real.Chmod(name, mode)
}

func (c *crashFS) Rename(oldpath, newpath string) error {
	if err := c.gate("rename"); err != nil {
		return err
	}
	return c.real.Rename(oldpath, newpath)
}

func (c *crashFS) Remove(name string) error {
	if err := c.gate("remove"); err != nil {
		return err
	}
	return c.real.Remove(name)
}

func (c *crashFS) SyncDir(dir string) error {
	if err := c.gate("syncdir"); err != nil {
		return err
	}
	err := c.real.SyncDir(dir)
	c.mu.Lock()
	if err == nil && c.armKill {
		// The rename of the torn snapshot is durable now. Power off.
		c.dead = true
	}
	c.mu.Unlock()
	return err
}

// crashFile gates the write/sync/close surface of one temp file.
type crashFile struct {
	fs *crashFS
	h  checkpoint.FileHandle
}

func (f *crashFile) Write(p []byte) (int, error) {
	c := f.fs
	c.mu.Lock()
	idx := len(c.ops)
	c.ops = append(c.ops, "write")
	dead, torn := c.dead, c.mode == modeTorn && idx == c.cutAt
	if torn {
		c.armKill = true
	}
	if !dead && c.mode == modeFailStop && idx >= c.cutAt {
		c.dead = true
		dead = true
	}
	c.mu.Unlock()
	if dead {
		return 0, errCrash
	}
	if torn {
		// Persist only half the bytes but report full success — the
		// truncation a lost page-cache flush produces.
		if _, err := f.h.Write(p[:len(p)/2]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return f.h.Write(p)
}

func (f *crashFile) Sync() error {
	if err := f.fs.gate("sync"); err != nil {
		return err
	}
	return f.h.Sync()
}

func (f *crashFile) Close() error {
	if err := f.fs.gate("close"); err != nil {
		return err
	}
	return f.h.Close()
}

func (f *crashFile) Name() string { return f.h.Name() }

// TortureOptions configures a crash-point torture pass.
type TortureOptions struct {
	// App is the workload (small variant). Default "bfs" — several barriers,
	// so checkpoints land mid-run and resume crosses real state.
	App string
	// Units overrides the unit count. Default 64.
	Units int
	// Every is the checkpoint cadence in cycles. Default 1 (every barrier).
	Every sim.Cycles
	// MaxCuts caps the fail-stop cut points (evenly sampled when the op
	// trace is larger). 0 = exhaustive: every op is a cut point.
	MaxCuts int
	// Dir is the scratch directory for checkpoint files. Empty = a fresh
	// temp directory, removed afterwards.
	Dir string
	// Log receives progress lines. Nil = silent.
	Log io.Writer
}

func (o TortureOptions) withDefaults() TortureOptions {
	if o.App == "" {
		o.App = "bfs"
	}
	if o.Units <= 0 {
		o.Units = 64
	}
	if o.Every <= 0 {
		o.Every = 1
	}
	return o
}

// TortureReport is the outcome of one torture pass. The pass as a whole
// either proves the contract (returned with nil error) or names the first
// cut that broke it (non-nil error from Torture).
type TortureReport struct {
	Ops          int // filesystem ops per healthy run = cut-point space
	Checkpoints  int // snapshots the healthy run writes
	Cuts         int // fail-stop cuts exercised
	NoCheckpoint int // cuts that left no visible checkpoint (clean absence)
	Resumed      int // cuts whose surviving snapshot resumed byte-identically
	TornCuts     int // torn-write cuts exercised
	Rejected     int // torn snapshots cleanly rejected by the checksums
}

// Summary renders the torture tally.
func (r *TortureReport) Summary() string {
	return fmt.Sprintf(
		"torture: %d ops/run over %d checkpoints; %d fail-stop cuts (%d no-checkpoint, %d resumed byte-identical), %d torn writes (%d rejected by checksum)\n",
		r.Ops, r.Checkpoints, r.Cuts, r.NoCheckpoint, r.Resumed, r.TornCuts, r.Rejected)
}

// torture is the run state of one Torture call.
type torture struct {
	opts     TortureOptions
	cfg      config.Config
	baseJSON []byte
}

// Torture runs the crash-point campaign. A nil error means every cut
// produced one of the two allowed outcomes; the error otherwise pinpoints
// the violating cut.
func Torture(opts TortureOptions) (*TortureReport, error) {
	opts = opts.withDefaults()
	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "chaos-torture-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	cfg := config.Default().WithDesign(config.DesignO)
	cfg, err := cfg.WithUnits(opts.Units)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	tt := &torture{opts: opts, cfg: cfg}

	// Reference pass doubles as the op-trace recording: a counting crashFS
	// never fails, so the run is healthy and its trace enumerates every
	// possible cut point.
	counter := newCrashFS(modeCount, 0)
	basePath := filepath.Join(dir, "base.ckpt")
	baseRes, ckpts, err := tt.runCheckpointed(basePath, counter)
	if err != nil {
		return nil, fmt.Errorf("chaos: torture baseline failed: %w", err)
	}
	if ckpts == 0 {
		return nil, fmt.Errorf("chaos: torture baseline wrote no checkpoints — nothing to torture")
	}
	tt.baseJSON, err = resultJSON(baseRes)
	if err != nil {
		return nil, err
	}

	rep := &TortureReport{Ops: counter.opCount(), Checkpoints: ckpts}

	// Fail-stop cuts: every op index, evenly thinned only if capped.
	cuts := make([]int, 0, rep.Ops)
	if opts.MaxCuts > 0 && rep.Ops > opts.MaxCuts {
		for i := 0; i < opts.MaxCuts; i++ {
			cuts = append(cuts, i*rep.Ops/opts.MaxCuts)
		}
		tt.logf("torture: sampling %d of %d cut points (MaxCuts)\n", len(cuts), rep.Ops)
	} else {
		for k := 0; k < rep.Ops; k++ {
			cuts = append(cuts, k)
		}
	}
	for _, k := range cuts {
		rep.Cuts++
		if err := tt.cutFailStop(dir, k, rep); err != nil {
			return rep, err
		}
	}
	tt.logf("torture: %d fail-stop cuts clean (%d no-checkpoint, %d resumed)\n",
		rep.Cuts, rep.NoCheckpoint, rep.Resumed)

	// Torn cuts: every write op in the trace.
	for k, kind := range counter.opTrace() {
		if kind != "write" {
			continue
		}
		rep.TornCuts++
		if err := tt.cutTorn(dir, k, rep); err != nil {
			return rep, err
		}
	}
	tt.logf("torture: %d torn writes rejected cleanly\n", rep.Rejected)
	return rep, nil
}

// runCheckpointed executes one checkpointed run under fs (nil = real FS).
func (tt *torture) runCheckpointed(path string, fs checkpoint.FS) (*stats.Result, int, error) {
	if fs != nil {
		defer checkpoint.SwapFS(checkpoint.SwapFS(fs))
	}
	app, err := workloads.NewSmall(tt.opts.App)
	if err != nil {
		return nil, 0, err
	}
	sys, err := core.New(tt.cfg)
	if err != nil {
		return nil, 0, err
	}
	sys.EnableCheckpoints(path, tt.opts.Every)
	r, err := sys.Run(app)
	return r, sys.CheckpointsWritten(), err
}

// cutFailStop crashes one run at op k and asserts the recovery contract.
func (tt *torture) cutFailStop(dir string, k int, rep *TortureReport) error {
	path := filepath.Join(dir, fmt.Sprintf("cut-%04d.ckpt", k))
	_, _, err := tt.runCheckpointed(path, newCrashFS(modeFailStop, k))
	if err == nil {
		return fmt.Errorf("chaos: cut %d: run survived an injected crash", k)
	}

	// What does a recovering user see at the checkpoint path?
	if _, err := os.Stat(path); os.IsNotExist(err) {
		rep.NoCheckpoint++ // clean absence — the crash predates the first rename
		return nil
	}
	ck, err := core.ReadCheckpoint(path)
	if err != nil {
		// Fail-stop never tears bytes: the visible file is always a fully
		// renamed snapshot. A read failure here IS a half-state.
		return fmt.Errorf("chaos: cut %d: visible checkpoint unreadable after fail-stop crash: %w", k, err)
	}
	if err := tt.resume(ck); err != nil {
		return fmt.Errorf("chaos: cut %d: %w", k, err)
	}
	rep.Resumed++
	return nil
}

// cutTorn truncates the write at op k, lets the rename land, and asserts
// the checksums reject the torn snapshot.
func (tt *torture) cutTorn(dir string, k int, rep *TortureReport) error {
	path := filepath.Join(dir, fmt.Sprintf("torn-%04d.ckpt", k))
	// The run may or may not finish (the machine dies after the rename);
	// either way only the visible file matters.
	_, _, _ = tt.runCheckpointed(path, newCrashFS(modeTorn, k))
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return fmt.Errorf("chaos: torn cut %d: rename never landed — cut was not a checkpoint write", k)
	}
	if _, err := core.ReadCheckpoint(path); err == nil {
		return fmt.Errorf("chaos: torn cut %d: truncated snapshot accepted by ReadCheckpoint", k)
	}
	rep.Rejected++
	return nil
}

// resume rebuilds the run from a surviving snapshot, replays with marker
// verification armed, and demands the byte-identical baseline result.
func (tt *torture) resume(ck *core.Checkpoint) error {
	app, err := workloads.NewSmall(tt.opts.App)
	if err != nil {
		return err
	}
	sys, err := core.New(tt.cfg)
	if err != nil {
		return err
	}
	sys.VerifyResume(ck)
	r, err := sys.Run(app)
	if err != nil {
		return fmt.Errorf("resume run failed: %w", err)
	}
	if !sys.ResumeVerified() {
		return errors.New("resume replay never matched the checkpoint marker")
	}
	j, err := resultJSON(r)
	if err != nil {
		return err
	}
	if !bytes.Equal(j, tt.baseJSON) {
		return errors.New("resume result differs from baseline: " + firstDiff(j, tt.baseJSON))
	}
	return nil
}

func (tt *torture) logf(format string, args ...any) {
	if tt.opts.Log != nil {
		fmt.Fprintf(tt.opts.Log, format, args...)
	}
}
