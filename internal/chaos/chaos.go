// Package chaos is the simulator's adversarial test harness: a seeded,
// deterministic chaos-campaign engine that fuzzes fault plans against the
// core runtime, plus crash-point torture for the checkpoint stack.
//
// The campaign turns the repo's determinism guarantee into a testing weapon.
// Every simulation is a pure function of (config, seed, plan), so the
// campaign can use strong oracles — the invariant auditor, the progress
// watchdog, golden-result comparison against a fault-free baseline, and
// byte-identity replay — and any failing input is a perfectly reproducible
// one-line repro. Plans are generated and mutated by fault.Generate /
// fault.Mutate, coverage is a cheap signature over the fault/recovery
// counter vector (AFL-style: new signature → corpus entry → future mutation
// parent), and failures are automatically shrunk to a minimal plan written
// as a ready-to-run repro JSON with the exact CLI line.
//
// The whole campaign is deterministic at any worker-pool width: plan
// generation is sequential from one seeded RNG, evaluation fans out over
// experiments.ParMap (index-addressed results), and corpus/coverage state is
// folded in index order after each fixed-size batch.
package chaos

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"ndpbridge/internal/config"
	"ndpbridge/internal/core"
	"ndpbridge/internal/experiments"
	"ndpbridge/internal/fault"
	"ndpbridge/internal/sim"
)

// batchSize is the number of plans generated ahead and evaluated in
// parallel per round. It is a fixed constant — NOT the worker-pool width —
// because corpus evolution depends on fold order: a batch size that varied
// with -j would make the campaign's trajectory depend on the machine.
const batchSize = 8

// Options configures a chaos campaign.
type Options struct {
	// Runs is the evaluation budget: the number of plans evaluated,
	// including re-evaluated corpus entries. Default 32.
	Runs int
	// Seed drives plan generation and every injected fault schedule; the
	// same seed reproduces the campaign bit-for-bit. Default 1.
	Seed uint64
	// CorpusDir persists interesting plans across campaigns. Plans found
	// there are re-evaluated first (counting against Runs) and new corpus
	// entries are written back. Empty = in-memory only.
	CorpusDir string
	// ReproDir receives shrunk failing plans as repro-*.json plus a
	// repro-*.cli companion holding the exact reproduction command.
	// Empty = repros are only reported, not written.
	ReproDir string
	// App is the workload (small-sized variant). Default "tree".
	App string
	// Units overrides the unit count (multiple of 64). Default 128 — two
	// ranks, so the cross-rank hops and rank filters are exercised.
	Units int
	// Log receives progress lines. Nil = silent.
	Log io.Writer
	// Hook runs on every built system right before Run, after faults and
	// the auditor are attached. It is the campaign's sabotage seam: tests
	// plant a known bug here and assert the campaign finds and shrinks it.
	Hook func(*core.System, *fault.Plan)
	// ShrinkBudget bounds the evaluations spent shrinking one failure.
	// Default 120.
	ShrinkBudget int
	// MaxShrinks bounds how many distinct failures are shrunk. Default 3.
	MaxShrinks int
}

func (o Options) withDefaults() Options {
	if o.Runs <= 0 {
		o.Runs = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.App == "" {
		o.App = "tree"
	}
	if o.Units <= 0 {
		o.Units = 128
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 120
	}
	if o.MaxShrinks <= 0 {
		o.MaxShrinks = 3
	}
	return o
}

// Failure is one oracle breach: the plan that tripped it, the shrunk
// minimal repro, and how to reproduce it outside the campaign.
type Failure struct {
	Verdict     Verdict
	Rules       []string // audit rules broken (FailAudit only)
	Err         string   // the run error, if any
	Plan        *fault.Plan
	Shrunk      *fault.Plan
	ShrinkEvals int
	ReproPath   string // written repro plan ("" when ReproDir is unset)
	CLI         string // exact reproduction command line
}

// Report is the outcome of one campaign.
type Report struct {
	Seed             uint64
	Evals            int // evaluations performed (fuzzing only, not shrinking)
	Counts           [verdictCount]int
	BaselineTasks    uint64
	BaselineMakespan uint64
	CorpusLoaded     int // corpus entries re-evaluated from CorpusDir
	CorpusSize       int // corpus entries at campaign end
	NewCoverage      int // evaluations that produced an unseen signature
	CovDims          int // coverage vector dimensions
	Failures         []*Failure
}

// Failed reports whether any oracle tripped.
func (r *Report) Failed() bool { return len(r.Failures) > 0 }

// Summary renders the corpus/coverage trajectory and the verdict table —
// the block ndpbench prints at campaign end.
func (r *Report) Summary() string {
	s := fmt.Sprintf("chaos: seed=%d evals=%d corpus=%d (loaded %d) coverage-dims=%d new-coverage=%d (%.0f%%)\n",
		r.Seed, r.Evals, r.CorpusSize, r.CorpusLoaded, r.CovDims, r.NewCoverage,
		100*float64(r.NewCoverage)/float64(max(r.Evals, 1)))
	s += fmt.Sprintf("chaos: baseline tasks=%d makespan=%d\n", r.BaselineTasks, r.BaselineMakespan)
	s += "chaos: verdicts:"
	for v := Verdict(0); v < verdictCount; v++ {
		if r.Counts[v] > 0 {
			s += fmt.Sprintf(" %s=%d", v, r.Counts[v])
		}
	}
	s += "\n"
	for _, f := range r.Failures {
		s += fmt.Sprintf("chaos: FAILURE %s", f.Verdict)
		for _, rule := range f.Rules {
			s += " [" + rule + "]"
		}
		if f.ReproPath != "" {
			s += " repro=" + f.ReproPath
		}
		s += fmt.Sprintf(" (shrunk %d→%d specs in %d evals)\n",
			len(f.Plan.Faults), len(f.Shrunk.Faults), f.ShrinkEvals)
		s += "chaos:   run: " + f.CLI + "\n"
	}
	return s
}

// campaign is the run state of one Run call.
type campaign struct {
	opts Options
	cfg  config.Config
	topo fault.Topology

	baseTasks    uint64
	baseMakespan uint64
	baseJSON     []byte

	corpus []corpusEntry
	seen   map[string]bool // coverage signatures observed
	hashes map[uint64]bool // plan hashes in the corpus
}

type corpusEntry struct {
	plan *fault.Plan
	sig  string
	hash uint64
}

// Run executes a chaos campaign and returns its report. The returned error
// covers campaign-level problems (bad options, unusable baseline,
// cancellation); oracle failures are data, reported in Report.Failures.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	c := &campaign{
		opts:   opts,
		seen:   make(map[string]bool),
		hashes: make(map[uint64]bool),
	}

	cfg := config.Default().WithDesign(config.DesignO)
	cfg, err := cfg.WithUnits(opts.Units)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	c.cfg = cfg

	// The baseline run is the golden oracle: every faulted run must execute
	// exactly this many tasks (faults may slow the system down, never lose
	// or duplicate work), and its makespan scales the coverage buckets and
	// the fault-schedule horizon.
	base, err := c.runPlan(nil)
	if err != nil {
		return nil, fmt.Errorf("chaos: baseline run failed: %w", err)
	}
	c.baseTasks = base.TasksExecuted
	c.baseMakespan = base.Makespan
	c.baseJSON, err = resultJSON(base)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	c.topo = fault.Topology{
		Units:   cfg.Geometry.Units(),
		Ranks:   cfg.Geometry.Ranks(),
		Horizon: base.Makespan,
	}

	rep := &Report{
		Seed:             opts.Seed,
		BaselineTasks:    c.baseTasks,
		BaselineMakespan: c.baseMakespan,
		CovDims:          covDims,
	}

	// Phase 1: re-evaluate the persisted corpus — stale entries (from an
	// older topology or binary) refresh their signatures; entries whose
	// coverage is still unique re-enter the corpus as mutation parents.
	seedPlans, err := loadCorpus(opts.CorpusDir, c.topo)
	if err != nil {
		return nil, err
	}
	rep.CorpusLoaded = len(seedPlans)
	budget := opts.Runs
	for len(seedPlans) > 0 && budget > 0 && !experiments.Canceled() {
		n := min(min(batchSize, len(seedPlans)), budget)
		if err := c.evalBatch(seedPlans[:n], rep); err != nil {
			return nil, err
		}
		seedPlans = seedPlans[n:]
		budget -= n
	}

	// Phase 2: coverage-guided fuzzing. Generation is sequential from the
	// campaign RNG; evaluation is parallel; folding is in index order.
	rng := sim.NewRNG(opts.Seed)
	for budget > 0 && !experiments.Canceled() {
		n := min(batchSize, budget)
		plans := make([]*fault.Plan, n)
		for i := range plans {
			plans[i] = c.nextPlan(rng)
		}
		if err := c.evalBatch(plans, rep); err != nil {
			return nil, err
		}
		budget -= n
		c.logf("chaos: %d/%d evals, corpus %d, %d failures\n",
			rep.Evals, opts.Runs, len(c.corpus), len(rep.Failures))
	}
	if experiments.Canceled() {
		return nil, experiments.ErrCanceled
	}

	// Phase 3: shrink failures to minimal repros (sequential, bounded).
	for i, f := range rep.Failures {
		if i >= opts.MaxShrinks {
			f.Shrunk = f.Plan // unshrunk, but still a valid repro
			continue
		}
		f.Shrunk, f.ShrinkEvals = c.shrink(f)
		c.logf("chaos: shrunk %s failure: %d → %d specs (%d evals)\n",
			f.Verdict, len(f.Plan.Faults), len(f.Shrunk.Faults), f.ShrinkEvals)
	}
	if err := c.writeRepros(rep); err != nil {
		return nil, err
	}
	if err := saveCorpus(opts.CorpusDir, c.corpus); err != nil {
		return nil, err
	}
	rep.CorpusSize = len(c.corpus)
	return rep, nil
}

// evalBatch evaluates plans in parallel and folds outcomes in index order.
func (c *campaign) evalBatch(plans []*fault.Plan, rep *Report) error {
	outs, err := experiments.ParMap(len(plans), func(i int) (outcome, error) {
		return c.eval(plans[i]), nil
	})
	if err != nil {
		return err
	}
	for i, out := range outs {
		rep.Evals++
		rep.Counts[out.verdict]++
		if !c.seen[out.sig] {
			c.seen[out.sig] = true
			rep.NewCoverage++
			if h := fault.Hash(plans[i]); !c.hashes[h] {
				c.hashes[h] = true
				c.corpus = append(c.corpus, corpusEntry{plan: plans[i], sig: out.sig, hash: h})
			}
		}
		if out.verdict.Failed() {
			rep.Failures = append(rep.Failures, &Failure{
				Verdict: out.verdict,
				Rules:   out.rules,
				Err:     out.err,
				Plan:    plans[i],
			})
		}
	}
	return nil
}

// nextPlan picks the next input: usually a mutation of a corpus entry,
// sometimes a fresh plan so the fuzzer keeps exploring from scratch.
func (c *campaign) nextPlan(rng *sim.RNG) *fault.Plan {
	if len(c.corpus) == 0 || rng.Intn(4) == 0 {
		return fault.Generate(rng, c.topo)
	}
	parent := c.corpus[rng.Intn(len(c.corpus))]
	return fault.Mutate(rng, parent.plan, c.topo)
}

// writeRepros persists every failure's shrunk plan and CLI line.
func (c *campaign) writeRepros(rep *Report) error {
	for _, f := range rep.Failures {
		plan := f.Shrunk
		if plan == nil {
			plan = f.Plan
			f.Shrunk = plan
		}
		f.CLI = c.cli(f)
		if c.opts.ReproDir == "" {
			continue
		}
		name := fmt.Sprintf("repro-%s-%08x", f.Verdict.slug(), fault.Hash(plan)&0xffffffff)
		path := filepath.Join(c.opts.ReproDir, name+".json")
		if err := writeFileAtomic(path, fault.Canonical(plan)); err != nil {
			return fmt.Errorf("chaos: write repro: %w", err)
		}
		f.ReproPath = path
		f.CLI = c.cliFor(path)
		cli := filepath.Join(c.opts.ReproDir, name+".cli")
		body := "# " + f.Verdict.String() + ": " + f.Err + "\n" + f.CLI + "\n"
		if err := writeFileAtomic(cli, []byte(body)); err != nil {
			return fmt.Errorf("chaos: write repro CLI: %w", err)
		}
	}
	return nil
}

// cli renders the reproduction command for a failure whose plan is not (or
// not yet) on disk.
func (c *campaign) cli(f *Failure) string {
	return c.cliFor("<plan.json>")
}

// cliFor renders the exact single-run reproduction command: the same config,
// seed, fault seed, and auditor the campaign used.
func (c *campaign) cliFor(planPath string) string {
	return fmt.Sprintf("ndpsim -app %s -design O -units %d -small -seed %d -faults %s -fault-seed %d -audit",
		c.opts.App, c.opts.Units, c.cfg.Seed, planPath, c.opts.Seed)
}

func (c *campaign) logf(format string, args ...any) {
	if c.opts.Log != nil {
		fmt.Fprintf(c.opts.Log, format, args...)
	}
}

// sortedRules returns the audit rule names of an audit error, deduplicated
// and sorted for deterministic reporting.
func sortedRules(vs []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}
