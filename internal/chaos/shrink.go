package chaos

import (
	"ndpbridge/internal/fault"
)

// The shrinker reduces a failing plan to a minimal repro that still trips
// the same oracle. Two phases, repeated to fixpoint under an evaluation
// budget:
//
//  1. Spec-level ddmin: drop whole specs (first in halves, then one at a
//     time) while the verdict class survives.
//  2. Field-level reduction: within each surviving spec, walk every numeric
//     field toward its trivial value (halve windows and durations, halve
//     probabilities, cap firing counts at one) and keep each step that
//     still reproduces.
//
// Every probe is a full oracle evaluation of a candidate plan — expensive,
// so the budget bounds total probes and the shrinker simply returns its
// best-so-far when the budget runs out. Determinism: the probe order is a
// pure function of the failing plan, so the same failure always shrinks to
// the same repro.

// shrink returns the minimal plan still producing f.Verdict, and the number
// of evaluations spent.
func (c *campaign) shrink(f *Failure) (*fault.Plan, int) {
	evals := 0
	same := func(p *fault.Plan) bool {
		if evals >= c.opts.ShrinkBudget {
			return false
		}
		evals++
		return c.eval(p).verdict == f.Verdict
	}

	cur := fault.Clone(f.Plan)

	// Phase 1: spec-level ddmin. Try dropping the first/second half, then
	// individual specs, back to front so indices stay stable.
	for changed := true; changed && evals < c.opts.ShrinkBudget; {
		changed = false
		if n := len(cur.Faults); n > 1 {
			for _, cand := range []*fault.Plan{
				{Faults: append([]fault.Spec(nil), cur.Faults[n/2:]...)}, // drop first half
				{Faults: append([]fault.Spec(nil), cur.Faults[:n/2]...)}, // drop second half
			} {
				if same(cand) {
					cur = cand
					changed = true
					break
				}
			}
			if changed {
				continue
			}
		}
		for i := len(cur.Faults) - 1; i >= 0 && len(cur.Faults) > 1; i-- {
			cand := &fault.Plan{Faults: make([]fault.Spec, 0, len(cur.Faults)-1)}
			cand.Faults = append(cand.Faults, cur.Faults[:i]...)
			cand.Faults = append(cand.Faults, cur.Faults[i+1:]...)
			if same(cand) {
				cur = cand
				changed = true
			}
		}
	}

	// Phase 2: field-level reductions within each surviving spec.
	for changed := true; changed && evals < c.opts.ShrinkBudget; {
		changed = false
		for i := range cur.Faults {
			for _, red := range reductions(cur.Faults[i]) {
				cand := fault.Clone(cur)
				cand.Faults[i] = red
				if same(cand) {
					cur = cand
					changed = true
				}
			}
		}
	}
	return cur, evals
}

// reductions enumerates the one-step simplifications of a spec, each still
// valid for any topology the spec was valid for.
func reductions(s fault.Spec) []fault.Spec {
	var out []fault.Spec
	step := func(f func(*fault.Spec) bool) {
		c := s
		if f(&c) {
			out = append(out, c)
		}
	}
	// Halve the probability (smaller probabilities are simpler: the fault
	// fires less, so a repro that survives is tighter evidence).
	step(func(c *fault.Spec) bool {
		if c.Prob > 0.01 {
			c.Prob = c.Prob / 2
			return true
		}
		return false
	})
	// Cap the firing budget at one.
	step(func(c *fault.Spec) bool {
		if c.Count != 1 && (c.Kind == fault.KindDrop || c.Kind == fault.KindCorrupt ||
			c.Kind == fault.KindDup || c.Kind == fault.KindDelay) {
			c.Count = 1
			return true
		}
		return false
	})
	// Halve the activity window.
	step(func(c *fault.Spec) bool {
		if c.Until > c.After+1 {
			c.Until = c.After + (c.Until-c.After)/2
			return true
		}
		return false
	})
	// Halve durations and schedule times.
	step(func(c *fault.Spec) bool {
		if c.Cycles > 1 {
			c.Cycles /= 2
			return true
		}
		return false
	})
	step(func(c *fault.Spec) bool {
		if c.At > 0 {
			c.At /= 2
			return true
		}
		return false
	})
	step(func(c *fault.Spec) bool {
		if c.Bytes > 1 {
			c.Bytes /= 2
			return true
		}
		return false
	})
	step(func(c *fault.Spec) bool {
		if c.After > 0 {
			w := c.Until - c.After
			c.After /= 2
			if c.Until != 0 {
				c.Until = c.After + w
			}
			return true
		}
		return false
	})
	return out
}
