package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/fault"
)

// Corpus persistence: each interesting plan is one canonical-JSON file,
// named by its content hash (plan-<16 hex>.json), so re-saving is
// idempotent and two campaigns can share a directory without colliding.
// Loading is sorted by filename, which — because names are content hashes
// of canonical encodings — gives every campaign the same deterministic
// seed order regardless of directory enumeration order.

// loadCorpus reads persisted plans from dir (nil when dir is empty).
// Entries that no longer parse or validate against the current topology are
// skipped, not fatal: the corpus is a cache of interesting inputs, and a
// stale entry from an old binary must not brick the campaign.
func loadCorpus(dir string, topo fault.Topology) ([]*fault.Plan, error) {
	if dir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("chaos: read corpus: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var plans []*fault.Plan
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("chaos: read corpus entry: %w", err)
		}
		p, err := fault.Parse(data)
		if err != nil {
			continue // stale format — skip
		}
		if p.Empty() || p.Validate(topo.Units, topo.Ranks) != nil {
			continue // wrong topology — skip
		}
		plans = append(plans, p)
	}
	return plans, nil
}

// saveCorpus writes every corpus entry to dir (no-op when dir is empty).
// Files are written crash-consistently; existing files are content-hashed
// names, so rewriting an entry writes identical bytes.
func saveCorpus(dir string, corpus []corpusEntry) error {
	if dir == "" {
		return nil
	}
	for _, e := range corpus {
		path := filepath.Join(dir, fmt.Sprintf("plan-%016x.json", e.hash))
		if err := writeFileAtomic(path, fault.Canonical(e.plan)); err != nil {
			return fmt.Errorf("chaos: save corpus: %w", err)
		}
	}
	return nil
}

// writeFileAtomic is the repo-wide crash-consistent writer. Routed through
// package checkpoint so the chaos engine's own outputs are covered by the
// same injectable-FS machinery it tortures.
func writeFileAtomic(path string, data []byte) error {
	return checkpoint.WriteFileAtomic(path, data)
}
