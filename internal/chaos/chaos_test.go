package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndpbridge/internal/core"
	"ndpbridge/internal/experiments"
	"ndpbridge/internal/fault"
	"ndpbridge/internal/stats"
)

// readDirBytes snapshots a directory as name→content for byte-level
// comparison between campaigns.
func readDirBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return out
	}
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestCampaignCleanAndDeterministic runs the same bounded campaign at two
// worker-pool widths and demands bit-identical trajectories: same summary,
// same corpus files, no oracle failures on the healthy runtime.
func TestCampaignCleanAndDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs full simulations")
	}
	defer experiments.SetJobs(experiments.Jobs())

	run := func(jobs int, corpusDir string) *Report {
		experiments.SetJobs(jobs)
		rep, err := Run(Options{Runs: 12, Seed: 7, CorpusDir: corpusDir})
		if err != nil {
			t.Fatalf("campaign (jobs=%d): %v", jobs, err)
		}
		return rep
	}

	dir1, dir4 := t.TempDir(), t.TempDir()
	rep1 := run(1, dir1)
	rep4 := run(4, dir4)

	if rep1.Failed() {
		t.Fatalf("clean campaign reported failures:\n%s", rep1.Summary())
	}
	if s1, s4 := rep1.Summary(), rep4.Summary(); s1 != s4 {
		t.Errorf("summary depends on -j:\njobs=1:\n%s\njobs=4:\n%s", s1, s4)
	}
	c1, c4 := readDirBytes(t, dir1), readDirBytes(t, dir4)
	if len(c1) == 0 {
		t.Error("campaign produced an empty corpus")
	}
	if len(c1) != len(c4) {
		t.Fatalf("corpus size depends on -j: %d vs %d", len(c1), len(c4))
	}
	for name, data := range c1 {
		if !bytes.Equal(data, c4[name]) {
			t.Errorf("corpus entry %s differs between -j runs", name)
		}
	}
	if rep1.Evals != 12 {
		t.Errorf("Evals = %d, want 12", rep1.Evals)
	}
	if rep1.NewCoverage == 0 {
		t.Error("no new coverage in a fresh campaign — signature is dead")
	}
	if rep1.CovDims != covDims {
		t.Errorf("CovDims = %d, want %d", rep1.CovDims, covDims)
	}
}

// TestCampaignReloadsCorpus verifies that a second campaign over the same
// corpus directory re-evaluates the persisted plans.
func TestCampaignReloadsCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs full simulations")
	}
	dir := t.TempDir()
	rep1, err := Run(Options{Runs: 6, Seed: 3, CorpusDir: dir})
	if err != nil {
		t.Fatalf("first campaign: %v", err)
	}
	if rep1.CorpusSize == 0 {
		t.Fatal("first campaign saved no corpus")
	}
	rep2, err := Run(Options{Runs: 6, Seed: 3, CorpusDir: dir})
	if err != nil {
		t.Fatalf("second campaign: %v", err)
	}
	if rep2.CorpusLoaded != rep1.CorpusSize {
		t.Errorf("second campaign loaded %d entries, first saved %d",
			rep2.CorpusLoaded, rep1.CorpusSize)
	}
	if rep2.Failed() {
		t.Fatalf("corpus replay reported failures:\n%s", rep2.Summary())
	}
}

// hasStall reports whether the plan contains a stall spec — the trigger for
// the planted bug below.
func hasStall(p *fault.Plan) bool {
	if p == nil {
		return false
	}
	for _, s := range p.Faults {
		if s.Kind == fault.KindStall {
			return true
		}
	}
	return false
}

// TestCampaignFindsAndShrinksPlantedBug is the end-to-end proof the engine
// works: a bug is planted behind the sabotage hook (any plan with a stall
// spec leaks a phantom in-flight message, so the epoch never drains), and
// the campaign must find it, classify it as a hang, shrink the triggering
// plan to a single stall spec, and emit a ready-to-run repro.
func TestCampaignFindsAndShrinksPlantedBug(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs full simulations")
	}
	reproDir := t.TempDir()
	rep, err := Run(Options{
		Runs:         16,
		Seed:         5,
		ReproDir:     reproDir,
		ShrinkBudget: 80,
		MaxShrinks:   1,
		Hook: func(sys *core.System, plan *fault.Plan) {
			// Planted bug: stall handling "loses" a message. Restricted to
			// plans not already entitled to hang so the oracle breach is
			// unambiguous.
			if hasStall(plan) && !planCanHang(plan) {
				sys.MsgStaged()
			}
		},
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if !rep.Failed() {
		t.Fatalf("campaign missed the planted bug:\n%s", rep.Summary())
	}

	f := rep.Failures[0]
	if f.Verdict != FailHang {
		t.Fatalf("verdict = %s, want %s (err: %s)", f.Verdict, FailHang, f.Err)
	}
	if f.Shrunk == nil || len(f.Shrunk.Faults) != 1 {
		t.Fatalf("shrunk plan has %d specs, want 1:\n%s",
			len(f.Shrunk.Faults), fault.Canonical(f.Shrunk))
	}
	if f.Shrunk.Faults[0].Kind != fault.KindStall {
		t.Errorf("shrunk to %q spec, want stall", f.Shrunk.Faults[0].Kind)
	}
	if f.ShrinkEvals == 0 {
		t.Error("shrinker spent zero evaluations")
	}

	// The repro must be on disk, valid, and named in the CLI line.
	if f.ReproPath == "" {
		t.Fatal("no repro written")
	}
	data, err := os.ReadFile(f.ReproPath)
	if err != nil {
		t.Fatalf("read repro: %v", err)
	}
	p, err := fault.Parse(data)
	if err != nil {
		t.Fatalf("repro does not parse: %v", err)
	}
	if fault.Hash(p) != fault.Hash(f.Shrunk) {
		t.Error("repro file does not match the shrunk plan")
	}
	if !strings.Contains(f.CLI, "-faults "+f.ReproPath) {
		t.Errorf("CLI %q does not reference the repro path", f.CLI)
	}
	if !strings.Contains(f.CLI, "-audit") {
		t.Errorf("CLI %q does not re-arm the auditor", f.CLI)
	}
	if !strings.Contains(rep.Summary(), "FAILURE FAIL-hang") {
		t.Errorf("summary does not surface the failure:\n%s", rep.Summary())
	}

	// The .cli companion must carry the same command.
	cliFile := strings.TrimSuffix(f.ReproPath, ".json") + ".cli"
	body, err := os.ReadFile(cliFile)
	if err != nil {
		t.Fatalf("read CLI companion: %v", err)
	}
	if !strings.Contains(string(body), f.CLI) {
		t.Errorf("CLI companion %q does not contain %q", body, f.CLI)
	}
}

func TestPlanCanHang(t *testing.T) {
	cases := []struct {
		name string
		plan *fault.Plan
		want bool
	}{
		{"nil", nil, false},
		{"empty", &fault.Plan{}, false},
		{"stall", &fault.Plan{Faults: []fault.Spec{
			{Kind: fault.KindStall, Unit: 3, At: 10, Cycles: 50, Rank: -1},
		}}, false},
		{"kill", &fault.Plan{Faults: []fault.Spec{
			{Kind: fault.KindKill, Unit: 3, At: 10, Rank: -1},
		}}, true},
		{"lossy drop", &fault.Plan{Faults: []fault.Spec{
			{Kind: fault.KindDrop, Scope: fault.ScopeL1Gather, Prob: 0.5, Rank: -1},
		}}, false},
		{"permanent blackout", &fault.Plan{Faults: []fault.Spec{
			{Kind: fault.KindDrop, Scope: fault.ScopeL1Gather, Prob: 1, Rank: -1},
		}}, true},
		{"windowed blackout", &fault.Plan{Faults: []fault.Spec{
			{Kind: fault.KindDrop, Scope: fault.ScopeL1Gather, Prob: 1, Until: 500, Rank: -1},
		}}, false},
		{"count-capped blackout", &fault.Plan{Faults: []fault.Spec{
			{Kind: fault.KindCorrupt, Scope: fault.ScopeL2Down, Prob: 1, Count: 3, Rank: -1},
		}}, false},
	}
	for _, tc := range cases {
		if got := planCanHang(tc.plan); got != tc.want {
			t.Errorf("%s: planCanHang = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSignatureSeparatesBehaviors(t *testing.T) {
	base := uint64(10000)
	quiet := &stats.Result{Makespan: base, Faults: &stats.FaultStats{}}
	noisy := &stats.Result{Makespan: 2 * base, Faults: &stats.FaultStats{Drops: 100, Retries: 100}}
	if signature(VerdictOK, quiet, base) == signature(VerdictOK, noisy, base) {
		t.Error("signature cannot tell a quiet run from a fault-heavy run")
	}
	if signature(VerdictOK, quiet, base) == signature(FailAudit, quiet, base) {
		t.Error("signature ignores the verdict")
	}
	// Same order of magnitude folds together — that's the point of bucketing.
	a := &stats.Result{Makespan: base, Faults: &stats.FaultStats{Drops: 100}}
	b := &stats.Result{Makespan: base, Faults: &stats.FaultStats{Drops: 120}}
	if signature(VerdictOK, a, base) != signature(VerdictOK, b, base) {
		t.Error("bucketing failed: 100 vs 120 drops should share a signature")
	}
	if len(signature(VerdictOK, nil, base)) != 2*covDims {
		t.Errorf("signature length = %d, want %d hex chars",
			len(signature(VerdictOK, nil, base)), 2*covDims)
	}
}

func TestVerdictStringsAndOrdering(t *testing.T) {
	for v := Verdict(0); v < verdictCount; v++ {
		if strings.HasPrefix(v.String(), "verdict(") {
			t.Errorf("verdict %d has no name", int(v))
		}
		wantFail := v >= FailAudit
		if v.Failed() != wantFail {
			t.Errorf("%s: Failed() = %v, want %v", v, v.Failed(), wantFail)
		}
	}
	if VerdictOK.Failed() || VerdictDegraded.Failed() {
		t.Error("non-failure verdicts classified as failed")
	}
}

func TestLoadCorpusSkipsInvalid(t *testing.T) {
	dir := t.TempDir()
	topo := fault.Topology{Units: 64, Ranks: 1, Horizon: 1 << 14}

	good := &fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindStall, Unit: 3, At: 10, Cycles: 50, Rank: -1},
	}}
	if err := os.WriteFile(filepath.Join(dir, "a-good.json"), fault.Canonical(good), 0o644); err != nil {
		t.Fatal(err)
	}
	// Stale: valid JSON for a bigger topology (unit 100 of 64).
	stale := &fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindKill, Unit: 100, At: 10, Rank: -1},
	}}
	if err := os.WriteFile(filepath.Join(dir, "b-stale.json"), fault.Canonical(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "c-junk.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a plan"), 0o644); err != nil {
		t.Fatal(err)
	}

	plans, err := loadCorpus(dir, topo)
	if err != nil {
		t.Fatalf("loadCorpus: %v", err)
	}
	if len(plans) != 1 {
		t.Fatalf("loaded %d plans, want 1 (only the valid one)", len(plans))
	}
	if plans[0].Faults[0].Kind != fault.KindStall {
		t.Errorf("loaded wrong plan: %s", fault.Canonical(plans[0]))
	}
	if _, err := loadCorpus(filepath.Join(dir, "missing"), topo); err != nil {
		t.Errorf("missing corpus dir should be empty, not an error: %v", err)
	}
}
