package bridge

import (
	"sort"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/msg"
)

// This file is the bridge fabric's serialization boundary. Snapshots are
// taken at the bulk-sync epoch barrier, where the transient buffers
// (scatter, backup, upMail, retransmit windows) are provably empty — but the
// codec encodes them anyway: a non-empty buffer at snapshot time then shows
// up as a digest mismatch or audit violation instead of being silently
// dropped. Map-backed state (toArrive, assign, idle) is encoded in sorted
// key order so the byte stream is deterministic.

// SnapshotTo encodes the level-1 bridge's complete mutable state.
func (b *Level1) SnapshotTo(e *checkpoint.Enc) {
	e.I64(int64(b.rank))
	e.U64(b.rng.State())
	e.Bool(b.running)
	e.I64(int64(b.roundIdx))
	e.U64(b.lastGather)
	e.U32(b.nextRound)
	e.U64(b.prevFinished)
	e.U64(b.wth)

	// Counters.
	e.U64(b.st.GatherRounds)
	e.U64(b.st.ScatterRounds)
	e.U64(b.st.WastedGathers)
	e.U64(b.st.BusBytes)
	e.U64(b.st.LBRounds)
	e.U64(b.st.BlocksAssigned)
	e.U64(b.st.StateSweeps)

	// Transient buffers.
	e.U32(uint32(len(b.scatter)))
	for c := range b.scatter {
		e.U64(b.scatterBytes[c])
		e.U32(uint32(len(b.scatter[c])))
		for _, m := range b.scatter[c] {
			msg.EncodeSnapshot(e, m)
		}
	}
	e.U64(b.backupBytes)
	e.U32(uint32(len(b.backup)))
	for _, m := range b.backup {
		msg.EncodeSnapshot(e, m)
	}
	b.upMail.SnapshotTo(e)

	// Migration metadata and LB round state.
	b.borrowed.SnapshotTo(e)
	children := make([]int, 0, len(b.toArrive))
	for c := range b.toArrive {
		children = append(children, c)
	}
	sort.Ints(children)
	e.U32(uint32(len(children)))
	for _, c := range children {
		e.I64(int64(c))
		e.U64(b.toArrive[c])
	}
	keys := make([]schedKey, 0, len(b.assign))
	for k := range b.assign {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].giver != keys[j].giver {
			return keys[i].giver < keys[j].giver
		}
		return keys[i].round < keys[j].round
	})
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		a := b.assign[k]
		e.I64(int64(k.giver))
		e.U32(k.round)
		e.Bool(a.up)
		e.I64(int64(a.next))
		e.U32(uint32(len(a.receivers)))
		for _, r := range a.receivers {
			e.I64(int64(r))
		}
		blocks := make([]uint64, 0, len(a.blockTo))
		for blk := range a.blockTo {
			blocks = append(blocks, blk)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		e.U32(uint32(len(blocks)))
		for _, blk := range blocks {
			e.U64(blk)
			e.I64(int64(a.blockTo[blk]))
		}
	}

	// Per-child last-reported states.
	e.U32(uint32(len(b.lastStates)))
	for i := range b.lastStates {
		st := &b.lastStates[i]
		e.U64(st.LMailbox)
		e.U64(st.WQueue)
		e.U64(st.WFinished)
	}

	// Retry-protocol endpoints (fault runs only).
	e.Bool(b.fi != nil)
	if b.fi == nil {
		return
	}
	e.U32(b.fi.upSeq)
	e.U64(b.fi.extraBackup)
	e.U32(uint32(len(b.fi.scatterSeq)))
	for i := range b.fi.scatterSeq {
		e.U32(b.fi.scatterSeq[i])
		b.fi.gatherDedup[i].SnapshotTo(e)
		e.Bool(b.fi.scatterRet[i] != nil)
		if b.fi.scatterRet[i] != nil {
			b.fi.scatterRet[i].SnapshotTo(e)
		}
		e.Bool(b.fi.dead[i])
	}
	e.Bool(b.fi.upRet != nil)
	if b.fi.upRet != nil {
		b.fi.upRet.SnapshotTo(e)
	}
	b.fi.downDedup.SnapshotTo(e)
}

// PendingMsgs returns the number of messages physically held by the bridge
// (scatter buffers, backup buffer, up-mailbox), for the auditor's structural
// in-flight accounting.
func (b *Level1) PendingMsgs() int {
	n := 0
	for c := range b.scatter {
		n += len(b.scatter[c])
	}
	n += len(b.backup)
	n += b.upMail.Len()
	return n
}

// RetransPending returns the number of unacked messages across all of the
// bridge's retransmit buffers (zero when faults are off).
func (b *Level1) RetransPending() int {
	if b.fi == nil {
		return 0
	}
	n := 0
	for _, r := range b.fi.scatterRet {
		if r != nil {
			n += r.Len()
		}
	}
	if b.fi.upRet != nil {
		n += b.fi.upRet.Len()
	}
	return n
}

// SeqWatermarks returns the bridge's hop sequence counters — the up-hop
// sender sequence and the per-child scatter sequences — for the auditor's
// monotonicity check. Nil when faults are off.
func (b *Level1) SeqWatermarks() (up uint32, scatter []uint32) {
	if b.fi == nil {
		return 0, nil
	}
	return b.fi.upSeq, b.fi.scatterSeq
}

// SnapshotTo encodes the level-2 bridge's complete mutable state.
func (l *Level2) SnapshotTo(e *checkpoint.Enc) {
	e.U64(l.rng.State())
	e.U32(l.nextRound)

	e.U64(l.st.GatherBatches)
	e.U64(l.st.ScatterBatches)
	e.U64(l.st.CrossRankBytes)
	e.U64(l.st.LBRounds)
	e.U64(l.st.BlocksAssigned)

	e.U32(uint32(len(l.scatterQ)))
	for r := range l.scatterQ {
		e.U64(l.scatterBytes[r])
		e.U32(uint32(len(l.scatterQ[r])))
		for _, m := range l.scatterQ[r] {
			msg.EncodeSnapshot(e, m)
		}
	}
	e.U32(uint32(len(l.running)))
	for _, r := range l.running {
		e.Bool(r)
	}
	ranks := make([]int, 0, len(l.idle))
	for r, v := range l.idle {
		if v {
			ranks = append(ranks, r)
		}
	}
	sort.Ints(ranks)
	e.U32(uint32(len(ranks)))
	for _, r := range ranks {
		e.I64(int64(r))
	}

	l.borrowed.SnapshotTo(e)
	keys := make([]schedKey, 0, len(l.assign))
	for k := range l.assign {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].giver != keys[j].giver {
			return keys[i].giver < keys[j].giver
		}
		return keys[i].round < keys[j].round
	})
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		a := l.assign[k]
		e.I64(int64(k.giver))
		e.U32(k.round)
		e.I64(int64(a.next))
		e.U32(uint32(len(a.receivers)))
		for _, r := range a.receivers {
			e.I64(int64(r))
		}
		blocks := make([]uint64, 0, len(a.blockTo))
		for blk := range a.blockTo {
			blocks = append(blocks, blk)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		e.U32(uint32(len(blocks)))
		for _, blk := range blocks {
			e.U64(blk)
			e.I64(int64(a.blockTo[blk]))
		}
	}

	e.Bool(l.fi != nil)
	if l.fi == nil {
		return
	}
	e.U32(uint32(len(l.fi.downSeq)))
	for i := range l.fi.downSeq {
		e.U32(l.fi.downSeq[i])
		l.fi.upDedup[i].SnapshotTo(e)
		e.Bool(l.fi.downRet[i] != nil)
		if l.fi.downRet[i] != nil {
			l.fi.downRet[i].SnapshotTo(e)
		}
	}
}

// PendingMsgs returns the number of messages queued for channel transfer,
// for the auditor's structural in-flight accounting.
func (l *Level2) PendingMsgs() int {
	n := 0
	for r := range l.scatterQ {
		n += len(l.scatterQ[r])
	}
	return n
}

// RetransPending returns the number of unacked messages across the level-2
// down-hop retransmit buffers (zero when faults are off).
func (l *Level2) RetransPending() int {
	if l.fi == nil {
		return 0
	}
	n := 0
	for _, r := range l.fi.downRet {
		if r != nil {
			n += r.Len()
		}
	}
	return n
}
