package bridge

import (
	"ndpbridge/internal/config"
	"ndpbridge/internal/dram"
	"ndpbridge/internal/metadata"
	"ndpbridge/internal/metrics"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/sched"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/trace"
)

// Level2 is the level-2 bridge: a host software runtime connecting the
// level-1 bridges over the existing DDR channels (Section V-A). It gathers
// cross-rank messages from the level-1 mailboxes, routes them — including
// assigning receiver ranks during cross-rank load balancing — and scatters
// them down the destination rank's channel. Each transfer occupies the
// channel link and pays a fixed host software overhead per batch.
//ndplint:domain(bridge-l2)
type Level2 struct {
	env Env //ndplint:nosnap simulation wiring, rebound at construction
	// eng/cfg cache env.Engine()/env.Cfg() — both stable for the system's
	// lifetime — so hot paths skip the interface dispatch.
	eng     *sim.Engine    //ndplint:nosnap cached wiring, set at construction
	cfg     *config.Config //ndplint:nosnap cached wiring, set at construction
	bridges []*Level1   //ndplint:nosnap topology from config; bridges snapshot themselves
	links   []*sim.Link //ndplint:nosnap channel wiring from config; link busy-state is replayed

	// borrowed maps block address → receiver rank for cross-rank lends.
	borrowed *metadata.Borrowed

	// assign tracks cross-rank LB rounds by (giver rank, round tag).
	assign    map[schedKey]*assignState
	nextRound uint32

	// scatterQ holds messages awaiting channel transfer to each rank.
	scatterQ     [][]*msg.Message
	scatterBytes []uint64

	running []bool // per-channel loop active
	idle    map[int]bool
	rng     *sim.RNG

	// Per-channel pre-bound callbacks and reused batch buffers. One batch
	// is in flight per channel (running[ch]), so the buffers are safe to
	// recycle between finishBatch and the next step.
	chRanks   [][]int  //ndplint:nosnap topology constant from config
	stepFns   []func() //ndplint:nosnap wiring, rebound at construction
	finishFns []func() //ndplint:nosnap wiring, rebound at construction
	batchDown [][]l2Delivery //ndplint:nosnap in flight only while the channel link is busy
	batchUp   [][]l2Delivery //ndplint:nosnap in flight only while the channel link is busy

	st Stats2

	// Fault-injection state; nil when no fault plan is attached.
	fi *faultL2

	// Instruments, bound by BindMetrics; nil no-ops when metrics are off.
	mBatch    *metrics.Histogram // bytes per channel batch (scatter + gather)
	mLBBudget *metrics.Histogram // workload budget per cross-rank SCHEDULE
	cLB       *metrics.Counter
}

// BindMetrics attaches the level-2 bridge's instruments to reg.
//ndplint:seam metrics wiring before the clock starts
func (l *Level2) BindMetrics(reg *metrics.Registry) {
	l.mBatch = reg.Histogram("l2_batch_bytes")
	l.mLBBudget = reg.Histogram("l2_lb_budget_workload")
	l.cLB = reg.Counter("l2_lb_rounds")
}

// Stats2 holds level-2 counters.
type Stats2 struct {
	GatherBatches  uint64
	ScatterBatches uint64
	CrossRankBytes uint64
	LBRounds       uint64
	BlocksAssigned uint64
}

// NewLevel2 wires the level-2 bridge to the level-1 bridges. The transport
// selected by cfg.Level2 decides the link topology: the host runtime shares
// one DDR channel per channel group; DIMM-Link gives every rank a dedicated
// external link; ABC-DIMM serializes everything on one broadcast bus.
func NewLevel2(env Env, bridges []*Level1, rng *sim.RNG) *Level2 {
	cfg := env.Cfg()
	var links []*sim.Link
	switch cfg.Level2 {
	case config.L2DIMMLink:
		links = make([]*sim.Link, len(bridges))
		for i := range links {
			links[i] = sim.NewLink("dimm-link", cfg.DIMMLinkBytesPerCycle, 8)
		}
	case config.L2ABCDIMM:
		links = []*sim.Link{sim.NewLink("abc-bus", cfg.Timing.ChannelBytesPerCycle, 8)}
	default:
		links = make([]*sim.Link, cfg.Geometry.Channels)
		for i := range links {
			links[i] = sim.NewLink("channel", cfg.Timing.ChannelBytesPerCycle, 4)
		}
	}
	l2 := &Level2{
		env:          env,
		eng:          env.Engine(),
		cfg:          cfg,
		bridges:      bridges,
		links:        links,
		borrowed:     metadata.NewBorrowed(cfg.Metadata.BridgeBorrowedEntries, cfg.Metadata.BridgeBorrowedWays),
		assign:       make(map[schedKey]*assignState),
		nextRound:    1,
		scatterQ:     make([][]*msg.Message, len(bridges)),
		scatterBytes: make([]uint64, len(bridges)),
		running:      make([]bool, len(links)),
		idle:         make(map[int]bool),
		rng:          rng,
	}
	for _, b := range bridges {
		b.SetUp(l2)
	}
	l2.chRanks = make([][]int, len(links))
	l2.stepFns = make([]func(), len(links))
	l2.finishFns = make([]func(), len(links))
	l2.batchDown = make([][]l2Delivery, len(links))
	l2.batchUp = make([][]l2Delivery, len(links))
	for ch := range links {
		ch := ch
		l2.chRanks[ch] = l2.ranksOn(ch)
		l2.stepFns[ch] = func() { l2.step(ch) }
		l2.finishFns[ch] = func() { l2.finishBatch(ch) }
	}
	return l2
}

// Stats returns the level-2 counters.
func (l *Level2) Stats() Stats2 { return l.st }

// Links exposes the channel links for traffic accounting.
func (l *Level2) Links() []*sim.Link { return l.links }

// Start begins the periodic cross-rank scheduling sweep, offset from the
// level-1 sweeps by half a period.
func (l *Level2) Start() {
	cfg := l.cfg
	l.eng.After(cfg.IState+cfg.IState/2, l.sweep)
}

// RankAllIdle implements upLevel: a level-1 bridge reports a starved rank.
//ndplint:seam partition boundary: rank idle vote feeding the channel sweep
func (l *Level2) RankAllIdle(rank int) { l.idle[rank] = true }

// KickChannel implements upLevel: new up-bound traffic exists on rank's
// transport group.
//ndplint:seam partition boundary: rank bridge wakes the channel step loop
func (l *Level2) KickChannel(rank int) {
	l.ensureLoop(l.groupOf(rank))
}

// groupOf maps a rank to its transport loop index.
func (l *Level2) groupOf(rank int) int {
	switch l.cfg.Level2 {
	case config.L2DIMMLink:
		return rank
	case config.L2ABCDIMM:
		return 0
	}
	return l.env.Map().ChannelOfRank(rank)
}

func (l *Level2) sweep() {
	cfg := l.cfg
	if cfg.Design.LoadBalancing() && len(l.bridges) > 1 {
		l.crossRankBalance()
	}
	for ch := range l.running {
		l.ensureLoop(ch)
	}
	l.eng.After(cfg.IState, l.sweep)
}

// crossRankBalance matches starved ranks with loaded ranks (Section VI-A:
// the level-2 bridge only assigns budgets and coordinates data among the
// level-1 bridges).
func (l *Level2) crossRankBalance() {
	cfg := l.cfg
	states := make([]sched.ChildState, len(l.bridges))
	for i, b := range l.bridges {
		states[i] = b.AggregateState()
		states[i].Idle = l.idle[i]
	}
	l.idle = make(map[int]bool)

	var receivers, givers []int
	var wthMax uint64 = 1
	for i, s := range states {
		if w := l.bridges[i].Wth(); w > wthMax {
			wthMax = w
		}
		per := uint64(cfg.Geometry.UnitsPerRank())
		if s.Idle || (cfg.LoadBalance.Adv && s.WQueue+s.ToArrive < wthMax) {
			receivers = append(receivers, i)
		} else if s.WQueue > wthMax*per/4 {
			givers = append(givers, i)
		}
	}
	if len(receivers) == 0 || len(givers) == 0 {
		return
	}
	// A rank-level refill feeds many units at once.
	rankWth := wthMax * uint64(cfg.Geometry.UnitsPerRank()) / 4
	queueOf := func(g int) uint64 { return states[g].WQueue }
	cmds := sched.Match(l.rng, receivers, givers, cfg.LoadBalance, rankWth, queueOf)
	now := uint64(l.eng.Now())
	for _, c := range cmds {
		l.st.LBRounds++
		l.cLB.Inc()
		l.mLBBudget.Observe(c.Budget)
		round := l.newRound()
		l.assign[schedKey{c.Giver, round}] = &assignState{receivers: c.Receivers, blockTo: make(map[uint64]int)}
		// Track is the giver rank: cross-rank rounds have no single unit.
		l.env.Trace().Record(trace.KindLB, c.Giver, now, now, "l2-schedule")
		l.bridges[c.Giver].CommandScheduleRank(c.Budget, round)
	}
}

// newRound allocates a level-2 round tag (odd).
func (l *Level2) newRound() uint32 {
	l.nextRound += 2
	return l.nextRound
}

// l2Delivery is one message of an in-flight channel batch with its rank.
type l2Delivery struct {
	rank int
	m    *msg.Message
}

func (l *Level2) ensureLoop(ch int) {
	if ch < 0 || ch >= len(l.running) || l.running[ch] {
		return
	}
	l.running[ch] = true
	l.eng.After(0, l.stepFns[ch])
}

// ranksOn lists the global rank indices served by one transport loop.
func (l *Level2) ranksOn(ch int) []int {
	switch l.cfg.Level2 {
	case config.L2DIMMLink:
		return []int{ch}
	case config.L2ABCDIMM:
		out := make([]int, len(l.bridges))
		for i := range out {
			out[i] = i
		}
		return out
	}
	per := l.cfg.Geometry.RanksPerChannel
	out := make([]int, 0, per)
	for r := ch * per; r < (ch+1)*per; r++ {
		if r < len(l.bridges) {
			out = append(out, r)
		}
	}
	return out
}

// step performs one channel sweep: the host software scatters everything
// pending to this channel's ranks and gathers everything waiting in their
// up-mailboxes, as one aggregated transaction — one software overhead plus
// the channel occupancy of the combined bytes and the per-rank state polls.
func (l *Level2) step(ch int) {
	cfg := l.cfg
	eng := l.eng
	now := eng.Now()
	ranks := l.chRanks[ch]

	down := l.batchDown[ch][:0]
	up := l.batchUp[ch][:0]
	var bytes uint64
	budget := cfg.Timing.HostBatchBytes

	for _, r := range ranks {
		// Scatter everything pending for this rank (bounded by the
		// batch budget; a full down-hop retransmit buffer parks the
		// rank's queue until acks free space).
		retry := l.fi != nil && l.fi.downRet != nil
		if !retry || !l.fi.downRet[r].Full() {
			for len(l.scatterQ[r]) > 0 && bytes < budget {
				m := l.scatterQ[r][0]
				l.scatterQ[r] = l.scatterQ[r][1:]
				l.scatterBytes[r] -= m.Size()
				bytes += m.Size()
				if retry {
					if m.Seq == 0 {
						l.fi.downSeq[r]++
						m.Seq = l.fi.downSeq[r]
						m.Sum = msg.Checksum(m)
					}
					l.fi.downRet[r].Track(m)
					if l.fi.downRet[r].Full() {
						break
					}
				}
				down = append(down, l2Delivery{r, m})
			}
		}
		// Gather the rank's up-bound messages.
		if bytes < budget {
			ms := l.bridges[r].DrainUp(budget - bytes)
			for _, m := range ms {
				bytes += m.Size()
				up = append(up, l2Delivery{r, m})
			}
		}
	}
	if len(down) == 0 && len(up) == 0 {
		// Keep polling while upstream work is still in progress.
		for _, r := range ranks {
			if l.bridges[r].HasWork() || l.scatterBytes[r] > 0 {
				eng.After(cfg.IMin(), l.stepFns[ch])
				return
			}
		}
		l.running[ch] = false
		return
	}
	// The host transport polls rank state over the channel and pays the
	// software batch overhead; hardware inter-DIMM links do neither.
	var poll uint64
	var overhead sim.Cycles
	if cfg.Level2 == config.L2Host {
		poll = uint64(len(ranks)) * stateMsgBytes
		overhead = cfg.Timing.HostForwardOverhead
	}
	end := l.links[ch].Reserve(now, bytes+poll) + overhead
	if len(down) > 0 {
		l.st.ScatterBatches++
	}
	if len(up) > 0 {
		l.st.GatherBatches++
	}
	l.st.CrossRankBytes += bytes
	l.mBatch.Observe(bytes)
	l.batchDown[ch] = down
	l.batchUp[ch] = up
	eng.At(end, l.finishFns[ch])
}

// finishBatch applies one completed channel batch: scattered messages reach
// their rank bridges, gathered ones are routed, and the sweep continues.
func (l *Level2) finishBatch(ch int) {
	down := l.batchDown[ch]
	up := l.batchUp[ch]
	for _, d := range down {
		l.bridges[d.rank].AcceptFromUp(d.m)
	}
	for _, d := range up {
		l.acceptUp(d.rank, d.m)
	}
	for i := range down {
		down[i] = l2Delivery{}
	}
	for i := range up {
		up[i] = l2Delivery{}
	}
	l.batchDown[ch] = down[:0]
	l.batchUp[ch] = up[:0]
	l.step(ch)
}

// routeUp routes one gathered cross-rank message to its destination rank's
// scatter queue.
func (l *Level2) routeUp(m *msg.Message) {
	cfg := l.cfg
	amap := l.env.Map()

	if m.Sched && m.Dst < 0 {
		// Cross-rank lend: assign a receiver rank.
		srcRank := amap.GlobalRank(m.Src)
		as := l.assign[schedKey{srcRank, m.Round}]
		blk, _ := m.RouteAddr()
		blk = dram.BlockAlign(blk, cfg.GXfer)
		var rr int
		if v, hit := l.borrowed.Lookup(blk); hit {
			// First assignment wins for blocks straddling rounds.
			rr = int(v)
		} else if as != nil && len(as.receivers) > 0 {
			var ok bool
			rr, ok = as.blockTo[blk]
			if !ok {
				rr = as.receivers[as.next%len(as.receivers)]
				as.next++
				l.insertBorrowed(blk, rr)
				l.st.BlocksAssigned++
				as.blockTo[blk] = rr
			}
		} else {
			// Unknown round (stale): send the block home, healing
			// the giver's isLent bit.
			m.Sched = false
			m.Dst = amap.Home(blk)
			rr = amap.GlobalRank(m.Dst)
		}
		l.pushDown(rr, m)
		return
	}

	blk, routable := m.RouteAddr()
	if routable {
		blk = dram.BlockAlign(blk, cfg.GXfer)
		home := amap.Home(blk)
		if m.Type == msg.TypeData && m.Dst == home {
			// Return passing through: drop the table entry.
			l.borrowed.Remove(blk)
		} else if r, ok := l.borrowed.Lookup(blk); ok {
			// The level-2 table knows the receiver rank; the
			// receiving level-1 bridge resolves the unit.
			l.pushDown(int(r), m)
			return
		} else if m.Escalate {
			// Unknown here: the block must have returned home.
			m.Escalate = false
			m.Dst = home
		}
	}
	if m.Dst < 0 {
		m.Dst = amap.Home(blk)
	}
	l.pushDown(amap.GlobalRank(m.Dst), m)
}

// BorrowedEntry reports the level-2 dataBorrowed mapping for blk
// (diagnostic/invariant-test hook).
func (l *Level2) BorrowedEntry(blk uint64) (int, bool) {
	if !l.borrowed.Contains(blk) {
		return 0, false
	}
	v, _ := l.borrowed.Lookup(blk)
	return int(v), true
}

func (l *Level2) insertBorrowed(blk uint64, rank int) {
	ev, evicted := l.borrowed.Insert(blk, uint64(rank))
	if evicted {
		// Back-invalidate: the receiver rank must return the block.
		r := int(ev.Value)
		if r >= 0 && r < len(l.bridges) {
			l.bridges[r].ForceReturnBlock(ev.Key)
		}
	}
}

func (l *Level2) pushDown(rank int, m *msg.Message) {
	l.scatterQ[rank] = append(l.scatterQ[rank], m)
	l.scatterBytes[rank] += m.Size()
	l.ensureLoop(l.groupOf(rank))
}
