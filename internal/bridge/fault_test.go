package bridge

import (
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/fault"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/ndpunit"
	"ndpbridge/internal/task"
)

// wireFaults arms one rank's fault machinery the way core.AttachFaults does:
// injector hop streams plus the retry-protocol endpoints on the bridge and
// every unit.
func wireFaults(units []*ndpunit.Unit, b *Level1, inj *fault.Injector, lost func(*msg.Message)) {
	b.EnableFaults(inj, true, lost)
	for _, u := range units {
		u.EnableFaults()
		u.SetLostHook(lost)
		u.EnableRetry(b)
	}
}

// seedRemote registers a spawner on unit 0 that enqueues n tasks addressed to
// unit 3's data, returning a pointer to the executed-task counter.
func seedRemote(env *testEnv, units []*ndpunit.Unit, n int) *int {
	ran := 0
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ran++; ctx.Compute(5) })
	dst := env.amap.Base(3) + 64
	spawner := env.reg.Register("s", func(ctx task.Ctx, tk task.Task) {
		for i := 0; i < n; i++ {
			ctx.Enqueue(task.New(fn, 0, dst, 10))
		}
	})
	units[0].SeedTask(task.New(spawner, 0, env.amap.Base(0)+64, 10))
	units[0].Kick()
	return &ran
}

// TestGatherDropExactRetryCounts injects exactly five gather-hop drops and
// asserts the retry protocol recovers each one: exact drop and retransmission
// counts, every message eventually acked, no terminal loss.
func TestGatherDropExactRetryCounts(t *testing.T) {
	env := newTestEnv(config.DesignB)
	units, b := build(t, env, 0)
	inj := fault.New(&fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindDrop, Scope: fault.ScopeL1Gather, Prob: 1, Rank: -1, Unit: -1, Count: 5},
	}}, 1)
	var lost []*msg.Message
	wireFaults(units, b, inj, func(m *msg.Message) { lost = append(lost, m) })
	b.Start()

	ran := seedRemote(env, units, 8)
	env.eng.RunUntil(200_000)

	if *ran != 8 {
		t.Fatalf("executed %d tasks, want 8", *ran)
	}
	if c := inj.Counters(); c.Drops != 5 {
		t.Errorf("drops = %d, want exactly 5", c.Drops)
	}
	var rs msg.RetransStats
	var dups uint64
	for _, u := range units {
		r, d := u.RetryStats()
		rs.Tracked += r.Tracked
		rs.Acked += r.Acked
		rs.Nacked += r.Nacked
		rs.Retries += r.Retries
		dups += d
	}
	if rs.Tracked != 8 || rs.Acked != 8 {
		t.Errorf("tracked/acked = %d/%d, want 8/8", rs.Tracked, rs.Acked)
	}
	if rs.Retries != 5 {
		t.Errorf("retries = %d, want exactly 5 (one per drop)", rs.Retries)
	}
	if rs.Nacked != 0 {
		t.Errorf("nacks = %d, want 0 (no corruption injected)", rs.Nacked)
	}
	if len(lost) != 0 {
		t.Errorf("%d messages terminally lost, want 0", len(lost))
	}
	if env.inflight != 0 {
		t.Errorf("inflight = %d, want 0 (silent loss)", env.inflight)
	}
}

// TestScatterDupFilteredExactlyOnce duplicates scatter deliveries on a
// zero-delay hop, where the receiver clears Seq/Sum synchronously during the
// first delivery — the duplicate must still carry the original sequence
// number and be discarded by the dedup filter, never executed twice.
func TestScatterDupFilteredExactlyOnce(t *testing.T) {
	env := newTestEnv(config.DesignB)
	units, b := build(t, env, 0)
	inj := fault.New(&fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindDup, Scope: fault.ScopeL1Scatter, Prob: 1, Rank: -1, Unit: -1, Count: 4},
	}}, 1)
	var lost []*msg.Message
	wireFaults(units, b, inj, func(m *msg.Message) { lost = append(lost, m) })
	b.Start()

	ran := seedRemote(env, units, 8)
	env.eng.RunUntil(200_000)

	if *ran != 8 {
		t.Fatalf("executed %d tasks, want exactly 8 (duplicates must not run)", *ran)
	}
	if c := inj.Counters(); c.Duplicates != 4 {
		t.Errorf("dups = %d, want exactly 4", c.Duplicates)
	}
	var filtered uint64
	for _, u := range units {
		_, d := u.RetryStats()
		filtered += d
	}
	if filtered != 4 {
		t.Errorf("dupsFiltered = %d, want 4 (every duplicate discarded)", filtered)
	}
	if len(lost) != 0 || env.inflight != 0 {
		t.Errorf("lost=%d inflight=%d, want 0/0", len(lost), env.inflight)
	}
}

// TestOverflowPausesGatherNoLoss trips the bridge's backup-buffer
// backpressure with injected phantom backlog: while overflowed the bridge
// must not gather (messages wait in the mailbox), and after the overflow
// clears every message must still arrive — delayed, never dropped.
func TestOverflowPausesGatherNoLoss(t *testing.T) {
	env := newTestEnv(config.DesignB)
	units, b := build(t, env, 0)
	inj := fault.New(&fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindOverflow, Rank: 0, Unit: -1, At: 1, Cycles: 100, Bytes: 1},
	}}, 1)
	var lost []*msg.Message
	wireFaults(units, b, inj, func(m *msg.Message) { lost = append(lost, m) })
	b.Start()

	ran := seedRemote(env, units, 8)
	env.eng.At(1, func() { b.InjectOverflow(1 << 30) })
	env.eng.At(30_000, func() { b.ClearOverflow(1 << 30) })

	env.eng.RunUntil(29_000)
	if *ran != 0 {
		t.Fatalf("%d tasks delivered during overflow backpressure, want 0", *ran)
	}
	if units[0].MailboxUsed() == 0 {
		t.Fatal("mailbox empty during overflow: messages were gathered or lost")
	}

	env.eng.RunUntil(300_000)
	if *ran != 8 {
		t.Fatalf("executed %d tasks after overflow cleared, want 8", *ran)
	}
	if c := inj.Counters(); c.Drops != 0 {
		t.Errorf("drops = %d, want 0", c.Drops)
	}
	if len(lost) != 0 || env.inflight != 0 {
		t.Errorf("lost=%d inflight=%d, want 0/0", len(lost), env.inflight)
	}
}

// TestMailboxFullUnderRetransWatermark shrinks both the mailbox and the
// gather-hop retransmit watermark so every backpressure stage engages:
// unacked messages fill the retransmit buffer, the unit refuses drains, the
// mailbox fills, and the sender core stalls — yet with the drop budget
// exhausted everything is delivered exactly once.
func TestMailboxFullUnderRetransWatermark(t *testing.T) {
	env := newTestEnv(config.DesignB)
	env.cfg.Buffers.MailboxBytes = 256
	env.cfg.Retry.BufBytes = 64
	units, b := build(t, env, 0)
	inj := fault.New(&fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindDrop, Scope: fault.ScopeL1Gather, Prob: 1, Rank: -1, Unit: -1, Count: 3},
	}}, 1)
	var lost []*msg.Message
	wireFaults(units, b, inj, func(m *msg.Message) { lost = append(lost, m) })
	b.Start()

	ran := seedRemote(env, units, 16)
	env.eng.RunUntil(400_000)

	if *ran != 16 {
		t.Fatalf("executed %d tasks, want 16", *ran)
	}
	if c := inj.Counters(); c.Drops != 3 {
		t.Errorf("drops = %d, want exactly 3", c.Drops)
	}
	rs, _ := units[0].RetryStats()
	if rs.Retries != 3 {
		t.Errorf("retries = %d, want exactly 3", rs.Retries)
	}
	if units[0].Stats().Stalls == 0 {
		t.Error("tiny mailbox never stalled the sender: backpressure not exercised")
	}
	if units[0].MailboxUsed() != 0 {
		t.Errorf("mailbox retains %d bytes after quiescence", units[0].MailboxUsed())
	}
	if len(lost) != 0 || env.inflight != 0 {
		t.Errorf("lost=%d inflight=%d, want 0/0 (no silent loss)", len(lost), env.inflight)
	}
}
