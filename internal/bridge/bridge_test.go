package bridge

import (
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/dram"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/ndpunit"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
	"ndpbridge/internal/trace"
)

// testEnv implements Env plus ndpunit.Env for direct bridge tests.
type testEnv struct {
	eng      *sim.Engine
	cfg      config.Config
	amap     *dram.AddrMap
	reg      *task.Registry
	epoch    uint32
	inflight int
	done     int
	taskID   uint64
}

func newTestEnv(d config.Design) *testEnv {
	cfg := config.Default().WithDesign(d)
	cfg.Geometry = config.Geometry{
		Channels: 2, RanksPerChannel: 1, ChipsPerRank: 2, BanksPerChip: 2,
		BankBytes: 8 << 20,
	}
	return &testEnv{
		eng:  sim.NewEngine(),
		cfg:  cfg,
		amap: dram.NewAddrMap(cfg.Geometry),
		reg:  task.NewRegistry(),
	}
}

func (e *testEnv) Engine() *sim.Engine      { return e.eng }
func (e *testEnv) Cfg() *config.Config      { return &e.cfg }
func (e *testEnv) Map() *dram.AddrMap       { return e.amap }
func (e *testEnv) Registry() *task.Registry { return e.reg }
func (e *testEnv) CurrentEpoch() uint32     { return e.epoch }
func (e *testEnv) TaskSpawned(uint32)       {}
func (e *testEnv) NextTaskID() uint64       { e.taskID++; return e.taskID }
func (e *testEnv) TaskDone(uint32)          { e.done++ }
func (e *testEnv) MsgStaged()               { e.inflight++ }
func (e *testEnv) MsgDelivered()            { e.inflight-- }
func (e *testEnv) Trace() *trace.Recorder   { return nil }
func (e *testEnv) MsgPool() *msg.Pool        { return nil }

// build wires one rank's units and its level-1 bridge.
func build(t *testing.T, env *testEnv, rank int) ([]*ndpunit.Unit, *Level1) {
	t.Helper()
	per := env.cfg.Geometry.UnitsPerRank()
	units := make([]*ndpunit.Unit, per)
	rng := sim.NewRNG(7)
	for i := range units {
		units[i] = ndpunit.New(rank*per+i, env, rng.Split())
	}
	b := NewLevel1(rank, env, units, rng.Split())
	return units, b
}

func TestLevel1IntraRankDelivery(t *testing.T) {
	env := newTestEnv(config.DesignB)
	ran := 0
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ran++; ctx.Compute(5) })
	units, b := build(t, env, 0)
	b.Start()

	// Unit 0 emits a task for unit 3's data.
	dst := env.amap.Base(3) + 64
	var spawner task.FuncID
	spawner = env.reg.Register("s", func(ctx task.Ctx, tk task.Task) {
		ctx.Enqueue(task.New(fn, 0, dst, 10))
	})
	_ = spawner
	units[0].SeedTask(task.New(spawner, 0, env.amap.Base(0)+64, 10))
	units[0].Kick()
	env.eng.RunUntil(50_000)

	if ran != 1 {
		t.Fatalf("intra-rank task not delivered: ran=%d", ran)
	}
	if b.Stats().GatherRounds == 0 {
		t.Error("no gather rounds recorded")
	}
	if env.inflight != 0 {
		t.Errorf("inflight = %d, want 0", env.inflight)
	}
}

func TestLevel1CrossRankGoesUp(t *testing.T) {
	env := newTestEnv(config.DesignB)
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ctx.Compute(5) })
	units, b := build(t, env, 0)
	b.Start()

	// Destination is rank 1 (units 4..7): must land in the up-mailbox.
	dst := env.amap.Base(5) + 64
	var spawner task.FuncID
	spawner = env.reg.Register("s", func(ctx task.Ctx, tk task.Task) {
		ctx.Enqueue(task.New(fn, 0, dst, 10))
	})
	units[0].SeedTask(task.New(spawner, 0, env.amap.Base(0)+64, 10))
	units[0].Kick()
	env.eng.RunUntil(50_000)

	if b.UpPending() == 0 {
		t.Fatal("cross-rank message should be waiting for level 2")
	}
	ms := b.DrainUp(1 << 16)
	if len(ms) != 1 || ms[0].Type != msg.TypeTask || ms[0].Dst != 5 {
		t.Fatalf("up message wrong: %+v", ms)
	}
}

func TestLevel1LoadBalanceRound(t *testing.T) {
	env := newTestEnv(config.DesignO)
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) {
		ctx.Read(tk.Addr, 64)
		ctx.Compute(400)
	})
	units, b := build(t, env, 0)
	b.Start()

	// All work on unit 0, one block per task: classic imbalance.
	gx := env.cfg.GXfer
	for i := 0; i < 64; i++ {
		units[0].SeedTask(task.New(fn, 0, env.amap.Base(0)+uint64(i)*gx, 420))
	}
	units[0].Kick()
	env.eng.RunUntil(400_000)

	if b.Stats().LBRounds == 0 {
		t.Fatal("no load-balancing rounds triggered")
	}
	if b.Stats().BlocksAssigned == 0 {
		t.Fatal("no blocks assigned to receivers")
	}
	// Work must have spread: at least one other unit executed tasks.
	spread := 0
	for _, u := range units[1:] {
		if u.Stats().Tasks > 0 {
			spread++
		}
	}
	if spread == 0 {
		t.Error("no task ran anywhere but the giver")
	}
	if env.done != 64 {
		t.Errorf("completed %d tasks, want 64", env.done)
	}
}

func TestLevel1MetadataConsistencyAfterLB(t *testing.T) {
	env := newTestEnv(config.DesignO)
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) {
		ctx.Read(tk.Addr, 64)
		ctx.Compute(300)
	})
	units, b := build(t, env, 0)
	b.Start()
	gx := env.cfg.GXfer
	for i := 0; i < 32; i++ {
		units[0].SeedTask(task.New(fn, 0, env.amap.Base(0)+uint64(i)*gx, 320))
	}
	units[0].Kick()
	env.eng.RunUntil(400_000)

	// Invariant: every bridge table entry points at a unit that actually
	// holds the block, and every lent-out home block has exactly one
	// holder or is in flight (none here after quiescence).
	for i := 0; i < 32; i++ {
		blk := env.amap.Base(0) + uint64(i)*gx
		holder := -1
		count := 0
		for _, u := range units {
			for _, bb := range u.BorrowedBlocks() {
				if bb == blk {
					holder = u.ID()
					count++
				}
			}
		}
		if count > 1 {
			t.Fatalf("block %#x held by %d units", blk, count)
		}
		lent := units[0].LentAt(blk)
		if lent && count == 0 {
			t.Fatalf("block %#x marked lent but held nowhere", blk)
		}
		if !lent && count == 1 {
			t.Fatalf("block %#x not lent but held by unit %d", blk, holder)
		}
		if count == 1 {
			if v, ok := b.BorrowedEntry(blk); !ok || v != holder {
				t.Fatalf("bridge entry for %#x = (%d,%v), holder %d", blk, v, ok, holder)
			}
		}
	}
}

func TestLevel2CrossRankDelivery(t *testing.T) {
	env := newTestEnv(config.DesignB)
	ran := 0
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ran++; ctx.Compute(5) })
	u0, b0 := build(t, env, 0)
	u1, b1 := build(t, env, 1)
	_ = u1
	l2 := NewLevel2(env, []*Level1{b0, b1}, sim.NewRNG(3))
	b0.Start()
	b1.Start()
	l2.Start()

	dst := env.amap.Base(6) + 64 // rank 1
	var spawner task.FuncID
	spawner = env.reg.Register("s", func(ctx task.Ctx, tk task.Task) {
		ctx.Enqueue(task.New(fn, 0, dst, 10))
	})
	u0[0].SeedTask(task.New(spawner, 0, env.amap.Base(0)+64, 10))
	u0[0].Kick()
	env.eng.RunUntil(100_000)

	if ran != 1 {
		t.Fatalf("cross-rank task not delivered (ran=%d)", ran)
	}
	if l2.Stats().CrossRankBytes == 0 {
		t.Error("no cross-rank traffic recorded")
	}
	if env.inflight != 0 {
		t.Errorf("inflight = %d", env.inflight)
	}
}

func TestWastedGathersOnlyUnderFixedTrigger(t *testing.T) {
	for _, tr := range []config.Trigger{config.TriggerDynamic, config.TriggerFixedIMin} {
		env := newTestEnv(config.DesignB)
		env.cfg.Trigger = tr
		fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ctx.Compute(50_000) })
		units, b := build(t, env, 0)
		b.Start()
		// One long-running local task, empty mailboxes throughout.
		units[0].SeedTask(task.New(fn, 0, env.amap.Base(0)+64, 1))
		units[0].Kick()
		env.eng.RunUntil(40_000)
		wasted := b.Stats().WastedGathers
		if tr == config.TriggerDynamic && wasted != 0 {
			t.Errorf("dynamic trigger wasted %d gathers", wasted)
		}
		if tr == config.TriggerFixedIMin && wasted == 0 {
			t.Errorf("fixed trigger should waste gathers on empty mailboxes")
		}
	}
}
