// Package bridge implements the NDPBridge hardware bridges (Section V): the
// level-1 rank bridge living in the DIMM buffer chip, and the level-2 bridge
// realized as a host software runtime. Bridges actively gather messages from
// their passive children's mailboxes, route them by data location, and
// scatter them to destinations — using forged DDR commands whose costs are
// modeled as bank accesses plus bus occupancy. Bridges also drive the
// hierarchical load balancing of Section VI.
package bridge

import (
	"ndpbridge/internal/config"
	"ndpbridge/internal/dram"
	"ndpbridge/internal/mailbox"
	"ndpbridge/internal/metadata"
	"ndpbridge/internal/metrics"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/ndpunit"
	"ndpbridge/internal/sched"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/trace"
)

// Env provides global simulator services to bridges.
type Env interface {
	Engine() *sim.Engine
	Cfg() *config.Config
	Map() *dram.AddrMap
	// Trace returns the activity recorder, or nil when tracing is off.
	Trace() *trace.Recorder
}

// Stats holds per-bridge counters.
type Stats struct {
	GatherRounds   uint64
	ScatterRounds  uint64
	WastedGathers  uint64 // fixed-interval gathers that found nothing
	BusBytes       uint64 // bytes moved on the rank-internal bus
	LBRounds       uint64
	BlocksAssigned uint64
	StateSweeps    uint64
}

// stateMsgBytes is the wire size of one state message (without sched list).
const stateMsgBytes = 36

// Level1 is a rank-level bridge (Figure 4(a)).
//ndplint:domain(bridge-l1)
type Level1 struct {
	rank int
	env  Env //ndplint:nosnap simulation wiring, rebound at construction
	// eng/cfg cache env.Engine()/env.Cfg() — both stable for the system's
	// lifetime — so hot paths skip the interface dispatch.
	eng      *sim.Engine     //ndplint:nosnap cached wiring, set at construction
	cfg      *config.Config  //ndplint:nosnap cached wiring, set at construction
	children []*ndpunit.Unit //ndplint:nosnap topology from config; units snapshot themselves
	//ndplint:nosnap topology wiring from config (the level-2 bridge, nil in single-rank tests)
	up upLevel

	chips        int //ndplint:nosnap geometry constant from config
	banksPerChip int //ndplint:nosnap geometry constant from config

	// Scatter buffers, one per child, byte-capped.
	scatter      [][]*msg.Message
	scatterBytes []uint64

	// Backup buffer (FIFO) absorbing overflow; gathering pauses while it
	// exceeds its capacity.
	backup      []*msg.Message
	backupBytes uint64

	// upMail holds messages bound for other ranks until level-2 gathers.
	upMail *mailbox.Mailbox

	borrowed *metadata.Borrowed
	toArrive map[int]uint64

	// assign tracks load-balancing rounds by (giver unit, round tag).
	// An entry with up set means the round's scheduled-out messages
	// route to the level-2 bridge (cross-rank round).
	assign    map[schedKey]*assignState
	nextRound uint32

	rng *sim.RNG

	lastStates   []msg.State
	prevFinished uint64
	wth          uint64
	csBuf        []sched.ChildState //ndplint:nosnap scratch, consumed within loadBalance

	running    bool
	roundIdx   int
	lastGather sim.Cycles

	// Pre-bound periodic callbacks (the bus loop and the state sweep):
	// method-value expressions allocate per use, these are created once.
	stepFn  func() //ndplint:nosnap wiring, rebound at construction
	sweepFn func() //ndplint:nosnap wiring, rebound at construction

	st Stats

	// Fault-injection state; nil (one branch on hot paths) when no fault
	// plan is attached.
	fi *faultL1

	// Instruments, bound by BindMetrics; nil no-ops when metrics are off.
	mGather   *metrics.Histogram // bytes moved per non-empty gather round
	mScatter  *metrics.Histogram // bytes moved per non-empty scatter round
	mLBBudget *metrics.Histogram // workload budget per SCHEDULE command
	mWQueue   *metrics.Histogram // per-child W_queue at each LB round
	cLB       *metrics.Counter
	cWasted   *metrics.Counter
}

// BindMetrics attaches the bridge's instruments to reg. All level-1 bridges
// of one run bind the same named instruments (system-wide distributions).
//ndplint:seam metrics wiring before the clock starts
//ndplint:seam metrics wiring before the clock starts
func (b *Level1) BindMetrics(reg *metrics.Registry) {
	b.mGather = reg.Histogram("gather_batch_bytes")
	b.mScatter = reg.Histogram("scatter_batch_bytes")
	b.mLBBudget = reg.Histogram("lb_budget_workload")
	b.mWQueue = reg.Histogram("lb_child_wqueue")
	b.cLB = reg.Counter("lb_rounds")
	b.cWasted = reg.Counter("wasted_gathers")
}

// BackupBytes returns the bytes held in the overflow backup buffer, for the
// bridge-buffer-occupancy gauge.
func (b *Level1) BackupBytes() uint64 { return b.backupBytes }

// ScatterBacklog returns the bytes waiting in all per-child scatter buffers.
func (b *Level1) ScatterBacklog() uint64 {
	var n uint64
	for _, s := range b.scatterBytes {
		n += s
	}
	return n
}

//ndplint:domain(perowner)
type assignState struct {
	receivers []int
	next      int
	blockTo   map[uint64]int
	up        bool
}

// schedKey identifies one load-balancing round at one giver.
//ndplint:domain(perowner)
type schedKey struct {
	giver int
	round uint32
}

// upLevel is what a level-1 bridge needs from its parent.
type upLevel interface {
	// RankAllIdle tells the parent this rank has no runnable work.
	RankAllIdle(rank int)
	// KickChannel pokes the parent's loop for this rank's channel.
	KickChannel(rank int)
	// AckDown / NackDown acknowledge one down-hop delivery (retry
	// protocol sideband; no-ops when faults are off).
	AckDown(rank int, seq uint32)
	NackDown(rank int, seq uint32)
}

// NewLevel1 builds the bridge for one rank. children must be the rank's
// units in local order.
func NewLevel1(rank int, env Env, children []*ndpunit.Unit, rng *sim.RNG) *Level1 {
	cfg := env.Cfg()
	b := &Level1{
		rank:         rank,
		env:          env,
		eng:          env.Engine(),
		cfg:          cfg,
		children:     children,
		chips:        cfg.Geometry.ChipsPerRank,
		banksPerChip: cfg.Geometry.BanksPerChip,
		scatter:      make([][]*msg.Message, len(children)),
		scatterBytes: make([]uint64, len(children)),
		upMail:       mailbox.New(cfg.Buffers.BridgeMailboxBytes),
		borrowed:     metadata.NewBorrowed(cfg.Metadata.BridgeBorrowedEntries, cfg.Metadata.BridgeBorrowedWays),
		toArrive:     make(map[int]uint64),
		assign:       make(map[schedKey]*assignState),
		rng:          rng,
		wth:          sched.Wth(cfg.GXfer, 1, float64(cfg.EffectiveChipDQ())),
	}
	// Bind the periodic callbacks once; method-value expressions allocate
	// a closure at every use, and these reschedule every bus round.
	b.stepFn = b.step
	b.sweepFn = b.stateSweep
	return b
}

// SetUp connects the level-2 bridge.
//ndplint:seam construction-time wiring to the channel bridge
//ndplint:seam construction-time wiring to the channel bridge
func (b *Level1) SetUp(up upLevel) { b.up = up }

// Rank returns the bridge's global rank index.
func (b *Level1) Rank() int { return b.rank }

// Stats returns the bridge's counters.
func (b *Level1) Stats() Stats { return b.st }

// Start begins the periodic state sweeps. Call once at simulation start.
//ndplint:seam run start: arms the sweep and step loops before the clock advances
//ndplint:seam run start: arms the sweep and step loops before the clock advances
func (b *Level1) Start() {
	b.eng.After(b.cfg.IState, b.sweepFn)
	if b.cfg.Trigger != config.TriggerDynamic {
		b.ensureLoop()
	}
}

func (b *Level1) localIndex(unit int) int {
	per := b.cfg.Geometry.UnitsPerRank()
	return unit - b.rank*per
}

func (b *Level1) isLocalUnit(unit int) bool {
	per := b.cfg.Geometry.UnitsPerRank()
	return unit >= 0 && unit/per == b.rank
}

// --- State sweep and load balancing -------------------------------------

func (b *Level1) stateSweep() {
	cfg := b.cfg
	b.st.StateSweeps++
	// Overwrite lastStates in place: its backing array is reused every
	// sweep, and readers only ever want the latest sweep's values.
	states := b.lastStates[:0]
	var finished uint64
	for _, u := range b.children {
		s := u.StateSnapshot()
		states = append(states, s)
		finished += s.WFinished
		b.st.BusBytes += stateMsgBytes
	}
	b.lastStates = states

	// Refresh the in-advance threshold from measured progress.
	sexe := sched.EstimateSexe(finished-b.prevFinished, cfg.IState, len(b.children))
	b.prevFinished = finished
	b.wth = sched.Wth(cfg.GXfer, sexe, float64(cfg.EffectiveChipDQ()))

	if cfg.Design.LoadBalancing() {
		b.loadBalance(states)
	}
	b.maybeTrigger()
	b.eng.After(cfg.IState, b.sweepFn)
}

// childStates converts a sweep's states for the scheduler, reusing a scratch
// buffer; the result is consumed within the same loadBalance call.
func (b *Level1) childStates(states []msg.State) []sched.ChildState {
	out := b.csBuf[:0]
	for i, s := range states {
		if b.fi != nil && b.fi.dead[i] {
			continue
		}
		id := b.children[i].ID()
		out = append(out, sched.ChildState{ID: id, WQueue: s.WQueue, ToArrive: b.toArrive[id]})
	}
	b.csBuf = out[:0]
	return out
}

func (b *Level1) loadBalance(states []msg.State) {
	cfg := b.cfg
	cs := b.childStates(states)
	receivers := sched.Receivers(cs, cfg.LoadBalance, b.wth)
	givers := sched.Givers(cs, cfg.LoadBalance, b.wth)

	// Hierarchical escalation: if every child is starved and none can
	// give, report to the level-2 bridge for cross-rank balancing.
	if len(givers) == 0 {
		if b.up != nil && len(receivers) == len(cs) && b.allQuiet() {
			b.up.RankAllIdle(b.rank)
		}
		return
	}
	if len(receivers) == 0 {
		return
	}
	queueOf := func(g int) uint64 { return b.children[b.localIndex(g)].QueueWorkload() }
	cmds := sched.Match(b.rng, receivers, givers, cfg.LoadBalance, b.wth, queueOf)
	now := uint64(b.eng.Now())
	if len(cmds) > 0 {
		for _, c := range cs {
			b.mWQueue.Observe(c.WQueue)
		}
	}
	for _, c := range cmds {
		b.st.LBRounds++
		b.cLB.Inc()
		b.mLBBudget.Observe(c.Budget)
		round := b.newRound()
		b.assign[schedKey{c.Giver, round}] = &assignState{receivers: c.Receivers, blockTo: make(map[uint64]int)}
		b.env.Trace().Record(trace.KindLB, c.Giver, now, now, "schedule")
		b.children[b.localIndex(c.Giver)].CommandSchedule(c.Budget, round)
	}
	b.ensureLoop()
}

func (b *Level1) allQuiet() bool {
	for _, u := range b.children {
		if u.HasBacklog() {
			return false
		}
	}
	return b.upMail.Empty() && len(b.backup) == 0
}

// newRound allocates a level-1 round tag (even).
func (b *Level1) newRound() uint32 {
	b.nextRound += 2
	return b.nextRound
}

// CommandScheduleRank serves a level-2 SCHEDULE: lend budget workload out of
// this rank, tagged with the level-2 round. The bridge splits the budget
// across its busiest children; their scheduled-out messages route up instead
// of to local receivers.
//ndplint:seam partition boundary: channel-level command budget grant
func (b *Level1) CommandScheduleRank(budget uint64, round uint32) {
	type cand struct {
		idx int
		w   uint64
	}
	var cands []cand
	for i, u := range b.children {
		if w := u.QueueWorkload(); w > b.wth {
			cands = append(cands, cand{i, w})
		}
	}
	if len(cands) == 0 {
		return
	}
	share := budget / uint64(len(cands))
	if share == 0 {
		share = budget
	}
	var given uint64
	for _, c := range cands {
		if given >= budget {
			break
		}
		amt := share
		if c.w/2 < amt {
			amt = c.w / 2
		}
		if amt == 0 {
			continue
		}
		g := b.children[c.idx].ID()
		b.assign[schedKey{g, round}] = &assignState{up: true}
		b.children[c.idx].CommandSchedule(amt, round)
		given += amt
	}
	b.ensureLoop()
}

// --- Dynamic communication triggering (Section V-C) ----------------------

func (b *Level1) maybeTrigger() {
	if b.gatherEligible() || b.scatterPending() || !b.upMail.Empty() {
		b.ensureLoop()
	}
}

// gatherEligible applies the trigger policy of Section V-C.
func (b *Level1) gatherEligible() bool {
	cfg := b.cfg
	if b.paused() {
		return false
	}
	switch cfg.Trigger {
	case config.TriggerFixedIMin, config.TriggerFixed2IMin:
		return true // fixed policies always gather, wasting empty rounds
	}
	anyPending := false
	anyIdle := false
	for _, u := range b.children {
		used := u.MailboxUsed()
		if used > 0 {
			anyPending = true
			if used >= cfg.GXfer {
				return true // over-G_xfer pending always triggers
			}
		}
		if u.Idle() {
			anyIdle = true
		}
	}
	if !anyPending {
		return false
	}
	now := b.eng.Now()
	return anyIdle && now-b.lastGather >= cfg.IMin()
}

func (b *Level1) paused() bool {
	total := b.backupBytes
	if b.fi != nil {
		total += b.fi.extraBackup
	}
	return total > b.cfg.Buffers.BackupBufBytes
}

func (b *Level1) scatterPending() bool {
	for _, n := range b.scatterBytes {
		if n > 0 {
			return true
		}
	}
	return len(b.backup) > 0
}

// --- The bus loop ---------------------------------------------------------

func (b *Level1) ensureLoop() {
	if b.running {
		return
	}
	b.running = true
	b.eng.After(0, b.stepFn)
}

func (b *Level1) step() {
	b.reinjectBackup()
	// One scatter round and one gather round share each bus iteration, so
	// neither direction starves the other.
	var total sim.Cycles
	if dur, ok := b.scatterRound(); ok {
		total += dur
	}
	if dur, ok := b.gatherRound(); ok {
		total += dur
	}
	if total > 0 {
		if b.cfg.Trigger == config.TriggerFixed2IMin {
			// Half-rate gathering: idle for as long as the round
			// took (Section V-C's 2×I_min frequency).
			total *= 2
		}
		b.eng.After(total, b.stepFn)
		return
	}
	if b.cfg.Trigger != config.TriggerDynamic {
		// Fixed policies keep sweeping at their interval even when
		// idle, wasting gathers (Figure 14(b)).
		b.eng.After(b.fixedInterval(), b.stepFn)
		return
	}
	if !b.paused() && b.anyActivity() {
		// The rank still has running or queued work that will produce
		// messages: keep polling at the I_min pace (Section V-C)
		// rather than sleeping until the next state sweep.
		b.eng.After(b.cfg.IMin(), b.stepFn)
		return
	}
	b.running = false
}

// anyActivity reports whether any child is executing, holds queued work, or
// has pending outgoing messages.
func (b *Level1) anyActivity() bool {
	for _, u := range b.children {
		if u.HasBacklog() {
			return true
		}
	}
	return !b.upMail.Empty() || len(b.backup) > 0
}

func (b *Level1) fixedInterval() sim.Cycles {
	iv := b.cfg.IMin()
	if b.cfg.Trigger == config.TriggerFixed2IMin {
		iv *= 2
	}
	return iv
}

// roundDuration is the bus time of one gather/scatter round: G_xfer bytes
// per chip in parallel over the per-chip DQ.
func (b *Level1) roundDuration() sim.Cycles {
	cfg := b.cfg
	d := (cfg.GXfer + cfg.EffectiveChipDQ() - 1) / cfg.EffectiveChipDQ()
	if d == 0 {
		d = 1
	}
	return d + 2 // command latency
}

// gatherRound drains up to G_xfer bytes from one child per chip (the same
// bank index across chips, Section V-B) and routes the messages.
func (b *Level1) gatherRound() (sim.Cycles, bool) {
	cfg := b.cfg
	if !b.gatherEligible() {
		return 0, false
	}
	fixed := cfg.Trigger != config.TriggerDynamic
	var movedBytes uint64
	for chip := 0; chip < b.chips; chip++ {
		child := b.pickGatherChild(chip)
		if child < 0 {
			if fixed {
				// A wasted GATHER still reads G_xfer from the
				// mailbox region of the round-robin bank.
				idx := chip*b.banksPerChip + b.roundIdx%b.banksPerChip
				b.children[idx].WastedGather()
				b.st.WastedGathers++
				b.cWasted.Inc()
				b.st.BusBytes += cfg.GXfer
			}
			continue
		}
		u := b.children[child]
		ms, _ := u.DrainMailbox(cfg.GXfer)
		if len(ms) == 0 {
			if fixed {
				b.st.WastedGathers++
				b.cWasted.Inc()
				b.st.BusBytes += cfg.GXfer
			}
			continue
		}
		movedBytes += msg.TotalSize(ms)
		for _, m := range ms {
			b.gatherIn(child, m)
		}
	}
	b.roundIdx++
	b.lastGather = b.eng.Now()
	if movedBytes == 0 && !fixed {
		return 0, false
	}
	if movedBytes > 0 {
		b.st.BusBytes += movedBytes
		b.mGather.Observe(movedBytes)
	}
	b.st.GatherRounds++
	return b.roundDuration(), true
}

// pickGatherChild selects the child of one chip with the fullest mailbox.
func (b *Level1) pickGatherChild(chip int) int {
	best, bestUsed := -1, uint64(0)
	for i := 0; i < b.banksPerChip; i++ {
		idx := chip*b.banksPerChip + i
		if b.fi != nil && b.fi.dead[idx] {
			continue
		}
		if used := b.children[idx].MailboxUsed(); used > bestUsed {
			best, bestUsed = idx, used
		}
	}
	return best
}

// scatterRound writes up to G_xfer bytes to one child per chip from its
// scatter buffer.
func (b *Level1) scatterRound() (sim.Cycles, bool) {
	cfg := b.cfg
	var movedBytes uint64
	for chip := 0; chip < b.chips; chip++ {
		idx := b.pickScatterChild(chip)
		if idx < 0 {
			continue
		}
		var sent uint64
		for sent < cfg.GXfer && len(b.scatter[idx]) > 0 {
			m := b.scatter[idx][0]
			s := m.Size()
			if sent > 0 && sent+s > cfg.GXfer {
				break
			}
			b.scatter[idx] = b.scatter[idx][1:]
			b.scatterBytes[idx] -= s
			sent += s
			b.deliverToChild(idx, m)
		}
		if sent > 0 {
			movedBytes += sent
			b.st.BusBytes += sent
		}
	}
	if movedBytes == 0 {
		return 0, false
	}
	b.mScatter.Observe(movedBytes)
	b.st.ScatterRounds++
	return b.roundDuration(), true
}

func (b *Level1) pickScatterChild(chip int) int {
	best, bestUsed := -1, uint64(0)
	for i := 0; i < b.banksPerChip; i++ {
		idx := chip*b.banksPerChip + i
		if b.fi != nil {
			// Dead children take no deliveries; a full retransmit
			// buffer backpressures its child until acks free space.
			if b.fi.dead[idx] || (b.fi.scatterRet != nil && b.fi.scatterRet[idx].Full()) {
				continue
			}
		}
		if used := b.scatterBytes[idx]; used > bestUsed {
			best, bestUsed = idx, used
		}
	}
	return best
}

func (b *Level1) deliverToChild(idx int, m *msg.Message) {
	u := b.children[idx]
	if rec := b.env.Trace(); rec.FlowsEnabled() {
		// Scatter-buffer wait: from the hop that routed the message here
		// (gather pickup or down-channel commit) to this scatter slot.
		now := b.eng.Now()
		cat := trace.CatBridgeQueue
		if m.Sched || m.Round != 0 {
			cat = trace.CatLBMigration
		}
		m.Span = rec.Span(m.Flow, m.Span, trace.SpanBridgeQ, cat, u.ID(), m.HopStart(), now)
		m.HopAt = now
	}
	if m.Type == msg.TypeTask {
		// The scheduled task has arrived: correct the pending counter.
		// Accounted once at first send — retransmissions bypass this path.
		w := m.Task.EffectiveWorkload()
		id := u.ID()
		if b.toArrive[id] >= w {
			b.toArrive[id] -= w
		} else {
			delete(b.toArrive, id)
		}
	}
	if b.fi == nil {
		u.Deliver(m)
		return
	}
	if b.fi.dead[idx] {
		if b.fi.lost != nil {
			b.fi.lost(m)
		}
		return
	}
	if b.fi.scatterRet != nil && m.Seq == 0 {
		b.fi.scatterSeq[idx]++
		m.Seq = b.fi.scatterSeq[idx]
		m.Sum = msg.Checksum(m)
		b.fi.scatterRet[idx].Track(m)
	}
	b.wireScatter(idx, m)
}

// --- Routing (message router, Figure 4(a)) -------------------------------

// route places a gathered message into a scatter buffer, the up-mailbox, or
// the backup buffer.
func (b *Level1) route(m *msg.Message) {
	amap := b.env.Map()

	// Scheduled-out messages get their destination assigned here
	// (Section VI-A step 4).
	if m.Sched && m.Dst < 0 {
		blk, _ := m.RouteAddr()
		blk = dram.BlockAlign(blk, b.cfg.GXfer)
		// The table is the source of truth: a block whose messages
		// straddle scheduling rounds keeps its first assignment.
		if v, hit := b.borrowed.Lookup(blk); hit {
			b.assignTo(int(v), m)
			return
		}
		as := b.assign[schedKey{m.Src, m.Round}]
		if as == nil {
			// Unknown round (should not happen): send the block
			// home, which clears the giver's isLent bit and heals.
			m.Sched = false
			m.Dst = amap.Home(blk)
		} else if as.up {
			b.pushUp(m)
			return
		} else {
			r, ok := as.blockTo[blk]
			if !ok {
				r = as.receivers[as.next%len(as.receivers)]
				as.next++
				as.blockTo[blk] = r
				b.insertBorrowed(blk, r)
				b.st.BlocksAssigned++
			}
			b.assignTo(r, m)
			return
		}
	}

	blk, routable := m.RouteAddr()
	if routable {
		home := amap.Home(blk)
		// A data message heading home is a return: drop our
		// borrowed-table entry as it passes.
		if m.Type == msg.TypeData && m.Dst == home {
			b.borrowed.Remove(dram.BlockAlign(blk, b.cfg.GXfer))
		} else if r, ok := b.borrowed.Lookup(dram.BlockAlign(blk, b.cfg.GXfer)); ok {
			// Our own table beats escalation: intra-rank lends are
			// resolved here.
			m.Dst = int(r)
			m.Escalate = false
		} else if m.Escalate {
			// The home unit bounced it and this rank knows nothing:
			// the block lives in another rank; the level-2 table
			// knows where.
			b.pushUp(m)
			return
		} else {
			m.Dst = home
		}
	}
	if b.isLocalUnit(m.Dst) {
		b.enqueueScatter(b.localIndex(m.Dst), m)
		return
	}
	b.pushUp(m)
}

// assignTo finalizes a scheduled-out message's destination and queues it for
// scatter.
func (b *Level1) assignTo(r int, m *msg.Message) {
	m.Dst = r
	if m.Type == msg.TypeTask {
		b.toArrive[r] += m.Task.EffectiveWorkload()
	}
	b.enqueueScatter(b.localIndex(r), m)
}

// insertBorrowed records block→receiver, back-invalidating on eviction to
// keep the unit tables inclusive.
func (b *Level1) insertBorrowed(blk uint64, receiver int) {
	ev, evicted := b.borrowed.Insert(blk, uint64(receiver))
	if evicted && b.isLocalUnit(int(ev.Value)) {
		b.children[b.localIndex(int(ev.Value))].ForceReturn(ev.Key)
	}
}

// AcceptFromUp receives a message scattered down by the level-2 bridge. The
// message first crosses the (possibly faulty) down hop, then the bridge-side
// retry receiver verifies, acks, and dedups it before routing.
//ndplint:seam partition boundary: downward delivery entry from the channel bridge
func (b *Level1) AcceptFromUp(m *msg.Message) {
	if b.fi != nil {
		if h := b.fi.downHop; h != nil {
			applyOutcome(b.eng, h.Decide(b.eng.Now()), m, b.acceptDown)
			return
		}
	}
	b.acceptDown(m)
}

func (b *Level1) acceptDown(m *msg.Message) {
	if b.fi != nil && m.Seq != 0 {
		if !m.Verify() {
			b.up.NackDown(b.rank, m.Seq)
			return
		}
		b.up.AckDown(b.rank, m.Seq)
		if !b.fi.downDedup.Accept(m.Seq) {
			return
		}
		m.Seq, m.Sum = 0, 0
	}
	if rec := b.env.Trace(); rec.FlowsEnabled() {
		// Down-channel leg: level-2 scatter queue + channel batch transit.
		now := b.eng.Now()
		cat := trace.CatHostRT
		if m.Sched || m.Round != 0 {
			cat = trace.CatLBMigration
		}
		m.Span = rec.Span(m.Flow, m.Span, trace.SpanBridgeQ, cat, -1, m.HopStart(), now)
		m.HopAt = now
	}
	if m.Sched && m.Dst < 0 {
		// Cross-rank lend arriving at the receiver rank: pick an idle
		// child for the block.
		blk, _ := m.RouteAddr()
		gx := b.cfg.GXfer
		blk = dram.BlockAlign(blk, gx)
		if r, ok := b.borrowed.Lookup(blk); ok {
			m.Dst = int(r)
		} else {
			m.Dst = b.pickIdleChild(blk)
			b.insertBorrowed(blk, m.Dst)
			b.st.BlocksAssigned++
		}
		m.Sched = false
		if m.Type == msg.TypeTask {
			b.toArrive[m.Dst] += m.Task.EffectiveWorkload()
		}
		b.enqueueScatter(b.localIndex(m.Dst), m)
		b.ensureLoop()
		return
	}
	m.Escalate = false
	b.route(m)
	b.ensureLoop()
}

// pickIdleChild selects a child for an incoming cross-rank block,
// hash-spread over the currently idle children.
func (b *Level1) pickIdleChild(blk uint64) int {
	var idle []int
	for i, u := range b.children {
		if b.fi != nil && b.fi.dead[i] {
			continue
		}
		if u.Idle() {
			idle = append(idle, u.ID())
		}
	}
	if len(idle) == 0 {
		if b.fi != nil {
			// Fall back to any surviving child; a dead pick would send
			// the block into a loss/respawn loop.
			var alive []int
			for i, u := range b.children {
				if !b.fi.dead[i] {
					alive = append(alive, u.ID())
				}
			}
			if len(alive) > 0 {
				return alive[int(blk>>8)%len(alive)]
			}
		}
		return b.children[int(blk>>8)%len(b.children)].ID()
	}
	return idle[int(blk>>8)%len(idle)]
}

func (b *Level1) enqueueScatter(idx int, m *msg.Message) {
	if b.fi != nil && b.fi.dead[idx] {
		if b.fi.lost != nil {
			b.fi.lost(m)
		}
		return
	}
	cfg := b.cfg
	s := m.Size()
	if b.scatterBytes[idx]+s <= cfg.Buffers.ScatterBufBytes && len(b.backup) == 0 {
		b.scatter[idx] = append(b.scatter[idx], m)
		b.scatterBytes[idx] += s
		return
	}
	// Overflow to the backup buffer (FIFO to preserve ordering).
	b.backup = append(b.backup, m)
	b.backupBytes += s
}

func (b *Level1) pushUp(m *msg.Message) {
	if b.upMail.Enqueue(m) {
		if b.up != nil {
			b.up.KickChannel(b.rank)
		}
		return
	}
	b.backup = append(b.backup, m)
	b.backupBytes += m.Size()
}

// reinjectBackup moves backed-up messages into their target buffers in FIFO
// order, stopping at the first that still does not fit.
func (b *Level1) reinjectBackup() {
	cfg := b.cfg
	for len(b.backup) > 0 {
		m := b.backup[0]
		s := m.Size()
		if b.isLocalUnit(m.Dst) && !(m.Sched && m.Dst < 0) {
			idx := b.localIndex(m.Dst)
			if b.fi != nil && b.fi.dead[idx] {
				b.backup = b.backup[1:]
				b.backupBytes -= s
				if b.fi.lost != nil {
					b.fi.lost(m)
				}
				continue
			}
			if b.scatterBytes[idx]+s > cfg.Buffers.ScatterBufBytes {
				return
			}
			b.scatter[idx] = append(b.scatter[idx], m)
			b.scatterBytes[idx] += s
		} else {
			if !b.upMail.Enqueue(m) {
				return
			}
			if b.up != nil {
				b.up.KickChannel(b.rank)
			}
		}
		b.backup = b.backup[1:]
		b.backupBytes -= s
	}
}

// --- Level-2 interface ----------------------------------------------------

// BorrowedEntry reports this bridge's dataBorrowed mapping for blk
// (diagnostic/invariant-test hook; does not touch LRU state).
func (b *Level1) BorrowedEntry(blk uint64) (int, bool) {
	if !b.borrowed.Contains(blk) {
		return 0, false
	}
	v, _ := b.borrowed.Lookup(blk)
	return int(v), true
}

// ForceReturnBlock back-invalidates a cross-rank lend: the level-2 bridge
// evicted its table entry, so the borrowing unit under this bridge must
// return the block to keep the hierarchy inclusive.
//ndplint:seam retry protocol: channel forces return of a borrowed block
func (b *Level1) ForceReturnBlock(blk uint64) {
	if r, ok := b.borrowed.Lookup(blk); ok {
		b.borrowed.Remove(blk)
		if b.isLocalUnit(int(r)) {
			b.children[b.localIndex(int(r))].ForceReturn(blk)
			b.ensureLoop()
		}
	}
}

// UpPending returns the bytes waiting for the level-2 bridge.
func (b *Level1) UpPending() uint64 { return b.upMail.Used() }

// DrainUp removes up to budget bytes of up-bound messages. With retry armed,
// messages are stamped and tracked on their way out; a full retransmit
// buffer refuses the drain until acks free space.
//ndplint:seam partition boundary: channel bridge pulls the rank upward queue
func (b *Level1) DrainUp(budget uint64) []*msg.Message {
	if b.fi != nil && b.fi.upRet != nil && b.fi.upRet.Full() {
		b.env.Trace().Span(0, 0, trace.SpanBlocked, trace.CatRetry, -1, b.eng.Now(), b.eng.Now())
		return nil
	}
	ms := b.upMail.DrainUpTo(budget)
	if len(ms) > 0 {
		b.reinjectBackup()
	}
	if rec := b.env.Trace(); rec.FlowsEnabled() {
		// Up-mailbox wait: routed into upMail → picked up by a level-2
		// channel batch.
		now := b.eng.Now()
		for _, m := range ms {
			cat := trace.CatBridgeQueue
			if m.Sched || m.Round != 0 {
				cat = trace.CatLBMigration
			}
			m.Span = rec.Span(m.Flow, m.Span, trace.SpanBridgeQ, cat, -1, m.HopStart(), now)
			m.HopAt = now
		}
	}
	if b.fi != nil && b.fi.upRet != nil {
		for _, m := range ms {
			if m.Seq == 0 {
				b.fi.upSeq++
				m.Seq = b.fi.upSeq
				m.Sum = msg.Checksum(m)
			}
			b.fi.upRet.Track(m)
		}
	}
	return ms
}

// AggregateState sums child states for level-2 scheduling decisions.
func (b *Level1) AggregateState() sched.ChildState {
	var wq, ta uint64
	for _, u := range b.children {
		wq += u.QueueWorkload()
		ta += b.toArrive[u.ID()]
	}
	return sched.ChildState{ID: b.rank, WQueue: wq, ToArrive: ta}
}

// HasWork reports whether the rank holds any queued or in-transit work.
func (b *Level1) HasWork() bool {
	return !b.allQuiet()
}

// Wth exposes the current in-advance threshold (for the level-2 bridge and
// tests).
func (b *Level1) Wth() uint64 { return b.wth }
