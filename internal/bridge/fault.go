package bridge

import (
	"ndpbridge/internal/fault"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/trace"
)

// This file holds the bridges' fault-injection machinery: the per-hop fault
// application helper shared by both levels, and the level-1/level-2 retry
// endpoints (sequence stamping, retransmit buffers, duplicate filters,
// dead-child bookkeeping, injected buffer overflow). Everything is gated on
// the fi pointers, which stay nil — and cost one branch — when no fault
// plan is attached.

// applyOutcome delivers m through a hop-fault verdict. Drop short-circuits;
// delay defers the delivery through the engine; corrupt delivers a damaged
// clone so the sender's retransmit copy stays pristine; duplicate delivers
// a second clone for the receiver's dedup filter to discard.
func applyOutcome(eng *sim.Engine, o fault.Outcome, m *msg.Message, deliver func(*msg.Message)) {
	if o.Drop {
		return
	}
	send := deliver
	if o.Delay != 0 {
		send = func(mm *msg.Message) { eng.After(o.Delay, func() { deliver(mm) }) }
	}
	// Clone the duplicate before the first delivery: on a zero-delay hop the
	// receiver runs synchronously and clears Seq/Sum in place, and a copy
	// cloned after that would slip past the sequence-number dedup filter.
	var dup *msg.Message
	if o.Duplicate {
		dup = m.Clone()
	}
	if o.Corrupt {
		c := m.Clone()
		c.Corrupt()
		send(c)
	} else {
		send(m)
	}
	if dup != nil {
		send(dup)
	}
}

// faultL1 is the level-1 bridge's fault state.
type faultL1 struct {
	gatherHop  *fault.Hop // unit → bridge
	scatterHop *fault.Hop // bridge → unit
	downHop    *fault.Hop // level-2 → this bridge

	// Retry endpoints; nil slices/pointers when the design runs no retry.
	gatherDedup []msg.Dedup    // per child, gather-hop duplicate filter
	scatterSeq  []uint32       // per child, scatter-hop sequence counters
	scatterRet  []*msg.Retrans // per child, scatter-hop retransmit buffers
	upSeq       uint32
	upRet       *msg.Retrans // up-hop retransmit buffer
	downDedup   msg.Dedup    // down-hop duplicate filter

	dead        []bool
	extraBackup uint64 // injected phantom backlog (overflow faults)
	lost        func(*msg.Message)
}

// EnableFaults attaches the injector's hop streams for this rank and, when
// retry is set, arms the bridge's retry-protocol endpoints. lost is the
// terminal-loss hook of the recovery runtime.
//ndplint:seam fault-campaign control plane wired before the clock starts
func (b *Level1) EnableFaults(inj *fault.Injector, retry bool, lost func(*msg.Message)) {
	cfg := b.cfg
	fi := &faultL1{
		gatherHop:  inj.HopFor(fault.ScopeL1Gather, b.rank),
		scatterHop: inj.HopFor(fault.ScopeL1Scatter, b.rank),
		downHop:    inj.HopFor(fault.ScopeL2Down, b.rank),
		dead:       make([]bool, len(b.children)),
		lost:       lost,
	}
	if retry {
		fi.gatherDedup = make([]msg.Dedup, len(b.children))
		fi.scatterSeq = make([]uint32, len(b.children))
		fi.scatterRet = make([]*msg.Retrans, len(b.children))
		for i := range b.children {
			idx := i
			fi.scatterRet[i] = msg.NewRetrans(b.eng, cfg.Retry.Timeout, cfg.Retry.BackoffCap,
				cfg.Retry.BufBytes, func(m *msg.Message) { b.wireScatter(idx, m) })
			fi.scatterRet[i].SetTrace(b.env.Trace, b.children[i].ID())
			fi.scatterRet[i].SetJitter(msg.JitterSeed(2, uint64(b.children[i].ID())))
		}
		fi.upRet = msg.NewRetrans(b.eng, cfg.Retry.Timeout, cfg.Retry.BackoffCap,
			cfg.Retry.BufBytes, func(m *msg.Message) { b.pushUp(m) })
		fi.upRet.SetTrace(b.env.Trace, -1)
		fi.upRet.SetJitter(msg.JitterSeed(3, uint64(b.rank)))
	}
	b.fi = fi
}

// Kick revives the bridge's bus loop (recovery runtime hook).
//ndplint:seam recovery hook: coordinator wakes the rank after fault recovery
func (b *Level1) Kick() { b.ensureLoop() }

// InjectOverflow adds phantom backlog to the backup buffer, tripping the
// gather-pause backpressure threshold.
//ndplint:seam fault hook: coordinator injects buffer overflow at a plan point
func (b *Level1) InjectOverflow(bytes uint64) {
	if b.fi != nil {
		b.fi.extraBackup += bytes
	}
}

// ClearOverflow removes previously injected phantom backlog.
//ndplint:seam fault hook: coordinator clears injected overflow at a plan point
func (b *Level1) ClearOverflow(bytes uint64) {
	if b.fi == nil {
		return
	}
	if bytes > b.fi.extraBackup {
		bytes = b.fi.extraBackup
	}
	b.fi.extraBackup -= bytes
	b.ensureLoop()
}

// GatherIn is the gather-hop wire entry for unit retransmissions: the
// message crosses the hop (faults apply) and re-enters the router.
//ndplint:seam partition boundary: upward gather entry from child units
func (b *Level1) GatherIn(child int, m *msg.Message) {
	b.gatherIn(b.localIndex(child), m)
}

// gatherIn moves one gathered message across the (possibly faulty) hop.
func (b *Level1) gatherIn(idx int, m *msg.Message) {
	if b.fi == nil {
		b.route(m)
		return
	}
	if h := b.fi.gatherHop; h != nil {
		applyOutcome(b.eng, h.Decide(b.eng.Now()), m,
			func(mm *msg.Message) { b.acceptGather(idx, mm) })
		return
	}
	b.acceptGather(idx, m)
}

// acceptGather is the bridge-side receiver of the gather hop: verify, ack,
// dedup, then route.
func (b *Level1) acceptGather(idx int, m *msg.Message) {
	if m.Seq != 0 && b.fi.gatherDedup != nil {
		u := b.children[idx]
		if !m.Verify() {
			u.NackGather(m.Seq)
			return
		}
		u.AckGather(m.Seq)
		if !b.fi.gatherDedup[idx].Accept(m.Seq) {
			return
		}
		m.Seq, m.Sum = 0, 0
	}
	b.route(m)
	b.ensureLoop()
}

// wireScatter moves one message across the scatter hop to child idx.
func (b *Level1) wireScatter(idx int, m *msg.Message) {
	if b.fi.dead[idx] {
		// Retransmission raced a kill: claim terminal resolution once.
		if b.children[idx].MarkSeqHandled(m.Seq) && b.fi.lost != nil {
			b.fi.lost(m)
		}
		return
	}
	if h := b.fi.scatterHop; h != nil {
		applyOutcome(b.eng, h.Decide(b.eng.Now()), m,
			func(mm *msg.Message) { b.children[idx].Deliver(mm) })
		return
	}
	b.children[idx].Deliver(m)
}

// ScatterAck and ScatterNack implement ndpunit.Parent: the unit's
// acknowledgement sideband for scatter deliveries.
func (b *Level1) ScatterAck(child int, seq uint32) {
	if b.fi != nil && b.fi.scatterRet != nil {
		b.fi.scatterRet[b.localIndex(child)].Ack(seq)
	}
}

// ScatterNack triggers an immediate retransmission of a corrupted scatter.
//ndplint:seam retry protocol: child unit bounces a scattered message back
func (b *Level1) ScatterNack(child int, seq uint32) {
	if b.fi != nil && b.fi.scatterRet != nil {
		b.fi.scatterRet[b.localIndex(child)].Nack(seq)
	}
}

// AckUp and NackUp are the level-2 bridge's acknowledgement sideband for
// the up hop.
func (b *Level1) AckUp(seq uint32) {
	if b.fi != nil && b.fi.upRet != nil {
		b.fi.upRet.Ack(seq)
	}
}

// NackUp triggers an immediate retransmission of a corrupted up message.
//ndplint:seam retry protocol: channel bridge bounces an upward message back
func (b *Level1) NackUp(seq uint32) {
	if b.fi != nil && b.fi.upRet != nil {
		b.fi.upRet.Nack(seq)
	}
}

// MarkGathered gates the loss resolution of a dead child's unacked gather
// message: a delayed copy still in flight toward this bridge is discarded
// instead of being processed twice.
func (b *Level1) MarkGathered(child int, seq uint32) {
	if b.fi != nil && b.fi.gatherDedup != nil {
		b.fi.gatherDedup[b.localIndex(child)].Mark(seq)
	}
}

// KillChild quarantines one child and returns every message whose delivery
// can no longer complete: unacked scatter messages (gated against copies
// still in flight), the child's parked scatter buffer, and backup-buffer
// entries addressed to it. The caller resolves them terminally.
//ndplint:seam fault hook: coordinator drains a killed unit in-flight state at a barrier
func (b *Level1) KillChild(child int) []*msg.Message {
	if b.fi == nil {
		return nil
	}
	idx := b.localIndex(child)
	b.fi.dead[idx] = true
	var lost []*msg.Message
	if b.fi.scatterRet != nil {
		for _, m := range b.fi.scatterRet[idx].TakeAll() {
			if b.children[idx].MarkSeqHandled(m.Seq) {
				lost = append(lost, m)
			}
		}
	}
	lost = append(lost, b.scatter[idx]...)
	b.scatter[idx] = nil
	b.scatterBytes[idx] = 0
	if len(b.backup) > 0 {
		keep := b.backup[:0]
		for _, m := range b.backup {
			if m.Dst == child {
				b.backupBytes -= m.Size()
				lost = append(lost, m)
			} else {
				keep = append(keep, m)
			}
		}
		b.backup = keep
	}
	delete(b.toArrive, child)
	return lost
}

// PurgeBorrowedTo removes every dataBorrowed entry pointing at a dead child
// and returns the affected block addresses so the recovery runtime can heal
// the lenders' isLent bits.
func (b *Level1) PurgeBorrowedTo(child int) []uint64 {
	var blks []uint64
	b.borrowed.ForEach(func(k, v uint64) {
		if int(v) == child {
			blks = append(blks, k)
		}
	})
	for _, blk := range blks {
		b.borrowed.Remove(blk)
	}
	return blks
}

// DropBorrowed removes the dataBorrowed entry for blk, if any (recovery of
// a lend whose data messages were lost in transit).
func (b *Level1) DropBorrowed(blk uint64) { b.borrowed.Remove(blk) }

// RetryStats aggregates the bridge's retransmission counters (scatter + up
// hops) and the duplicates filtered on its receive sides.
func (b *Level1) RetryStats() (msg.RetransStats, uint64) {
	var rs msg.RetransStats
	var dups uint64
	if b.fi == nil {
		return rs, 0
	}
	add := func(s msg.RetransStats) {
		rs.Tracked += s.Tracked
		rs.Acked += s.Acked
		rs.Nacked += s.Nacked
		rs.Retries += s.Retries
	}
	for _, r := range b.fi.scatterRet {
		add(r.Stats())
	}
	if b.fi.upRet != nil {
		add(b.fi.upRet.Stats())
	}
	for i := range b.fi.gatherDedup {
		dups += b.fi.gatherDedup[i].Dups()
	}
	dups += b.fi.downDedup.Dups()
	return rs, dups
}

// faultL2 is the level-2 bridge's fault state.
type faultL2 struct {
	upHop   []*fault.Hop // per rank, level-1 → level-2
	upDedup []msg.Dedup  // per rank
	downSeq []uint32     // per rank
	downRet []*msg.Retrans
}

// EnableFaults attaches the injector's up-hop streams and, when retry is
// set, the level-2 ends of the up/down retry protocol.
//ndplint:seam fault-campaign control plane wired before the clock starts
func (l *Level2) EnableFaults(inj *fault.Injector, retry bool) {
	cfg := l.cfg
	fi := &faultL2{upHop: make([]*fault.Hop, len(l.bridges))}
	for r := range l.bridges {
		fi.upHop[r] = inj.HopFor(fault.ScopeL1Up, r)
	}
	if retry {
		fi.upDedup = make([]msg.Dedup, len(l.bridges))
		fi.downSeq = make([]uint32, len(l.bridges))
		fi.downRet = make([]*msg.Retrans, len(l.bridges))
		for r := range l.bridges {
			rank := r
			fi.downRet[r] = msg.NewRetrans(l.eng, cfg.Retry.Timeout, cfg.Retry.BackoffCap,
				cfg.Retry.BufBytes, func(m *msg.Message) { l.pushDown(rank, m) })
			fi.downRet[r].SetTrace(l.env.Trace, -1)
			fi.downRet[r].SetJitter(msg.JitterSeed(4, uint64(r)))
		}
	}
	l.fi = fi
}

// DropBorrowed removes the cross-rank dataBorrowed entry for blk, if any
// (recovery of a lend whose borrower died).
func (l *Level2) DropBorrowed(blk uint64) { l.borrowed.Remove(blk) }

// AckDown and NackDown implement the upLevel acknowledgement sideband for
// down-hop deliveries.
func (l *Level2) AckDown(rank int, seq uint32) {
	if l.fi != nil && l.fi.downRet != nil {
		l.fi.downRet[rank].Ack(seq)
	}
}

// NackDown triggers an immediate retransmission of a corrupted down message.
//ndplint:seam retry protocol: rank bridge bounces a downward message back
func (l *Level2) NackDown(rank int, seq uint32) {
	if l.fi != nil && l.fi.downRet != nil {
		l.fi.downRet[rank].Nack(seq)
	}
}

// acceptUp moves one gathered up message across the (possibly faulty) hop
// from rank r.
func (l *Level2) acceptUp(r int, m *msg.Message) {
	if l.fi != nil {
		if h := l.fi.upHop[r]; h != nil {
			applyOutcome(l.eng, h.Decide(l.eng.Now()), m,
				func(mm *msg.Message) { l.commitUp(r, mm) })
			return
		}
	}
	l.commitUp(r, m)
}

// commitUp is the level-2 receiver of the up hop: verify, ack, dedup, route.
func (l *Level2) commitUp(r int, m *msg.Message) {
	if l.fi != nil && m.Seq != 0 {
		if !m.Verify() {
			l.bridges[r].NackUp(m.Seq)
			return
		}
		l.bridges[r].AckUp(m.Seq)
		if l.fi.upDedup != nil && !l.fi.upDedup[r].Accept(m.Seq) {
			return
		}
		m.Seq, m.Sum = 0, 0
	}
	if rec := l.env.Trace(); rec.FlowsEnabled() {
		// Up-channel leg: level-1 drain → level-2 commit (channel batch).
		now := l.eng.Now()
		cat := trace.CatHostRT
		if m.Sched || m.Round != 0 {
			cat = trace.CatLBMigration
		}
		m.Span = rec.Span(m.Flow, m.Span, trace.SpanBridgeQ, cat, -1, m.HopStart(), now)
		m.HopAt = now
	}
	l.routeUp(m)
}

// RetryStats aggregates the level-2 retransmission counters (down hop) and
// the duplicates filtered on the up hop.
func (l *Level2) RetryStats() (msg.RetransStats, uint64) {
	var rs msg.RetransStats
	var dups uint64
	if l.fi == nil {
		return rs, 0
	}
	for _, r := range l.fi.downRet {
		s := r.Stats()
		rs.Tracked += s.Tracked
		rs.Acked += s.Acked
		rs.Nacked += s.Nacked
		rs.Retries += s.Retries
	}
	for i := range l.fi.upDedup {
		dups += l.fi.upDedup[i].Dups()
	}
	return rs, dups
}
