package rowclone

import (
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/dram"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/ndpunit"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
	"ndpbridge/internal/trace"
)

type testEnv struct {
	eng      *sim.Engine
	cfg      config.Config
	amap     *dram.AddrMap
	reg      *task.Registry
	inflight int
	taskID   uint64
}

func newTestEnv() *testEnv {
	cfg := config.Default().WithDesign(config.DesignR)
	cfg.Geometry = config.Geometry{
		Channels: 1, RanksPerChannel: 1, ChipsPerRank: 2, BanksPerChip: 2,
		BankBytes: 8 << 20,
	}
	return &testEnv{
		eng:  sim.NewEngine(),
		cfg:  cfg,
		amap: dram.NewAddrMap(cfg.Geometry),
		reg:  task.NewRegistry(),
	}
}

func (e *testEnv) Engine() *sim.Engine      { return e.eng }
func (e *testEnv) Cfg() *config.Config      { return &e.cfg }
func (e *testEnv) Map() *dram.AddrMap       { return e.amap }
func (e *testEnv) Registry() *task.Registry { return e.reg }
func (e *testEnv) CurrentEpoch() uint32     { return 0 }
func (e *testEnv) TaskSpawned(uint32)       {}
func (e *testEnv) NextTaskID() uint64       { e.taskID++; return e.taskID }
func (e *testEnv) TaskDone(uint32)          {}
func (e *testEnv) MsgStaged()               { e.inflight++ }
func (e *testEnv) MsgDelivered()            { e.inflight-- }
func (e *testEnv) Trace() *trace.Recorder   { return nil }
func (e *testEnv) MsgPool() *msg.Pool        { return nil }

func TestRowCloneDeliversIntraChip(t *testing.T) {
	env := newTestEnv()
	ran := 0
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { ran++; ctx.Compute(5) })
	units := make([]*ndpunit.Unit, 4)
	rng := sim.NewRNG(1)
	for i := range units {
		units[i] = ndpunit.New(i, env, rng.Split())
	}
	e := New(env, units)
	e.Start()

	// Units 0 and 1 share chip 0: the message must take the chip mailbox.
	dst := env.amap.Base(1) + 64
	var spawner task.FuncID
	spawner = env.reg.Register("s", func(ctx task.Ctx, tk task.Task) {
		ctx.Enqueue(task.New(fn, 0, dst, 10))
	})
	units[0].SeedTask(task.New(spawner, 0, env.amap.Base(0)+64, 10))
	units[0].Kick()
	env.eng.RunUntil(200)
	if units[0].ChipMailUsed() == 0 && ran == 0 {
		t.Fatal("same-chip message not routed to the chip mailbox")
	}
	env.eng.RunUntil(50_000)
	if ran != 1 {
		t.Fatalf("intra-chip task not delivered (ran=%d)", ran)
	}
	st := e.Stats()
	if st.Copies == 0 || st.Messages != 1 {
		t.Errorf("stats = %+v", st)
	}
	if env.inflight != 0 {
		t.Errorf("inflight = %d", env.inflight)
	}
	// Cross-chip messages must NOT enter the chip mailbox.
	units[0].SeedTask(task.New(spawner, 0, env.amap.Base(0)+128, 10))
	// Redirect: spawner always targets unit 1 — craft a direct cross-chip
	// emit instead via a new handler.
	var xchip task.FuncID
	xchip = env.reg.Register("x", func(ctx task.Ctx, tk task.Task) {
		ctx.Enqueue(task.New(fn, 0, env.amap.Base(3)+64, 10))
	})
	units[0].SeedTask(task.New(xchip, 0, env.amap.Base(0)+192, 10))
	units[0].Kick()
	env.eng.RunUntil(60_000)
	if units[0].MailboxUsed() == 0 {
		t.Error("cross-chip message should wait in the normal mailbox for the host")
	}
}

func TestRowCloneLatency(t *testing.T) {
	env := newTestEnv()
	var deliveredAt uint64
	fn := env.reg.Register("f", func(ctx task.Ctx, tk task.Task) { deliveredAt = uint64(ctx.Now()) })
	units := make([]*ndpunit.Unit, 4)
	rng := sim.NewRNG(1)
	for i := range units {
		units[i] = ndpunit.New(i, env, rng.Split())
	}
	e := New(env, units)
	e.Start()
	var spawner task.FuncID
	spawner = env.reg.Register("s", func(ctx task.Ctx, tk task.Task) {
		ctx.Enqueue(task.New(fn, 0, env.amap.Base(1)+64, 10))
	})
	units[0].SeedTask(task.New(spawner, 0, env.amap.Base(0)+64, 10))
	units[0].Kick()
	env.eng.RunUntil(100_000)
	if deliveredAt == 0 {
		t.Fatal("never delivered")
	}
	// Intra-chip delivery should take well under the host-forwarding path
	// (sweep + two channel crossings ≈ 600+ cycles).
	if deliveredAt > 1200 {
		t.Errorf("RowClone delivery at %d cycles, expected fast intra-chip path", deliveredAt)
	}
}
