// Package rowclone models the design-R baseline: RowClone-style in-DRAM bulk
// copy serves cross-bank transfers within a chip over the chip's shared
// internal data bus, while cross-chip messages still go through host
// forwarding. Load balancing is not possible with RowClone's hardware alone
// (Section VII), so the engine only moves messages.
package rowclone

import (
	"ndpbridge/internal/config"
	"ndpbridge/internal/dram"
	"ndpbridge/internal/msg"
	"ndpbridge/internal/ndpunit"
	"ndpbridge/internal/sim"
)

// Env provides global services.
type Env interface {
	Engine() *sim.Engine
	Cfg() *config.Config
	Map() *dram.AddrMap
}

// Stats counts RowClone activity.
type Stats struct {
	Copies   uint64
	Messages uint64
	Bytes    uint64
}

// Engine drives one copy engine per DRAM chip.
type Engine struct {
	env Env
	// eng/cfg cache env.Engine()/env.Cfg() — both stable for the system's
	// lifetime — so hot paths skip the interface dispatch.
	eng     *sim.Engine    //ndplint:nosnap cached wiring, set at construction
	cfg     *config.Config //ndplint:nosnap cached wiring, set at construction
	chips   [][]*ndpunit.Unit // units grouped by chip
	running []bool
	st      Stats

	// Per-chip pre-bound callbacks and the one in-flight copy batch per
	// chip (running[chip] guards reuse).
	sweepFn func()
	stepFns []func()
	copyFns []func()
	batch   [][]*msg.Message
}

// New groups units by chip and builds the engine.
func New(env Env, units []*ndpunit.Unit) *Engine {
	banks := env.Cfg().Geometry.BanksPerChip
	nChips := len(units) / banks
	chips := make([][]*ndpunit.Unit, nChips)
	for c := 0; c < nChips; c++ {
		chips[c] = units[c*banks : (c+1)*banks]
	}
	e := &Engine{env: env, eng: env.Engine(), cfg: env.Cfg(), chips: chips, running: make([]bool, nChips)}
	e.sweepFn = e.sweep
	e.stepFns = make([]func(), nChips)
	e.copyFns = make([]func(), nChips)
	e.batch = make([][]*msg.Message, nChips)
	for c := 0; c < nChips; c++ {
		c := c
		e.stepFns[c] = func() { e.step(c) }
		e.copyFns[c] = func() { e.finishCopy(c) }
	}
	return e
}

// Stats returns the counters.
func (e *Engine) Stats() Stats { return e.st }

// Start begins periodic polling of the chip mailboxes.
func (e *Engine) Start() {
	e.eng.After(e.cfg.IState/4, e.sweepFn)
}

func (e *Engine) sweep() {
	for c := range e.chips {
		e.ensureLoop(c)
	}
	e.eng.After(e.cfg.IState/4, e.sweepFn)
}

func (e *Engine) ensureLoop(chip int) {
	if e.running[chip] {
		return
	}
	if e.pick(chip) < 0 {
		return
	}
	e.running[chip] = true
	e.eng.After(0, e.stepFns[chip])
}

func (e *Engine) pick(chip int) int {
	for i, u := range e.chips[chip] {
		if u.ChipMailUsed() > 0 {
			return i
		}
	}
	return -1
}

// step performs one RowClone transfer: a batch of same-chip messages moves
// from one bank's mailbox to destination banks at bulk-row-copy latency.
func (e *Engine) step(chip int) {
	cfg := e.cfg
	eng := e.eng
	src := e.pick(chip)
	if src < 0 {
		for _, u := range e.chips[chip] {
			if u.HasBacklog() {
				e.eng.After(e.cfg.IMin(), e.stepFns[chip])
				return
			}
		}
		e.running[chip] = false
		return
	}
	ms := e.chips[chip][src].DrainChipMail(cfg.Timing.BankRowBytes)
	var bytes uint64
	for _, m := range ms {
		bytes += m.Size()
	}
	end := eng.Now() + cfg.Timing.RowCloneCopy
	e.st.Copies++
	e.st.Messages += uint64(len(ms))
	e.st.Bytes += bytes
	e.batch[chip] = ms
	eng.At(end, e.copyFns[chip])
}

// finishCopy delivers one completed RowClone batch and continues the loop.
func (e *Engine) finishCopy(chip int) {
	units := e.chips[chip]
	banks := e.cfg.Geometry.BanksPerChip
	for _, m := range e.batch[chip] {
		if m.Dst >= 0 {
			units[m.Dst%banks].Deliver(m)
		}
	}
	e.batch[chip] = nil
	e.step(chip)
}
