package sim

import "testing"

// firing is one executed event in a recorded schedule.
type firing struct {
	id int
	at Cycles
}

// runRandomSchedule drives an engine with a self-expanding random workload:
// every fired event may schedule children at random deltas straddling the
// wheel/heap boundary (0 … 2×WheelSize), including exact-boundary and
// same-cycle deltas. It records the (id, time) firing order.
func runRandomSchedule(t *testing.T, heapOnly bool, seed uint64, n int) []firing {
	t.Helper()
	e := NewEngine()
	e.SetHeapOnly(heapOnly)
	rng := NewRNG(seed)
	var got []firing
	next := 0
	var spawn func(id int) func()
	spawn = func(id int) func() {
		return func() {
			got = append(got, firing{id, e.Now()})
			if next >= n {
				return
			}
			kids := 1 + rng.Intn(2)
			for k := 0; k < kids && next < n; k++ {
				var d Cycles
				switch rng.Intn(6) {
				case 0:
					d = 0 // same cycle, must fire in seq order
				case 1:
					d = WheelSize - 1 // last wheel slot
				case 2:
					d = WheelSize // first heap delta
				case 3:
					d = WheelSize + rng.Uint64n(WheelSize) // far future
				default:
					d = rng.Uint64n(WheelSize) // typical near-future
				}
				id := next
				next++
				e.After(d, spawn(id))
			}
		}
	}
	for i := 0; i < 8; i++ {
		id := next
		next++
		e.At(rng.Uint64n(2*WheelSize), spawn(id))
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestWheelHeapEquivalence proves the calendar queue is a pure container
// optimization: for randomized schedules crossing the wheel/heap boundary,
// the hybrid engine fires exactly the same events at the same times in the
// same order as a heap-only engine.
func TestWheelHeapEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234, 99999} {
		hybrid := runRandomSchedule(t, false, seed, 5000)
		heap := runRandomSchedule(t, true, seed, 5000)
		if len(hybrid) != len(heap) {
			t.Fatalf("seed %d: fired %d events hybrid, %d heap-only", seed, len(hybrid), len(heap))
		}
		for i := range hybrid {
			if hybrid[i] != heap[i] {
				t.Fatalf("seed %d: firing %d diverges: hybrid %+v, heap-only %+v",
					seed, i, hybrid[i], heap[i])
			}
		}
		// The engines must also agree on the clock and event count.
		if len(hybrid) == 0 {
			t.Fatalf("seed %d: schedule fired nothing", seed)
		}
	}
}

// TestWheelSameCycleSeqOrder pins the insertion-order guarantee inside one
// wheel bucket: events scheduled for the same cycle fire in schedule order
// even when interleaved with other cycles.
func TestWheelSameCycleSeqOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		// Alternate target cycles so bucket insertion interleaves.
		e.At(Cycles(10+(i%3)*7), func() { got = append(got, i) })
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("fired %d events, want 100", len(got))
	}
	// Within each cycle, ids must ascend; across cycles, times ascend.
	seen := map[Cycles]int{}
	for idx, id := range got {
		at := Cycles(10 + (id%3)*7)
		if prev, ok := seen[at]; ok && prev > id {
			t.Fatalf("cycle %d fired id %d after id %d (index %d)", at, id, prev, idx)
		}
		seen[at] = id
	}
}
