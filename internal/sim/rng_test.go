package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed should not stick at zero")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGUniformityRough(t *testing.T) {
	r := NewRNG(3)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for i, c := range counts {
		if c < n/buckets*8/10 || c > n/buckets*12/10 {
			t.Errorf("bucket %d count %d far from uniform %d", i, c, n/buckets)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(5)
	s := r.Split()
	// The split stream must differ from the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split stream tracks parent (%d/100 equal)", same)
	}
}
