package sim

// Link models a shared, bandwidth-limited transfer resource such as a DRAM
// chip's DQ pins, the internal bus of a rank, or a memory channel. Transfers
// reserve the link FIFO-style: a transfer of n bytes issued at time t starts
// at max(t, busyUntil) plus a fixed latency and occupies the link for
// ceil(n / bytesPerCycle) cycles.
//
// Link is a passive bookkeeping structure: callers obtain the completion time
// and schedule their own events on the Engine.
//ndplint:domain(perowner)
type Link struct {
	name          string
	bytesPerCycle uint64
	latency       Cycles // fixed per-transfer latency (command, propagation)
	busyUntil     Cycles

	// Accounting.
	bytes     uint64
	transfers uint64
	busy      Cycles // total occupied cycles
}

// NewLink returns a link transferring bytesPerCycle bytes each cycle with a
// fixed per-transfer latency. bytesPerCycle must be at least 1.
func NewLink(name string, bytesPerCycle uint64, latency Cycles) *Link {
	if bytesPerCycle == 0 {
		panic("sim: link bandwidth must be positive")
	}
	return &Link{name: name, bytesPerCycle: bytesPerCycle, latency: latency}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// BytesPerCycle returns the link's bandwidth.
func (l *Link) BytesPerCycle() uint64 { return l.bytesPerCycle }

// Duration returns how many cycles a transfer of n bytes occupies the link,
// excluding queueing and fixed latency.
func (l *Link) Duration(n uint64) Cycles {
	if n == 0 {
		return 0
	}
	return (n + l.bytesPerCycle - 1) / l.bytesPerCycle
}

// Reserve books a transfer of n bytes issued at time now and returns the
// completion time. The link is occupied from max(now, busyUntil) for
// latency + Duration(n) cycles.
func (l *Link) Reserve(now Cycles, n uint64) Cycles {
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	d := l.latency + l.Duration(n)
	end := start + d
	l.busyUntil = end
	l.bytes += n
	l.transfers++
	l.busy += d
	return end
}

// NextFree returns the earliest time a new transfer could start.
func (l *Link) NextFree(now Cycles) Cycles {
	if l.busyUntil > now {
		return l.busyUntil
	}
	return now
}

// Stats returns cumulative transferred bytes, number of transfers, and busy
// cycles.
func (l *Link) Stats() (bytes, transfers uint64, busy Cycles) {
	return l.bytes, l.transfers, l.busy
}

// Reset clears accounting and availability, for reuse across runs.
func (l *Link) Reset() {
	l.busyUntil = 0
	l.bytes = 0
	l.transfers = 0
	l.busy = 0
}
