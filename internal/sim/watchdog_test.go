package sim

import "testing"

func TestWatchdogTripsOnStalledProgress(t *testing.T) {
	eng := NewEngine()
	var progress uint64
	tripped := false
	wd := NewWatchdog(eng, 100, 3,
		func() uint64 { return progress },
		func() bool { return true },
		func() { tripped = true; eng.Stop() })
	wd.Start()
	// Progress for the first two polls, then stall.
	eng.At(150, func() { progress++ })
	eng.At(250, func() { progress++ })
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if !tripped || !wd.Tripped() {
		t.Fatal("watchdog did not trip on stalled progress")
	}
	// Strikes reset at polls 1–3 (progress moved by 150 and 250); stall
	// begins after cycle 250, so the trip lands 3 periods later.
	if eng.Now() != 600 {
		t.Fatalf("tripped at %d, want 600", eng.Now())
	}
}

func TestWatchdogQuietWhenNoPending(t *testing.T) {
	eng := NewEngine()
	wd := NewWatchdog(eng, 50, 2,
		func() uint64 { return 0 },
		func() bool { return false },
		func() { t.Fatal("tripped with no pending work") })
	wd.Start()
	eng.RunUntil(1000)
	if wd.Tripped() {
		t.Fatal("tripped")
	}
	// Self-rescheduling keeps the queue alive.
	if eng.Pending() == 0 {
		t.Fatal("watchdog stopped polling")
	}
}

func TestWatchdogQuietUnderSlowProgress(t *testing.T) {
	eng := NewEngine()
	var progress uint64
	wd := NewWatchdog(eng, 100, 2,
		func() uint64 { return progress },
		func() bool { return true },
		func() { t.Fatal("tripped despite forward progress") })
	wd.Start()
	// One unit of progress per period: slow, but alive.
	var tick func()
	tick = func() {
		progress++
		if eng.Now() < 2000 {
			eng.After(90, tick)
		}
	}
	eng.After(90, tick)
	eng.RunUntil(2000)
	if wd.Tripped() {
		t.Fatal("tripped")
	}
}

func TestWatchdogStop(t *testing.T) {
	eng := NewEngine()
	wd := NewWatchdog(eng, 10, 1,
		func() uint64 { return 0 },
		func() bool { return true },
		func() { t.Fatal("stopped watchdog tripped") })
	wd.Start()
	wd.Stop()
	eng.RunUntil(500)
	if wd.Tripped() {
		t.Fatal("tripped after Stop")
	}
}
