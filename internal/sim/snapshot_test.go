package sim

import "testing"

func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	st := r.State()
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}

	r2 := NewRNG(999)
	r2.SetState(st)
	for i, w := range want {
		if got := r2.Uint64(); got != w {
			t.Fatalf("draw %d after restore: got %#x, want %#x", i, got, w)
		}
	}
}

func TestRNGSetStateZero(t *testing.T) {
	r := NewRNG(1)
	r.SetState(0)
	if r.State() == 0 {
		t.Fatal("zero state not remapped; the stream would stick at zero")
	}
}

func TestEngineSnapState(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.At(20, func() {})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	st := e.SnapState()
	if st.Now != 20 || st.Processed != 2 || st.Seq != 2 {
		t.Errorf("state = %+v", st)
	}
}

func TestEngineAuditHook(t *testing.T) {
	e := NewEngine()
	var fired []Cycles
	e.SetAudit(100, func(now Cycles) { fired = append(fired, now) })

	// Events at 50, 150, 160, 400: audit should fire at 150 (first event
	// at/past deadline 100), then at 400 (first at/past 250), never twice
	// for events inside one window.
	for _, c := range []Cycles{50, 150, 160, 400} {
		e.At(c, func() {})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 150 || fired[1] != 400 {
		t.Errorf("audit fired at %v, want [150 400]", fired)
	}

	// Disabled hook never fires.
	e2 := NewEngine()
	n := 0
	e2.SetAudit(0, func(Cycles) { n++ })
	e2.At(1000, func() {})
	if err := e2.Run(0); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("disabled audit hook fired %d times", n)
	}
}

func TestEngineAuditCoexistsWithProgress(t *testing.T) {
	e := NewEngine()
	audits, progresses := 0, 0
	e.SetAudit(1, func(Cycles) { audits++ })
	e.SetProgress(1, func(Cycles, uint64) { progresses++ })
	for i := Cycles(1); i <= 5; i++ {
		e.At(i, func() {})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if audits != 5 || progresses != 5 {
		t.Errorf("audits=%d progresses=%d, want 5 and 5", audits, progresses)
	}
}
