package sim

import "testing"

// BenchmarkEngineSchedule measures the cost of pushing one event into a
// steady-state queue (the heap stays ~1024 deep, so the backing array never
// grows inside the timed loop). With the hand-rolled heap this is
// allocation-free; container/heap boxed every event into an interface{}.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	const depth = 1024
	for i := 0; i < depth; i++ {
		e.At(Cycles(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(Cycles(depth+i), fn)
		e.pop()
	}
}

// BenchmarkEngineRun measures the full schedule→dispatch cycle: each event
// reschedules itself, so every iteration is one push and one pop through the
// heap plus the callback dispatch. Reports events/sec.
func BenchmarkEngineRun(b *testing.B) {
	e := NewEngine()
	var spin func()
	spin = func() { e.After(1, spin) }
	// A handful of concurrent chains keeps the heap non-trivial.
	for i := 0; i < 16; i++ {
		e.At(Cycles(i), spin)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(uint64(b.N)); err != nil && err != ErrLimit {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(e.Processed())/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineFill measures bulk scheduling into a growing queue followed
// by a full drain — the pattern of seeding an epoch.
func BenchmarkEngineFill(b *testing.B) {
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 4096; j++ {
			// Reversed times exercise siftUp beyond the append fast path.
			e.At(Cycles(4096-j), fn)
		}
		if err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}
