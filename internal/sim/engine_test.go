package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 0) })
	e.At(10, func() { got = append(got, 2) }) // same time: insertion order
	e.At(20, func() { got = append(got, 3) })
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Errorf("Now = %d, want 20", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Cycles
	e.At(1, func() {
		fired = append(fired, e.Now())
		e.After(4, func() { fired = append(fired, e.Now()) })
		e.After(2, func() { fired = append(fired, e.Now()) })
	})
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Cycles{1, 3, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEngineEventLimit(t *testing.T) {
	e := NewEngine()
	var spin func()
	spin = func() { e.After(1, spin) }
	e.At(0, spin)
	if err := e.Run(100); err != ErrLimit {
		t.Fatalf("Run = %v, want ErrLimit", err)
	}
	if e.Processed() != 100 {
		t.Errorf("Processed = %d, want 100", e.Processed())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++; e.Stop() })
	e.At(2, func() { n++ })
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 1 {
		t.Errorf("executed %d events, want 1 (stopped)", n)
	}
	// Remaining event still pending.
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Cycles
	for _, c := range []Cycles{3, 7, 11} {
		c := c
		e.At(c, func() { fired = append(fired, c) })
	}
	e.RunUntil(7)
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 7 {
		t.Fatalf("fired = %v, want [3 7]", fired)
	}
	if e.Now() != 7 {
		t.Errorf("Now = %d, want 7", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 3 {
		t.Fatalf("fired = %v, want 3 events", fired)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %d, want 100", e.Now())
	}
}

// Property: however events are inserted, they fire in non-decreasing time
// order.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var fired []Cycles
		for _, raw := range times {
			c := Cycles(raw)
			e.At(c, func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(0); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
