package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 0) })
	e.At(10, func() { got = append(got, 2) }) // same time: insertion order
	e.At(20, func() { got = append(got, 3) })
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Errorf("Now = %d, want 20", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Cycles
	e.At(1, func() {
		fired = append(fired, e.Now())
		e.After(4, func() { fired = append(fired, e.Now()) })
		e.After(2, func() { fired = append(fired, e.Now()) })
	})
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Cycles{1, 3, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEngineEventLimit(t *testing.T) {
	e := NewEngine()
	var spin func()
	spin = func() { e.After(1, spin) }
	e.At(0, spin)
	if err := e.Run(100); err != ErrLimit {
		t.Fatalf("Run = %v, want ErrLimit", err)
	}
	if e.Processed() != 100 {
		t.Errorf("Processed = %d, want 100", e.Processed())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++; e.Stop() })
	e.At(2, func() { n++ })
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 1 {
		t.Errorf("executed %d events, want 1 (stopped)", n)
	}
	// Remaining event still pending.
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

// A prior Stop() must not leave RunUntil silently skipping events: like
// Run, it resets the flag on entry.
func TestEngineRunUntilAfterStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++; e.Stop() })
	e.At(2, func() { n++ })
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 1 {
		t.Fatalf("executed %d events before stop, want 1", n)
	}
	e.RunUntil(10)
	if n != 2 {
		t.Errorf("executed %d events after RunUntil, want 2", n)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %d, want 10", e.Now())
	}
}

// Stop issued during a RunUntil window halts the loop and leaves now at the
// last executed event, not at t.
func TestEngineRunUntilStopMidWindow(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(3, func() { n++; e.Stop() })
	e.At(5, func() { n++ })
	e.RunUntil(10)
	if n != 1 {
		t.Errorf("executed %d events, want 1 (stopped)", n)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %d, want 3 (not advanced past stop)", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	// A later RunUntil resumes where the stop left off.
	e.RunUntil(10)
	if n != 2 || e.Now() != 10 {
		t.Errorf("after resume: n=%d Now=%d, want 2/10", n, e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Cycles
	for _, c := range []Cycles{3, 7, 11} {
		c := c
		e.At(c, func() { fired = append(fired, c) })
	}
	e.RunUntil(7)
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 7 {
		t.Fatalf("fired = %v, want [3 7]", fired)
	}
	if e.Now() != 7 {
		t.Errorf("Now = %d, want 7", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 3 {
		t.Fatalf("fired = %v, want 3 events", fired)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %d, want 100", e.Now())
	}
}

// The hand-rolled heap must preserve the (time, seq) tie-break at scale:
// many events at few distinct times fire in insertion order within a time.
func TestEngineInsertionOrderAtScale(t *testing.T) {
	e := NewEngine()
	const n = 1000
	var got []int
	for i := 0; i < n; i++ {
		i := i
		e.At(Cycles(i%7), func() { got = append(got, i) })
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	last := make(map[Cycles]int)
	for k, i := range got {
		tm := Cycles(i % 7)
		if prev, ok := last[tm]; ok && i < prev {
			t.Fatalf("at position %d: event %d fired after %d at time %d", k, i, prev, tm)
		}
		last[tm] = i
		if k > 0 && Cycles(got[k]%7) < Cycles(got[k-1]%7) {
			t.Fatalf("time regression at position %d", k)
		}
	}
}

// Property: however events are inserted, they fire in non-decreasing time
// order.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var fired []Cycles
		for _, raw := range times {
			c := Cycles(raw)
			e.At(c, func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(0); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEngineProgressHook: the progress callback fires every N processed
// events with the engine's current time and cumulative event count, in both
// Run and RunUntil, and can be disabled again.
func TestEngineProgressHook(t *testing.T) {
	e := NewEngine()
	type tick struct {
		now       Cycles
		processed uint64
	}
	var ticks []tick
	e.SetProgress(10, func(now Cycles, processed uint64) {
		ticks = append(ticks, tick{now, processed})
	})
	for i := 0; i < 25; i++ {
		e.At(Cycles(i), func() {})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 2 {
		t.Fatalf("ticks = %d, want 2", len(ticks))
	}
	if ticks[0].processed != 10 || ticks[1].processed != 20 {
		t.Errorf("tick counts = %+v", ticks)
	}
	if ticks[0].now != 9 || ticks[1].now != 19 {
		t.Errorf("tick times = %+v", ticks)
	}

	// RunUntil drives the same hook.
	for i := 30; i < 40; i++ {
		e.At(Cycles(i), func() {})
	}
	e.RunUntil(100)
	if len(ticks) != 3 || ticks[2].processed != 30 {
		t.Errorf("after RunUntil ticks = %+v", ticks)
	}

	// Disabling stops further callbacks.
	e.SetProgress(0, nil)
	for i := 101; i < 140; i++ {
		e.At(Cycles(i), func() {})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 3 {
		t.Errorf("ticks after disable = %d, want 3", len(ticks))
	}
}
