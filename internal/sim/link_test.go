package sim

import (
	"testing"
	"testing/quick"
)

func TestLinkDuration(t *testing.T) {
	l := NewLink("dq", 6, 0)
	cases := []struct {
		bytes uint64
		want  Cycles
	}{
		{0, 0}, {1, 1}, {6, 1}, {7, 2}, {12, 2}, {256, 43},
	}
	for _, c := range cases {
		if got := l.Duration(c.bytes); got != c.want {
			t.Errorf("Duration(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestLinkReserveSerializes(t *testing.T) {
	l := NewLink("ch", 48, 2)
	end1 := l.Reserve(0, 480) // 2 + 10 = 12
	if end1 != 12 {
		t.Fatalf("end1 = %d, want 12", end1)
	}
	// Issued at time 5 but the link is busy until 12.
	end2 := l.Reserve(5, 48) // starts 12, + 2 + 1 = 15
	if end2 != 15 {
		t.Fatalf("end2 = %d, want 15", end2)
	}
	// Issued after the link is free again.
	end3 := l.Reserve(100, 48)
	if end3 != 103 {
		t.Fatalf("end3 = %d, want 103", end3)
	}
	bytes, n, busy := l.Stats()
	if bytes != 480+48+48 || n != 3 {
		t.Errorf("stats = (%d, %d), want (576, 3)", bytes, n)
	}
	if busy != 12+3+3 {
		t.Errorf("busy = %d, want 18", busy)
	}
}

func TestLinkNextFree(t *testing.T) {
	l := NewLink("x", 10, 0)
	if l.NextFree(7) != 7 {
		t.Errorf("NextFree on idle link should be now")
	}
	l.Reserve(7, 100) // busy until 17
	if got := l.NextFree(8); got != 17 {
		t.Errorf("NextFree = %d, want 17", got)
	}
}

func TestLinkReset(t *testing.T) {
	l := NewLink("x", 10, 1)
	l.Reserve(0, 100)
	l.Reset()
	if b, n, busy := l.Stats(); b != 0 || n != 0 || busy != 0 {
		t.Errorf("after Reset stats = (%d,%d,%d), want zeros", b, n, busy)
	}
	if l.NextFree(0) != 0 {
		t.Errorf("after Reset link should be free at 0")
	}
}

func TestLinkZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero bandwidth")
		}
	}()
	NewLink("bad", 0, 0)
}

// Property: reservations never overlap — each transfer starts at or after the
// previous transfer's completion when issued in non-decreasing time order,
// and total busy time equals the sum of individual durations.
func TestLinkNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16, gaps []uint8) bool {
		l := NewLink("p", 7, 1)
		now := Cycles(0)
		prevEnd := Cycles(0)
		var wantBusy Cycles
		for i, s := range sizes {
			if i < len(gaps) {
				now += Cycles(gaps[i])
			}
			n := uint64(s)
			end := l.Reserve(now, n)
			d := Cycles(1) + l.Duration(n)
			wantBusy += d
			start := end - d
			if start < prevEnd || start < now {
				return false
			}
			prevEnd = end
		}
		_, _, busy := l.Stats()
		return busy == wantBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
