package sim

// Watchdog detects deadlock and livelock in a fault-injected run: the model
// claims work remains pending but makes no forward progress over several
// consecutive observation periods. It polls from inside the event loop — its
// self-rescheduling keeps the event queue non-empty, so while a watchdog is
// armed the engine can never "drain and hang"; termination happens through
// the model's own completion Stop, and an unrecoverable stall surfaces as a
// trip instead of an infinite run.
//
// Recoverable faults must never trip it: the observation period should be
// set comfortably above the longest injected stall/delay plus the retry
// protocol's backoff cap, and progress is measured in completed tasks plus
// delivered messages, so even a run limping through retransmissions
// advances between polls.
//ndplint:domain(engine)
type Watchdog struct {
	eng      *Engine
	period   Cycles
	maxMiss  int
	progress func() uint64 // monotonic forward-progress measure
	pending  func() bool   // does the model still claim outstanding work?
	onTrip   func()

	last    uint64
	strikes int
	tripped bool
	stopped bool
}

// NewWatchdog builds a watchdog polling every period cycles. progress must
// be monotonically non-decreasing (e.g. tasks done + messages delivered);
// pending reports whether the model still expects progress. After maxMiss
// consecutive polls with pending work and no progress, onTrip fires once.
func NewWatchdog(eng *Engine, period Cycles, maxMiss int, progress func() uint64, pending func() bool, onTrip func()) *Watchdog {
	if period == 0 {
		panic("sim: watchdog period must be positive")
	}
	if maxMiss <= 0 {
		maxMiss = 1
	}
	return &Watchdog{
		eng: eng, period: period, maxMiss: maxMiss,
		progress: progress, pending: pending, onTrip: onTrip,
	}
}

// Start arms the watchdog.
func (w *Watchdog) Start() {
	w.last = w.progress()
	w.eng.After(w.period, w.poll)
}

// Stop disarms the watchdog; the pending poll event becomes a no-op.
func (w *Watchdog) Stop() { w.stopped = true }

// Tripped reports whether the watchdog fired.
func (w *Watchdog) Tripped() bool { return w.tripped }

func (w *Watchdog) poll() {
	if w.stopped || w.tripped {
		return
	}
	cur := w.progress()
	switch {
	case !w.pending():
		// Nothing outstanding: the model is quiescing normally.
		w.strikes = 0
	case cur != w.last:
		w.strikes = 0
	default:
		w.strikes++
		if w.strikes >= w.maxMiss {
			w.tripped = true
			if w.onTrip != nil {
				w.onTrip()
			}
			return
		}
	}
	w.last = cur
	w.eng.After(w.period, w.poll)
}
