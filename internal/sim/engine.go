// Package sim provides the discrete-event simulation kernel used by the
// NDPBridge system model: an event engine ordered by cycle time, a
// deterministic random number generator, and bandwidth-reserving links.
//
// All simulator time is measured in NDP-core cycles (400 MHz, 2.5 ns per
// cycle in the default configuration). The engine is deliberately minimal:
// components schedule closures at absolute or relative times and the engine
// runs them in (time, insertion) order until the event queue drains or a
// limit is reached.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Cycles is a point in (or duration of) simulated time, in NDP-core cycles.
type Cycles = uint64

// Event is a scheduled callback. Events with equal times fire in insertion
// order, which keeps runs deterministic.
type event struct {
	time Cycles
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

// ErrLimit is returned by Run when the event budget is exhausted before the
// event queue drains, which usually indicates a livelocked model.
var ErrLimit = errors.New("sim: event limit exceeded")

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Cycles
	seq     uint64
	pq      eventHeap
	stopped bool

	// Processed counts events executed so far; useful for budgeting.
	processed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.pq)
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Cycles { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return e.pq.Len() }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a model bug.
func (e *Engine) At(t Cycles, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, event{time: t, seq: e.seq, fn: fn})
}

// After schedules fn d cycles from now.
func (e *Engine) After(d Cycles, fn func()) { e.At(e.now+d, fn) }

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains, Stop is called, or maxEvents
// events have run (0 means no limit). It returns ErrLimit if the budget was
// exhausted with events still pending.
func (e *Engine) Run(maxEvents uint64) error {
	e.stopped = false
	for e.pq.Len() > 0 && !e.stopped {
		if maxEvents > 0 && e.processed >= maxEvents {
			return ErrLimit
		}
		ev := heap.Pop(&e.pq).(event)
		if ev.time < e.now {
			panic("sim: event time regression")
		}
		e.now = ev.time
		e.processed++
		ev.fn()
	}
	return nil
}

// RunUntil executes events with time <= t, then sets now = t.
func (e *Engine) RunUntil(t Cycles) {
	for e.pq.Len() > 0 && e.pq[0].time <= t && !e.stopped {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.time
		e.processed++
		ev.fn()
	}
	if e.now < t {
		e.now = t
	}
}
