// Package sim provides the discrete-event simulation kernel used by the
// NDPBridge system model: an event engine ordered by cycle time, a
// deterministic random number generator, and bandwidth-reserving links.
//
// All simulator time is measured in NDP-core cycles (400 MHz, 2.5 ns per
// cycle in the default configuration). The engine is deliberately minimal:
// components schedule closures at absolute or relative times and the engine
// runs them in (time, insertion) order until the event queue drains or a
// limit is reached.
package sim

import (
	"errors"
	"fmt"
)

// Cycles is a point in (or duration of) simulated time, in NDP-core cycles.
type Cycles = uint64

// event is a scheduled callback. Events with equal times fire in insertion
// order, which keeps runs deterministic.
type event struct {
	time Cycles
	seq  uint64
	fn   func()
}

// ErrLimit is returned by Run when the event budget is exhausted before the
// event queue drains, which usually indicates a livelocked model.
var ErrLimit = errors.New("sim: event limit exceeded")

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
//
// The pending-event queue is a hand-rolled binary min-heap over []event,
// ordered by (time, seq). Unlike container/heap it never boxes events into
// interface{} values, so the Schedule/Run hot path is allocation-free once
// the backing array has grown to the model's high-water mark; the array is
// kept in place across pops and reused.
type Engine struct {
	now     Cycles
	seq     uint64
	pq      []event
	stopped bool

	// Processed counts events executed so far; useful for budgeting.
	processed uint64

	// Progress hook: progressFn fires every progressEvery processed events
	// (progressLeft counts down to avoid a modulo on the hot path).
	progressFn    func(now Cycles, processed uint64)
	progressEvery uint64
	progressLeft  uint64

	// Audit hook: auditFn fires at most once per auditEvery simulated
	// cycles, before the first event at or past auditNext executes — a
	// point where no event is mid-flight, so cross-component invariants
	// hold. Separate from the progress hook: both are commonly installed
	// at once (heartbeat + auditor).
	auditFn    func(now Cycles)
	auditEvery Cycles
	auditNext  Cycles
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{pq: make([]event, 0, 64)}
}

// less orders the heap by time, breaking ties by insertion sequence.
func (e *Engine) less(i, j int) bool {
	if e.pq[i].time != e.pq[j].time {
		return e.pq[i].time < e.pq[j].time
	}
	return e.pq[i].seq < e.pq[j].seq
}

// siftUp restores the heap invariant after appending at index i.
//
//ndplint:hotpath
func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.pq[i], e.pq[parent] = e.pq[parent], e.pq[i]
		i = parent
	}
}

// siftDown restores the heap invariant after replacing the root.
//
//ndplint:hotpath
func (e *Engine) siftDown(i int) {
	n := len(e.pq)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && e.less(right, left) {
			least = right
		}
		if !e.less(least, i) {
			return
		}
		e.pq[i], e.pq[least] = e.pq[least], e.pq[i]
		i = least
	}
}

// push inserts ev into the heap.
//
//ndplint:hotpath
func (e *Engine) push(ev event) {
	e.pq = append(e.pq, ev)
	e.siftUp(len(e.pq) - 1)
}

// pop removes and returns the earliest event. The vacated slot is zeroed so
// the heap does not retain the popped closure.
//
//ndplint:hotpath
func (e *Engine) pop() event {
	ev := e.pq[0]
	n := len(e.pq) - 1
	e.pq[0] = e.pq[n]
	e.pq[n] = event{}
	e.pq = e.pq[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return ev
}

// Now returns the current simulated time.
func (e *Engine) Now() Cycles { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a model bug.
//
//ndplint:hotpath
func (e *Engine) At(t Cycles, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	e.seq++
	e.push(event{time: t, seq: e.seq, fn: fn})
}

// After schedules fn d cycles from now.
//
//ndplint:hotpath
func (e *Engine) After(d Cycles, fn func()) { e.At(e.now+d, fn) }

// Stop makes Run (or RunUntil) return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetProgress installs fn to be invoked every `every` processed events, from
// inside the run loop (same goroutine, no synchronization needed). It powers
// progress heartbeats on long runs; the countdown adds two predictable
// branches per event and no allocations. every == 0 or fn == nil disables
// the hook.
func (e *Engine) SetProgress(every uint64, fn func(now Cycles, processed uint64)) {
	if fn == nil {
		every = 0
	}
	e.progressFn = fn
	e.progressEvery = every
	e.progressLeft = every
}

// SetAudit installs fn to run at most once per `every` simulated cycles,
// between events (never while one is executing). every == 0 or fn == nil
// disables the hook. The check costs one branch per event when disabled.
func (e *Engine) SetAudit(every Cycles, fn func(now Cycles)) {
	if fn == nil {
		every = 0
	}
	e.auditFn = fn
	e.auditEvery = every
	e.auditNext = e.now + every
}

// tickAudit fires the audit hook when the next event's time has reached the
// audit deadline. Called before the event executes, with now already
// advanced to the event's time.
//
//ndplint:hotpath
func (e *Engine) tickAudit() {
	if e.auditEvery != 0 && e.now >= e.auditNext {
		e.auditFn(e.now)
		e.auditNext = e.now + e.auditEvery
	}
}

// State captures the engine's scalar clock state. The pending-event queue
// holds closures and is deliberately NOT part of the snapshot: full-state
// checkpoints are taken at the bulk-sync epoch barrier, where the model's
// in-flight structures are provably empty, and resume replays
// deterministically up to the barrier (see internal/core and DESIGN.md §10).
type State struct {
	Now       Cycles
	Seq       uint64
	Processed uint64
}

// SnapState returns the engine's clock state.
func (e *Engine) SnapState() State {
	return State{Now: e.now, Seq: e.seq, Processed: e.processed}
}

// tickProgress advances the progress countdown after one executed event.
//
//ndplint:hotpath
func (e *Engine) tickProgress() {
	if e.progressLeft != 0 {
		e.progressLeft--
		if e.progressLeft == 0 {
			e.progressLeft = e.progressEvery
			e.progressFn(e.now, e.processed)
		}
	}
}

// Run executes events until the queue drains, Stop is called, or maxEvents
// events have run (0 means no limit). It returns ErrLimit if the budget was
// exhausted with events still pending.
//
//ndplint:hotpath
func (e *Engine) Run(maxEvents uint64) error {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		if maxEvents > 0 && e.processed >= maxEvents {
			return ErrLimit
		}
		ev := e.pop()
		if ev.time < e.now {
			panic("sim: event time regression")
		}
		e.now = ev.time
		e.tickAudit()
		e.processed++
		ev.fn()
		e.tickProgress()
	}
	return nil
}

// RunUntil executes events with time <= t, then sets now = t. Like Run it
// clears any prior Stop on entry and honors a Stop issued by an event; when
// stopped mid-window, now stays at the last executed event rather than
// jumping to t, so the remaining events are still in the future.
//
//ndplint:hotpath
func (e *Engine) RunUntil(t Cycles) {
	e.stopped = false
	for len(e.pq) > 0 && e.pq[0].time <= t && !e.stopped {
		ev := e.pop()
		if ev.time < e.now {
			panic("sim: event time regression")
		}
		e.now = ev.time
		e.tickAudit()
		e.processed++
		ev.fn()
		e.tickProgress()
	}
	if e.now < t && !e.stopped {
		e.now = t
	}
}
