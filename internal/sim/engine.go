// Package sim provides the discrete-event simulation kernel used by the
// NDPBridge system model: an event engine ordered by cycle time, a
// deterministic random number generator, and bandwidth-reserving links.
//
// All simulator time is measured in NDP-core cycles (400 MHz, 2.5 ns per
// cycle in the default configuration). The engine is deliberately minimal:
// components schedule closures at absolute or relative times and the engine
// runs them in (time, insertion) order until the event queue drains or a
// limit is reached.
package sim

import (
	"errors"
	"fmt"
	"math/bits"
)

// Cycles is a point in (or duration of) simulated time, in NDP-core cycles.
type Cycles = uint64

// event is a scheduled callback. Events with equal times fire in insertion
// order, which keeps runs deterministic.
type event struct {
	time Cycles
	seq  uint64
	fn   func()
}

// ErrLimit is returned by Run when the event budget is exhausted before the
// event queue drains, which usually indicates a livelocked model.
var ErrLimit = errors.New("sim: event limit exceeded")

// The calendar queue (time wheel) in front of the min-heap. Nearly every
// scheduling delta in the model is small and bounded — DRAM bank timings are
// tens of cycles, bus rounds hundreds, and the slowest periodic sweeps run at
// 1.5×IState (3000 cycles by default) — so a wheel covering wheelSize future
// cycles absorbs the heap's O(log n) sift work for almost all events.
const (
	wheelBits  = 10
	wheelSize  = 1 << wheelBits // cycles of look-ahead the wheel covers
	wheelMask  = wheelSize - 1
	wheelWords = wheelSize / 64 // occupancy bitmap words
)

// WheelSize is the calendar queue's look-ahead span in cycles. Per-bucket
// storage grows lazily, so steady-state zero-allocation dispatch is reached
// after one full wheel revolution at load; allocation-sensitive callers (and
// tests) should warm up for at least WheelSize cycles.
const WheelSize = wheelSize

// bucket holds the wheel events of one slot. Because every pending wheel
// event satisfies now <= time < now+wheelSize (events are inserted with a
// delta below wheelSize and popped before now passes them), two different
// pending times can never share a slot: a bucket always holds events of
// exactly one time, in ascending seq order. The head index makes pops O(1)
// while retaining the backing array for reuse.
type bucket struct {
	evs  []event
	head int
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
//
// Near-future events (delta < wheelSize) go to the calendar queue; far-future
// events overflow to a hand-rolled binary min-heap over []event ordered by
// (time, seq). Unlike container/heap the heap never boxes events into
// interface{} values, so the Schedule/Run hot path is allocation-free once
// the backing arrays have grown to the model's high-water mark; the arrays
// are kept in place across pops and reused.
//ndplint:domain(engine)
type Engine struct {
	now     Cycles
	seq     uint64
	pq      []event
	stopped bool

	// wheel is the calendar queue; wheelCount tracks its population and
	// wheelNext is a lower bound on its earliest pending event time. occ
	// is a one-bit-per-slot occupancy bitmap, so the pop-side scan jumps
	// over empty slots a word (64 slots) at a time instead of one by one.
	wheel      []bucket
	wheelCount int
	wheelNext  Cycles
	occ        [wheelWords]uint64 //ndplint:nosnap derived from wheel occupancy

	// evSlab seeds cold buckets with a small initial capacity carved from
	// one larger allocation, replacing each bucket's first append-growth
	// steps (thousands of tiny growslice calls per engine) with a few
	// slab allocations. A bucket holds only the events of a single cycle,
	// so steady-state occupancy is pending/wheelSize — usually 0–2 — and
	// the seed stays small. Chunks are never returned; a bucket that
	// outgrows its seed abandons it for a normally-grown array.
	evSlab []event //ndplint:nosnap allocator state, no logical content

	// heapOnly disables the wheel (every event goes through the min-heap).
	// The equivalence tests run both configurations against each other.
	heapOnly bool

	// Processed counts events executed so far; useful for budgeting.
	processed uint64

	// Progress hook: progressFn fires every progressEvery processed events
	// (progressLeft counts down to avoid a modulo on the hot path).
	progressFn    func(now Cycles, processed uint64)
	progressEvery uint64
	progressLeft  uint64

	// Audit hook: auditFn fires at most once per auditEvery simulated
	// cycles, before the first event at or past auditNext executes — a
	// point where no event is mid-flight, so cross-component invariants
	// hold. Separate from the progress hook: both are commonly installed
	// at once (heartbeat + auditor).
	auditFn    func(now Cycles)
	auditEvery Cycles
	auditNext  Cycles
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{pq: make([]event, 0, 64), wheel: make([]bucket, wheelSize)}
}

// SetHeapOnly routes every future event through the min-heap, bypassing the
// calendar queue. Both paths order events identically by (time, seq); the
// toggle exists so determinism tests can prove it. Call before scheduling.
func (e *Engine) SetHeapOnly(on bool) { e.heapOnly = on }

// less orders the heap by time, breaking ties by insertion sequence.
func (e *Engine) less(i, j int) bool {
	if e.pq[i].time != e.pq[j].time {
		return e.pq[i].time < e.pq[j].time
	}
	return e.pq[i].seq < e.pq[j].seq
}

// siftUp restores the heap invariant after appending at index i.
//
//ndplint:hotpath
func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.pq[i], e.pq[parent] = e.pq[parent], e.pq[i]
		i = parent
	}
}

// siftDown restores the heap invariant after replacing the root.
//
//ndplint:hotpath
func (e *Engine) siftDown(i int) {
	n := len(e.pq)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && e.less(right, left) {
			least = right
		}
		if !e.less(least, i) {
			return
		}
		e.pq[i], e.pq[least] = e.pq[least], e.pq[i]
		i = least
	}
}

// push inserts ev into the heap.
//
//ndplint:hotpath
func (e *Engine) push(ev event) {
	e.pq = append(e.pq, ev)
	e.siftUp(len(e.pq) - 1)
}

// pop removes and returns the earliest event. The vacated slot is zeroed so
// the heap does not retain the popped closure.
//
//ndplint:hotpath
func (e *Engine) pop() event {
	ev := e.pq[0]
	n := len(e.pq) - 1
	e.pq[0] = e.pq[n]
	e.pq[n] = event{}
	e.pq = e.pq[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return ev
}

// scheduleWheel places ev in its calendar slot. Appends are already in seq
// order for fresh sequence numbers; an event carrying an older reserved seq
// (AtSeq) is insertion-sorted from the tail so the bucket stays seq-ordered.
//
//ndplint:hotpath
func (e *Engine) scheduleWheel(ev event) {
	idx := int(ev.time & wheelMask)
	b := &e.wheel[idx]
	if cap(b.evs) == 0 {
		const seedCap = 2
		if len(e.evSlab) < seedCap {
			e.evSlab = make([]event, 128*seedCap) //ndplint:alloc amortized slab growth
		}
		b.evs = e.evSlab[:0:seedCap]
		e.evSlab = e.evSlab[seedCap:]
	}
	b.evs = append(b.evs, ev)
	for i := len(b.evs) - 1; i > b.head && b.evs[i-1].seq > ev.seq; i-- {
		b.evs[i], b.evs[i-1] = b.evs[i-1], b.evs[i]
	}
	e.occ[idx>>6] |= 1 << (idx & 63)
	if e.wheelCount == 0 || ev.time < e.wheelNext {
		e.wheelNext = ev.time
	}
	e.wheelCount++
}

// schedule routes one event to the wheel or the overflow heap.
//
//ndplint:hotpath
func (e *Engine) schedule(t Cycles, seq uint64, fn func()) {
	if !e.heapOnly && t-e.now < wheelSize {
		e.scheduleWheel(event{time: t, seq: seq, fn: fn})
		return
	}
	e.push(event{time: t, seq: seq, fn: fn})
}

// peekWheel returns the earliest pending wheel event time. It advances the
// wheelNext lower bound to the first occupied slot at or after it, scanning
// the occupancy bitmap a word (64 slots) at a time. Every wheel event lies
// in [now, now+wheelSize), so slot distance from wheelNext equals time
// distance and the wrap-around scan visits each word at most once; the
// caller guarantees wheelCount > 0, so a set bit exists.
//
//ndplint:hotpath
func (e *Engine) peekWheel() Cycles {
	if e.wheelNext < e.now {
		e.wheelNext = e.now
	}
	idx := int(e.wheelNext & wheelMask)
	w := idx >> 6
	word := e.occ[w] >> (idx & 63) << (idx & 63) // mask off slots before idx
	for word == 0 {
		w = (w + 1) % wheelWords
		word = e.occ[w]
	}
	slot := w<<6 + bits.TrailingZeros64(word)
	step := slot - idx
	if step < 0 {
		step += wheelSize
	}
	e.wheelNext += Cycles(step)
	return e.wheelNext
}

//ndplint:hotpath
func (b *bucket) len() int { return len(b.evs) - b.head }

// popWheel removes the earliest wheel event, which sits at the head of the
// slot for time t. The vacated slot is zeroed so the wheel does not retain
// the popped closure; an emptied bucket keeps its backing array.
//
//ndplint:hotpath
func (e *Engine) popWheel(t Cycles) event {
	idx := int(t & wheelMask)
	b := &e.wheel[idx]
	ev := b.evs[b.head]
	b.evs[b.head] = event{}
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
		e.occ[idx>>6] &^= 1 << (idx & 63)
	}
	e.wheelCount--
	return ev
}

// popNext removes the globally earliest event across the wheel and the heap,
// ordered by (time, seq). The second return is false when no events remain.
//
//ndplint:hotpath
func (e *Engine) popNext() (event, bool) {
	if e.wheelCount == 0 {
		if len(e.pq) == 0 {
			return event{}, false
		}
		return e.pop(), true
	}
	wt := e.peekWheel()
	if len(e.pq) == 0 {
		return e.popWheel(wt), true
	}
	root := &e.pq[0]
	if wt < root.time || (wt == root.time && e.wheel[int(wt&wheelMask)].evs[e.wheel[int(wt&wheelMask)].head].seq < root.seq) {
		return e.popWheel(wt), true
	}
	return e.pop(), true
}

// peekNextTime returns the earliest pending event time (for RunUntil's
// window check). Call only when events are pending.
//
//ndplint:hotpath
func (e *Engine) peekNextTime() Cycles {
	if e.wheelCount == 0 {
		return e.pq[0].time
	}
	wt := e.peekWheel()
	if len(e.pq) > 0 && e.pq[0].time < wt {
		return e.pq[0].time
	}
	return wt
}

// Now returns the current simulated time.
func (e *Engine) Now() Cycles { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.pq) + e.wheelCount }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a model bug.
//
//ndplint:hotpath
//ndplint:seam event scheduling API: the PDES sharder interposes per-shard queues and epoch windows here
func (e *Engine) At(t Cycles, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	e.seq++
	e.schedule(t, e.seq, fn)
}

// ReserveSeq draws the next insertion sequence number without scheduling an
// event. Batched-delivery queues reserve a seq per enqueued item at enqueue
// time and later schedule their dispatch event with AtSeq, so the global
// (time, seq) execution order is exactly what per-item scheduling would have
// produced.
//
//ndplint:hotpath
//ndplint:seam engine-global ordering sequence shared by every scheduler
func (e *Engine) ReserveSeq() uint64 {
	e.seq++
	return e.seq
}

// AtSeq schedules fn at absolute time t under a sequence number previously
// drawn with ReserveSeq. Like At, scheduling in the past panics.
//
//ndplint:hotpath
//ndplint:seam event scheduling API: the PDES sharder interposes per-shard queues and epoch windows here
func (e *Engine) AtSeq(t Cycles, seq uint64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	e.schedule(t, seq, fn)
}

// CreditEvent accounts one logically distinct event that a batched callback
// executed inline (a same-cycle coalesced delivery), keeping Processed equal
// to the per-item scheduling count.
//
//ndplint:hotpath
//ndplint:seam event-conservation credit reported by components at direct delivery
func (e *Engine) CreditEvent() { e.processed++ }

// After schedules fn d cycles from now.
//
//ndplint:hotpath
//ndplint:seam event scheduling API: the PDES sharder interposes per-shard queues and epoch windows here
func (e *Engine) After(d Cycles, fn func()) { e.At(e.now+d, fn) }

// Stop makes Run (or RunUntil) return after the current event completes.
//ndplint:seam components signal run completion to the event loop
func (e *Engine) Stop() { e.stopped = true }

// SetProgress installs fn to be invoked every `every` processed events, from
// inside the run loop (same goroutine, no synchronization needed). It powers
// progress heartbeats on long runs; the countdown adds two predictable
// branches per event and no allocations. every == 0 or fn == nil disables
// the hook.
func (e *Engine) SetProgress(every uint64, fn func(now Cycles, processed uint64)) {
	if fn == nil {
		every = 0
	}
	e.progressFn = fn
	e.progressEvery = every
	e.progressLeft = every
}

// SetAudit installs fn to run at most once per `every` simulated cycles,
// between events (never while one is executing). every == 0 or fn == nil
// disables the hook. The check costs one branch per event when disabled.
func (e *Engine) SetAudit(every Cycles, fn func(now Cycles)) {
	if fn == nil {
		every = 0
	}
	e.auditFn = fn
	e.auditEvery = every
	e.auditNext = e.now + every
}

// tickAudit fires the audit hook when the next event's time has reached the
// audit deadline. Called before the event executes, with now already
// advanced to the event's time.
//
//ndplint:hotpath
func (e *Engine) tickAudit() {
	if e.auditEvery != 0 && e.now >= e.auditNext {
		e.auditFn(e.now)
		e.auditNext = e.now + e.auditEvery
	}
}

// State captures the engine's scalar clock state. The pending-event queue
// holds closures and is deliberately NOT part of the snapshot: full-state
// checkpoints are taken at the bulk-sync epoch barrier, where the model's
// in-flight structures are provably empty, and resume replays
// deterministically up to the barrier (see internal/core and DESIGN.md §10).
//ndplint:domain(xfer)
type State struct {
	Now       Cycles
	Seq       uint64
	Processed uint64
}

// SnapState returns the engine's clock state.
func (e *Engine) SnapState() State {
	return State{Now: e.now, Seq: e.seq, Processed: e.processed}
}

// tickProgress advances the progress countdown after one executed event.
//
//ndplint:hotpath
func (e *Engine) tickProgress() {
	if e.progressLeft != 0 {
		e.progressLeft--
		if e.progressLeft == 0 {
			e.progressLeft = e.progressEvery
			e.progressFn(e.now, e.processed)
		}
	}
}

// Run executes events until the queue drains, Stop is called, or maxEvents
// events have run (0 means no limit). It returns ErrLimit if the budget was
// exhausted with events still pending.
//
//ndplint:hotpath
func (e *Engine) Run(maxEvents uint64) error {
	e.stopped = false
	for !e.stopped {
		if maxEvents > 0 && e.processed >= maxEvents {
			if len(e.pq)+e.wheelCount > 0 {
				return ErrLimit
			}
			return nil
		}
		ev, ok := e.popNext()
		if !ok {
			return nil
		}
		if ev.time < e.now {
			panic("sim: event time regression")
		}
		e.now = ev.time
		e.tickAudit()
		e.processed++
		ev.fn()
		e.tickProgress()
	}
	return nil
}

// RunUntil executes events with time <= t, then sets now = t. Like Run it
// clears any prior Stop on entry and honors a Stop issued by an event; when
// stopped mid-window, now stays at the last executed event rather than
// jumping to t, so the remaining events are still in the future.
//
//ndplint:hotpath
func (e *Engine) RunUntil(t Cycles) {
	e.stopped = false
	for len(e.pq)+e.wheelCount > 0 && e.peekNextTime() <= t && !e.stopped {
		ev, _ := e.popNext()
		if ev.time < e.now {
			panic("sim: event time regression")
		}
		e.now = ev.time
		e.tickAudit()
		e.processed++
		ev.fn()
		e.tickProgress()
	}
	if e.now < t && !e.stopped {
		e.now = t
	}
}
