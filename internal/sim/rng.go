package sim

// RNG is a small, fast, deterministic random number generator
// (xorshift64star). The simulator cannot use math/rand's global state:
// experiment runs must be reproducible bit-for-bit given a seed, independent
// of anything else executing in the process.
//ndplint:domain(perowner)
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped so the state
// never sticks at zero).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split derives an independent generator; useful for giving each component
// its own stream while keeping global determinism.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}

// State returns the generator's position in its stream. Together with
// SetState it is the RNG's serialization boundary: a restored generator
// continues the exact sequence the snapshotted one would have produced.
func (r *RNG) State() uint64 { return r.state }

// SetState repositions the generator. A zero state is remapped like a zero
// seed so the stream can never stick at zero.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	r.state = s
}
