package dram

import (
	"ndpbridge/internal/config"
	"ndpbridge/internal/sim"
)

// AccessKind distinguishes what an access is for, so energy can be broken
// down into local computation vs. cross-unit communication (Figure 13).
type AccessKind int

const (
	// AccessLocal is a local data access by the NDP core.
	AccessLocal AccessKind = iota
	// AccessComm is a mailbox / scatter / gather access serving
	// cross-unit communication.
	AccessComm
	// AccessHost is an access on behalf of the host CPU.
	AccessHost
)

// Bank models one DRAM bank with an open-row policy and a busy-until access
// arbiter. Accesses may come from the local NDP core or from the upper-level
// bridge; the arbiter (Section V-A) serializes them in arrival order, which
// the simulator realizes by reserving the bank timeline.
//ndplint:domain(bank)
type Bank struct {
	timing   config.Timing //ndplint:nosnap timing constants from config
	rowBytes uint64        //ndplint:nosnap geometry constant from config

	openRow   int64 // -1 = closed
	busyUntil sim.Cycles
	// nextRefresh is the next tREFI boundary; refreshes are accounted
	// lazily when accesses arrive.
	nextRefresh sim.Cycles

	// ioBytesPerCycle is the bank's internal I/O bandwidth to the local
	// core / unit controller (64-bit interface ⇒ 8 B per DRAM cycle; we
	// charge a conservative 8 B per core cycle).
	ioBytesPerCycle uint64 //ndplint:nosnap bandwidth constant from config

	stats BankStats
}

// BankStats accumulates per-bank access counts and energy.
type BankStats struct {
	Reads, Writes      uint64
	RowHits, RowMisses uint64
	Refreshes          uint64
	LocalBytes         uint64
	CommBytes          uint64
	HostBytes          uint64
	EnergyPJ           float64
	CommEnergyPJ       float64
	BusyCycles         sim.Cycles
}

// NewBank returns an idle bank with a closed row.
func NewBank(t config.Timing) *Bank {
	return &Bank{
		timing: t, rowBytes: t.BankRowBytes, openRow: -1,
		ioBytesPerCycle: 8, nextRefresh: t.TREFI,
	}
}

// refreshUpTo lazily applies every refresh due by now: each one occupies the
// bank for tRFC and closes the row. Refreshes that completed during idle
// time cost nothing.
func (b *Bank) refreshUpTo(now sim.Cycles) {
	if b.timing.TREFI == 0 {
		return
	}
	for b.nextRefresh <= now {
		start := b.nextRefresh
		if b.busyUntil > start {
			start = b.busyUntil
		}
		b.busyUntil = start + b.timing.TRFC
		b.openRow = -1
		b.stats.Refreshes++
		b.nextRefresh += b.timing.TREFI
	}
}

// Access performs a read or write of n bytes at bank offset off, issued at
// time now, and returns the completion time. Row-buffer state and the
// arbiter queue are updated. Energy is charged per 64 bits at the configured
// rate.
func (b *Bank) Access(now sim.Cycles, off uint64, n uint64, write bool, kind AccessKind, energyPJPer64b float64) sim.Cycles {
	if n == 0 {
		return now
	}
	b.refreshUpTo(now)
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	row := int64(off / b.rowBytes)
	var lat sim.Cycles
	if b.openRow == row {
		lat = b.timing.TCAS
		b.stats.RowHits++
	} else {
		if b.openRow >= 0 {
			lat += b.timing.TRP
		}
		lat += b.timing.TRCD + b.timing.TCAS
		b.openRow = row
		b.stats.RowMisses++
	}
	lat += (n + b.ioBytesPerCycle - 1) / b.ioBytesPerCycle
	end := start + lat
	b.busyUntil = end
	b.stats.BusyCycles += lat

	if write {
		b.stats.Writes++
	} else {
		b.stats.Reads++
	}
	words := (n + 7) / 8
	e := float64(words) * energyPJPer64b
	b.stats.EnergyPJ += e
	switch kind {
	case AccessLocal:
		b.stats.LocalBytes += n
	case AccessComm:
		b.stats.CommBytes += n
		b.stats.CommEnergyPJ += e
	case AccessHost:
		b.stats.HostBytes += n
	}
	return end
}

// NextFree returns the earliest time a new access could start.
func (b *Bank) NextFree(now sim.Cycles) sim.Cycles {
	if b.busyUntil > now {
		return b.busyUntil
	}
	return now
}

// Stats returns the accumulated counters.
func (b *Bank) Stats() BankStats { return b.stats }

// Reset clears state and counters for a fresh run.
func (b *Bank) Reset() {
	b.openRow = -1
	b.busyUntil = 0
	b.nextRefresh = b.timing.TREFI
	b.stats = BankStats{}
}
