package dram

import (
	"math"

	"ndpbridge/internal/checkpoint"
)

// SnapshotTo encodes the bank's mutable timing state and counters. The
// geometry (timing parameters, row size) comes from the config and is not
// encoded; the restoring bank must be built from the same config.
func (b *Bank) SnapshotTo(e *checkpoint.Enc) {
	e.I64(b.openRow)
	e.U64(uint64(b.busyUntil))
	e.U64(uint64(b.nextRefresh))
	e.U64(b.stats.Reads)
	e.U64(b.stats.Writes)
	e.U64(b.stats.RowHits)
	e.U64(b.stats.RowMisses)
	e.U64(b.stats.Refreshes)
	e.U64(b.stats.LocalBytes)
	e.U64(b.stats.CommBytes)
	e.U64(b.stats.HostBytes)
	e.U64(math.Float64bits(b.stats.EnergyPJ))
	e.U64(math.Float64bits(b.stats.CommEnergyPJ))
	e.U64(uint64(b.stats.BusyCycles))
}

// RestoreFrom repositions the bank from a snapshot taken by SnapshotTo.
func (b *Bank) RestoreFrom(d *checkpoint.Dec) error {
	b.openRow = d.I64()
	b.busyUntil = d.U64()
	b.nextRefresh = d.U64()
	b.stats.Reads = d.U64()
	b.stats.Writes = d.U64()
	b.stats.RowHits = d.U64()
	b.stats.RowMisses = d.U64()
	b.stats.Refreshes = d.U64()
	b.stats.LocalBytes = d.U64()
	b.stats.CommBytes = d.U64()
	b.stats.HostBytes = d.U64()
	b.stats.EnergyPJ = math.Float64frombits(d.U64())
	b.stats.CommEnergyPJ = math.Float64frombits(d.U64())
	b.stats.BusyCycles = d.U64()
	return d.Err()
}
