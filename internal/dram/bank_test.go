package dram

import (
	"testing"

	"ndpbridge/internal/config"
)

func newBank() *Bank { return NewBank(config.Default().Timing) }

func TestBankRowMissThenHit(t *testing.T) {
	b := newBank()
	// First access: closed row → tRCD + tCAS + transfer.
	end1 := b.Access(0, 0, 64, false, AccessLocal, 150)
	want1 := uint64(7 + 7 + 8) // RCD + CAS + 64B/8Bpc
	if end1 != want1 {
		t.Fatalf("first access end = %d, want %d", end1, want1)
	}
	// Same row, bank now free: just tCAS + transfer, starting at end1... but
	// issued at end1.
	end2 := b.Access(end1, 64, 64, false, AccessLocal, 150)
	if end2 != end1+7+8 {
		t.Fatalf("row hit end = %d, want %d", end2, end1+7+8)
	}
	// Different row: tRP + tRCD + tCAS.
	end3 := b.Access(end2, 8192, 64, true, AccessLocal, 150)
	if end3 != end2+7+7+7+8 {
		t.Fatalf("row miss end = %d, want %d", end3, end2+29)
	}
	s := b.Stats()
	if s.RowHits != 1 || s.RowMisses != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", s.RowHits, s.RowMisses)
	}
	if s.Reads != 2 || s.Writes != 1 {
		t.Errorf("reads/writes = %d/%d, want 2/1", s.Reads, s.Writes)
	}
}

func TestBankArbiterSerializes(t *testing.T) {
	b := newBank()
	end1 := b.Access(0, 0, 256, false, AccessLocal, 150)
	// Second access issued at time 1 while bank busy: starts at end1.
	end2 := b.Access(1, 0, 64, false, AccessComm, 150)
	if end2 <= end1 {
		t.Fatalf("second access must wait for first: %d <= %d", end2, end1)
	}
	if end2 != end1+7+8 {
		t.Fatalf("end2 = %d, want %d (row hit after queueing)", end2, end1+15)
	}
}

func TestBankEnergyAccounting(t *testing.T) {
	b := newBank()
	b.Access(0, 0, 64, false, AccessLocal, 150)
	b.Access(100, 0, 64, true, AccessComm, 150)
	s := b.Stats()
	wantPerAccess := 8.0 * 150 // 8 words of 64 bits
	if s.EnergyPJ != 2*wantPerAccess {
		t.Errorf("EnergyPJ = %v, want %v", s.EnergyPJ, 2*wantPerAccess)
	}
	if s.CommEnergyPJ != wantPerAccess {
		t.Errorf("CommEnergyPJ = %v, want %v", s.CommEnergyPJ, wantPerAccess)
	}
	if s.LocalBytes != 64 || s.CommBytes != 64 {
		t.Errorf("byte split = %d/%d, want 64/64", s.LocalBytes, s.CommBytes)
	}
}

func TestBankZeroLengthAccess(t *testing.T) {
	b := newBank()
	if end := b.Access(42, 0, 0, false, AccessLocal, 150); end != 42 {
		t.Errorf("zero-length access should be free, got end %d", end)
	}
	if s := b.Stats(); s.Reads != 0 {
		t.Errorf("zero-length access must not count")
	}
}

func TestBankHostKind(t *testing.T) {
	b := newBank()
	b.Access(0, 0, 128, false, AccessHost, 150)
	if s := b.Stats(); s.HostBytes != 128 || s.CommBytes != 0 || s.LocalBytes != 0 {
		t.Errorf("host bytes misattributed: %+v", s)
	}
}

func TestBankReset(t *testing.T) {
	b := newBank()
	b.Access(0, 0, 64, false, AccessLocal, 150)
	b.Reset()
	if s := b.Stats(); s.Reads != 0 || s.BusyCycles != 0 {
		t.Error("Reset did not clear stats")
	}
	// After reset the row is closed again: full RCD+CAS.
	end := b.Access(0, 0, 8, false, AccessLocal, 150)
	if end != 7+7+1 {
		t.Errorf("post-reset access end = %d, want 15", end)
	}
}

func TestBankBusyCyclesMatchesTimeline(t *testing.T) {
	b := newBank()
	var prevEnd uint64
	var want uint64
	offs := []uint64{0, 64, 8192, 128, 16384}
	for _, off := range offs {
		end := b.Access(prevEnd, off, 64, false, AccessLocal, 150)
		want += end - prevEnd
		prevEnd = end
	}
	if s := b.Stats(); s.BusyCycles != want {
		t.Errorf("BusyCycles = %d, want %d", s.BusyCycles, want)
	}
}

func TestBankRefresh(t *testing.T) {
	cfg := config.Default().Timing
	b := NewBank(cfg)
	// Access long after several refresh intervals, comfortably past the
	// last refresh's tRFC window: refreshes completed during idle time
	// must not delay the access.
	at := 10*cfg.TREFI + cfg.TRFC + 5
	end := b.Access(at, 0, 8, false, AccessLocal, 150)
	if end != at+7+7+1 {
		t.Errorf("idle refreshes delayed access: end=%d, want %d", end, at+15)
	}
	if got := b.Stats().Refreshes; got != 10 {
		t.Errorf("Refreshes = %d, want 10", got)
	}
	// An access colliding with a due refresh waits out tRFC and reopens
	// the row.
	b2 := NewBank(cfg)
	b2.Access(cfg.TREFI-1, 0, 8, false, AccessLocal, 150) // opens row just before refresh
	end2 := b2.Access(cfg.TREFI, 0, 8, false, AccessLocal, 150)
	// The refresh closes the row, so the second access pays RCD+CAS after
	// waiting for the refresh to finish.
	min := cfg.TREFI + cfg.TRFC
	if end2 < min {
		t.Errorf("refresh collision not charged: end=%d < %d", end2, min)
	}
	if b2.Stats().RowHits != 0 {
		t.Errorf("refresh must close the open row")
	}
}

func TestBankRefreshDisabled(t *testing.T) {
	cfg := config.Default().Timing
	cfg.TREFI = 0
	b := NewBank(cfg)
	b.Access(1_000_000, 0, 8, false, AccessLocal, 150)
	if b.Stats().Refreshes != 0 {
		t.Error("refresh should be disabled when TREFI is zero")
	}
}
