// Package dram models the DRAM substrate of a DRAM-bank NDP system: the
// physical address map placing one NDP unit per bank, per-bank row-buffer
// timing with an access arbiter shared by the local core and the bridge, and
// DRAM access energy accounting.
package dram

import (
	"fmt"
	"math/bits"

	"ndpbridge/internal/config"
)

// Addr is a physical DRAM address in the flat NDP address space. Following
// the coarse-grained interleaving of UPMEM/HBM-PIM (Section II-B), each NDP
// unit owns one contiguous BankBytes-sized range, so the home unit is simply
// the high-order address bits.
type Addr = uint64

// UnitID identifies one NDP unit (one bank). Units are numbered
// channel-major: id = ((channel×ranksPerChannel + rank)×chipsPerRank +
// chip)×banksPerChip + bank.
type UnitID = int

// AddrMap translates between addresses, units, and DRAM coordinates.
//ndplint:domain(shared-ro)
type AddrMap struct {
	geo       config.Geometry
	bankShift uint // log2(BankBytes)
	units     int

	// rehome, when non-nil, redirects the home of a dead unit's address
	// range to an adopting buddy (fault recovery). Allocated lazily on the
	// first Rehome so the common no-fault path pays one nil test.
	rehome []int32
}

// NewAddrMap builds the address map for a geometry.
func NewAddrMap(geo config.Geometry) *AddrMap {
	if geo.BankBytes == 0 || geo.BankBytes&(geo.BankBytes-1) != 0 {
		panic("dram: BankBytes must be a power of two")
	}
	return &AddrMap{
		geo:       geo,
		bankShift: uint(bits.TrailingZeros64(geo.BankBytes)),
		units:     geo.Units(),
	}
}

// Units returns the number of NDP units.
func (m *AddrMap) Units() int { return m.units }

// Capacity returns the total addressable bytes.
func (m *AddrMap) Capacity() uint64 { return uint64(m.units) << m.bankShift }

// Home returns the unit whose local bank stores addr. After Rehome(dead,
// buddy) the dead unit's range reports the adopting buddy instead.
func (m *AddrMap) Home(a Addr) UnitID {
	u := UnitID(a >> m.bankShift)
	if u >= m.units {
		panic(fmt.Sprintf("dram: address %#x beyond capacity %#x", a, m.Capacity()))
	}
	if m.rehome != nil {
		return int(m.rehome[u])
	}
	return u
}

// HomeRaw returns the geometric home of addr, ignoring any rehoming — the
// bank that physically stores the address.
func (m *AddrMap) HomeRaw(a Addr) UnitID {
	u := UnitID(a >> m.bankShift)
	if u >= m.units {
		panic(fmt.Sprintf("dram: address %#x beyond capacity %#x", a, m.Capacity()))
	}
	return u
}

// Rehome redirects every address homed at dead to buddy. Chains are
// flattened: if a previously dead unit pointed at dead, it now points at
// buddy too, so lookups stay O(1).
//ndplint:seam fault-recovery rehoming hook; runs at a barrier on a quiesced fabric
func (m *AddrMap) Rehome(dead, buddy UnitID) {
	if dead < 0 || dead >= m.units || buddy < 0 || buddy >= m.units {
		panic(fmt.Sprintf("dram: Rehome(%d, %d) out of range", dead, buddy))
	}
	if m.rehome == nil {
		m.rehome = make([]int32, m.units)
		for i := range m.rehome {
			m.rehome[i] = int32(i)
		}
	}
	for i := range m.rehome {
		if int(m.rehome[i]) == dead {
			m.rehome[i] = int32(buddy)
		}
	}
}

// IsAdopted reports whether unit u's address range has been rehomed away.
func (m *AddrMap) IsAdopted(u UnitID) bool {
	return m.rehome != nil && int(m.rehome[u]) != u
}

// Contains reports whether addr is within the address space.
func (m *AddrMap) Contains(a Addr) bool { return UnitID(a>>m.bankShift) < m.units }

// Offset returns the byte offset of addr within its bank.
func (m *AddrMap) Offset(a Addr) uint64 { return a & (m.geo.BankBytes - 1) }

// Base returns the first address of unit u's bank.
func (m *AddrMap) Base(u UnitID) Addr {
	if u < 0 || u >= m.units {
		panic(fmt.Sprintf("dram: unit %d out of range", u))
	}
	return Addr(u) << m.bankShift
}

// Coord is the DRAM location of a unit.
//ndplint:domain(xfer)
type Coord struct {
	Channel, Rank, Chip, Bank int
}

// Coord decomposes a unit ID into its DRAM coordinates.
func (m *AddrMap) Coord(u UnitID) Coord {
	if u < 0 || u >= m.units {
		panic(fmt.Sprintf("dram: unit %d out of range", u))
	}
	g := m.geo
	bank := u % g.BanksPerChip
	u /= g.BanksPerChip
	chip := u % g.ChipsPerRank
	u /= g.ChipsPerRank
	rank := u % g.RanksPerChannel
	u /= g.RanksPerChannel
	return Coord{Channel: u, Rank: rank, Chip: chip, Bank: bank}
}

// UnitAt composes DRAM coordinates back into a unit ID.
func (m *AddrMap) UnitAt(c Coord) UnitID {
	g := m.geo
	return ((c.Channel*g.RanksPerChannel+c.Rank)*g.ChipsPerRank+c.Chip)*g.BanksPerChip + c.Bank
}

// GlobalRank returns the system-wide rank index of a unit (its level-1
// bridge).
func (m *AddrMap) GlobalRank(u UnitID) int {
	return u / m.geo.UnitsPerRank()
}

// RankOfAddr returns the global rank holding addr's home bank.
func (m *AddrMap) RankOfAddr(a Addr) int { return m.GlobalRank(m.Home(a)) }

// ChannelOfRank returns the channel a global rank sits on.
func (m *AddrMap) ChannelOfRank(rank int) int { return rank / m.geo.RanksPerChannel }

// SameChip reports whether two units are banks of the same DRAM chip
// (RowClone's intra-chip transfer domain).
func (m *AddrMap) SameChip(a, b UnitID) bool {
	return a/m.geo.BanksPerChip == b/m.geo.BanksPerChip
}

// SameRank reports whether two units share a rank (level-1 bridge domain).
func (m *AddrMap) SameRank(a, b UnitID) bool {
	per := m.geo.UnitsPerRank()
	return a/per == b/per
}

// BlockAlign returns addr rounded down to a g-byte block boundary.
func BlockAlign(a Addr, g uint64) Addr { return a &^ (g - 1) }
