package dram

import (
	"testing"
	"testing/quick"

	"ndpbridge/internal/config"
)

func defaultMap() *AddrMap { return NewAddrMap(config.Default().Geometry) }

func TestAddrMapBasics(t *testing.T) {
	m := defaultMap()
	if m.Units() != 512 {
		t.Fatalf("Units = %d, want 512", m.Units())
	}
	if m.Capacity() != 32<<30 {
		t.Fatalf("Capacity = %d, want 32 GB", m.Capacity())
	}
	if m.Home(0) != 0 {
		t.Error("Home(0) != 0")
	}
	if m.Home(64<<20) != 1 {
		t.Error("Home(64MB) != 1")
	}
	if m.Home(m.Capacity()-1) != 511 {
		t.Error("Home(last) != 511")
	}
}

func TestAddrMapHomeBeyondCapacityPanics(t *testing.T) {
	m := defaultMap()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range address")
		}
	}()
	m.Home(m.Capacity())
}

func TestAddrMapCoordRoundTrip(t *testing.T) {
	m := defaultMap()
	for u := 0; u < m.Units(); u++ {
		c := m.Coord(u)
		if got := m.UnitAt(c); got != u {
			t.Fatalf("UnitAt(Coord(%d)) = %d", u, got)
		}
	}
	// Spot check the layout: unit 0 is (0,0,0,0); unit 8 is chip 1;
	// unit 64 is rank 1; unit 256 is channel 1.
	if c := m.Coord(0); c != (Coord{0, 0, 0, 0}) {
		t.Errorf("Coord(0) = %+v", c)
	}
	if c := m.Coord(8); c != (Coord{0, 0, 1, 0}) {
		t.Errorf("Coord(8) = %+v", c)
	}
	if c := m.Coord(64); c != (Coord{0, 1, 0, 0}) {
		t.Errorf("Coord(64) = %+v", c)
	}
	if c := m.Coord(256); c != (Coord{1, 0, 0, 0}) {
		t.Errorf("Coord(256) = %+v", c)
	}
}

func TestAddrMapRankAndChip(t *testing.T) {
	m := defaultMap()
	if m.GlobalRank(0) != 0 || m.GlobalRank(63) != 0 || m.GlobalRank(64) != 1 {
		t.Error("GlobalRank boundaries wrong")
	}
	if !m.SameRank(0, 63) || m.SameRank(63, 64) {
		t.Error("SameRank wrong")
	}
	if !m.SameChip(0, 7) || m.SameChip(7, 8) {
		t.Error("SameChip wrong")
	}
	if m.ChannelOfRank(0) != 0 || m.ChannelOfRank(3) != 0 || m.ChannelOfRank(4) != 1 {
		t.Error("ChannelOfRank wrong")
	}
	if m.RankOfAddr(65<<26) != 1 {
		t.Error("RankOfAddr wrong")
	}
}

func TestAddrMapBaseOffset(t *testing.T) {
	m := defaultMap()
	for _, u := range []int{0, 1, 100, 511} {
		base := m.Base(u)
		if m.Home(base) != u || m.Offset(base) != 0 {
			t.Errorf("Base(%d) inconsistent", u)
		}
		if m.Home(base+12345) != u || m.Offset(base+12345) != 12345 {
			t.Errorf("Base(%d)+12345 inconsistent", u)
		}
	}
}

func TestBlockAlign(t *testing.T) {
	if BlockAlign(0x12345, 256) != 0x12300 {
		t.Errorf("BlockAlign = %#x", BlockAlign(0x12345, 256))
	}
	if BlockAlign(0x100, 256) != 0x100 {
		t.Error("aligned address must be unchanged")
	}
}

// Property: Home is consistent with Base/Offset reconstruction for any
// in-range address.
func TestAddrMapHomeProperty(t *testing.T) {
	m := defaultMap()
	f := func(raw uint64) bool {
		a := raw % m.Capacity()
		u := m.Home(a)
		return m.Base(u)+m.Offset(a) == a && m.Contains(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Coord/UnitAt round-trips for every geometry we sweep.
func TestAddrMapGeometriesProperty(t *testing.T) {
	geos := []config.Geometry{
		{Channels: 1, RanksPerChannel: 1, ChipsPerRank: 8, BanksPerChip: 8, BankBytes: 1 << 20},
		{Channels: 2, RanksPerChannel: 4, ChipsPerRank: 16, BanksPerChip: 8, BankBytes: 1 << 20},
		{Channels: 2, RanksPerChannel: 4, ChipsPerRank: 4, BanksPerChip: 8, BankBytes: 1 << 20},
		{Channels: 2, RanksPerChannel: 8, ChipsPerRank: 8, BanksPerChip: 8, BankBytes: 1 << 20},
	}
	for _, g := range geos {
		m := NewAddrMap(g)
		for u := 0; u < m.Units(); u++ {
			if m.UnitAt(m.Coord(u)) != u {
				t.Fatalf("geometry %+v: round-trip failed at %d", g, u)
			}
		}
	}
}

func TestRehome(t *testing.T) {
	m := NewAddrMap(config.Geometry{Channels: 1, RanksPerChannel: 1, ChipsPerRank: 2, BanksPerChip: 2, BankBytes: 1 << 10})
	a := m.Base(2) + 5
	if m.Home(a) != 2 || m.HomeRaw(a) != 2 {
		t.Fatal("baseline home wrong")
	}
	m.Rehome(2, 3)
	if m.Home(a) != 3 {
		t.Fatalf("Home after rehome = %d, want 3", m.Home(a))
	}
	if m.HomeRaw(a) != 2 {
		t.Fatalf("HomeRaw must ignore rehoming, got %d", m.HomeRaw(a))
	}
	if !m.IsAdopted(2) || m.IsAdopted(3) {
		t.Fatal("IsAdopted wrong")
	}
	// Chain: kill 3 too; unit 2's range must follow to 0.
	m.Rehome(3, 0)
	if m.Home(a) != 0 {
		t.Fatalf("chained rehome = %d, want 0", m.Home(a))
	}
	if m.RankOfAddr(a) != m.GlobalRank(0) {
		t.Fatal("RankOfAddr must track rehoming")
	}
}
