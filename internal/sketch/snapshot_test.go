package sketch

import (
	"bytes"
	"testing"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
)

func TestSketchSnapshotRoundTrip(t *testing.T) {
	s := New(8, 4, 1.08, sim.NewRNG(42))
	for i := uint64(0); i < 200; i++ {
		s.Observe((i%30)<<8, 10+i%7)
	}

	var e checkpoint.Enc
	s.SnapshotTo(&e)

	r := New(8, 4, 1.08, sim.NewRNG(999))
	if err := r.RestoreFrom(checkpoint.NewDec(e.Data())); err != nil {
		t.Fatal(err)
	}
	if r.Len() != s.Len() || r.TrackedWorkload() != s.TrackedWorkload() || r.InsertedWorkload() != s.InsertedWorkload() {
		t.Errorf("restored len=%d tracked=%d inserted=%d, want %d, %d, %d",
			r.Len(), r.TrackedWorkload(), r.InsertedWorkload(), s.Len(), s.TrackedWorkload(), s.InsertedWorkload())
	}
	h1, ok1 := s.Hottest()
	h2, ok2 := r.Hottest()
	if ok1 != ok2 || h1 != h2 {
		t.Errorf("hottest diverged: %+v,%v vs %+v,%v", h1, ok1, h2, ok2)
	}
	// The decay RNG position survives: identical future observations keep
	// the two sketches identical (probabilistic decay replays bit-for-bit).
	for i := uint64(0); i < 500; i++ {
		s.Observe((i%60)<<8, 5)
		r.Observe((i%60)<<8, 5)
	}
	var a, b checkpoint.Enc
	s.SnapshotTo(&a)
	r.SnapshotTo(&b)
	if !bytes.Equal(a.Data(), b.Data()) {
		t.Fatal("sketches diverged after restore — decay RNG position lost")
	}

	bad := New(4, 4, 1.08, sim.NewRNG(1))
	var e2 checkpoint.Enc
	s.SnapshotTo(&e2)
	if err := bad.RestoreFrom(checkpoint.NewDec(e2.Data())); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
}

func TestReservedQueueSnapshotRoundTrip(t *testing.T) {
	q := NewReservedQueue(8, 2)
	for i := 0; i < 10; i++ {
		blk := uint64(i%3) << 12
		if !q.Add(blk, task.Task{TS: 1, Addr: blk + uint64(i), Workload: uint32(i + 1)}) {
			t.Fatalf("add %d failed", i)
		}
	}
	q.Take(1 << 12) // free one block so order has a stale entry

	var e checkpoint.Enc
	q.SnapshotTo(&e)

	r := NewReservedQueue(8, 2)
	if err := r.RestoreFrom(checkpoint.NewDec(e.Data())); err != nil {
		t.Fatal(err)
	}
	if r.Total() != q.Total() || r.FreeChunks() != q.FreeChunks() {
		t.Fatalf("restored total=%d free=%d, want %d, %d", r.Total(), r.FreeChunks(), q.Total(), q.FreeChunks())
	}
	want := q.Drain()
	got := r.Drain()
	if len(got) != len(want) {
		t.Fatalf("drain lengths %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("drain[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}
