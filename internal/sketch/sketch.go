// Package sketch implements the hot-data identification machinery of
// Section VI-C: an SRAM HeavyGuardian-style sketch that tracks the hottest
// data blocks by accumulated task workload, and the in-DRAM reserved task
// queue that holds the tasks associated with each tracked block so they can
// be lent out together during load balancing.
package sketch

import (
	"math"

	"ndpbridge/internal/sim"
)

// Entry is one tracked hot block.
type Entry struct {
	Addr     uint64 // block address (G_xfer-aligned)
	Workload uint64 // accumulated task workload
}

// Sketch is a set-associative heavy-hitter tracker. Each bucket guards a
// small list of entries; on a miss with a full bucket, the weakest entry
// decays with probability b^-workload and is replaced when its counter
// drops below zero (the HeavyGuardian discipline, simplified to hot-part
// only as in the paper).
//ndplint:domain(perowner)
type Sketch struct {
	buckets   int
	entries   int
	decayBase float64 //ndplint:nosnap config constant
	table     [][]Entry
	rng       *sim.RNG

	inserted uint64 // total workload offered
	decays   uint64
}

// New builds a sketch with the given shape. decayBase is the b in
// P = b^-count (1.08 per HeavyGuardian).
func New(buckets, entriesPerBucket int, decayBase float64, rng *sim.RNG) *Sketch {
	if buckets <= 0 || entriesPerBucket <= 0 {
		panic("sketch: dimensions must be positive")
	}
	if decayBase <= 1 {
		panic("sketch: decay base must exceed 1")
	}
	// All bucket storage is carved from one slab: a sketch is built per
	// unit per run, and buckets separate allocations (with their separate
	// zeroing passes) show up in construction profiles. Three-index
	// slicing caps each bucket at entriesPerBucket, which the full-bucket
	// check in Observe relies on.
	t := make([][]Entry, buckets)
	slab := make([]Entry, buckets*entriesPerBucket)
	for i := range t {
		t[i] = slab[i*entriesPerBucket : i*entriesPerBucket : (i+1)*entriesPerBucket]
	}
	return &Sketch{
		buckets: buckets, entries: entriesPerBucket,
		decayBase: decayBase, table: t, rng: rng,
	}
}

func (s *Sketch) bucket(addr uint64) int {
	h := addr * 0x9e3779b97f4a7c15
	return int((h >> 33) % uint64(s.buckets))
}

// Observe records a task of workload w on block addr. Unspecified workloads
// should be offered as 1 by the caller.
func (s *Sketch) Observe(addr uint64, w uint64) {
	if w == 0 {
		w = 1
	}
	s.inserted += w
	b := s.table[s.bucket(addr)]
	for i := range b {
		if b[i].Addr == addr {
			b[i].Workload += w
			return
		}
	}
	if len(b) < cap(b) {
		s.table[s.bucket(addr)] = append(b, Entry{Addr: addr, Workload: w})
		return
	}
	// Bucket full: decay the weakest entry probabilistically.
	minIdx := 0
	for i := 1; i < len(b); i++ {
		if b[i].Workload < b[minIdx].Workload {
			minIdx = i
		}
	}
	p := math.Pow(s.decayBase, -float64(b[minIdx].Workload))
	if s.rng.Float64() < p {
		s.decays++
		if b[minIdx].Workload <= w {
			// Counter would go negative: replace.
			b[minIdx] = Entry{Addr: addr, Workload: w}
		} else {
			b[minIdx].Workload -= w
		}
	}
}

// Hottest returns the entry with the highest workload, or false if the
// sketch is empty.
func (s *Sketch) Hottest() (Entry, bool) {
	var best Entry
	found := false
	for _, b := range s.table {
		for _, e := range b {
			if !found || e.Workload > best.Workload {
				best = e
				found = true
			}
		}
	}
	return best, found
}

// Remove deletes the entry for addr (after its tasks were scheduled out).
func (s *Sketch) Remove(addr uint64) bool {
	bi := s.bucket(addr)
	b := s.table[bi]
	for i := range b {
		if b[i].Addr == addr {
			b[i] = b[len(b)-1]
			s.table[bi] = b[:len(b)-1]
			return true
		}
	}
	return false
}

// Lookup returns addr's tracked workload.
func (s *Sketch) Lookup(addr uint64) (uint64, bool) {
	b := s.table[s.bucket(addr)]
	for i := range b {
		if b[i].Addr == addr {
			return b[i].Workload, true
		}
	}
	return 0, false
}

// Len returns the number of tracked entries.
func (s *Sketch) Len() int {
	n := 0
	for _, b := range s.table {
		n += len(b)
	}
	return n
}

// TrackedWorkload sums the workload counters of all entries.
func (s *Sketch) TrackedWorkload() uint64 {
	var t uint64
	for _, b := range s.table {
		for _, e := range b {
			t += e.Workload
		}
	}
	return t
}

// InsertedWorkload returns the total workload ever offered.
func (s *Sketch) InsertedWorkload() uint64 { return s.inserted }

// Reset clears all entries and counters.
func (s *Sketch) Reset() {
	for i := range s.table {
		s.table[i] = s.table[i][:0]
	}
	s.inserted = 0
	s.decays = 0
}
