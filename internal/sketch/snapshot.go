package sketch

import (
	"fmt"

	"ndpbridge/internal/checkpoint"
	"ndpbridge/internal/task"
)

// This file is the sketch layer's serialization boundary: the heavy-hitter
// sketch (bucket tables plus its private RNG stream position — probabilistic
// decay must resume mid-stream for determinism) and the reserved task queue
// (blocks in insertion order, so the byte stream is independent of map
// iteration order).

// SnapshotTo encodes the sketch: shape for validation, every bucket's
// entries in slot order, the decay RNG position, and the counters.
func (s *Sketch) SnapshotTo(e *checkpoint.Enc) {
	e.I64(int64(s.buckets))
	e.I64(int64(s.entries))
	for _, bucket := range s.table {
		e.U32(uint32(len(bucket)))
		for _, ent := range bucket {
			e.U64(ent.Addr)
			e.U64(ent.Workload)
		}
	}
	e.U64(s.rng.State())
	e.U64(s.inserted)
	e.U64(s.decays)
}

// RestoreFrom rebuilds the sketch from a SnapshotTo stream. The shape must
// match the receiver's.
func (s *Sketch) RestoreFrom(d *checkpoint.Dec) error {
	buckets := int(d.I64())
	entries := int(d.I64())
	if d.Err() == nil && (buckets != s.buckets || entries != s.entries) {
		return fmt.Errorf("sketch: snapshot shape %d×%d does not match %d×%d", buckets, entries, s.buckets, s.entries)
	}
	for i := range s.table {
		n := d.U32()
		if d.Err() != nil {
			return d.Err()
		}
		s.table[i] = s.table[i][:0]
		for j := uint32(0); j < n; j++ {
			s.table[i] = append(s.table[i], Entry{Addr: d.U64(), Workload: d.U64()})
		}
	}
	s.rng.SetState(d.U64())
	s.inserted = d.U64()
	s.decays = d.U64()
	return d.Err()
}

// SnapshotTo encodes the reserved queue: chunk accounting plus every live
// block in insertion order with its reserved tasks.
func (r *ReservedQueue) SnapshotTo(e *checkpoint.Enc) {
	e.I64(int64(r.chunkTasks))
	e.I64(int64(r.totalChunks))
	e.I64(int64(r.freeChunks))
	live := 0
	for _, b := range r.order {
		if _, ok := r.blocks[b]; ok {
			live++
		}
	}
	e.U32(uint32(live))
	for _, b := range r.order {
		bl, ok := r.blocks[b]
		if !ok {
			continue // stale order entry (block already taken)
		}
		e.U64(b)
		e.I64(int64(bl.chunks))
		e.U32(uint32(len(bl.tasks)))
		for _, t := range bl.tasks {
			task.EncodeTask(e, t)
		}
	}
}

// RestoreFrom rebuilds the reserved queue from a SnapshotTo stream. The
// chunk shape must match the receiver's.
func (r *ReservedQueue) RestoreFrom(d *checkpoint.Dec) error {
	chunkTasks := int(d.I64())
	totalChunks := int(d.I64())
	if d.Err() == nil && (chunkTasks != r.chunkTasks || totalChunks != r.totalChunks) {
		return fmt.Errorf("sketch: reserved-queue snapshot shape (%d, %d) does not match (%d, %d)",
			chunkTasks, totalChunks, r.chunkTasks, r.totalChunks)
	}
	r.freeChunks = int(d.I64())
	n := d.U32()
	r.blocks = make(map[uint64]*blockList, n)
	r.order = r.order[:0]
	r.total = 0
	for i := uint32(0); i < n; i++ {
		b := d.U64()
		bl := &blockList{chunks: int(d.I64())}
		cnt := d.U32()
		for j := uint32(0); j < cnt; j++ {
			bl.tasks = append(bl.tasks, task.DecodeTask(d))
		}
		if d.Err() != nil {
			return d.Err()
		}
		r.blocks[b] = bl
		r.order = append(r.order, b)
		r.total += len(bl.tasks)
	}
	return d.Err()
}
