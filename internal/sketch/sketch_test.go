package sketch

import (
	"testing"
	"testing/quick"

	"ndpbridge/internal/sim"
)

func newSketch() *Sketch { return New(16, 16, 1.08, sim.NewRNG(1)) }

func TestSketchObserveAndLookup(t *testing.T) {
	s := newSketch()
	s.Observe(0x100, 10)
	s.Observe(0x100, 5)
	if w, ok := s.Lookup(0x100); !ok || w != 15 {
		t.Errorf("Lookup = %d, %v; want 15", w, ok)
	}
	if _, ok := s.Lookup(0x200); ok {
		t.Error("missing entry should not be found")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSketchZeroWorkloadCountsAsOne(t *testing.T) {
	s := newSketch()
	s.Observe(0x100, 0)
	if w, _ := s.Lookup(0x100); w != 1 {
		t.Errorf("w = %d, want 1", w)
	}
}

func TestSketchHottest(t *testing.T) {
	s := newSketch()
	if _, ok := s.Hottest(); ok {
		t.Error("empty sketch has no hottest")
	}
	s.Observe(0x100, 5)
	s.Observe(0x200, 50)
	s.Observe(0x300, 20)
	e, ok := s.Hottest()
	if !ok || e.Addr != 0x200 || e.Workload != 50 {
		t.Errorf("Hottest = %+v, %v", e, ok)
	}
	if !s.Remove(0x200) {
		t.Error("Remove failed")
	}
	e, _ = s.Hottest()
	if e.Addr != 0x300 {
		t.Errorf("next hottest = %+v, want 0x300", e)
	}
	if s.Remove(0x200) {
		t.Error("double Remove should fail")
	}
}

func TestSketchIdentifiesHeavyHitters(t *testing.T) {
	// With Zipf-like traffic, the sketch must retain the heavy hitters
	// even under bucket pressure. Blocks 0..9 are hot; 10..999 are cold.
	s := newSketch()
	rng := sim.NewRNG(7)
	for i := 0; i < 50000; i++ {
		if rng.Intn(2) == 0 {
			s.Observe(uint64(rng.Intn(10))*64, 10)
		} else {
			s.Observe(uint64(10+rng.Intn(990))*64, 1)
		}
	}
	found := 0
	for hot := uint64(0); hot < 10; hot++ {
		if _, ok := s.Lookup(hot * 64); ok {
			found++
		}
	}
	if found < 8 {
		t.Errorf("only %d/10 heavy hitters retained", found)
	}
}

func TestSketchDecayReplaces(t *testing.T) {
	// One bucket, one entry: a new heavy flow must eventually displace a
	// light one.
	s := New(1, 1, 1.08, sim.NewRNG(3))
	s.Observe(1, 1)
	for i := 0; i < 200; i++ {
		s.Observe(2, 5)
	}
	if _, ok := s.Lookup(2); !ok {
		t.Error("heavy newcomer never displaced light entry")
	}
}

func TestSketchReset(t *testing.T) {
	s := newSketch()
	s.Observe(1, 5)
	s.Reset()
	if s.Len() != 0 || s.InsertedWorkload() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestSketchBadShapePanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1, 1.08, sim.NewRNG(1)) },
		func() { New(1, 0, 1.08, sim.NewRNG(1)) },
		func() { New(1, 1, 1.0, sim.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: tracked workload never exceeds inserted workload (decay only
// removes counts), and Len never exceeds buckets × entries.
func TestSketchConservationProperty(t *testing.T) {
	f := func(addrs []uint16, loads []uint8, seed uint64) bool {
		s := New(4, 4, 1.08, sim.NewRNG(seed))
		for i, a := range addrs {
			var w uint64 = 1
			if i < len(loads) {
				w = uint64(loads[i]) + 1
			}
			s.Observe(uint64(a), w)
		}
		return s.TrackedWorkload() <= s.InsertedWorkload() && s.Len() <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
