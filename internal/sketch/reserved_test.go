package sketch

import (
	"testing"

	"ndpbridge/internal/task"
)

func TestReservedAddTake(t *testing.T) {
	r := NewReservedQueue(10, 4)
	for i := uint64(0); i < 6; i++ {
		if !r.Add(0x100, task.New(0, 0, i, 2)) {
			t.Fatalf("Add %d failed", i)
		}
	}
	if r.Len(0x100) != 6 {
		t.Errorf("Len = %d", r.Len(0x100))
	}
	// 6 tasks at 4/chunk = 2 chunks used.
	if r.FreeChunks() != 8 {
		t.Errorf("FreeChunks = %d, want 8", r.FreeChunks())
	}
	if r.Workload(0x100) != 12 {
		t.Errorf("Workload = %d, want 12", r.Workload(0x100))
	}
	got := r.Take(0x100)
	if len(got) != 6 {
		t.Fatalf("Take returned %d", len(got))
	}
	for i, tk := range got {
		if tk.Addr != uint64(i) {
			t.Errorf("order broken at %d", i)
		}
	}
	if r.FreeChunks() != 10 {
		t.Errorf("chunks not freed: %d", r.FreeChunks())
	}
	if r.Take(0x100) != nil {
		t.Error("second Take should be empty")
	}
}

func TestReservedExhaustion(t *testing.T) {
	r := NewReservedQueue(2, 2)
	// Block A takes both chunks.
	for i := uint64(0); i < 4; i++ {
		if !r.Add(0xa, task.New(0, 0, i, 1)) {
			t.Fatalf("Add %d should fit", i)
		}
	}
	if r.Add(0xa, task.New(0, 0, 9, 1)) {
		t.Error("fifth task needs a third chunk: must fail")
	}
	if r.Add(0xb, task.New(0, 0, 9, 1)) {
		t.Error("new block with no free chunk must fail")
	}
	r.Take(0xa)
	if !r.Add(0xb, task.New(0, 0, 9, 1)) {
		t.Error("Add after free must succeed")
	}
}

func TestReservedDrain(t *testing.T) {
	r := NewReservedQueue(10, 4)
	r.Add(1, task.New(0, 0, 1, 1))
	r.Add(2, task.New(0, 0, 2, 1))
	r.Add(2, task.New(0, 0, 3, 1))
	got := r.Drain()
	if len(got) != 3 {
		t.Fatalf("Drain = %d tasks", len(got))
	}
	if r.Total() != 0 || r.FreeChunks() != 10 {
		t.Error("Drain incomplete")
	}
}

func TestReservedWorkloadMissing(t *testing.T) {
	r := NewReservedQueue(1, 1)
	if r.Workload(123) != 0 || r.Len(123) != 0 {
		t.Error("missing block should report zero")
	}
}

func TestReservedBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewReservedQueue(0, 1)
}
