package sketch

import (
	"ndpbridge/internal/task"
)

// ReservedQueue is the in-DRAM reserved task queue of Section VI-C. Tasks on
// sketch-tracked blocks are held here, organized in G_xfer-sized chunks: each
// tracked block gets an initial chunk, and overflow chunks are allocated from
// a bitmap-managed pool to form a per-block linked list. When the pool is
// exhausted, new tasks fall back to the normal task queue (the caller handles
// the false return).
//ndplint:domain(perowner)
type ReservedQueue struct {
	chunkTasks  int // tasks per chunk (G_xfer / task record size)
	freeChunks  int
	totalChunks int
	total       int //ndplint:nosnap derived; summed task count, rebuilt on restore

	blocks map[uint64]*blockList
	order  []uint64 // insertion order, for deterministic Drain
	// spare parks emptied blockLists so their task arrays are reused when
	// blocks churn through the queue instead of reallocated per block.
	spare []*blockList //ndplint:nosnap free-list of empty lists, no logical state
}

type blockList struct {
	tasks  []task.Task
	chunks int
}

// NewReservedQueue manages totalChunks chunks of chunkTasks tasks each.
func NewReservedQueue(totalChunks, chunkTasks int) *ReservedQueue {
	if totalChunks <= 0 || chunkTasks <= 0 {
		panic("sketch: reserved queue shape must be positive")
	}
	return &ReservedQueue{
		chunkTasks:  chunkTasks,
		freeChunks:  totalChunks,
		totalChunks: totalChunks,
		blocks:      make(map[uint64]*blockList),
	}
}

// Add appends a task under its block. It returns false when no chunk space
// is available, in which case the task belongs in the normal queue.
func (r *ReservedQueue) Add(block uint64, t task.Task) bool {
	bl := r.blocks[block]
	if bl == nil {
		if r.freeChunks == 0 {
			return false
		}
		if n := len(r.spare); n > 0 {
			bl = r.spare[n-1]
			r.spare[n-1] = nil
			r.spare = r.spare[:n-1]
			bl.chunks = 1
		} else {
			bl = &blockList{chunks: 1}
		}
		r.freeChunks--
		r.blocks[block] = bl
		if len(r.order) > 2*len(r.blocks)+64 {
			// Compact out blocks already taken.
			kept := r.order[:0]
			for _, b := range r.order {
				if _, ok := r.blocks[b]; ok {
					kept = append(kept, b)
				}
			}
			r.order = kept
		}
		r.order = append(r.order, block)
	}
	if len(bl.tasks) == bl.chunks*r.chunkTasks {
		if r.freeChunks == 0 {
			return false
		}
		bl.chunks++
		r.freeChunks--
	}
	bl.tasks = append(bl.tasks, t)
	r.total++
	return true
}

// Take removes and returns all tasks reserved under block, freeing its
// chunks. Ownership of the returned slice transfers to the caller; hot paths
// should prefer TakeAppend, which recycles the internal storage.
func (r *ReservedQueue) Take(block uint64) []task.Task {
	bl := r.blocks[block]
	if bl == nil {
		return nil
	}
	delete(r.blocks, block)
	r.freeChunks += bl.chunks
	r.total -= len(bl.tasks)
	return bl.tasks
}

// TakeAppend appends block's reserved tasks to dst, frees its chunks, and
// parks the emptied storage for reuse. It returns dst (possibly regrown);
// dst is returned unchanged when the block has no reservation.
//
//ndplint:hotpath
func (r *ReservedQueue) TakeAppend(dst []task.Task, block uint64) []task.Task {
	bl := r.blocks[block]
	if bl == nil {
		return dst
	}
	delete(r.blocks, block)
	r.freeChunks += bl.chunks
	r.total -= len(bl.tasks)
	dst = append(dst, bl.tasks...)
	bl.tasks = bl.tasks[:0]
	bl.chunks = 0
	r.spare = append(r.spare, bl)
	return dst
}

// Drain removes and returns all reserved tasks of every block in insertion
// order, freeing all chunks. Used when falling back or finishing an epoch.
func (r *ReservedQueue) Drain() []task.Task {
	return r.DrainAppend(nil)
}

// DrainAppend is Drain appending into a caller-supplied buffer, recycling
// all internal storage.
func (r *ReservedQueue) DrainAppend(dst []task.Task) []task.Task {
	for _, b := range r.order {
		dst = r.TakeAppend(dst, b)
	}
	r.order = r.order[:0]
	return dst
}

// Len returns the number of reserved tasks of block.
func (r *ReservedQueue) Len(block uint64) int {
	if bl := r.blocks[block]; bl != nil {
		return len(bl.tasks)
	}
	return 0
}

// Total returns the number of reserved tasks across all blocks.
//
//ndplint:hotpath
func (r *ReservedQueue) Total() int { return r.total }

// FreeChunks returns the unallocated chunk count.
func (r *ReservedQueue) FreeChunks() int { return r.freeChunks }

// Workload sums effective workloads of the tasks reserved under block.
func (r *ReservedQueue) Workload(block uint64) uint64 {
	bl := r.blocks[block]
	if bl == nil {
		return 0
	}
	var w uint64
	for _, t := range bl.tasks {
		w += t.EffectiveWorkload()
	}
	return w
}
