package audit

import (
	"strings"
	"testing"
)

func TestLogCollectsAndFormats(t *testing.T) {
	var l Log
	if l.Err() != nil || l.Count() != 0 {
		t.Fatal("empty log not clean")
	}
	l.Add(Violation{Rule: "task-conservation", Where: "system", Cycle: 100, Expected: 5, Actual: 7})
	l.Add(Violation{Rule: "barrier-residue", Where: "unit 3", Cycle: 200, Expected: 0, Actual: 2, Detail: "mailbox"})
	if l.Count() != 2 {
		t.Fatalf("count %d, want 2", l.Count())
	}
	err := l.Err()
	if err == nil {
		t.Fatal("no error for dirty log")
	}
	msg := err.Error()
	for _, want := range []string{"2 invariant violation", "[task-conservation] system at cycle 100", "expected 5, got 7", "[barrier-residue] unit 3", "(mailbox)"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message missing %q:\n%s", want, msg)
		}
	}
	if !strings.Contains(msg, "audit:") {
		t.Error("missing audit: prefix")
	}
	if e, ok := err.(*Error); !ok || len(e.Violations) != 2 {
		t.Errorf("err = %T, want *Error with 2 violations", err)
	}
}

func TestLogCapAndNilSafety(t *testing.T) {
	var l Log
	for i := 0; i < maxKept+50; i++ {
		l.Add(Violation{Rule: "r", Where: "w", Cycle: uint64(i)})
	}
	if l.Count() != maxKept {
		t.Fatalf("count %d, want cap %d", l.Count(), maxKept)
	}
	var nl *Log
	nl.Add(Violation{Rule: "r"}) // must not panic
	if nl.Count() != 0 || nl.Err() != nil || nl.Violations() != nil {
		t.Fatal("nil log not inert")
	}
}

func TestViolationStringFormat(t *testing.T) {
	cases := []struct {
		v    Violation
		want string
	}{
		{
			Violation{Rule: "seq-monotonic", Where: "bridge 1", Cycle: 4096, Expected: 9, Actual: 3, Detail: "up hop"},
			"[seq-monotonic] bridge 1 at cycle 4096: expected 9, got 3 (up hop)",
		},
		{
			Violation{Rule: "msg-conservation", Where: "system", Cycle: 0, Expected: 0, Actual: 1},
			"[msg-conservation] system at cycle 0: expected 0, got 1",
		},
		{
			// Detail-free violations must not carry empty parens.
			Violation{Rule: "lent-borrowed", Where: "unit 0", Cycle: 7, Expected: 2, Actual: 2, Detail: ""},
			"[lent-borrowed] unit 0 at cycle 7: expected 2, got 2",
		},
	}
	for i, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("case %d:\n got %q\nwant %q", i, got, c.want)
		}
	}
}

func TestLogViolationsAccessor(t *testing.T) {
	var l Log
	l.Add(Violation{Rule: "a", Cycle: 1})
	l.Add(Violation{Rule: "b", Cycle: 2})
	vs := l.Violations()
	if len(vs) != 2 || vs[0].Rule != "a" || vs[1].Rule != "b" {
		t.Fatalf("Violations() = %v", vs)
	}
}

func TestBackoffSchedule(t *testing.T) {
	// gap 16, factor 256: fires at 0, then not again until 16 cycles later,
	// then the gap widens to 4096, then 1<<20, ...
	b := NewBackoff(16, 256)
	if !b.Due(0) {
		t.Fatal("first probe must fire immediately")
	}
	if b.Due(8) {
		t.Fatal("probe fired inside the first gap")
	}
	if !b.Due(16) {
		t.Fatal("probe at the gap boundary must fire")
	}
	if b.Gap() != 16*256*256 {
		t.Fatalf("gap after two firings = %d, want %d", b.Gap(), 16*256*256)
	}
	if b.Due(16 + 4095) {
		t.Fatal("probe fired inside the widened gap")
	}
	if !b.Due(16 + 4096) {
		t.Fatal("probe at the widened boundary must fire")
	}
}

func TestBackoffFiringTimesThinOut(t *testing.T) {
	// Walk a long run in fixed steps and collect firing times; consecutive
	// firing distances must be non-decreasing (the whole point of backoff).
	b := NewBackoff(1, 4)
	var fired []uint64
	for now := uint64(0); now < 1<<20; now += 7 {
		if b.Due(now) {
			fired = append(fired, now)
		}
	}
	if len(fired) < 3 {
		t.Fatalf("only %d firings in 1M cycles", len(fired))
	}
	if len(fired) > 32 {
		t.Fatalf("%d firings in 1M cycles — backoff not thinning", len(fired))
	}
	for i := 2; i < len(fired); i++ {
		if fired[i]-fired[i-1] < fired[i-1]-fired[i-2] {
			t.Fatalf("firing gaps shrank: %v", fired)
		}
	}
}

func TestBackoffSaturatesInsteadOfOverflowing(t *testing.T) {
	b := NewBackoff(1<<40, 1<<30)
	for i := 0; i < 10; i++ {
		b.Due(^uint64(0) - 1) // repeatedly probe near the end of time
	}
	if b.Gap() == 0 {
		t.Fatal("gap overflowed to zero — schedule would go dense again")
	}
	// After saturation the schedule must be effectively off, not wrapping.
	if b.Due(^uint64(0) - 1) {
		t.Fatal("saturated schedule fired again at the same instant")
	}
}

func TestBackoffFactorFloor(t *testing.T) {
	b := NewBackoff(8, 0) // degenerate factor is raised to 2
	b.Due(0)
	if b.Gap() != 16 {
		t.Fatalf("gap = %d, want 16 (factor floored to 2)", b.Gap())
	}
}
