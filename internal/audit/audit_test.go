package audit

import (
	"strings"
	"testing"
)

func TestLogCollectsAndFormats(t *testing.T) {
	var l Log
	if l.Err() != nil || l.Count() != 0 {
		t.Fatal("empty log not clean")
	}
	l.Add(Violation{Rule: "task-conservation", Where: "system", Cycle: 100, Expected: 5, Actual: 7})
	l.Add(Violation{Rule: "barrier-residue", Where: "unit 3", Cycle: 200, Expected: 0, Actual: 2, Detail: "mailbox"})
	if l.Count() != 2 {
		t.Fatalf("count %d, want 2", l.Count())
	}
	err := l.Err()
	if err == nil {
		t.Fatal("no error for dirty log")
	}
	msg := err.Error()
	for _, want := range []string{"2 invariant violation", "[task-conservation] system at cycle 100", "expected 5, got 7", "[barrier-residue] unit 3", "(mailbox)"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message missing %q:\n%s", want, msg)
		}
	}
	if !strings.Contains(msg, "audit:") {
		t.Error("missing audit: prefix")
	}
	if e, ok := err.(*Error); !ok || len(e.Violations) != 2 {
		t.Errorf("err = %T, want *Error with 2 violations", err)
	}
}

func TestLogCapAndNilSafety(t *testing.T) {
	var l Log
	for i := 0; i < maxKept+50; i++ {
		l.Add(Violation{Rule: "r", Where: "w", Cycle: uint64(i)})
	}
	if l.Count() != maxKept {
		t.Fatalf("count %d, want cap %d", l.Count(), maxKept)
	}
	var nl *Log
	nl.Add(Violation{Rule: "r"}) // must not panic
	if nl.Count() != 0 || nl.Err() != nil {
		t.Fatal("nil log not inert")
	}
}
