// Package audit defines the invariant auditor's violation vocabulary: a
// structured record of one broken conservation law, and an error type that
// aggregates every violation observed before the run was stopped.
//
// The checks themselves live next to the state they inspect (the core
// orchestrator wires them into the engine's audit hook and the bulk-sync
// barrier); this package only fixes the reporting format, so tools and tests
// can match on rule names instead of parsing prose.
package audit

import (
	"fmt"
	"strings"
)

// Violation is one observed invariant breach.
type Violation struct {
	// Rule names the invariant, e.g. "task-conservation",
	// "msg-conservation", "barrier-residue", "lent-borrowed",
	// "seq-monotonic", "snapshot-determinism".
	Rule string
	// Where locates the breach: "system", "unit 3", "bridge 1", "l2".
	Where string
	// Cycle is the simulation time of the observation.
	Cycle uint64
	// Expected and Actual are the two sides of the broken equation.
	Expected uint64
	Actual   uint64
	// Detail carries any extra context (block address, hop name, …).
	Detail string
}

func (v Violation) String() string {
	s := fmt.Sprintf("[%s] %s at cycle %d: expected %d, got %d", v.Rule, v.Where, v.Cycle, v.Expected, v.Actual)
	if v.Detail != "" {
		s += " (" + v.Detail + ")"
	}
	return s
}

// Error aggregates the violations of one run. The auditor fails fast — it
// stops the engine at the first breach — but checks run in batches, so one
// stop can surface several related violations at once.
type Error struct {
	Violations []Violation
}

func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d invariant violation(s):", len(e.Violations))
	for _, v := range e.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// Log collects violations during a run. The zero value is ready to use; a
// nil *Log ignores reports (checks can stay unconditional).
type Log struct {
	vs []Violation
}

// maxKept bounds the stored violations so a systematically broken run cannot
// grow the log without bound before the engine stops.
const maxKept = 64

// Add records a violation. Reports past the cap are counted but dropped.
func (l *Log) Add(v Violation) {
	if l == nil {
		return
	}
	if len(l.vs) < maxKept {
		l.vs = append(l.vs, v)
	}
}

// Count returns the number of recorded violations.
func (l *Log) Count() int {
	if l == nil {
		return 0
	}
	return len(l.vs)
}

// Err returns nil when the log is clean, or an *Error listing every
// recorded violation.
func (l *Log) Err() error {
	if l == nil || len(l.vs) == 0 {
		return nil
	}
	return &Error{Violations: l.vs}
}

// Violations returns the recorded violations (nil when clean). The slice is
// the log's own storage; callers must not modify it.
func (l *Log) Violations() []Violation {
	if l == nil {
		return nil
	}
	return l.vs
}

// Backoff paces an expensive periodic check with exponential spacing: the
// first probe fires at the initial gap, and every fired probe multiplies the
// gap by Factor. The auditor uses it for the snapshot-determinism check —
// encoding multi-megabyte system state at every barrier would dominate long
// runs, and the property it guards is structural, so a handful of probes
// spread across the run's lifetime suffices (dense early while state is
// small and cheap, sparse late).
type Backoff struct {
	next   uint64
	gap    uint64
	factor uint64
}

// NewBackoff returns a schedule with the given initial gap and growth
// factor. A zero gap fires on every probe with no growth; a factor below 2
// is raised to 2 so the schedule always thins out.
func NewBackoff(gap, factor uint64) *Backoff {
	if factor < 2 {
		factor = 2
	}
	return &Backoff{gap: gap, factor: factor}
}

// Due reports whether a probe should fire at time now, and if so advances
// the schedule: next fires at now+gap, and the gap grows by the factor
// (saturating instead of overflowing, so a long run ends up with the check
// effectively off rather than suddenly dense again).
func (b *Backoff) Due(now uint64) bool {
	if now < b.next {
		return false
	}
	b.next = now + b.gap
	if b.next < now { // overflow: push past any reachable time
		b.next = ^uint64(0)
	}
	if g := b.gap * b.factor; g/b.factor == b.gap {
		b.gap = g
	} else {
		b.gap = ^uint64(0)
	}
	return true
}

// Gap returns the current spacing (the distance the next firing will add).
func (b *Backoff) Gap() uint64 { return b.gap }
