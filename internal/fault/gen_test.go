package fault

import (
	"bytes"
	"strings"
	"testing"

	"ndpbridge/internal/sim"
)

var genTopo = Topology{Units: 64, Ranks: 2, Horizon: 1 << 14}

func TestGenerateAlwaysValid(t *testing.T) {
	rng := sim.NewRNG(1)
	for i := 0; i < 500; i++ {
		p := Generate(rng, genTopo)
		if p.Empty() {
			t.Fatalf("iteration %d: generated empty plan", i)
		}
		if err := p.Validate(genTopo.Units, genTopo.Ranks); err != nil {
			t.Fatalf("iteration %d: generated invalid plan: %v\n%s", i, err, Canonical(p))
		}
	}
}

func TestMutateAlwaysValid(t *testing.T) {
	rng := sim.NewRNG(2)
	p := Generate(rng, genTopo)
	for i := 0; i < 500; i++ {
		q := Mutate(rng, p, genTopo)
		if q.Empty() {
			t.Fatalf("iteration %d: mutation produced empty plan", i)
		}
		if err := q.Validate(genTopo.Units, genTopo.Ranks); err != nil {
			t.Fatalf("iteration %d: mutated invalid plan: %v\n%s", i, err, Canonical(q))
		}
		p = q
	}
}

func TestMutateDoesNotAliasInput(t *testing.T) {
	rng := sim.NewRNG(3)
	p := Generate(rng, genTopo)
	before := string(Canonical(p))
	for i := 0; i < 50; i++ {
		Mutate(rng, p, genTopo)
	}
	if got := string(Canonical(p)); got != before {
		t.Fatalf("Mutate modified its input:\nbefore: %s\nafter: %s", before, got)
	}
}

func TestMutateEmptyPlanAddsSpec(t *testing.T) {
	rng := sim.NewRNG(4)
	for i := 0; i < 20; i++ {
		q := Mutate(rng, &Plan{}, genTopo)
		if len(q.Faults) != 1 {
			t.Fatalf("mutating empty plan: got %d specs, want 1", len(q.Faults))
		}
	}
	q := Mutate(sim.NewRNG(5), nil, genTopo)
	if len(q.Faults) != 1 {
		t.Fatalf("mutating nil plan: got %d specs, want 1", len(q.Faults))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := sim.NewRNG(42), sim.NewRNG(42)
	for i := 0; i < 100; i++ {
		pa, pb := Generate(a, genTopo), Generate(b, genTopo)
		if !bytes.Equal(Canonical(pa), Canonical(pb)) {
			t.Fatalf("iteration %d: same seed, different plans", i)
		}
	}
}

func TestCanonicalOrderIndependent(t *testing.T) {
	a := &Plan{Faults: []Spec{
		{Kind: KindKill, Unit: 3, At: 100, Rank: -1},
		{Kind: KindDrop, Scope: ScopeL1Up, Prob: 0.1, Rank: -1, Unit: -1},
	}}
	b := &Plan{Faults: []Spec{a.Faults[1], a.Faults[0]}}
	if Hash(a) != Hash(b) {
		t.Fatalf("spec order changed plan hash:\n%s\nvs\n%s", Canonical(a), Canonical(b))
	}
}

func TestCanonicalRoundTrips(t *testing.T) {
	rng := sim.NewRNG(6)
	for i := 0; i < 200; i++ {
		p := Generate(rng, genTopo)
		data := Canonical(p)
		q, err := Parse(data)
		if err != nil {
			t.Fatalf("iteration %d: canonical form does not re-parse: %v\n%s", i, err, data)
		}
		if !bytes.Equal(data, Canonical(q)) {
			t.Fatalf("iteration %d: canonical form not a fixpoint:\n%s\nvs\n%s", i, data, Canonical(q))
		}
		if err := q.Validate(genTopo.Units, genTopo.Ranks); err != nil {
			t.Fatalf("iteration %d: round-tripped plan invalid: %v", i, err)
		}
	}
}

func TestParseReportsEntryPath(t *testing.T) {
	bad := `{"faults":[
		{"kind":"drop","scope":"l1-up","prob":0.5},
		{"kind":"corrupt","scope":"l1-gather","probb":0.1}
	]}`
	_, err := Parse([]byte(bad))
	if err == nil {
		t.Fatal("typo'd field in entry 1 accepted")
	}
	if !strings.Contains(err.Error(), "plan entry 1") {
		t.Fatalf("error does not name the bad entry: %v", err)
	}
	if !strings.Contains(err.Error(), "probb") {
		t.Fatalf("error does not name the bad field: %v", err)
	}

	// Stray top-level keys are rejected too.
	if _, err := Parse([]byte(`{"faults":[],"fautls":[]}`)); err == nil {
		t.Fatal("stray top-level key accepted")
	}

	// Type errors carry the entry index as well.
	_, err = Parse([]byte(`{"faults":[{"kind":"drop","scope":"l1-up","prob":"high"}]}`))
	if err == nil {
		t.Fatal("string prob accepted")
	}
	if !strings.Contains(err.Error(), "plan entry 0") {
		t.Fatalf("type error does not name the entry: %v", err)
	}
}
