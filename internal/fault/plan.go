// Package fault implements deterministic fault injection for the NDPBridge
// simulator. A Plan (typically loaded from JSON) names a set of fault specs —
// message-level faults on the bridge hops (drop, corrupt, duplicate, delay),
// bridge-buffer overflow, and unit-level stall/kill events — and an Injector
// turns the plan plus a seed into a fully deterministic fault schedule:
// every probabilistic decision is drawn from a per-hop PRNG stream derived by
// stable hashing, independent of component construction order and of
// anything else in the process (no wall clock, no global rand). The same
// (plan, seed) therefore produces the identical fault schedule on every run,
// at any worker-pool width.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Kind names a fault class.
type Kind string

const (
	// KindDrop silently discards a message on a hop.
	KindDrop Kind = "drop"
	// KindCorrupt flips the message checksum so the receiver nacks it.
	KindCorrupt Kind = "corrupt"
	// KindDup delivers a message twice.
	KindDup Kind = "dup"
	// KindDelay holds a message back for a fixed number of cycles.
	KindDelay Kind = "delay"
	// KindStall freezes a unit's compute pipeline for a duration; its
	// mailbox stays reachable and the running task completes.
	KindStall Kind = "stall"
	// KindKill permanently removes a unit at a given cycle.
	KindKill Kind = "kill"
	// KindOverflow injects phantom backlog into a level-1 bridge's backup
	// buffer, tripping its backpressure threshold for a duration.
	KindOverflow Kind = "overflow"
)

// Scope names the bridge hop a message-level fault applies to.
type Scope string

const (
	// ScopeL1Gather is the unit → level-1 bridge gather hop.
	ScopeL1Gather Scope = "l1-gather"
	// ScopeL1Scatter is the level-1 bridge → unit scatter hop.
	ScopeL1Scatter Scope = "l1-scatter"
	// ScopeL1Up is the level-1 → level-2 up hop.
	ScopeL1Up Scope = "l1-up"
	// ScopeL2Down is the level-2 → level-1 down hop.
	ScopeL2Down Scope = "l2-down"
)

// messageKind reports whether k is a per-message probabilistic fault.
func messageKind(k Kind) bool {
	switch k {
	case KindDrop, KindCorrupt, KindDup, KindDelay:
		return true
	}
	return false
}

// validScope reports whether s names a known hop.
func validScope(s Scope) bool {
	switch s {
	case ScopeL1Gather, ScopeL1Scatter, ScopeL1Up, ScopeL2Down:
		return true
	}
	return false
}

// Spec is one fault specification. Which fields matter depends on Kind:
//
//   - drop/corrupt/dup/delay: Scope (hop), Prob, optional Rank filter
//     (-1 or absent = every rank), optional After/Until activity window,
//     optional Count cap on firings; delay also uses Cycles (default 64).
//   - stall: Unit, At, Cycles (stall duration).
//   - kill: Unit, At.
//   - overflow: Rank, At, Cycles (duration), Bytes (phantom backlog;
//     default 1 MiB).
type Spec struct {
	Kind   Kind    `json:"kind"`
	Scope  Scope   `json:"scope,omitempty"`
	Prob   float64 `json:"prob,omitempty"`
	Rank   int     `json:"rank"`
	Unit   int     `json:"unit"`
	At     uint64  `json:"at,omitempty"`
	Cycles uint64  `json:"cycles,omitempty"`
	Bytes  uint64  `json:"bytes,omitempty"`
	After  uint64  `json:"after,omitempty"`
	Until  uint64  `json:"until,omitempty"`
	Count  uint64  `json:"count,omitempty"`
}

// Plan is a set of fault specs, the unit of configuration (-faults plan.json).
type Plan struct {
	Faults []Spec `json:"faults"`
}

// specDTO mirrors Spec with pointer fields so absent JSON keys are
// distinguishable from explicit zeros: "rank": 0 targets rank 0, while an
// absent rank means "all ranks" (-1).
type specDTO struct {
	Kind   *Kind    `json:"kind"`
	Scope  *Scope   `json:"scope"`
	Prob   *float64 `json:"prob"`
	Rank   *int     `json:"rank"`
	Unit   *int     `json:"unit"`
	At     *uint64  `json:"at"`
	Cycles *uint64  `json:"cycles"`
	Bytes  *uint64  `json:"bytes"`
	After  *uint64  `json:"after"`
	Until  *uint64  `json:"until"`
	Count  *uint64  `json:"count"`
}

type planDTO struct {
	Faults []specDTO `json:"faults"`
}

// Parse decodes a JSON fault plan. Unknown fields are rejected so typos in
// hand-written (or machine-mutated) plans fail loudly, and the error names
// the plan entry that carries the bad field — "plan entry 3: unknown field
// "probb"" — instead of a bare decoder message with no path.
func Parse(data []byte) (*Plan, error) {
	// Two-stage decode: the top level strictly (catching stray keys next to
	// "faults"), then each entry strictly and individually, so a field error
	// can be attributed to its array index.
	var raw struct {
		Faults []json.RawMessage `json:"faults"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	dto := planDTO{Faults: make([]specDTO, len(raw.Faults))}
	for i, entry := range raw.Faults {
		ed := json.NewDecoder(bytes.NewReader(entry))
		ed.DisallowUnknownFields()
		if err := ed.Decode(&dto.Faults[i]); err != nil {
			return nil, fmt.Errorf("fault: plan entry %d: %w", i, err)
		}
	}
	p := &Plan{Faults: make([]Spec, 0, len(dto.Faults))}
	for i, d := range dto.Faults {
		s := Spec{Rank: -1, Unit: -1}
		if d.Kind != nil {
			s.Kind = *d.Kind
		}
		if d.Scope != nil {
			s.Scope = *d.Scope
		}
		if d.Prob != nil {
			s.Prob = *d.Prob
		}
		if d.Rank != nil {
			s.Rank = *d.Rank
		}
		if d.Unit != nil {
			s.Unit = *d.Unit
		}
		if d.At != nil {
			s.At = *d.At
		}
		if d.Cycles != nil {
			s.Cycles = *d.Cycles
		}
		if d.Bytes != nil {
			s.Bytes = *d.Bytes
		}
		if d.After != nil {
			s.After = *d.After
		}
		if d.Until != nil {
			s.Until = *d.Until
		}
		if d.Count != nil {
			s.Count = *d.Count
		}
		if s.Kind == "" {
			return nil, fmt.Errorf("fault: plan entry %d: missing kind", i)
		}
		p.Faults = append(p.Faults, s)
	}
	return p, nil
}

// Load reads and parses a JSON fault plan from path.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return Parse(data)
}

// Empty reports whether the plan carries no faults. An empty plan attached
// to a run must be indistinguishable from no plan at all.
func (p *Plan) Empty() bool { return p == nil || len(p.Faults) == 0 }

// NeedsBridges reports whether the plan contains faults only the bridge
// fabric can apply: per-message hop faults and bridge-buffer overflows.
func (p *Plan) NeedsBridges() bool {
	if p == nil {
		return false
	}
	for _, s := range p.Faults {
		if messageKind(s.Kind) || s.Kind == KindOverflow {
			return true
		}
	}
	return false
}

// MaxCycles returns the longest duration named by any spec (stall and
// overflow durations, delay latencies) — an input for sizing watchdog
// periods so recoverable faults never look like deadlock.
func (p *Plan) MaxCycles() uint64 {
	var m uint64
	if p == nil {
		return 0
	}
	for _, s := range p.Faults {
		if s.Cycles > m {
			m = s.Cycles
		}
	}
	return m
}

// Validate checks every spec against the run's topology: units NDP units and
// ranks total ranks. It returns the first violation found.
func (p *Plan) Validate(units, ranks int) error {
	if p == nil {
		return nil
	}
	for i, s := range p.Faults {
		if err := validateSpec(s, units, ranks); err != nil {
			return fmt.Errorf("fault: plan entry %d (%s): %w", i, s.Kind, err)
		}
	}
	return nil
}

func validateSpec(s Spec, units, ranks int) error {
	switch {
	case messageKind(s.Kind):
		if !validScope(s.Scope) {
			return fmt.Errorf("message fault needs a hop scope (l1-gather, l1-scatter, l1-up, l2-down), got %q", s.Scope)
		}
		if s.Prob <= 0 || s.Prob > 1 {
			return fmt.Errorf("prob %v outside (0, 1]", s.Prob)
		}
		if s.Rank < -1 || s.Rank >= ranks {
			return fmt.Errorf("rank %d outside [-1, %d)", s.Rank, ranks)
		}
		if s.Until != 0 && s.Until <= s.After {
			return fmt.Errorf("until %d must exceed after %d", s.Until, s.After)
		}
	case s.Kind == KindStall:
		if s.Unit < 0 || s.Unit >= units {
			return fmt.Errorf("stall needs unit in [0, %d), got %d", units, s.Unit)
		}
		if s.Cycles == 0 {
			return fmt.Errorf("stall needs cycles > 0")
		}
	case s.Kind == KindKill:
		if s.Unit < 0 || s.Unit >= units {
			return fmt.Errorf("kill needs unit in [0, %d), got %d", units, s.Unit)
		}
	case s.Kind == KindOverflow:
		if s.Rank < 0 || s.Rank >= ranks {
			return fmt.Errorf("overflow needs rank in [0, %d), got %d", ranks, s.Rank)
		}
		if s.Cycles == 0 {
			return fmt.Errorf("overflow needs cycles > 0")
		}
	default:
		return fmt.Errorf("unknown kind %q", s.Kind)
	}
	return nil
}
