package fault

import (
	"encoding/json"
	"fmt"
	"sort"

	"ndpbridge/internal/sim"
)

// Topology describes the run a generated plan must be valid for: the unit
// and rank counts bound fault targets, and Horizon bounds every cycle field
// (event times, activity windows) so scheduled faults land while the run is
// still doing work.
type Topology struct {
	Units   int
	Ranks   int
	Horizon uint64 // upper bound for At/After/Until; 0 means 1<<16
}

func (t Topology) horizon() uint64 {
	if t.Horizon == 0 {
		return 1 << 16
	}
	return t.Horizon
}

// allScopes is the fixed generation order for hop scopes.
var allScopes = [...]Scope{ScopeL1Gather, ScopeL1Scatter, ScopeL1Up, ScopeL2Down}

// allKinds is the fixed generation order for fault kinds. Message kinds are
// listed twice, weighting generation toward the hop faults that exercise the
// retry fabric; stall appears twice so rank-dark-style windows (several
// concurrent stalls) are common.
var allKinds = [...]Kind{
	KindDrop, KindCorrupt, KindDup, KindDelay,
	KindDrop, KindCorrupt, KindDup, KindDelay,
	KindStall, KindStall, KindKill, KindOverflow,
}

// probSteps quantizes generated probabilities. A coarse grid keeps mutated
// plans canonical (no float drift across mutate/serialize round trips) and
// spans the interesting range from "rare" to "every message".
var probSteps = [...]float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0}

// Generate draws a fresh random plan valid for topo: 1–6 specs, each built
// by genSpec. Determinism contract: the result is a pure function of the
// RNG stream position, so callers that share one seeded RNG across a
// campaign get the same plan sequence on every run.
func Generate(rng *sim.RNG, topo Topology) *Plan {
	n := 1 + rng.Intn(6)
	p := &Plan{Faults: make([]Spec, 0, n)}
	for i := 0; i < n; i++ {
		p.Faults = append(p.Faults, genSpec(rng, topo))
	}
	return p
}

// genSpec draws one valid spec for topo.
func genSpec(rng *sim.RNG, topo Topology) Spec {
	kind := allKinds[rng.Intn(len(allKinds))]
	h := topo.horizon()
	s := Spec{Kind: kind, Rank: -1, Unit: -1}
	switch {
	case messageKind(kind):
		s.Scope = allScopes[rng.Intn(len(allScopes))]
		s.Prob = probSteps[rng.Intn(len(probSteps))]
		// Half the specs target one rank, half all ranks.
		if rng.Intn(2) == 0 && topo.Ranks > 0 {
			s.Rank = rng.Intn(topo.Ranks)
		}
		// A third of the specs get an activity window inside the horizon.
		if rng.Intn(3) == 0 {
			s.After = rng.Uint64n(h / 2)
			s.Until = s.After + 1 + rng.Uint64n(h/2)
		}
		// A third get a firing cap.
		if rng.Intn(3) == 0 {
			s.Count = 1 + rng.Uint64n(16)
		}
		if kind == KindDelay {
			s.Cycles = 1 + rng.Uint64n(512)
		}
	case kind == KindStall:
		s.Unit = rng.Intn(topo.Units)
		s.At = rng.Uint64n(h)
		s.Cycles = 1 + rng.Uint64n(h/2)
	case kind == KindKill:
		s.Unit = rng.Intn(topo.Units)
		s.At = rng.Uint64n(h)
	case kind == KindOverflow:
		s.Rank = rng.Intn(topo.Ranks)
		s.At = rng.Uint64n(h)
		s.Cycles = 1 + rng.Uint64n(h/2)
		s.Bytes = (1 + rng.Uint64n(64)) << 14 // 16 KiB .. 1 MiB
	}
	return s
}

// Clone returns a deep copy of p (specs are value types, so one slice copy).
func Clone(p *Plan) *Plan {
	if p == nil {
		return nil
	}
	q := &Plan{Faults: make([]Spec, len(p.Faults))}
	copy(q.Faults, p.Faults)
	return q
}

// Mutate returns a mutated deep copy of p, valid for topo. One of a fixed
// set of mutations is applied: add a spec, remove a spec, replace a spec,
// or tweak one field of a spec (probability step, window shift, duration
// scale, target move). The input plan is never modified. Mutating an empty
// plan always adds a spec, so the fuzzer cannot get stuck on the empty plan.
func Mutate(rng *sim.RNG, p *Plan, topo Topology) *Plan {
	q := Clone(p)
	if q == nil {
		q = &Plan{}
	}
	if len(q.Faults) == 0 {
		q.Faults = append(q.Faults, genSpec(rng, topo))
		return q
	}
	switch rng.Intn(4) {
	case 0: // add
		q.Faults = append(q.Faults, genSpec(rng, topo))
	case 1: // remove (keep at least one spec)
		if len(q.Faults) > 1 {
			i := rng.Intn(len(q.Faults))
			q.Faults = append(q.Faults[:i], q.Faults[i+1:]...)
		} else {
			q.Faults[0] = genSpec(rng, topo)
		}
	case 2: // replace
		q.Faults[rng.Intn(len(q.Faults))] = genSpec(rng, topo)
	case 3: // tweak one field
		i := rng.Intn(len(q.Faults))
		q.Faults[i] = tweakSpec(rng, q.Faults[i], topo)
	}
	return q
}

// tweakSpec perturbs one field of s, staying valid for topo.
func tweakSpec(rng *sim.RNG, s Spec, topo Topology) Spec {
	h := topo.horizon()
	switch {
	case messageKind(s.Kind):
		switch rng.Intn(4) {
		case 0: // step probability up or down the grid
			i := probIndex(s.Prob)
			if rng.Intn(2) == 0 && i > 0 {
				i--
			} else if i < len(probSteps)-1 {
				i++
			}
			s.Prob = probSteps[i]
		case 1: // retarget hop
			s.Scope = allScopes[rng.Intn(len(allScopes))]
		case 2: // toggle/shift window
			if s.Until == 0 {
				s.After = rng.Uint64n(h / 2)
				s.Until = s.After + 1 + rng.Uint64n(h/2)
			} else {
				s.After, s.Until = 0, 0
			}
		case 3: // retarget rank
			if topo.Ranks > 1 && rng.Intn(2) == 0 {
				s.Rank = rng.Intn(topo.Ranks)
			} else {
				s.Rank = -1
			}
		}
	case s.Kind == KindStall || s.Kind == KindOverflow:
		switch rng.Intn(3) {
		case 0: // move in time
			s.At = rng.Uint64n(h)
		case 1: // rescale duration
			if rng.Intn(2) == 0 {
				s.Cycles = s.Cycles/2 + 1
			} else {
				s.Cycles = min(s.Cycles*2, h)
			}
		case 2: // retarget
			if s.Kind == KindStall {
				s.Unit = rng.Intn(topo.Units)
			} else {
				s.Rank = rng.Intn(topo.Ranks)
			}
		}
	case s.Kind == KindKill:
		if rng.Intn(2) == 0 {
			s.At = rng.Uint64n(h)
		} else {
			s.Unit = rng.Intn(topo.Units)
		}
	}
	return s
}

// probIndex returns the index of the closest probability step to p.
func probIndex(p float64) int {
	best, bd := 0, 2.0
	for i, v := range probSteps {
		d := v - p
		if d < 0 {
			d = -d
		}
		if d < bd {
			best, bd = i, d
		}
	}
	return best
}

// Canonical returns the plan's canonical JSON encoding: specs sorted by a
// stable total order, zero-valued optional fields omitted (Spec's JSON tags
// already do that; Rank/Unit are emitted only when set). Two plans that
// differ only in spec order or field history hash identically, which is what
// corpus dedup wants.
func Canonical(p *Plan) []byte {
	q := Clone(p)
	if q == nil {
		q = &Plan{}
	}
	sort.SliceStable(q.Faults, func(i, j int) bool { return specLess(q.Faults[i], q.Faults[j]) })
	data, err := json.MarshalIndent(canonDTO(q), "", "  ")
	if err != nil {
		// Plan is plain data; marshal cannot fail. Keep the API unconditional.
		panic(fmt.Sprintf("fault: canonical marshal: %v", err))
	}
	return append(data, '\n')
}

// canonDTO converts a plan to pointer-field DTOs so "absent" and "zero" are
// encoded the way Parse expects them back: Rank -1 and Unit -1 are omitted,
// everything else that is zero-valued is omitted by the marshal rules below.
func canonDTO(p *Plan) map[string][]map[string]any {
	out := make([]map[string]any, 0, len(p.Faults))
	for _, s := range p.Faults {
		m := map[string]any{"kind": s.Kind}
		if s.Scope != "" {
			m["scope"] = s.Scope
		}
		if s.Prob != 0 {
			m["prob"] = s.Prob
		}
		if s.Rank != -1 {
			m["rank"] = s.Rank
		}
		if s.Unit != -1 {
			m["unit"] = s.Unit
		}
		if s.At != 0 {
			m["at"] = s.At
		}
		if s.Cycles != 0 {
			m["cycles"] = s.Cycles
		}
		if s.Bytes != 0 {
			m["bytes"] = s.Bytes
		}
		if s.After != 0 {
			m["after"] = s.After
		}
		if s.Until != 0 {
			m["until"] = s.Until
		}
		if s.Count != 0 {
			m["count"] = s.Count
		}
		out = append(out, m)
	}
	return map[string][]map[string]any{"faults": out}
}

// specLess is a stable total order over specs: by kind, scope, targets,
// schedule, then the remaining numeric fields.
func specLess(a, b Spec) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Scope != b.Scope {
		return a.Scope < b.Scope
	}
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	if a.Unit != b.Unit {
		return a.Unit < b.Unit
	}
	if a.At != b.At {
		return a.At < b.At
	}
	if a.After != b.After {
		return a.After < b.After
	}
	if a.Until != b.Until {
		return a.Until < b.Until
	}
	if a.Prob != b.Prob {
		return a.Prob < b.Prob
	}
	if a.Cycles != b.Cycles {
		return a.Cycles < b.Cycles
	}
	if a.Bytes != b.Bytes {
		return a.Bytes < b.Bytes
	}
	return a.Count < b.Count
}

// Hash returns the 64-bit digest of the plan's canonical encoding — the
// corpus identity of the plan.
func Hash(p *Plan) uint64 {
	return fnv64(Canonical(p))
}

// fnv64 is byte-wise FNV-1a (the canonical encoding is small; no need for
// the word-wide variant in package checkpoint, and this avoids an import).
func fnv64(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
